(* mrpa — command-line front end for the multi-relational path algebra.

   Subcommands:
     generate    synthesise a workload graph and write it as TSV
     stats       print graph statistics
     query       run a regular path query (the paper's SIV-A notation)
     explain     show the plan for a query without running it
     recognize   test whether a concrete path matches an expression
     project     derive a single-relational graph (SIV-C) and rank vertices
     dot         export Graphviz
     fig1        run the paper's Figure 1 end to end *)

open Mrpa_graph
open Mrpa_core
open Cmdliner

(* --- Shared helpers ------------------------------------------------------ *)

let load_graph path =
  try Ok (Io.load path) with
  | Sys_error msg -> Error msg
  | Io.Malformed (line, text) ->
    Error (Printf.sprintf "%s: malformed line %d: %s" path line text)

(* Exit-code policy (documented in Mrpa_engine.Err): 0 ok, 1 user/input
   error, 2 internal error, 3 partial result under a budget or limit. *)
let or_die = function
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit Mrpa_engine.Err.exit_user_error

(* Parse with the source in hand so errors come out caret-rendered. *)
let parse_or_die g query =
  match Mrpa_engine.Parser.parse g query with
  | Ok e -> e
  | Error e ->
    or_die (Error (Mrpa_engine.Parser.render_error ~source:query e))

let graph_arg =
  let doc = "Graph file (TSV edge list: tail<TAB>label<TAB>head)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let seed_arg =
  let doc = "PRNG seed (workloads are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let output_arg =
  let doc = "Output file; \"-\" for standard output." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let write_output output text =
  if output = "-" then print_string text
  else
    match open_out output with
    | exception Sys_error msg -> or_die (Error msg)
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc text)

(* --- Budgets -------------------------------------------------------------- *)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds (monotonic clock). When it \
           expires the run stops at the next checkpoint and returns the \
           sound partial result found so far, exiting 3.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"STEPS"
        ~doc:
          "Work budget: total evaluator transition steps the run may spend \
           before stopping with a partial result (exit 3).")

let max_paths_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-paths" ] ~docv:"N"
        ~doc:
          "Memory budget: maximum live/banked paths the run may hold at \
           once before stopping with a partial result (exit 3).")

let inject_fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-fault" ] ~docv:"REASON@N"
        ~doc:
          "Testing aid: deterministically trip the budget with REASON \
           (deadline, fuel, memory or cancelled) at the N-th checkpoint \
           (1-based), regardless of the real clock or counters. Makes \
           budget behaviour reproducible in tests without sleeping.")

let guard_reason_of_name = function
  | "deadline" -> Some Guard.Deadline
  | "fuel" -> Some Guard.Fuel
  | "memory" -> Some Guard.Memory
  | "cancelled" -> Some Guard.Cancelled
  | _ -> None

let parse_fault spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad --inject-fault %S (expected REASON@N with REASON one of \
          deadline, fuel, memory, cancelled and N >= 1)"
         spec)
  in
  match String.index_opt spec '@' with
  | None -> fail ()
  | Some i -> (
    let name = String.sub spec 0 i in
    let pos = String.sub spec (i + 1) (String.length spec - i - 1) in
    match (guard_reason_of_name name, int_of_string_opt pos) with
    | Some reason, Some at when at >= 1 -> Ok (reason, at)
    | _ -> fail ())

(* No flags -> None; callers that want Ctrl-C anyway (query, shell) fall
   back to [Budget.unlimited]. *)
let budget_of_flags ~deadline_ms ~fuel ~max_paths ~inject_fault =
  match (deadline_ms, fuel, max_paths, inject_fault) with
  | None, None, None, None -> None
  | _ ->
    let b =
      try
        Mrpa_engine.Budget.create ?deadline_ms ?fuel ?max_live:max_paths ()
      with Invalid_argument msg -> or_die (Error msg)
    in
    let b =
      match inject_fault with
      | None -> b
      | Some spec ->
        let reason, at = or_die (parse_fault spec) in
        Mrpa_engine.Budget.with_fault_injection ~at reason b
    in
    Some b

(* Ctrl-C cancels the governed run cooperatively: the handler only sets a
   flag, the evaluator aborts at its next checkpoint, and the partial
   result is printed with exit code 3 — no state is torn down mid-step. *)
let cancel_on_sigint budget =
  if Sys.os_type <> "Win32" then
    ignore
      (Sys.signal Sys.sigint
         (Sys.Signal_handle (fun _ -> Mrpa_engine.Budget.cancel budget)))

let pp_partial_note fmt verdict =
  match verdict with
  | Mrpa_engine.Err.Complete -> ()
  | Mrpa_engine.Err.Partial reason ->
    Format.fprintf fmt "-- partial result (%s): some paths may be missing@."
      (Mrpa_engine.Err.reason_name reason)

(* --- generate ------------------------------------------------------------- *)

let generate_cmd =
  let kind_arg =
    let doc =
      "Workload kind: uniform, preferential, ring, lattice, star, complete, \
       layered, social, kb, fig1."
    in
    Arg.(value & opt string "uniform" & info [ "kind" ] ~doc)
  in
  let n_arg =
    Arg.(value & opt int 50 & info [ "n" ] ~doc:"Primary size (vertices/people).")
  in
  let m_arg =
    Arg.(value & opt int 200 & info [ "m" ] ~doc:"Edge count (where applicable).")
  in
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~doc:"Number of edge labels |Omega|.")
  in
  let run kind n m k seed output =
    let rng = Prng.create seed in
    let g =
      match kind with
      | "uniform" -> Generate.uniform ~rng ~n_vertices:n ~n_edges:m ~n_labels:k
      | "preferential" ->
        Generate.preferential ~rng ~n_vertices:n ~out_degree:(max 1 (m / n)) ~n_labels:k
      | "ring" -> Generate.ring ~n ~n_labels:k
      | "lattice" ->
        let side = max 2 (int_of_float (sqrt (float_of_int n))) in
        Generate.lattice ~rows:side ~cols:side
      | "star" -> Generate.star ~n_leaves:n
      | "complete" -> Generate.complete ~n ~n_labels:k
      | "layered" ->
        Generate.layered ~rng ~layers:(max 2 (n / 10)) ~width:10 ~fanout:3 ~n_labels:k
      | "social" ->
        Generate.social ~rng ~n_people:n ~n_orgs:(max 2 (n / 20))
          ~n_projects:(max 3 (n / 10))
      | "kb" -> Generate.knowledge_base ~rng ~n_entities:(max 6 n)
      | "fig1" -> Generate.fig1 ~rng ~n_noise_vertices:n ~n_noise_edges:m
      | other ->
        Printf.eprintf "unknown workload kind %S\n" other;
        exit Mrpa_engine.Err.exit_user_error
    in
    write_output output (Io.to_string g);
    Printf.eprintf "generated %s: %s\n" kind
      (Format.asprintf "%a" Digraph.pp_stats g)
  in
  let term = Term.(const run $ kind_arg $ n_arg $ m_arg $ k_arg $ seed_arg $ output_arg) in
  Cmd.v (Cmd.info "generate" ~doc:"Synthesise a workload graph") term

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let run path =
    let g = or_die (load_graph path) in
    Format.printf "%a@." Stat.pp_report g
  in
  let term = Term.(const run $ graph_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Print graph statistics") term

(* --- query / explain ---------------------------------------------------------- *)

let query_pos =
  let doc =
    "Regular path query, e.g. '[i,alpha,_] . [_,beta,_]* . [_,alpha,k]'."
  in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc)

let max_length_arg =
  Arg.(
    value
    & opt int Mrpa_engine.Engine.default_max_length
    & info [ "max-length" ] ~doc:"Bound on path length (star unrolling).")

let limit_arg =
  Arg.(value & opt (some int) None & info [ "limit" ] ~doc:"Stop after this many paths.")

let strategy_arg =
  let conv_strategy s =
    match Mrpa_engine.Plan.strategy_of_string s with
    | Some strategy -> Ok strategy
    | None ->
      Error (Printf.sprintf "unknown strategy %S (reference|stack|bfs)" s)
  in
  let parse s = Result.map_error (fun m -> `Msg m) (conv_strategy s) in
  let print fmt s =
    Format.pp_print_string fmt (Mrpa_engine.Plan.strategy_name s)
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "strategy" ] ~doc:"Force evaluation strategy: reference, stack, bfs.")

let count_arg =
  Arg.(
    value & flag
    & info [ "count" ]
        ~doc:
          "Print only the number of paths. Without --limit, --simple or a \
           forced strategy this uses the counting engine (no path set is \
           materialised).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.")

let simple_arg =
  Arg.(
    value & flag
    & info [ "simple" ] ~doc:"Restrict to simple paths (no repeated vertex).")

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Statically analyse the query before running it; findings go to \
           standard error, and an error-severity finding (statically empty \
           query) aborts the run.")

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "EXPLAIN ANALYZE: run the query and print the plan, per-stage \
           timings (parse/lint/optimize/execute, monotonic clock) and \
           backend counters instead of the path rows.")

let profile_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-json" ] ~docv:"FILE"
        ~doc:
          "Write the execution profile as JSON (schema mrpa.profile/1) to \
           $(docv); \"-\" for standard output. Implies profiling the run.")

let print_lint_findings ~out ~source diags =
  List.iter
    (fun d ->
      Format.fprintf out "%s@." (Mrpa_lint.Diagnostic.render ~source d))
    diags

let query_cmd =
  let run path query max_length limit strategy simple count json lint profile
      profile_json deadline_ms fuel max_paths inject_fault =
    let g = or_die (load_graph path) in
    (* Even without budget flags the run is governed by an unlimited budget,
       so Ctrl-C always cancels cooperatively: partial result, exit 3. *)
    let budget =
      match budget_of_flags ~deadline_ms ~fuel ~max_paths ~inject_fault with
      | Some b -> Some b
      | None -> Some (Mrpa_engine.Budget.unlimited ())
    in
    Option.iter cancel_on_sigint budget;
    if lint then begin
      match Mrpa_engine.Engine.lint ~max_length ?fuel ?deadline_ms g query with
      | Error msg -> or_die (Error msg)
      | Ok diags ->
        print_lint_findings ~out:Format.err_formatter ~source:query diags;
        if Mrpa_lint.Diagnostic.has_errors diags then begin
          Printf.eprintf "error: the query is statically empty; not running it\n";
          exit 1
        end
    end;
    (* Every branch funnels through [finish]: a partial result exits 3 so
       scripts can tell "complete answer" from "sound subset". *)
    let finish verdict = exit (Mrpa_engine.Err.exit_code verdict) in
    if profile || profile_json <> None then begin
      match
        Mrpa_engine.Engine.query_profiled ?strategy ~simple ~max_length ?limit
          ?budget g query
      with
      | Error msg -> or_die (Error msg)
      | Ok (r, m) ->
        (match profile_json with
        | Some file ->
          write_output file (Mrpa_engine.Metrics.to_json m ^ "\n")
        | None -> ());
        if profile then begin
          Format.printf "%a@." (Mrpa_engine.Plan.pp_named g)
            r.Mrpa_engine.Engine.plan;
          Format.printf "%a@." Mrpa_engine.Metrics.pp m;
          Format.printf "-- %d path(s) via %s@."
            (Path_set.cardinal r.Mrpa_engine.Engine.paths)
            (Mrpa_engine.Plan.strategy_name
               r.Mrpa_engine.Engine.plan.Mrpa_engine.Plan.strategy);
          pp_partial_note Format.std_formatter r.Mrpa_engine.Engine.verdict
        end
        else if json then print_endline (Mrpa_engine.Render.result_json g r)
        else if count then begin
          Format.printf "%d@." (Path_set.cardinal r.Mrpa_engine.Engine.paths);
          pp_partial_note Format.err_formatter r.Mrpa_engine.Engine.verdict
        end
        else begin
          Path_set.iter
            (fun p -> Format.printf "%a@." (Digraph.pp_path g) p)
            r.Mrpa_engine.Engine.paths;
          Format.printf "-- %d path(s) in %.3f ms via %s@."
            r.Mrpa_engine.Engine.stats.Mrpa_engine.Eval.paths
            (1000.0 *. r.Mrpa_engine.Engine.stats.Mrpa_engine.Eval.elapsed_s)
            (Mrpa_engine.Plan.strategy_name
               r.Mrpa_engine.Engine.plan.Mrpa_engine.Plan.strategy);
          pp_partial_note Format.std_formatter r.Mrpa_engine.Engine.verdict
        end;
        finish r.Mrpa_engine.Engine.verdict
    end
    else if json then begin
      match
        Mrpa_engine.Engine.query ?strategy ~simple ~max_length ?limit ?budget g
          query
      with
      | Error msg -> or_die (Error msg)
      | Ok r ->
        print_endline (Mrpa_engine.Render.result_json g r);
        finish r.Mrpa_engine.Engine.verdict
    end
    else if count && limit = None && strategy = None && not simple then
      match Mrpa_engine.Engine.count_governed ~max_length ?budget g query with
      | Error msg -> or_die (Error msg)
      | Ok (n, verdict) ->
        Format.printf "%d@." n;
        pp_partial_note Format.err_formatter verdict;
        finish verdict
    else
      match
        Mrpa_engine.Engine.query ?strategy ~simple ~max_length ?limit ?budget g
          query
      with
      | Error msg -> or_die (Error msg)
      | Ok r ->
        if count then begin
          Format.printf "%d@." (Path_set.cardinal r.Mrpa_engine.Engine.paths);
          pp_partial_note Format.err_formatter r.Mrpa_engine.Engine.verdict
        end
        else begin
          Path_set.iter
            (fun p -> Format.printf "%a@." (Digraph.pp_path g) p)
            r.Mrpa_engine.Engine.paths;
          Format.printf "-- %d path(s) in %.3f ms via %s@."
            r.Mrpa_engine.Engine.stats.Mrpa_engine.Eval.paths
            (1000.0 *. r.Mrpa_engine.Engine.stats.Mrpa_engine.Eval.elapsed_s)
            (Mrpa_engine.Plan.strategy_name
               r.Mrpa_engine.Engine.plan.Mrpa_engine.Plan.strategy);
          pp_partial_note Format.std_formatter r.Mrpa_engine.Engine.verdict
        end;
        finish r.Mrpa_engine.Engine.verdict
  in
  let term =
    Term.(
      const run $ graph_arg $ query_pos $ max_length_arg $ limit_arg
      $ strategy_arg $ simple_arg $ count_arg $ json_arg $ lint_flag
      $ profile_flag $ profile_json_arg $ deadline_arg $ fuel_arg
      $ max_paths_arg $ inject_fault_arg)
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a regular path query") term

(* --- lint -------------------------------------------------------------------- *)

let error_on_warning_flag =
  Arg.(
    value & flag
    & info [ "error-on-warning" ]
        ~doc:
          "Exit 1 when any warning-severity finding is reported, not only \
           on errors — for CI gates over query corpora.")

let lint_cmd =
  let run path query max_length deadline_ms fuel error_on_warning =
    let g = or_die (load_graph path) in
    match Mrpa_engine.Engine.lint ~max_length ?fuel ?deadline_ms g query with
    | Error msg -> or_die (Error msg)
    | Ok diags ->
      let module D = Mrpa_lint.Diagnostic in
      if diags = [] then Format.printf "no findings@."
      else begin
        print_lint_findings ~out:Format.std_formatter ~source:query diags;
        Format.printf "%s@." (D.summary diags)
      end;
      let has_warnings =
        List.exists (fun d -> d.D.severity = D.Warning) diags
      in
      exit
        (if D.has_errors diags || (error_on_warning && has_warnings) then 1
         else 0)
  in
  let term =
    Term.(
      const run $ graph_arg $ query_pos $ max_length_arg $ deadline_arg
      $ fuel_arg $ error_on_warning_flag)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse a query against a graph without running it: \
          dead union arms, never-adjacent joins, stars that cannot iterate, \
          selectors matching no edge, unreachable automaton positions, plus \
          the cost analyzer's cardinality-blowup (L010/L011), \
          budget-feasibility (L012, with --fuel / --deadline-ms) and \
          zero-selectivity (L013) findings at the --max-length bound. \
          Exits 1 when an error-severity finding (statically empty query) \
          is reported, or — under --error-on-warning — when any warning \
          is.")
    term

let shell_cmd =
  let run path max_length deadline_ms fuel max_paths inject_fault =
    let g = or_die (load_graph path) in
    Format.printf
      "mrpa shell — %a@.Type a query per line; :explain QUERY, :count QUERY, \
       :lint QUERY, :profile QUERY, :view (word|expr|drop|edges|analytics) \
       and :views for materialized views, :quit to exit.@."
      Digraph.pp_stats g;
    let signature = lazy (Mrpa_lint.Signature.make g) in
    (* Local materialized views over the loaded (static) graph: same
       registry as the server's, with snap_seq pinned to 0 — nothing
       mutates, so a projection never goes stale. *)
    let views = Mrpa_server.Views.create () in
    Mrpa_server.Views.attach views g;
    let reproject ~query ~max_length =
      match Mrpa_engine.Parser.parse g query with
      | Error e -> Error (Mrpa_engine.Parser.render_error ~source:query e)
      | Ok expr ->
        Ok (Mrpa_analysis.Projection.path_derived_expr g expr ~max_length, false, 0)
    in
    let view_graph name =
      match
        Mrpa_server.Views.simple_graph views ~name ~snap_seq:0 ~reproject
      with
      | Error Mrpa_server.Views.Unknown_view ->
        Format.printf "error: no view named %S@." name;
        None
      | Error (Mrpa_server.Views.Projection_failed msg) ->
        Format.printf "error: %s@." msg;
        None
      | Ok (sg, _partial) -> Some sg
    in
    (* Every query runs under its own cancellable budget, so Ctrl-C aborts
       the running query — yielding its partial result — and returns to the
       prompt instead of killing the REPL. At the prompt the handler is a
       no-op (blocked reads retry after the signal); leave with :quit or
       Ctrl-D. *)
    let current = ref None in
    if Sys.os_type <> "Win32" then
      ignore
        (Sys.signal Sys.sigint
           (Sys.Signal_handle
              (fun _ ->
                match !current with
                | Some b -> Mrpa_engine.Budget.cancel b
                | None -> ())));
    let with_budget f =
      let b =
        match budget_of_flags ~deadline_ms ~fuel ~max_paths ~inject_fault with
        | Some b -> b
        | None -> Mrpa_engine.Budget.unlimited ()
      in
      current := Some b;
      Fun.protect ~finally:(fun () -> current := None) (fun () -> f b)
    in
    let rec loop () =
      Format.printf "mrpa> @?";
      match input_line stdin with
      | exception End_of_file -> ()
      | line ->
        let line = String.trim line in
        let continue_ =
          if line = "" then true
          else if line = ":quit" || line = ":q" then false
          else begin
            let starts_with prefix =
              String.length line >= String.length prefix
              && String.sub line 0 (String.length prefix) = prefix
            in
            let rest prefix =
              String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
            in
            (* The REPL must survive whatever a query does: rendered
               engine errors are handled per command below, and this
               belt-and-braces handler catches anything that still
               escapes (a bug, Stack_overflow, ...). *)
            let next_token s =
              let s = String.trim s in
              match String.index_opt s ' ' with
              | None -> (s, "")
              | Some i ->
                ( String.sub s 0 i,
                  String.trim
                    (String.sub s i (String.length s - i)) )
            in
            (try
               if line = ":views" then begin
                 let infos = Mrpa_server.Views.list views ~snap_seq:0 in
                 if infos = [] then Format.printf "no views@."
                 else
                   List.iter
                     (fun i ->
                       Format.printf "%s\t%s %s\t%d vertex(es), %d edge(s)@."
                         i.Mrpa_server.Views.i_name i.Mrpa_server.Views.i_kind
                         i.Mrpa_server.Views.i_spec
                         i.Mrpa_server.Views.i_vertices
                         i.Mrpa_server.Views.i_edges)
                     infos
               end
               else if starts_with ":view " then begin
                 let sub, args = next_token (rest ":view") in
                 match sub with
                 | "word" | "expr" -> (
                   let name, spec = next_token args in
                   if name = "" || spec = "" then
                     Format.printf
                       "usage: :view %s NAME %s@." sub
                       (if sub = "word" then "A.B.C" else "QUERY")
                   else
                     let form =
                       if sub = "word" then
                         Mrpa_server.Views.Word
                           (String.split_on_char '.' spec
                           |> List.filter (fun l -> l <> ""))
                       else
                         Mrpa_server.Views.Expr
                           { query = spec; max_length }
                     in
                     match
                       Mrpa_server.Views.register views ~name ~graph:g form
                     with
                     | Ok () -> Format.printf "registered %s@." name
                     | Error msg -> Format.printf "error: %s@." msg)
                 | "drop" ->
                   let name, _ = next_token args in
                   if Mrpa_server.Views.drop views name then
                     Format.printf "dropped %s@." name
                   else Format.printf "error: no view named %S@." name
                 | "edges" -> (
                   let name, _ = next_token args in
                   match view_graph name with
                   | None -> ()
                   | Some sg ->
                     List.iter
                       (fun (i, j) ->
                         Format.printf "%s -> %s@."
                           (Digraph.vertex_name g (Vertex.of_int i))
                           (Digraph.vertex_name g (Vertex.of_int j)))
                       (Mrpa_analysis.Simple_graph.edges sg);
                     Format.printf "-- %d edge(s)@."
                       (Mrpa_analysis.Simple_graph.n_edges sg))
                 | "analytics" -> (
                   let name, margs = next_token args in
                   let measure, targs = next_token margs in
                   let measure = if measure = "" then "degree" else measure in
                   let top =
                     Option.value ~default:10
                       (int_of_string_opt (fst (next_token targs)))
                   in
                   match view_graph name with
                   | None -> ()
                   | Some sg -> (
                     let ranking scores =
                       Format.printf "%a@."
                         (Mrpa_analysis.Centrality.pp_ranking ~k:top
                            ~vertex_name:(fun v ->
                              Digraph.vertex_name g (Vertex.of_int v)))
                         scores
                     in
                     match measure with
                     | "degree" ->
                       ranking (Mrpa_analysis.Centrality.out_degree sg)
                     | "pagerank" ->
                       ranking (Mrpa_analysis.Centrality.pagerank sg)
                     | "components" ->
                       let c = Mrpa_analysis.Components.weakly_connected sg in
                       Format.printf "%d component(s)@."
                         c.Mrpa_analysis.Components.n_components
                     | "communities" ->
                       let c = Mrpa_analysis.Communities.label_propagation sg in
                       Format.printf "%d communities@."
                         c.Mrpa_analysis.Communities.n_communities
                     | other ->
                       Format.printf
                         "error: unknown measure %S (want degree, pagerank, \
                          components or communities)@."
                         other))
                 | _ ->
                   Format.printf
                     "usage: :view (word|expr|drop|edges|analytics) ...@."
               end
               else if starts_with ":explain" then
                 match Mrpa_engine.Engine.explain ~max_length g (rest ":explain") with
                 | Ok text -> Format.printf "%s@." text
                 | Error msg -> Format.printf "error: %s@." msg
               else if starts_with ":count" then
                 with_budget (fun b ->
                     match
                       Mrpa_engine.Engine.count_governed ~max_length ~budget:b
                         g (rest ":count")
                     with
                     | Ok (n, verdict) ->
                       Format.printf "%d@." n;
                       pp_partial_note Format.std_formatter verdict
                     | Error msg -> Format.printf "error: %s@." msg)
               else if starts_with ":profile" then
                 with_budget (fun b ->
                     match
                       Mrpa_engine.Engine.query_profiled ~max_length ~budget:b
                         g (rest ":profile")
                     with
                     | Ok (r, m) ->
                       Format.printf "%a@." Mrpa_engine.Metrics.pp m;
                       Format.printf "-- %d path(s) via %s@."
                         (Path_set.cardinal r.Mrpa_engine.Engine.paths)
                         (Mrpa_engine.Plan.strategy_name
                            r.Mrpa_engine.Engine.plan.Mrpa_engine.Plan.strategy);
                       pp_partial_note Format.std_formatter
                         r.Mrpa_engine.Engine.verdict
                     | Error msg -> Format.printf "error: %s@." msg)
               else if starts_with ":lint" then
                 let source = rest ":lint" in
                 match
                   Mrpa_engine.Engine.lint ~signature:(Lazy.force signature) g
                     source
                 with
                 | Ok diags ->
                   if diags = [] then Format.printf "no findings@."
                   else begin
                     print_lint_findings ~out:Format.std_formatter ~source
                       diags;
                     Format.printf "%s@." (Mrpa_lint.Diagnostic.summary diags)
                   end
                 | Error msg -> Format.printf "error: %s@." msg
               else
                 with_budget (fun b ->
                     match
                       Mrpa_engine.Engine.query ~max_length ~budget:b g line
                     with
                     | Error msg -> Format.printf "error: %s@." msg
                     | Ok r ->
                       Path_set.iter
                         (fun p -> Format.printf "%a@." (Digraph.pp_path g) p)
                         r.Mrpa_engine.Engine.paths;
                       Format.printf "-- %d path(s)@."
                         (Path_set.cardinal r.Mrpa_engine.Engine.paths);
                       pp_partial_note Format.std_formatter
                         r.Mrpa_engine.Engine.verdict)
             with e ->
               Format.printf "error: internal: %s@." (Printexc.to_string e));
            true
          end
        in
        if continue_ then loop ()
    in
    loop ()
  in
  let term =
    Term.(
      const run $ graph_arg $ max_length_arg $ deadline_arg $ fuel_arg
      $ max_paths_arg $ inject_fault_arg)
  in
  Cmd.v (Cmd.info "shell" ~doc:"Interactive query shell") term

let explain_cmd =
  let run path query max_length =
    let g = or_die (load_graph path) in
    match Mrpa_engine.Engine.explain ~max_length g query with
    | Error msg -> or_die (Error msg)
    | Ok text -> print_endline text
  in
  let term = Term.(const run $ graph_arg $ query_pos $ max_length_arg) in
  Cmd.v (Cmd.info "explain" ~doc:"Show the query plan without running it") term

(* --- equiv ------------------------------------------------------------------------ *)

let equiv_cmd =
  let query2_pos =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"QUERY2" ~doc:"Second query.")
  in
  let run path q1 q2 =
    let g = or_die (load_graph path) in
    match Mrpa_engine.Engine.equivalent g q1 q2 with
    | Error msg -> or_die (Error msg)
    | Ok equal ->
      Format.printf "%s@." (if equal then "EQUIVALENT" else "DIFFERENT");
      exit (if equal then 0 else 1)
  in
  let term = Term.(const run $ graph_arg $ query_pos $ query2_pos) in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "Decide whether two queries are equivalent over the graph's edge \
          universe at every length")
    term

(* --- recognize ------------------------------------------------------------------ *)

let recognize_cmd =
  let path_arg =
    let doc =
      "The path to test, as whitespace-separated triples \
       'tail,label,head tail,label,head ...'; an empty string means the \
       empty path."
    in
    Arg.(required & pos 2 (some string) None & info [] ~docv:"PATH" ~doc)
  in
  let run graph_path query path_text =
    let g = or_die (load_graph graph_path) in
    let expr = parse_or_die g query in
    let resolve what find name =
      match find name with
      | Some x -> x
      | None -> or_die (Error (Printf.sprintf "unknown %s %S" what name))
    in
    let parse_triple t =
      match String.split_on_char ',' t with
      | [ tail; label; head ] ->
        Edge.make
          ~tail:(resolve "vertex" (Digraph.find_vertex g) (String.trim tail))
          ~label:(resolve "label" (Digraph.find_label g) (String.trim label))
          ~head:(resolve "vertex" (Digraph.find_vertex g) (String.trim head))
      | _ -> or_die (Error (Printf.sprintf "malformed triple %S" t))
    in
    let pieces =
      List.filter (fun s -> s <> "") (String.split_on_char ' ' path_text)
    in
    let path = Path.of_edges (List.map parse_triple pieces) in
    let accepted = Mrpa_automata.Recognizer.nfa expr path in
    Format.printf "%a : %s@." (Digraph.pp_path g) path
      (if accepted then "ACCEPTED" else "REJECTED");
    exit (if accepted then 0 else 1)
  in
  let term = Term.(const run $ graph_arg $ query_pos $ path_arg) in
  Cmd.v
    (Cmd.info "recognize" ~doc:"Test whether a concrete path matches a query")
    term

(* --- project ---------------------------------------------------------------------- *)

let project_cmd =
  let labels_arg =
    let doc = "Comma-separated label word, e.g. 'knows,works_for'." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LABELS" ~doc)
  in
  let measure_arg =
    let doc =
      "Centrality to run on the derived graph: pagerank, eigenvector, \
       closeness, harmonic, betweenness, out-degree, in-degree."
    in
    Arg.(value & opt string "pagerank" & info [ "measure" ] ~doc)
  in
  let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Rows to print.") in
  let run path labels_text measure top =
    let g = or_die (load_graph path) in
    let labels =
      List.map
        (fun name ->
          match Digraph.find_label g (String.trim name) with
          | Some l -> l
          | None -> or_die (Error (Printf.sprintf "unknown label %S" name)))
        (String.split_on_char ',' labels_text)
    in
    let derived = Mrpa_analysis.Projection.path_derived g labels in
    Format.printf "derived graph: %a@." Mrpa_analysis.Simple_graph.pp derived;
    let scores =
      match measure with
      | "pagerank" -> Mrpa_analysis.Centrality.pagerank derived
      | "eigenvector" -> Mrpa_analysis.Centrality.eigenvector derived
      | "closeness" -> Mrpa_analysis.Centrality.closeness derived
      | "harmonic" -> Mrpa_analysis.Centrality.harmonic_closeness derived
      | "betweenness" -> Mrpa_analysis.Centrality.betweenness derived
      | "out-degree" -> Mrpa_analysis.Centrality.out_degree derived
      | "in-degree" -> Mrpa_analysis.Centrality.in_degree derived
      | other -> or_die (Error (Printf.sprintf "unknown measure %S" other))
    in
    Format.printf "%a@."
      (Mrpa_analysis.Centrality.pp_ranking ~k:top ~vertex_name:(fun v ->
           Digraph.vertex_name g (Vertex.of_int v)))
      scores
  in
  let term = Term.(const run $ graph_arg $ labels_arg $ measure_arg $ top_arg) in
  Cmd.v
    (Cmd.info "project"
       ~doc:"Derive a single-relational graph from a label word and rank it")
    term

(* --- communities ------------------------------------------------------------------------ *)

let communities_cmd =
  let labels_arg =
    let doc = "Restrict to one relation type (default: label-blind projection)." in
    Arg.(value & opt (some string) None & info [ "label" ] ~doc)
  in
  let run path label_opt seed =
    let g = or_die (load_graph path) in
    let projected =
      match label_opt with
      | None -> Mrpa_analysis.Projection.label_blind g
      | Some name -> (
        match Digraph.find_label g name with
        | Some l -> Mrpa_analysis.Projection.single_label g l
        | None -> or_die (Error (Printf.sprintf "unknown label %S" name)))
    in
    let t = Mrpa_analysis.Communities.label_propagation ~seed projected in
    Format.printf "%d communities, modularity %.3f@."
      t.Mrpa_analysis.Communities.n_communities
      (Mrpa_analysis.Communities.modularity projected t);
    let sizes = Mrpa_analysis.Communities.sizes t in
    let ranked =
      List.sort
        (fun (_, a) (_, b) -> Int.compare b a)
        (Array.to_list (Array.mapi (fun c s -> (c, s)) sizes))
    in
    List.iteri
      (fun i (c, size) ->
        if i < 10 then begin
          let members = Mrpa_analysis.Communities.members t c in
          let preview =
            List.filteri (fun i _ -> i < 6) members
            |> List.map (fun v -> Digraph.vertex_name g (Vertex.of_int v))
            |> String.concat ", "
          in
          Format.printf "  #%d: %d member(s): %s%s@." c size preview
            (if size > 6 then ", ..." else "")
        end)
      ranked
  in
  let term = Term.(const run $ graph_arg $ labels_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "communities"
       ~doc:"Detect communities (label propagation) on a projection")
    term

(* --- dot ---------------------------------------------------------------------------- *)

let dot_cmd =
  let run path output =
    let g = or_die (load_graph path) in
    write_output output (Dot.to_string g)
  in
  let term = Term.(const run $ graph_arg $ output_arg) in
  Cmd.v (Cmd.info "dot" ~doc:"Export the graph as Graphviz DOT") term

let graphml_cmd =
  let run path output =
    let g = or_die (load_graph path) in
    write_output output (Graphml.to_string g)
  in
  let term = Term.(const run $ graph_arg $ output_arg) in
  Cmd.v (Cmd.info "graphml" ~doc:"Export the graph as GraphML") term

(* --- cheapest --------------------------------------------------------------------------- *)

let cheapest_cmd =
  let weights_arg =
    let doc = "Weights file (see Mrpa_graph.Weights for the format)." in
    Arg.(value & opt (some file) None & info [ "weights" ] ~docv:"FILE" ~doc)
  in
  let cost_arg =
    let doc =
      "Per-label edge costs, e.g. 'truck=40,rail=25,ship=15'. Labels not \
       listed cost --default-cost."
    in
    Arg.(value & opt string "" & info [ "cost" ] ~doc)
  in
  let default_cost_arg =
    Arg.(value & opt float 1.0 & info [ "default-cost" ] ~doc:"Cost for unlisted labels.")
  in
  let from_arg =
    Arg.(value & opt (some string) None & info [ "from" ] ~doc:"Source vertex name.")
  in
  let to_arg =
    Arg.(value & opt (some string) None & info [ "to" ] ~doc:"Target vertex name.")
  in
  let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Pairs to print.") in
  let run path query weights_file cost default_cost from_ to_ max_length top =
    let g = or_die (load_graph path) in
    let table =
      match weights_file with
      | None -> Weights.create ~default:default_cost ()
      | Some file -> (
        try Weights.load g file
        with Weights.Malformed (line, text) ->
          or_die
            (Error (Printf.sprintf "%s: malformed line %d: %s" file line text)))
    in
    let costs = Hashtbl.create 8 in
    if cost <> "" then
      List.iter
        (fun piece ->
          match String.split_on_char '=' piece with
          | [ name; value ] -> (
            match
              (Digraph.find_label g (String.trim name), float_of_string_opt value)
            with
            | Some l, Some v -> Hashtbl.replace costs l v
            | None, _ ->
              or_die (Error (Printf.sprintf "unknown label %S" name))
            | _, None ->
              or_die (Error (Printf.sprintf "bad cost value %S" value)))
          | _ -> or_die (Error (Printf.sprintf "bad cost binding %S" piece)))
        (String.split_on_char ',' cost);
    Hashtbl.iter (fun l v -> Weights.set_label table l v) costs;
    let weight = Weights.to_fun table in
    let expr = fst (Mrpa_engine.Optimizer.simplify (parse_or_die g query)) in
    let pairs = Mrpa_semiring.Eval.cheapest_paths ~weight g expr ~max_length in
    let resolve name =
      match Digraph.find_vertex g name with
      | Some v -> v
      | None -> or_die (Error (Printf.sprintf "unknown vertex %S" name))
    in
    let pairs =
      List.filter
        (fun ((s, d), _) ->
          (match from_ with None -> true | Some n -> Vertex.equal s (resolve n))
          && match to_ with None -> true | Some n -> Vertex.equal d (resolve n))
        pairs
    in
    let pairs =
      List.sort (fun (_, c1) (_, c2) -> Float.compare c1 c2) pairs
    in
    List.iteri
      (fun i ((s, d), c) ->
        if i < top then
          Format.printf "%-14s -> %-14s %.2f@." (Digraph.vertex_name g s)
            (Digraph.vertex_name g d) c)
      pairs;
    if pairs = [] then Format.printf "(no admissible route)@.";
    (* with both endpoints pinned, also reconstruct the optimal route *)
    (match (from_, to_) with
    | Some src, Some dst ->
      let w = Mrpa_semiring.Witness.prepare ~weight g expr ~max_length in
      (match
         Mrpa_semiring.Witness.cheapest w ~source:(resolve src)
           ~target:(resolve dst)
       with
      | Some (route, cost) ->
        Format.printf "route: %a (%.2f)@." (Digraph.pp_path g) route cost
      | None -> ())
    | _ -> ())
  in
  let term =
    Term.(
      const run $ graph_arg $ query_pos $ weights_arg $ cost_arg
      $ default_cost_arg $ from_arg $ to_arg $ max_length_arg $ top_arg)
  in
  Cmd.v
    (Cmd.info "cheapest"
       ~doc:"Cheapest paths per endpoint pair under a regular policy (tropical semiring)")
    term

(* --- sample ----------------------------------------------------------------------------- *)

let sample_cmd =
  let n_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of uniform draws.")
  in
  let run path query max_length n seed =
    let g = or_die (load_graph path) in
    let expr = parse_or_die g query in
    let optimized, _ = Mrpa_engine.Optimizer.simplify expr in
    let sampler = Mrpa_automata.Sampler.prepare g optimized ~max_length in
    begin
      let population = Mrpa_automata.Sampler.population sampler in
      Format.printf "population: %d path(s)@." population;
      List.iter
        (fun p -> Format.printf "%a@." (Digraph.pp_path g) p)
        (Mrpa_automata.Sampler.sample sampler (Prng.create seed) n)
    end
  in
  let term =
    Term.(const run $ graph_arg $ query_pos $ max_length_arg $ n_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Draw uniform random paths from a query's denoted set")
    term

(* --- crpq ------------------------------------------------------------------------------ *)

let crpq_cmd =
  let crpq_pos =
    let doc =
      "Conjunctive query, e.g. 'select x, y where (x, [_,knows,_], y), \
       (y, [_,works_for,_], x)'."
    in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CRPQ" ~doc)
  in
  let run path text max_length count json =
    let g = or_die (load_graph path) in
    match Mrpa_engine.Crpq.parse g text with
    | Error e ->
      or_die (Error (Mrpa_engine.Parser.render_error ~source:text e))
    | Ok q ->
      let answers = Mrpa_engine.Crpq.eval ~max_length g q in
      if json then
        print_endline
          (Mrpa_engine.Render.tuples_json g
             ~head:(Mrpa_engine.Crpq.variables q
                    |> List.filteri (fun i _ ->
                           i < List.length q.Mrpa_engine.Crpq.head))
             answers)
      else if count then Format.printf "%d@." (List.length answers)
      else begin
        List.iter
          (fun tuple ->
            Format.printf "%s@."
              (String.concat "\t"
                 (List.map (Digraph.vertex_name g) tuple)))
          answers;
        Format.printf "-- %d tuple(s)@." (List.length answers)
      end
  in
  let term =
    Term.(const run $ graph_arg $ crpq_pos $ max_length_arg $ count_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "crpq" ~doc:"Run a conjunctive regular path query")
    term

(* --- automaton ------------------------------------------------------------------------ *)

let automaton_cmd =
  let run path query output =
    let g = or_die (load_graph path) in
    let expr = parse_or_die g query in
    let optimized, _ = Mrpa_engine.Optimizer.simplify expr in
    write_output output
        (Mrpa_automata.Viz.expr_to_dot ~name:"mrpa_automaton" ~graph:g optimized)
  in
  let term = Term.(const run $ graph_arg $ query_pos $ output_arg) in
  Cmd.v
    (Cmd.info "automaton"
       ~doc:
         "Export the compiled (Figure-1-style) automaton of a query as \
          Graphviz DOT")
    term

(* --- serve / call ------------------------------------------------------------------- *)

(* Endpoint flags shared by `serve` and `call`: exactly one of a Unix-domain
   socket path or a TCP port (with optional host). *)
let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N" ~doc:"TCP port (see also --host).")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host for --port.")

let endpoint_of_flags ~socket ~port ~host =
  match (socket, port) with
  | Some path, None -> Mrpa_server.Wire.Unix_socket path
  | None, Some port -> Mrpa_server.Wire.Tcp (host, port)
  | _ -> or_die (Error "exactly one of --socket PATH or --port N is required")

let serve_cmd =
  let graph_flag =
    Arg.(
      value
      & opt (some file) None
      & info [ "graph" ] ~docv:"FILE"
          ~doc:
            "Graph to serve (TSV edge list); loaded once, then frozen. \
             Required for --role standalone; unused by primary/replica \
             roles, which build their graphs from the journal stream.")
  in
  let role_arg =
    Arg.(
      value
      & opt (enum [ ("standalone", `Standalone); ("primary", `Primary); ("replica", `Replica) ]) `Standalone
      & info [ "role" ] ~docv:"ROLE"
          ~doc:
            "Replication role: $(b,standalone) serves one frozen --graph; \
             $(b,primary) tails the v2 journal at --journal, serves its \
             replay and streams records to subscribers; $(b,replica) \
             follows the primary at --follow and serves bounded-staleness \
             reads.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "For --role primary: the v2 journal to tail (created by a \
             writer via `mrpa append`; may not exist yet).")
  in
  let follow_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"ENDPOINT"
          ~doc:
            "For --role replica: the primary's endpoint (unix:PATH, \
             tcp:HOST:PORT, or HOST:PORT).")
  in
  let min_staleness_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-staleness-ms" ] ~docv:"MS"
          ~doc:
            "Floor on the max_staleness_ms clients may request: a request \
             demanding fresher data than $(docv) is clamped up to it, so \
             an over-eager client cannot turn every replica read into a \
             stale error. Unset: honour any requested bound.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"K" ~doc:"Worker threads executing queries.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded job-queue capacity; a request arriving when the queue \
             is full is answered with an overloaded error instead of being \
             buffered.")
  in
  let max_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Ceiling on (and default for) every request's wall-clock \
             budget: clients may ask for less, never more.")
  in
  let max_fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-fuel" ] ~docv:"STEPS"
          ~doc:"Ceiling on (and default for) every request's work budget.")
  in
  let max_paths_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-paths" ] ~docv:"N"
          ~doc:
            "Ceiling on (and default for) every request's live/banked-path \
             memory budget.")
  in
  let max_limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-limit" ] ~docv:"N"
          ~doc:"Ceiling on (and default for) returned paths per query.")
  in
  let max_length_cap_arg =
    Arg.(
      value & opt int 16
      & info [ "max-length" ] ~docv:"N"
          ~doc:"Ceiling on the star-unrolling bound clients may request.")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Close a connection that fails to deliver a complete request \
             line within $(docv) (answered with an idle_timeout wire \
             error). Covers both silent idle connections and slow-drip \
             clients. Unset: wait forever.")
  in
  let max_request_bytes_arg =
    Arg.(
      value
      & opt int Mrpa_server.Server.default_max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"BYTES"
          ~doc:
            "Reject request lines longer than $(docv) with a \
             request_too_large wire error and close the connection.")
  in
  let max_predicted_cost_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-predicted-cost" ] ~docv:"UNITS"
          ~doc:
            "Static admission ceiling: cost-analyse every query/count \
             against the snapshot's cached statistics and refuse — with an \
             infeasible wire error, before a worker is occupied — any whose \
             predicted cost (same units as --max-fuel) exceeds $(docv). \
             Unset: admit everything.")
  in
  let plan_cache_arg =
    Arg.(
      value & opt int 1024
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:
            "Capacity of the compiled-plan LRU cache (entries). Admission \
             control, the lint verb and worker evaluation share one parse \
             + cost analysis per cached query text. 0 disables the cache.")
  in
  let result_cache_arg =
    Arg.(
      value & opt int 256
      & info [ "result-cache" ] ~docv:"N"
          ~doc:
            "Capacity of the result cache (entries) holding \
             Complete-verdict responses, invalidated whenever the source \
             graph changes. 0 disables the cache.")
  in
  let allow_remote_shutdown_arg =
    Arg.(
      value & flag
      & info [ "allow-remote-shutdown" ]
          ~doc:
            "Honour the shutdown verb on TCP sessions. Without this flag \
             only Unix-domain clients may stop the server; a TCP shutdown \
             request is refused with an unauthorized wire error.")
  in
  let run graph socket port host role journal follow min_staleness_ms workers
      queue max_deadline_ms max_fuel max_paths_cap max_limit max_length_cap
      idle_timeout_ms max_request_bytes max_predicted_cost plan_cache
      result_cache allow_remote_shutdown =
    let endpoint = endpoint_of_flags ~socket ~port ~host in
    let role, snapshot, origin =
      match role with
      | `Standalone ->
        let graph =
          match graph with
          | Some g -> g
          | None -> or_die (Error "--role standalone requires --graph FILE")
        in
        let snapshot =
          try
            Mrpa_server.Snapshot.load ~plan_cache_capacity:plan_cache
              ~result_cache_capacity:result_cache graph
          with
          | Sys_error msg -> or_die (Error msg)
          | Io.Malformed (line, text) ->
            or_die
              (Error
                 (Printf.sprintf "%s: malformed line %d: %s" graph line text))
        in
        (Mrpa_server.Server.Standalone, Some snapshot, "graph=" ^ graph)
      | `Primary ->
        let journal =
          match journal with
          | Some j -> j
          | None -> or_die (Error "--role primary requires --journal FILE")
        in
        (Mrpa_server.Server.Primary { journal }, None, "journal=" ^ journal)
      | `Replica ->
        let follow =
          match follow with
          | Some f -> or_die (Mrpa_server.Wire.endpoint_of_string f)
          | None -> or_die (Error "--role replica requires --follow ENDPOINT")
        in
        ( Mrpa_server.Server.Replica { follow },
          None,
          "follow=" ^ Mrpa_server.Wire.endpoint_to_string follow )
    in
    let config =
      {
        Mrpa_server.Server.endpoint;
        workers;
        queue_capacity = queue;
        limits =
          {
            Mrpa_server.Wire.max_deadline_ms;
            max_fuel;
            max_live_paths = max_paths_cap;
            max_limit;
            max_length_cap;
            min_staleness_ms;
          };
        idle_timeout_ms;
        max_request_bytes;
        max_predicted_cost;
        allow_remote_shutdown;
        role;
      }
    in
    let server =
      try Mrpa_server.Server.create ?snapshot config
      with Invalid_argument msg -> or_die (Error msg)
    in
    (* SIGINT/SIGTERM request a graceful drain: the handler only sets a
       flag; the accept loop notices, cancels in-flight budgets through
       their cancellation tokens, drains the pool, and serve returns.
       (SIGPIPE is ignored by the server/client library setup itself —
       Mrpa_server.Net — so a vanished peer cannot kill the process.) *)
    if Sys.os_type <> "Win32" then begin
      let graceful =
        Sys.Signal_handle (fun _ -> Mrpa_server.Server.stop server)
      in
      ignore (Sys.signal Sys.sigint graceful);
      ignore (Sys.signal Sys.sigterm graceful)
    end;
    Printf.eprintf "mrpa serve: %s workers=%d queue=%d %s (%s)\n%!"
      (Mrpa_server.Wire.endpoint_to_string endpoint)
      workers queue origin
      (Format.asprintf "%a" Mrpa_server.Snapshot.pp_stats
         (Mrpa_server.Server.snapshot server));
    (* Announce the endpoint actually bound once serve is listening — with
       `--port 0` the kernel picks the port, and scripts (and the cram
       tests) grep this line to find it. *)
    ignore
      (Thread.create
         (fun () ->
           let rec wait n =
             if n > 0 then
               match Mrpa_server.Server.bound_endpoint server with
               | Some ep ->
                 Printf.eprintf "mrpa serve: listening on %s\n%!"
                   (Mrpa_server.Wire.endpoint_to_string ep)
               | None ->
                 Thread.delay 0.01;
                 wait (n - 1)
           in
           wait 1_000)
         ());
    (match Mrpa_server.Server.serve server with
    | () -> ()
    | exception Unix.Unix_error (err, _, arg) ->
      or_die
        (Error
           (Printf.sprintf "cannot listen on %s: %s%s"
              (Mrpa_server.Wire.endpoint_to_string endpoint)
              (Unix.error_message err)
              (if arg = "" then "" else " (" ^ arg ^ ")"))));
    Printf.eprintf "mrpa serve: drained, exiting\n%!"
  in
  let term =
    Term.(
      const run $ graph_flag $ socket_arg $ port_arg $ host_arg $ role_arg
      $ journal_arg $ follow_arg $ min_staleness_arg $ workers_arg
      $ queue_arg $ max_deadline_arg $ max_fuel_arg $ max_paths_cap_arg
      $ max_limit_arg $ max_length_cap_arg $ idle_timeout_arg
      $ max_request_bytes_arg $ max_predicted_cost_arg $ plan_cache_arg
      $ result_cache_arg $ allow_remote_shutdown_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a graph over a Unix-domain socket or TCP: a worker pool \
          runs mrpa.wire/1 query/count requests against one frozen \
          snapshot, with server-side budget ceilings, explicit overload \
          backpressure, and graceful drain on SIGINT/SIGTERM.")
    term

let call_cmd =
  let query_pos_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"Query text (required unless --ping, --stats or --shutdown).")
  in
  let ping_flag =
    Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Fetch server-wide metrics.")
  in
  let health_flag =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Health probe: role, last-applied sequence number, lag behind \
             the primary, connectivity, plus the load picture — \
             $(b,queue_depth) (requests waiting for a worker) and \
             $(b,inflight) (requests a worker is executing right now). \
             Against `mrpa route`, reports the router's per-shard breaker \
             states and each shard's own health object.")
  in
  let endpoints_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "endpoints" ] ~docv:"A,B,C"
          ~doc:
            "Failover endpoint list (comma-separated unix:PATH / \
             tcp:HOST:PORT / HOST:PORT), tried round-robin: attempts \
             rotate across the list and the backoff sleep is paid only \
             after a full cycle has failed. Exclusive with \
             --socket/--port; combine with --retries to survive an \
             endpoint dying mid-conversation.")
  in
  let min_seq_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "min-seq" ] ~docv:"SEQ"
          ~doc:
            "Bounded-staleness read: require the serving snapshot to \
             include journal record $(docv); a server that cannot satisfy \
             it within a short wait answers with a stale error (which \
             --retries will re-try, possibly elsewhere).")
  in
  let max_staleness_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-staleness-ms" ] ~docv:"MS"
          ~doc:
            "Bounded-staleness read: require a replica to have heard from \
             its primary within the last $(docv) milliseconds, else answer \
             with a stale error. Authoritative servers (standalone, \
             primary) always satisfy this bound.")
  in
  let shutdown_flag =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to drain and exit.")
  in
  let call_count_flag =
    Arg.(
      value & flag
      & info [ "count" ]
          ~doc:"Use the counting engine (no path set is materialised).")
  in
  let call_lint_flag =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Statically analyse the query on the server (findings plus \
             predicted cost/cardinality) without running it; answered \
             inline, never occupying a worker.")
  in
  let pipeline_flag =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Pipelined mode: read one query per line from standard input, \
             send them all on one connection tagged with ids 1..N, and \
             print each response line as it arrives — possibly out of \
             order; match responses to queries by their id field. \
             Combines with --count and the per-request option flags \
             (applied to every query); exclusive with --ping, --stats, \
             --shutdown and --lint.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to $(docv) extra times on a refused/absent endpoint \
             or an overloaded response, with exponential backoff and full \
             jitter between attempts. 0 (the default) tries exactly once. \
             Ignored in --pipeline mode.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 100.0
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:
            "Base of the backoff window: retry $(i,k) sleeps between \
             $(docv)*2^k/2 and $(docv)*2^k milliseconds (capped at 10s).")
  in
  let run socket port host endpoints query_opt ping stats shutdown health
      count lint pipeline strategy limit max_length simple deadline_ms fuel
      max_paths min_seq max_staleness_ms retries backoff_ms =
    let module S = Mrpa_server in
    let endpoints =
      match endpoints with
      | None -> [ endpoint_of_flags ~socket ~port ~host ]
      | Some list ->
        if socket <> None || port <> None then
          or_die (Error "--endpoints is exclusive with --socket/--port");
        let eps =
          List.filter_map
            (fun s ->
              let s = String.trim s in
              if s = "" then None
              else Some (or_die (S.Wire.endpoint_of_string s)))
            (String.split_on_char ',' list)
        in
        if eps = [] then or_die (Error "--endpoints: no endpoints given");
        eps
    in
    let endpoint = List.hd endpoints in
    let options =
      {
        S.Wire.strategy;
        limit;
        max_length =
          (* only send a bound the user actually chose, so the server's
             cap applies to unset requests *)
          (if max_length = Mrpa_engine.Engine.default_max_length then None
           else Some max_length);
        simple;
        deadline_ms;
        fuel;
        max_paths;
        min_seq;
        max_staleness_ms;
        from_seq = None;
        epoch = None;
      }
    in
    (* A response line's contribution to the exit-code policy: any error
       response wins over any partial result over all-complete. *)
    let response_status line =
      match S.Json.parse line with
      | Error _ -> `Error
      | Ok json -> (
        match S.Json.member "ok" json with
        | Some (S.Json.Bool true) ->
          let verdict =
            match S.Json.member "result" json with
            | Some result -> S.Json.member "verdict" result
            | None -> S.Json.member "verdict" json
          in
          let partial =
            match Option.bind verdict S.Json.to_string_opt with
            | Some v -> String.length v >= 7 && String.sub v 0 7 = "partial"
            | None -> false
          in
          if partial then `Partial else `Complete
        | _ -> `Error)
    in
    if pipeline then begin
      if ping || stats || shutdown || lint || health then
        or_die
          (Error
             "--pipeline is exclusive with --ping, --stats, --shutdown, \
              --lint and --health");
      let verb = if count then S.Wire.Count else S.Wire.Query in
      let queries =
        let rec read acc =
          match input_line stdin with
          | line ->
            read (if String.trim line = "" then acc else line :: acc)
          | exception End_of_file -> List.rev acc
        in
        read []
      in
      if queries = [] then exit Mrpa_engine.Err.exit_ok;
      let conn = or_die (S.Client.connect endpoint) in
      let n = List.length queries in
      let any_error = ref false in
      let any_partial = ref false in
      (* One receiver thread drains responses while the main thread is
         still sending — without it, a server blocked writing responses
         into a full socket buffer would deadlock against a client blocked
         writing requests. *)
      let receiver =
        Thread.create
          (fun () ->
            let rec drain remaining =
              if remaining > 0 then
                match S.Client.receive_raw conn with
                | Error msg ->
                  Printf.eprintf "error: %s\n%!" msg;
                  any_error := true
                | Ok line ->
                  print_endline line;
                  (match response_status line with
                  | `Error -> any_error := true
                  | `Partial -> any_partial := true
                  | `Complete -> ());
                  drain (remaining - 1)
            in
            drain n)
          ()
      in
      List.iteri
        (fun i q ->
          let req =
            {
              S.Wire.id = S.Json.Number (float_of_int (i + 1));
              verb;
              query = Some q;
              options;
            }
          in
          match S.Client.send conn req with
          | Ok () -> ()
          | Error msg ->
            Printf.eprintf "error: %s\n%!" msg;
            any_error := true)
        queries;
      Thread.join receiver;
      S.Client.close conn;
      exit
        (if !any_error then Mrpa_engine.Err.exit_user_error
         else if !any_partial then Mrpa_engine.Err.exit_partial
         else Mrpa_engine.Err.exit_ok)
    end;
    let verb =
      match (ping, stats, shutdown, health, count, lint) with
      | true, false, false, false, false, false -> S.Wire.Ping
      | false, true, false, false, false, false -> S.Wire.Stats
      | false, false, true, false, false, false -> S.Wire.Shutdown
      | false, false, false, true, false, false -> S.Wire.Health
      | false, false, false, false, false, true -> S.Wire.Lint
      | false, false, false, false, count, false ->
        if count then S.Wire.Count else S.Wire.Query
      | _ ->
        or_die
          (Error
             "--ping, --stats, --shutdown, --health, --count and --lint \
              are exclusive")
    in
    let query =
      match (verb, query_opt) with
      | (S.Wire.Query | S.Wire.Count | S.Wire.Lint), None ->
        or_die (Error "a QUERY argument is required")
      | (S.Wire.Query | S.Wire.Count | S.Wire.Lint), some -> some
      | _, _ -> None
    in
    let request = { S.Wire.id = S.Json.Null; verb; query; options } in
    let policy = { S.Client.retries = max 0 retries; backoff_ms } in
    let line = or_die (S.Client.request_failover ~policy endpoints request) in
    (* Print the response verbatim (it is already one JSON line), then turn
       its verdict into the standard exit-code policy. *)
    print_endline line;
    match response_status line with
    | `Error -> exit Mrpa_engine.Err.exit_user_error
    | `Partial -> exit Mrpa_engine.Err.exit_partial
    | `Complete -> exit Mrpa_engine.Err.exit_ok
  in
  let term =
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ endpoints_arg
      $ query_pos_opt $ ping_flag $ stats_flag $ shutdown_flag $ health_flag
      $ call_count_flag $ call_lint_flag $ pipeline_flag $ strategy_arg
      $ limit_arg $ max_length_arg $ simple_arg $ deadline_arg $ fuel_arg
      $ max_paths_arg $ min_seq_arg $ max_staleness_arg $ retries_arg
      $ backoff_arg)
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send one mrpa.wire/1 request to a running `mrpa serve` and print \
          the response line (or, with --pipeline, many requests on one \
          connection). Exits 0 on a complete result, 3 on a partial one \
          (budget or limit), 1 on any error response.")
    term

(* --- route / partition -------------------------------------------------------------- *)

(* The sharded serving tier: `mrpa partition` splits a graph by the shard
   map's hash placement; `mrpa route` fronts the resulting fleet with the
   scatter-gather router (Mrpa_server.Router) — same wire protocol in and
   out, so `mrpa call` needs no changes to talk to a sharded deployment. *)

let shard_map_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "shard-map" ] ~docv:"FILE"
        ~doc:
          "The mrpa.shardmap/1 file naming each shard and its failover \
           endpoint list (primary first, replicas after).")

let route_cmd =
  let shard_timeout_arg =
    Arg.(
      value
      & opt float Mrpa_server.Router.default_shard_timeout_ms
      & info [ "shard-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Transport guard per shard dispatch: connect plus response \
             within $(docv), even when the request carries no deadline. A \
             request's own deadline, when tighter, wins.")
  in
  let probe_timeout_arg =
    Arg.(
      value
      & opt float Mrpa_server.Router.default_probe_timeout_ms
      & info [ "probe-timeout-ms" ] ~docv:"MS"
          ~doc:"Budget of the half-open breaker's health probe.")
  in
  let breaker_failures_arg =
    Arg.(
      value
      & opt int Mrpa_server.Router.default_breaker_failures
      & info [ "breaker-failures" ] ~docv:"N"
          ~doc:
            "Consecutive fully-failed dispatches (every endpoint dead or \
             stale) that open a shard's circuit breaker.")
  in
  let breaker_cooldown_arg =
    Arg.(
      value
      & opt float Mrpa_server.Router.default_breaker_cooldown_ms
      & info [ "breaker-cooldown-ms" ] ~docv:"MS"
          ~doc:
            "How long an open breaker fails fast (no I/O to the shard) \
             before the next dispatch half-opens it with a health probe.")
  in
  let frontier_cap_arg =
    Arg.(
      value
      & opt int Mrpa_server.Router.default_frontier_cap
      & info [ "frontier-cap" ] ~docv:"N"
          ~doc:
            "Widest join frontier inlined into a narrowed selector's \
             source position; wider frontiers still narrow the dispatch \
             targets but leave the selector text unrewritten.")
  in
  let max_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-deadline-ms" ] ~docv:"MS"
          ~doc:"Ceiling on (and default for) every request's wall-clock budget.")
  in
  let max_paths_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-paths" ] ~docv:"N"
          ~doc:
            "Ceiling on (and default for) the paths materialised while \
             stitching shard results; crossing it truncates to a sound \
             subset (partial:memory).")
  in
  let max_limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-limit" ] ~docv:"N"
          ~doc:"Ceiling on (and default for) returned paths per query.")
  in
  let max_length_cap_arg =
    Arg.(
      value & opt int 16
      & info [ "max-length" ] ~docv:"N"
          ~doc:"Ceiling on the star-unrolling bound clients may request.")
  in
  let max_request_bytes_arg =
    Arg.(
      value
      & opt int Mrpa_server.Server.default_max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"BYTES"
          ~doc:"Reject request lines longer than $(docv).")
  in
  let allow_remote_shutdown_arg =
    Arg.(
      value & flag
      & info [ "allow-remote-shutdown" ]
          ~doc:
            "Honour the shutdown verb on TCP sessions; without it only \
             Unix-domain clients may stop the router.")
  in
  let run socket port host shard_map shard_timeout_ms probe_timeout_ms
      breaker_failures breaker_cooldown_ms frontier_cap max_deadline_ms
      max_paths_cap max_limit max_length_cap max_request_bytes
      allow_remote_shutdown =
    let module S = Mrpa_server in
    let endpoint = endpoint_of_flags ~socket ~port ~host in
    let map = or_die (S.Shardmap.load shard_map) in
    let config =
      {
        S.Router.endpoint;
        map;
        limits =
          {
            S.Wire.max_deadline_ms;
            max_fuel = None;
            max_live_paths = max_paths_cap;
            max_limit;
            max_length_cap;
            min_staleness_ms = None;
          };
        allow_remote_shutdown;
        shard_timeout_ms;
        probe_timeout_ms;
        breaker_failures;
        breaker_cooldown_ms;
        frontier_cap;
        max_request_bytes;
      }
    in
    let router =
      try S.Router.create config
      with Invalid_argument msg -> or_die (Error msg)
    in
    if Sys.os_type <> "Win32" then begin
      let graceful = Sys.Signal_handle (fun _ -> S.Router.stop router) in
      ignore (Sys.signal Sys.sigint graceful);
      ignore (Sys.signal Sys.sigterm graceful)
    end;
    Printf.eprintf "mrpa route: %s shards=%d (%s)\n%!"
      (S.Wire.endpoint_to_string endpoint)
      (S.Shardmap.n_shards map)
      (String.concat ", "
         (List.map (fun s -> s.S.Shardmap.name) (S.Shardmap.shards map)));
    (* Announce the endpoint actually bound once serve is listening — with
       `--port 0` the kernel picks the port, and scripts grep this line. *)
    ignore
      (Thread.create
         (fun () ->
           let rec wait n =
             if n > 0 then
               match S.Router.bound_endpoint router with
               | Some ep ->
                 Printf.eprintf "mrpa route: listening on %s\n%!"
                   (S.Wire.endpoint_to_string ep)
               | None ->
                 Thread.delay 0.01;
                 wait (n - 1)
           in
           wait 1_000)
         ());
    (match S.Router.serve router with
    | () -> ()
    | exception Unix.Unix_error (err, _, arg) ->
      or_die
        (Error
           (Printf.sprintf "cannot listen on %s: %s%s"
              (S.Wire.endpoint_to_string endpoint)
              (Unix.error_message err)
              (if arg = "" then "" else " (" ^ arg ^ ")"))));
    Printf.eprintf "mrpa route: drained, exiting\n%!"
  in
  let term =
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ shard_map_arg
      $ shard_timeout_arg $ probe_timeout_arg $ breaker_failures_arg
      $ breaker_cooldown_arg $ frontier_cap_arg $ max_deadline_arg
      $ max_paths_cap_arg $ max_limit_arg $ max_length_cap_arg
      $ max_request_bytes_arg $ allow_remote_shutdown_arg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Front a sharded fleet of `mrpa serve` processes with one \
          mrpa.wire/1 endpoint: queries scatter to the shards that can own \
          matching edges (hash of the tail vertex, per --shard-map) and \
          gather through the path algebra itself. Per-shard deadlines, \
          failover across each shard's replica endpoints, and a per-shard \
          circuit breaker keep one dead shard from taking the fleet down: \
          the answer degrades to a sound subset (partial:shard_unavailable, \
          exit 3 at `mrpa call`, missing shards named in the response) and \
          recovers within one breaker probe of the shard's return.")
    term

let partition_cmd =
  let graph_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"TSV edge list to split.")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Directory for the per-shard TSV files (created if missing).")
  in
  let run graph shard_map out_dir =
    let module S = Mrpa_server in
    let map = or_die (S.Shardmap.load shard_map) in
    let g =
      try Io.load graph with
      | Sys_error msg -> or_die (Error msg)
      | Io.Malformed (line, text) ->
        or_die
          (Error (Printf.sprintf "%s: malformed line %d: %s" graph line text))
    in
    let parts = S.Shardmap.write_partition map g ~dir:out_dir in
    List.iter
      (fun (path, n_edges) ->
        Printf.printf "mrpa partition: %s (%d edge(s))\n" path n_edges)
      parts
  in
  let term = Term.(const run $ graph_pos $ shard_map_arg $ out_dir_arg) in
  Cmd.v
    (Cmd.info "partition"
       ~doc:
         "Split a graph into per-shard TSV files by the shard map's hash \
          placement (owner = crc32(tail) mod shards). Every shard receives \
          the full vertex universe (isolated-vertex directives) so names \
          resolve everywhere; edge sets are disjoint and their union is \
          the input. The same map drives `mrpa route`, so partitioner and \
          router agree on placement by construction.")
    term

(* --- views ------------------------------------------------------------------------- *)

(* Client for the server's materialized-view family: register / drop /
   list / read / analytics over mrpa.wire/1, with the same failover,
   bounded-staleness and budget surface as `mrpa call`. *)
let views_cmd =
  let action_pos =
    let actions =
      [
        ("register", `Register);
        ("drop", `Drop);
        ("list", `List);
        ("read", `Read);
        ("analytics", `Analytics);
      ]
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION"
          ~doc:
            "One of $(b,register) (add a named view from --word or \
             --query), $(b,drop), $(b,list), $(b,read) (the view's \
             derived edges; --counts adds per-pair path counts) or \
             $(b,analytics) (--measure over the view's derived graph).")
  in
  let name_pos =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"NAME" ~doc:"View name (required except for list).")
  in
  let word_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "word" ] ~docv:"A.B.C"
          ~doc:
            "register: a fixed label word, dot-separated — the view is \
             maintained incrementally (rank-1 updates) as writes stream \
             in.")
  in
  let vquery_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "query" ] ~docv:"QUERY"
          ~doc:
            "register: a regular path expression — the view is re-projected \
             on demand when stale, bounded by --max-length (clamped by the \
             server).")
  in
  let counts_flag =
    Arg.(
      value & flag
      & info [ "counts" ] ~doc:"read: include per-pair path counts.")
  in
  let measure_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "measure" ] ~docv:"MEASURE"
          ~doc:
            "analytics: degree, pagerank, components or communities \
             (default degree).")
  in
  let vtop_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"K"
          ~doc:"analytics: ranking size (default 10).")
  in
  let endpoints_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "endpoints" ] ~docv:"A,B,C"
          ~doc:
            "Failover endpoint list, as for `mrpa call`. Exclusive with \
             --socket/--port.")
  in
  let min_seq_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "min-seq" ] ~docv:"SEQ"
          ~doc:
            "Bounded-staleness read: require the serving snapshot to \
             include journal record $(docv).")
  in
  let max_staleness_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-staleness-ms" ] ~docv:"MS"
          ~doc:
            "Bounded-staleness read: require a replica to have heard from \
             its primary within the last $(docv) milliseconds.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry reads (and list) up to $(docv) extra times on \
             refused/overloaded/stale, as for `mrpa call`; register and \
             drop are never blindly replayed after a mid-stream failure.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 100.0
      & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Backoff window base.")
  in
  let run socket port host endpoints action name word vquery counts measure
      top limit max_length deadline_ms fuel max_paths min_seq
      max_staleness_ms retries backoff_ms =
    let module S = Mrpa_server in
    let endpoints =
      match endpoints with
      | None -> [ endpoint_of_flags ~socket ~port ~host ]
      | Some list ->
        if socket <> None || port <> None then
          or_die (Error "--endpoints is exclusive with --socket/--port");
        let eps =
          List.filter_map
            (fun s ->
              let s = String.trim s in
              if s = "" then None
              else Some (or_die (S.Wire.endpoint_of_string s)))
            (String.split_on_char ',' list)
        in
        if eps = [] then or_die (Error "--endpoints: no endpoints given");
        eps
    in
    let require_name () =
      match name with
      | Some n -> Some n
      | None -> or_die (Error "a NAME argument is required")
    in
    let wire_word =
      Option.map
        (fun w ->
          let labels =
            String.split_on_char '.' w |> List.filter (fun l -> l <> "")
          in
          if labels = [] then or_die (Error "--word: no label names given");
          labels)
        word
    in
    let vreq =
      match action with
      | `Register ->
        if (word = None) = (vquery = None) then
          or_die (Error "register needs exactly one of --word or --query");
        {
          S.Wire.action = S.Wire.V_register;
          view_name = require_name ();
          word = wire_word;
          view_query = vquery;
          measure = None;
          top = None;
        }
      | `Drop ->
        {
          S.Wire.action = S.Wire.V_drop;
          view_name = require_name ();
          word = None;
          view_query = None;
          measure = None;
          top = None;
        }
      | `List ->
        {
          S.Wire.action = S.Wire.V_list;
          view_name = None;
          word = None;
          view_query = None;
          measure = None;
          top = None;
        }
      | `Read ->
        {
          S.Wire.action = (if counts then S.Wire.V_counts else S.Wire.V_edges);
          view_name = require_name ();
          word = None;
          view_query = None;
          measure = None;
          top = None;
        }
      | `Analytics ->
        {
          S.Wire.action = S.Wire.V_analytics;
          view_name = require_name ();
          word = None;
          view_query = None;
          measure;
          top;
        }
    in
    let options =
      {
        S.Wire.default_options with
        S.Wire.limit;
        max_length =
          (if max_length = Mrpa_engine.Engine.default_max_length then None
           else Some max_length);
        deadline_ms;
        fuel;
        max_paths;
        min_seq;
        max_staleness_ms;
      }
    in
    let request =
      { S.Wire.id = S.Json.Null; verb = S.Wire.Views vreq; query = None; options }
    in
    let policy = { S.Client.retries = max 0 retries; backoff_ms } in
    let line = or_die (S.Client.request_failover ~policy endpoints request) in
    print_endline line;
    (* Exit-code policy: errors win over a partial view (a re-projection
       that tripped its budget) over all-complete. *)
    match S.Json.parse line with
    | Error _ -> exit Mrpa_engine.Err.exit_user_error
    | Ok json -> (
      match S.Json.member "ok" json with
      | Some (S.Json.Bool true) ->
        let partial =
          match
            Option.bind (S.Json.member "view" json) (S.Json.member "partial")
          with
          | Some (S.Json.Bool b) -> b
          | _ -> false
        in
        exit
          (if partial then Mrpa_engine.Err.exit_partial
           else Mrpa_engine.Err.exit_ok)
      | _ -> exit Mrpa_engine.Err.exit_user_error)
  in
  let term =
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ endpoints_arg
      $ action_pos $ name_pos $ word_arg $ vquery_arg $ counts_flag
      $ measure_arg $ vtop_arg $ limit_arg $ max_length_arg $ deadline_arg
      $ fuel_arg $ max_paths_arg $ min_seq_arg $ max_staleness_arg
      $ retries_arg $ backoff_arg)
  in
  Cmd.v
    (Cmd.info "views"
       ~doc:
         "Manage and read a running server's materialized views: register \
          a label-word or path-expression view, drop it, list every view \
          with its maintenance accounting, read its derived edges, or run \
          degree/pagerank/components/communities analytics over it. Exits \
          0 on a complete answer, 3 on a partial one, 1 on any error \
          response.")
    term

(* --- append ------------------------------------------------------------------------- *)

(* The write side of a replicated deployment: mutations enter the system
   as journal appends (`mrpa append`), the primary tails the file and
   streams them to replicas. *)
let append_cmd =
  let journal_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:
            "Path of the change journal to append to (created as v2 if \
             missing) — the same file a `mrpa serve --role primary \
             --journal` tails.")
  in
  let add_arg =
    Arg.(
      value & opt_all string []
      & info [ "add" ] ~docv:"TAIL,LABEL,HEAD"
          ~doc:"Append an edge-insertion record. Repeatable.")
  in
  let del_arg =
    Arg.(
      value & opt_all string []
      & info [ "del" ] ~docv:"TAIL,LABEL,HEAD"
          ~doc:
            "Append an edge-deletion record; the edge must exist in the \
             journal's replay. Repeatable.")
  in
  let vertex_arg =
    Arg.(
      value & opt_all string []
      & info [ "vertex" ] ~docv:"NAME"
          ~doc:"Append an isolated-vertex record. Repeatable.")
  in
  let run path vertices adds dels =
    let triple what s =
      match String.split_on_char ',' s with
      | [ t; l; h ] when t <> "" && l <> "" && h <> "" -> (t, l, h)
      | _ ->
        or_die
          (Error (Printf.sprintf "--%s %S: want TAIL,LABEL,HEAD" what s))
    in
    let g = Digraph.create () in
    let j =
      try Journal.attach g path
      with Failure msg -> or_die (Error msg)
    in
    List.iter (fun name -> Journal.record_vertex j g name) vertices;
    List.iter
      (fun s ->
        let t, l, h = triple "add" s in
        ignore (Digraph.add g t l h))
      adds;
    List.iter
      (fun s ->
        let t, l, h = triple "del" s in
        let resolve what find name =
          match find name with
          | Some x -> x
          | None ->
            or_die
              (Error
                 (Printf.sprintf "--del %s: unknown %s %S" s what name))
        in
        let e =
          Edge.make
            ~tail:(resolve "vertex" (Digraph.find_vertex g) t)
            ~label:(resolve "label" (Digraph.find_label g) l)
            ~head:(resolve "vertex" (Digraph.find_vertex g) h)
        in
        if not (Digraph.remove_edge g e) then
          or_die (Error (Printf.sprintf "--del %s: no such edge" s)))
      dels;
    Journal.sync j;
    let written = Journal.entries_written j in
    Journal.close j;
    Printf.printf "%s: %d record%s appended (graph now %d vertices, %d edges)\n"
      path written
      (if written = 1 then "" else "s")
      (Digraph.n_vertices g) (Digraph.n_edges g)
  in
  let term =
    Term.(const run $ journal_pos $ vertex_arg $ add_arg $ del_arg)
  in
  Cmd.v
    (Cmd.info "append"
       ~doc:
         "Append mutation records (--vertex, then --add, then --del, in \
          that order) to a change journal, replaying its existing records \
          first so deletions resolve and duplicates are detected. The \
          write path of a replicated deployment: a primary server tails \
          the journal and streams the records to its replicas.")
    term

(* --- fsck --------------------------------------------------------------------------- *)

let fsck_cmd =
  let journal_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL" ~doc:"Path of the change journal to check.")
  in
  let repair_flag =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Rewrite the journal from the salvageable records (atomically, \
             always as v2) instead of only reporting. Clean journals are \
             left untouched.")
  in
  let run path repair =
    match Journal.recover path with
    | Error msg ->
      (* Unreadable file or unsupported format: nothing to salvage. *)
      Printf.eprintf "mrpa fsck: %s: %s\n" path msg;
      exit Mrpa_engine.Err.exit_user_error
    | Ok r ->
      let fmt =
        match r.Journal.format with Journal.V1 -> "v1" | Journal.V2 -> "v2"
      in
      List.iter
        (fun c ->
          Printf.printf "mrpa fsck: %s: %s\n" path
            (Journal.describe_corruption c))
        r.Journal.corruptions;
      (match r.Journal.stale_tmp with
      | Some tmp ->
        Printf.printf "mrpa fsck: %s: stale compaction tmp %s\n" path tmp
      | None -> ());
      if Journal.is_clean r then begin
        Printf.printf "mrpa fsck: %s: clean (%s, %d record(s))\n" path fmt
          r.Journal.applied;
        exit Mrpa_engine.Err.exit_ok
      end
      else if repair then begin
        Journal.repair r;
        Printf.printf "mrpa fsck: %s: repaired (%d record(s) kept, now v2)\n"
          path r.Journal.applied;
        exit Mrpa_engine.Err.exit_partial
      end
      else begin
        Printf.printf
          "mrpa fsck: %s: %d problem(s), %d record(s) salvageable (%s); run \
           with --repair to rewrite\n"
          path
          (List.length r.Journal.corruptions
          + if r.Journal.stale_tmp = None then 0 else 1)
          r.Journal.applied fmt;
        exit Mrpa_engine.Err.exit_user_error
      end
  in
  let term = Term.(const run $ journal_pos $ repair_flag) in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify (and with --repair, rewrite) a change journal: checksum \
          every record, report torn tails, sequence jumps and malformed or \
          unappliable records. Exits 0 when clean, 3 after a successful \
          repair, 1 when problems remain.")
    term

(* --- fig1 --------------------------------------------------------------------------- *)

let fig1_cmd =
  let run seed =
    let g = Generate.fig1 ~rng:(Prng.create seed) ~n_noise_vertices:6 ~n_noise_edges:12 in
    Format.printf "Graph: %a@." Digraph.pp_stats g;
    let text =
      "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])"
    in
    Format.printf "Expression: %s@.@." text;
    let r = Mrpa_engine.Engine.query_exn ~max_length:6 g text in
    Format.printf "%d path(s) generated by the Figure 1 automaton:@."
      (Path_set.cardinal r.Mrpa_engine.Engine.paths);
    Path_set.iter
      (fun p -> Format.printf "  %a@." (Digraph.pp_path g) p)
      r.Mrpa_engine.Engine.paths
  in
  let term = Term.(const run $ seed_arg) in
  Cmd.v (Cmd.info "fig1" ~doc:"Run the paper's Figure 1 end to end") term

(* --- main --------------------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "mrpa" ~version:"1.0.0"
      ~doc:"A path algebra for multi-relational graphs (Rodriguez & Neubauer)"
  in
  let group =
    Cmd.group info
      [
        generate_cmd;
        stats_cmd;
        query_cmd;
        lint_cmd;
        crpq_cmd;
        shell_cmd;
        serve_cmd;
        route_cmd;
        partition_cmd;
        call_cmd;
        views_cmd;
        append_cmd;
        fsck_cmd;
        explain_cmd;
        equiv_cmd;
        recognize_cmd;
        project_cmd;
        communities_cmd;
        dot_cmd;
        graphml_cmd;
        cheapest_cmd;
        sample_cmd;
        automaton_cmd;
        fig1_cmd;
      ]
  in
  (* Anything that escapes a subcommand is by definition a bug; report it
     under the internal-error exit code, distinct from user errors (1) and
     partial results (3). *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception e ->
    Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
    exit Mrpa_engine.Err.exit_internal_error
