The profiling surface: --profile (EXPLAIN ANALYZE text), --profile-json
(machine-readable mrpa.profile/1), and the shell's :profile command.

  $ cat > g.tsv <<'TSV'
  > i	alpha	j
  > j	beta	k
  > k	alpha	j
  > j	beta	j
  > j	beta	i
  > i	alpha	k
  > i	beta	k
  > TSV

--profile replaces the path rows with the plan, per-stage timings and the
backend counters. Timings vary run to run, so they are normalised here; the
counters are deterministic.

  $ ../bin/mrpa.exe query g.tsv '[_,alpha,_] . [_,beta,_]' --strategy reference --profile | sed 's/ *[0-9.]* ms/ T ms/'
  plan:
    expression: ([_,alpha,_] . [_,beta,_])
    optimized:  ([_,alpha,_] . [_,beta,_])
    rewrites:   (none)
    strategy:   reference (forced by caller)
    max length: 8
    cost:       paths <= 8, cost <= 98 work units (frontier <= 9, 2 position(s))
    cost table:
      len       paths      expression
      [2,2]     <=8        ([_,alpha,_] . [_,beta,_])
      [1,1]     <=3        [_,alpha,_]
      [1,1]     <=4        [_,beta,_]
  profile:
    parse: T ms
    lint: T ms
    optimize: T ms
    execute: T ms
  counters:
    budget.checkpoints         36
    budget.fuel_used           27
    lint.findings              0
    pathset.peak               6
    result.paths               6
  -- 6 path(s) via reference

The stack machine exposes its own counter namespace:

  $ ../bin/mrpa.exe query g.tsv '[_,alpha,_] . [_,beta,_]' --strategy stack --profile | sed -n 's/^  \(stack\.[a-z_]*\) .*/\1/p'
  stack.levels
  stack.max_live_branches
  stack.peak_live_paths
  stack.peak_stack_paths
  stack.pops
  stack.pushes

--profile-json writes the mrpa.profile/1 document; "-" means stdout. The
nanosecond timings are normalised, everything else is stable.

  $ ../bin/mrpa.exe query g.tsv '[_,alpha,_] . [_,beta,_]' --strategy reference --profile-json - --count | sed 's/"ns":[0-9]*/"ns":N/g'
  {"schema":"mrpa.profile/1","stages":[{"stage":"parse","ns":N},{"stage":"lint","ns":N},{"stage":"optimize","ns":N},{"stage":"execute","ns":N}],"counters":{"budget.checkpoints":36,"budget.fuel_used":27,"lint.findings":0,"pathset.peak":6,"result.paths":6}}
  6

Without --profile the normal output is kept alongside the JSON file:

  $ ../bin/mrpa.exe query g.tsv '[_,beta,_]{2}' --profile-json p.json --count
  4
  $ sed 's/"ns":[0-9]*/"ns":N/g' p.json
  {"schema":"mrpa.profile/1","stages":[{"stage":"parse","ns":N},{"stage":"lint","ns":N},{"stage":"optimize","ns":N},{"stage":"execute","ns":N}],"counters":{"automaton.positions":3,"bfs.edges_scanned":8,"bfs.max_depth":2,"bfs.max_frontier":4,"bfs.paths_emitted":4,"budget.checkpoints":9,"budget.fuel_used":5,"lint.findings":0,"pathset.peak":4,"result.paths":4}}

The shell's :profile mirrors --profile (without the plan):

  $ echo ':profile [_,beta,_]{2}' | ../bin/mrpa.exe shell g.tsv | sed 's/ *[0-9.]* ms/ T ms/'
  mrpa shell — |V|=3 |E|=7 |Omega|=2
  Type a query per line; :explain QUERY, :count QUERY, :lint QUERY, :profile QUERY, :view (word|expr|drop|edges|analytics) and :views for materialized views, :quit to exit.
  mrpa> profile:
    parse: T ms
    lint: T ms
    optimize: T ms
    execute: T ms
  counters:
    automaton.positions        3
    bfs.edges_scanned          8
    bfs.max_depth              2
    bfs.max_frontier           4
    bfs.paths_emitted          4
    budget.checkpoints         9
    budget.fuel_used           5
    lint.findings              0
    pathset.peak               4
    result.paths               4
  -- 4 path(s) via product-bfs
  mrpa> 
