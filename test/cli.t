A tiny multi-relational graph, hand-written in the TSV format:

  $ cat > g.tsv <<'TSV'
  > i	alpha	j
  > j	beta	k
  > k	alpha	j
  > j	beta	j
  > j	beta	i
  > i	alpha	k
  > i	beta	k
  > TSV

Statistics:

  $ ../bin/mrpa.exe stats g.tsv
  |V|=3 |E|=7 |Omega|=2
  density: 0.388889  reciprocity: 0.143  parallel pairs: 1
  out-degree: min 1 max 3 mean 2.33 median 3.0
  in-degree:  min 1 max 3 mean 2.33 median 3.0
  labels:
    beta                 4 edges (2 tails, 3 heads, max out 3, max in 2)
    alpha                3 edges (2 tails, 2 heads, max out 2, max in 2)
  

A labeled two-step query, in the paper's notation:

  $ ../bin/mrpa.exe query g.tsv '[_,alpha,_] . [_,beta,_]' --strategy reference | sed 's/in [0-9.]* ms/in N ms/'
  (i,alpha,j,j,beta,i)
  (i,alpha,j,j,beta,j)
  (i,alpha,j,j,beta,k)
  (k,alpha,j,j,beta,i)
  (k,alpha,j,j,beta,j)
  (k,alpha,j,j,beta,k)
  -- 6 path(s) in N ms via reference

Counting goes through the DP engine and matches:

  $ ../bin/mrpa.exe query g.tsv '[_,alpha,_] . [_,beta,_]' --count
  6

Macros expand, and EXPLAIN shows the plan without running it:

  $ ../bin/mrpa.exe query g.tsv 'let b = [_,beta,_] in b . b' --count
  4

  $ ../bin/mrpa.exe explain g.tsv '(empty | [i,alpha,_]) . E'
  plan:
    expression: ((∅ | [i,alpha,_]) . [_,_,_])
    optimized:  ([i,alpha,_] . [_,_,_])
    rewrites:   union-empty
    strategy:   product-bfs (anchored start (first extent 3 <= 8))
    max length: 8
    cost:       paths <= 9, cost <= 98 work units (frontier <= 9, 2 position(s))
    cost table:
      len       paths      expression
      [2,2]     <=9        ([i,alpha,_] . [_,_,_])
      [1,1]     <=3        [i,alpha,_]
      [1,1]     <=7        [_,_,_]

Recognition of a concrete path (exit code encodes the verdict):

  $ ../bin/mrpa.exe recognize g.tsv '[_,alpha,_] . [_,beta,_]' 'i,alpha,j j,beta,k'
  (i,alpha,j,j,beta,k) : ACCEPTED

  $ ../bin/mrpa.exe recognize g.tsv '[_,alpha,_] . [_,beta,_]' 'i,alpha,j'
  (i,alpha,j) : REJECTED
  [1]

Simple-path restriction:

  $ ../bin/mrpa.exe query g.tsv '[_,beta,_]{2}' --simple --count
  1

SIV-C projection and ranking:

  $ ../bin/mrpa.exe project g.tsv alpha,beta --measure in-degree --top 3
  derived graph: simple graph: 3 vertices, 6 edges
  i                    2.000000
  j                    2.000000
  k                    2.000000
  

Parse errors carry offsets:

  $ ../bin/mrpa.exe query g.tsv '[i,alpha'
  error: parse error at offset 8: expected ','
    [i,alpha
            ^
  [1]

  $ ../bin/mrpa.exe query g.tsv '[nosuch,_,_]'
  error: parse error at offset 1: unknown vertex "nosuch"
    [nosuch,_,_]
     ^
  [1]

Conjunctive regular path queries join atoms over shared variables:

  $ ../bin/mrpa.exe crpq g.tsv 'select x, y where (x, [_,alpha,_], y), (y, [_,beta,_], x)'
  i	j
  k	j
  -- 2 tuple(s)

Uniform sampling from a denoted set (seeded, hence reproducible):

  $ ../bin/mrpa.exe sample g.tsv '[_,beta,_]{2}' -n 2 --seed 3
  population: 4 path(s)
  (j,beta,j,j,beta,i)
  (j,beta,j,j,beta,j)

The compiled automaton of the paper's Figure 1 expression, as DOT:

  $ ../bin/mrpa.exe automaton g.tsv '[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])' | head -7
  digraph "mrpa_automaton" {
    rankdir=LR;
    start [shape=point, label=""];
    q0 [shape=circle, label="q0"];
    start -> q0;
    q1 [shape=circle, label="q1"];
    q2 [shape=circle, label="q2"];

GraphML export:

  $ ../bin/mrpa.exe graphml g.tsv | head -3
  <?xml version="1.0" encoding="UTF-8"?>
  <graphml xmlns="http://graphml.graphdrawing.org/xmlns" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:schemaLocation="http://graphml.graphdrawing.org/xmlns http://graphml.graphdrawing.org/xmlns/1.0/graphml.xsd">
    <key id="labelV" for="node" attr.name="labelV" attr.type="string"/>

Bound-free query equivalence (footnote 8's R+ identity):

  $ ../bin/mrpa.exe equiv g.tsv '[_,beta,_]+' '[_,beta,_] . [_,beta,_]*'
  EQUIVALENT

  $ ../bin/mrpa.exe equiv g.tsv '[_,beta,_]*' '[_,beta,_]+'
  DIFFERENT
  [1]

Richer statistics:

  $ ../bin/mrpa.exe stats g.tsv
  |V|=3 |E|=7 |Omega|=2
  density: 0.388889  reciprocity: 0.143  parallel pairs: 1
  out-degree: min 1 max 3 mean 2.33 median 3.0
  in-degree:  min 1 max 3 mean 2.33 median 3.0
  labels:
    beta                 4 edges (2 tails, 3 heads, max out 3, max in 2)
    alpha                3 edges (2 tails, 2 heads, max out 2, max in 2)
  
