mrpa fsck: offline journal integrity checking and repair. Exit codes
follow the documented contract: 0 = clean, 1 = unrecoverable problems
found (or not a journal at all), 3 = problems found and repaired.

A clean legacy v1 journal — no header, raw mutation lines:

  $ printf 'add\ta\tr\tb\nadd\tb\tr\tc\n' > clean.log
  $ ../bin/mrpa.exe fsck clean.log
  mrpa fsck: clean.log: clean (v1, 2 record(s))

A torn tail — the process died mid-write, leaving a partial final
record. fsck reports the damage and exits 1; the intact prefix is
salvageable:

  $ printf 'add\ta\tr\tb\nadd\tb\tr' > torn.log
  $ ../bin/mrpa.exe fsck torn.log
  mrpa fsck: torn.log: torn tail: 7 trailing byte(s) dropped at offset 10
  mrpa fsck: torn.log: 1 problem(s), 1 record(s) salvageable (v1); run with --repair to rewrite
  [1]

--repair rewrites the journal atomically, keeping the salvageable
prefix and upgrading it to the checksummed v2 format. Exit 3 signals
"was broken, now fixed":

  $ ../bin/mrpa.exe fsck --repair torn.log
  mrpa fsck: torn.log: torn tail: 7 trailing byte(s) dropped at offset 10
  mrpa fsck: torn.log: repaired (1 record(s) kept, now v2)
  [3]
  $ ../bin/mrpa.exe fsck torn.log
  mrpa fsck: torn.log: clean (v2, 1 record(s))
  $ cat torn.log
  #mrpa.journal/2
  1	c5681a16	add	a	r	b

v2 records carry a CRC-32 of their sequence number and payload, so a
flipped byte is detected rather than silently replayed:

  $ sed 's/add\ta\tr\tb/add\ta\tr\tc/' torn.log > bad.log
  $ ../bin/mrpa.exe fsck bad.log
  mrpa fsck: bad.log: line 2: checksum mismatch (record skipped)
  mrpa fsck: bad.log: 1 problem(s), 0 record(s) salvageable (v2); run with --repair to rewrite
  [1]

A record that parses but cannot be applied (deleting an edge of a
vertex the replayed graph never saw) is reported as unapplied:

  $ printf 'del\tghost\tr\tx\nadd\ta\tr\tb\n' > unapp.log
  $ ../bin/mrpa.exe fsck unapp.log
  mrpa fsck: unapp.log: line 1: deletes unknown vertex "x" (skipped)
  mrpa fsck: unapp.log: 1 problem(s), 1 record(s) salvageable (v1); run with --repair to rewrite
  [1]

A leftover compaction temp file means a compaction crashed after the
new journal was in place but before cleanup; fsck flags it and
--repair removes it:

  $ printf 'add\ta\tr\tb\n' > stale.log
  $ touch stale.log.compact
  $ ../bin/mrpa.exe fsck stale.log
  mrpa fsck: stale.log: stale compaction tmp stale.log.compact
  mrpa fsck: stale.log: 1 problem(s), 1 record(s) salvageable (v1); run with --repair to rewrite
  [1]
  $ ../bin/mrpa.exe fsck --repair stale.log
  mrpa fsck: stale.log: stale compaction tmp stale.log.compact
  mrpa fsck: stale.log: repaired (1 record(s) kept, now v2)
  [3]
  $ test -e stale.log.compact || echo tmp removed
  tmp removed

Journals from the future are refused outright, as is a missing path:

  $ printf '#mrpa.journal/9\n' > fut.log
  $ ../bin/mrpa.exe fsck fut.log
  mrpa fsck: fut.log: fut.log: unsupported journal format "#mrpa.journal/9"
  [1]
  $ ../bin/mrpa.exe fsck missing.log
  mrpa fsck: missing.log: missing.log: no such journal
  [1]
