(* Replication tests: the deterministic fault plane, the journal tailer
   (Source), the stream applier (Apply), QCheck prefix-consistency under
   every fault kind, and an end-to-end primary/replica pair with client
   failover across a dying primary. *)

open Mrpa_graph
open Mrpa_server
module H = Helpers
module R = Replication

(* --- Infrastructure ------------------------------------------------------ *)

let with_tmp_dir f =
  let dir = Filename.temp_file "mrpa_repl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      R.Fault.disarm ();
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

let with_tmp_journal f =
  with_tmp_dir (fun dir -> f (Filename.concat dir "j.log"))

(* Name-level signature of a graph, for equality across distinct graph
   values (interned ids differ between replays). *)
let graph_sig g =
  let name_of e =
    ( Digraph.vertex_name g (Edge.tail e),
      Digraph.label_name g (Edge.label e),
      Digraph.vertex_name g (Edge.head e) )
  in
  ( List.sort compare (List.map (Digraph.vertex_name g) (Digraph.vertices g)),
    List.sort compare (List.map name_of (Digraph.edges g)) )

let check_same_graph msg expected actual =
  Alcotest.(check (pair (list string) (list (triple string string string))))
    msg (graph_sig expected) (graph_sig actual)

let apply_step j g = function
  | `Add (t, l, h) -> ignore (Digraph.add g t l h)
  | `Del (t, l, h) ->
    ignore (Digraph.remove_edge g (H.e g t l h))
  | `Vertex n -> Journal.record_vertex j g n

let script =
  [ `Add ("a", "r", "b"); `Add ("b", "r", "c"); `Del ("a", "r", "b");
    `Vertex ("lone"); `Add ("c", "s", "d"); `Add ("d", "s", "a") ]

(* Write [steps] through an attached journal at [path]; returns the
   writer's graph. *)
let write_script path steps =
  let g = Digraph.create () in
  let j = Journal.attach ~on_warning:ignore g path in
  List.iter (apply_step j g) steps;
  Journal.sync j;
  Journal.close j;
  g

(* --- Fault plane ---------------------------------------------------------- *)

let test_fault_plane () =
  let deliver = List.map (fun l -> R.Fault.Deliver l) in
  (* unarmed: pass-through *)
  R.Fault.disarm ();
  Alcotest.(check bool) "pass-through" true (R.Fault.apply "x" = deliver [ "x" ]);
  (* drop the 2nd record *)
  R.Fault.arm R.Fault.Drop ~at:2;
  Alcotest.(check bool) "before drop" true (R.Fault.apply "r1" = deliver [ "r1" ]);
  Alcotest.(check bool) "dropped" true (R.Fault.apply "r2" = []);
  Alcotest.(check bool) "after drop" true (R.Fault.apply "r3" = deliver [ "r3" ]);
  (* duplicate *)
  R.Fault.arm R.Fault.Duplicate ~at:1;
  Alcotest.(check bool) "duplicated" true
    (R.Fault.apply "r1" = deliver [ "r1"; "r1" ]);
  (* reorder: r1 held, flushed behind r2 *)
  R.Fault.arm R.Fault.Reorder ~at:1;
  Alcotest.(check bool) "held" true (R.Fault.apply "r1" = []);
  Alcotest.(check bool) "swapped" true
    (R.Fault.apply "r2" = deliver [ "r2"; "r1" ]);
  (* tear: half the bytes then the connection dies *)
  R.Fault.arm R.Fault.Tear ~at:1;
  Alcotest.(check bool) "torn" true
    (R.Fault.apply "abcdef" = [ R.Fault.Tear_after "abc" ]);
  R.Fault.disarm ();
  Alcotest.check_raises "at < 1 rejected"
    (Invalid_argument "Replication.Fault.arm: at must be >= 1") (fun () ->
      R.Fault.arm R.Fault.Drop ~at:0)

(* --- Source: tailing the journal ------------------------------------------ *)

let test_source_tail () =
  with_tmp_journal (fun path ->
      let src = R.Source.create path in
      Alcotest.(check (list int)) "missing file: no records" []
        (List.map (fun r -> r.R.seq) (R.Source.poll src));
      let writer = write_script path script in
      let records = R.Source.poll src in
      Alcotest.(check (list int))
        "all records, 1-based, in order"
        (List.init (List.length script) (fun i -> i + 1))
        (List.map (fun r -> r.R.seq) records);
      Alcotest.(check int) "last_seq" (List.length script) (R.Source.last_seq src);
      check_same_graph "tailing replays the writer's state" writer
        (R.Source.graph src);
      Alcotest.(check (list int)) "idle poll: nothing new" []
        (List.map (fun r -> r.R.seq) (R.Source.poll src));
      (* Incremental append: only the new records come back. *)
      let g2 = Digraph.create () in
      let j2 = Journal.attach ~on_warning:ignore g2 path in
      ignore (Digraph.add g2 "x" "r" "y");
      Journal.sync j2;
      Journal.close j2;
      let more = R.Source.poll src in
      Alcotest.(check (list int)) "one new record"
        [ List.length script + 1 ]
        (List.map (fun r -> r.R.seq) more);
      check_same_graph "still in sync" g2 (R.Source.graph src))

let test_source_torn_tail () =
  with_tmp_journal (fun path ->
      ignore (write_script path script);
      let src = R.Source.create path in
      let n = List.length (R.Source.poll src) in
      (* Append half a record, no newline: stays pending, nothing breaks. *)
      let torn = Journal.frame ~seq:(n + 1) "add\tp\tq\tr" in
      let half = String.sub torn 0 (String.length torn / 2) in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc half;
      close_out oc;
      Alcotest.(check (list int)) "torn tail pending" []
        (List.map (fun r -> r.R.seq) (R.Source.poll src));
      Alcotest.(check bool) "not wedged by a torn tail" true
        (R.Source.wedged src = None);
      (* Writer completes the record: it applies on the next poll. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc (String.sub torn (String.length half)
                          (String.length torn - String.length half));
      output_string oc "\n";
      close_out oc;
      Alcotest.(check (list int)) "completed record applies" [ n + 1 ]
        (List.map (fun r -> r.R.seq) (R.Source.poll src)))

let test_source_compaction_epoch () =
  with_tmp_journal (fun path ->
      ignore (write_script path script);
      let src = R.Source.create path in
      ignore (R.Source.poll src);
      let epoch0 = R.Source.epoch src in
      (* Compact: new inode, resequenced from 1 — the tailer must start a
         new epoch rather than mis-read old sequence state. *)
      let g = Digraph.create () in
      let j = Journal.attach ~on_warning:ignore g path in
      Journal.compact j;
      ignore (Digraph.add g "post" "compact" "edge");
      Journal.sync j;
      Journal.close j;
      let records = R.Source.poll src in
      Alcotest.(check bool) "epoch bumped" true (R.Source.epoch src > epoch0);
      Alcotest.(check bool) "records resequenced from 1" true
        (match records with { R.seq = 1; _ } :: _ -> true | _ -> false);
      check_same_graph "compacted state + tail" g (R.Source.graph src))

let test_source_backlog () =
  with_tmp_journal (fun path ->
      ignore (write_script path script);
      let src = R.Source.create path in
      ignore (R.Source.poll src);
      let n = R.Source.last_seq src in
      let epoch = R.Source.epoch src in
      (match R.Source.backlog src ~from_seq:3 ~epoch with
      | R.Source.Tail records ->
        Alcotest.(check (list int)) "tail from 3"
          (List.init (n - 2) (fun i -> i + 3))
          (List.map (fun r -> r.R.seq) records)
      | R.Source.Reset _ -> Alcotest.fail "same epoch should be a Tail");
      (match R.Source.backlog src ~from_seq:(n + 1) ~epoch with
      | R.Source.Tail [] -> ()
      | _ -> Alcotest.fail "caught-up subscriber gets an empty Tail");
      (match R.Source.backlog src ~from_seq:3 ~epoch:(epoch + 1) with
      | R.Source.Reset records ->
        Alcotest.(check int) "reset carries full history" n
          (List.length records)
      | R.Source.Tail _ -> Alcotest.fail "epoch mismatch must Reset");
      match R.Source.backlog src ~from_seq:(n + 5) ~epoch with
      | R.Source.Reset _ -> ()
      | R.Source.Tail _ -> Alcotest.fail "subscriber ahead of us must Reset")

(* --- Apply: the replica's stream discipline ------------------------------- *)

let test_apply_discipline () =
  with_tmp_journal (fun path ->
      let writer = write_script path script in
      let src = R.Source.create path in
      let records = R.Source.poll src in
      let a = R.Apply.create () in
      List.iter
        (fun r ->
          match R.Apply.apply_line a r.R.line with
          | R.Apply.Applied seq ->
            Alcotest.(check int) "applied in order" r.R.seq seq
          | _ -> Alcotest.fail "in-order record must apply")
        records;
      check_same_graph "replica converges" writer (R.Apply.graph a);
      let last = R.Apply.last_applied a in
      (* Duplicates are skipped, not re-applied. *)
      (match R.Apply.apply_line a (List.hd records).R.line with
      | R.Apply.Skipped -> ()
      | _ -> Alcotest.fail "duplicate must be Skipped");
      (* A gap demands a resync. *)
      (match R.Apply.apply_line a (Journal.frame ~seq:(last + 5) "vertex\tz") with
      | R.Apply.Resync _ -> ()
      | _ -> Alcotest.fail "gap must Resync");
      (* Heartbeats: at-or-behind is liveness, ahead means lost records. *)
      (match R.Apply.apply_line a (R.heartbeat ~seq:last) with
      | R.Apply.Heartbeat seq -> Alcotest.(check int) "hb seq" last seq
      | _ -> Alcotest.fail "heartbeat at last_applied is fine");
      (match R.Apply.apply_line a (R.heartbeat ~seq:(last + 1)) with
      | R.Apply.Resync _ -> ()
      | _ -> Alcotest.fail "heartbeat ahead must Resync");
      (* Corrupt frames demand a resync. *)
      let good = Journal.frame ~seq:(last + 1) "vertex\tz" in
      let bad = String.mapi (fun i c -> if i = String.length good - 1 then
          (if c = 'z' then 'y' else 'z') else c) good in
      (match R.Apply.apply_line a bad with
      | R.Apply.Resync _ -> ()
      | _ -> Alcotest.fail "corrupt frame must Resync");
      (* Plain comments and blanks are skipped. *)
      Alcotest.(check bool) "comment skipped" true
        (R.Apply.apply_line a "# a comment" = R.Apply.Skipped);
      Alcotest.(check bool) "blank skipped" true
        (R.Apply.apply_line a "" = R.Apply.Skipped))

(* --- QCheck: prefix consistency under faults ------------------------------ *)

(* Simulate the full channel — backlog handoff, fault plane, applier,
   resubscribe-on-resync — without sockets, and demand convergence: after
   the stream drains (with a trailing heartbeat, the lost-record
   detector), the replica's graph equals the primary's. *)
let run_channel src a ~fault ~fault_at =
  R.Fault.arm fault ~at:fault_at;
  let rounds = ref 0 in
  let finished = ref false in
  while (not !finished) && !rounds < 12 do
    incr rounds;
    let backlog =
      match
        R.Source.backlog src
          ~from_seq:(R.Apply.last_applied a + 1)
          ~epoch:(R.Source.epoch src)
      with
      | R.Source.Tail records -> records
      | R.Source.Reset records ->
        R.Apply.reset a;
        records
    in
    (* The wire: every record line through the fault plane, then a
       heartbeat (bypasses the plane, as in the server). *)
    let lines =
      List.concat_map (fun r -> R.Fault.apply r.R.line) backlog
      @ [ R.Fault.Deliver (R.heartbeat ~seq:(R.Source.last_seq src)) ]
    in
    let broken = ref false in
    (try
       List.iter
         (fun action ->
           if not !broken then
             match action with
             | R.Fault.Tear_after partial ->
               (* The connection died mid-line; the partial bytes never
                  form a line, so the applier never sees them. *)
               ignore partial;
               broken := true
             | R.Fault.Deliver line -> (
               match R.Apply.apply_line a line with
               | R.Apply.Applied _ | R.Apply.Skipped | R.Apply.Heartbeat _ ->
                 ()
               | R.Apply.Resync _ -> broken := true))
         lines
     with Exit -> ());
    if not !broken then finished := true
  done;
  R.Fault.disarm ();
  !finished

let qcheck_prefix_consistency =
  let gen =
    QCheck2.Gen.(
      let* n_steps = int_range 1 12 in
      let* step_codes = list_size (return n_steps) (int_bound 9) in
      let* fault = int_bound 3 in
      let* fault_at = int_range 1 (max 1 n_steps) in
      return (step_codes, fault, fault_at))
  in
  let print (codes, fault, at) =
    Printf.sprintf "steps=[%s] fault=%d at=%d"
      (String.concat ";" (List.map string_of_int codes))
      fault at
  in
  H.qtest ~count:80 "replica converges under every fault" gen print
    (fun (step_codes, fault, fault_at) ->
      let fault =
        match fault with
        | 0 -> R.Fault.Drop
        | 1 -> R.Fault.Duplicate
        | 2 -> R.Fault.Reorder
        | _ -> R.Fault.Tear
      in
      let vertex i = Printf.sprintf "v%d" (i mod 5) in
      let steps =
        List.mapi
          (fun i code ->
            if code < 8 then `Add (vertex i, "r", vertex (code mod 5))
            else `Vertex (Printf.sprintf "solo%d" i))
          step_codes
      in
      let ok = ref false in
      with_tmp_journal (fun path ->
          ignore (write_script path steps);
          let src = R.Source.create path in
          ignore (R.Source.poll src);
          let a = R.Apply.create () in
          let finished = run_channel src a ~fault ~fault_at in
          ok :=
            finished
            && graph_sig (R.Source.graph src) = graph_sig (R.Apply.graph a)
            && R.Apply.last_applied a = R.Source.last_seq src);
      !ok)

(* --- End to end: primary, replica, failover ------------------------------- *)

let base_config endpoint role =
  {
    Server.endpoint;
    workers = 2;
    queue_capacity = 8;
    limits = Wire.default_limits;
    idle_timeout_ms = None;
    max_request_bytes = Server.default_max_request_bytes;
    max_predicted_cost = None;
    allow_remote_shutdown = false;
    role;
  }

let await ?(timeout = 10.0) msg cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Thread.yield ();
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let health_field ep field =
  let req =
    { Wire.id = Json.Null; verb = Wire.Health; query = None;
      options = Wire.default_options }
  in
  match Client.connect ep with
  | Error _ -> None
  | Ok conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        match Client.request conn req with
        | Error _ -> None
        | Ok json ->
          Option.bind (Json.member "health" json) (Json.member field))

let response_error_code line =
  match Json.parse line with
  | Error _ -> None
  | Ok json ->
    Option.bind (Json.member "error" json) (fun e ->
        Option.bind (Json.member "code" e) Json.to_string_opt)

let test_e2e_replication () =
  with_tmp_dir (fun dir ->
      let journal = Filename.concat dir "primary.log" in
      let p_sock = Filename.concat dir "p.sock" in
      let r_sock = Filename.concat dir "r.sock" in
      let p_ep = Wire.Unix_socket p_sock in
      let r_ep = Wire.Unix_socket r_sock in
      (* Seed the journal before the primary starts: a restarted primary
         must serve its data immediately. *)
      let writer = Digraph.create () in
      let j = Journal.attach ~on_warning:ignore writer journal in
      ignore (Digraph.add writer "a" "knows" "b");
      ignore (Digraph.add writer "b" "knows" "c");
      Journal.sync j;
      let primary =
        Server.create (base_config p_ep (Server.Primary { journal }))
      in
      let p_thread = Thread.create (fun () -> Server.serve primary) () in
      let replica =
        Server.create (base_config r_ep (Server.Replica { follow = p_ep }))
      in
      let r_thread = Thread.create (fun () -> Server.serve replica) () in
      let primary_stopped = ref false in
      Fun.protect
        ~finally:(fun () ->
          if not !primary_stopped then Server.stop primary;
          Server.stop replica;
          Thread.join p_thread;
          Thread.join r_thread;
          Journal.close j)
        (fun () ->
          await "primary health" (fun () ->
              health_field p_ep "role" = Some (Json.String "primary"));
          Alcotest.(check (option int))
            "primary replayed the seed journal" (Some 2)
            (Option.bind (health_field p_ep "last_seq") Json.to_int_opt);
          (* Replica catches up to the seed records. *)
          await "replica catch-up" (fun () ->
              Option.bind (health_field r_ep "last_seq") Json.to_int_opt
              = Some 2
              && Option.bind (health_field r_ep "lag") Json.to_int_opt
                 = Some 0);
          Alcotest.(check (option bool))
            "replica connected" (Some true)
            (Option.bind (health_field r_ep "connected") Json.to_bool_opt);
          (* Live write: appended records stream through. *)
          ignore (Digraph.add writer "c" "knows" "d");
          Journal.sync j;
          await "live record replicated" (fun () ->
              Option.bind (health_field r_ep "last_seq") Json.to_int_opt
              = Some 3);
          (* The replica serves the replicated data... *)
          let query ep options =
            let req =
              { Wire.id = Json.Null; verb = Wire.Count;
                query = Some "[c,knows,_]"; options }
            in
            Client.request_retry ep req
          in
          await "replica snapshot includes seq 3" (fun () ->
              match
                query r_ep { Wire.default_options with min_seq = Some 3 }
              with
              | Ok line -> response_error_code line = None
              | Error _ -> false);
          (* ...but honestly refuses a bound it cannot meet. *)
          (match
             query r_ep { Wire.default_options with min_seq = Some 99 }
           with
          | Ok line ->
            Alcotest.(check (option string))
              "unreachable min_seq is a stale error" (Some "stale")
              (response_error_code line)
          | Error m -> Alcotest.failf "stale probe failed: %s" m);
          (* An authority ignores max_staleness (it is never stale). *)
          (match
             query p_ep
               { Wire.default_options with max_staleness_ms = Some 1.0 }
           with
          | Ok line ->
            Alcotest.(check (option string))
              "primary is never stale" None (response_error_code line)
          | Error m -> Alcotest.failf "primary probe failed: %s" m);
          (* Failover: the same endpoint list works before, during and
             after the primary's death. *)
          let failover () =
            Client.request_failover
              ~policy:{ Client.retries = 6; backoff_ms = 20.0 }
              ~sleep:(fun _ -> Unix.sleepf 0.01)
              [ p_ep; r_ep ]
              { Wire.id = Json.Null; verb = Wire.Count;
                query = Some "[c,knows,_]"; options = Wire.default_options }
          in
          (match failover () with
          | Ok line ->
            Alcotest.(check (option string)) "failover before death" None
              (response_error_code line)
          | Error m -> Alcotest.failf "failover before death: %s" m);
          Server.stop primary;
          Thread.join p_thread;
          primary_stopped := true;
          (match failover () with
          | Ok line ->
            Alcotest.(check (option string)) "failover after death" None
              (response_error_code line)
          | Error m -> Alcotest.failf "failover after death: %s" m);
          (* The replica notices the loss and reports it honestly. *)
          await "replica reports disconnect" (fun () ->
              Option.bind (health_field r_ep "connected") Json.to_bool_opt
              = Some false);
          Alcotest.(check (option int))
            "replica still serves its prefix" (Some 3)
            (Option.bind (health_field r_ep "last_seq") Json.to_int_opt)))

(* Standalone servers answer health too, and reject min_seq demands — they
   have no journal to be at any sequence of. *)
let test_standalone_health_and_stale () =
  with_tmp_dir (fun dir ->
      let sock = Filename.concat dir "s.sock" in
      let ep = Wire.Unix_socket sock in
      let snapshot = Snapshot.of_graph (H.paper_graph ()) in
      let server =
        Server.create ~snapshot (base_config ep Server.Standalone)
      in
      let thread = Thread.create (fun () -> Server.serve server) () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join thread)
        (fun () ->
          await "standalone health" (fun () ->
              health_field ep "role" = Some (Json.String "standalone"));
          let req options =
            { Wire.id = Json.Null; verb = Wire.Count;
              query = Some "[i,alpha,_]"; options }
          in
          (match
             Client.request_retry ep
               (req { Wire.default_options with min_seq = Some 1 })
           with
          | Ok line ->
            Alcotest.(check (option string))
              "standalone min_seq is stale" (Some "stale")
              (response_error_code line)
          | Error m -> Alcotest.failf "stale probe failed: %s" m);
          match
            Client.request_retry ep
              (req { Wire.default_options with max_staleness_ms = Some 1.0 })
          with
          | Ok line ->
            Alcotest.(check (option string))
              "standalone never max-stale" None (response_error_code line)
          | Error m -> Alcotest.failf "staleness probe failed: %s" m))

let () =
  Alcotest.run "replication"
    [
      ( "fault-plane",
        [ Alcotest.test_case "actions" `Quick test_fault_plane ] );
      ( "source",
        [
          Alcotest.test_case "tail" `Quick test_source_tail;
          Alcotest.test_case "torn tail" `Quick test_source_torn_tail;
          Alcotest.test_case "compaction epoch" `Quick
            test_source_compaction_epoch;
          Alcotest.test_case "backlog" `Quick test_source_backlog;
        ] );
      ( "apply",
        [ Alcotest.test_case "stream discipline" `Quick test_apply_discipline ]
      );
      ("property", [ qcheck_prefix_consistency ]);
      ( "end-to-end",
        [
          Alcotest.test_case "primary/replica/failover" `Quick
            test_e2e_replication;
          Alcotest.test_case "standalone health" `Quick
            test_standalone_health_and_stale;
        ] );
    ]
