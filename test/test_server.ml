(* Tests for the mrpa_server subsystem: the hand-rolled JSON codec, the
   mrpa.wire/1 protocol (decode / encode / clamp), the bounded worker pool,
   frozen snapshots, concurrent-read soundness of shared snapshots, and an
   end-to-end client/server round trip over a Unix-domain socket. *)

open Mrpa_graph
open Mrpa_core
open Mrpa_engine
open Mrpa_server
module H = Helpers

(* --- Json --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "hi");
        ("n", Json.Number 3.0);
        ("f", Json.Number 2.5);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Number 1.0; Json.String "x"; Json.Bool false ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  let s = Json.to_string doc in
  (match Json.parse s with
  | Ok doc' -> Alcotest.(check bool) "roundtrip" true (doc = doc')
  | Error m -> Alcotest.failf "reparse failed: %s" m);
  Alcotest.(check string) "integral number prints without decimal point" "3"
    (Json.to_string (Json.Number 3.0));
  Alcotest.(check string) "fractional number keeps its fraction" "2.5"
    (Json.to_string (Json.Number 2.5))

let test_json_escapes () =
  (match Json.parse {|"a\nb\t\"\\\u0041\u00e9"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "escapes decode" "a\nb\t\"\\A\xc3\xa9" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (* surrogate pair: U+1F600 -> 4-byte UTF-8 *)
  match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error m -> Alcotest.failf "surrogate parse failed: %s" m

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":1,}";
  bad "[1 2]";
  bad "\"unterminated";
  bad "01";
  bad "true false";
  (* trailing garbage *)
  bad "nul";
  bad "{\"a\" 1}"

let test_json_accessors () =
  match Json.parse {|{"a": 4, "b": "x", "c": true, "d": 1.5}|} with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok j ->
    Alcotest.(check (option int)) "int member" (Some 4)
      (Option.bind (Json.member "a" j) Json.to_int_opt);
    Alcotest.(check (option string)) "string member" (Some "x")
      (Option.bind (Json.member "b" j) Json.to_string_opt);
    Alcotest.(check (option bool)) "bool member" (Some true)
      (Option.bind (Json.member "c" j) Json.to_bool_opt);
    Alcotest.(check bool) "non-integral float is not an int" true
      (Option.bind (Json.member "d" j) Json.to_int_opt = None);
    Alcotest.(check bool) "absent member" true (Json.member "zz" j = None)

(* --- Wire --------------------------------------------------------------- *)

let test_wire_decode () =
  let line =
    {|{"mrpa":"mrpa.wire/1","id":7,"verb":"query","query":"[i,alpha,_]",|}
    ^ {|"options":{"strategy":"bfs","limit":10,"max_length":4,"simple":true,|}
    ^ {|"deadline_ms":250,"fuel":1000,"max_paths":50}}|}
  in
  match Wire.decode_request line with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok r ->
    Alcotest.(check string) "verb" "query" (Wire.verb_name r.Wire.verb);
    Alcotest.(check (option string)) "query" (Some "[i,alpha,_]") r.Wire.query;
    let o = r.Wire.options in
    Alcotest.(check (option int)) "limit" (Some 10) o.Wire.limit;
    Alcotest.(check (option int)) "max_length" (Some 4) o.Wire.max_length;
    Alcotest.(check bool) "simple" true o.Wire.simple;
    Alcotest.(check (option int)) "fuel" (Some 1000) o.Wire.fuel;
    Alcotest.(check (option int)) "max_paths" (Some 50) o.Wire.max_paths;
    Alcotest.(check bool) "deadline" true (o.Wire.deadline_ms = Some 250.0);
    Alcotest.(check bool) "id echoed" true (r.Wire.id = Json.Number 7.0)

let test_wire_decode_errors () =
  let bad line frag =
    match Wire.decode_request line with
    | Ok _ -> Alcotest.failf "expected decode error for %s" line
    | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %s" frag)
        true
        (let lm = String.lowercase_ascii m in
         let lf = String.lowercase_ascii frag in
         let n = String.length lf in
         let rec scan i =
           i + n <= String.length lm
           && (String.sub lm i n = lf || scan (i + 1))
         in
         scan 0)
  in
  bad "not json" "bad json";
  bad {|{"verb":"ping"}|} "version";
  bad {|{"mrpa":"mrpa.wire/2","verb":"ping"}|} "version";
  bad {|{"mrpa":"mrpa.wire/1"}|} "verb";
  bad {|{"mrpa":"mrpa.wire/1","verb":"frobnicate"}|} "unknown verb";
  bad {|{"mrpa":"mrpa.wire/1","verb":"query"}|} "query";
  bad
    {|{"mrpa":"mrpa.wire/1","verb":"query","query":"x","options":{"limit":"ten"}}|}
    "limit";
  bad
    {|{"mrpa":"mrpa.wire/1","verb":"query","query":"x","options":{"fuel":-1}}|}
    "fuel";
  bad {|{"mrpa":"mrpa.wire/1","verb":"ping","options":3}|} "options"

let test_wire_roundtrip () =
  let r =
    {
      Wire.id = Json.Number 42.0;
      verb = Wire.Count;
      query = Some "[i,alpha,_]*";
      options =
        {
          Wire.default_options with
          limit = Some 5;
          simple = true;
          deadline_ms = Some 100.0;
        };
    }
  in
  match Wire.decode_request (Wire.encode_request r) with
  | Ok r' -> Alcotest.(check bool) "encode/decode roundtrip" true (r = r')
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let test_wire_clamp () =
  let limits =
    {
      Wire.max_deadline_ms = Some 500.0;
      max_fuel = Some 10_000;
      max_live_paths = None;
      max_limit = Some 100;
      max_length_cap = 6;
      min_staleness_ms = None;
    }
  in
  (* unset requests inherit the server ceiling *)
  let o = Wire.clamp limits Wire.default_options in
  Alcotest.(check bool) "deadline inherited" true (o.Wire.deadline_ms = Some 500.0);
  Alcotest.(check (option int)) "fuel inherited" (Some 10_000) o.Wire.fuel;
  Alcotest.(check (option int)) "limit inherited" (Some 100) o.Wire.limit;
  Alcotest.(check (option int)) "no max_paths ceiling" None o.Wire.max_paths;
  Alcotest.(check (option int)) "max_length defaults under cap" (Some 6)
    o.Wire.max_length;
  (* a greedy request is capped *)
  let greedy =
    {
      Wire.default_options with
      deadline_ms = Some 9_999.0;
      fuel = Some 1_000_000;
      limit = Some 5_000;
      max_length = Some 32;
    }
  in
  let o = Wire.clamp limits greedy in
  Alcotest.(check bool) "deadline capped" true (o.Wire.deadline_ms = Some 500.0);
  Alcotest.(check (option int)) "fuel capped" (Some 10_000) o.Wire.fuel;
  Alcotest.(check (option int)) "limit capped" (Some 100) o.Wire.limit;
  Alcotest.(check (option int)) "max_length capped" (Some 6) o.Wire.max_length;
  (* a modest request passes through *)
  let modest =
    { Wire.default_options with fuel = Some 10; max_length = Some 2 }
  in
  let o = Wire.clamp limits modest in
  Alcotest.(check (option int)) "modest fuel kept" (Some 10) o.Wire.fuel;
  Alcotest.(check (option int)) "modest max_length kept" (Some 2)
    o.Wire.max_length

let test_wire_responses () =
  let ok = Wire.response_ok ~id:(Json.Number 1.0) [ ("pong", "true") ] in
  (match Json.parse ok with
  | Ok j ->
    Alcotest.(check (option bool)) "ok:true" (Some true)
      (Option.bind (Json.member "ok" j) Json.to_bool_opt);
    Alcotest.(check (option bool)) "payload" (Some true)
      (Option.bind (Json.member "pong" j) Json.to_bool_opt);
    Alcotest.(check (option string)) "version" (Some Wire.version)
      (Option.bind (Json.member "mrpa" j) Json.to_string_opt)
  | Error m -> Alcotest.failf "ok response is not JSON: %s" m);
  let err =
    Wire.response_error ~id:Json.Null ~code:Wire.Overloaded "queue full"
  in
  match Json.parse err with
  | Ok j ->
    Alcotest.(check (option bool)) "ok:false" (Some false)
      (Option.bind (Json.member "ok" j) Json.to_bool_opt);
    Alcotest.(check (option string)) "code" (Some "overloaded")
      (Option.bind (Json.member "error" j) (fun e ->
           Option.bind (Json.member "code" e) Json.to_string_opt))
  | Error m -> Alcotest.failf "error response is not JSON: %s" m

(* --- Pool --------------------------------------------------------------- *)

let test_pool_runs_jobs () =
  let pool = Pool.create ~workers:3 ~queue_capacity:16 in
  let count = Atomic.make 0 in
  for _ = 1 to 10 do
    Alcotest.(check bool) "accepted" true
      (Pool.submit pool (fun () -> Atomic.incr count))
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "all jobs ran" 10 (Atomic.get count)

let test_pool_overload () =
  let pool = Pool.create ~workers:1 ~queue_capacity:2 in
  let gate = Mutex.create () in
  let release = Condition.create () in
  let released = ref false in
  let blocker () =
    Mutex.lock gate;
    while not !released do
      Condition.wait release gate
    done;
    Mutex.unlock gate
  in
  (* occupy the single worker... *)
  Alcotest.(check bool) "blocker accepted" true (Pool.submit pool blocker);
  (* give the worker a beat to pick the blocker up, then fill the queue *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  while Pool.running pool = 0 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check int) "worker busy" 1 (Pool.running pool);
  Alcotest.(check bool) "queued 1" true (Pool.submit pool (fun () -> ()));
  Alcotest.(check bool) "queued 2" true (Pool.submit pool (fun () -> ()));
  (* ...and the queue is now full: explicit backpressure *)
  Alcotest.(check bool) "overloaded" false (Pool.submit pool (fun () -> ()));
  Alcotest.(check int) "two waiting" 2 (Pool.queued pool);
  Mutex.lock gate;
  released := true;
  Condition.broadcast release;
  Mutex.unlock gate;
  Pool.shutdown pool;
  Alcotest.(check int) "drained" 0 (Pool.queued pool)

let test_pool_shutdown_drains () =
  let pool = Pool.create ~workers:2 ~queue_capacity:32 in
  let count = Atomic.make 0 in
  for _ = 1 to 20 do
    ignore (Pool.submit pool (fun () -> Atomic.incr count))
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "queued jobs ran before exit" 20 (Atomic.get count);
  Alcotest.(check bool) "refused after shutdown" false
    (Pool.submit pool (fun () -> ()))

let test_pool_survives_raising_job () =
  let pool = Pool.create ~workers:1 ~queue_capacity:8 in
  let ran = Atomic.make false in
  ignore (Pool.submit pool (fun () -> failwith "boom"));
  ignore (Pool.submit pool (fun () -> Atomic.set ran true));
  Pool.shutdown pool;
  Alcotest.(check bool) "later job still ran" true (Atomic.get ran);
  Alcotest.(check int) "error counted" 1 (Pool.job_errors pool)

let test_pool_rejects_bad_geometry () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Pool.create: workers must be >= 1") (fun () ->
      ignore (Pool.create ~workers:0 ~queue_capacity:4));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Pool.create: queue_capacity must be >= 1") (fun () ->
      ignore (Pool.create ~workers:1 ~queue_capacity:0))

(* --- Snapshot ----------------------------------------------------------- *)

let test_snapshot_freezes_copy () =
  let g = H.paper_graph () in
  let snap = Snapshot.of_graph g in
  let fg = Snapshot.graph snap in
  Alcotest.(check bool) "frozen" true (Digraph.is_frozen fg);
  Alcotest.(check int) "same edges" (Digraph.n_edges g) (Digraph.n_edges fg);
  (* mutation on the snapshot raises... *)
  Alcotest.(check bool) "add raises" true
    (match Digraph.add fg "new" "r" "new2" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* ...unknown-name interning raises too (it would mutate the interner) *)
  Alcotest.(check bool) "unknown vertex raises" true
    (match Digraph.vertex fg "nope" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* known names still resolve on the frozen graph *)
  Alcotest.(check bool) "known vertex resolves" true
    (Option.is_some (Digraph.find_vertex fg "i"));
  (* the original stays live and independent *)
  ignore (Digraph.add g "x" "gamma" "y");
  Alcotest.(check bool) "original still mutable" true
    (Digraph.n_edges g = Digraph.n_edges fg + 1)

let test_snapshot_queryable () =
  let snap = Snapshot.of_graph (H.paper_graph ()) in
  match Engine.query (Snapshot.graph snap) "[i,alpha,_]" with
  | Ok r ->
    Alcotest.(check int) "two alpha edges from i" 2
      (Path_set.cardinal r.Engine.paths)
  | Error m -> Alcotest.failf "query failed: %s" m

(* --- Concurrent-read soundness (satellite 3) ----------------------------- *)

(* The thread-safety contract under test: any number of domains may query
   one frozen snapshot concurrently and every one of them computes exactly
   the single-threaded denotation. *)

let queries =
  [
    "[i,alpha,_]";
    "[i,alpha,_] . [_,beta,_]";
    "[_,alpha,_]*";
    "([_,alpha,_] | [_,beta,_])*";
    "[_,beta,_] . [_,beta,_]";
  ]

let run_all g =
  List.map
    (fun q ->
      match Engine.query ~max_length:6 g q with
      | Ok r -> r.Engine.paths
      | Error m -> Alcotest.failf "query %S failed: %s" q m)
    queries

let test_concurrent_domains_agree () =
  let snap = Snapshot.of_graph (H.paper_graph ()) in
  let fg = Snapshot.graph snap in
  let reference = run_all fg in
  let n_domains = 4 and rounds = 5 in
  let worker () =
    let ok = ref true in
    for _ = 1 to rounds do
      let got = run_all fg in
      if not (List.for_all2 Path_set.equal reference got) then ok := false
    done;
    !ok
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join domains in
  Alcotest.(check (list bool))
    "every domain matches the sequential reference"
    (List.init n_domains (fun _ -> true))
    results

let qcheck_concurrent_snapshot_sound =
  H.qtest ~count:15 "concurrent snapshot queries = sequential denotation"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let exprs = List.init 3 (fun _ -> H.random_expr rng g) in
      let snap = Snapshot.of_graph g in
      let fg = Snapshot.graph snap in
      let eval gr =
        List.map
          (fun e -> (Engine.query_expr ~max_length:4 gr e).Engine.paths)
          exprs
      in
      let reference = eval fg in
      let domains = List.init 3 (fun _ -> Domain.spawn (fun () -> eval fg)) in
      let results = List.map Domain.join domains in
      List.for_all
        (fun got -> List.for_all2 Path_set.equal reference got)
        results)

(* --- End-to-end: server + client over a Unix socket ---------------------- *)

let with_server ?(limits = Wire.default_limits) ?idle_timeout_ms
    ?(max_request_bytes = Server.default_max_request_bytes) ?max_predicted_cost
    ?snapshot ?(workers = 2) ?(queue_capacity = 8) f =
  let dir = Filename.temp_file "mrpa_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket_path = Filename.concat dir "s.sock" in
  let config =
    {
      Server.endpoint = Wire.Unix_socket socket_path;
      workers;
      queue_capacity;
      limits;
      idle_timeout_ms;
      max_request_bytes;
      max_predicted_cost;
      allow_remote_shutdown = false;
      role = Server.Standalone;
    }
  in
  let snapshot =
    match snapshot with
    | Some s -> s
    | None -> Snapshot.of_graph (H.paper_graph ())
  in
  let server = Server.create ~snapshot config in
  let thread = Thread.create (fun () -> Server.serve server) () in
  let connect_with_retry () =
    let deadline = Unix.gettimeofday () +. 5.0 in
    let rec go () =
      match Client.connect (Wire.Unix_socket socket_path) with
      | Ok conn -> conn
      | Error m ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "server never came up: %s" m
        else begin
          Thread.yield ();
          Unix.sleepf 0.02;
          go ()
        end
    in
    go ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread;
      if Sys.file_exists socket_path then Sys.remove socket_path;
      Unix.rmdir dir)
    (fun () -> f server connect_with_retry socket_path)

let simple_req ?(id = Json.Null) ?query ?(options = Wire.default_options) verb =
  { Wire.id; verb; query; options }

let expect_ok name = function
  | Error m -> Alcotest.failf "%s: transport error: %s" name m
  | Ok j ->
    Alcotest.(check (option bool))
      (name ^ " ok") (Some true)
      (Option.bind (Json.member "ok" j) Json.to_bool_opt);
    j

let test_server_roundtrip () =
  with_server (fun server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* ping *)
          let j =
            expect_ok "ping"
              (Client.request conn (simple_req ~id:(Json.Number 1.0) Wire.Ping))
          in
          Alcotest.(check bool) "id echoed" true
            (Json.member "id" j = Some (Json.Number 1.0));
          (* query *)
          let j =
            expect_ok "query"
              (Client.request conn
                 (simple_req ~query:"[i,alpha,_]" Wire.Query))
          in
          let result = Json.member "result" j in
          Alcotest.(check bool) "has result" true (Option.is_some result);
          Alcotest.(check (option string)) "complete" (Some "complete")
            (Option.bind result (fun r ->
                 Option.bind (Json.member "verdict" r) Json.to_string_opt));
          (* count *)
          let j =
            expect_ok "count"
              (Client.request conn (simple_req ~query:"[i,alpha,_]" Wire.Count))
          in
          Alcotest.(check (option int)) "count" (Some 2)
            (Option.bind (Json.member "count" j) Json.to_int_opt);
          (* a bad query is a query_error response, not a dead connection *)
          (match Client.request conn (simple_req ~query:"[[[" Wire.Query) with
          | Error m -> Alcotest.failf "bad query killed connection: %s" m
          | Ok j ->
            Alcotest.(check (option bool)) "bad query not ok" (Some false)
              (Option.bind (Json.member "ok" j) Json.to_bool_opt);
            Alcotest.(check (option string)) "code" (Some "query_error")
              (Option.bind (Json.member "error" j) (fun e ->
                   Option.bind (Json.member "code" e) Json.to_string_opt)));
          (* stats *)
          let j = expect_ok "stats" (Client.request conn (simple_req Wire.Stats)) in
          Alcotest.(check bool) "has stats payload" true
            (Option.is_some (Json.member "stats" j)));
      Alcotest.(check bool) "connection counted" true
        (Server.connections_served server >= 1))

let test_server_clamps_options () =
  (* a tiny fuel ceiling forces a partial verdict even when the client asks
     for an unbounded run *)
  let limits = { Wire.default_limits with max_fuel = Some 5 } in
  with_server ~limits (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let j =
            expect_ok "governed query"
              (Client.request conn
                 (simple_req ~query:"([_,alpha,_] | [_,beta,_])*" Wire.Query))
          in
          match
            Option.bind (Json.member "result" j) (fun r ->
                Option.bind (Json.member "verdict" r) Json.to_string_opt)
          with
          | Some v ->
            Alcotest.(check bool)
              (Printf.sprintf "verdict %S is partial:fuel" v)
              true
              (String.length v >= 12 && String.sub v 0 12 = "partial:fuel")
          | None -> Alcotest.fail "no verdict in result"))

(* absent counter = never incremented = 0 *)
let counter_of_stats j key =
  Option.value ~default:0
    (Option.bind (Json.member "stats" j) (fun s ->
         Option.bind (Json.member "counters" s) (fun c ->
             Option.bind (Json.member key c) Json.to_int_opt)))

let test_server_lint_verb () =
  with_server (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let j =
            expect_ok "lint"
              (Client.request conn (simple_req ~query:"[i,alpha,_]*" Wire.Lint))
          in
          let lint = Json.member "lint" j in
          Alcotest.(check bool) "has lint payload" true (Option.is_some lint);
          Alcotest.(check bool) "has findings list" true
            (Option.bind lint (Json.member "findings") <> None);
          Alcotest.(check bool) "has predicted_cost" true
            (Option.bind lint (Json.member "predicted_cost") <> None);
          (* an unparseable query is a query_error, not a dead connection *)
          (match Client.request conn (simple_req ~query:"[[[" Wire.Lint) with
          | Error m -> Alcotest.failf "bad lint killed connection: %s" m
          | Ok j ->
            Alcotest.(check (option string)) "code" (Some "query_error")
              (Option.bind (Json.member "error" j) (fun e ->
                   Option.bind (Json.member "code" e) Json.to_string_opt)));
          (* lint runs are counted, and never occupy a worker *)
          let j =
            expect_ok "stats" (Client.request conn (simple_req Wire.Stats))
          in
          Alcotest.(check int) "lint counted" 1
            (counter_of_stats j "server.lints");
          Alcotest.(check int) "no query dispatched" 0
            (counter_of_stats j "server.queries")))

let test_server_admission_control () =
  (* Pick the ceiling from the analysis itself so the test tracks the cost
     model: just enough for the cheap anchored query, strictly less than
     the unanchored star needs. *)
  let cheap = "[i,alpha,_]" and expensive = "([_,alpha,_] | [_,beta,_])*" in
  let g = H.paper_graph () in
  let stats = Mrpa_graph.Stat.profile g in
  let cost_of q =
    match Parser.parse_spanned g q with
    | Error _ -> Alcotest.failf "setup: %s does not parse" q
    | Ok e -> (
      match
        (Mrpa_lint.Cost.analyze ~stats g ~max_length:8 e)
          .Mrpa_lint.Cost.predicted_cost
      with
      | Mrpa_lint.Interval.Fin n -> n
      | Mrpa_lint.Interval.Inf -> Alcotest.fail "setup: infinite bound")
  in
  let ceiling = cost_of cheap in
  Alcotest.(check bool) "setup: the star costs more than the ceiling" true
    (cost_of expensive > ceiling);
  with_server ~max_predicted_cost:ceiling (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* under the ceiling: admitted and answered *)
          ignore (expect_ok "cheap query" (Client.request conn (simple_req ~query:cheap Wire.Query)));
          (* over the ceiling: refused with the dedicated error code *)
          (match Client.request conn (simple_req ~query:expensive Wire.Query) with
          | Error m -> Alcotest.failf "rejection killed connection: %s" m
          | Ok j ->
            Alcotest.(check (option bool)) "not ok" (Some false)
              (Option.bind (Json.member "ok" j) Json.to_bool_opt);
            Alcotest.(check (option string)) "code" (Some "infeasible")
              (Option.bind (Json.member "error" j) (fun e ->
                   Option.bind (Json.member "code" e) Json.to_string_opt)));
          (* the same ceiling applies to count *)
          (match Client.request conn (simple_req ~query:expensive Wire.Count) with
          | Error m -> Alcotest.failf "count rejection killed connection: %s" m
          | Ok j ->
            Alcotest.(check (option string)) "count code" (Some "infeasible")
              (Option.bind (Json.member "error" j) (fun e ->
                   Option.bind (Json.member "code" e) Json.to_string_opt)));
          (* a parse error still reports as query_error, not infeasible *)
          (match Client.request conn (simple_req ~query:"[[[" Wire.Query) with
          | Error m -> Alcotest.failf "parse error killed connection: %s" m
          | Ok j ->
            Alcotest.(check (option string)) "parse error code"
              (Some "query_error")
              (Option.bind (Json.member "error" j) (fun e ->
                   Option.bind (Json.member "code" e) Json.to_string_opt)));
          (* exactly the two rejections were counted, and only the admitted
             query ever reached the pool *)
          let j =
            expect_ok "stats" (Client.request conn (simple_req Wire.Stats))
          in
          Alcotest.(check int) "infeasible counted" 2
            (counter_of_stats j "server.infeasible");
          Alcotest.(check int) "one query dispatched" 1
            (counter_of_stats j "server.queries")))

let test_server_shutdown_verb () =
  with_server (fun _server connect _path ->
      let conn = connect () in
      let j =
        expect_ok "shutdown" (Client.request conn (simple_req Wire.Shutdown))
      in
      Alcotest.(check (option bool)) "stopping" (Some true)
        (Option.bind (Json.member "stopping" j) Json.to_bool_opt);
      Client.close conn
      (* with_server's finally joins the serve thread: if the shutdown verb
         did not actually stop the server, this test hangs and fails. *))

let test_server_bad_request_line () =
  with_server (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.request_raw conn "this is not json" with
          | Error m -> Alcotest.failf "transport error: %s" m
          | Ok line -> (
            match Json.parse line with
            | Error m -> Alcotest.failf "response not JSON: %s" m
            | Ok j ->
              Alcotest.(check (option string)) "bad_request" (Some "bad_request")
                (Option.bind (Json.member "error" j) (fun e ->
                     Option.bind (Json.member "code" e) Json.to_string_opt)))))

(* TCP server on an ephemeral port: bind port 0, let the kernel pick, and
   read the actual endpoint back through [Server.bound_endpoint]. *)
let with_tcp_server ?(allow_remote_shutdown = false) f =
  let snap = Snapshot.of_graph (H.paper_graph ()) in
  let config =
    {
      Server.endpoint = Wire.Tcp ("127.0.0.1", 0);
      workers = 1;
      queue_capacity = 4;
      limits = Wire.default_limits;
      idle_timeout_ms = None;
      max_request_bytes = Server.default_max_request_bytes;
      max_predicted_cost = None;
      allow_remote_shutdown;
      role = Server.Standalone;
    }
  in
  let server = Server.create ~snapshot:snap config in
  let thread = Thread.create (fun () -> Server.serve server) () in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec endpoint () =
    match Server.bound_endpoint server with
    | Some ep -> ep
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "tcp server never bound"
      else begin
        Unix.sleepf 0.02;
        endpoint ()
      end
  in
  let ep = endpoint () in
  let rec connect () =
    match Client.connect ep with
    | Ok conn -> conn
    | Error m ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "tcp connect failed: %s" m
      else begin
        Unix.sleepf 0.02;
        connect ()
      end
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread)
    (fun () -> f server connect)

let test_server_tcp_roundtrip () =
  with_tcp_server (fun _server connect ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let j =
            expect_ok "tcp query"
              (Client.request conn (simple_req ~query:"[i,alpha,_]" Wire.Query))
          in
          Alcotest.(check bool) "result over tcp" true
            (Option.is_some (Json.member "result" j))))

let stats_counter name j =
  Option.bind (Json.member "stats" j) (fun s ->
      Option.bind (Json.member "counters" s) (fun c ->
          Option.bind (Json.member name c) Json.to_int_opt))

let error_code_of j =
  Option.bind (Json.member "error" j) (fun e ->
      Option.bind (Json.member "code" e) Json.to_string_opt)

let test_server_overload_response () =
  (* 16 concurrent heavy queries against 2 workers + 8 queue slots: the
     requests arrive within a few ms of each other while each job takes
     tens of ms, so the pool overflows and sheds with [overloaded]. The
     overflow is a race by nature — a loaded machine can serialise the
     arrivals enough that every job is absorbed — so an unlucky round
     (no shed, but every client answered correctly) is retried a bounded
     number of times rather than failed; one shed round proves the
     backpressure path end to end. *)
  let limits = { Wire.default_limits with max_deadline_ms = Some 400.0 } in
  with_server ~limits (fun _server connect _path ->
      let heavy = "([_,alpha,_] | [_,beta,_])* . ([_,alpha,_] | [_,beta,_])*" in
      let round () =
        let conns = List.init 16 (fun _ -> connect ()) in
        Fun.protect
          ~finally:(fun () -> List.iter Client.close conns)
          (fun () ->
            let codes = Mutex.create () in
            let overloaded = ref 0 and answered = ref 0 in
            let threads =
              List.map
                (fun conn ->
                  Thread.create
                    (fun () ->
                      match
                        Client.request conn
                          (simple_req ~query:heavy
                             ~options:
                               {
                                 Wire.default_options with
                                 deadline_ms = Some 400.0;
                               }
                             Wire.Query)
                      with
                      | Error _ -> ()
                      | Ok j ->
                        Mutex.lock codes;
                        incr answered;
                        (match error_code_of j with
                        | Some "overloaded" -> incr overloaded
                        | _ -> ());
                        Mutex.unlock codes)
                    ())
                conns
            in
            List.iter Thread.join threads;
            Alcotest.(check int) "every client got an answer" 16 !answered;
            !overloaded)
      in
      let rec shed_round n =
        let overloaded = round () in
        if overloaded < 1 then
          if n = 0 then
            Alcotest.fail "no request shed in any round (pool never overflowed)"
          else shed_round (n - 1)
      in
      shed_round 4)

(* --- Pool supervision ----------------------------------------------------- *)

let test_pool_supervisor_restarts_worker () =
  let pool = Pool.create ~workers:1 ~queue_capacity:8 in
  (* Poison the only worker: a [Fatal] job kills it, and without the
     supervisor the pool would silently stop executing anything. *)
  ignore (Pool.submit pool (fun () -> raise (Pool.Fatal "poisoned")));
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Pool.restarts pool = 0 && Unix.gettimeofday () < deadline do
    Thread.yield ();
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "restart counted" 1 (Pool.restarts pool);
  let ran = Atomic.make false in
  Alcotest.(check bool) "pool still accepts work" true
    (Pool.submit pool (fun () -> Atomic.set ran true));
  Pool.shutdown pool;
  Alcotest.(check bool) "replacement worker ran the job" true (Atomic.get ran);
  Alcotest.(check int) "fatal also counted as job error" 1
    (Pool.job_errors pool)

let test_pool_supervisor_restarts_repeatedly () =
  let pool = Pool.create ~workers:2 ~queue_capacity:16 in
  for _ = 1 to 3 do
    ignore (Pool.submit pool (fun () -> raise (Pool.Fatal "again")))
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Pool.restarts pool < 3 && Unix.gettimeofday () < deadline do
    Thread.yield ();
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "three restarts" 3 (Pool.restarts pool);
  let count = Atomic.make 0 in
  for _ = 1 to 8 do
    ignore (Pool.submit pool (fun () -> Atomic.incr count))
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "pool at full strength afterwards" 8 (Atomic.get count)

(* --- Session hardening ---------------------------------------------------- *)

let test_server_idle_timeout () =
  with_server ~idle_timeout_ms:200.0 (fun _server connect socket_path ->
      (* Wait for the server to bind before talking to the socket raw. *)
      Client.close (connect ());
      (* A slowloris client: drip a few bytes of a request line, never the
         newline, and go silent. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          ignore (Unix.write_substring fd "{\"mrpa\"" 0 7);
          let buf = Bytes.create 4096 in
          let n = Unix.read fd buf 0 4096 in
          let line = Bytes.sub_string buf 0 n in
          (match Json.parse (String.trim line) with
          | Error m -> Alcotest.failf "farewell is not JSON: %s (%S)" m line
          | Ok j ->
            Alcotest.(check (option string))
              "idle_timeout farewell" (Some "idle_timeout") (error_code_of j));
          (* ...after which the server closes: the connection is freed
             (clean EOF or a reset, depending on timing). *)
          Alcotest.(check bool) "closed after farewell" true
            (match Unix.read fd buf 0 4096 with
            | 0 -> true
            | _ -> false
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true));
      (* The server survived the rude client and counted the event. *)
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let j = expect_ok "stats" (Client.request conn (simple_req Wire.Stats)) in
          Alcotest.(check bool) "idle_timeouts counted" true
            (match stats_counter "server.idle_timeouts" j with
            | Some n -> n >= 1
            | None -> false);
          Alcotest.(check (option int))
            "worker_restarts surfaced" (Some 0)
            (stats_counter "server.worker_restarts" j)))

let test_server_oversized_request () =
  with_server ~max_request_bytes:64 (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let big = String.make 200 'x' in
          (match Client.request_raw conn big with
          | Error m -> Alcotest.failf "no response to oversized line: %s" m
          | Ok line -> (
            match Json.parse line with
            | Error m -> Alcotest.failf "response not JSON: %s" m
            | Ok j ->
              Alcotest.(check (option string))
                "request_too_large" (Some "request_too_large")
                (error_code_of j)));
          (* Framing past an oversized line cannot be trusted: the server
             must have closed the connection (surfacing as an error or a
             reset, depending on timing). *)
          match Client.request_raw conn "{}" with
          | Error _ -> ()
          | exception Unix.Unix_error _ -> ()
          | Ok _ -> Alcotest.fail "connection survived an oversized request");
      (* A fresh, well-behaved connection still works. *)
      let conn2 = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn2)
        (fun () ->
          let j = expect_ok "stats" (Client.request conn2 (simple_req Wire.Stats)) in
          Alcotest.(check bool) "oversized counted" true
            (match stats_counter "server.oversized_requests" j with
            | Some n -> n >= 1
            | None -> false)))

(* --- Lru ------------------------------------------------------------------ *)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* touching "a" makes "b" the least-recently-used victim *)
  Alcotest.(check (option int)) "a hits" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check int) "bounded" 2 (Lru.length c);
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  (* replacing a key is not an eviction and does not grow the cache *)
  Lru.add c "c" 30;
  Alcotest.(check (option int)) "replaced" (Some 30) (Lru.find c "c");
  Alcotest.(check int) "still bounded" 2 (Lru.length c);
  Alcotest.(check int) "still one eviction" 1 (Lru.evictions c)

let test_lru_capacity_zero_disabled () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  Alcotest.(check int) "stores nothing" 0 (Lru.length c);
  Alcotest.(check (option int)) "always misses" None (Lru.find c "a");
  Alcotest.(check int) "no evictions" 0 (Lru.evictions c)

let test_lru_clear_keeps_counters () =
  let c = Lru.create ~capacity:4 in
  Lru.add c 1 "x";
  ignore (Lru.find c 1);
  ignore (Lru.find c 2);
  Lru.clear c;
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Alcotest.(check int) "hits kept" 1 (Lru.hits c);
  Alcotest.(check int) "misses kept" 1 (Lru.misses c);
  (* entries are really gone, not just hidden *)
  Alcotest.(check (option string)) "post-clear miss" None (Lru.find c 1)

(* --- Compiled-plan cache --------------------------------------------------- *)

let test_compile_parses_once () =
  let snap = Snapshot.of_graph (H.paper_graph ()) in
  let compile ?(max_length = 6) q =
    Snapshot.compile snap ~max_length ~simple:false q
  in
  (match compile "[i,alpha,_]" with
  | Error m -> Alcotest.failf "compile failed: %s" m
  | Ok c ->
    Alcotest.(check bool) "plan targets the requested bound" true
      (c.Snapshot.plan.Plan.max_length = 6));
  ignore (compile "[i,alpha,_]");
  ignore (compile "[i,alpha,_]");
  Alcotest.(check int) "three compiles, one parse" 1
    (Snapshot.parse_count snap);
  let hits, misses = Snapshot.plan_cache_stats snap in
  Alcotest.(check int) "two hits" 2 hits;
  Alcotest.(check int) "one miss" 1 misses;
  (* a different max_length is a different plan: fresh parse *)
  ignore (compile ~max_length:4 "[i,alpha,_]");
  Alcotest.(check int) "new key, new parse" 2 (Snapshot.parse_count snap);
  (* parse errors are cached too *)
  let e1 = compile "[[[" and e2 = compile "[[[" in
  Alcotest.(check bool) "error result" true (Result.is_error e1);
  Alcotest.(check bool) "identical cached error" true (e1 = e2);
  Alcotest.(check int) "typo parsed once" 3 (Snapshot.parse_count snap)

let test_strategy_override_outside_cache_key () =
  let snap = Snapshot.of_graph (H.paper_graph ()) in
  match Snapshot.compile snap ~max_length:6 ~simple:false "[i,alpha,_]" with
  | Error m -> Alcotest.failf "compile failed: %s" m
  | Ok c ->
    let p = c.Snapshot.plan in
    let other =
      if p.Plan.strategy = Plan.Reference then Plan.Stack_machine
      else Plan.Reference
    in
    let forced = Plan.with_strategy p other in
    Alcotest.(check bool) "strategy forced" true (forced.Plan.strategy = other);
    Alcotest.(check string) "reason recorded" "forced by caller"
      forced.Plan.strategy_reason;
    Alcotest.(check bool) "same strategy is the identity" true
      (Plan.with_strategy p p.Plan.strategy == p);
    (* the override happened after the cache: no second parse *)
    Alcotest.(check int) "still one parse" 1 (Snapshot.parse_count snap)

let test_server_single_parse_per_request () =
  (* The triple-parse regression: admission control, the lint verb and the
     worker used to each parse the query text. A generous admission ceiling
     keeps the cost analysis in the request path without rejecting. *)
  let snap = Snapshot.of_graph (H.paper_graph ()) in
  with_server ~snapshot:snap ~max_predicted_cost:1_000_000
    (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let q = "[i,alpha,_] . [_,beta,_]" in
          ignore
            (expect_ok "lint" (Client.request conn (simple_req ~query:q Wire.Lint)));
          ignore
            (expect_ok "query"
               (Client.request conn (simple_req ~query:q Wire.Query)));
          ignore
            (expect_ok "count"
               (Client.request conn (simple_req ~query:q Wire.Count)));
          ignore
            (expect_ok "query again"
               (Client.request conn (simple_req ~query:q Wire.Query)));
          Alcotest.(check int) "four requests, one parse" 1
            (Snapshot.parse_count snap);
          let hits, misses = Snapshot.plan_cache_stats snap in
          Alcotest.(check int) "one plan-cache miss" 1 misses;
          (* lint missed, then query and count hit; the repeat query is
             absorbed by the result cache before it ever compiles *)
          Alcotest.(check int) "query and count hit the plan cache" 2 hits;
          let j =
            expect_ok "stats" (Client.request conn (simple_req Wire.Stats))
          in
          Alcotest.(check (option int)) "server.parses" (Some 1)
            (stats_counter "server.parses" j);
          Alcotest.(check (option int)) "server.plan_cache_misses" (Some 1)
            (stats_counter "server.plan_cache_misses" j);
          Alcotest.(check (option int)) "server.plan_cache_hits" (Some 2)
            (stats_counter "server.plan_cache_hits" j);
          Alcotest.(check (option int)) "repeat query was a result hit"
            (Some 1)
            (stats_counter "server.result_cache_hits" j)))

(* --- Result cache ---------------------------------------------------------- *)

let rkey ?strategy ?limit query =
  Snapshot.result_key ~verb:"query" ~query ~max_length:6 ~simple:false
    ~strategy ~limit

let test_result_cache_invalidation_on_write () =
  let g = H.paper_graph () in
  let snap = Snapshot.of_graph g in
  let key = rkey "[i,alpha,_]" in
  Snapshot.cache_result snap ~generation:(Snapshot.generation snap) key
    [ ("result", "1") ];
  Alcotest.(check bool) "cached" true
    (Snapshot.cached_result snap key = Some [ ("result", "1") ]);
  (* any write to the watched source graph drops every cached result *)
  ignore (Digraph.add g "i" "alpha" "brand_new");
  Alcotest.(check bool) "dropped after write" true
    (Snapshot.cached_result snap key = None);
  let _, _, invalidations = Snapshot.result_cache_stats snap in
  Alcotest.(check int) "invalidation counted" 1 invalidations;
  (* unwatch detaches: later writes no longer invalidate *)
  Snapshot.cache_result snap ~generation:(Snapshot.generation snap) key
    [ ("result", "2") ];
  Snapshot.unwatch snap g;
  ignore (Digraph.add g "i" "alpha" "even_newer");
  Alcotest.(check bool) "unwatched: entry survives" true
    (Snapshot.cached_result snap key = Some [ ("result", "2") ])

let test_result_cache_never_stores_stale () =
  (* The write-then-read guarantee, deterministically: a payload computed
     before a write must not be stored after it. *)
  let g = H.paper_graph () in
  let snap = Snapshot.of_graph g in
  let key = rkey "[i,beta,_]" in
  let gen0 = Snapshot.generation snap in
  (* ... evaluation would happen here; the write races in first ... *)
  ignore (Digraph.add g "i" "beta" "mid_eval");
  Snapshot.cache_result snap ~generation:gen0 key [ ("result", "stale") ];
  Alcotest.(check bool) "stale store dropped" true
    (Snapshot.cached_result snap key = None);
  (* a payload computed at the current generation does store *)
  Snapshot.cache_result snap ~generation:(Snapshot.generation snap) key
    [ ("result", "fresh") ];
  Alcotest.(check bool) "fresh store lands" true
    (Snapshot.cached_result snap key = Some [ ("result", "fresh") ])

let test_result_cache_journal_invalidation () =
  (* Writes arriving through the durability layer — a journal replay into
     the live source graph — fire the same observers as direct writes. *)
  let dir = Filename.temp_file "mrpa_jrnl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let log = Filename.concat dir "g.journal" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists log then Sys.remove log;
      Unix.rmdir dir)
    (fun () ->
      (* scripted writer: a second process's journal of two edges *)
      let scratch = Digraph.create () in
      let j = Journal.attach scratch log in
      ignore (Digraph.add scratch "i" "alpha" "from_journal");
      ignore (Digraph.add scratch "from_journal" "beta" "i");
      Journal.close j;
      let g = H.paper_graph () in
      let snap = Snapshot.of_graph g in
      let key = rkey "[i,alpha,_]" in
      Snapshot.cache_result snap ~generation:(Snapshot.generation snap) key
        [ ("result", "pre_replay") ];
      Journal.replay_into g log;
      Alcotest.(check bool) "replay invalidated the cache" true
        (Snapshot.cached_result snap key = None);
      let _, _, invalidations = Snapshot.result_cache_stats snap in
      Alcotest.(check bool) "one invalidation per replayed write" true
        (invalidations >= 2))

let test_result_cache_concurrent_writes () =
  (* Readers cache under the generation protocol while a writer mutates the
     source graph. The invariant: after the final write, nothing cached
     before it is visible. *)
  let g = H.paper_graph () in
  let snap = Snapshot.of_graph g in
  let key = rkey "[_,alpha,_]" in
  let writes = 50 in
  let writer =
    Thread.create
      (fun () ->
        for i = 1 to writes do
          ignore (Digraph.add g "i" "alpha" (Printf.sprintf "w%d" i));
          Thread.yield ()
        done)
      ()
  in
  let reader () =
    for i = 1 to 200 do
      match Snapshot.cached_result snap key with
      | Some _ -> ()
      | None ->
        let gen = Snapshot.generation snap in
        Snapshot.cache_result snap ~generation:gen key
          [ ("result", string_of_int i) ]
    done
  in
  let readers = List.init 2 (fun _ -> Thread.create reader ()) in
  Thread.join writer;
  List.iter Thread.join readers;
  let gen_after = Snapshot.generation snap in
  Alcotest.(check bool) "every write bumped the generation" true
    (gen_after >= writes);
  (* one more write: whatever the racing readers left behind is dropped *)
  ignore (Digraph.add g "i" "alpha" "final");
  Alcotest.(check bool) "no entry survives the last write" true
    (Snapshot.cached_result snap key = None)

let test_server_write_then_read_not_stale () =
  (* End-to-end: a repeated query is served from the result cache until a
     write to the live source graph, after which it is recomputed. *)
  let g = H.paper_graph () in
  let snap = Snapshot.of_graph g in
  with_server ~snapshot:snap (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let req = simple_req ~query:"[i,alpha,_]" Wire.Query in
          let first = expect_ok "first" (Client.request conn req) in
          let second = expect_ok "second" (Client.request conn req) in
          let hits, _, _ = Snapshot.result_cache_stats snap in
          Alcotest.(check int) "repeat served from cache" 1 hits;
          ignore (Digraph.add g "i" "alpha" "post_write");
          let third = expect_ok "third" (Client.request conn req) in
          let hits_after, _, invalidations =
            Snapshot.result_cache_stats snap
          in
          Alcotest.(check int) "post-write request recomputed" hits hits_after;
          Alcotest.(check bool) "write invalidated" true (invalidations >= 1);
          (* the snapshot is immutable, so the recomputed answer matches the
             cached one — staleness is about cache entries, not the graph.
             (Compare the denotation, not the envelope: elapsed_ms varies.) *)
          let strip j =
            let f name = Option.bind (Json.member "result" j) (Json.member name) in
            ( f "paths",
              Option.bind (f "count") Json.to_int_opt,
              Option.bind (f "verdict") Json.to_string_opt )
          in
          Alcotest.(check bool) "answers agree" true
            (strip first = strip second && strip second = strip third)))

(* --- Pipelining ------------------------------------------------------------ *)

let test_pipelined_out_of_order () =
  (* Two tagged requests down one connection: a heavy query (dispatched to a
     worker) then a ping (answered inline by the session thread). The ping
     almost always overtakes; the ids match each response back regardless.
     The overtake is a race by nature, so an in-order round is retried a
     bounded number of times — correctness is asserted on every round. *)
  with_server (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let heavy =
            "([_,alpha,_] | [_,beta,_])* . ([_,alpha,_] | [_,beta,_])*"
          in
          let send req =
            match Client.send conn req with
            | Ok () -> ()
            | Error m -> Alcotest.failf "send: %s" m
          in
          let receive () =
            match Client.receive conn with
            | Ok j -> j
            | Error m -> Alcotest.failf "receive: %s" m
          in
          let rec round attempts n =
            let qid = Json.Number (float_of_int n) in
            let pid = Json.Number (float_of_int (n + 1)) in
            send (simple_req ~id:qid ~query:heavy Wire.Query);
            send (simple_req ~id:pid Wire.Ping);
            let first = receive () in
            let second = receive () in
            let find id =
              if Client.response_id first = id then first
              else if Client.response_id second = id then second
              else Alcotest.failf "no response carries the expected id"
            in
            let p = find pid and q = find qid in
            Alcotest.(check (option bool)) "ping answered" (Some true)
              (Option.bind (Json.member "pong" p) Json.to_bool_opt);
            Alcotest.(check bool) "query answered" true
              (Json.member "result" q <> None);
            if Client.response_id first = pid then ()
            else if attempts = 0 then
              Alcotest.fail "ping never overtook the heavy query"
            else round (attempts - 1) (n + 2)
          in
          round 9 1))

(* --- Blank-line hardening --------------------------------------------------- *)

let test_blank_lines_do_not_reset_idle_deadline () =
  (* The blank-line slowloris: each blank used to complete a "request
     cycle" and re-arm the idle clock. Dripping blanks faster than the
     timeout must still hit the deadline. *)
  with_server ~idle_timeout_ms:300.0 (fun _server connect socket_path ->
      Client.close (connect ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          let stop = Atomic.make false in
          let writer =
            Thread.create
              (fun () ->
                let i = ref 0 in
                while (not (Atomic.get stop)) && !i < 100 do
                  incr i;
                  (try ignore (Unix.write_substring fd "\n" 0 1)
                   with Unix.Unix_error _ -> Atomic.set stop true);
                  Thread.delay 0.05
                done)
              ()
          in
          let t0 = Unix.gettimeofday () in
          let buf = Bytes.create 4096 in
          let n = Unix.read fd buf 0 4096 in
          let elapsed = Unix.gettimeofday () -. t0 in
          Atomic.set stop true;
          Thread.join writer;
          (match Json.parse (String.trim (Bytes.sub_string buf 0 n)) with
          | Error m -> Alcotest.failf "farewell is not JSON: %s" m
          | Ok j ->
            Alcotest.(check (option string))
              "idle_timeout farewell" (Some "idle_timeout") (error_code_of j));
          Alcotest.(check bool)
            (Printf.sprintf "deadline held under blank drip (%.2fs)" elapsed)
            true (elapsed < 2.0)))

let test_blank_flood_cap () =
  with_server (fun _server connect socket_path ->
      Client.close (connect ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          (* far past the consecutive-blank cap, in one burst *)
          let flood = String.make 80 '\n' in
          ignore (Unix.write_substring fd flood 0 (String.length flood));
          let buf = Bytes.create 4096 in
          let n = Unix.read fd buf 0 4096 in
          (match Json.parse (String.trim (Bytes.sub_string buf 0 n)) with
          | Error m -> Alcotest.failf "farewell is not JSON: %s" m
          | Ok j ->
            Alcotest.(check (option string))
              "bad_request farewell" (Some "bad_request") (error_code_of j));
          (* ...and the connection is gone *)
          Alcotest.(check bool) "closed after farewell" true
            (match Unix.read fd buf 0 4096 with
            | 0 -> true
            | _ -> false
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true));
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let j =
            expect_ok "stats" (Client.request conn (simple_req Wire.Stats))
          in
          Alcotest.(check bool) "flood counted" true
            (match stats_counter "server.blank_floods" j with
            | Some n -> n >= 1
            | None -> false)))

(* --- Shutdown gating --------------------------------------------------------- *)

let test_tcp_shutdown_unauthorized () =
  with_tcp_server (fun _server connect ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (match Client.request conn (simple_req Wire.Shutdown) with
          | Error m -> Alcotest.failf "refusal killed connection: %s" m
          | Ok j ->
            Alcotest.(check (option bool)) "not ok" (Some false)
              (Option.bind (Json.member "ok" j) Json.to_bool_opt);
            Alcotest.(check (option string)) "code" (Some "unauthorized")
              (error_code_of j));
          (* the refused server keeps serving, on the same connection *)
          ignore
            (expect_ok "ping after refusal"
               (Client.request conn (simple_req Wire.Ping)));
          let j =
            expect_ok "stats" (Client.request conn (simple_req Wire.Stats))
          in
          Alcotest.(check (option int)) "refusal counted" (Some 1)
            (stats_counter "server.unauthorized" j)))

let test_tcp_shutdown_allowed () =
  with_tcp_server ~allow_remote_shutdown:true (fun _server connect ->
      let conn = connect () in
      let j =
        expect_ok "remote shutdown"
          (Client.request conn (simple_req Wire.Shutdown))
      in
      Alcotest.(check (option bool)) "stopping" (Some true)
        (Option.bind (Json.member "stopping" j) Json.to_bool_opt);
      Client.close conn
      (* with_tcp_server's finally joins the serve thread: a shutdown verb
         that did not actually stop the server hangs the test. *))

(* --- Degenerate options, every strategy -------------------------------------- *)

let all_strategies = [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ]

let result_field j name =
  Option.bind (Json.member "result" j) (Json.member name)

let run_with_options conn options query =
  let j =
    expect_ok query (Client.request conn (simple_req ~query ~options Wire.Query))
  in
  ( Option.bind (result_field j "count") Json.to_int_opt,
    Option.bind (result_field j "verdict") Json.to_string_opt )

let test_limit_zero_all_strategies () =
  with_server (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let outcomes =
            List.map
              (fun s ->
                run_with_options conn
                  {
                    Wire.default_options with
                    strategy = Some s;
                    limit = Some 0;
                  }
                  "[i,alpha,_]")
              all_strategies
          in
          match outcomes with
          | [] -> assert false
          | ((c0, v0) as first) :: rest ->
            Alcotest.(check (option int)) "limit 0 yields no paths" (Some 0)
              c0;
            Alcotest.(check bool) "verdict present" true (v0 <> None);
            List.iteri
              (fun i o ->
                Alcotest.(check bool)
                  (Printf.sprintf "strategy %d agrees with the reference" (i + 1))
                  true (o = first))
              rest))

let test_max_length_zero_all_strategies () =
  with_server (fun _server connect _path ->
      let conn = connect () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let outcomes =
            List.map
              (fun s ->
                run_with_options conn
                  {
                    Wire.default_options with
                    strategy = Some s;
                    max_length = Some 0;
                  }
                  "[i,alpha,_]")
              all_strategies
          in
          List.iteri
            (fun i (count, verdict) ->
              Alcotest.(check (option int))
                (Printf.sprintf "strategy %d: empty bound, empty answer" i)
                (Some 0) count;
              Alcotest.(check (option string))
                (Printf.sprintf "strategy %d: trivially complete" i)
                (Some "complete") verdict)
            outcomes))

(* --- Client retry --------------------------------------------------------- *)

let test_backoff_bounds () =
  let p = { Client.retries = 5; backoff_ms = 100.0 } in
  let lower = Client.backoff_delay_ms ~rand:(fun _ -> 0.0) p in
  let upper = Client.backoff_delay_ms ~rand:(fun x -> x) p in
  Alcotest.(check (float 1e-6)) "attempt 0 lower edge" 50.0 (lower ~attempt:0);
  Alcotest.(check (float 1e-6)) "attempt 0 upper edge" 100.0 (upper ~attempt:0);
  Alcotest.(check (float 1e-6)) "attempt 3 lower edge" 400.0 (lower ~attempt:3);
  Alcotest.(check (float 1e-6)) "attempt 3 upper edge" 800.0 (upper ~attempt:3);
  (* The window doubles per attempt until the 10 s cap. *)
  Alcotest.(check (float 1e-6)) "capped" 10_000.0 (upper ~attempt:30);
  Alcotest.(check (float 1e-6)) "cap lower edge" 5_000.0 (lower ~attempt:30)

(* A canned single-threaded wire peer: for each canned response, accept one
   connection, read one request line, answer, close. Lets the retry tests
   script exact server behaviour (overloaded, then recovered) without
   touching the real server's load machinery. *)
let canned_server socket_path responses =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 8;
  Thread.create
    (fun () ->
      List.iter
        (fun resp ->
          let c, _ = Unix.accept fd in
          let buf = Bytes.create 4096 in
          let rec read_line acc =
            if String.contains acc '\n' then ()
            else
              match Unix.read c buf 0 4096 with
              | 0 -> ()
              | n -> read_line (acc ^ Bytes.sub_string buf 0 n)
          in
          read_line "";
          ignore
            (Unix.write_substring c (resp ^ "\n") 0 (String.length resp + 1));
          Unix.close c)
        responses;
      Unix.close fd)
    ()

let with_retry_dir f =
  let dir = Filename.temp_file "mrpa_retry" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket_path = Filename.concat dir "s.sock" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists socket_path then Sys.remove socket_path;
      Unix.rmdir dir)
    (fun () -> f socket_path)

let overloaded_line =
  Wire.response_error ~id:Json.Null ~code:Wire.Overloaded "queue full"

let pong_line = Wire.response_ok ~id:Json.Null [ ("pong", "true") ]

let test_retry_on_overloaded_then_success () =
  with_retry_dir (fun socket_path ->
      let th = canned_server socket_path [ overloaded_line; pong_line ] in
      let sleeps = ref [] in
      let result =
        Client.request_retry
          ~policy:{ Client.retries = 3; backoff_ms = 1.0 }
          ~sleep:(fun s -> sleeps := s :: !sleeps)
          (Wire.Unix_socket socket_path)
          (simple_req Wire.Ping)
      in
      Thread.join th;
      (match result with
      | Error m -> Alcotest.failf "retry failed: %s" m
      | Ok line -> Alcotest.(check string) "second answer wins" pong_line line);
      Alcotest.(check int) "exactly one backoff sleep" 1 (List.length !sleeps))

let test_retry_exhausts_on_persistent_overload () =
  with_retry_dir (fun socket_path ->
      let th =
        canned_server socket_path
          [ overloaded_line; overloaded_line; overloaded_line ]
      in
      let sleeps = ref 0 in
      let result =
        Client.request_retry
          ~policy:{ Client.retries = 2; backoff_ms = 1.0 }
          ~sleep:(fun _ -> incr sleeps)
          (Wire.Unix_socket socket_path)
          (simple_req Wire.Ping)
      in
      Thread.join th;
      (* The last overloaded answer is a well-formed wire response and is
         handed back as Ok — the caller keeps the protocol-level taxonomy. *)
      (match result with
      | Error m -> Alcotest.failf "expected the overloaded answer: %s" m
      | Ok line ->
        Alcotest.(check string) "last overloaded response" overloaded_line line);
      Alcotest.(check int) "bounded attempts" 2 !sleeps)

let test_retry_until_server_appears () =
  with_retry_dir (fun socket_path ->
      (* Nothing listens yet; the endpoint materialises only inside the
         first backoff sleep — exactly the mrpa call --retries use case of
         racing a server that is still starting up. *)
      let th = ref None in
      let sleeps = ref 0 in
      let result =
        Client.request_retry
          ~policy:{ Client.retries = 3; backoff_ms = 1.0 }
          ~sleep:(fun _ ->
            incr sleeps;
            if !th = None then
              th := Some (canned_server socket_path [ pong_line ]))
          (Wire.Unix_socket socket_path)
          (simple_req Wire.Ping)
      in
      Option.iter Thread.join !th;
      (match result with
      | Error m -> Alcotest.failf "server appeared but retry failed: %s" m
      | Ok line -> Alcotest.(check string) "pong" pong_line line);
      Alcotest.(check int) "one retry sufficed" 1 !sleeps)

let test_retry_bounded_when_server_never_appears () =
  with_retry_dir (fun socket_path ->
      let sleeps = ref 0 in
      match
        Client.request_retry
          ~policy:{ Client.retries = 2; backoff_ms = 1.0 }
          ~sleep:(fun _ -> incr sleeps)
          (Wire.Unix_socket socket_path)
          (simple_req Wire.Ping)
      with
      | Ok _ -> Alcotest.fail "nothing listens; success is impossible"
      | Error m ->
        Alcotest.(check bool) "rendered reason" true (String.length m > 0);
        Alcotest.(check int) "slept between all attempts" 2 !sleeps)

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "wire",
        [
          Alcotest.test_case "decode" `Quick test_wire_decode;
          Alcotest.test_case "decode errors" `Quick test_wire_decode_errors;
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "clamp" `Quick test_wire_clamp;
          Alcotest.test_case "responses" `Quick test_wire_responses;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs jobs" `Quick test_pool_runs_jobs;
          Alcotest.test_case "overload" `Quick test_pool_overload;
          Alcotest.test_case "shutdown drains" `Quick test_pool_shutdown_drains;
          Alcotest.test_case "survives raising job" `Quick
            test_pool_survives_raising_job;
          Alcotest.test_case "rejects bad geometry" `Quick
            test_pool_rejects_bad_geometry;
          Alcotest.test_case "supervisor restarts worker" `Quick
            test_pool_supervisor_restarts_worker;
          Alcotest.test_case "supervisor restarts repeatedly" `Quick
            test_pool_supervisor_restarts_repeatedly;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "freezes a copy" `Quick test_snapshot_freezes_copy;
          Alcotest.test_case "queryable" `Quick test_snapshot_queryable;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "capacity zero disabled" `Quick
            test_lru_capacity_zero_disabled;
          Alcotest.test_case "clear keeps counters" `Quick
            test_lru_clear_keeps_counters;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "parses once" `Quick test_compile_parses_once;
          Alcotest.test_case "strategy override outside key" `Quick
            test_strategy_override_outside_cache_key;
          Alcotest.test_case "single parse per request" `Quick
            test_server_single_parse_per_request;
        ] );
      ( "result-cache",
        [
          Alcotest.test_case "invalidation on write" `Quick
            test_result_cache_invalidation_on_write;
          Alcotest.test_case "never stores stale" `Quick
            test_result_cache_never_stores_stale;
          Alcotest.test_case "journal invalidation" `Quick
            test_result_cache_journal_invalidation;
          Alcotest.test_case "concurrent writes" `Quick
            test_result_cache_concurrent_writes;
          Alcotest.test_case "write then read not stale" `Quick
            test_server_write_then_read_not_stale;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "domains agree" `Quick
            test_concurrent_domains_agree;
          qcheck_concurrent_snapshot_sound;
        ] );
      ( "server",
        [
          Alcotest.test_case "roundtrip" `Quick test_server_roundtrip;
          Alcotest.test_case "clamps options" `Quick test_server_clamps_options;
          Alcotest.test_case "lint verb" `Quick test_server_lint_verb;
          Alcotest.test_case "admission control" `Quick
            test_server_admission_control;
          Alcotest.test_case "shutdown verb" `Quick test_server_shutdown_verb;
          Alcotest.test_case "bad request line" `Quick
            test_server_bad_request_line;
          Alcotest.test_case "tcp roundtrip" `Quick test_server_tcp_roundtrip;
          Alcotest.test_case "overload" `Quick test_server_overload_response;
          Alcotest.test_case "idle timeout" `Quick test_server_idle_timeout;
          Alcotest.test_case "oversized request" `Quick
            test_server_oversized_request;
          Alcotest.test_case "pipelined out of order" `Quick
            test_pipelined_out_of_order;
          Alcotest.test_case "blank lines keep deadline" `Quick
            test_blank_lines_do_not_reset_idle_deadline;
          Alcotest.test_case "blank flood cap" `Quick test_blank_flood_cap;
          Alcotest.test_case "tcp shutdown unauthorized" `Quick
            test_tcp_shutdown_unauthorized;
          Alcotest.test_case "tcp shutdown allowed" `Quick
            test_tcp_shutdown_allowed;
          Alcotest.test_case "limit zero, all strategies" `Quick
            test_limit_zero_all_strategies;
          Alcotest.test_case "max_length zero, all strategies" `Quick
            test_max_length_zero_all_strategies;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff bounds" `Quick test_backoff_bounds;
          Alcotest.test_case "overloaded then success" `Quick
            test_retry_on_overloaded_then_success;
          Alcotest.test_case "persistent overload" `Quick
            test_retry_exhausts_on_persistent_overload;
          Alcotest.test_case "server appears mid-retry" `Quick
            test_retry_until_server_appears;
          Alcotest.test_case "bounded attempts" `Quick
            test_retry_bounded_when_server_never_appears;
        ] );
    ]
