open Mrpa_graph
open Mrpa_core
open Mrpa_automata
module H = Helpers

(* The paper's Figure 1 expression over the fixture graph:
   [i,α,_] ./∘ [_,β,_]* ./∘ (([_,α,j] ./∘ {(j,α,i)}) ∪ [_,α,k]) *)
let fig1_expr g =
  let i = H.v g "i" and j = H.v g "j" and k = H.v g "k" in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let open Expr.Dsl in
  Expr.sel (Selector.pattern ~src:(Vertex.Set.singleton i) ~lbl:(Label.Set.singleton alpha) ())
  <.> Expr.star (Expr.sel (Selector.label1 beta))
  <.> (Expr.sel (Selector.pattern ~lbl:(Label.Set.singleton alpha) ~dst:(Vertex.Set.singleton j) ())
       <.> Expr.edge (Edge.make ~tail:j ~label:alpha ~head:i)
      <|> Expr.sel (Selector.pattern ~lbl:(Label.Set.singleton alpha) ~dst:(Vertex.Set.singleton k) ()))

(* --- Glushkov ----------------------------------------------------------- *)

let test_glushkov_counts () =
  let g = H.paper_graph () in
  let a = Glushkov.build (fig1_expr g) in
  (* positions: [i,α,_], [_,β,_], [_,α,j], {(j,α,i)}, [_,α,k] *)
  Alcotest.(check int) "positions" 5 a.Glushkov.n_positions;
  Alcotest.(check bool) "not nullable" false a.Glushkov.nullable;
  Alcotest.(check (list int)) "first = the anchored α-selector" [ 1 ]
    a.Glushkov.first

let test_glushkov_nullable_star () =
  let a = Glushkov.build (Expr.star (Expr.sel Selector.universe)) in
  Alcotest.(check bool) "nullable" true a.Glushkov.nullable;
  Alcotest.(check bool) "accepts ε" true (Glushkov.accepts a Path.empty)

let test_glushkov_accepts_single_edges () =
  let g = H.paper_graph () in
  let a = Glushkov.build (Expr.sel (Selector.label1 (H.l g "beta"))) in
  Alcotest.(check bool) "β edge accepted" true
    (Glushkov.accepts a (Path.of_edge (H.e g "j" "beta" "k")));
  Alcotest.(check bool) "α edge rejected" false
    (Glushkov.accepts a (Path.of_edge (H.e g "i" "alpha" "j")));
  Alcotest.(check bool) "ε rejected" false (Glushkov.accepts a Path.empty)

let test_glushkov_join_requires_adjacency () =
  let g = H.paper_graph () in
  let e1 = H.e g "i" "alpha" "j" and e2 = H.e g "i" "beta" "k" in
  let r = Expr.join (Expr.edge e1) (Expr.edge e2) in
  let a = Glushkov.build r in
  Alcotest.(check bool) "disjoint pair rejected under join" false
    (Glushkov.accepts a (Path.of_edges [ e1; e2 ]));
  let rp = Expr.product (Expr.edge e1) (Expr.edge e2) in
  Alcotest.(check bool) "accepted under product" true
    (Glushkov.accepts (Glushkov.build rp) (Path.of_edges [ e1; e2 ]))

let test_glushkov_product_then_join () =
  (* (A ×∘ B) ./∘ C with B nullable: boundary between A and C must still be
     free (the LCA is the product). *)
  let g = H.paper_graph () in
  let e1 = H.e g "i" "alpha" "j" and e2 = H.e g "i" "beta" "k" in
  let r =
    Expr.join
      (Expr.product (Expr.edge e1) (Expr.opt (Expr.edge e2)))
      (Expr.sel Selector.universe)
  in
  let a = Glushkov.build r in
  (* e1 then (skip e2) then any edge: join boundary now applies between e1
     and the universe edge because the product's right side is empty. *)
  let e_jk = H.e g "j" "beta" "k" in
  Alcotest.(check bool) "joint continuation ok" true
    (Glushkov.accepts a (Path.of_edges [ e1; e_jk ]));
  Alcotest.(check bool) "disjoint continuation rejected" false
    (Glushkov.accepts a (Path.of_edges [ e1; e2 ]))

(* --- Recognizer strategies ----------------------------------------------- *)

let test_fig1_recognizer_positive_negative () =
  let g = H.paper_graph () in
  let r = fig1_expr g in
  let accept = Recognizer.cubic r in
  let e = H.e g in
  (* i -α-> j, j -β-> k? no: must end with α arriving at j (then (j,α,i)) or k *)
  Alcotest.(check bool) "i α j · j β k · k α j · (j,α,i)" true
    (accept
       (Path.of_edges
          [ e "i" "alpha" "j"; e "j" "beta" "k"; e "k" "alpha" "j"; e "j" "alpha" "i" ]));
  Alcotest.(check bool) "i α k direct: needs α-arrival at k after first α" false
    (accept (Path.of_edge (e "i" "alpha" "k")));
  Alcotest.(check bool) "two α hops to k" true
    (accept (Path.of_edges [ e "i" "alpha" "j"; e "j" "alpha" "i" ]) = false);
  Alcotest.(check bool) "i α j then j α i: label ok? second must arrive at j or k"
    false
    (accept (Path.of_edges [ e "i" "alpha" "j"; e "j" "alpha" "i" ]));
  (* β-loop in the middle *)
  Alcotest.(check bool) "with β loop" true
    (accept
       (Path.of_edges
          [ e "i" "alpha" "j"; e "j" "beta" "j"; e "j" "beta" "i"; e "i" "alpha" "k" ]))

let strategies_agree g r path =
  let expected = Recognizer.cubic r path in
  List.for_all
    (fun (_, strategy) ->
      Recognizer.make ~strategy ~graph:g r path = expected)
    Recognizer.strategies

let qcheck_strategies_agree_on_walks =
  H.qtest ~count:150 "all strategies agree (walks)" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let p = H.random_walk rng g 4 in
      strategies_agree g r p)

let qcheck_strategies_agree_on_random_paths =
  H.qtest ~count:150 "all strategies agree (random, possibly disjoint)"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let p = H.random_path rng g 4 in
      strategies_agree g r p)

let qcheck_recognizer_matches_denotation =
  H.qtest ~count:100 "accepts p ⟺ p ∈ denote" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let p = H.random_path rng g 3 in
      let denoted = Expr.denote g ~max_length:3 r in
      Recognizer.cubic r p = Path_set.mem p denoted)

let test_recognizer_epsilon () =
  let r_null = Expr.opt (Expr.sel Selector.universe) in
  let r_strict = Expr.sel Selector.universe in
  List.iter
    (fun (name, strategy) ->
      let g = H.paper_graph () in
      let accepts = Recognizer.make ~strategy ~graph:g r_null in
      Alcotest.(check bool) (name ^ " nullable accepts ε") true (accepts Path.empty);
      let accepts = Recognizer.make ~strategy ~graph:g r_strict in
      Alcotest.(check bool) (name ^ " strict rejects ε") false (accepts Path.empty))
    Recognizer.strategies

let test_recognizer_empty_expr () =
  let g = H.paper_graph () in
  List.iter
    (fun (name, strategy) ->
      let accepts = Recognizer.make ~strategy ~graph:g Expr.empty in
      Alcotest.(check bool) (name ^ " ∅ rejects ε") false (accepts Path.empty);
      Alcotest.(check bool) (name ^ " ∅ rejects edge") false
        (accepts (Path.of_edge (H.e g "i" "alpha" "j"))))
    Recognizer.strategies

(* --- DFA ------------------------------------------------------------------ *)

let test_dfa_minimize_not_larger () =
  let g = H.paper_graph () in
  let d = Dfa.create g (fig1_expr g) in
  let m = Dfa.minimize d in
  Alcotest.(check bool) "minimize shrinks or equals" true
    (Dfa.n_states m <= Dfa.n_states d);
  Alcotest.(check bool) "some letters" true (Dfa.n_letters d > 0)

let qcheck_dfa_equals_nfa =
  H.qtest ~count:100 "dfa ≡ nfa on graph paths" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let d = Dfa.create g r in
      let a = Glushkov.build r in
      let p = H.random_path rng g 4 in
      Dfa.accepts d p = Glushkov.accepts a p)

let qcheck_min_dfa_equals_dfa =
  H.qtest ~count:100 "minimized dfa ≡ dfa" H.with_graph_gen H.print_with_graph
    (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let d = Dfa.create g r in
      let m = Dfa.minimize d in
      let p = H.random_path rng g 4 in
      Dfa.accepts d p = Dfa.accepts m p)

let test_lazy_dfa_caches () =
  let g = H.paper_graph () in
  let d = Lazy_dfa.create (fig1_expr g) in
  let e = H.e g in
  let p =
    Path.of_edges [ e "i" "alpha" "j"; e "j" "beta" "i"; e "i" "alpha" "k" ]
  in
  Alcotest.(check bool) "accepts" true (Lazy_dfa.accepts d p);
  let states_after_one = Lazy_dfa.n_cached_states d in
  Alcotest.(check bool) "cached something" true (states_after_one > 0);
  Alcotest.(check bool) "accepts again" true (Lazy_dfa.accepts d p);
  Alcotest.(check int) "no new states on repeat" states_after_one
    (Lazy_dfa.n_cached_states d)

(* --- Generators ------------------------------------------------------------ *)

let reference g r ~max_length = Expr.denote g ~max_length r

let test_fig1_generator_agreement () =
  let rng = Prng.create 99 in
  let g = Generate.fig1 ~rng ~n_noise_vertices:4 ~n_noise_edges:8 in
  let r = fig1_expr g in
  let expected = reference g r ~max_length:5 in
  Alcotest.check H.path_set "product BFS = denotation" expected
    (Generator.generate g r ~max_length:5);
  Alcotest.check H.path_set "stack machine = denotation" expected
    (Stack_machine.run g r ~max_length:5);
  Alcotest.(check bool) "non-trivial (skeleton guarantees witnesses)" true
    (Path_set.cardinal expected >= 2)

let qcheck_generator_equals_denotation =
  H.qtest ~count:80 "product BFS = denotation" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      Path_set.equal
        (Generator.generate g r ~max_length:3)
        (reference g r ~max_length:3))

let qcheck_stack_machine_equals_denotation =
  H.qtest ~count:80 "stack machine = denotation" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      Path_set.equal
        (Stack_machine.run g r ~max_length:3)
        (reference g r ~max_length:3))

let qcheck_generated_accepted_by_recognizer =
  H.qtest ~count:60 "generated paths are recognised" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let accept = Recognizer.cubic r in
      Path_set.fold
        (fun p acc -> acc && accept p)
        (Generator.generate g r ~max_length:3)
        true)

let test_generator_max_paths () =
  let g = Generate.complete ~n:4 ~n_labels:2 in
  let r = Expr.sel Selector.universe in
  let s = Generator.generate ~max_paths:5 g r ~max_length:1 in
  Alcotest.(check int) "limited" 5 (Path_set.cardinal s)

let test_generator_exists_count () =
  let g = H.paper_graph () in
  let beta2 = Expr.repeat (Expr.sel (Selector.label1 (H.l g "beta"))) 2 in
  Alcotest.(check bool) "exists ββ" true (Generator.exists g beta2 ~max_length:2);
  (* bb joint pairs: (j,b,k)? k has no b out. (j,b,j)(j,b,.) 3, (j,b,i)(i,b,k) 1,
     (i,b,k)? k no b out. total 4 *)
  Alcotest.(check int) "count ββ" 4 (Generator.count g beta2 ~max_length:2)

let test_stack_machine_trace () =
  let g = H.paper_graph () in
  let r =
    Expr.join
      (Expr.sel (Selector.label1 (H.l g "alpha")))
      (Expr.sel (Selector.label1 (H.l g "beta")))
  in
  let depths = ref [] in
  let trace entry = depths := entry.Stack_machine.depth :: !depths in
  let result = Stack_machine.run ~trace g r ~max_length:2 in
  Alcotest.(check bool) "some paths" true (not (Path_set.is_empty result));
  Alcotest.(check bool) "trace observed all depths" true
    (List.mem 0 !depths && List.mem 1 !depths && List.mem 2 !depths)

let test_generator_epsilon_only () =
  let g = H.paper_graph () in
  Alcotest.check H.path_set "ε expression" Path_set.epsilon
    (Generator.generate g Expr.epsilon ~max_length:3);
  Alcotest.check H.path_set "∅ expression" Path_set.empty
    (Generator.generate g Expr.empty ~max_length:3);
  Alcotest.check H.path_set "stack machine ε" Path_set.epsilon
    (Stack_machine.run g Expr.epsilon ~max_length:3)

let test_generator_to_seq_lazy () =
  let g = Generate.complete ~n:5 ~n_labels:2 in
  let a = Glushkov.build (Expr.plus (Expr.sel Selector.universe)) in
  (* taking 3 elements of the stream must not enumerate everything *)
  let seq = Generator.to_seq g a ~max_length:4 in
  let taken = List.of_seq (Seq.take 3 seq) in
  Alcotest.(check int) "took 3" 3 (List.length taken)

(* --- Counting (DP) ----------------------------------------------------------- *)

let qcheck_counting_equals_denotation_cardinal =
  H.qtest ~count:80 "Counting.count = |denote|" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      Counting.count g r ~max_length:3
      = Path_set.cardinal (Expr.denote g ~max_length:3 r))

let test_counting_by_length_ring () =
  let g = Generate.ring ~n:4 ~n_labels:1 in
  let r = Expr.star (Expr.sel Selector.universe) in
  let counts = Counting.count_by_length g r ~max_length:5 in
  (* ring of 4: one joint walk per start per length; ε counts once *)
  Alcotest.(check (array int)) "per-length counts" [| 1; 4; 4; 4; 4; 4 |] counts

let test_counting_scales_past_enumeration () =
  (* complete graph: |denote| explodes; counting must stay cheap and exact. *)
  let g = Generate.complete ~n:6 ~n_labels:2 in
  let r = Expr.star (Expr.sel Selector.universe) in
  let counts = Counting.count_by_length g r ~max_length:4 in
  (* length-k joint walks: (n(n-1)k_labels) * ((n-1)*k_labels)^(k-1) =
     60 * 10^(k-1) *)
  Alcotest.(check int) "len 1" 60 counts.(1);
  Alcotest.(check int) "len 2" 600 counts.(2);
  Alcotest.(check int) "len 3" 6000 counts.(3);
  Alcotest.(check int) "len 4" 60000 counts.(4)

let test_counting_with_product_expr () =
  let g = H.paper_graph () in
  let u = Expr.sel Selector.universe in
  let r = Expr.product u u in
  Alcotest.(check int) "product counts all pairs" (7 * 7)
    (Counting.count g r ~max_length:2 - 0);
  Alcotest.(check int) "matches denotation"
    (Path_set.cardinal (Expr.denote g ~max_length:2 r))
    (Counting.count g r ~max_length:2)

(* --- Simple-path generation (ref [8]) ------------------------------------------ *)

let qcheck_simple_generation_equals_filter =
  H.qtest ~count:80 "generate ~simple = filter is_simple" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      Path_set.equal
        (Generator.generate ~simple:true g r ~max_length:3)
        (Path_set.restrict_simple (Generator.generate g r ~max_length:3)))

let test_simple_generation_complete_graph () =
  let g = Generate.complete ~n:4 ~n_labels:1 in
  let r = Expr.repeat (Expr.sel Selector.universe) 2 in
  (* simple 2-paths in K4: 4·3·2 ordered vertex triples *)
  Alcotest.(check int) "24 simple 2-paths" 24
    (Path_set.cardinal (Generator.generate ~simple:true g r ~max_length:2));
  (* unrestricted: 4·3·3 walks *)
  Alcotest.(check int) "36 walks" 36
    (Path_set.cardinal (Generator.generate g r ~max_length:2))

let test_simple_generation_terminates_on_cycle () =
  let g = Generate.ring ~n:5 ~n_labels:1 in
  let r = Expr.star (Expr.sel Selector.universe) in
  (* huge bound is fine: simple paths self-limit at n-1 hops *)
  let s = Generator.generate ~simple:true g r ~max_length:50 in
  (* ε + paths of length 1..4 from each of 5 starts *)
  Alcotest.(check int) "1 + 5·4" 21 (Path_set.cardinal s)

(* --- Equivalence (bound-free) -------------------------------------------------- *)

let test_equivalence_footnote8_unbounded () =
  let g = H.paper_graph () in
  let r = Expr.sel (Selector.label1 (H.l g "beta")) in
  (* the footnote-8 identities, with no length bound anywhere *)
  Alcotest.(check bool) "R+ = R.R*" true
    (Dfa.equivalent g (Expr.plus r) (Expr.join r (Expr.star r)));
  Alcotest.(check bool) "R? = R|eps" true
    (Dfa.equivalent g (Expr.opt r) (Expr.union r Expr.epsilon));
  Alcotest.(check bool) "R** = R*" true
    (Dfa.equivalent g (Expr.star (Expr.star r)) (Expr.star r));
  Alcotest.(check bool) "R*.R* = R*" true
    (Dfa.equivalent g (Expr.join (Expr.star r) (Expr.star r)) (Expr.star r))

let test_equivalence_distinguishes () =
  let g = H.paper_graph () in
  let a = Expr.sel (Selector.label1 (H.l g "alpha")) in
  let b = Expr.sel (Selector.label1 (H.l g "beta")) in
  Alcotest.(check bool) "a ≠ b" false (Dfa.equivalent g a b);
  Alcotest.(check bool) "a ≠ a.a" false (Dfa.equivalent g a (Expr.join a a));
  Alcotest.(check bool) "a* ≠ a+" false (Dfa.equivalent g (Expr.star a) (Expr.plus a))

let test_inclusion_identities () =
  let g = H.paper_graph () in
  let a = Expr.sel (Selector.label1 (H.l g "alpha")) in
  Alcotest.(check bool) "R ⊆ R*" true (Dfa.included g a (Expr.star a));
  Alcotest.(check bool) "R+ ⊆ R*" true
    (Dfa.included g (Expr.plus a) (Expr.star a));
  Alcotest.(check bool) "R* ⊄ R+" false
    (Dfa.included g (Expr.star a) (Expr.plus a));
  Alcotest.(check bool) "R ⊆ R|Q" true
    (Dfa.included g a (Expr.union a (Expr.sel (Selector.label1 (H.l g "beta")))));
  Alcotest.(check bool) "∅ ⊆ anything" true (Dfa.included g Expr.empty a)

let qcheck_inclusion_consistent_with_equivalence =
  H.qtest ~count:60 "equivalent = mutual inclusion" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r1 = H.random_expr rng g in
      let r2 = H.random_expr rng g in
      Dfa.equivalent g r1 r2
      = (Dfa.included g r1 r2 && Dfa.included g r2 r1))

let qcheck_inclusion_implies_denotation_subset =
  H.qtest ~count:60 "included ⟹ denotation subset" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r1 = H.random_expr rng g in
      let r2 = H.random_expr rng g in
      (not (Dfa.included g r1 r2))
      || Path_set.subset (Expr.denote g ~max_length:4 r1)
           (Expr.denote g ~max_length:4 r2))

let qcheck_simplify_equivalent_unbounded =
  H.qtest ~count:80 "optimiser rewrites are bound-free equivalences"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let r', _ = Mrpa_engine.Optimizer.simplify r in
      Dfa.equivalent g r r')

let qcheck_equivalence_implies_equal_denotation =
  H.qtest ~count:80 "equivalent ⟹ equal denotations" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r1 = H.random_expr rng g in
      let r2 = H.random_expr rng g in
      (not (Dfa.equivalent g r1 r2))
      || Path_set.equal (Expr.denote g ~max_length:4 r1)
           (Expr.denote g ~max_length:4 r2))

(* --- Viz ------------------------------------------------------------------------ *)

let test_viz_fig1_dot () =
  let g = H.paper_graph () in
  let dot = Viz.expr_to_dot ~name:"fig1" ~graph:g (fig1_expr g) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "digraph header" true (contains "digraph \"fig1\"" dot);
  Alcotest.(check bool) "start point" true (contains "start -> q0" dot);
  (* Figure 1's transition labels, with names resolved *)
  Alcotest.(check bool) "anchored alpha label" true (contains "[i,alpha,_]" dot);
  Alcotest.(check bool) "explicit edge set" true (contains "{(j,alpha,i)}" dot);
  (* the two arrival states are accepting: doublecircle appears *)
  Alcotest.(check bool) "accepting states" true (contains "doublecircle" dot);
  (* pure-join expression: no dashed (free) transitions *)
  Alcotest.(check bool) "no dashed edges" false (contains "dashed" dot)

let test_viz_product_dashed () =
  let u = Expr.sel Selector.universe in
  let dot = Viz.expr_to_dot (Expr.join (Expr.product u u) u) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "product boundary dashed" true (contains "dashed" dot)

(* --- Sampler ------------------------------------------------------------------ *)

let qcheck_sampler_population_equals_count =
  H.qtest ~count:60 "Sampler.population = Counting.count" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      Sampler.population (Sampler.prepare g r ~max_length:3)
      = Counting.count g r ~max_length:3)

let qcheck_sampler_draws_denoted_paths =
  H.qtest ~count:60 "samples lie in the denotation" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let denoted = Expr.denote g ~max_length:3 r in
      let samples = Sampler.sample_expr ~rng g r ~max_length:3 10 in
      List.for_all (fun p -> Path_set.mem p denoted) samples)

let test_sampler_empty_population () =
  let g = H.paper_graph () in
  let s = Sampler.prepare g Expr.empty ~max_length:3 in
  Alcotest.(check int) "population 0" 0 (Sampler.population s);
  Alcotest.(check (option H.path)) "draw none" None
    (Sampler.draw s (Prng.create 1));
  Alcotest.(check (list H.path)) "sample empty" []
    (Sampler.sample s (Prng.create 1) 5)

let test_sampler_uniformity () =
  (* ring of 3, paths of length exactly 2: population 3; frequencies of
     3000 draws should be near-uniform. *)
  let g = Generate.ring ~n:3 ~n_labels:1 in
  let r = Expr.repeat (Expr.sel Selector.universe) 2 in
  let s = Sampler.prepare g r ~max_length:2 in
  Alcotest.(check int) "population" 3 (Sampler.population s);
  let rng = Prng.create 77 in
  let counts = Path.Tbl.create 8 in
  for _ = 1 to 3000 do
    match Sampler.draw s rng with
    | None -> Alcotest.fail "unexpected empty draw"
    | Some p ->
      Path.Tbl.replace counts p
        (1 + Option.value ~default:0 (Path.Tbl.find_opt counts p))
  done;
  Alcotest.(check int) "all three paths seen" 3 (Path.Tbl.length counts);
  Path.Tbl.iter
    (fun _ c ->
      Alcotest.(check bool) "frequency near 1000" true (c > 800 && c < 1200))
    counts

let test_sampler_mixed_lengths () =
  (* E | E.E on the paper graph: lengths 1 and 2 both drawable *)
  let g = H.paper_graph () in
  let u = Expr.sel Selector.universe in
  let r = Expr.union u (Expr.join u u) in
  let s = Sampler.prepare g r ~max_length:2 in
  let rng = Prng.create 5 in
  let lengths =
    List.sort_uniq Int.compare
      (List.map Path.length (Sampler.sample s rng 200))
  in
  Alcotest.(check (list int)) "both lengths drawn" [ 1; 2 ] lengths

let () =
  Alcotest.run "mrpa_automata"
    [
      ( "glushkov",
        [
          Alcotest.test_case "fig1 counts" `Quick test_glushkov_counts;
          Alcotest.test_case "nullable star" `Quick test_glushkov_nullable_star;
          Alcotest.test_case "single edges" `Quick test_glushkov_accepts_single_edges;
          Alcotest.test_case "join adjacency" `Quick
            test_glushkov_join_requires_adjacency;
          Alcotest.test_case "product/join boundary" `Quick
            test_glushkov_product_then_join;
        ] );
      ( "recognizer",
        [
          Alcotest.test_case "fig1 cases" `Quick test_fig1_recognizer_positive_negative;
          Alcotest.test_case "epsilon" `Quick test_recognizer_epsilon;
          Alcotest.test_case "empty expr" `Quick test_recognizer_empty_expr;
          qcheck_strategies_agree_on_walks;
          qcheck_strategies_agree_on_random_paths;
          qcheck_recognizer_matches_denotation;
        ] );
      ( "dfa",
        [
          Alcotest.test_case "minimize" `Quick test_dfa_minimize_not_larger;
          Alcotest.test_case "lazy cache" `Quick test_lazy_dfa_caches;
          qcheck_dfa_equals_nfa;
          qcheck_min_dfa_equals_dfa;
        ] );
      ( "generator",
        [
          Alcotest.test_case "fig1 agreement" `Quick test_fig1_generator_agreement;
          Alcotest.test_case "max_paths" `Quick test_generator_max_paths;
          Alcotest.test_case "exists/count" `Quick test_generator_exists_count;
          Alcotest.test_case "stack trace" `Quick test_stack_machine_trace;
          Alcotest.test_case "epsilon/empty" `Quick test_generator_epsilon_only;
          Alcotest.test_case "lazy stream" `Quick test_generator_to_seq_lazy;
          qcheck_generator_equals_denotation;
          qcheck_stack_machine_equals_denotation;
          qcheck_generated_accepted_by_recognizer;
        ] );
      ( "counting",
        [
          Alcotest.test_case "ring by length" `Quick test_counting_by_length_ring;
          Alcotest.test_case "scales" `Quick test_counting_scales_past_enumeration;
          Alcotest.test_case "with product" `Quick test_counting_with_product_expr;
          qcheck_counting_equals_denotation_cardinal;
        ] );
      ( "simple",
        [
          Alcotest.test_case "complete graph" `Quick
            test_simple_generation_complete_graph;
          Alcotest.test_case "terminates on cycle" `Quick
            test_simple_generation_terminates_on_cycle;
          qcheck_simple_generation_equals_filter;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "footnote 8 unbounded" `Quick
            test_equivalence_footnote8_unbounded;
          Alcotest.test_case "distinguishes" `Quick test_equivalence_distinguishes;
          Alcotest.test_case "inclusion identities" `Quick test_inclusion_identities;
          qcheck_inclusion_consistent_with_equivalence;
          qcheck_inclusion_implies_denotation_subset;
          qcheck_simplify_equivalent_unbounded;
          qcheck_equivalence_implies_equal_denotation;
        ] );
      ( "viz",
        [
          Alcotest.test_case "fig1 dot" `Quick test_viz_fig1_dot;
          Alcotest.test_case "product dashed" `Quick test_viz_product_dashed;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "empty population" `Quick test_sampler_empty_population;
          Alcotest.test_case "uniformity" `Quick test_sampler_uniformity;
          Alcotest.test_case "mixed lengths" `Quick test_sampler_mixed_lengths;
          qcheck_sampler_population_equals_count;
          qcheck_sampler_draws_denoted_paths;
        ] );
    ]
