Execution guardrails: budgets, partial-result verdicts and the unified
exit-code policy (0 ok, 1 user/input error, 2 internal error, 3 partial
result). Budget aborts are driven by deterministic fault injection
(--inject-fault REASON@N), never by sleeping.

A deterministic workload graph:

  $ ../bin/mrpa.exe generate --kind ring -n 6 -o ring.tsv
  generated ring: |V|=6 |E|=6 |Omega|=3

A malformed graph file is a user error: rendered diagnostic, exit 1.

  $ printf 'a\tknows\tb\nbroken line here\n' > bad.tsv
  $ ../bin/mrpa.exe stats bad.tsv
  error: bad.tsv: malformed line 2: broken line here
  [1]
  $ ../bin/mrpa.exe query bad.tsv 'E*'
  error: bad.tsv: malformed line 2: broken line here
  [1]

A star query aborted mid-run returns a non-empty sound subset within the
budget, a partial footer naming the tripped bound, and exit code 3 — on
every strategy. The fault fires at the 4th checkpoint, so the output is
identical on every machine.

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 5 --strategy reference --inject-fault deadline@4 | sed 's/in [0-9.]* ms/in N ms/'
  ε
  -- 1 path(s) in N ms via reference
  -- partial result (deadline): some paths may be missing

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 5 --strategy stack --inject-fault deadline@4 | sed 's/in [0-9.]* ms/in N ms/'
  ε
  (v0,r0,v1)
  (v1,r1,v2)
  (v2,r2,v3)
  (v3,r0,v4)
  (v4,r1,v5)
  (v5,r2,v0)
  -- 7 path(s) in N ms via stack-machine
  -- partial result (deadline): some paths may be missing

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 5 --strategy bfs --inject-fault deadline@4 | sed 's/in [0-9.]* ms/in N ms/'
  ε
  (v0,r0,v1)
  -- 2 path(s) in N ms via product-bfs
  -- partial result (deadline): some paths may be missing

The pipes above hide the exit status, so assert it separately — partial
results exit 3 on every strategy:

  $ for s in reference stack bfs; do
  >   ../bin/mrpa.exe query ring.tsv 'E*' --max-length 5 --strategy $s --inject-fault deadline@4 > /dev/null
  >   echo "$s: $?"
  > done
  reference: 3
  stack: 3
  bfs: 3

The other bounds work the same way; fuel exhaustion on the counting
engine yields a sound lower bound (the note goes to stderr so stdout
stays machine-readable):

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 5 --count --inject-fault fuel@5
  7
  -- partial result (fuel): some paths may be missing
  [3]

A LIMIT that stops the run is also a partial result:

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 5 --limit 3 | sed 's/in [0-9.]* ms/in N ms/'
  ε
  (v0,r0,v1)
  (v0,r0,v1,v1,r1,v2)
  -- 3 path(s) in N ms via product-bfs
  -- partial result (limit): some paths may be missing

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 5 --limit 3 > /dev/null
  [3]

Governed runs record budget counters in the profile:

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 4 --strategy stack --profile --inject-fault deadline@6 | grep budget
    budget.checkpoints         6
    budget.fuel_used           13
    budget.stopped.deadline    1

JSON output carries the verdict in-band:

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 3 --json --inject-fault memory@2 | sed 's/"elapsed_ms":[0-9.]*/"elapsed_ms":N/'
  {"paths":[{"edges":[],"label_word":[],"length":0,"joint":true}],"count":1,"elapsed_ms":N,"strategy":"product-bfs","verdict":"partial:memory","rewrites":[]}

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 3 --json --inject-fault memory@2 > /dev/null
  [3]

A bad fault spec is a user error:

  $ ../bin/mrpa.exe query ring.tsv 'E*' --inject-fault bogus@2
  error: bad --inject-fault "bogus@2" (expected REASON@N with REASON one of deadline, fuel, memory, cancelled and N >= 1)
  [1]

The interactive shell never dies on a bad query — errors are rendered and
the prompt comes back:

  $ printf 'E . (\nE . E\n:quit\n' | ../bin/mrpa.exe shell ring.tsv --max-length 3
  mrpa shell — |V|=6 |E|=6 |Omega|=3
  Type a query per line; :explain QUERY, :count QUERY, :lint QUERY, :profile QUERY, :view (word|expr|drop|edges|analytics) and :views for materialized views, :quit to exit.
  mrpa> error: parse error at offset 5: expected an expression
    E . (
         ^
  mrpa> (v0,r0,v1,v1,r1,v2)
  (v1,r1,v2,v2,r2,v3)
  (v2,r2,v3,v3,r0,v4)
  (v3,r0,v4,v4,r1,v5)
  (v4,r1,v5,v5,r2,v0)
  (v5,r2,v0,v0,r0,v1)
  -- 6 path(s)
  mrpa> 

Shell queries run under the session's budget flags, degrade gracefully
and report partially — without ending the session:

  $ printf 'E*\n:count E*\n:quit\n' | ../bin/mrpa.exe shell ring.tsv --max-length 3 --inject-fault fuel@3
  mrpa shell — |V|=6 |E|=6 |Omega|=3
  Type a query per line; :explain QUERY, :count QUERY, :lint QUERY, :profile QUERY, :view (word|expr|drop|edges|analytics) and :views for materialized views, :quit to exit.
  mrpa> ε
  -- 1 path(s)
  -- partial result (fuel): some paths may be missing
  mrpa> 7
  -- partial result (fuel): some paths may be missing
  mrpa> 
