(* Paper conformance suite: each test encodes one definitional statement of
   Rodriguez & Neubauer as an executable fact, cited by section. Where other
   suites test the implementation against itself, this one tests it against
   the paper's text. *)

open Mrpa_graph
open Mrpa_core
module H = Helpers

let g () = H.paper_graph ()

(* --- Definition 1 (Path) ----------------------------------------------- *)

let test_def1_repeated_edges_allowed () =
  (* "A path allows for repeated edges." *)
  let gr = g () in
  let e = H.e gr "j" "beta" "j" in
  let p = Path.of_edges [ e; e; e ] in
  Alcotest.(check int) "length 3 with one edge repeated" 3 (Path.length p);
  Alcotest.(check bool) "and it is joint (loop)" true (Path.is_joint p)

let test_def1_edges_are_length1_paths () =
  (* "Any edge in E is a path with a path length of 1 as e ∈ E ⊂ E∗." *)
  let gr = g () in
  List.iter
    (fun e -> Alcotest.(check int) "length 1" 1 (Path.length (Path.of_edge e)))
    (Digraph.edges gr)

(* --- §II concatenation ---------------------------------------------------- *)

let test_s2_concat_shape () =
  (* "if (i,α,j) and (j,β,k) are two edges in E, then their concatenation
     is the path (i,α,j,j,β,k)" — checked via the printer, which uses the
     paper's flattened notation. *)
  let gr = g () in
  let p =
    Path.concat
      (Path.of_edge (H.e gr "i" "alpha" "j"))
      (Path.of_edge (H.e gr "j" "beta" "k"))
  in
  Alcotest.(check string) "paper notation" "(i,alpha,j,j,beta,k)"
    (Format.asprintf "%a" (Digraph.pp_path gr) p)

let test_s2_concat_not_commutative () =
  (* "not commutative (i.e. it is generally true that a ∘ b ≠ b ∘ a)" —
     exhibit the witness. *)
  let gr = g () in
  let a = Path.of_edge (H.e gr "i" "alpha" "j") in
  let b = Path.of_edge (H.e gr "j" "beta" "k") in
  Alcotest.(check bool) "a∘b ≠ b∘a" false
    (Path.equal (Path.concat a b) (Path.concat b a))

let test_footnote2_free_monoid () =
  (* footnote 2: E∗ = ∪_{n≥0} Eⁿ with E⁰ = {ε}. Over a finite bound: the
     bounded star of E equals the union of its n-fold joint powers. *)
  let gr = g () in
  let e = Path_set.all_edges gr in
  let bound = 3 in
  let by_powers =
    List.fold_left
      (fun acc n -> Path_set.union acc (Path_set.join_power e n))
      Path_set.empty
      [ 0; 1; 2; 3 ]
  in
  Alcotest.check H.path_set "E* bounded = ∪ Eⁿ" by_powers
    (Path_set.star_bounded e ~max_length:bound)

(* --- §II projections -------------------------------------------------------- *)

let test_s2_sigma_examples () =
  (* "if a = (i,α,j,j,β,k), then σ(a,1) = (i,α,j) and σ(a,2) = (j,β,k)" *)
  let gr = g () in
  let e1 = H.e gr "i" "alpha" "j" and e2 = H.e gr "j" "beta" "k" in
  let a = Path.of_edges [ e1; e2 ] in
  Alcotest.check H.edge "σ(a,1)" e1 (Path.nth a 1);
  Alcotest.check H.edge "σ(a,2)" e2 (Path.nth a 2)

let test_footnote3_sigma_is_indexing () =
  (* footnote 3: all projections reduce to string indexing. *)
  let gr = g () in
  let rng = Prng.create 11 in
  let p = H.random_path rng gr 5 in
  let arr = Path.to_array p in
  Array.iteri
    (fun idx e -> Alcotest.check H.edge "indexing" e (Path.nth p (idx + 1)))
    arr

let test_def2_path_label () =
  (* Definition 2: ω′(a) = Π ω(σ(a,n)); for a single edge ω′(e) = ω(e). *)
  let gr = g () in
  let e = H.e gr "i" "beta" "k" in
  Alcotest.(check (list int)) "ω′(e) = ω(e)" [ Edge.label e ]
    (Path.label_word (Path.of_edge e));
  let rng = Prng.create 13 in
  let p = H.random_path rng gr 5 in
  Alcotest.(check (list int)) "ω′ edge by edge"
    (List.map Edge.label (Path.edges p))
    (Path.label_word p)

(* --- Definition 3 (jointness) ------------------------------------------------ *)

let test_def3_cases () =
  let gr = g () in
  (* ‖a‖ = 1 → ⊤ *)
  Alcotest.(check bool) "single edge joint" true
    (Path.is_joint (Path.of_edge (H.e gr "i" "alpha" "j")));
  (* adjacent chain → ⊤, broken chain → ⊥ *)
  Alcotest.(check bool) "adjacent" true
    (Path.is_joint
       (Path.of_edges [ H.e gr "i" "alpha" "j"; H.e gr "j" "beta" "i" ]));
  Alcotest.(check bool) "broken" false
    (Path.is_joint
       (Path.of_edges [ H.e gr "i" "alpha" "j"; H.e gr "i" "beta" "k" ]))

(* --- §II join side condition --------------------------------------------------- *)

let test_s2_join_epsilon_side_condition () =
  (* "(a = ε ∨ b = ε ∨ γ⁺(a) = γ⁻(b))" — the ε disjuncts, separately. *)
  let gr = g () in
  let p = Path_set.singleton (Path.of_edge (H.e gr "i" "alpha" "j")) in
  let with_eps = Path_set.union Path_set.epsilon p in
  (* ε joins with everything on either side; no adjacency is asked of it *)
  Alcotest.(check int) "ε on the left joins all" 2
    (Path_set.cardinal (Path_set.join Path_set.epsilon with_eps));
  Alcotest.(check int) "ε on the right keeps a" 2
    (Path_set.cardinal (Path_set.join with_eps Path_set.epsilon))

(* --- §III traversals -------------------------------------------------------------- *)

let test_s3a_complete_is_iterated_join () =
  (* "E ./∘ … ./∘ E (n times)" *)
  let gr = g () in
  let e = Path_set.all_edges gr in
  List.iter
    (fun n ->
      Alcotest.check H.path_set
        (Printf.sprintf "complete %d = E^%d" n n)
        (Path_set.join_power e n)
        (Traversal.complete gr ~length:n))
    [ 1; 2; 3 ]

let test_s3b_source_set_definition () =
  (* "A = {e | e ∈ E ∧ γ⁻(e) ∈ Vs}" then A ./∘ E… *)
  let gr = g () in
  let vs = Vertex.Set.singleton (H.v gr "i") in
  let a =
    Path_set.of_edges
      (List.filter
         (fun e -> Vertex.Set.mem (Edge.tail e) vs)
         (Digraph.edges gr))
  in
  let manual = Path_set.join a (Path_set.all_edges gr) in
  Alcotest.check H.path_set "A ./∘ E" manual
    (Traversal.source gr ~from:vs ~length:2)

let test_s3b_complement_partitions () =
  (* "Vs = V \\ Vs states to start the traversal from all vertices in V
     except those in Vs": source(Vs) and source(V\\Vs) partition the
     complete traversal. *)
  let gr = g () in
  let vs = Vertex.Set.singleton (H.v gr "j") in
  let co = Traversal.complement_vertices gr vs in
  let s1 = Traversal.source gr ~from:vs ~length:2 in
  let s2 = Traversal.source gr ~from:co ~length:2 in
  Alcotest.(check bool) "disjoint" true
    (Path_set.is_empty (Path_set.inter s1 s2));
  Alcotest.check H.path_set "cover" (Traversal.complete gr ~length:2)
    (Path_set.union s1 s2)

let test_s3d_labeled_step_labels () =
  (* "A ./∘ B denotes all paths where ω(σ(a,1)) ∈ Ωe and ω(σ(a,2)) ∈ Ωf" *)
  let gr = g () in
  let alpha = H.l gr "alpha" and beta = H.l gr "beta" in
  let result =
    Traversal.labeled gr
      ~labels:[ Label.Set.singleton alpha; Label.Set.singleton beta ]
  in
  Path_set.iter
    (fun a ->
      Alcotest.(check int) "first label α" alpha (Edge.label (Path.nth a 1));
      Alcotest.(check int) "second label β" beta (Edge.label (Path.nth a 2)))
    result;
  Alcotest.(check bool) "non-empty" true (not (Path_set.is_empty result))

(* --- §IV-A: Figure 1's prose description --------------------------------------------- *)

let fig1_text =
  "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])"

let test_s4a_fig1_prose_properties () =
  (* "recognizes all paths emanating from i, terminating at i or k, with the
     first and last label traversed being α, and all intermediate edge
     labels (zero or more) being β" — the ω′-language is α β* (α | α α). *)
  let rng = Prng.create 4242 in
  let gr = Generate.fig1 ~rng ~n_noise_vertices:6 ~n_noise_edges:20 in
  let expr = Mrpa_engine.Parser.parse_exn gr fig1_text in
  let generated = Mrpa_automata.Generator.generate gr expr ~max_length:6 in
  Alcotest.(check bool) "witnesses exist" true
    (not (Path_set.is_empty generated));
  let i = Digraph.vertex gr "i"
  and j = Digraph.vertex gr "j"
  and k = Digraph.vertex gr "k" in
  ignore j;
  let alpha = Digraph.label gr "alpha" and beta = Digraph.label gr "beta" in
  let word_language =
    (* α β* (α | αα) *)
    Label_expr.(
      concat (lbl alpha)
        (concat (star (lbl beta))
           (union (lbl alpha) (concat (lbl alpha) (lbl alpha)))))
  in
  Path_set.iter
    (fun p ->
      Alcotest.(check (option int)) "emanates from i" (Some i) (Path.tail p);
      Alcotest.(check bool) "terminates at i or k" true
        (Path.head p = Some i || Path.head p = Some k);
      Alcotest.(check bool) "ω′ ∈ α β* (α|αα)" true
        (Label_expr.matches_word word_language (Path.label_word p));
      Alcotest.(check bool) "joint" true (Path.is_joint p))
    generated

let test_s4b_stack_tops_union () =
  (* §IV-B: "The union of the first (and only) element of all the stacks
     across all branches of accept-state automaton forms the set of all
     paths in G that satisfy the regular expression." We observe the
     branches through the trace and rebuild the union by hand. *)
  let rng = Prng.create 99 in
  let gr = Generate.fig1 ~rng ~n_noise_vertices:4 ~n_noise_edges:8 in
  let expr = Mrpa_engine.Parser.parse_exn gr fig1_text in
  let a = Mrpa_automata.Glushkov.build expr in
  let accept_tops = ref Path_set.empty in
  let trace entry =
    let state = entry.Mrpa_automata.Stack_machine.state in
    let accepting =
      if state = 0 then a.Mrpa_automata.Glushkov.nullable
      else a.Mrpa_automata.Glushkov.last.(state)
    in
    if accepting then
      accept_tops :=
        Path_set.union !accept_tops entry.Mrpa_automata.Stack_machine.stack_top
  in
  let result = Mrpa_automata.Stack_machine.run ~trace gr expr ~max_length:5 in
  Alcotest.check H.path_set "union of accept-state stack tops" result
    !accept_tops

(* --- §IV-C: the three constructions ----------------------------------------------------- *)

let test_s4c_e_alpha_definition () =
  (* "Eα = {(γ⁻(e), γ⁺(e)) | e ∈ E ∧ ω(e) = α}" *)
  let gr = g () in
  let alpha = H.l gr "alpha" in
  let manual =
    List.filter_map
      (fun e ->
        if Label.equal (Edge.label e) alpha then
          Some (Vertex.to_int (Edge.tail e), Vertex.to_int (Edge.head e))
        else None)
      (Digraph.edges gr)
  in
  let expected =
    Mrpa_analysis.Simple_graph.of_edge_list ~n:(Digraph.n_vertices gr) manual
  in
  Alcotest.(check bool) "definition matches" true
    (Mrpa_analysis.Simple_graph.equal expected
       (Mrpa_analysis.Projection.single_label gr alpha))

let test_s4c_e_alphabeta_definition () =
  (* "Eαβ = ∪_{a ∈ A ./∘ B} (γ⁻(a), γ⁺(a))" with A = α-edges, B = β-edges *)
  let gr = g () in
  let alpha = H.l gr "alpha" and beta = H.l gr "beta" in
  let a = Path_set.select gr (Selector.label1 alpha) in
  let b = Path_set.select gr (Selector.label1 beta) in
  let pairs = Path_set.endpoint_pairs (Path_set.join a b) in
  let expected =
    Mrpa_analysis.Simple_graph.of_edge_list ~n:(Digraph.n_vertices gr)
      (List.map (fun (s, d) -> (Vertex.to_int s, Vertex.to_int d)) pairs)
  in
  Alcotest.(check bool) "definition matches" true
    (Mrpa_analysis.Simple_graph.equal expected
       (Mrpa_analysis.Projection.path_derived gr [ alpha; beta ]))

let () =
  Alcotest.run "paper_conformance"
    [
      ( "definition-1",
        [
          Alcotest.test_case "repeated edges" `Quick test_def1_repeated_edges_allowed;
          Alcotest.test_case "edges are paths" `Quick
            test_def1_edges_are_length1_paths;
        ] );
      ( "section-2",
        [
          Alcotest.test_case "concat shape" `Quick test_s2_concat_shape;
          Alcotest.test_case "non-commutative" `Quick test_s2_concat_not_commutative;
          Alcotest.test_case "free monoid (fn 2)" `Quick test_footnote2_free_monoid;
          Alcotest.test_case "sigma examples" `Quick test_s2_sigma_examples;
          Alcotest.test_case "sigma is indexing (fn 3)" `Quick
            test_footnote3_sigma_is_indexing;
          Alcotest.test_case "path label (def 2)" `Quick test_def2_path_label;
          Alcotest.test_case "jointness (def 3)" `Quick test_def3_cases;
          Alcotest.test_case "join ε side condition" `Quick
            test_s2_join_epsilon_side_condition;
        ] );
      ( "section-3",
        [
          Alcotest.test_case "complete = iterated join" `Quick
            test_s3a_complete_is_iterated_join;
          Alcotest.test_case "source set definition" `Quick
            test_s3b_source_set_definition;
          Alcotest.test_case "complement partitions" `Quick
            test_s3b_complement_partitions;
          Alcotest.test_case "labeled step labels" `Quick
            test_s3d_labeled_step_labels;
        ] );
      ( "section-4",
        [
          Alcotest.test_case "fig1 prose properties" `Quick
            test_s4a_fig1_prose_properties;
          Alcotest.test_case "stack tops union" `Quick test_s4b_stack_tops_union;
          Alcotest.test_case "E_alpha definition" `Quick test_s4c_e_alpha_definition;
          Alcotest.test_case "E_alphabeta definition" `Quick
            test_s4c_e_alphabeta_definition;
        ] );
    ]
