The sharded serving tier: mrpa partition splits a graph by the shard
map's hash placement, a fleet of mrpa serve processes serves the parts,
and mrpa route fronts them with one mrpa.wire/1 endpoint — scatter,
gather through the path algebra, degrade soundly when a shard dies.

A deterministic graph and a three-shard map:

  $ ../bin/mrpa.exe generate --kind ring -n 12 -o ring.tsv
  generated ring: |V|=12 |E|=12 |Omega|=3
  $ cat > fleet.map <<'EOF'
  > # mrpa.shardmap/1
  > shard s0 unix:s0.sock
  > shard s1 unix:s1.sock
  > shard s2 unix:s2.sock
  > EOF

Partitioning is deterministic (crc32(tail) mod 3), disjoint, and
replicates the vertex universe so names resolve on every shard:

  $ ../bin/mrpa.exe partition ring.tsv --shard-map fleet.map --out-dir parts
  mrpa partition: parts/s0.tsv (5 edge(s))
  mrpa partition: parts/s1.tsv (6 edge(s))
  mrpa partition: parts/s2.tsv (1 edge(s))
  $ grep -c 'vertex' parts/s1.tsv
  12

A malformed map is a user error, not a crash:

  $ ../bin/mrpa.exe route --shard-map ring.tsv --socket r.sock
  error: shard map must start with "# mrpa.shardmap/1"
  [1]

Launch the fleet and the router (short breaker cooldown so recovery is
quick to demonstrate):

  $ for s in s0 s1 s2; do
  >   ../bin/mrpa.exe serve --graph parts/$s.tsv --socket $s.sock 2>$s.log &
  > done
  $ for s in s0 s1 s2; do
  >   for i in $(seq 1 100); do test -S $s.sock && break; sleep 0.1; done
  > done
  $ ../bin/mrpa.exe route --shard-map fleet.map --socket r.sock --breaker-cooldown-ms 200 2>route.log &
  $ ROUTE_PID=$!
  $ for i in $(seq 1 100); do test -S r.sock && break; sleep 0.1; done
  $ for i in $(seq 1 100); do grep -q "listening on" route.log && break; sleep 0.1; done
  $ head -2 route.log
  mrpa route: unix:r.sock shards=3 (s0, s1, s2)
  mrpa route: listening on unix:r.sock

The router speaks the same wire protocol — mrpa call needs no new flags.
A healthy fleet answers complete, and the stitched answer equals the
unsharded one:

  $ ../bin/mrpa.exe call --socket r.sock --count 'E'
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"count":12,"verdict":"complete"}
  $ ../bin/mrpa.exe call --socket r.sock --count '[v0,_,_] . [_,_,_]'
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"count":1,"verdict":"complete"}

Kill one shard mid-fleet. The answer degrades to a sound subset: verdict
partial:shard_unavailable, exit code 3, and the missing shard is named
in the response — never a silently wrong answer:

  $ ../bin/mrpa.exe call --socket s1.sock --shutdown > /dev/null
  $ for i in $(seq 1 100); do test -S s1.sock || break; sleep 0.1; done
  $ ../bin/mrpa.exe call --socket r.sock --count 'E'; echo "exit: $?"
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"count":6,"verdict":"partial:shard_unavailable","missing_shards":["s1"]}
  exit: 3

Three consecutive failed dispatches open the shard's circuit breaker;
while open, dispatches to it fail fast with no I/O:

  $ ../bin/mrpa.exe call --socket r.sock --count 'E' > /dev/null
  [3]
  $ ../bin/mrpa.exe call --socket r.sock --count 'E' > /dev/null
  [3]
  $ ../bin/mrpa.exe call --socket r.sock --stats > stats.json
  $ grep -o '"router.breaker_opens":[0-9]*' stats.json
  "router.breaker_opens":1
  $ grep -o '"router.degraded":[0-9]*' stats.json
  "router.degraded":3

Restart the shard; within one breaker probe interval the router is back
to complete answers:

  $ ../bin/mrpa.exe serve --graph parts/s1.tsv --socket s1.sock 2>s1b.log &
  $ for i in $(seq 1 100); do test -S s1.sock && break; sleep 0.1; done
  $ sleep 0.3
  $ ../bin/mrpa.exe call --socket r.sock --count 'E'; echo "exit: $?"
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"count":12,"verdict":"complete"}
  exit: 0

The failover client with every endpoint down fails in bounded time with
exit 1 — it rotates through the whole list once (so a live standby would
have answered) and gives up cleanly:

  $ timeout 30 ../bin/mrpa.exe call --endpoints unix:dead1.sock,unix:dead2.sock,unix:dead3.sock --ping 2>&1; echo "exit: $?"
  error: cannot connect to unix:dead3.sock: No such file or directory
  exit: 1

Drain the fleet through the wire protocol; every socket is unlinked —
no orphans left behind:

  $ ../bin/mrpa.exe call --socket r.sock --shutdown
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"stopping":true}
  $ wait $ROUTE_PID; echo "router exit: $?"
  router exit: 0
  $ for s in s0 s1 s2; do ../bin/mrpa.exe call --socket $s.sock --shutdown > /dev/null; done
  $ sleep 0.5
  $ ls *.sock 2>/dev/null || echo "no sockets left"
  no sockets left
