open Mrpa_graph
open Mrpa_core
open Mrpa_engine
module H = Helpers

(* --- Lexer ------------------------------------------------------------- *)

let tokens_of s = List.map (fun l -> l.Lexer.token) (Lexer.tokenize s)

let test_lexer_symbols () =
  Alcotest.(check int) "count" 12
    (List.length (tokens_of "[ ] { } ( ) , . | * + ?") - 1);
  Alcotest.(check bool) "cross" true
    (List.mem Lexer.CROSS (tokens_of "a >< b"))

let test_lexer_idents_and_ints () =
  (match tokens_of "knows v12 34" with
  | [ Lexer.IDENT "knows"; Lexer.IDENT "v12"; Lexer.INT 34; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens");
  match tokens_of "\"white space\" 'single'" with
  | [ Lexer.IDENT "white space"; Lexer.IDENT "single"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "quoted strings"

let test_lexer_underscore () =
  match tokens_of "_ _x" with
  | [ Lexer.UNDERSCORE; Lexer.IDENT "_x"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "underscore handling"

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "a > b");
     Alcotest.fail "expected Lex_error"
   with Lexer.Lex_error (_, pos) -> Alcotest.(check int) "position" 2 pos);
  try
    ignore (Lexer.tokenize "\"unterminated");
    Alcotest.fail "expected Lex_error"
  with Lexer.Lex_error (_, _) -> ()

let test_lexer_positions () =
  let located = Lexer.tokenize "ab cd" in
  match located with
  | [ { token = Lexer.IDENT "ab"; pos = 0; stop = 2 };
      { token = Lexer.IDENT "cd"; pos = 3; stop = 5 };
      { token = Lexer.EOF; pos = 5; stop = 5 } ]
    -> ()
  | _ -> Alcotest.fail "positions"

(* --- Parser ------------------------------------------------------------- *)

let parse_ok g s =
  match Parser.parse g s with
  | Ok e -> e
  | Error e -> Alcotest.failf "unexpected parse error: %a" Parser.pp_error e

let parse_err g s =
  match Parser.parse g s with
  | Ok _ -> Alcotest.failf "expected parse error on %S" s
  | Error e -> e

let test_parse_selector_forms () =
  let g = H.paper_graph () in
  let e = parse_ok g "[i, alpha, _]" in
  (match e with
  | Expr.Sel (Selector.Pattern { src = Some _; lbl = Some _; dst = None }) -> ()
  | _ -> Alcotest.fail "selector shape");
  ignore (parse_ok g "[_, _, _]");
  ignore (parse_ok g "E");
  ignore (parse_ok g "[{i,j}, _, !k]");
  ignore (parse_ok g "{(j, alpha, i)}");
  ignore (parse_ok g "{(j,alpha,i); (i,alpha,k)}")

let test_parse_operators_precedence () =
  let g = H.paper_graph () in
  (* union binds loosest: a . b | c = (a.b) | c *)
  let e = parse_ok g "[_,alpha,_] . [_,beta,_] | [_,beta,_]" in
  (match e with
  | Expr.Union (Expr.Join _, Expr.Sel _) -> ()
  | _ -> Alcotest.fail "precedence");
  (* postfix binds tightest: star applies to b alone *)
  let e = parse_ok g "[_,alpha,_] . [_,beta,_]*" in
  match e with
  | Expr.Join (Expr.Sel _, Expr.Star _) -> ()
  | _ -> Alcotest.fail "postfix binds tighter"

let test_parse_repetition () =
  let g = H.paper_graph () in
  let r2 = parse_ok g "[_,beta,_]{2}" in
  let manual = Expr.repeat (Expr.sel (Selector.label1 (H.l g "beta"))) 2 in
  Alcotest.(check bool) "explicit repeat" true (Expr.equal r2 manual);
  ignore (parse_ok g "[_,beta,_]{1,3}")

let test_parse_fig1_string () =
  let g = H.paper_graph () in
  let text =
    "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])"
  in
  let e = parse_ok g text in
  Alcotest.(check bool) "has star" true (Expr.size e > 5);
  (* denotes same set as the programmatic construction in test_automata *)
  let i = H.v g "i" and j = H.v g "j" and k = H.v g "k" in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let manual =
    let open Expr.Dsl in
    Expr.sel
      (Selector.pattern ~src:(Vertex.Set.singleton i)
         ~lbl:(Label.Set.singleton alpha) ())
    <.> Expr.star (Expr.sel (Selector.label1 beta))
    <.> (Expr.sel
           (Selector.pattern ~lbl:(Label.Set.singleton alpha)
              ~dst:(Vertex.Set.singleton j) ())
         <.> Expr.edge (Edge.make ~tail:j ~label:alpha ~head:i)
        <|> Expr.sel
              (Selector.pattern ~lbl:(Label.Set.singleton alpha)
                 ~dst:(Vertex.Set.singleton k) ()))
  in
  Alcotest.(check bool) "same denotation" true
    (Path_set.equal
       (Expr.denote g ~max_length:4 e)
       (Expr.denote g ~max_length:4 manual))

let test_parse_keywords () =
  let g = H.paper_graph () in
  Alcotest.(check bool) "eps" true (Expr.equal (parse_ok g "eps") Expr.epsilon);
  Alcotest.(check bool) "empty" true (Expr.equal (parse_ok g "empty") Expr.empty)

let test_parse_errors () =
  let g = H.paper_graph () in
  let e = parse_err g "[i, alpha, _" in
  Alcotest.(check bool) "mentions ]" true (String.length e.Parser.message > 0);
  ignore (parse_err g "[nosuch, _, _]");
  ignore (parse_err g "[i, nosuchlabel, _]");
  ignore (parse_err g "[i,alpha,_] .");
  ignore (parse_err g "[i,alpha,_] extra");
  ignore (parse_err g "")

let test_parse_complement () =
  let g = H.paper_graph () in
  let e = parse_ok g "[!i, _, _]" in
  match e with
  | Expr.Sel s ->
    Alcotest.(check bool) "excludes i-edges" false
      (Selector.matches s (H.e g "i" "alpha" "j"));
    Alcotest.(check bool) "admits j-edges" true
      (Selector.matches s (H.e g "j" "beta" "k"))
  | _ -> Alcotest.fail "shape"

let test_parse_let_macros () =
  let g = H.paper_graph () in
  let with_macro =
    parse_ok g "let ab = [_,alpha,_] . [_,beta,_] in ab | ab . ab"
  in
  let ab =
    Expr.join
      (Expr.sel (Selector.label1 (H.l g "alpha")))
      (Expr.sel (Selector.label1 (H.l g "beta")))
  in
  let manual = Expr.union ab (Expr.join ab ab) in
  Alcotest.(check bool) "macro expansion" true (Expr.equal with_macro manual);
  (* later bindings may use earlier ones *)
  let nested =
    parse_ok g "let a = [_,alpha,_] in let aa = a . a in aa . a"
  in
  Alcotest.(check int) "nested expansion size" 5
    (List.length
       (List.filter
          (fun s -> Selector.equal s (Selector.label1 (H.l g "alpha")))
          (Expr.selectors nested))
     + 4)
    (* 1 distinct selector; structural size check below *);
  Alcotest.(check int) "three joins" 5 (Expr.size nested)

let test_parse_macro_errors () =
  let g = H.paper_graph () in
  ignore (parse_err g "let in = E in in");
  ignore (parse_err g "undefined_macro");
  ignore (parse_err g "let a = E in b");
  ignore (parse_err g "let a = E a")

(* --- Unparse -------------------------------------------------------------------- *)

let test_unparse_roundtrip_texts () =
  let g = H.paper_graph () in
  List.iter
    (fun text ->
      let e = parse_ok g text in
      let rendered = Unparse.expr g e in
      let e' = parse_ok g rendered in
      Alcotest.(check bool)
        (Printf.sprintf "structural roundtrip: %s -> %s" text rendered)
        true (Expr.equal e e'))
    [
      "E";
      "eps";
      "empty";
      "[i, alpha, _]";
      "[{i,j}, _, !k]";
      "{(j,alpha,i); (i,alpha,k)}";
      "[_,alpha,_] . [_,beta,_]";
      "[_,alpha,_] >< [_,beta,_]";
      "([_,alpha,_] | [_,beta,_])*";
      "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])";
      "[_,beta,_]{2}";
      "[_,beta,_]+ | eps";
    ]

let qcheck_unparse_preserves_denotation =
  H.qtest ~count:100 "parse (unparse e) denotes the same set" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let e = H.random_expr rng g in
      let rendered = Unparse.expr g e in
      match Parser.parse g rendered with
      | Error _ -> false
      | Ok e' ->
        Path_set.equal (Expr.denote g ~max_length:3 e) (Expr.denote g ~max_length:3 e'))

let test_unparse_quotes_awkward_names () =
  let g = Digraph.create () in
  ignore (Digraph.add g "a b" "weird-label" "c.d");
  let e =
    Expr.sel (Selector.src1 (Digraph.vertex g "a b"))
  in
  let rendered = Unparse.expr g e in
  match Parser.parse g rendered with
  | Error err -> Alcotest.failf "reparse failed: %a on %s" Parser.pp_error err rendered
  | Ok e' -> Alcotest.(check bool) "roundtrip with quoting" true (Expr.equal e e')

(* --- Walk (fluent traversals) ------------------------------------------------- *)

let test_walk_out_steps () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let vs =
    Walk.(start g [ i ] |> out ~label:(H.l g "alpha") |> vertices)
    |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "α-neighbours of i" [ H.v g "j"; H.v g "k" ] vs

let test_walk_two_steps_match_traversal () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let via_walk = Walk.(start g [ i ] |> out |> out |> path_set) in
  let via_algebra =
    Traversal.source g ~from:(Vertex.Set.singleton i) ~length:2
  in
  Alcotest.check H.path_set "walk = source traversal" via_algebra via_walk

let test_walk_in_and_both () =
  let g = H.paper_graph () in
  let j = H.v g "j" in
  let preds =
    Walk.(start g [ j ] |> in_ ~label:(H.l g "alpha") |> vertices)
    |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "α-predecessors of j" [ H.v g "i"; H.v g "k" ] preds;
  let deg =
    Walk.(start g [ j ] |> both |> count)
  in
  (* j touches: out β×3; in: α from i, α from k, β loop (loop only counted
     via out) → 3 + 2 = 5 *)
  Alcotest.(check int) "both degree (loop once)" 5 deg

let test_walk_filters_dedup_limit () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let walked =
    Walk.(
      start g [ i ] |> out |> out
      |> filter (fun v -> Digraph.vertex_name g v <> "i")
      |> dedup |> vertices)
  in
  Alcotest.(check bool) "no i" true
    (List.for_all (fun v -> v <> i) walked);
  let distinct = List.sort_uniq Int.compare walked in
  Alcotest.(check int) "dedup" (List.length distinct) (List.length walked);
  Alcotest.(check int) "limit" 2 Walk.(start g [ i ] |> out |> limit 2 |> count)

let test_walk_repeat_and_label_word () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let ab =
    Walk.(
      start g [ i ] |> repeat 2 out |> has_label_word [ alpha; beta ] |> paths)
  in
  Alcotest.(check int) "3 αβ paths from i" 3 (List.length ab);
  List.iter
    (fun p ->
      Alcotest.(check (list int)) "word" [ alpha; beta ] (Path.label_word p))
    ab

let test_walk_emit_depths () =
  let g = Generate.ring ~n:3 ~n_labels:1 in
  let v0 = Digraph.vertex g "v0" in
  let lengths =
    Walk.(start g [ v0 ] |> emit out ~max_depth:2 |> paths)
    |> List.map Path.length |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "depths 0,1,2" [ 0; 1; 2 ] lengths

let test_walk_simple_pruning () =
  let g = Generate.ring ~n:3 ~n_labels:1 in
  let v0 = Digraph.vertex g "v0" in
  Alcotest.(check int) "3 hops wraps: not simple" 0
    Walk.(start g [ v0 ] |> repeat 3 out |> simple |> count);
  Alcotest.(check int) "2 hops simple" 1
    Walk.(start g [ v0 ] |> repeat 2 out |> simple |> count)

let test_walk_selector_step () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let beta_step =
    Walk.(start g [ i ] |> step (Selector.label1 (H.l g "beta")) |> vertices)
  in
  Alcotest.(check (list int)) "i -β-> k" [ H.v g "k" ] beta_step

let qcheck_walk_equals_source_traversal =
  H.qtest ~count:60 "n-step walk = source traversal" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let vs = Array.of_list (Digraph.vertices g) in
      let v = Prng.pick rng vs in
      let n = 1 + Prng.int rng 3 in
      let via_walk = Walk.(start g [ v ] |> repeat n out |> path_set) in
      let via_algebra =
        Traversal.source g ~from:(Vertex.Set.singleton v) ~length:n
      in
      Path_set.equal via_walk via_algebra)

let qcheck_walk_step_equals_selector_traversal =
  H.qtest ~count:60 "selector walk = steps traversal" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let s1 = H.random_selector rng g in
      let s2 = H.random_selector rng g in
      let via_walk =
        Walk.(start_all g |> step s1 |> step s2 |> path_set)
      in
      (* steps-based traversal keeps only paths; walk from all vertices of
         V restricted to those whose first edge matches — same thing since
         start_all covers every possible tail *)
      let via_algebra = Traversal.steps g [ s1; s2 ] in
      Path_set.equal via_walk via_algebra)

(* --- CRPQ ------------------------------------------------------------------- *)

let test_crpq_basic_join () =
  let g = H.paper_graph () in
  (* α edge x→y and β edge y→x *)
  let q =
    Crpq.parse_exn g "select x, y where (x, [_,alpha,_], y), (y, [_,beta,_], x)"
  in
  let answers = Crpq.eval ~max_length:2 g q in
  let i = H.v g "i" and j = H.v g "j" and k = H.v g "k" in
  Alcotest.(check (list (list int))) "pairs"
    [ [ i; j ]; [ k; j ] ]
    (List.sort compare answers)

let test_crpq_projection () =
  let g = H.paper_graph () in
  (* project onto x only *)
  let q =
    Crpq.parse_exn g "select x where (x, [_,alpha,_], y), (y, [_,beta,_], x)"
  in
  let answers = Crpq.eval ~max_length:2 g q in
  Alcotest.(check (list (list int))) "sources"
    [ [ H.v g "i" ]; [ H.v g "k" ] ]
    (List.sort compare answers)

let test_crpq_nullable_atom () =
  let g = H.paper_graph () in
  (* E* relates every vertex to itself (among others): (x, E*, x) holds for
     all three vertices *)
  let q = Crpq.parse_exn g "select x where (x, E*, x)" in
  Alcotest.(check int) "all vertices" 3
    (Crpq.count ~max_length:2 g q)

let test_crpq_triangle () =
  let g = H.parallel_graph () in
  (* directed triangle a→b→c→a using any labels *)
  let q =
    Crpq.parse_exn g "select x, y, z where (x, E, y), (y, E, z), (z, E, x)"
  in
  let answers = Crpq.eval ~max_length:1 g q in
  Alcotest.(check int) "three rotations" 3 (List.length answers)

let test_crpq_validation () =
  let g = H.paper_graph () in
  (match Crpq.parse g "select q where (x, E, y)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "head variable not in atoms must fail");
  (match Crpq.parse g "select x, x where (x, E, y)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repeated head variable must fail");
  match Crpq.parse g "select x where" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing atoms must fail"

let qcheck_crpq_single_atom_equals_endpoints =
  H.qtest ~count:60 "single-atom CRPQ = endpoint pairs" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr ~allow_product:false rng g in
      let q = Crpq.make ~head:[ "x"; "y" ] [ ("x", r, "y") ] in
      let via_crpq = Crpq.eval ~max_length:3 g q in
      let denoted = Expr.denote g ~max_length:3 r in
      let pairs =
        Path_set.endpoint_pairs
          (Path_set.filter (fun p -> not (Path.is_empty p)) denoted)
      in
      let expected =
        (if Expr.nullable r then
           List.map (fun v -> (v, v)) (Digraph.vertices g)
         else [])
        @ pairs
        |> List.sort_uniq compare
        |> List.map (fun (a, b) -> [ a; b ])
      in
      List.sort compare via_crpq = List.sort compare expected)

(* --- Optimizer ------------------------------------------------------------ *)

let test_simplify_identities () =
  let s = Expr.sel Selector.universe in
  let check_rewrites name input expected =
    let output, _ = Optimizer.simplify input in
    Alcotest.(check bool) name true (Expr.equal output expected)
  in
  check_rewrites "∅|r" (Expr.union Expr.empty s) s;
  check_rewrites "r|r" (Expr.union s s) s;
  check_rewrites "∅.r" (Expr.join Expr.empty s) Expr.empty;
  check_rewrites "ε.r" (Expr.join Expr.epsilon s) s;
  check_rewrites "ε><r" (Expr.product Expr.epsilon s) s;
  check_rewrites "∅*" (Expr.star Expr.empty) Expr.epsilon;
  check_rewrites "(r*)*" (Expr.star (Expr.star s)) (Expr.star s);
  check_rewrites "(ε|r)*" (Expr.star (Expr.union Expr.epsilon s)) (Expr.star s);
  check_rewrites "r*.r*" (Expr.join (Expr.star s) (Expr.star s)) (Expr.star s);
  check_rewrites "ε|r nullable" (Expr.union Expr.epsilon (Expr.star s)) (Expr.star s)

let test_simplify_selector_fusion () =
  let g = H.paper_graph () in
  let a = Expr.sel (Selector.label1 (H.l g "alpha")) in
  let b = Expr.sel (Selector.label1 (H.l g "beta")) in
  let fused, rewrites = Optimizer.simplify (Expr.union a b) in
  (match fused with
  | Expr.Sel (Selector.Union _) -> ()
  | _ -> Alcotest.fail "expected fused selector");
  Alcotest.(check bool) "rewrite recorded" true
    (List.mem "selector-fusion" rewrites)

let qcheck_simplify_preserves_denotation =
  H.qtest ~count:80 "simplify preserves denotation" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let r', _ = Optimizer.simplify r in
      Path_set.equal (Expr.denote g ~max_length:3 r) (Expr.denote g ~max_length:3 r'))

let test_choose_strategy_anchored () =
  let g =
    Generate.uniform ~rng:(Prng.create 1) ~n_vertices:20 ~n_edges:100 ~n_labels:3
  in
  let anchored =
    Expr.join
      (Expr.sel (Selector.src1 (Digraph.vertex g "v0")))
      (Expr.sel Selector.universe)
  in
  let stats = Stat.profile g in
  let cost_of e = Mrpa_lint.Cost.analyze_expr ~stats g ~max_length:8 e in
  let strategy, _ = Optimizer.choose_strategy g (cost_of anchored) anchored in
  Alcotest.(check string) "bfs for anchored" "product-bfs"
    (Plan.strategy_name strategy);
  let unanchored = Expr.join (Expr.sel Selector.universe) (Expr.sel Selector.universe) in
  let strategy, _ = Optimizer.choose_strategy g (cost_of unanchored) unanchored in
  Alcotest.(check string) "stack for unanchored star-free" "stack-machine"
    (Plan.strategy_name strategy)

let test_plan_pp () =
  let g = H.paper_graph () in
  let p =
    Optimizer.plan ~max_length:4 g
      (Expr.union Expr.empty (Expr.sel Selector.universe))
  in
  let s = Format.asprintf "%a" Plan.pp p in
  Alcotest.(check bool) "mentions strategy" true
    (String.length s > 0 && p.Plan.rewrites <> [])

(* --- Eval / Engine ----------------------------------------------------------- *)

let qcheck_strategies_agree_end_to_end =
  H.qtest ~count:60 "eval strategies agree" H.with_graph_gen H.print_with_graph
    (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let run strategy =
        (Engine.query_expr ~strategy ~max_length:3 g r).Engine.paths
      in
      let reference = run Plan.Reference in
      Path_set.equal reference (run Plan.Stack_machine)
      && Path_set.equal reference (run Plan.Product_bfs))

let test_engine_query_text () =
  let g = H.paper_graph () in
  match Engine.query g "[i,alpha,_] . [_,beta,_]" with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    (* (i,α,j)·(j,β,k|j|i): 3 paths; (i,α,k): k has no β out *)
    Alcotest.(check int) "3 αβ paths from i" 3 (Path_set.cardinal r.Engine.paths);
    Alcotest.(check int) "stats count" 3 r.Engine.stats.Eval.paths

let test_engine_parse_error_surfaces () =
  let g = H.paper_graph () in
  match Engine.query g "[i,alpha" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg ->
    Alcotest.(check bool) "offset in message" true
      (String.length msg > 0)

let test_engine_limit () =
  let g = Generate.complete ~n:4 ~n_labels:2 in
  match Engine.query ~limit:3 g "E" with
  | Error msg -> Alcotest.fail msg
  | Ok r -> Alcotest.(check int) "limited" 3 (Path_set.cardinal r.Engine.paths)

let test_engine_max_length_bounds_star () =
  let g = Generate.ring ~n:3 ~n_labels:1 in
  match Engine.query ~max_length:4 g "E*" with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check int) "1+3·4 paths" 13 (Path_set.cardinal r.Engine.paths);
    Alcotest.(check bool) "bounded" true (Path_set.max_length r.Engine.paths <= 4)

let test_engine_explain () =
  let g = H.paper_graph () in
  match Engine.explain g "[i,alpha,_] . E" with
  | Error msg -> Alcotest.fail msg
  | Ok text ->
    Alcotest.(check bool) "mentions plan" true
      (String.length text > 10)

let test_engine_run_seq_stream () =
  let g = H.paper_graph () in
  let plan =
    Optimizer.plan ~strategy:Plan.Product_bfs ~max_length:2 g
      (Expr.sel Selector.universe)
  in
  let first_two = List.of_seq (Seq.take 2 (Eval.run_seq g plan)) in
  Alcotest.(check int) "streamed" 2 (List.length first_two)

let qcheck_engine_count_matches_query =
  H.qtest ~count:60 "Engine.count = |query|" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      fst (Engine.count_expr ~max_length:3 g r)
      = Path_set.cardinal
          (Engine.query_expr ~strategy:Plan.Reference ~max_length:3 g r)
            .Engine.paths)

let test_engine_simple_flag () =
  let g = Generate.ring ~n:4 ~n_labels:1 in
  let all = Engine.query_exn ~max_length:6 g "E*" in
  let simple = Engine.query_exn ~simple:true ~max_length:6 g "E*" in
  Alcotest.(check bool) "restriction shrinks" true
    (Path_set.cardinal simple.Engine.paths
    < Path_set.cardinal all.Engine.paths);
  Alcotest.(check bool) "all simple" true
    (Path_set.fold
       (fun p acc -> acc && Path.is_simple p)
       simple.Engine.paths true);
  (* all strategies agree under ~simple *)
  List.iter
    (fun strategy ->
      let r = Engine.query_exn ~strategy ~simple:true ~max_length:6 g "E*" in
      Alcotest.(check bool)
        ("strategy agrees: " ^ Plan.strategy_name strategy)
        true
        (Path_set.equal r.Engine.paths simple.Engine.paths))
    [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ]

let test_engine_count_text () =
  let g = H.paper_graph () in
  match Engine.count g "[_,beta,_] . [_,beta,_]" with
  | Error msg -> Alcotest.fail msg
  | Ok n -> Alcotest.(check int) "4 ββ paths" 4 n

let test_engine_fig1_text_query () =
  let rng = Prng.create 123 in
  let g = Generate.fig1 ~rng ~n_noise_vertices:3 ~n_noise_edges:5 in
  let text =
    "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])"
  in
  let r = Engine.query_exn ~max_length:6 g text in
  (* the fig1 skeleton guarantees at least the 2-hop witness i→j→(j,α,i)?
     no: guarantees (i,α,k) is reachable via... check non-emptiness only *)
  Alcotest.(check bool) "witnesses exist" true
    (not (Path_set.is_empty r.Engine.paths));
  (* every result must be accepted by the recogniser *)
  let accept = Mrpa_automata.Recognizer.cubic r.Engine.plan.Plan.optimized in
  Path_set.iter
    (fun p -> Alcotest.(check bool) "recognised" true (accept p))
    r.Engine.paths

(* --- Metrics / profiling ------------------------------------------------------ *)

let test_metrics_collector_basics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr ~by:4 m "a";
  Metrics.set m "b" 7;
  Metrics.set_max m "hw" 3;
  Metrics.set_max m "hw" 9;
  Metrics.set_max m "hw" 2;
  Alcotest.(check (option int)) "incr accumulates" (Some 5) (Metrics.counter m "a");
  Alcotest.(check (option int)) "set overwrites" (Some 7) (Metrics.counter m "b");
  Alcotest.(check (option int)) "set_max keeps max" (Some 9)
    (Metrics.counter m "hw");
  Alcotest.(check (option int)) "absent counter" None (Metrics.counter m "zz");
  Alcotest.(check (list string)) "counters name-sorted" [ "a"; "b"; "hw" ]
    (List.map fst (Metrics.counters m));
  let v = Metrics.time m "s1" (fun () -> 42) in
  Alcotest.(check int) "time returns thunk value" 42 v;
  Metrics.time m "s2" ignore;
  Metrics.time m "s1" ignore;
  Alcotest.(check (list string)) "stages in first-use order" [ "s1"; "s2" ]
    (List.map fst (Metrics.stages m));
  List.iter
    (fun (name, ns) ->
      Alcotest.(check bool) (name ^ " non-negative") true (ns >= 0L))
    (Metrics.stages m);
  (* a raising thunk still records its stage *)
  (try Metrics.time m "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check bool) "stage recorded on raise" true
    (Metrics.stage_ns m "boom" <> None)

let test_metrics_json_shape () =
  let m = Metrics.create () in
  Metrics.time m "parse" ignore;
  Metrics.time m "execute" ignore;
  Metrics.set m "result.paths" 3;
  Metrics.set m "pathset.peak" 3;
  let json = Metrics.to_json m in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      "\"schema\":\"mrpa.profile/1\"";
      "\"stages\":[{\"stage\":\"parse\",\"ns\":";
      "{\"stage\":\"execute\",\"ns\":";
      "\"counters\":{\"pathset.peak\":3,\"result.paths\":3}";
    ]

let profiled_exn ?strategy ?simple ?limit ?(max_length = 8) g text =
  match Engine.query_profiled ?strategy ?simple ?limit ~max_length g text with
  | Error msg -> Alcotest.fail msg
  | Ok (r, m) -> (r, m)

let test_profile_pipeline_stages () =
  let g = H.paper_graph () in
  let _, m = profiled_exn g "[i,alpha,_] . [_,beta,_]" in
  Alcotest.(check (list string)) "pipeline order"
    [ "parse"; "lint"; "optimize"; "execute" ]
    (List.map fst (Metrics.stages m));
  List.iter
    (fun (name, ns) ->
      Alcotest.(check bool) (name ^ " >= 0") true (ns >= 0L))
    (Metrics.stages m)

let test_profile_counters_match_result () =
  let g = H.paper_graph () in
  List.iter
    (fun strategy ->
      let r, m = profiled_exn ~strategy g "[_,alpha,_] . [_,beta,_]" in
      let n = Path_set.cardinal r.Engine.paths in
      Alcotest.(check (option int))
        ("result.paths = cardinal: " ^ Plan.strategy_name strategy)
        (Some n)
        (Metrics.counter m "result.paths");
      Alcotest.(check bool)
        ("pathset.peak >= cardinal: " ^ Plan.strategy_name strategy)
        true
        (match Metrics.counter m "pathset.peak" with
        | Some peak -> peak >= n
        | None -> false))
    [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ]

let test_stack_limit_bounds_materialisation () =
  (* Regression: ~limit used to fully materialise the denotation and then
     truncate. On K6 with E* and max_length 4 that is 4681 paths; with the
     limit pushed into the stack machine the run aborts at the first level,
     so the live-path high-water mark stays near |E| + k. *)
  let g = Generate.complete ~n:6 ~n_labels:1 in
  let run ?limit () =
    profiled_exn ~strategy:Plan.Stack_machine ~max_length:4 ?limit g "E*"
  in
  let full, m_full = run () in
  let limited, m_lim = run ~limit:5 () in
  Alcotest.(check int) "limit honoured" 5 (Path_set.cardinal limited.Engine.paths);
  Alcotest.(check bool) "limited ⊆ full" true
    (Path_set.subset limited.Engine.paths full.Engine.paths);
  let peak m =
    Option.value ~default:0 (Metrics.counter m "stack.peak_live_paths")
  in
  Alcotest.(check bool) "unlimited run materialises thousands" true
    (peak m_full > 1000);
  Alcotest.(check bool) "limited run stays bounded" true
    (peak m_lim <= Digraph.n_edges g + 5 + 1)

let test_run_seq_limit () =
  let g = Generate.complete ~n:4 ~n_labels:2 in
  List.iter
    (fun strategy ->
      let plan =
        Optimizer.plan ~strategy ~max_length:3 g (Expr.sel Selector.universe)
      in
      let got = List.of_seq (Eval.run_seq ~limit:5 g plan) in
      Alcotest.(check int)
        ("run_seq limit: " ^ Plan.strategy_name strategy)
        5 (List.length got);
      Alcotest.(check int)
        ("run_seq distinct: " ^ Plan.strategy_name strategy)
        5
        (Path_set.cardinal (Path_set.of_list got)))
    [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ]

let qcheck_simple_limit_strategy_parity =
  H.qtest ~count:60 "simple+limit parity across strategies" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let k = 1 + Prng.int rng 4 in
      let full =
        Path_set.restrict_simple (Expr.denote g ~max_length:3 r)
      in
      let expected = min k (Path_set.cardinal full) in
      List.for_all
        (fun strategy ->
          let got =
            (Engine.query_expr ~strategy ~simple:true ~limit:k ~max_length:3 g
               r)
              .Engine.paths
          in
          Path_set.cardinal got = expected
          && Path_set.subset got full
          && Path_set.fold (fun p acc -> acc && Path.is_simple p) got true)
        [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ])

let () =
  Alcotest.run "mrpa_engine"
    [
      ( "lexer",
        [
          Alcotest.test_case "symbols" `Quick test_lexer_symbols;
          Alcotest.test_case "idents/ints" `Quick test_lexer_idents_and_ints;
          Alcotest.test_case "underscore" `Quick test_lexer_underscore;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "selector forms" `Quick test_parse_selector_forms;
          Alcotest.test_case "precedence" `Quick test_parse_operators_precedence;
          Alcotest.test_case "repetition" `Quick test_parse_repetition;
          Alcotest.test_case "fig1 string" `Quick test_parse_fig1_string;
          Alcotest.test_case "keywords" `Quick test_parse_keywords;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "complement" `Quick test_parse_complement;
          Alcotest.test_case "let macros" `Quick test_parse_let_macros;
          Alcotest.test_case "macro errors" `Quick test_parse_macro_errors;
        ] );
      ( "unparse",
        [
          Alcotest.test_case "text roundtrips" `Quick test_unparse_roundtrip_texts;
          Alcotest.test_case "quoting" `Quick test_unparse_quotes_awkward_names;
          qcheck_unparse_preserves_denotation;
        ] );
      ( "walk",
        [
          Alcotest.test_case "out" `Quick test_walk_out_steps;
          Alcotest.test_case "two steps" `Quick test_walk_two_steps_match_traversal;
          Alcotest.test_case "in/both" `Quick test_walk_in_and_both;
          Alcotest.test_case "filters" `Quick test_walk_filters_dedup_limit;
          Alcotest.test_case "repeat+word" `Quick test_walk_repeat_and_label_word;
          Alcotest.test_case "emit" `Quick test_walk_emit_depths;
          Alcotest.test_case "simple" `Quick test_walk_simple_pruning;
          Alcotest.test_case "selector step" `Quick test_walk_selector_step;
          qcheck_walk_equals_source_traversal;
          qcheck_walk_step_equals_selector_traversal;
        ] );
      ( "crpq",
        [
          Alcotest.test_case "basic join" `Quick test_crpq_basic_join;
          Alcotest.test_case "projection" `Quick test_crpq_projection;
          Alcotest.test_case "nullable atom" `Quick test_crpq_nullable_atom;
          Alcotest.test_case "triangle" `Quick test_crpq_triangle;
          Alcotest.test_case "validation" `Quick test_crpq_validation;
          qcheck_crpq_single_atom_equals_endpoints;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "selector fusion" `Quick test_simplify_selector_fusion;
          Alcotest.test_case "strategy choice" `Quick test_choose_strategy_anchored;
          Alcotest.test_case "plan pp" `Quick test_plan_pp;
          qcheck_simplify_preserves_denotation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "text query" `Quick test_engine_query_text;
          Alcotest.test_case "parse error" `Quick test_engine_parse_error_surfaces;
          Alcotest.test_case "limit" `Quick test_engine_limit;
          Alcotest.test_case "max_length" `Quick test_engine_max_length_bounds_star;
          Alcotest.test_case "explain" `Quick test_engine_explain;
          Alcotest.test_case "run_seq" `Quick test_engine_run_seq_stream;
          Alcotest.test_case "fig1 query" `Quick test_engine_fig1_text_query;
          Alcotest.test_case "simple flag" `Quick test_engine_simple_flag;
          Alcotest.test_case "count text" `Quick test_engine_count_text;
          qcheck_strategies_agree_end_to_end;
          qcheck_engine_count_matches_query;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "collector basics" `Quick
            test_metrics_collector_basics;
          Alcotest.test_case "json shape" `Quick test_metrics_json_shape;
          Alcotest.test_case "pipeline stages" `Quick
            test_profile_pipeline_stages;
          Alcotest.test_case "counters match result" `Quick
            test_profile_counters_match_result;
          Alcotest.test_case "limit bounds stack machine" `Quick
            test_stack_limit_bounds_materialisation;
          Alcotest.test_case "run_seq limit" `Quick test_run_seq_limit;
          qcheck_simple_limit_strategy_parity;
        ] );
    ]
