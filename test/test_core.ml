open Mrpa_graph
open Mrpa_core
module H = Helpers

(* --- Selector ---------------------------------------------------------- *)

let test_selector_matches () =
  let g = H.paper_graph () in
  let i = H.v g "i" and j = H.v g "j" in
  let alpha = H.l g "alpha" in
  let e_ij = H.e g "i" "alpha" "j" in
  let e_jk = H.e g "j" "beta" "k" in
  Alcotest.(check bool) "universe" true (Selector.matches Selector.universe e_ij);
  Alcotest.(check bool) "[i,_,_] yes" true (Selector.matches (Selector.src1 i) e_ij);
  Alcotest.(check bool) "[i,_,_] no" false (Selector.matches (Selector.src1 i) e_jk);
  Alcotest.(check bool) "[_,α,_]" true
    (Selector.matches (Selector.label1 alpha) e_ij);
  Alcotest.(check bool) "[_,_,j]" true (Selector.matches (Selector.dst1 j) e_ij);
  Alcotest.(check bool) "{e}" true (Selector.matches (Selector.edge e_ij) e_ij);
  Alcotest.(check bool) "{e} other" false (Selector.matches (Selector.edge e_ij) e_jk)

let test_selector_boolean_ops () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let alpha = H.l g "alpha" in
  let e_ij = H.e g "i" "alpha" "j" in
  let e_ik_beta = H.e g "i" "beta" "k" in
  let s = Selector.inter (Selector.src1 i) (Selector.label1 alpha) in
  Alcotest.(check bool) "inter yes" true (Selector.matches s e_ij);
  Alcotest.(check bool) "inter no" false (Selector.matches s e_ik_beta);
  let d = Selector.diff (Selector.src1 i) (Selector.label1 alpha) in
  Alcotest.(check bool) "diff" true (Selector.matches d e_ik_beta);
  Alcotest.(check bool) "complement" false
    (Selector.matches (Selector.complement Selector.universe) e_ij)

let test_selector_enumerate_paper_sets () =
  let g = H.paper_graph () in
  (* [i,_,_] : all edges emanating from i *)
  let from_i = Selector.enumerate g (Selector.src1 (H.v g "i")) in
  Alcotest.(check int) "[i,_,_]" 3 (List.length from_i);
  (* [_,β,_] : the four β edges *)
  let betas = Selector.enumerate g (Selector.label1 (H.l g "beta")) in
  Alcotest.(check int) "[_,β,_]" 4 (List.length betas);
  (* [_,_,j] : arrivals at j *)
  let to_j = Selector.enumerate g (Selector.dst1 (H.v g "j")) in
  Alcotest.(check int) "[_,_,j]" 3 (List.length to_j);
  (* [_,_,_] = E *)
  Alcotest.(check int) "universe" 7
    (List.length (Selector.enumerate g Selector.universe))

let test_selector_enumerate_no_duplicates () =
  let g = H.paper_graph () in
  let s =
    Selector.union (Selector.src1 (H.v g "i")) (Selector.label1 (H.l g "alpha"))
  in
  let es = Selector.enumerate g s in
  let distinct = Edge.Set.of_list es in
  Alcotest.(check int) "distinct" (Edge.Set.cardinal distinct) (List.length es)

let test_selector_explicit_intersects_graph () =
  let g = H.paper_graph () in
  let ghost = Edge.make ~tail:(H.v g "i") ~label:(H.l g "alpha") ~head:(H.v g "i") in
  let s = Selector.edges (Edge.Set.of_list [ ghost; H.e g "i" "alpha" "j" ]) in
  Alcotest.(check int) "ghost edge dropped" 1 (List.length (Selector.enumerate g s))

let test_selector_select_out () =
  let g = H.paper_graph () in
  let j = H.v g "j" in
  let beta = H.l g "beta" in
  Alcotest.(check int) "β out of j" 3
    (List.length (Selector.select_out g (Selector.label1 beta) j));
  Alcotest.(check int) "α into j" 2
    (List.length (Selector.select_in g (Selector.label1 (H.l g "alpha")) (H.v g "j")))

let qcheck_size_hint_upper_bound =
  H.qtest ~count:150 "size_hint never underestimates" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let s = H.random_selector rng g in
      List.length (Selector.enumerate g s) <= Selector.size_hint g s)

let qcheck_enumerate_agrees_with_matches =
  H.qtest ~count:150 "enumerate = filter matches E" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let s = H.random_selector rng g in
      let by_enum = Edge.Set.of_list (Selector.enumerate g s) in
      let by_filter =
        Edge.Set.of_list (List.filter (Selector.matches s) (Digraph.edges g))
      in
      Edge.Set.equal by_enum by_filter)

(* --- Path_set: the paper's §II worked example --------------------------- *)

let test_join_paper_worked_example () =
  let g = H.paper_graph () in
  let e = H.e g in
  let a =
    Path_set.of_list
      [
        Path.of_edge (e "i" "alpha" "j");
        Path.of_edges [ e "j" "beta" "k"; e "k" "alpha" "j" ];
      ]
  in
  let b =
    Path_set.of_list
      [
        Path.of_edge (e "j" "beta" "j");
        Path.of_edges [ e "j" "beta" "i"; e "i" "alpha" "k" ];
        Path.of_edge (e "i" "beta" "k");
      ]
  in
  let expected =
    Path_set.of_list
      [
        Path.of_edges [ e "i" "alpha" "j"; e "j" "beta" "j" ];
        Path.of_edges [ e "i" "alpha" "j"; e "j" "beta" "i"; e "i" "alpha" "k" ];
        Path.of_edges [ e "j" "beta" "k"; e "k" "alpha" "j"; e "j" "beta" "j" ];
        Path.of_edges
          [ e "j" "beta" "k"; e "k" "alpha" "j"; e "j" "beta" "i"; e "i" "alpha" "k" ];
      ]
  in
  Alcotest.check H.path_set "A ./∘ B as printed in the paper" expected
    (Path_set.join a b)

let test_join_epsilon_identity () =
  let g = H.paper_graph () in
  let a = Path_set.all_edges g in
  Alcotest.check H.path_set "ε ./∘ A = A" a (Path_set.join Path_set.epsilon a);
  Alcotest.check H.path_set "A ./∘ ε = A" a (Path_set.join a Path_set.epsilon)

let test_join_empty_annihilates () =
  let g = H.paper_graph () in
  let a = Path_set.all_edges g in
  Alcotest.check H.path_set "∅ ./∘ A" Path_set.empty (Path_set.join Path_set.empty a);
  Alcotest.check H.path_set "A ./∘ ∅" Path_set.empty (Path_set.join a Path_set.empty)

let test_product_includes_disjoint () =
  let g = H.paper_graph () in
  let p1 = Path_set.singleton (Path.of_edge (H.e g "i" "alpha" "j")) in
  let p2 = Path_set.singleton (Path.of_edge (H.e g "i" "beta" "k")) in
  (* (i,α,j) and (i,β,k) are not adjacent: join empty, product single. *)
  Alcotest.check H.path_set "join empty" Path_set.empty (Path_set.join p1 p2);
  Alcotest.(check int) "product has it" 1 (Path_set.cardinal (Path_set.product p1 p2));
  Alcotest.(check bool) "product path disjoint" false
    (Path.is_joint (List.hd (Path_set.elements (Path_set.product p1 p2))))

let qcheck_join_associative =
  H.qtest ~count:60 "join associative" H.with_graph_gen H.print_with_graph
    (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let subset () =
        Path_set.of_edges
          (List.filter (fun _ -> Prng.bool rng) (Digraph.edges g))
      in
      let a = subset () and b = subset () and c = subset () in
      Path_set.equal
        (Path_set.join (Path_set.join a b) c)
        (Path_set.join a (Path_set.join b c)))

let qcheck_join_subset_of_product =
  H.qtest ~count:100 "R ./∘ Q ⊆ R ×∘ Q (footnote 7)" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let a = Path_set.of_list (List.init 4 (fun _ -> H.random_path rng g 3)) in
      let b = Path_set.of_list (List.init 4 (fun _ -> H.random_path rng g 3)) in
      Path_set.subset (Path_set.join a b) (Path_set.product a b))

let qcheck_join_is_filtered_product =
  H.qtest ~count:100 "join = product filtered on boundary" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let la = List.init 4 (fun _ -> H.random_path rng g 3) in
      let lb = List.init 4 (fun _ -> H.random_path rng g 3) in
      let a = Path_set.of_list la and b = Path_set.of_list lb in
      let filtered =
        List.concat_map
          (fun pa ->
            List.filter_map
              (fun pb ->
                if Path.adjacent pa pb then Some (Path.concat pa pb) else None)
              lb)
          la
        |> Path_set.of_list
      in
      Path_set.equal (Path_set.join a b) filtered)

let qcheck_join_distributes_over_union =
  H.qtest ~count:60 "A ./∘ (B ∪ C) = (A ./∘ B) ∪ (A ./∘ C)" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let rand_set () =
        Path_set.of_list (List.init 3 (fun _ -> H.random_walk rng g 3))
      in
      let a = rand_set () and b = rand_set () and c = rand_set () in
      Path_set.equal
        (Path_set.join a (Path_set.union b c))
        (Path_set.union (Path_set.join a b) (Path_set.join a c)))

let qcheck_joint_operands_give_joint_paths =
  H.qtest ~count:100 "join of joint sets is joint" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let rand_set () =
        Path_set.of_list (List.init 4 (fun _ -> H.random_walk rng g 3))
      in
      let joined = Path_set.join (rand_set ()) (rand_set ()) in
      Path_set.fold (fun p acc -> acc && Path.is_joint p) joined true)

let test_join_power () =
  let g = Generate.ring ~n:4 ~n_labels:1 in
  let e = Path_set.all_edges g in
  (* ring: exactly n joint paths of each length *)
  Alcotest.(check int) "power 0" 1 (Path_set.cardinal (Path_set.join_power e 0));
  Alcotest.(check int) "power 1" 4 (Path_set.cardinal (Path_set.join_power e 1));
  Alcotest.(check int) "power 3" 4 (Path_set.cardinal (Path_set.join_power e 3));
  Alcotest.check_raises "negative"
    (Invalid_argument "Path_set.join_power: negative exponent") (fun () ->
      ignore (Path_set.join_power e (-1)))

let test_star_bounded () =
  let g = Generate.ring ~n:3 ~n_labels:1 in
  let e = Path_set.all_edges g in
  let s = Path_set.star_bounded e ~max_length:4 in
  (* lengths 0..4: 1 + 3 + 3 + 3 + 3 *)
  Alcotest.(check int) "cardinal" 13 (Path_set.cardinal s);
  Alcotest.(check int) "max length respected" 4 (Path_set.max_length s);
  Alcotest.(check bool) "contains ε" true (Path_set.mem Path.empty s)

let test_restrict_and_endpoints () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let all = Path_set.all_edges g in
  let from_i = Path_set.restrict_source (Vertex.Set.singleton i) all in
  Alcotest.(check int) "3 from i" 3 (Path_set.cardinal from_i);
  let pairs = Path_set.endpoint_pairs from_i in
  Alcotest.(check int) "2 endpoint pairs (i→j, i→k)" 2 (List.length pairs);
  Alcotest.(check bool) "ε not kept" true
    (Path_set.is_empty (Path_set.restrict_source (Vertex.Set.singleton i) Path_set.epsilon))

(* --- Traversal (§III) --------------------------------------------------- *)

let test_complete_traversal_lattice () =
  (* 2x2 lattice: 4 edges; joint 2-paths: x00→x01→x11 and x00→x10→x11 *)
  let g = Generate.lattice ~rows:2 ~cols:2 in
  Alcotest.(check int) "length 1 = |E|" 4
    (Path_set.cardinal (Traversal.complete g ~length:1));
  Alcotest.(check int) "length 2" 2
    (Path_set.cardinal (Traversal.complete g ~length:2));
  Alcotest.(check int) "length 3 none" 0
    (Path_set.cardinal (Traversal.complete g ~length:3));
  Alcotest.(check int) "length 0 = {ε}" 1
    (Path_set.cardinal (Traversal.complete g ~length:0))

let test_source_traversal () =
  let g = Generate.lattice ~rows:2 ~cols:2 in
  let x00 = H.v g "x0_0" and x01 = H.v g "x0_1" in
  let from00 = Traversal.source g ~from:(Vertex.Set.singleton x00) ~length:2 in
  Alcotest.(check int) "both 2-paths from corner" 2 (Path_set.cardinal from00);
  let from01 = Traversal.source g ~from:(Vertex.Set.singleton x01) ~length:2 in
  Alcotest.(check int) "one 2-path? none (x01 only reaches x11 in 1)" 0
    (Path_set.cardinal from01);
  (* Vs = V degenerates to complete traversal *)
  let all = Vertex.Set.of_list (Digraph.vertices g) in
  Alcotest.check H.path_set "Vs = V means complete"
    (Traversal.complete g ~length:2)
    (Traversal.source g ~from:all ~length:2)

let test_destination_traversal () =
  let g = Generate.lattice ~rows:2 ~cols:2 in
  let x11 = H.v g "x1_1" in
  let into = Traversal.destination g ~into:(Vertex.Set.singleton x11) ~length:2 in
  Alcotest.(check int) "2 paths into far corner" 2 (Path_set.cardinal into);
  let all = Vertex.Set.of_list (Digraph.vertices g) in
  Alcotest.check H.path_set "Vd = V means complete"
    (Traversal.complete g ~length:1)
    (Traversal.destination g ~into:all ~length:1)

let test_between_traversal () =
  let g = Generate.lattice ~rows:2 ~cols:2 in
  let x00 = H.v g "x0_0" and x11 = H.v g "x1_1" in
  let p =
    Traversal.between g
      ~from:(Vertex.Set.singleton x00)
      ~into:(Vertex.Set.singleton x11)
      ~length:2
  in
  Alcotest.(check int) "corner to corner" 2 (Path_set.cardinal p);
  let p1 =
    Traversal.between g
      ~from:(Vertex.Set.singleton x00)
      ~into:(Vertex.Set.singleton x11)
      ~length:1
  in
  Alcotest.(check int) "no single hop corner to corner" 0 (Path_set.cardinal p1)

let test_labeled_traversal () =
  let g = Generate.lattice ~rows:2 ~cols:2 in
  let right = H.l g "right" and down = H.l g "down" in
  let rd =
    Traversal.labeled g
      ~labels:[ Label.Set.singleton right; Label.Set.singleton down ]
  in
  (* right-then-down from x00 only *)
  Alcotest.(check int) "one rd-path" 1 (Path_set.cardinal rd);
  let p = List.hd (Path_set.elements rd) in
  Alcotest.(check (list int)) "label word" [ right; down ] (Path.label_word p);
  (* Ωe = Ωf = Ω degenerates to complete *)
  let omega = Label.Set.of_list (Digraph.labels g) in
  Alcotest.check H.path_set "Ω steps = complete"
    (Traversal.complete g ~length:2)
    (Traversal.labeled g ~labels:[ omega; omega ])

let test_steps_through_vertex () =
  let g = Generate.lattice ~rows:2 ~cols:2 in
  let x01 = H.v g "x0_1" in
  (* 2-step paths that pass through x01 after the first edge *)
  let through =
    Traversal.steps g
      [ Selector.dst_in (Vertex.Set.singleton x01); Selector.universe ]
  in
  Alcotest.(check int) "via x01" 1 (Path_set.cardinal through)

let test_complement_vertices () =
  let g = H.paper_graph () in
  let i = H.v g "i" in
  let comp = Traversal.complement_vertices g (Vertex.Set.singleton i) in
  Alcotest.(check int) "two left" 2 (Vertex.Set.cardinal comp);
  Alcotest.(check bool) "i excluded" false (Vertex.Set.mem i comp)

let test_neighbourhood () =
  let g = Generate.lattice ~rows:2 ~cols:2 in
  let x00 = H.v g "x0_0" in
  let n1 = Traversal.neighbourhood g ~from:(Vertex.Set.singleton x00) ~length:1 in
  Alcotest.check H.vertex_set "one step"
    (Vertex.Set.of_list [ H.v g "x0_1"; H.v g "x1_0" ])
    n1;
  let n0 = Traversal.neighbourhood g ~from:(Vertex.Set.singleton x00) ~length:0 in
  Alcotest.check H.vertex_set "zero steps" (Vertex.Set.singleton x00) n0

let qcheck_steps_planned_equals_steps =
  H.qtest ~count:80 "steps_planned = steps (any join order)" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let sels = List.init (1 + Prng.int rng 3) (fun _ -> H.random_selector rng g) in
      Path_set.equal (Traversal.steps g sels) (Traversal.steps_planned g sels))

let test_steps_planned_trivia () =
  let g = H.paper_graph () in
  Alcotest.check H.path_set "empty list" Path_set.epsilon
    (Traversal.steps_planned g []);
  Alcotest.check H.path_set "singleton"
    (Path_set.all_edges g)
    (Traversal.steps_planned g [ Selector.universe ])

let qcheck_source_restriction_consistent =
  H.qtest ~count:60 "source traversal = complete filtered" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let vs =
        Vertex.Set.of_list
          [ Prng.pick rng (Array.of_list (Digraph.vertices g)) ]
      in
      let direct = Traversal.source g ~from:vs ~length:2 in
      let filtered =
        Path_set.restrict_source vs (Traversal.complete g ~length:2)
      in
      Path_set.equal direct filtered)

(* --- Label_expr (regular expressions over Omega, ref [8]) ----------------- *)

let test_label_expr_matching () =
  let alpha = 0 and beta = 1 in
  let open Label_expr in
  let r = concat (lbl alpha) (star (lbl beta)) in
  Alcotest.(check bool) "a" true (matches_word r [ alpha ]);
  Alcotest.(check bool) "ab" true (matches_word r [ alpha; beta ]);
  Alcotest.(check bool) "abbb" true (matches_word r [ alpha; beta; beta; beta ]);
  Alcotest.(check bool) "b" false (matches_word r [ beta ]);
  Alcotest.(check bool) "eps" false (matches_word r []);
  Alcotest.(check bool) "eps in star" true (matches_word (star (lbl alpha)) []);
  Alcotest.(check bool) "union" true
    (matches_word (union (lbl alpha) (lbl beta)) [ beta ])

let test_label_expr_smart_constructors () =
  let open Label_expr in
  Alcotest.(check bool) "empty union" true (equal (union empty (lbl 0)) (lbl 0));
  Alcotest.(check bool) "empty concat" true (equal (concat empty (lbl 0)) empty);
  Alcotest.(check bool) "eps concat" true (equal (concat epsilon (lbl 0)) (lbl 0));
  Alcotest.(check bool) "star star" true
    (equal (star (star (lbl 0))) (star (lbl 0)));
  Alcotest.(check bool) "star eps" true (equal (star epsilon) epsilon);
  Alcotest.(check bool) "empty label set" true
    (equal (lbl_in Mrpa_graph.Label.Set.empty) empty)

let test_label_expr_accepts_path () =
  let g = H.paper_graph () in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let open Label_expr in
  let r = concat (lbl alpha) (lbl beta) in
  let joint = Path.of_edges [ H.e g "i" "alpha" "j"; H.e g "j" "beta" "k" ] in
  let disjoint = Path.of_edges [ H.e g "i" "alpha" "j"; H.e g "i" "beta" "k" ] in
  Alcotest.(check bool) "joint ab accepted" true (accepts_path r joint);
  Alcotest.(check bool) "disjoint ab rejected (jointness required)" false
    (accepts_path r disjoint);
  Alcotest.(check bool) "eps iff nullable" true
    (accepts_path (star (lbl alpha)) Path.empty);
  Alcotest.(check bool) "eps rejected by strict" false
    (accepts_path (lbl alpha) Path.empty)

let qcheck_label_expr_derivative_law =
  H.qtest ~count:150 "matches (l::w) = matches (deriv l) w"
    QCheck2.Gen.(int_bound 100_000)
    string_of_int
    (fun seed ->
      let rng = Prng.create seed in
      let rec random_lexpr depth =
        if depth = 0 then
          match Prng.int rng 3 with
          | 0 -> Label_expr.epsilon
          | _ -> Label_expr.lbl (Prng.int rng 3)
        else
          match Prng.int rng 4 with
          | 0 ->
            Label_expr.union (random_lexpr (depth - 1)) (random_lexpr (depth - 1))
          | 1 | 2 ->
            Label_expr.concat (random_lexpr (depth - 1)) (random_lexpr (depth - 1))
          | _ -> Label_expr.star (random_lexpr (depth - 1))
      in
      let r = random_lexpr 2 in
      let word = List.init (Prng.int rng 5) (fun _ -> Prng.int rng 3) in
      match word with
      | [] -> Label_expr.matches_word r word = Label_expr.nullable r
      | l :: rest ->
        Label_expr.matches_word r word
        = Label_expr.matches_word (Label_expr.derivative r l) rest)

let qcheck_label_expr_embedding =
  H.qtest ~count:60 "to_expr embedding theorem" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let labels = Array.of_list (Digraph.labels g) in
      let rec random_lexpr depth =
        if depth = 0 then Label_expr.lbl (Prng.pick rng labels)
        else
          match Prng.int rng 4 with
          | 0 ->
            Label_expr.union (random_lexpr (depth - 1)) (random_lexpr (depth - 1))
          | 1 | 2 ->
            Label_expr.concat (random_lexpr (depth - 1)) (random_lexpr (depth - 1))
          | _ -> Label_expr.star (random_lexpr (depth - 1))
      in
      let r = random_lexpr 2 in
      let max_length = 3 in
      let denoted = Expr.denote g ~max_length (Label_expr.to_expr r) in
      (* candidates: all joint paths up to the bound *)
      let candidates = ref Path_set.epsilon in
      for len = 1 to max_length do
        candidates := Path_set.union !candidates (Traversal.complete g ~length:len)
      done;
      let filtered = Path_set.filter (Label_expr.accepts_path r) !candidates in
      Path_set.equal denoted filtered)

let test_restrict_simple () =
  let g = Generate.ring ~n:3 ~n_labels:1 in
  let all = Path_set.star_bounded (Path_set.all_edges g) ~max_length:4 in
  let simple = Path_set.restrict_simple all in
  (* ring of 3: simple paths are lengths 0,1,2 only (length 3 returns home) *)
  Alcotest.(check int) "1 + 3 + 3" 7 (Path_set.cardinal simple)

(* --- Expr ---------------------------------------------------------------- *)

let test_expr_nullable () =
  let s = Expr.sel Selector.universe in
  Alcotest.(check bool) "ε" true (Expr.nullable Expr.epsilon);
  Alcotest.(check bool) "∅" false (Expr.nullable Expr.empty);
  Alcotest.(check bool) "sel" false (Expr.nullable s);
  Alcotest.(check bool) "star" true (Expr.nullable (Expr.star s));
  Alcotest.(check bool) "opt" true (Expr.nullable (Expr.opt s));
  Alcotest.(check bool) "plus" false (Expr.nullable (Expr.plus s));
  Alcotest.(check bool) "join" false (Expr.nullable (Expr.join (Expr.star s) s));
  Alcotest.(check bool) "join nullables" true
    (Expr.nullable (Expr.join (Expr.star s) (Expr.opt s)))

let test_expr_structure () =
  let s = Expr.sel Selector.universe in
  Alcotest.(check bool) "no product" false (Expr.uses_product (Expr.join s s));
  Alcotest.(check bool) "product" true (Expr.uses_product (Expr.product s s));
  Alcotest.(check int) "size" 3 (Expr.size (Expr.join s s));
  Alcotest.(check int) "selectors dedup" 1 (List.length (Expr.selectors (Expr.join s s)))

let test_expr_repeat () =
  let s = Expr.sel Selector.universe in
  Alcotest.(check bool) "repeat 0 = ε" true (Expr.equal (Expr.repeat s 0) Expr.epsilon);
  Alcotest.check_raises "negative" (Invalid_argument "Expr.repeat: negative count")
    (fun () -> ignore (Expr.repeat s (-1)))

let denote_eq g r1 r2 ~max_length =
  Path_set.equal (Expr.denote g ~max_length r1) (Expr.denote g ~max_length r2)

let test_expr_denote_footnote8 () =
  (* R+ = R ./∘ R*, R? = R ∪ {ε}, Rⁿ = R ./∘ … ./∘ R *)
  let g = H.paper_graph () in
  let r = Expr.sel (Selector.label1 (H.l g "beta")) in
  Alcotest.(check bool) "plus" true
    (denote_eq g (Expr.plus r) (Expr.join r (Expr.star r)) ~max_length:4);
  Alcotest.(check bool) "opt" true
    (denote_eq g (Expr.opt r) (Expr.union r Expr.epsilon) ~max_length:4);
  Alcotest.(check bool) "repeat 3" true
    (denote_eq g (Expr.repeat r 3) (Expr.join (Expr.join r r) r) ~max_length:4)

let test_expr_denote_vs_traversal () =
  let g = H.paper_graph () in
  let universe = Expr.sel Selector.universe in
  Alcotest.check H.path_set "E.E = complete 2"
    (Traversal.complete g ~length:2)
    (Expr.denote g ~max_length:2 (Expr.join universe universe))

let test_expr_denote_star_contains_epsilon () =
  let g = H.paper_graph () in
  let r = Expr.star (Expr.sel Selector.universe) in
  Alcotest.(check bool) "ε ∈ E*" true
    (Path_set.mem Path.empty (Expr.denote g ~max_length:2 r))

let test_expr_denote_product_vs_join () =
  let g = H.paper_graph () in
  let a = Expr.sel (Selector.src1 (H.v g "i")) in
  let j = Expr.denote g ~max_length:2 (Expr.join a a) in
  let p = Expr.denote g ~max_length:2 (Expr.product a a) in
  Alcotest.(check bool) "join ⊆ product" true (Path_set.subset j p);
  Alcotest.(check bool) "product strictly larger here" true
    (Path_set.cardinal p > Path_set.cardinal j)

let test_expr_repeat_range () =
  let g = H.paper_graph () in
  let r = Expr.sel Selector.universe in
  let rr = Expr.repeat_range r ~min:1 ~max:2 in
  let expected =
    Path_set.union
      (Expr.denote g ~max_length:2 r)
      (Expr.denote g ~max_length:2 (Expr.repeat r 2))
  in
  Alcotest.check H.path_set "1..2 = 1 ∪ 2" expected (Expr.denote g ~max_length:2 rr)

let test_expr_pp () =
  let s = Expr.sel Selector.universe in
  let str = Format.asprintf "%a" Expr.pp (Expr.star (Expr.union s Expr.epsilon)) in
  Alcotest.(check bool) "mentions star" true (String.contains str '*');
  Alcotest.(check bool) "mentions union" true (String.contains str '|')

let qcheck_denote_length_bound =
  H.qtest ~count:60 "denote respects max_length" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let s = Expr.denote g ~max_length:3 r in
      Path_set.max_length s <= 3)

let qcheck_denote_monotone_in_bound =
  H.qtest ~count:60 "denote monotone in max_length" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      Path_set.subset (Expr.denote g ~max_length:2 r) (Expr.denote g ~max_length:3 r))

let qcheck_dsl_matches_constructors =
  H.qtest ~count:40 "Dsl operators = constructors" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let a = H.random_expr rng g and b = H.random_expr rng g in
      let open Expr.Dsl in
      Expr.equal (a <|> b) (Expr.union a b)
      && Expr.equal (a <.> b) (Expr.join a b)
      && Expr.equal (a >< b) (Expr.product a b)
      && Expr.equal (a ^^ 2) (Expr.repeat a 2))

let () =
  Alcotest.run "mrpa_core"
    [
      ( "selector",
        [
          Alcotest.test_case "matches" `Quick test_selector_matches;
          Alcotest.test_case "boolean ops" `Quick test_selector_boolean_ops;
          Alcotest.test_case "paper sets" `Quick test_selector_enumerate_paper_sets;
          Alcotest.test_case "no duplicates" `Quick
            test_selector_enumerate_no_duplicates;
          Alcotest.test_case "explicit ∩ E" `Quick
            test_selector_explicit_intersects_graph;
          Alcotest.test_case "select_out/in" `Quick test_selector_select_out;
          qcheck_size_hint_upper_bound;
          qcheck_enumerate_agrees_with_matches;
        ] );
      ( "path_set",
        [
          Alcotest.test_case "paper worked example" `Quick
            test_join_paper_worked_example;
          Alcotest.test_case "ε identity" `Quick test_join_epsilon_identity;
          Alcotest.test_case "∅ annihilates" `Quick test_join_empty_annihilates;
          Alcotest.test_case "product disjoint" `Quick test_product_includes_disjoint;
          Alcotest.test_case "join_power" `Quick test_join_power;
          Alcotest.test_case "star_bounded" `Quick test_star_bounded;
          Alcotest.test_case "restrict/endpoints" `Quick test_restrict_and_endpoints;
          qcheck_join_associative;
          qcheck_join_subset_of_product;
          qcheck_join_is_filtered_product;
          qcheck_join_distributes_over_union;
          qcheck_joint_operands_give_joint_paths;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "complete" `Quick test_complete_traversal_lattice;
          Alcotest.test_case "source" `Quick test_source_traversal;
          Alcotest.test_case "destination" `Quick test_destination_traversal;
          Alcotest.test_case "between" `Quick test_between_traversal;
          Alcotest.test_case "labeled" `Quick test_labeled_traversal;
          Alcotest.test_case "through vertex" `Quick test_steps_through_vertex;
          Alcotest.test_case "complement" `Quick test_complement_vertices;
          Alcotest.test_case "neighbourhood" `Quick test_neighbourhood;
          Alcotest.test_case "steps_planned trivia" `Quick test_steps_planned_trivia;
          qcheck_steps_planned_equals_steps;
          qcheck_source_restriction_consistent;
        ] );
      ( "label_expr",
        [
          Alcotest.test_case "matching" `Quick test_label_expr_matching;
          Alcotest.test_case "smart constructors" `Quick
            test_label_expr_smart_constructors;
          Alcotest.test_case "accepts_path" `Quick test_label_expr_accepts_path;
          Alcotest.test_case "restrict_simple" `Quick test_restrict_simple;
          qcheck_label_expr_derivative_law;
          qcheck_label_expr_embedding;
        ] );
      ( "expr",
        [
          Alcotest.test_case "nullable" `Quick test_expr_nullable;
          Alcotest.test_case "structure" `Quick test_expr_structure;
          Alcotest.test_case "repeat" `Quick test_expr_repeat;
          Alcotest.test_case "footnote 8 identities" `Quick test_expr_denote_footnote8;
          Alcotest.test_case "denote vs traversal" `Quick test_expr_denote_vs_traversal;
          Alcotest.test_case "star has ε" `Quick test_expr_denote_star_contains_epsilon;
          Alcotest.test_case "product vs join" `Quick test_expr_denote_product_vs_join;
          Alcotest.test_case "repeat range" `Quick test_expr_repeat_range;
          Alcotest.test_case "pp" `Quick test_expr_pp;
          qcheck_denote_length_bound;
          qcheck_denote_monotone_in_bound;
          qcheck_dsl_matches_constructors;
        ] );
    ]
