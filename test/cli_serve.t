The query server: mrpa serve publishes one frozen graph snapshot over a
Unix-domain socket speaking mrpa.wire/1, and mrpa call is the scriptable
client. The server here gets a small fuel ceiling so we can watch a
client's unbounded request being clamped into a governed, partial run.

A deterministic workload graph:

  $ ../bin/mrpa.exe generate --kind ring -n 6 -o ring.tsv
  generated ring: |V|=6 |E|=6 |Omega|=3

Calling a socket nobody is listening on is a user error (exit 1):

  $ ../bin/mrpa.exe call --socket nope.sock --ping 2>&1 | head -1
  error: cannot connect to unix:nope.sock: No such file or directory
  $ ../bin/mrpa.exe call --socket nope.sock --ping >/dev/null 2>&1; echo $?
  1

Start a server in the background and wait for the socket to appear:

  $ ../bin/mrpa.exe serve --graph ring.tsv --socket s.sock --workers 2 --queue 8 --max-fuel 40 2>serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do test -S s.sock && break; sleep 0.1; done
  $ test -S s.sock && echo socket up
  socket up

A ping round-trips the protocol version and echoes the id:

  $ ../bin/mrpa.exe call --socket s.sock --ping
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"pong":true}

Counting is served complete when it fits the fuel ceiling:

  $ ../bin/mrpa.exe call --socket s.sock --count 'E'
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"count":6,"verdict":"complete"}

A small complete query (timing normalised):

  $ ../bin/mrpa.exe call --socket s.sock 'E' --limit 2 | sed 's/"elapsed_ms":[0-9.]*/"elapsed_ms":N/'
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"result":{"paths":[{"edges":[{"tail":"v0","label":"r0","head":"v1"}],"label_word":["r0"],"length":1,"joint":true},{"edges":[{"tail":"v1","label":"r1","head":"v2"}],"label_word":["r1"],"length":1,"joint":true}],"count":2,"elapsed_ms":N,"strategy":"product-bfs","verdict":"partial:limit","rewrites":[]}}

The server's fuel ceiling governs every request: the client asked for an
unbounded starred run, the server clamps it to 40 fuel units, and the
response carries the same partial-verdict taxonomy as a local governed
run. mrpa call maps a partial verdict to exit code 3, like mrpa query:

  $ ../bin/mrpa.exe call --socket s.sock 'E*' > response.json; echo "exit: $?"
  exit: 3
  $ grep -o '"verdict":"partial:fuel"' response.json
  "verdict":"partial:fuel"

A query that does not parse is a query_error response on a live
connection, not a dead server, and exits 1:

  $ ../bin/mrpa.exe call --socket s.sock '[[[' > response.json; echo "exit: $?"
  exit: 1
  $ grep -o '"code":"[a-z_]*"' response.json
  "code":"query_error"

Server-wide stats expose the pool geometry and request counters:

  $ ../bin/mrpa.exe call --socket s.sock --stats > stats.json
  $ grep -o '"server.workers":[0-9]*' stats.json
  "server.workers":2
  $ grep -o '"server.queue_capacity":[0-9]*' stats.json
  "server.queue_capacity":8
  $ grep -o '"graph.edges":[0-9]*' stats.json
  "graph.edges":6
  $ grep -o '"server.partial":[0-9]*' stats.json
  "server.partial":2

Pipelined mode: several tagged requests ride one connection and are
matched back by id. (Responses may arrive out of order, so normalise
with sort; the ids prove the correlation either way.)

  $ printf 'E\n[v0,r0,_]\n' | ../bin/mrpa.exe call --socket s.sock --pipeline --count | sort
  {"mrpa":"mrpa.wire/1","id":1,"ok":true,"count":6,"verdict":"complete"}
  {"mrpa":"mrpa.wire/1","id":2,"ok":true,"count":1,"verdict":"complete"}

The shutdown verb drains the server gracefully: the server acknowledges,
then exits 0 and unlinks its socket. (Over a Unix-domain socket the verb
is always honoured — the client provably shares the host.)

  $ ../bin/mrpa.exe call --socket s.sock --shutdown
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"stopping":true}
  $ wait $SERVE_PID; echo "server exit: $?"
  server exit: 0
  $ test -e s.sock || echo "socket unlinked"
  socket unlinked
  $ cat serve.log
  mrpa serve: unix:s.sock workers=2 queue=8 graph=ring.tsv (|V|=6 |E|=6 |Omega|=3)
  mrpa serve: listening on unix:s.sock
  mrpa serve: drained, exiting

A TCP server refuses the shutdown verb unless started with
--allow-remote-shutdown: any host that can reach the port could kill it
otherwise. Port 0 asks the kernel for a free port; the "listening on"
line announces the one it picked.

  $ ../bin/mrpa.exe serve --graph ring.tsv --port 0 --workers 1 --queue 4 2>tcp.log &
  $ TCP_PID=$!
  $ for i in $(seq 1 100); do grep -q "listening on" tcp.log && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on tcp:127.0.0.1:\([0-9][0-9]*\).*/\1/p' tcp.log)
  $ ../bin/mrpa.exe call --port $PORT --shutdown
  {"mrpa":"mrpa.wire/1","id":null,"ok":false,"error":{"code":"unauthorized","message":"shutdown over TCP requires --allow-remote-shutdown"}}
  [1]

The refused server is still alive and serving:

  $ ../bin/mrpa.exe call --port $PORT --ping
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"pong":true}
  $ kill -TERM $TCP_PID
  $ wait $TCP_PID; echo "tcp server exit: $?"
  tcp server exit: 0

With the flag, a remote shutdown is honoured:

  $ ../bin/mrpa.exe serve --graph ring.tsv --port 0 --workers 1 --queue 4 --allow-remote-shutdown 2>tcp2.log &
  $ TCP_PID=$!
  $ for i in $(seq 1 100); do grep -q "listening on" tcp2.log && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on tcp:127.0.0.1:\([0-9][0-9]*\).*/\1/p' tcp2.log)
  $ ../bin/mrpa.exe call --port $PORT --shutdown
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"stopping":true}
  $ wait $TCP_PID; echo "tcp server exit: $?"
  tcp server exit: 0
