(* Tests for the sharded serving tier: shard maps (parsing, hash placement,
   partitioning), the scatter-gather router's parity with the single-server
   engine over a live shard fleet, and the robustness surface — degraded
   answers when a shard dies, the per-shard circuit breaker's
   open/half-open/closed life cycle (driven by the deterministic fault
   plane), per-shard failover, and the failover client's rotate-on-dead
   behaviour. *)

open Mrpa_core
open Mrpa_server
module H = Helpers

(* --- Shard maps ---------------------------------------------------------- *)

let sample_map =
  "# mrpa.shardmap/1\n\
   # comment\n\
   shard s0 unix:/tmp/s0.sock\n\n\
   shard s1 tcp:10.0.0.2:7440 tcp:10.0.0.3:7440\n"

let test_shardmap_parse () =
  let m =
    match Shardmap.of_string sample_map with
    | Ok m -> m
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check int) "two shards" 2 (Shardmap.n_shards m);
  Alcotest.(check (option int)) "index s1" (Some 1) (Shardmap.index_of m "s1");
  Alcotest.(check int)
    "s1 has two endpoints" 2
    (List.length (Shardmap.shard m 1).Shardmap.endpoints);
  (* Canonical rendering round-trips. *)
  (match Shardmap.of_string (Shardmap.to_string m) with
  | Ok m' ->
    Alcotest.(check string)
      "roundtrip" (Shardmap.to_string m) (Shardmap.to_string m')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (* Ownership is total, in range, and deterministic. *)
  List.iter
    (fun name ->
      let o = Shardmap.owner m name in
      Alcotest.(check bool) "in range" true (o >= 0 && o < 2);
      Alcotest.(check int) "deterministic" o (Shardmap.owner m name))
    [ "i"; "j"; "k"; "never seen" ]

let test_shardmap_errors () =
  let bad text =
    match Shardmap.of_string text with
    | Ok _ -> Alcotest.failf "expected an error for %S" text
    | Error _ -> ()
  in
  bad "";
  bad "shard s0 unix:/a.sock\n";
  (* missing header *)
  bad "# mrpa.shardmap/1\n";
  (* no shards *)
  bad "# mrpa.shardmap/1\nshard s0\n";
  (* no endpoints *)
  bad "# mrpa.shardmap/1\nshard s0 unix:/a\nshard s0 unix:/b\n";
  (* dup name *)
  bad "# mrpa.shardmap/1\nshard s0 nonsense$endpoint\n"

let test_shardmap_partition () =
  let g = H.paper_graph () in
  let m =
    match
      Shardmap.of_string
        "# mrpa.shardmap/1\n\
         shard s0 unix:/tmp/a\nshard s1 unix:/tmp/b\nshard s2 unix:/tmp/c\n"
    with
    | Ok m -> m
    | Error e -> Alcotest.failf "map: %s" e
  in
  let parts = Shardmap.partition m g in
  Alcotest.(check int) "one part per shard" 3 (Array.length parts);
  (* Every part carries the full vertex universe... *)
  Array.iter
    (fun part ->
      Alcotest.(check int)
        "full vertex universe" (Mrpa_graph.Digraph.n_vertices g)
        (Mrpa_graph.Digraph.n_vertices part))
    parts;
  (* ... the edge sets are disjoint, placed by owner(tail), and their
     union is the input. *)
  let total = ref 0 in
  Array.iteri
    (fun i part ->
      Mrpa_graph.Digraph.iter_edges
        (fun e ->
          incr total;
          let tail =
            Mrpa_graph.Digraph.vertex_name part (Mrpa_graph.Edge.tail e)
          in
          Alcotest.(check int) "edge on its owner" i (Shardmap.owner m tail))
        part)
    parts;
  Alcotest.(check int) "no edge lost or duplicated"
    (Mrpa_graph.Digraph.n_edges g)
    !total

(* --- A live shard fleet -------------------------------------------------- *)

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    match Client.connect (Wire.Unix_socket path) with
    | Ok conn -> Client.close conn
    | Error m ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "shard never came up on %s: %s" path m
      else begin
        Thread.yield ();
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let start_shard ~socket graph =
  let config =
    {
      Server.endpoint = Wire.Unix_socket socket;
      workers = 2;
      queue_capacity = 8;
      limits = Wire.default_limits;
      idle_timeout_ms = None;
      max_request_bytes = Server.default_max_request_bytes;
      max_predicted_cost = None;
      allow_remote_shutdown = false;
      role = Server.Standalone;
    }
  in
  let server = Server.create ~snapshot:(Snapshot.of_graph graph) config in
  let thread = Thread.create (fun () -> Server.serve server) () in
  wait_for_socket socket;
  (server, thread)

let stop_shard (server, thread) =
  Server.stop server;
  Thread.join thread

(* Partition [graph] across [n] single-server shards on Unix sockets in a
   temp dir, build an (unserved — driven through [handle_line]) router over
   them, and hand everything to [f]. The fleet is torn down afterwards even
   if [f] kills some of it first. *)
let with_fleet ?(n = 3) ?(graph = H.paper_graph ()) ?(tune = fun c -> c) f =
  let dir = Filename.temp_file "mrpa_route" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let names = List.init n (fun i -> Printf.sprintf "s%d" i) in
  let sock name = Filename.concat dir (name ^ ".sock") in
  let map =
    match
      Shardmap.of_string
        (Shardmap.magic ^ "\n"
        ^ String.concat ""
            (List.map
               (fun nm -> Printf.sprintf "shard %s unix:%s\n" nm (sock nm))
               names))
    with
    | Ok m -> m
    | Error e -> Alcotest.failf "fleet map: %s" e
  in
  let parts = Shardmap.partition map graph in
  let shards =
    Hashtbl.create n (* name -> running shard, so tests can kill/restart *)
  in
  List.iteri
    (fun i nm -> Hashtbl.replace shards nm (start_shard ~socket:(sock nm) parts.(i)))
    names;
  let kill nm =
    match Hashtbl.find_opt shards nm with
    | Some s ->
      stop_shard s;
      Hashtbl.remove shards nm
    | None -> ()
  in
  let restart nm =
    kill nm;
    let i = Option.get (Shardmap.index_of map nm) in
    Hashtbl.replace shards nm (start_shard ~socket:(sock nm) parts.(i))
  in
  let router =
    Router.create
      (tune
         (Router.default_config ~map
            (Wire.Unix_socket (Filename.concat dir "router.sock"))))
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun _ s -> stop_shard s) shards;
      Array.iteri (fun _ _ -> ()) parts;
      List.iter
        (fun nm -> if Sys.file_exists (sock nm) then Sys.remove (sock nm))
        names;
      Unix.rmdir dir)
    (fun () -> f router ~graph ~kill ~restart)

(* Fast breaker/timeout settings so the fault tests stay quick. *)
let fast c =
  {
    c with
    Router.shard_timeout_ms = 400.0;
    probe_timeout_ms = 200.0;
    breaker_failures = 3;
    breaker_cooldown_ms = 120.0;
  }

(* --- Response plumbing --------------------------------------------------- *)

let query_req ?(verb = Wire.Query) ?(options = Wire.default_options) text =
  Wire.encode_request
    { Wire.id = Json.Number 1.0; verb; query = Some text; options }

let parse_resp line =
  match Json.parse line with
  | Ok j -> j
  | Error m -> Alcotest.failf "unparseable response %S: %s" line m

let expect_ok line =
  let j = parse_resp line in
  (match Json.member "ok" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.failf "expected ok response, got %s" line);
  j

let expect_error code line =
  let j = parse_resp line in
  (match Json.member "ok" j with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.failf "expected error response, got %s" line);
  let got =
    Option.bind
      (Option.bind (Json.member "error" j) (Json.member "code"))
      Json.to_string_opt
  in
  Alcotest.(check (option string))
    "error code"
    (Some (Wire.error_code_name code))
    got

let result_member j name =
  Option.bind (Json.member "result" j) (Json.member name)

let result_verdict j = Option.bind (result_member j "verdict") Json.to_string_opt

let missing_shards j =
  (* On query responses [missing_shards] lives in the result; on count
     responses it is a top-level member. *)
  let m =
    match result_member j "missing_shards" with
    | Some _ as m -> m
    | None -> Json.member "missing_shards" j
  in
  match m with
  | Some (Json.List l) -> List.filter_map Json.to_string_opt l
  | _ -> []

(* A path as its (tail, label, head) triples — comparable across the
   engine's in-memory paths and the router's rendered JSON. *)
let engine_signatures g pset =
  Path_set.fold
    (fun p acc ->
      List.map
        (fun e ->
          ( Mrpa_graph.Digraph.vertex_name g (Mrpa_graph.Edge.tail e),
            Mrpa_graph.Digraph.label_name g (Mrpa_graph.Edge.label e),
            Mrpa_graph.Digraph.vertex_name g (Mrpa_graph.Edge.head e) ))
        (Mrpa_graph.Path.edges p)
      :: acc)
    pset []
  |> List.sort compare

let response_signatures j =
  match result_member j "paths" with
  | Some (Json.List paths) ->
    List.map
      (fun p ->
        match Json.member "edges" p with
        | Some (Json.List edges) ->
          List.map
            (fun e ->
              let s name =
                match Option.bind (Json.member name e) Json.to_string_opt with
                | Some v -> v
                | None -> Alcotest.failf "edge missing %s" name
              in
              (s "tail", s "label", s "head"))
            edges
        | _ -> Alcotest.fail "path without edges")
      paths
    |> List.sort compare
  | _ -> Alcotest.fail "response without result.paths"

(* --- Parity: the router equals the engine on a healthy fleet ------------- *)

let parity_queries =
  [
    "[i,alpha,_]";
    "[i,alpha,_] . [_,beta,_]";
    "[_,alpha,_] | [_,beta,_]";
    "[_,alpha,_] . [_,beta,_]*";
    "[_,beta,_]+";
    "[_,alpha,_]?";
    "[_,beta,_]{2}";
    "[_,beta,_]{1,2}";
    "[_,alpha,_] >< [_,beta,_]";
    "E . [_,beta,!j]";
    "[!{i},alpha,_]";
    "[{i,k},alpha,_] . [_,beta,{i,j}]";
    "{(i,alpha,j);(j,beta,k)} . [_,beta,_]";
    "eps | [_,alpha,_]";
    "let a = [_,alpha,_] in a . [_,beta,_] . a";
    "[i,_,_]{1,3}";
    "empty | [k,alpha,_]";
  ]

let test_router_parity () =
  with_fleet (fun router ~graph ~kill:_ ~restart:_ ->
      let options =
        { Wire.default_options with Wire.max_length = Some 4 }
      in
      List.iter
        (fun text ->
          let expected =
            Mrpa_engine.Engine.query_exn ~max_length:4 graph text
          in
          let j = expect_ok (Router.handle_line router (query_req ~options text)) in
          Alcotest.(check (option string))
            (text ^ " verdict") (Some "complete") (result_verdict j);
          Alcotest.(check int)
            (text ^ " count")
            (Path_set.cardinal expected.Mrpa_engine.Engine.paths)
            (match Option.bind (result_member j "count") Json.to_int_opt with
            | Some n -> n
            | None -> Alcotest.fail "no count");
          Alcotest.(check (list (list (triple string string string))))
            (text ^ " paths")
            (engine_signatures graph expected.Mrpa_engine.Engine.paths)
            (response_signatures j))
        parity_queries)

let test_router_options () =
  with_fleet (fun router ~graph ~kill:_ ~restart:_ ->
      (* simple restriction matches the engine's. *)
      let options =
        {
          Wire.default_options with
          Wire.max_length = Some 4;
          simple = true;
        }
      in
      let text = "[_,beta,_]* . [_,alpha,_]" in
      let expected =
        Mrpa_engine.Engine.query_exn ~max_length:4 ~simple:true graph text
      in
      let j = expect_ok (Router.handle_line router (query_req ~options text)) in
      Alcotest.(check (list (list (triple string string string))))
        "simple paths"
        (engine_signatures graph expected.Mrpa_engine.Engine.paths)
        (response_signatures j);
      (* limit truncates to a sound subset with a partial:limit verdict. *)
      let options =
        { Wire.default_options with Wire.max_length = Some 4; limit = Some 1 }
      in
      let j =
        expect_ok (Router.handle_line router (query_req ~options "[_,beta,_]"))
      in
      Alcotest.(check (option string))
        "limit verdict" (Some "partial:limit") (result_verdict j);
      Alcotest.(check (option int))
        "limit count" (Some 1)
        (Option.bind (result_member j "count") Json.to_int_opt);
      (* count verb agrees with query verb. *)
      let j =
        expect_ok
          (Router.handle_line router (query_req ~verb:Wire.Count "[_,_,_]"))
      in
      Alcotest.(check (option int))
        "count verb" (Some 7)
        (Option.bind (Json.member "count" j) Json.to_int_opt))

let test_router_query_errors () =
  with_fleet (fun router ~graph:_ ~kill:_ ~restart:_ ->
      (* A name unknown on every shard is the typo the single server's
         parser would catch. *)
      expect_error Wire.Query_error
        (Router.handle_line router (query_req "[nonexistent,alpha,_]"));
      expect_error Wire.Query_error
        (Router.handle_line router (query_req "[i,no_such_label,_]"));
      (* Router-side parse errors. *)
      expect_error Wire.Query_error
        (Router.handle_line router (query_req "[i,alpha,_] ."));
      expect_error Wire.Query_error
        (Router.handle_line router (query_req "unknown_macro"));
      expect_error Wire.Query_error
        (Router.handle_line router (query_req "[i,alpha,_] trailing"));
      (* A complemented label on a shard that has never seen the name is
         refused (conservatively sound) rather than silently under-
         reported: shard s0 owns no alpha edges, and its vacuously-true
         complement would otherwise come back as a fake-empty answer. *)
      expect_error Wire.Query_error
        (Router.handle_line router (query_req "[_,!alpha,_]"));
      (* Unsupported verbs are refused, not silently dropped. *)
      expect_error Wire.Bad_request
        (Router.handle_line router
           (Wire.encode_request
              {
                Wire.id = Json.Null;
                verb = Wire.Sub;
                query = None;
                options = Wire.default_options;
              })))

(* --- Robustness: fault matrix, breaker life cycle, failover -------------- *)

let test_degraded_kill () =
  with_fleet ~tune:fast (fun router ~graph ~kill ~restart:_ ->
      ignore graph;
      (* Healthy first: complete. *)
      let j = expect_ok (Router.handle_line router (query_req "[_,_,_]")) in
      Alcotest.(check (option string))
        "healthy verdict" (Some "complete") (result_verdict j);
      kill "s1";
      let j = expect_ok (Router.handle_line router (query_req "[_,_,_]")) in
      Alcotest.(check (option string))
        "degraded verdict"
        (Some "partial:shard_unavailable")
        (result_verdict j);
      Alcotest.(check (list string)) "missing shard named" [ "s1" ]
        (missing_shards j);
      (* The degraded answer is a sound subset: every returned path exists
         in the full denotation. *)
      let expected =
        Mrpa_engine.Engine.query_exn (H.paper_graph ()) "[_,_,_]"
      in
      let full = engine_signatures (H.paper_graph ()) expected.Mrpa_engine.Engine.paths in
      List.iter
        (fun p ->
          Alcotest.(check bool) "subset of truth" true (List.mem p full))
        (response_signatures j))

let test_breaker_lifecycle () =
  with_fleet ~tune:fast (fun router ~graph:_ ~kill ~restart ->
      let q () = Router.handle_line router (query_req "[_,_,_]") in
      Alcotest.(check (option string))
        "starts closed" (Some "closed")
        (Router.breaker_state router "s0");
      kill "s0";
      (* breaker_failures = 3 consecutive fully-failed dispatches open it. *)
      for _ = 1 to 3 do
        ignore (expect_ok (q ()))
      done;
      Alcotest.(check (option string))
        "opens after the threshold" (Some "open")
        (Router.breaker_state router "s0");
      (* While open, dispatches fail fast: no I/O, the dispatch counter
         still advances, the answer stays sound-degraded. *)
      let before = Router.Fault.dispatches router ~shard:"s0" in
      let j = expect_ok (q ()) in
      Alcotest.(check (option string))
        "fast-fail is still degraded"
        (Some "partial:shard_unavailable")
        (result_verdict j);
      Alcotest.(check int)
        "fast-fail counted" (before + 1)
        (Router.Fault.dispatches router ~shard:"s0");
      (* After the cooldown the breaker half-opens... *)
      Unix.sleepf 0.2;
      Alcotest.(check (option string))
        "half-open after cooldown" (Some "half_open")
        (Router.breaker_state router "s0");
      (* ... and with the shard still down, the probe re-opens it. *)
      ignore (expect_ok (q ()));
      Alcotest.(check (option string))
        "probe failure re-opens" (Some "open")
        (Router.breaker_state router "s0");
      (* Restart the shard; within one probe interval the router is back
         to complete answers. *)
      restart "s0";
      Unix.sleepf 0.2;
      let j = expect_ok (q ()) in
      Alcotest.(check (option string))
        "recovered" (Some "complete") (result_verdict j);
      Alcotest.(check (option string))
        "closed again" (Some "closed")
        (Router.breaker_state router "s0"))

let test_fault_harness () =
  with_fleet ~tune:fast (fun router ~graph:_ ~kill:_ ~restart:_ ->
      let q () = Router.handle_line router (query_req "[_,_,_]") in
      (* Kill from the 2nd dispatch on: first query fine, then degraded. *)
      Router.Fault.arm router ~shard:"s2" Router.Fault.Kill
        ~at:(Router.Fault.dispatches router ~shard:"s2" + 2);
      let j = expect_ok (q ()) in
      Alcotest.(check (option string))
        "before the fault" (Some "complete") (result_verdict j);
      let j = expect_ok (q ()) in
      Alcotest.(check (option string))
        "fault fires deterministically"
        (Some "partial:shard_unavailable")
        (result_verdict j);
      Alcotest.(check (list string)) "names the faulted shard" [ "s2" ]
        (missing_shards j);
      Router.Fault.disarm router ~shard:"s2";
      let j = expect_ok (q ()) in
      Alcotest.(check (option string))
        "disarm restores" (Some "complete") (result_verdict j);
      (* Slow: struggling but alive — still complete. *)
      Router.Fault.arm router ~shard:"s2" (Router.Fault.Slow 30.0) ~at:1;
      let j = expect_ok (q ()) in
      Alcotest.(check (option string))
        "slow shard still complete" (Some "complete") (result_verdict j);
      Router.Fault.disarm router ~shard:"s2")

let test_fault_hang_bounded () =
  with_fleet ~tune:fast (fun router ~graph:_ ~kill:_ ~restart:_ ->
      (* A hung shard burns only its own per-shard deadline
         (shard_timeout_ms = 400), not the whole request, and yields a
         sound degraded answer. *)
      Router.Fault.arm router ~shard:"s0" Router.Fault.Hang ~at:1;
      let t0 = Unix.gettimeofday () in
      let j = expect_ok (Router.handle_line router (query_req "[_,_,_]")) in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check (option string))
        "hang degrades"
        (Some "partial:shard_unavailable")
        (result_verdict j);
      Alcotest.(check bool)
        (Printf.sprintf "bounded by the per-shard deadline (%.1fs)" elapsed)
        true (elapsed < 2.0);
      Router.Fault.disarm router ~shard:"s0")

let test_shard_failover () =
  (* A shard whose endpoint list starts with a dead address still answers
     through its live replica — no degraded verdict at all. *)
  let dir = Filename.temp_file "mrpa_failover" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let live = Filename.concat dir "live.sock" in
  let dead = Filename.concat dir "dead.sock" in
  let map =
    match
      Shardmap.of_string
        (Printf.sprintf "%s\nshard solo unix:%s unix:%s\n" Shardmap.magic dead
           live)
    with
    | Ok m -> m
    | Error e -> Alcotest.failf "map: %s" e
  in
  let shard = start_shard ~socket:live (H.paper_graph ()) in
  let router =
    Router.create
      (fast
         (Router.default_config ~map
            (Wire.Unix_socket (Filename.concat dir "router.sock"))))
  in
  Fun.protect
    ~finally:(fun () ->
      stop_shard shard;
      if Sys.file_exists live then Sys.remove live;
      Unix.rmdir dir)
    (fun () ->
      let j = expect_ok (Router.handle_line router (query_req "[_,_,_]")) in
      Alcotest.(check (option string))
        "replica answers" (Some "complete") (result_verdict j);
      Alcotest.(check (option int))
        "full count" (Some 7)
        (Option.bind (result_member j "count") Json.to_int_opt))

(* --- Router verbs beyond query ------------------------------------------- *)

let test_router_verbs () =
  with_fleet ~tune:fast (fun router ~graph:_ ~kill ~restart:_ ->
      let req verb =
        Wire.encode_request
          { Wire.id = Json.Null; verb; query = None; options = Wire.default_options }
      in
      (* ping is answered locally. *)
      let j = expect_ok (Router.handle_line router (req Wire.Ping)) in
      Alcotest.(check (option bool))
        "pong" (Some true)
        (Option.bind (Json.member "pong" j) Json.to_bool_opt);
      (* health nests per-shard breaker state and the shards' own health
         (including the PR 10 queue_depth/inflight fields). *)
      kill "s2";
      let j = expect_ok (Router.handle_line router (req Wire.Health)) in
      let shards =
        match
          Option.bind (Json.member "health" j) (Json.member "shards")
        with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "health without shards"
      in
      Alcotest.(check int) "one entry per shard" 3 (List.length shards);
      List.iter
        (fun s ->
          let name =
            Option.bind (Json.member "name" s) Json.to_string_opt
          in
          let reachable =
            Option.bind (Json.member "reachable" s) Json.to_bool_opt
          in
          match name with
          | Some "s2" ->
            Alcotest.(check (option bool)) "dead unreachable" (Some false)
              reachable
          | Some _ ->
            Alcotest.(check (option bool)) "live reachable" (Some true)
              reachable;
            (match Option.bind (Json.member "health" s) (Json.member "queue_depth") with
            | Some (Json.Number _) -> ()
            | _ -> Alcotest.fail "shard health lacks queue_depth")
          | None -> Alcotest.fail "shard entry without a name")
        shards;
      (* stats: router counters plus a per-shard section (null when dead). *)
      let j = expect_ok (Router.handle_line router (req Wire.Stats)) in
      (match Option.bind (Json.member "stats" j) (Json.member "router.shards") with
      | Some (Json.Number n) -> Alcotest.(check int) "router.shards" 3 (int_of_float n)
      | _ -> Alcotest.fail "stats without router.shards");
      (match Option.bind (Json.member "shards" j) (Json.member "s2") with
      | Some Json.Null -> ()
      | _ -> Alcotest.fail "dead shard should report null stats");
      (* shutdown over TCP is gated. *)
      expect_error Wire.Unauthorized
        (Router.handle_line ~remote:true router (req Wire.Shutdown)))

(* --- Satellite 1: the failover client rotates past a dead endpoint ------- *)

let test_client_failover_rotates () =
  let dir = Filename.temp_file "mrpa_rotate" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let live = Filename.concat dir "live.sock" in
  let dead = Filename.concat dir "dead.sock" in
  let shard = start_shard ~socket:live (H.paper_graph ()) in
  Fun.protect
    ~finally:(fun () ->
      stop_shard shard;
      if Sys.file_exists live then Sys.remove live;
      Unix.rmdir dir)
    (fun () ->
      let slept = ref 0 in
      let req =
        {
          Wire.id = Json.Null;
          verb = Wire.Ping;
          query = None;
          options = Wire.default_options;
        }
      in
      (* retries = 0, dead endpoint first: the attempt floor is one full
         cycle, so the live standby still answers — with no backoff sleep
         charged (backoff is per completed cycle). *)
      match
        Client.request_failover ~policy:Client.no_retry
          ~sleep:(fun _ -> incr slept)
          [ Wire.Unix_socket dead; Wire.Unix_socket live ]
          req
      with
      | Error m -> Alcotest.failf "failover gave up too early: %s" m
      | Ok line ->
        ignore (expect_ok line);
        Alcotest.(check int) "no backoff inside the first cycle" 0 !slept)

let () =
  Alcotest.run "router"
    [
      ( "shardmap",
        [
          Alcotest.test_case "parse and roundtrip" `Quick test_shardmap_parse;
          Alcotest.test_case "malformed maps" `Quick test_shardmap_errors;
          Alcotest.test_case "partition soundness" `Quick
            test_shardmap_partition;
        ] );
      ( "parity",
        [
          Alcotest.test_case "router equals engine" `Quick test_router_parity;
          Alcotest.test_case "options: simple, limit, count" `Quick
            test_router_options;
          Alcotest.test_case "query errors" `Quick test_router_query_errors;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "kill one shard: sound degraded answer" `Quick
            test_degraded_kill;
          Alcotest.test_case "breaker open/half-open/closed" `Quick
            test_breaker_lifecycle;
          Alcotest.test_case "deterministic fault harness" `Quick
            test_fault_harness;
          Alcotest.test_case "hung shard burns only its own deadline" `Quick
            test_fault_hang_bounded;
          Alcotest.test_case "per-shard endpoint failover" `Quick
            test_shard_failover;
        ] );
      ( "verbs",
        [ Alcotest.test_case "ping/health/stats/shutdown" `Quick test_router_verbs ] );
      ( "client",
        [
          Alcotest.test_case "failover rotates past a dead endpoint" `Quick
            test_client_failover_rotates;
        ] );
    ]
