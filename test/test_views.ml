(* Materialized-view tests: registry unit behaviour (register / drop /
   self-binding word views / the expression staleness protocol / epoch
   rebind), the Digraph observer-ordering guarantee the registry layers
   on, and QCheck consistency of every registered view against
   recompute-from-scratch under random interleavings of graph mutations,
   journal-record replays and compaction-epoch resets — standalone and on
   a replica applier. *)

open Mrpa_graph
open Mrpa_server
module A = Mrpa_analysis
module V = Views
module R = Replication

(* --- Infrastructure ------------------------------------------------------ *)

(* Name-level signature of a derived graph, read against the
   multi-relational graph its vertex ids index into — comparable across
   distinct graph values (interning order differs between replays). *)
let sg_sig g sg =
  List.sort compare
    (List.map
       (fun (i, j) ->
         ( Digraph.vertex_name g (Vertex.of_int i),
           Digraph.vertex_name g (Vertex.of_int j) ))
       (A.Simple_graph.edges sg))

let pairs = Alcotest.(list (pair string string))

(* Word views never go stale, so a word-view read must never re-project. *)
let no_reproject ~query:_ ~max_length:_ = Error "unexpected reprojection"

let local_reproject g seq ~query ~max_length =
  match Mrpa_engine.Parser.parse g query with
  | Error _ -> Error "parse failed"
  | Ok expr -> Ok (A.Projection.path_derived_expr g expr ~max_length, false, seq)

let read_word reg g name =
  match V.simple_graph reg ~name ~snap_seq:0 ~reproject:no_reproject with
  | Ok (sg, _) -> sg_sig g sg
  | Error _ -> Alcotest.failf "word view %S read failed" name

let recompute_word g labels =
  let rec resolve acc = function
    | [] -> Some (List.rev acc)
    | n :: rest -> (
      match Digraph.find_label g n with
      | Some l -> resolve (l :: acc) rest
      | None -> None)
  in
  match resolve [] labels with
  | None -> []
  | Some word -> sg_sig g (A.Projection.path_derived g word)

(* --- Registry basics ------------------------------------------------------ *)

let test_registry_basics () =
  let g = Digraph.create () in
  ignore (Digraph.add g "a" "r" "b");
  let reg = V.create () in
  V.attach reg g;
  Alcotest.(check bool)
    "register word" true
    (V.register reg ~name:"w" ~graph:g (V.Word [ "r" ]) = Ok ());
  Alcotest.(check bool)
    "duplicate rejected" true
    (Result.is_error (V.register reg ~name:"w" ~graph:g (V.Word [ "r" ])));
  Alcotest.(check bool)
    "empty word rejected" true
    (Result.is_error (V.register reg ~name:"x" ~graph:g (V.Word [])));
  Alcotest.(check bool)
    "empty name rejected" true
    (Result.is_error (V.register reg ~name:"" ~graph:g (V.Word [ "r" ])));
  Alcotest.(check bool)
    "register expr" true
    (V.register reg ~name:"e" ~graph:g
       (V.Expr { query = "[_,r,_]"; max_length = 4 })
    = Ok ());
  Alcotest.(check int) "count" 2 (V.count reg);
  Alcotest.(check bool) "drop" true (V.drop reg "w");
  Alcotest.(check bool) "drop unknown" false (V.drop reg "w");
  Alcotest.(check bool)
    "unknown read" true
    (V.simple_graph reg ~name:"w" ~snap_seq:0 ~reproject:no_reproject
    = Error V.Unknown_view);
  let infos = V.list reg ~snap_seq:0 in
  Alcotest.(check (list string)) "list names" [ "e" ]
    (List.map (fun i -> i.V.i_name) infos)

(* --- Word views: incremental maintenance ---------------------------------- *)

let test_word_incremental () =
  let g = Digraph.create () in
  ignore (Digraph.add g "a" "r" "b");
  ignore (Digraph.add g "b" "s" "c");
  let reg = V.create () in
  V.attach reg g;
  Alcotest.(check bool)
    "registered" true
    (V.register reg ~name:"rs" ~graph:g (V.Word [ "r"; "s" ]) = Ok ());
  let check_consistent msg =
    Alcotest.check pairs msg
      (recompute_word g [ "r"; "s" ])
      (read_word reg g "rs")
  in
  check_consistent "initial";
  (* Rank-1 update: an edge between known vertices. *)
  ignore (Digraph.add g "c" "r" "a");
  check_consistent "after in-dimension insert";
  (* Dimension growth: a brand-new vertex forces a full rebuild. *)
  ignore (Digraph.add g "c" "s" "d");
  check_consistent "after growth insert";
  (* Removal. *)
  ignore (Digraph.remove_edge g (Helpers.e g "a" "r" "b"));
  check_consistent "after removal";
  let info =
    List.find (fun i -> i.V.i_name = "rs") (V.list reg ~snap_seq:0)
  in
  Alcotest.(check bool) "updates counted" true (info.V.i_updates > 0);
  Alcotest.(check bool) "rebuild counted" true (info.V.i_rebuilds > 0)

let test_word_self_bind () =
  let g = Digraph.create () in
  let reg = V.create () in
  V.attach reg g;
  Alcotest.(check bool)
    "registered unbound" true
    (V.register reg ~name:"w" ~graph:g (V.Word [ "z" ]) = Ok ());
  let info = List.hd (V.list reg ~snap_seq:0) in
  Alcotest.(check bool) "starts unbound" false info.V.i_bound;
  Alcotest.check pairs "unbound reads empty" [] (read_word reg g "w");
  (* The insertion that makes the word resolvable binds the view, and the
     build includes that edge exactly once. *)
  ignore (Digraph.add g "a" "z" "b");
  let info = List.hd (V.list reg ~snap_seq:0) in
  Alcotest.(check bool) "bound now" true info.V.i_bound;
  Alcotest.check pairs "includes the binding edge" [ ("a", "b") ]
    (read_word reg g "w")

(* --- Expression views: the staleness protocol ------------------------------ *)

let test_expr_staleness () =
  let g = Digraph.create () in
  ignore (Digraph.add g "a" "r" "b");
  let reg = V.create () in
  V.attach reg g;
  Alcotest.(check bool)
    "registered" true
    (V.register reg ~name:"e" ~graph:g
       (V.Expr { query = "[_,r,_]"; max_length = 4 })
    = Ok ());
  let runs = ref 0 in
  let reproject seq ~query ~max_length =
    incr runs;
    local_reproject g seq ~query ~max_length
  in
  let read seq =
    match V.simple_graph reg ~name:"e" ~snap_seq:seq ~reproject:(reproject seq) with
    | Ok (sg, _) -> sg_sig g sg
    | Error _ -> Alcotest.fail "expr read failed"
  in
  Alcotest.check pairs "first read projects" [ ("a", "b") ] (read 0);
  Alcotest.(check int) "one projection" 1 !runs;
  ignore (read 0);
  Alcotest.(check int) "cached while fresh" 1 !runs;
  ignore (Digraph.add g "b" "r" "c");
  Alcotest.check pairs "stale read re-projects"
    [ ("a", "b"); ("b", "c") ]
    (read 1);
  Alcotest.(check int) "second projection" 2 !runs;
  let info = List.hd (V.list reg ~snap_seq:1) in
  Alcotest.(check int) "reprojections surfaced" 2 info.V.i_reprojections;
  Alcotest.(check bool) "fresh after read" false info.V.i_dirty

(* --- Rebind: epoch resets --------------------------------------------------- *)

let test_rebind () =
  let g1 = Digraph.create () in
  ignore (Digraph.add g1 "a" "r" "b");
  ignore (Digraph.add g1 "b" "r" "c");
  let reg = V.create () in
  V.attach reg g1;
  ignore (V.register reg ~name:"w" ~graph:g1 (V.Word [ "r" ]));
  ignore
    (V.register reg ~name:"e" ~graph:g1
       (V.Expr { query = "[_,r,_]"; max_length = 4 }));
  ignore
    (V.simple_graph reg ~name:"e" ~snap_seq:5
       ~reproject:(local_reproject g1 5));
  (* Replacement graph with a different interning order and one fewer
     edge — label ids shift, so rebuilding by id would be wrong. *)
  let g2 = Digraph.create () in
  ignore (Digraph.add g2 "x" "s" "y");
  ignore (Digraph.add g2 "b" "r" "c");
  V.rebind reg g2;
  Alcotest.check pairs "word rebuilt by name" [ ("b", "c") ]
    (read_word reg g2 "w");
  let info = List.find (fun i -> i.V.i_name = "e") (V.list reg ~snap_seq:0) in
  Alcotest.(check int) "expr invalidated" (-1) info.V.i_as_of_seq;
  Alcotest.(check bool) "expr dirty" true info.V.i_dirty;
  (* Old observers are detached: mutating the dead epoch's graph must not
     leak into the rebound views. *)
  ignore (Digraph.add g1 "c" "r" "d");
  Alcotest.check pairs "dead epoch ignored" [ ("b", "c") ]
    (read_word reg g2 "w");
  (* The new epoch's stream is live. *)
  ignore (Digraph.add g2 "c" "r" "d");
  Alcotest.check pairs "new epoch streams" [ ("b", "c"); ("c", "d") ]
    (read_word reg g2 "w")

(* --- The observer-ordering guarantee --------------------------------------- *)

(* Pins the contract documented on [Digraph.on_edge_added]: fan-out is
   registration order, deregistration preserves the survivors' relative
   order, re-registration moves a callback to the back. *)
let test_observer_order () =
  let g = Digraph.create () in
  let log = ref [] in
  let f1 _ = log := 1 :: !log in
  let f2 _ = log := 2 :: !log in
  let f3 _ = log := 3 :: !log in
  Digraph.on_edge_added g f1;
  Digraph.on_edge_added g f2;
  Digraph.on_edge_added g f3;
  ignore (Digraph.add g "a" "r" "b");
  Alcotest.(check (list int)) "registration order" [ 1; 2; 3 ] (List.rev !log);
  log := [];
  Digraph.off_edge_added g f2;
  ignore (Digraph.add g "a" "r" "c");
  Alcotest.(check (list int)) "off preserves order" [ 1; 3 ] (List.rev !log);
  log := [];
  Digraph.off_edge_added g f1;
  Digraph.on_edge_added g f1;
  ignore (Digraph.add g "a" "r" "d");
  Alcotest.(check (list int)) "re-register moves to back" [ 3; 1 ]
    (List.rev !log)

(* --- QCheck: views equal recompute under random interleavings --------------- *)

type op = Add of string * string * string | Del of int | Reset

let pp_op = function
  | Add (t, l, h) -> Printf.sprintf "Add(%s,%s,%s)" t l h
  | Del k -> Printf.sprintf "Del(%d)" k
  | Reset -> "Reset"

let ops_arb =
  let open QCheck.Gen in
  let v = oneofl [ "a"; "b"; "c"; "d" ] in
  let l = frequency [ (4, return "r"); (3, return "s"); (1, return "u") ] in
  let op =
    frequency
      [
        (6, map (fun ((t, lab), h) -> Add (t, lab, h)) (pair (pair v l) v));
        (3, map (fun k -> Del k) (int_bound 30));
        (1, return Reset);
      ]
  in
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    (list_size (int_range 1 40) op)

(* Seeds guarantee the expression view's labels are interned from the
   start; the [u] word view starts unbound and binds mid-run. *)
let seeded ops = Add ("a", "r", "b") :: Add ("b", "s", "c") :: ops

let word_specs = [ ("vr", [ "r" ]); ("vrs", [ "r"; "s" ]); ("vu", [ "u" ]) ]
let expr_name, expr_query, expr_ml = ("ve", "[_,r,_] . [_,s,_]*", 4)

let register_all reg g =
  List.iter
    (fun (name, labels) ->
      match V.register reg ~name ~graph:g (V.Word labels) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    word_specs;
  match
    V.register reg ~name:expr_name ~graph:g
      (V.Expr { query = expr_query; max_length = expr_ml })
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Every view equals recompute-from-scratch against the current graph. *)
let check_all reg g seq =
  List.iter
    (fun (name, labels) ->
      Alcotest.check pairs name (recompute_word g labels) (read_word reg g name))
    word_specs;
  match
    V.simple_graph reg ~name:expr_name ~snap_seq:seq
      ~reproject:(local_reproject g seq)
  with
  | Ok (sg, _) -> (
    match Mrpa_engine.Parser.parse g expr_query with
    | Error _ -> Alcotest.fail "view projected an unparseable query"
    | Ok expr ->
      Alcotest.check pairs expr_name
        (sg_sig g (A.Projection.path_derived_expr g expr ~max_length:expr_ml))
        (sg_sig g sg))
  | Error (V.Projection_failed _) ->
    (* Legal only when the query really does not resolve against this
       epoch's graph (a label vanished across the reset). *)
    Alcotest.(check bool)
      "projection failed but query parses" true
      (Result.is_error (Mrpa_engine.Parser.parse g expr_query))
  | Error V.Unknown_view -> Alcotest.fail "expr view vanished"

let prop_standalone ops =
  let g = ref (Digraph.create ()) in
  let seq = ref 0 in
  let reg = V.create () in
  V.attach reg !g;
  register_all reg !g;
  List.iter
    (fun op ->
      (match op with
      | Add (t, l, h) ->
        ignore (Digraph.add !g t l h);
        incr seq
      | Del k -> (
        match Digraph.edges !g with
        | [] -> ()
        | es ->
          ignore (Digraph.remove_edge !g (List.nth es (k mod List.length es)));
          incr seq)
      | Reset ->
        (* Compaction-style epoch replacement: a fresh graph replaying the
           surviving state in reverse edge order (interning order shifts),
           then a rebind; sequence numbers restart. *)
        let g2 = Digraph.create () in
        List.iter
          (fun v -> ignore (Digraph.vertex g2 (Digraph.vertex_name !g v)))
          (Digraph.vertices !g);
        List.iter
          (fun e ->
            ignore
              (Digraph.add g2
                 (Digraph.vertex_name !g (Edge.tail e))
                 (Digraph.label_name !g (Edge.label e))
                 (Digraph.vertex_name !g (Edge.head e))))
          (List.rev (Digraph.edges !g));
        g := g2;
        seq := 0;
        V.rebind reg g2);
      check_all reg !g !seq)
    (seeded ops);
  true

let prop_replica ops =
  let a = R.Apply.create () in
  let reg = V.create () in
  V.attach reg (R.Apply.graph a);
  register_all reg (R.Apply.graph a);
  let seq = ref 0 in
  let apply payload =
    incr seq;
    match R.Apply.apply_line a (Journal.frame ~seq:!seq payload) with
    | R.Apply.Applied _ -> ()
    | _ -> Alcotest.failf "record %S rejected" payload
  in
  List.iter
    (fun op ->
      (match op with
      | Add (t, l, h) -> apply (Printf.sprintf "add\t%s\t%s\t%s" t l h)
      | Del k -> (
        let g = R.Apply.graph a in
        match Digraph.edges g with
        | [] -> ()
        | es ->
          let e = List.nth es (k mod List.length es) in
          apply
            (Printf.sprintf "del\t%s\t%s\t%s"
               (Digraph.vertex_name g (Edge.tail e))
               (Digraph.label_name g (Edge.label e))
               (Digraph.vertex_name g (Edge.head e))))
      | Reset ->
        (* The reset handoff: the applier discards everything (fresh empty
           graph, sequence space restarts) and the registry rebinds. *)
        R.Apply.reset a;
        seq := 0;
        V.rebind reg (R.Apply.graph a));
      check_all reg (R.Apply.graph a) !seq)
    (seeded ops);
  true

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ~verbose:false)
    [
      QCheck.Test.make ~count:60 ~name:"standalone views equal recompute"
        ops_arb prop_standalone;
      QCheck.Test.make ~count:60 ~name:"replica views equal recompute" ops_arb
        prop_replica;
    ]

let () =
  Alcotest.run "views"
    [
      ( "registry",
        [
          Alcotest.test_case "basics" `Quick test_registry_basics;
          Alcotest.test_case "word incremental" `Quick test_word_incremental;
          Alcotest.test_case "word self-bind" `Quick test_word_self_bind;
          Alcotest.test_case "expr staleness" `Quick test_expr_staleness;
          Alcotest.test_case "rebind" `Quick test_rebind;
        ] );
      ( "digraph",
        [ Alcotest.test_case "observer order" `Quick test_observer_order ] );
      ("property", qcheck_cases);
    ]
