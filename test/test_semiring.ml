open Mrpa_graph
open Mrpa_core
open Mrpa_semiring
module H = Helpers

(* --- Semiring laws ---------------------------------------------------- *)

let check_laws (type v) name (module S : Semiring.S with type t = v)
    (sample : Prng.t -> v) =
  H.qtest ~count:200 (name ^ " laws") QCheck2.Gen.(int_bound 1_000_000)
    string_of_int (fun seed ->
      let rng = Prng.create seed in
      let a = sample rng and b = sample rng and c = sample rng in
      S.equal (S.add a b) (S.add b a)
      && S.equal (S.add (S.add a b) c) (S.add a (S.add b c))
      && S.equal (S.add S.zero a) a
      && S.equal (S.mul (S.mul a b) c) (S.mul a (S.mul b c))
      && S.equal (S.mul S.one a) a
      && S.equal (S.mul a S.one) a
      && S.equal (S.mul S.zero a) S.zero
      && S.equal (S.mul a S.zero) S.zero
      && S.equal (S.mul a (S.add b c)) (S.add (S.mul a b) (S.mul a c))
      && S.equal (S.mul (S.add a b) c) (S.add (S.mul a c) (S.mul b c)))

let bool_sample rng = Prng.bool rng
let nat_sample rng = Prng.int rng 20

(* Small non-negative floats; exact-float laws hold for min/max-based
   semirings on any floats, and for plus-times we use small integers cast to
   float so distribution is exact. *)
let intfloat_sample rng = float_of_int (Prng.int rng 12)

let tropical_sample rng =
  match Prng.int rng 8 with 0 -> infinity | k -> float_of_int k

let bottleneck_sample rng =
  match Prng.int rng 8 with
  | 0 -> neg_infinity
  | 7 -> infinity
  | k -> float_of_int k

let viterbi_sample rng =
  (* dyadic rationals in [0,1]: products and maxes stay exact *)
  float_of_int (Prng.int rng 5) /. 4.0

(* --- Eval: agreement with enumeration --------------------------------- *)

(* Brute-force oracle: aggregate over the materialised denotation. *)
let oracle (type v) (module S : Semiring.S with type t = v) ~weight g expr
    ~max_length =
  let paths = Expr.denote g ~max_length expr in
  let value p = Path.fold (fun acc e -> S.mul acc (weight e)) S.one p in
  let tbl : (int * int, v) Hashtbl.t = Hashtbl.create 16 in
  let eps = ref None in
  Path_set.iter
    (fun p ->
      match (Path.tail p, Path.head p) with
      | Some s, Some d ->
        let key = (Vertex.to_int s, Vertex.to_int d) in
        let current =
          match Hashtbl.find_opt tbl key with Some x -> x | None -> S.zero
        in
        Hashtbl.replace tbl key (S.add current (value p))
      | _ -> eps := Some S.one)
    paths;
  (tbl, !eps)

let agree_with_oracle (type v) (module S : Semiring.S with type t = v) ~weight
    g expr ~max_length =
  let result = Eval.run (module S) ~weight g expr ~max_length in
  let tbl, eps = oracle (module S) ~weight g expr ~max_length in
  let eps_ok =
    match (result.Eval.epsilon, eps) with
    | None, None -> true
    | Some a, Some b -> S.equal a b
    | _ -> false
  in
  eps_ok
  && List.for_all
       (fun ((s, d), value) ->
         match Hashtbl.find_opt tbl (Vertex.to_int s, Vertex.to_int d) with
         | Some expected -> S.equal value expected
         | None -> false)
       result.Eval.pairs
  && Hashtbl.fold
       (fun (s, d) expected acc ->
         acc
         && (S.equal expected S.zero
            || S.equal
                 (Eval.pair_value (module S) result (Vertex.of_int s)
                    (Vertex.of_int d))
                 expected))
       tbl true

let edge_weight_float e =
  (* deterministic pseudo-weight per edge: small positive integers *)
  float_of_int (1 + ((Edge.hash e land 0xffff) mod 5))

let qcheck_eval_natural =
  H.qtest ~count:80 "Natural eval = per-pair counts" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      agree_with_oracle (module Semiring.Natural)
        ~weight:(fun _ -> 1)
        g r ~max_length:3)

let qcheck_eval_boolean =
  H.qtest ~count:80 "Boolean eval = endpoint pairs" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      agree_with_oracle (module Semiring.Boolean)
        ~weight:(fun _ -> true)
        g r ~max_length:3)

let qcheck_eval_tropical =
  H.qtest ~count:80 "Tropical eval = min path weight" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      agree_with_oracle (module Semiring.Tropical) ~weight:edge_weight_float g r
        ~max_length:3)

let qcheck_eval_probability =
  (* integer-valued weights keep float sums exact *)
  H.qtest ~count:80 "Probability eval = sum of path products"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      agree_with_oracle (module Semiring.Probability) ~weight:edge_weight_float
        g r ~max_length:3)

let qcheck_natural_total_equals_counting =
  H.qtest ~count:80 "Natural total = Counting.count" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      Eval.total (module Semiring.Natural)
        (Eval.run (module Semiring.Natural) g r ~max_length:3)
      = Mrpa_automata.Counting.count g r ~max_length:3)

let qcheck_reachable_pairs_equal_endpoints =
  H.qtest ~count:80 "reachable_pairs = endpoint_pairs of denotation"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let via_eval = Eval.reachable_pairs g r ~max_length:3 in
      let via_sets =
        Path_set.endpoint_pairs
          (Path_set.filter
             (fun p -> not (Path.is_empty p))
             (Expr.denote g ~max_length:3 r))
      in
      via_eval = via_sets)

(* --- Eval: concrete cases ---------------------------------------------- *)

let test_cheapest_on_lattice () =
  (* 2x3 lattice, right costs 1, down costs 10: cheapest corner-to-corner
     goes right twice then down once: 12. *)
  let g = Generate.lattice ~rows:2 ~cols:3 in
  let right = Digraph.label g "right" in
  let weight e = if Label.equal (Edge.label e) right then 1.0 else 10.0 in
  let expr = Expr.plus (Expr.sel Selector.universe) in
  let pairs = Eval.cheapest_paths ~weight g expr ~max_length:5 in
  let x00 = Digraph.vertex g "x0_0" and x12 = Digraph.vertex g "x1_2" in
  let cost =
    List.assoc
      (x00, x12)
      (List.map (fun ((s, d), v) -> ((s, d), v)) pairs)
  in
  Alcotest.(check (float 1e-9)) "cheapest corner route" 12.0 cost

let test_bottleneck_on_path () =
  let g = Digraph.create () in
  ignore (Digraph.add g "a" "r" "b");
  ignore (Digraph.add g "b" "r" "c");
  ignore (Digraph.add g "a" "r" "c");
  let weight e =
    match
      ( Digraph.vertex_name g (Edge.tail e),
        Digraph.vertex_name g (Edge.head e) )
    with
    | "a", "b" -> 5.0
    | "b", "c" -> 3.0
    | _ -> 2.0 (* direct a→c *)
  in
  let expr = Expr.plus (Expr.sel Selector.universe) in
  let r = Eval.run (module Semiring.Bottleneck) ~weight g expr ~max_length:3 in
  let a = Digraph.vertex g "a" and c = Digraph.vertex g "c" in
  (* widest a→c: two-hop min(5,3)=3 beats direct 2 *)
  Alcotest.(check (float 1e-9)) "widest bottleneck" 3.0
    (Eval.pair_value (module Semiring.Bottleneck) r a c)

let test_epsilon_reporting () =
  let g = H.paper_graph () in
  let nullable = Expr.star (Expr.sel Selector.universe) in
  let strict = Expr.sel Selector.universe in
  let r1 = Eval.run (module Semiring.Natural) g nullable ~max_length:1 in
  let r2 = Eval.run (module Semiring.Natural) g strict ~max_length:1 in
  Alcotest.(check (option int)) "ε denoted" (Some 1) r1.Eval.epsilon;
  Alcotest.(check (option int)) "ε absent" None r2.Eval.epsilon

let test_zero_length_bound () =
  let g = H.paper_graph () in
  let r = Eval.run (module Semiring.Natural) g (Expr.sel Selector.universe) ~max_length:0 in
  Alcotest.(check int) "no pairs at bound 0" 0 (List.length r.Eval.pairs)

(* --- Witness extraction -------------------------------------------------------- *)

let test_witness_lattice () =
  let g = Generate.lattice ~rows:2 ~cols:3 in
  let right = Digraph.label g "right" in
  let weight e = if Label.equal (Edge.label e) right then 1.0 else 10.0 in
  let expr = Expr.plus (Expr.sel Selector.universe) in
  let w = Witness.prepare ~weight g expr ~max_length:5 in
  let x00 = Digraph.vertex g "x0_0" and x12 = Digraph.vertex g "x1_2" in
  match Witness.cheapest w ~source:x00 ~target:x12 with
  | None -> Alcotest.fail "expected a witness"
  | Some (p, cost) ->
    Alcotest.(check (float 1e-9)) "cost 12" 12.0 cost;
    Alcotest.(check (option int)) "starts at corner" (Some x00) (Path.tail p);
    Alcotest.(check (option int)) "ends at corner" (Some x12) (Path.head p);
    Alcotest.(check int) "3 hops" 3 (Path.length p);
    (* the witness's own weight equals the reported cost *)
    Alcotest.(check (float 1e-9)) "weight consistent" cost
      (Path.fold (fun acc e -> acc +. weight e) 0.0 p)

let test_witness_no_route () =
  let g = Generate.lattice ~rows:2 ~cols:2 in
  let expr = Expr.plus (Expr.sel Selector.universe) in
  let w = Witness.prepare ~weight:(fun _ -> 1.0) g expr ~max_length:4 in
  let x11 = Digraph.vertex g "x1_1" and x00 = Digraph.vertex g "x0_0" in
  Alcotest.(check bool) "sink has no outgoing route" true
    (Witness.cheapest w ~source:x11 ~target:x00 = None)

let qcheck_witness_matches_eval =
  H.qtest ~count:60 "witness cost = tropical eval value" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr ~allow_product:false rng g in
      let weight = edge_weight_float in
      let values = Eval.run (module Semiring.Tropical) ~weight g r ~max_length:3 in
      let w = Witness.prepare ~weight g r ~max_length:3 in
      List.for_all
        (fun ((s, d), value) ->
          match Witness.cheapest w ~source:s ~target:d with
          | None -> false
          | Some (p, cost) ->
            Float.equal cost value
            && Path.tail p = Some s && Path.head p = Some d
            && Float.equal
                 (Path.fold (fun acc e -> acc +. weight e) 0.0 p)
                 cost
            && Mrpa_automata.Recognizer.cubic r p)
        values.Eval.pairs)

let qcheck_witness_any_is_global_min =
  H.qtest ~count:60 "cheapest_any = global minimum" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr ~allow_product:false rng g in
      let weight = edge_weight_float in
      let values = Eval.run (module Semiring.Tropical) ~weight g r ~max_length:3 in
      let w = Witness.prepare ~weight g r ~max_length:3 in
      let global =
        List.fold_left
          (fun acc (_, v) -> Float.min acc v)
          infinity values.Eval.pairs
      in
      match Witness.cheapest_any w with
      | None -> values.Eval.pairs = []
      | Some (_, cost) -> Float.equal cost global)

let () =
  Alcotest.run "mrpa_semiring"
    [
      ( "laws",
        [
          check_laws "boolean" (module Semiring.Boolean) bool_sample;
          check_laws "natural" (module Semiring.Natural) nat_sample;
          check_laws "tropical" (module Semiring.Tropical) tropical_sample;
          check_laws "viterbi" (module Semiring.Viterbi) viterbi_sample;
          check_laws "probability" (module Semiring.Probability) intfloat_sample;
          check_laws "bottleneck" (module Semiring.Bottleneck) bottleneck_sample;
        ] );
      ( "eval",
        [
          Alcotest.test_case "cheapest lattice" `Quick test_cheapest_on_lattice;
          Alcotest.test_case "bottleneck" `Quick test_bottleneck_on_path;
          Alcotest.test_case "epsilon" `Quick test_epsilon_reporting;
          Alcotest.test_case "bound 0" `Quick test_zero_length_bound;
          qcheck_eval_natural;
          qcheck_eval_boolean;
          qcheck_eval_tropical;
          qcheck_eval_probability;
          qcheck_natural_total_equals_counting;
          qcheck_reachable_pairs_equal_endpoints;
        ] );
      ( "witness",
        [
          Alcotest.test_case "lattice" `Quick test_witness_lattice;
          Alcotest.test_case "no route" `Quick test_witness_no_route;
          qcheck_witness_matches_eval;
          qcheck_witness_any_is_global_min;
        ] );
    ]
