(* Tests for the static analyzer: the label signature, the emptiness
   abstract interpretation, the Glushkov dead-position checks, spans and
   caret rendering, and the optimiser's lint notes. *)

open Mrpa_graph
open Mrpa_core
open Mrpa_lint
module H = Helpers

(* A graph where label [a] can never be followed by label [b]:
   heads(a) = {y}, tails(b) = {z}. Label [c] chains through y -> z. *)
let lint_graph () =
  let g = Digraph.create () in
  List.iter
    (fun (t, l, h) -> ignore (Digraph.add g t l h))
    [ ("x", "a", "y"); ("z", "b", "w"); ("x", "c", "y"); ("y", "c", "z") ];
  g

let codes_of diags = List.map (fun d -> d.Diagnostic.code) diags

let lint_codes g text =
  match Mrpa_engine.Engine.lint g text with
  | Ok diags -> codes_of diags
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let check_codes name g text expected =
  Alcotest.(check (list string)) name expected (lint_codes g text)

(* --- Signature ------------------------------------------------------- *)

let test_signature_sets () =
  let g = H.paper_graph () in
  let sg = Signature.make g in
  let vs names = Vertex.Set.of_list (List.map (H.v g) names) in
  Alcotest.check H.vertex_set "tails alpha" (vs [ "i"; "k" ])
    (Signature.tails sg (H.l g "alpha"));
  Alcotest.check H.vertex_set "heads alpha" (vs [ "j"; "k" ])
    (Signature.heads sg (H.l g "alpha"));
  Alcotest.check H.vertex_set "tails beta" (vs [ "i"; "j" ])
    (Signature.tails sg (H.l g "beta"));
  Alcotest.check H.vertex_set "heads beta" (vs [ "i"; "j"; "k" ])
    (Signature.heads sg (H.l g "beta"));
  Alcotest.(check int) "count alpha" 3 (Signature.count sg (H.l g "alpha"));
  Alcotest.(check int) "count beta" 4 (Signature.count sg (H.l g "beta"))

let test_signature_can_follow () =
  (* every pair chains on the paper graph ... *)
  let g = H.paper_graph () in
  let sg = Signature.make g in
  List.iter
    (fun (l1, l2) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s->%s" l1 l2)
        true
        (Signature.can_follow sg (H.l g l1) (H.l g l2)))
    [ ("alpha", "alpha"); ("alpha", "beta"); ("beta", "alpha"); ("beta", "beta") ];
  (* ... but a -> b never does on the lint graph *)
  let g = lint_graph () in
  let sg = Signature.make g in
  Alcotest.(check bool) "a->b" false
    (Signature.can_follow sg (H.l g "a") (H.l g "b"));
  Alcotest.(check bool) "c->c" true
    (Signature.can_follow sg (H.l g "c") (H.l g "c"));
  Alcotest.(check bool) "a->c" true
    (Signature.can_follow sg (H.l g "a") (H.l g "c"))

(* signature vertex sets agree with brute-force enumeration *)
let test_signature_matches_enumeration =
  H.qtest "signature = enumeration" H.recipe_gen H.print_recipe (fun r ->
      let g = H.graph_of_recipe r in
      let sg = Signature.make g in
      List.for_all
        (fun l ->
          let sel = Selector.label1 l in
          let edges = Selector.enumerate g sel in
          let tails =
            Vertex.Set.of_list (List.map Edge.tail edges)
          and heads = Vertex.Set.of_list (List.map Edge.head edges) in
          Vertex.Set.equal tails (Signature.tails sg l)
          && Vertex.Set.equal heads (Signature.heads sg l)
          && Signature.count sg l = List.length edges)
        (Digraph.labels g))

(* --- Diagnostic codes, one test per code ------------------------------ *)

let test_code_l000_l003 () =
  let g = lint_graph () in
  check_codes "dead join is an error" g "[_,a,_] . [_,b,_]"
    [ "L000"; "L003" ];
  check_codes "feasible join is clean" g "[_,c,_] . [_,c,_]" [];
  check_codes "paper graph joins are clean" (H.paper_graph ())
    "[_,alpha,_] . [_,beta,_]" []

let test_code_l001 () =
  let g = lint_graph () in
  Alcotest.(check bool) "dead arm reported" true
    (List.mem "L001" (lint_codes g "([_,a,_] . [_,b,_]) | [_,c,_]"));
  (* the literal empty arm is only a hint *)
  match Mrpa_engine.Engine.lint g "empty | [_,c,_]" with
  | Error msg -> Alcotest.fail msg
  | Ok diags ->
    let d = List.find (fun d -> d.Diagnostic.code = "L001") diags in
    Alcotest.(check string) "severity" "hint"
      (Diagnostic.severity_label d.Diagnostic.severity)

let test_code_l002 () =
  let g = lint_graph () in
  Alcotest.(check bool) "empty selector reported" true
    (List.mem "L002" (lint_codes g "[x,b,_]"))

let test_code_l004 () =
  let g = lint_graph () in
  Alcotest.(check bool) "trivial star" true
    (List.mem "L004" (lint_codes g "empty*"))

let test_code_l005 () =
  let g = lint_graph () in
  check_codes "star cannot iterate" g "[_,a,_]*" [ "L005" ];
  check_codes "star iterates fine" g "[_,c,_]*" []

let test_code_l006_l007 () =
  let g = lint_graph () in
  check_codes "unreachable position" g "empty . [_,a,_]" [ "L000"; "L006" ];
  check_codes "dead position" g "[_,a,_] . empty" [ "L007"; "L000" ]

let test_code_l008 () =
  let g = lint_graph () in
  check_codes "epsilon query" g "eps" [ "L008" ];
  Alcotest.(check bool) "eps | empty" true
    (List.mem "L008" (lint_codes g "eps | empty"))

let test_code_l009 () =
  let e =
    Expr.join (Expr.sel Selector.universe)
      (Expr.join Expr.empty (Expr.sel Selector.universe))
  in
  let optimized, rewrites, notes = Mrpa_engine.Optimizer.simplify_notes e in
  Alcotest.(check bool) "rewrites to empty" true (Expr.equal optimized Expr.empty);
  Alcotest.(check bool) "join-empty fired" true (List.mem "join-empty" rewrites);
  Alcotest.(check bool) "notes nonempty" true (notes <> []);
  List.iter
    (fun n -> Alcotest.(check string) "code" "L009" n.Diagnostic.code)
    notes;
  (* a clean expression produces no notes *)
  let _, _, none =
    Mrpa_engine.Optimizer.simplify_notes (Expr.sel Selector.universe)
  in
  Alcotest.(check int) "no notes" 0 (List.length none)

(* --- Spans and rendering ---------------------------------------------- *)

let test_parse_spanned_spans () =
  let g = H.paper_graph () in
  let text = "[i,alpha,_] . [_,beta,_]" in
  match Mrpa_engine.Parser.parse_spanned g text with
  | Error e -> Alcotest.failf "parse: %a" Mrpa_engine.Parser.pp_error e
  | Ok s ->
    (match s.Spanned.node with
    | Spanned.Join (a, b) ->
      Alcotest.(check (pair int int))
        "root span" (0, 24)
        (s.Spanned.span.Span.start, s.Spanned.span.Span.stop);
      Alcotest.(check (pair int int))
        "left span" (0, 11)
        (a.Spanned.span.Span.start, a.Spanned.span.Span.stop);
      Alcotest.(check (pair int int))
        "right span" (14, 24)
        (b.Spanned.span.Span.start, b.Spanned.span.Span.stop)
    | _ -> Alcotest.fail "expected a join");
    (* sel occurrences come out in automaton position order *)
    let occs = Spanned.sel_occurrences s in
    Alcotest.(check int) "two occurrences" 2 (List.length occs);
    Alcotest.(check (list (pair int int)))
      "occurrence spans"
      [ (0, 11); (14, 24) ]
      (List.map (fun (sp, _) -> (sp.Span.start, sp.Span.stop)) occs)

let test_parse_spanned_strip () =
  let g = H.paper_graph () in
  List.iter
    (fun text ->
      let plain =
        match Mrpa_engine.Parser.parse g text with
        | Ok e -> e
        | Error e -> Alcotest.failf "parse: %a" Mrpa_engine.Parser.pp_error e
      in
      let spanned =
        match Mrpa_engine.Parser.parse_spanned g text with
        | Ok s -> s
        | Error e -> Alcotest.failf "parse: %a" Mrpa_engine.Parser.pp_error e
      in
      Alcotest.(check bool)
        (Printf.sprintf "strip(%s)" text)
        true
        (Expr.equal plain (Spanned.strip spanned)))
    [
      "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])";
      "[_,alpha,_]{2,3} >< [_,beta,_]+";
      "let f = [_,alpha,_] in f . f?";
      "E | eps | empty";
    ]

let test_excerpt () =
  Alcotest.(check (option string))
    "caret under span"
    (Some "  abc def\n      ^^^")
    (Diagnostic.excerpt ~source:"abc def" (Span.make ~start:4 ~stop:7));
  Alcotest.(check (option string))
    "point at end of input"
    (Some "  abc\n     ^")
    (Diagnostic.excerpt ~source:"abc" (Span.point 3));
  Alcotest.(check (option string))
    "second line"
    (Some "  def\n  ^^^")
    (Diagnostic.excerpt ~source:"abc\ndef" (Span.make ~start:4 ~stop:7));
  Alcotest.(check (option string))
    "dummy span has no excerpt" None
    (Diagnostic.excerpt ~source:"abc" Span.dummy)

let test_parse_error_caret () =
  let g = H.paper_graph () in
  match Mrpa_engine.Engine.lint g "[i,alpha" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    let contains sub =
      let n = String.length sub and m = String.length msg in
      let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions offset" true (contains "offset 8");
    Alcotest.(check bool) "has a caret" true (String.contains msg '^')

let test_diagnostic_ordering () =
  let g = lint_graph () in
  match Mrpa_engine.Engine.lint g "[_,a,_] . [_,b,_]" with
  | Error msg -> Alcotest.fail msg
  | Ok diags ->
    Alcotest.(check (list string)) "sorted most severe first at equal span"
      [ "error"; "warning" ]
      (List.map (fun d -> Diagnostic.severity_label d.Diagnostic.severity) diags);
    Alcotest.(check string) "summary" "2 finding(s): 1 error(s), 1 warning(s)"
      (Diagnostic.summary diags);
    Alcotest.(check bool) "has_errors" true (Diagnostic.has_errors diags)

(* --- QCheck: soundness of the abstract interpretation ------------------ *)

(* Like Helpers.random_expr but with [empty] leaves, so statically-empty
   subexpressions actually occur. *)
let random_expr_with_empty rng g =
  let rec build depth =
    if depth = 0 then
      match Prng.int rng 6 with
      | 0 -> Expr.epsilon
      | 1 -> Expr.empty
      | _ -> Expr.sel (H.random_selector rng g)
    else
      match Prng.int rng 6 with
      | 0 -> Expr.union (build (depth - 1)) (build (depth - 1))
      | 1 | 2 -> Expr.join (build (depth - 1)) (build (depth - 1))
      | 3 -> Expr.star (build (depth - 1))
      | 4 -> build 0
      | _ -> Expr.product (build (depth - 1)) (build (depth - 1))
  in
  build (1 + Prng.int rng 2)

let max_length = 4

let test_soundness =
  H.qtest ~count:150 "statically-empty subexpressions denote ∅"
    H.with_graph_gen H.print_with_graph (fun (r, aux) ->
      let g = H.graph_of_recipe r in
      let rng = Prng.create aux in
      let expr = random_expr_with_empty rng g in
      let sg = Signature.make g in
      let infos, _ = Emptiness.analyze sg g (Spanned.of_expr expr) in
      List.for_all
        (fun (node, info) ->
          let e = Spanned.strip node in
          let denoted = Expr.denote g ~max_length e in
          (* eps is exact nullability *)
          info.Emptiness.eps = Expr.nullable e
          &&
          match info.Emptiness.cls with
          | Emptiness.Static_empty -> Path_set.is_empty denoted
          | Emptiness.Eps_only -> Path_set.equal denoted Path_set.epsilon
          | Emptiness.Inhabited -> true)
        infos)

let test_endpoint_soundness =
  H.qtest ~count:150 "nonempty matches start in tails and end in heads"
    H.with_graph_gen H.print_with_graph (fun (r, aux) ->
      let g = H.graph_of_recipe r in
      let rng = Prng.create aux in
      let expr = random_expr_with_empty rng g in
      let sg = Signature.make g in
      let infos, _ = Emptiness.analyze sg g (Spanned.of_expr expr) in
      List.for_all
        (fun (node, info) ->
          let denoted = Expr.denote g ~max_length (Spanned.strip node) in
          List.for_all
            (fun p ->
              Path.length p = 0
              || (Vertex.Set.mem (Path.tail_exn p) info.Emptiness.tails
                 && Vertex.Set.mem (Path.head_exn p) info.Emptiness.heads))
            (Path_set.elements denoted))
        infos)

let test_lint_flags_only_empty =
  (* L000 is sound: whenever lint reports it, the reference evaluation
     really is empty; and a nonempty denotation means no L000. *)
  H.qtest ~count:150 "L000 agrees with the oracle" H.with_graph_gen
    H.print_with_graph (fun (r, aux) ->
      let g = H.graph_of_recipe r in
      let rng = Prng.create aux in
      let expr = random_expr_with_empty rng g in
      let diags = Lint.analyze_expr g expr in
      if List.mem "L000" (codes_of diags) then
        Path_set.is_empty (Expr.denote g ~max_length expr)
      else true)

let test_strip_of_expr =
  H.qtest "strip ∘ of_expr = id" H.with_graph_gen H.print_with_graph
    (fun (r, aux) ->
      let g = H.graph_of_recipe r in
      let rng = Prng.create aux in
      let expr = random_expr_with_empty rng g in
      Expr.equal expr (Spanned.strip (Spanned.of_expr expr)))

let test_automaton_check_positions () =
  let sel = Expr.sel Selector.universe in
  let g = H.paper_graph () in
  (* empty . E: position 1 unreachable *)
  let a = Mrpa_automata.Glushkov.build (Expr.join Expr.empty sel) in
  Alcotest.(check (list string)) "unreachable" [ "L006" ]
    (codes_of (Automaton_check.check g a));
  (* E . empty: position 1 reachable but dead *)
  let a = Mrpa_automata.Glushkov.build (Expr.join sel Expr.empty) in
  Alcotest.(check (list string)) "dead" [ "L007" ]
    (codes_of (Automaton_check.check g a));
  (* E . E: both fine *)
  let a = Mrpa_automata.Glushkov.build (Expr.join sel sel) in
  Alcotest.(check (list string)) "clean" [] (codes_of (Automaton_check.check g a))

let () =
  Alcotest.run "mrpa_lint"
    [
      ( "signature",
        [
          Alcotest.test_case "paper graph sets" `Quick test_signature_sets;
          Alcotest.test_case "can_follow" `Quick test_signature_can_follow;
          test_signature_matches_enumeration;
        ] );
      ( "codes",
        [
          Alcotest.test_case "L000/L003 dead join" `Quick test_code_l000_l003;
          Alcotest.test_case "L001 dead union arm" `Quick test_code_l001;
          Alcotest.test_case "L002 empty selector" `Quick test_code_l002;
          Alcotest.test_case "L004 trivial star" `Quick test_code_l004;
          Alcotest.test_case "L005 star no iterate" `Quick test_code_l005;
          Alcotest.test_case "L006/L007 positions" `Quick test_code_l006_l007;
          Alcotest.test_case "L008 epsilon query" `Quick test_code_l008;
          Alcotest.test_case "L009 optimiser notes" `Quick test_code_l009;
        ] );
      ( "spans",
        [
          Alcotest.test_case "parse_spanned spans" `Quick test_parse_spanned_spans;
          Alcotest.test_case "parse_spanned strips to parse" `Quick
            test_parse_spanned_strip;
          Alcotest.test_case "caret excerpts" `Quick test_excerpt;
          Alcotest.test_case "parse errors carry carets" `Quick
            test_parse_error_caret;
          Alcotest.test_case "ordering and summary" `Quick
            test_diagnostic_ordering;
        ] );
      ( "automaton",
        [
          Alcotest.test_case "reachable/dead positions" `Quick
            test_automaton_check_positions;
        ] );
      ( "soundness",
        [
          test_soundness;
          test_endpoint_soundness;
          test_lint_flags_only_empty;
          test_strip_of_expr;
        ] );
    ]
