open Mrpa_graph
open Mrpa_core
open Mrpa_baseline
module H = Helpers

let vpath = Alcotest.testable Vpath.pp Vpath.equal

(* --- Vpath ---------------------------------------------------------------- *)

let test_vpath_basic () =
  let p = Vpath.of_edge 0 1 in
  Alcotest.(check int) "length" 1 (Vpath.length p);
  Alcotest.(check (option int)) "first" (Some 0) (Vpath.first p);
  Alcotest.(check (option int)) "last" (Some 1) (Vpath.last p);
  Alcotest.(check int) "single vertex length" 0 (Vpath.length (Vpath.of_vertex 5))

let test_vpath_concat_merges_endpoint () =
  (* ij ∘ jk = ijk — the defining behaviour of the [4]-style algebra *)
  let p = Vpath.concat (Vpath.of_edge 0 1) (Vpath.of_edge 1 2) in
  Alcotest.(check (list int)) "ijk" [ 0; 1; 2 ] (Vpath.vertices p);
  Alcotest.(check int) "length 2" 2 (Vpath.length p)

let test_vpath_concat_rejects_disjoint () =
  Alcotest.check_raises "disjoint" (Invalid_argument "Vpath.concat: disjoint strings")
    (fun () -> ignore (Vpath.concat (Vpath.of_edge 0 1) (Vpath.of_edge 2 3)))

let test_vpath_epsilon_identity () =
  let p = Vpath.of_edge 3 4 in
  Alcotest.check vpath "ε ∘ p" p (Vpath.concat Vpath.empty p);
  Alcotest.check vpath "p ∘ ε" p (Vpath.concat p Vpath.empty)

let test_vpath_associative () =
  let a = Vpath.of_edge 0 1 and b = Vpath.of_edge 1 2 and c = Vpath.of_edge 2 3 in
  Alcotest.check vpath "assoc"
    (Vpath.concat (Vpath.concat a b) c)
    (Vpath.concat a (Vpath.concat b c))

(* --- Vpath_set ------------------------------------------------------------- *)

let test_vpath_set_of_digraph_collapses () =
  let g = H.parallel_graph () in
  (* 6 labeled edges, 3 distinct vertex pairs *)
  Alcotest.(check int) "collapsed to pairs" 3
    (Vpath_set.cardinal (Vpath_set.of_digraph g))

let test_vpath_set_join () =
  let g = H.parallel_graph () in
  let e = Vpath_set.of_digraph g in
  let two = Vpath_set.join e e in
  (* pairs: a→b, b→c, c→a; joint 2-strings: abc, bca, cab *)
  Alcotest.(check int) "3 two-hop strings" 3 (Vpath_set.cardinal two);
  Alcotest.(check bool) "abc present" true
    (Vpath_set.mem
       (Vpath.of_vertices [ H.v g "a"; H.v g "b"; H.v g "c" ])
       two)

let test_vpath_set_join_power_and_restrict () =
  let g = H.parallel_graph () in
  let e = Vpath_set.of_digraph g in
  Alcotest.(check int) "power 0 = {ε}" 1 (Vpath_set.cardinal (Vpath_set.join_power e 0));
  let from_a =
    Vpath_set.source_restrict (Vertex.Set.singleton (H.v g "a")) (Vpath_set.join_power e 2)
  in
  Alcotest.(check int) "abc only" 1 (Vpath_set.cardinal from_a);
  let to_a =
    Vpath_set.dest_restrict (Vertex.Set.singleton (H.v g "a")) (Vpath_set.join_power e 2)
  in
  Alcotest.(check int) "bca only" 1 (Vpath_set.cardinal to_a)

(* The structural theorem behind EXP-T7: projecting ternary joint paths to
   vertex strings gives exactly the binary algebra's join results. *)
let vstring_of_path p =
  match Path.vertices p with [] -> Vpath.empty | vs -> Vpath.of_vertices vs

let qcheck_projection_homomorphism =
  H.qtest ~count:80 "ternary join projects onto binary join" H.with_graph_gen
    H.print_with_graph (fun (recipe, _) ->
      let g = H.graph_of_recipe recipe in
      let ternary = Path_set.join (Path_set.all_edges g) (Path_set.all_edges g) in
      let projected =
        Path_set.fold
          (fun p acc -> Vpath.Set.add (vstring_of_path p) acc)
          ternary Vpath.Set.empty
      in
      let binary =
        Vpath_set.join (Vpath_set.of_digraph g) (Vpath_set.of_digraph g)
      in
      Vpath_set.equal projected binary)

(* --- Label_recovery ---------------------------------------------------------- *)

let test_labels_between () =
  let g = H.parallel_graph () in
  Alcotest.(check int) "a→b has 2 labels" 2
    (List.length (Label_recovery.labels_between g (H.v g "a") (H.v g "b")));
  Alcotest.(check int) "b→c has 3" 3
    (List.length (Label_recovery.labels_between g (H.v g "b") (H.v g "c")));
  Alcotest.(check int) "no edge" 0
    (List.length (Label_recovery.labels_between g (H.v g "a") (H.v g "c")))

let test_word_count_multiplies () =
  let g = H.parallel_graph () in
  let abc = Vpath.of_vertices [ H.v g "a"; H.v g "b"; H.v g "c" ] in
  (* 2 × 3 candidate words *)
  Alcotest.(check int) "2×3" 6 (Label_recovery.word_count g abc);
  Alcotest.(check bool) "ambiguous" true (Label_recovery.is_ambiguous g abc);
  Alcotest.(check int) "trivial path" 1
    (Label_recovery.word_count g Vpath.empty)

let test_word_count_unrealisable () =
  let g = H.parallel_graph () in
  let ghost = Vpath.of_vertices [ H.v g "a"; H.v g "c" ] in
  Alcotest.(check int) "0 words" 0 (Label_recovery.word_count g ghost)

let test_words_enumeration () =
  let g = H.parallel_graph () in
  let abc = Vpath.of_vertices [ H.v g "a"; H.v g "b"; H.v g "c" ] in
  let ws = Label_recovery.words g abc in
  Alcotest.(check int) "6 words" 6 (List.length ws);
  List.iter (fun w -> Alcotest.(check int) "length 2" 2 (List.length w)) ws;
  let capped = Label_recovery.words ~limit:4 g abc in
  Alcotest.(check int) "capped" 4 (List.length capped)

let test_census () =
  let g = H.parallel_graph () in
  let e = Vpath_set.of_digraph g in
  let two = Vpath_set.join e e in
  let c = Label_recovery.census g two in
  (* strings: abc (2·3=6), bca (3·1=3), cab (1·2=2) — all ambiguous *)
  Alcotest.(check int) "total" 3 c.Label_recovery.total;
  Alcotest.(check int) "ambiguous" 3 c.Label_recovery.ambiguous;
  Alcotest.(check int) "unambiguous" 0 c.Label_recovery.unambiguous;
  Alcotest.(check int) "max words" 6 c.Label_recovery.max_words;
  Alcotest.(check int) "total words" 11 c.Label_recovery.total_words

let test_census_unambiguous_graph () =
  (* single-relational graph: every string has exactly one word *)
  let g = Generate.ring ~n:4 ~n_labels:1 in
  let e = Vpath_set.of_digraph g in
  let two = Vpath_set.join e e in
  let c = Label_recovery.census g two in
  Alcotest.(check int) "all unambiguous" c.Label_recovery.total
    c.Label_recovery.unambiguous;
  Alcotest.(check int) "no ambiguity" 0 c.Label_recovery.ambiguous

(* ternary vs binary cardinalities: the ternary algebra distinguishes paths
   the binary one cannot. *)
let test_ternary_distinguishes_more () =
  let g = H.parallel_graph () in
  let ternary = Path_set.join (Path_set.all_edges g) (Path_set.all_edges g) in
  let binary = Vpath_set.join (Vpath_set.of_digraph g) (Vpath_set.of_digraph g) in
  Alcotest.(check int) "ternary count = total label words" 11
    (Path_set.cardinal ternary);
  Alcotest.(check int) "binary count" 3 (Vpath_set.cardinal binary)

let () =
  Alcotest.run "mrpa_baseline"
    [
      ( "vpath",
        [
          Alcotest.test_case "basic" `Quick test_vpath_basic;
          Alcotest.test_case "merge concat" `Quick test_vpath_concat_merges_endpoint;
          Alcotest.test_case "disjoint rejected" `Quick
            test_vpath_concat_rejects_disjoint;
          Alcotest.test_case "epsilon" `Quick test_vpath_epsilon_identity;
          Alcotest.test_case "associative" `Quick test_vpath_associative;
        ] );
      ( "vpath_set",
        [
          Alcotest.test_case "projection collapses" `Quick
            test_vpath_set_of_digraph_collapses;
          Alcotest.test_case "join" `Quick test_vpath_set_join;
          Alcotest.test_case "power/restrict" `Quick
            test_vpath_set_join_power_and_restrict;
          qcheck_projection_homomorphism;
        ] );
      ( "label_recovery",
        [
          Alcotest.test_case "labels_between" `Quick test_labels_between;
          Alcotest.test_case "word count" `Quick test_word_count_multiplies;
          Alcotest.test_case "unrealisable" `Quick test_word_count_unrealisable;
          Alcotest.test_case "words" `Quick test_words_enumeration;
          Alcotest.test_case "census" `Quick test_census;
          Alcotest.test_case "unambiguous graph" `Quick test_census_unambiguous_graph;
          Alcotest.test_case "ternary vs binary" `Quick test_ternary_distinguishes_more;
        ] );
    ]
