The lint subcommand statically analyses a query against a graph. Fixture:
label a only reaches y, label b only leaves z, label c chains x -> y -> z.

  $ cat > g.tsv <<'EOF'
  > x	a	y
  > z	b	w
  > x	c	y
  > y	c	z
  > EOF

A feasible query is clean and exits 0:

  $ ../bin/mrpa.exe lint g.tsv '[_,c,_] . [_,c,_]'
  no findings

A join whose sides can never meet is statically empty — an error-severity
finding with the span of the offending join, and exit code 1:

  $ ../bin/mrpa.exe lint g.tsv '[_,a,_] . [_,b,_]'
  error[L000] at 0-17: statically empty query: no path of this graph can ever match
    [_,a,_] . [_,b,_]
    ^^^^^^^^^^^^^^^^^
  warning[L003] at 0-17: dead join: no head of the left side is a tail of the right side
    [_,a,_] . [_,b,_]
    ^^^^^^^^^^^^^^^^^
  2 finding(s): 1 error(s), 1 warning(s)
  [1]

Warnings alone do not fail the lint — the dead arm of this union is
reported but the query still has matches:

  $ ../bin/mrpa.exe lint g.tsv '([_,a,_] . [_,b,_]) | [_,c,_]'
  warning[L001] at 0-19: dead union arm: this alternative can never match
    ([_,a,_] . [_,b,_]) | [_,c,_]
    ^^^^^^^^^^^^^^^^^^^
  warning[L003] at 0-19: dead join: no head of the left side is a tail of the right side
    ([_,a,_] . [_,b,_]) | [_,c,_]
    ^^^^^^^^^^^^^^^^^^^
  2 finding(s): 2 warning(s)

The Glushkov automaton supplies a second diagnostic source: positions cut
off from the start or from every accepting end:

  $ ../bin/mrpa.exe lint g.tsv 'empty . [_,a,_]'
  error[L000] at 0-15: statically empty query: no path of this graph can ever match
    empty . [_,a,_]
    ^^^^^^^^^^^^^^^
  warning[L006] at 8-15: unreachable selector occurrence #1 ([_,a,_]): cut off from the start of every match
    empty . [_,a,_]
            ^^^^^^^
  2 finding(s): 1 error(s), 1 warning(s)
  [1]

Stars that cannot iterate (label a never chains with itself) are hints:

  $ ../bin/mrpa.exe lint g.tsv '[_,a,_]*'
  hint[L005] at 0-8: star cannot iterate: the body never chains with itself, so at most one repetition matches
    [_,a,_]*
    ^^^^^^^^
  1 finding(s): 1 hint(s)

Selectors that match no edge, and epsilon-only queries:

  $ ../bin/mrpa.exe lint g.tsv '[x,b,_]'
  error[L000] at 0-7: statically empty query: no path of this graph can ever match
    [x,b,_]
    ^^^^^^^
  warning[L002] at 0-7: selector [x,b,_] matches no edge of the graph
    [x,b,_]
    ^^^^^^^
  2 finding(s): 1 error(s), 1 warning(s)
  [1]

  $ ../bin/mrpa.exe lint g.tsv 'eps'
  warning[L008] at 0-3: epsilon-only query: only the empty path can match
    eps
    ^^^
  1 finding(s): 1 warning(s)

Parse errors come out caret-rendered too:

  $ ../bin/mrpa.exe lint g.tsv '[x,a'
  error: parse error at offset 4: expected ','
    [x,a
        ^
  [1]

query --lint runs the analyzer first: findings go to standard error, and
an error-severity finding aborts before evaluation:

  $ ../bin/mrpa.exe query g.tsv --lint '([_,a,_] . [_,b,_]) | [_,c,_]' 2>lint.err | sed 's/in [0-9.]* ms/in N ms/'
  (x,c,y)
  (y,c,z)
  -- 2 path(s) in N ms via product-bfs
  $ cat lint.err
  warning[L001] at 0-19: dead union arm: this alternative can never match
    ([_,a,_] . [_,b,_]) | [_,c,_]
    ^^^^^^^^^^^^^^^^^^^
  warning[L003] at 0-19: dead join: no head of the left side is a tail of the right side
    ([_,a,_] . [_,b,_]) | [_,c,_]
    ^^^^^^^^^^^^^^^^^^^

  $ ../bin/mrpa.exe query g.tsv --lint '[_,a,_] . [_,b,_]' 2>lint.err
  [1]
  $ cat lint.err
  error[L000] at 0-17: statically empty query: no path of this graph can ever match
    [_,a,_] . [_,b,_]
    ^^^^^^^^^^^^^^^^^
  warning[L003] at 0-17: dead join: no head of the left side is a tail of the right side
    [_,a,_] . [_,b,_]
    ^^^^^^^^^^^^^^^^^
  error: the query is statically empty; not running it

When a rewrite proves a subexpression empty, the plan carries a lint note:

  $ ../bin/mrpa.exe explain g.tsv '(empty . [_,a,_]) | [_,c,_]'
  plan:
    expression: ((∅ . [_,a,_]) | [_,c,_])
    optimized:  [_,c,_]
    rewrites:   join-empty, union-empty
    note:       hint[L009]: subexpression (∅ . [_,0,_]) is provably empty
    strategy:   product-bfs (anchored start (first extent 2 <= 8))
    max length: 8
    cost:       paths <= 2, cost <= 40 work units (frontier <= 2, 1 position(s))
    cost table:
      len       paths      expression
      [1,1]     <=2        [_,c,_]
