open Mrpa_graph
open Mrpa_core
open Mrpa_analysis
module H = Helpers

let float_eps = 1e-9

let check_float name expected actual =
  Alcotest.(check (float float_eps)) name expected actual

(* --- Sparse -------------------------------------------------------------- *)

let dense_of m =
  Array.init (Sparse.rows m) (fun i ->
      Array.init (Sparse.cols m) (fun j -> Sparse.get m i j))

let dense_mul a b =
  let n = Array.length a and p = Array.length b.(0) in
  let k = Array.length b in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let acc = ref 0.0 in
          for x = 0 to k - 1 do
            acc := !acc +. (a.(i).(x) *. b.(x).(j))
          done;
          !acc))

let test_sparse_basic () =
  let m = Sparse.of_coo ~rows:2 ~cols:3 [ (0, 1, 2.0); (1, 2, 3.0); (0, 1, 1.0) ] in
  Alcotest.(check int) "nnz (dups summed)" 2 (Sparse.nnz m);
  check_float "get summed" 3.0 (Sparse.get m 0 1);
  check_float "absent" 0.0 (Sparse.get m 1 1);
  Alcotest.check_raises "bad index" (Invalid_argument "Sparse: index out of range")
    (fun () -> ignore (Sparse.of_coo ~rows:1 ~cols:1 [ (1, 0, 1.0) ]))

let test_sparse_zero_dropped () =
  let m = Sparse.of_coo ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 0, -1.0) ] in
  Alcotest.(check int) "cancelled entry dropped" 0 (Sparse.nnz m)

let test_sparse_identity () =
  let i3 = Sparse.identity 3 in
  Alcotest.(check int) "nnz" 3 (Sparse.nnz i3);
  let m = Sparse.of_coo ~rows:3 ~cols:3 [ (0, 1, 5.0); (2, 0, 7.0) ] in
  Alcotest.(check bool) "I·m = m" true (Sparse.equal (Sparse.mul i3 m) m);
  Alcotest.(check bool) "m·I = m" true (Sparse.equal (Sparse.mul m i3) m)

let qcheck_sparse_mul_matches_dense =
  H.qtest ~count:100 "sparse mul = dense mul" QCheck2.Gen.(int_bound 10_000)
    string_of_int (fun seed ->
      let rng = Prng.create seed in
      let dims = (2 + Prng.int rng 4, 2 + Prng.int rng 4, 2 + Prng.int rng 4) in
      let n, k, p = dims in
      let entries rows cols =
        List.concat
          (List.init rows (fun i ->
               List.filter_map
                 (fun j ->
                   if Prng.bernoulli rng 0.4 then
                     Some (i, j, float_of_int (1 + Prng.int rng 5))
                   else None)
                 (List.init cols Fun.id)))
      in
      let a = Sparse.of_coo ~rows:n ~cols:k (entries n k) in
      let b = Sparse.of_coo ~rows:k ~cols:p (entries k p) in
      dense_of (Sparse.mul a b) = dense_mul (dense_of a) (dense_of b))

let test_sparse_transpose_involution () =
  let m = Sparse.of_coo ~rows:2 ~cols:3 [ (0, 2, 1.5); (1, 0, 2.5) ] in
  Alcotest.(check bool) "transpose twice" true
    (Sparse.equal m (Sparse.transpose (Sparse.transpose m)));
  check_float "transposed entry" 1.5 (Sparse.get (Sparse.transpose m) 2 0)

let test_sparse_matvec () =
  let m = Sparse.of_coo ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 1, 2.0); (1, 1, 3.0) ] in
  let y = Sparse.mat_vec m [| 1.0; 1.0 |] in
  check_float "row0" 3.0 y.(0);
  check_float "row1" 3.0 y.(1);
  let z = Sparse.vec_mat [| 1.0; 1.0 |] m in
  check_float "col0" 1.0 z.(0);
  check_float "col1" 5.0 z.(1)

let test_sparse_power_bool_ring () =
  (* ring of 3: A³ = I under boolean product *)
  let a =
    Sparse.boolean_of_coo ~rows:3 ~cols:3 [ (0, 1); (1, 2); (2, 0) ]
  in
  Alcotest.(check bool) "A^3 = I" true
    (Sparse.equal (Sparse.power_bool a 3) (Sparse.identity 3));
  Alcotest.(check bool) "A^0 = I" true
    (Sparse.equal (Sparse.power_bool a 0) (Sparse.identity 3))

let test_sparse_mul_bool_is_boolean () =
  let a = Sparse.boolean_of_coo ~rows:2 ~cols:2 [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
  let sq = Sparse.mul_bool a a in
  List.iter (fun (_, _, v) -> check_float "entry is 1" 1.0 v) (Sparse.to_coo sq)

(* --- Simple_graph --------------------------------------------------------- *)

let test_simple_graph_basic () =
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (0, 1); (2, 3) ] in
  Alcotest.(check int) "dedup edges" 3 (Simple_graph.n_edges g);
  Alcotest.(check bool) "mem" true (Simple_graph.mem_edge g 0 1);
  Alcotest.(check bool) "not mem" false (Simple_graph.mem_edge g 1 0);
  Alcotest.(check int) "out deg" 1 (Simple_graph.out_degree g 0);
  Alcotest.(check int) "in deg" 1 (Simple_graph.in_degree g 1)

let test_simple_graph_transpose () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let t = Simple_graph.transpose g in
  Alcotest.(check bool) "reversed" true (Simple_graph.mem_edge t 1 0);
  Alcotest.(check bool) "roundtrip" true
    (Simple_graph.equal g (Simple_graph.transpose t))

let test_simple_graph_sparse_roundtrip () =
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (3, 0) ] in
  Alcotest.(check bool) "roundtrip" true
    (Simple_graph.equal g (Simple_graph.of_sparse_bool (Simple_graph.to_sparse g)))

let test_simple_graph_bfs () =
  let g = Simple_graph.of_edge_list ~n:5 [ (0, 1); (1, 2); (2, 3) ] in
  let d = Simple_graph.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; -1 |] d

(* --- Projection ------------------------------------------------------------ *)

let test_projection_single_label () =
  let g = H.paper_graph () in
  let alpha = H.l g "alpha" in
  let ga = Projection.single_label g alpha in
  (* α edges: (i,α,j), (k,α,j), (i,α,k) *)
  Alcotest.(check int) "3 α edges" 3 (Simple_graph.n_edges ga);
  Alcotest.(check bool) "i→j" true
    (Simple_graph.mem_edge ga (H.v g "i") (H.v g "j"))

let test_projection_label_blind_collapses () =
  let g = H.parallel_graph () in
  let blind = Projection.label_blind g in
  (* 6 labeled edges collapse to 3 distinct vertex pairs *)
  Alcotest.(check int) "collapsed" 3 (Simple_graph.n_edges blind)

let test_projection_path_derived_alpha_beta () =
  let g = H.paper_graph () in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let gab = Projection.path_derived g [ alpha; beta ] in
  (* ab-paths: (i,a,j)(j,b,.) gives i-k, i-j, i-i ; (k,a,j)(j,b,.) gives k-k, k-j, k-i *)
  Alcotest.(check int) "6 derived pairs" 6 (Simple_graph.n_edges gab);
  Alcotest.(check bool) "i→i present" true
    (Simple_graph.mem_edge gab (H.v g "i") (H.v g "i"))

let qcheck_projection_join_equals_matrix =
  H.qtest ~count:80 "E_αβ via join = via boolean matrix product"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let labels = Array.of_list (Digraph.labels g) in
      let word =
        List.init (1 + Prng.int rng 2) (fun _ -> Prng.pick rng labels)
      in
      let via_join = Projection.path_derived g word in
      let via_matrix =
        Simple_graph.of_sparse_bool (Projection.path_derived_matrix g word)
      in
      Simple_graph.equal via_join via_matrix)

let qcheck_projection_expr_agrees =
  H.qtest ~count:60 "E_αβ via generator = via join" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let labels = Array.of_list (Digraph.labels g) in
      let word = List.init (1 + Prng.int rng 2) (fun _ -> Prng.pick rng labels) in
      let expr =
        Expr.join_of
          (List.map (fun l -> Expr.sel (Selector.label1 l)) word)
      in
      let via_expr =
        Projection.path_derived_expr g expr ~max_length:(List.length word)
      in
      Simple_graph.equal via_expr (Projection.path_derived g word))

let test_projection_adjacency_slice () =
  let g = H.paper_graph () in
  let a = Projection.adjacency_slice g (H.l g "alpha") in
  Alcotest.(check int) "3 entries" 3 (Sparse.nnz a);
  check_float "i→j entry" 1.0 (Sparse.get a (H.v g "i") (H.v g "j"))

(* --- Tensor3 ------------------------------------------------------------------ *)

let test_tensor_slices () =
  let g = H.paper_graph () in
  let t = Tensor3.of_digraph g in
  Alcotest.(check int) "nnz = |E|" (Digraph.n_edges g) (Tensor3.nnz t);
  Alcotest.(check int) "dims" (Digraph.n_vertices g) (Tensor3.n_vertices t);
  Alcotest.(check int) "labels" 2 (Tensor3.n_labels t);
  let alpha = H.l g "alpha" in
  Alcotest.(check bool) "slice = adjacency slice" true
    (Sparse.equal (Tensor3.slice t alpha) (Projection.adjacency_slice g alpha));
  Alcotest.(check bool) "mem" true (Tensor3.mem t (H.v g "i") alpha (H.v g "j"));
  Alcotest.(check bool) "not mem" false
    (Tensor3.mem t (H.v g "j") alpha (H.v g "k"))

let test_tensor_label_sum_counts_parallel () =
  let g = H.parallel_graph () in
  let t = Tensor3.of_digraph g in
  let s = Tensor3.label_sum t in
  check_float "a→b has 2 parallel edges" 2.0
    (Sparse.get s (H.v g "a") (H.v g "b"));
  check_float "b→c has 3" 3.0 (Sparse.get s (H.v g "b") (H.v g "c"))

let test_tensor_contract_counts_paths () =
  let g = H.paper_graph () in
  let t = Tensor3.of_digraph g in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let c = Tensor3.contract t [ alpha; beta ] in
  (* total αβ-paths = cardinality of the labeled traversal *)
  let total =
    List.fold_left (fun acc (_, _, v) -> acc + int_of_float v) 0 (Sparse.to_coo c)
  in
  let expected =
    Path_set.cardinal
      (Traversal.labeled g
         ~labels:[ Label.Set.singleton alpha; Label.Set.singleton beta ])
  in
  Alcotest.(check int) "entry sum = path count" expected total;
  (* empty word = identity *)
  Alcotest.(check bool) "empty word" true
    (Sparse.equal (Tensor3.contract t []) (Sparse.identity (Tensor3.n_vertices t)))

let qcheck_tensor_contract_matches_traversal =
  H.qtest ~count:60 "tensor contraction counts labeled traversals"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let labels = Array.of_list (Digraph.labels g) in
      let word = List.init (1 + Prng.int rng 2) (fun _ -> Prng.pick rng labels) in
      let t = Tensor3.of_digraph g in
      let total =
        List.fold_left
          (fun acc (_, _, v) -> acc + int_of_float v)
          0
          (Sparse.to_coo (Tensor3.contract t word))
      in
      total
      = Path_set.cardinal
          (Traversal.labeled g ~labels:(List.map Label.Set.singleton word)))

(* --- Centrality -------------------------------------------------------------- *)

let test_degree_centrality () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (0, 2); (1, 2) ] in
  Alcotest.(check (array (float float_eps))) "out" [| 2.0; 1.0; 0.0 |]
    (Centrality.out_degree g);
  Alcotest.(check (array (float float_eps))) "in" [| 0.0; 1.0; 2.0 |]
    (Centrality.in_degree g)

let test_closeness_path_graph () =
  (* 0→1→2: closeness(0) = (2/2)·(2/3), closeness(1) = (1/2)·(1/1), terminal 0 *)
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let c = Centrality.closeness g in
  check_float "v0" (2.0 /. 3.0) c.(0);
  check_float "v1" 0.5 c.(1);
  check_float "v2 (reaches nothing)" 0.0 c.(2)

let test_harmonic_closeness () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let c = Centrality.harmonic_closeness g in
  check_float "v0 = 1 + 1/2" 1.5 c.(0);
  check_float "v1 = 1" 1.0 c.(1);
  check_float "v2 = 0" 0.0 c.(2)

let test_betweenness_path_graph () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let b = Centrality.betweenness g in
  check_float "middle vertex carries the 0→2 path" 1.0 b.(1);
  check_float "endpoints zero" 0.0 b.(0);
  check_float "endpoints zero" 0.0 b.(2)

let test_betweenness_star_hub () =
  (* directed star out+in: hub between all leaf pairs *)
  let edges =
    List.concat (List.init 3 (fun i -> [ (4, i); (i, 4) ]))
  in
  let g = Simple_graph.of_edge_list ~n:5 edges in
  let b = Centrality.betweenness g in
  (* leaf→hub→leaf': 3·2 ordered pairs *)
  check_float "hub betweenness" 6.0 b.(4);
  check_float "leaf betweenness" 0.0 b.(0)

let test_pagerank_uniform_on_ring () =
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let pr = Centrality.pagerank g in
  Array.iter (fun v -> check_float "uniform" 0.25 v) pr;
  check_float "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 pr)

let test_pagerank_sink_handling () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 2); (1, 2) ] in
  let pr = Centrality.pagerank g in
  check_float "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 pr);
  Alcotest.(check bool) "sink is top" true (pr.(2) > pr.(0))

let test_eigenvector_ring_uniform () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let ev = Centrality.eigenvector g in
  let expected = 1.0 /. sqrt 3.0 in
  Array.iter (fun v -> check_float "uniform" expected v) ev

let test_spreading_activation () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let a = Centrality.spreading_activation ~seeds:[ (0, 1.0) ] ~steps:2 g in
  Alcotest.(check bool) "seed active" true (a.(0) > 0.0);
  Alcotest.(check bool) "propagated" true (a.(1) > 0.0 && a.(2) > 0.0);
  Alcotest.(check bool) "attenuated" true (a.(1) < a.(0) && a.(2) < a.(1))

let test_katz_ring_uniform () =
  (* ring, out-degree 1: fixed point x = 1 + α·x, so x = 1/(1-α) everywhere *)
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let alpha = 0.1 in
  let k = Centrality.katz ~alpha g in
  Array.iter (fun v -> Alcotest.(check (float 1e-6)) "1/(1-α)" (1.0 /. 0.9) v) k

let test_katz_favours_pointed_at () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 2); (1, 2) ] in
  let k = Centrality.katz g in
  Alcotest.(check bool) "sink highest" true (k.(2) > k.(0) && k.(2) > k.(1))

let test_hits_bipartite () =
  (* hubs 0,1 point at authorities 2,3; 0 points at both *)
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 2); (0, 3); (1, 2) ] in
  let hubs, auths = Centrality.hits g in
  Alcotest.(check bool) "0 is the better hub" true (hubs.(0) > hubs.(1));
  Alcotest.(check bool) "2 is the better authority" true (auths.(2) > auths.(3));
  Alcotest.(check bool) "authorities have no hub score" true
    (hubs.(2) < 1e-9 && hubs.(3) < 1e-9)

let test_top_k () =
  let ranked = Centrality.top_k 2 [| 0.1; 0.9; 0.5 |] in
  Alcotest.(check (list (pair int (float float_eps)))) "top2"
    [ (1, 0.9); (2, 0.5) ]
    ranked

(* --- Assortativity ------------------------------------------------------------ *)

let test_discrete_assortativity_perfect () =
  (* two categories, edges only within category *)
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  check_float "perfectly assortative" 1.0
    (Assortativity.discrete ~categories:[| 0; 0; 1; 1 |] g)

let test_discrete_assortativity_disassortative () =
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 2); (2, 0); (1, 3); (3, 1) ] in
  let r = Assortativity.discrete ~categories:[| 0; 0; 1; 1 |] g in
  Alcotest.(check bool) "negative" true (r < 0.0)

let test_scalar_assortativity_sign () =
  (* high-value vertices point at high-value vertices *)
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  let r = Assortativity.scalar ~values:[| 10.0; 11.0; 1.0; 2.0 |] g in
  Alcotest.(check bool) "positive" true (r > 0.9)

let test_degree_assortativity_nan_on_regular () =
  (* ring: all degrees equal → variance 0 → undefined *)
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "nan" true (Float.is_nan (Assortativity.degree g))

let test_assortativity_empty_graph () =
  let g = Simple_graph.of_edge_list ~n:3 [] in
  Alcotest.(check bool) "nan on edgeless" true
    (Float.is_nan (Assortativity.discrete ~categories:[| 0; 1; 0 |] g))

(* --- Components ------------------------------------------------------------------ *)

let test_scc_two_cycles () =
  (* two 2-cycles joined by a one-way bridge *)
  let g =
    Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ]
  in
  let t = Components.strongly_connected g in
  Alcotest.(check int) "two components" 2 t.Components.n_components;
  Alcotest.(check bool) "0~1" true (Components.same_component t 0 1);
  Alcotest.(check bool) "2~3" true (Components.same_component t 2 3);
  Alcotest.(check bool) "0!~2" false (Components.same_component t 0 2);
  (* reverse topological numbering: the bridge goes 0/1-side -> 2/3-side *)
  Alcotest.(check bool) "source component has larger id" true
    (t.Components.component.(0) > t.Components.component.(2))

let test_scc_dag_all_singletons () =
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (0, 3) ] in
  let t = Components.strongly_connected g in
  Alcotest.(check int) "all singletons" 4 t.Components.n_components

let test_scc_ring_single () =
  let g = Simple_graph.of_edge_list ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let t = Components.strongly_connected g in
  Alcotest.(check int) "one component" 1 t.Components.n_components;
  let c, size = Components.largest t in
  Alcotest.(check int) "largest size" 5 size;
  Alcotest.(check (list int)) "members" [ 0; 1; 2; 3; 4 ] (Components.members t c)

let test_weak_components () =
  let g = Simple_graph.of_edge_list ~n:5 [ (0, 1); (2, 1); (3, 4) ] in
  let t = Components.weakly_connected g in
  Alcotest.(check int) "two weak components" 2 t.Components.n_components;
  Alcotest.(check bool) "0~2 via 1" true (Components.same_component t 0 2);
  Alcotest.(check bool) "3~4" true (Components.same_component t 3 4);
  Alcotest.(check bool) "0!~3" false (Components.same_component t 0 3)

let test_condensation_is_dag () =
  let g =
    Simple_graph.of_edge_list ~n:5
      [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (3, 4) ]
  in
  let t, dag = Components.condensation g in
  Alcotest.(check int) "three components" 3 t.Components.n_components;
  Alcotest.(check int) "two condensation edges" 2 (Simple_graph.n_edges dag);
  (* DAG check: its SCCs are all singletons *)
  let t' = Components.strongly_connected dag in
  Alcotest.(check int) "condensation is a DAG" 3 t'.Components.n_components

let qcheck_scc_mutual_reachability =
  H.qtest ~count:60 "same SCC iff mutually reachable" H.with_graph_gen
    H.print_with_graph (fun (recipe, _) ->
      let g = H.graph_of_recipe recipe in
      let sg = Projection.label_blind g in
      let t = Components.strongly_connected sg in
      let n = Simple_graph.n_vertices sg in
      let reach = Array.init n (fun v -> Simple_graph.bfs_distances sg v) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let mutual = reach.(u).(v) >= 0 && reach.(v).(u) >= 0 in
          if Components.same_component t u v <> mutual then ok := false
        done
      done;
      !ok)

(* --- Metrics --------------------------------------------------------------------------- *)

let test_metrics_path_graph () =
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (array int)) "eccentricities" [| 3; 2; 1; -1 |]
    (Metrics.eccentricity g);
  Alcotest.(check int) "diameter" 3 (Metrics.diameter g);
  Alcotest.(check int) "radius" 1 (Metrics.radius g);
  (* reachable pairs: (0,1)1 (0,2)2 (0,3)3 (1,2)1 (1,3)2 (2,3)1 → 10/6 *)
  Alcotest.(check (float 1e-9)) "average path length" (10.0 /. 6.0)
    (Metrics.average_path_length g)

let test_metrics_clustering_triangle () =
  let g = Simple_graph.of_edge_list ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Array.iter
    (fun c -> Alcotest.(check (float 1e-9)) "triangle fully clustered" 1.0 c)
    (Metrics.local_clustering g);
  Alcotest.(check (float 1e-9)) "global" 1.0 (Metrics.global_clustering g)

let test_metrics_clustering_star () =
  (* star: hub's neighbours are mutually unconnected *)
  let g = Simple_graph.of_edge_list ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let c = Metrics.local_clustering g in
  Alcotest.(check (float 1e-9)) "hub 0" 0.0 c.(0);
  Alcotest.(check (float 1e-9)) "leaf (degree 1) 0" 0.0 c.(1);
  Alcotest.(check (float 1e-9)) "global over hub only" 0.0
    (Metrics.global_clustering g)

let test_metrics_empty_graph () =
  let g = Simple_graph.of_edge_list ~n:2 [] in
  Alcotest.(check int) "diameter 0" 0 (Metrics.diameter g);
  Alcotest.(check bool) "apl nan" true
    (Float.is_nan (Metrics.average_path_length g));
  Alcotest.(check bool) "clustering nan" true
    (Float.is_nan (Metrics.global_clustering g))

(* --- Communities --------------------------------------------------------------------- *)

let two_cliques_with_bridge () =
  (* two 4-cliques joined by one bridge edge *)
  let edges c base =
    List.concat
      (List.init c (fun i ->
           List.filter_map
             (fun j -> if i <> j then Some (base + i, base + j) else None)
             (List.init c Fun.id)))
  in
  Simple_graph.of_edge_list ~n:8 (edges 4 0 @ edges 4 4 @ [ (0, 4) ])

let test_label_propagation_two_cliques () =
  let g = two_cliques_with_bridge () in
  let t = Communities.label_propagation ~seed:3 g in
  Alcotest.(check int) "two communities" 2 t.Communities.n_communities;
  (* members of each clique agree *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "%d and %d together" a b)
        t.Communities.community.(a) t.Communities.community.(b))
    [ (0, 1); (1, 2); (2, 3); (4, 5); (5, 6); (6, 7) ];
  Alcotest.(check bool) "cliques apart" true
    (t.Communities.community.(0) <> t.Communities.community.(4));
  let sizes = Communities.sizes t in
  Alcotest.(check (array int)) "sizes" [| 4; 4 |] sizes

let test_modularity_bounds () =
  let g = two_cliques_with_bridge () in
  let good = Communities.label_propagation ~seed:3 g in
  let q_good = Communities.modularity g good in
  Alcotest.(check bool) "good partition positive" true (q_good > 0.3);
  (* everything in one community: Q = frac_within - 1 = 0 when one community *)
  let trivial =
    { Communities.n_communities = 1; community = Array.make 8 0 }
  in
  let q_trivial = Communities.modularity g trivial in
  Alcotest.(check (float 1e-9)) "single community Q = 0" 0.0 q_trivial;
  Alcotest.(check bool) "good beats trivial" true (q_good > q_trivial)

let test_label_propagation_isolated () =
  let g = Simple_graph.of_edge_list ~n:3 [] in
  let t = Communities.label_propagation g in
  Alcotest.(check int) "all singletons" 3 t.Communities.n_communities;
  Alcotest.(check bool) "modularity undefined" true
    (Float.is_nan (Communities.modularity g t))

(* --- Derived_view ------------------------------------------------------------------ *)

let test_view_tracks_insertions () =
  let g = H.paper_graph () in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let view = Derived_view.create g [ alpha; beta ] in
  Alcotest.(check bool) "initially consistent" true (Derived_view.is_consistent view);
  let before = Derived_view.pair_count view (H.v g "i") (H.v g "i") in
  Alcotest.(check int) "one i→i αβ path initially" 1 before;
  (* add (k,beta,i): creates the αβ path (i,α,k)(k,β,i) *)
  ignore (Digraph.add g "k" "beta" "i");
  Alcotest.(check bool) "consistent after insert" true
    (Derived_view.is_consistent view);
  Alcotest.(check int) "i→i count grew" 2
    (Derived_view.pair_count view (H.v g "i") (H.v g "i"))

let test_view_tracks_removals () =
  let g = H.paper_graph () in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let view = Derived_view.create g [ alpha; beta ] in
  ignore (Digraph.remove_edge g (H.e g "j" "beta" "i"));
  Alcotest.(check bool) "consistent after removal" true
    (Derived_view.is_consistent view);
  Alcotest.(check int) "i→i gone" 0
    (Derived_view.pair_count view (H.v g "i") (H.v g "i"))

let test_view_repeated_label_word () =
  (* word with the same label twice: both positions perturbed *)
  let g = H.parallel_graph () in
  let r0 = H.l g "r0" in
  let view = Derived_view.create g [ r0; r0 ] in
  Alcotest.(check bool) "initial" true (Derived_view.is_consistent view);
  ignore (Digraph.add g "c" "r0" "b");
  ignore (Digraph.add g "b" "r0" "a");
  Alcotest.(check bool) "after two inserts" true (Derived_view.is_consistent view)

let test_view_dimension_growth_rebuilds () =
  let g = H.paper_graph () in
  let view = Derived_view.create g [ H.l g "alpha"; H.l g "beta" ] in
  let rebuilds_before = Derived_view.n_rebuilds view in
  ignore (Digraph.add g "newcomer" "alpha" "j");
  Alcotest.(check bool) "rebuilt on new vertex" true
    (Derived_view.n_rebuilds view > rebuilds_before);
  Alcotest.(check bool) "still consistent" true (Derived_view.is_consistent view)

let test_view_simple_graph_skeleton () =
  let g = H.paper_graph () in
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let view = Derived_view.create g [ alpha; beta ] in
  Alcotest.(check bool) "skeleton = path_derived" true
    (Simple_graph.equal
       (Derived_view.simple_graph view)
       (Projection.path_derived g [ alpha; beta ]))

let qcheck_view_consistency_under_churn =
  H.qtest ~count:60 "view stays consistent under random churn"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let labels = Array.of_list (Digraph.labels g) in
      let word = List.init (1 + Prng.int rng 2) (fun _ -> Prng.pick rng labels) in
      let view = Derived_view.create g word in
      let vertices = Array.of_list (Digraph.vertices g) in
      let ok = ref (Derived_view.is_consistent view) in
      for _ = 1 to 12 do
        if Prng.bool rng then begin
          let e =
            Edge.make ~tail:(Prng.pick rng vertices)
              ~label:(Prng.pick rng labels) ~head:(Prng.pick rng vertices)
          in
          ignore (Digraph.add_edge g e)
        end
        else begin
          match Digraph.edges g with
          | [] -> ()
          | es -> ignore (Digraph.remove_edge g (Prng.pick_list rng es))
        end;
        if not (Derived_view.is_consistent view) then ok := false
      done;
      !ok)

(* --- §IV-C end-to-end ----------------------------------------------------------- *)

let test_semantics_difference_label_blind_vs_derived () =
  (* The paper's warning: label-blind projection and path-derived projection
     answer different questions. On the fixture they genuinely differ. *)
  let g = H.paper_graph () in
  let blind = Projection.label_blind g in
  let derived = Projection.path_derived g [ H.l g "alpha"; H.l g "beta" ] in
  Alcotest.(check bool) "different graphs" false
    (Simple_graph.equal blind derived);
  (* and therefore different rankings *)
  let pr_blind = Centrality.pagerank blind in
  let pr_derived = Centrality.pagerank derived in
  Alcotest.(check bool) "different pagerank" true (pr_blind <> pr_derived)

let () =
  Alcotest.run "mrpa_analysis"
    [
      ( "sparse",
        [
          Alcotest.test_case "basic" `Quick test_sparse_basic;
          Alcotest.test_case "zero dropped" `Quick test_sparse_zero_dropped;
          Alcotest.test_case "identity" `Quick test_sparse_identity;
          Alcotest.test_case "transpose" `Quick test_sparse_transpose_involution;
          Alcotest.test_case "matvec" `Quick test_sparse_matvec;
          Alcotest.test_case "boolean power" `Quick test_sparse_power_bool_ring;
          Alcotest.test_case "boolean entries" `Quick test_sparse_mul_bool_is_boolean;
          qcheck_sparse_mul_matches_dense;
        ] );
      ( "simple_graph",
        [
          Alcotest.test_case "basic" `Quick test_simple_graph_basic;
          Alcotest.test_case "transpose" `Quick test_simple_graph_transpose;
          Alcotest.test_case "sparse roundtrip" `Quick
            test_simple_graph_sparse_roundtrip;
          Alcotest.test_case "bfs" `Quick test_simple_graph_bfs;
        ] );
      ( "projection",
        [
          Alcotest.test_case "single label" `Quick test_projection_single_label;
          Alcotest.test_case "label blind" `Quick
            test_projection_label_blind_collapses;
          Alcotest.test_case "path derived" `Quick
            test_projection_path_derived_alpha_beta;
          Alcotest.test_case "adjacency slice" `Quick test_projection_adjacency_slice;
          qcheck_projection_join_equals_matrix;
          qcheck_projection_expr_agrees;
        ] );
      ( "centrality",
        [
          Alcotest.test_case "degree" `Quick test_degree_centrality;
          Alcotest.test_case "closeness" `Quick test_closeness_path_graph;
          Alcotest.test_case "harmonic" `Quick test_harmonic_closeness;
          Alcotest.test_case "betweenness path" `Quick test_betweenness_path_graph;
          Alcotest.test_case "betweenness star" `Quick test_betweenness_star_hub;
          Alcotest.test_case "pagerank ring" `Quick test_pagerank_uniform_on_ring;
          Alcotest.test_case "pagerank sink" `Quick test_pagerank_sink_handling;
          Alcotest.test_case "eigenvector ring" `Quick test_eigenvector_ring_uniform;
          Alcotest.test_case "spreading" `Quick test_spreading_activation;
          Alcotest.test_case "katz ring" `Quick test_katz_ring_uniform;
          Alcotest.test_case "katz sink" `Quick test_katz_favours_pointed_at;
          Alcotest.test_case "hits" `Quick test_hits_bipartite;
          Alcotest.test_case "top_k" `Quick test_top_k;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "slices" `Quick test_tensor_slices;
          Alcotest.test_case "label sum" `Quick test_tensor_label_sum_counts_parallel;
          Alcotest.test_case "contract" `Quick test_tensor_contract_counts_paths;
          qcheck_tensor_contract_matches_traversal;
        ] );
      ( "assortativity",
        [
          Alcotest.test_case "discrete perfect" `Quick
            test_discrete_assortativity_perfect;
          Alcotest.test_case "discrete negative" `Quick
            test_discrete_assortativity_disassortative;
          Alcotest.test_case "scalar" `Quick test_scalar_assortativity_sign;
          Alcotest.test_case "degree nan" `Quick
            test_degree_assortativity_nan_on_regular;
          Alcotest.test_case "empty" `Quick test_assortativity_empty_graph;
        ] );
      ( "components",
        [
          Alcotest.test_case "two cycles" `Quick test_scc_two_cycles;
          Alcotest.test_case "dag singletons" `Quick test_scc_dag_all_singletons;
          Alcotest.test_case "ring" `Quick test_scc_ring_single;
          Alcotest.test_case "weak" `Quick test_weak_components;
          Alcotest.test_case "condensation" `Quick test_condensation_is_dag;
          qcheck_scc_mutual_reachability;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "path graph" `Quick test_metrics_path_graph;
          Alcotest.test_case "triangle" `Quick test_metrics_clustering_triangle;
          Alcotest.test_case "star" `Quick test_metrics_clustering_star;
          Alcotest.test_case "empty" `Quick test_metrics_empty_graph;
        ] );
      ( "communities",
        [
          Alcotest.test_case "two cliques" `Quick test_label_propagation_two_cliques;
          Alcotest.test_case "modularity" `Quick test_modularity_bounds;
          Alcotest.test_case "isolated" `Quick test_label_propagation_isolated;
        ] );
      ( "derived_view",
        [
          Alcotest.test_case "insertions" `Quick test_view_tracks_insertions;
          Alcotest.test_case "removals" `Quick test_view_tracks_removals;
          Alcotest.test_case "repeated label" `Quick test_view_repeated_label_word;
          Alcotest.test_case "dimension growth" `Quick
            test_view_dimension_growth_rebuilds;
          Alcotest.test_case "skeleton" `Quick test_view_simple_graph_skeleton;
          qcheck_view_consistency_under_churn;
        ] );
      ( "iv-c",
        [
          Alcotest.test_case "semantics differ" `Quick
            test_semantics_difference_label_blind_vs_derived;
        ] );
    ]
