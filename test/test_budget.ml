(* Execution guardrails: budgets, verdicts and graceful degradation.

   Every abort path is exercised through deterministic fault injection
   (Budget.with_fault_injection) — no test here sleeps or depends on the
   real clock, except the two that use the degenerate bounds deadline=0
   and fuel=0, which trip at the very first checkpoint on any machine. *)

open Mrpa_graph
open Mrpa_core
open Mrpa_engine
module H = Helpers

let guard_reasons =
  [ Guard.Deadline; Guard.Fuel; Guard.Memory; Guard.Cancelled ]

let strategies =
  [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ]

(* --- Budget unit behaviour ------------------------------------------- *)

let test_budget_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative deadline" true
    (raises (fun () -> Budget.create ~deadline_ms:(-1.0) ()));
  Alcotest.(check bool) "negative fuel" true
    (raises (fun () -> Budget.create ~fuel:(-1) ()));
  Alcotest.(check bool) "negative max_live" true
    (raises (fun () -> Budget.create ~max_live:(-1) ()));
  Alcotest.(check bool) "fault at 0" true
    (raises (fun () ->
         Budget.with_fault_injection ~at:0 Guard.Fuel (Budget.create ())))

let test_budget_accounting () =
  let b = Budget.create () in
  let g = Budget.guard b in
  g.Guard.poll ~cost:2 ~live:0;
  g.Guard.poll ~cost:3 ~live:5;
  Alcotest.(check int) "checkpoints" 2 (Budget.checkpoints b);
  Alcotest.(check int) "fuel used" 5 (Budget.fuel_used b);
  Alcotest.(check bool) "not tripped" true (Budget.tripped b = None)

let test_budget_fuel_trips () =
  let b = Budget.create ~fuel:3 () in
  let g = Budget.guard b in
  g.Guard.poll ~cost:1 ~live:0;
  g.Guard.poll ~cost:2 ~live:0;
  (match g.Guard.poll ~cost:1 ~live:0 with
  | exception Guard.Abort Guard.Fuel -> ()
  | _ -> Alcotest.fail "expected fuel abort");
  Alcotest.(check bool) "tripped fuel" true
    (Budget.tripped b = Some Guard.Fuel)

let test_budget_memory_trips () =
  let b = Budget.create ~max_live:10 () in
  let g = Budget.guard b in
  g.Guard.poll ~cost:0 ~live:10;
  match g.Guard.poll ~cost:0 ~live:11 with
  | exception Guard.Abort Guard.Memory -> ()
  | _ -> Alcotest.fail "expected memory abort"

let test_budget_zero_deadline_trips_immediately () =
  let b = Budget.create ~deadline_ms:0.0 () in
  let g = Budget.guard b in
  match g.Guard.poll ~cost:0 ~live:0 with
  | exception Guard.Abort Guard.Deadline -> ()
  | _ -> Alcotest.fail "expected deadline abort"

let test_budget_cancel () =
  let b = Budget.create () in
  Alcotest.(check bool) "fresh" false (Budget.cancelled b);
  Budget.cancel b;
  Alcotest.(check bool) "flag set" true (Budget.cancelled b);
  let g = Budget.guard b in
  match g.Guard.poll ~cost:0 ~live:0 with
  | exception Guard.Abort Guard.Cancelled -> ()
  | _ -> Alcotest.fail "expected cancellation abort"

let test_budget_reraises_once_tripped () =
  let b = Budget.with_fault_injection ~at:1 Guard.Fuel (Budget.create ()) in
  let g = Budget.guard b in
  (match g.Guard.poll ~cost:1 ~live:0 with
  | exception Guard.Abort Guard.Fuel -> ()
  | _ -> Alcotest.fail "expected injected abort");
  let checkpoints = Budget.checkpoints b in
  (* Subsequent polls must keep raising and must not advance accounting:
     the run is over, nested loops are just unwinding. *)
  (match g.Guard.poll ~cost:100 ~live:100 with
  | exception Guard.Abort Guard.Fuel -> ()
  | _ -> Alcotest.fail "expected re-raise");
  Alcotest.(check int) "accounting frozen" checkpoints
    (Budget.checkpoints b)

let test_verdict_logic () =
  let open Err in
  Alcotest.(check bool) "no budget, no limit" true
    (Budget.verdict ~returned:7 None = Complete);
  Alcotest.(check bool) "limit reached" true
    (Budget.verdict ~limit:5 ~returned:5 None = Partial Limit);
  Alcotest.(check bool) "limit not reached" true
    (Budget.verdict ~limit:5 ~returned:4 None = Complete);
  let b = Budget.with_fault_injection ~at:1 Guard.Memory (Budget.create ()) in
  let g = Budget.guard b in
  (try g.Guard.poll ~cost:0 ~live:0 with Guard.Abort _ -> ());
  Alcotest.(check bool) "tripped wins over limit" true
    (Budget.verdict ~limit:5 ~returned:5 (Some b) = Partial Memory)

(* --- Fault injection through the whole engine ------------------------ *)

let query_text = "E . E*"

let full_denotation g ~max_length =
  (Engine.query_exn ~strategy:Plan.Reference ~max_length g query_text)
    .Engine.paths

(* Each backend, aborted by each reason, must return a sound subset and a
   truthful verdict naming that reason. *)
let test_fault_injection_all_backends_all_reasons () =
  let g = H.paper_graph () in
  let max_length = 4 in
  let full = full_denotation g ~max_length in
  List.iter
    (fun strategy ->
      List.iter
        (fun reason ->
          let budget =
            Budget.with_fault_injection ~at:3 reason (Budget.create ())
          in
          let r =
            Engine.query_exn ~strategy ~max_length ~budget g query_text
          in
          let name =
            Printf.sprintf "%s/%s"
              (Plan.strategy_name strategy)
              (Guard.reason_name reason)
          in
          Alcotest.(check bool)
            (name ^ " verdict") true
            (r.Engine.verdict = Err.Partial (Err.of_guard reason));
          Alcotest.(check bool)
            (name ^ " sound subset") true
            (Path_set.subset r.Engine.paths full))
        guard_reasons)
    strategies

(* A fault injected far beyond the run's checkpoint count never fires: the
   run completes, and completeness means the full answer. *)
let test_late_fault_is_complete () =
  let g = H.paper_graph () in
  let max_length = 3 in
  let full = full_denotation g ~max_length in
  List.iter
    (fun strategy ->
      let budget =
        Budget.with_fault_injection ~at:1_000_000 Guard.Deadline
          (Budget.create ())
      in
      let r = Engine.query_exn ~strategy ~max_length ~budget g query_text in
      Alcotest.(check bool)
        (Plan.strategy_name strategy ^ " complete") true
        (r.Engine.verdict = Err.Complete);
      Alcotest.check H.path_set
        (Plan.strategy_name strategy ^ " full answer")
        full r.Engine.paths)
    strategies

let test_zero_fuel_still_sound () =
  let g = H.paper_graph () in
  List.iter
    (fun strategy ->
      let budget = Budget.create ~fuel:0 () in
      let r =
        Engine.query_exn ~strategy ~max_length:4 ~budget g query_text
      in
      Alcotest.(check bool)
        (Plan.strategy_name strategy ^ " partial fuel") true
        (r.Engine.verdict = Err.Partial Err.Fuel);
      Alcotest.(check bool)
        (Plan.strategy_name strategy ^ " subset") true
        (Path_set.subset r.Engine.paths (full_denotation g ~max_length:4)))
    strategies

(* The generator polls before banking, so a memory budget is a hard cap on
   the answer it materialises. *)
let test_bfs_memory_budget_is_hard_cap () =
  let g = H.paper_graph () in
  let budget = Budget.create ~max_live:3 () in
  let r =
    Engine.query_exn ~strategy:Plan.Product_bfs ~max_length:4 ~budget g
      query_text
  in
  Alcotest.(check bool) "at most max_live paths" true
    (Path_set.cardinal r.Engine.paths <= 3);
  Alcotest.(check bool) "partial memory" true
    (r.Engine.verdict = Err.Partial Err.Memory)

let test_count_governed_partial_is_lower_bound () =
  let g = H.paper_graph () in
  let full =
    match Engine.count ~max_length:4 g query_text with
    | Ok n -> n
    | Error e -> Alcotest.fail e
  in
  let budget =
    Budget.with_fault_injection ~at:2 Guard.Deadline (Budget.create ())
  in
  match Engine.count_governed ~max_length:4 ~budget g query_text with
  | Error e -> Alcotest.fail e
  | Ok (n, verdict) ->
    Alcotest.(check bool) "partial deadline" true
      (verdict = Err.Partial Err.Deadline);
    Alcotest.(check bool) "sound lower bound" true (n <= full);
    Alcotest.(check bool) "kept completed levels" true (n >= 0)

let test_run_seq_ends_gracefully_on_abort () =
  let g = H.paper_graph () in
  let plan =
    Optimizer.plan ~strategy:Plan.Product_bfs ~max_length:4 g
      (Expr.sel Selector.universe |> Expr.star)
  in
  let budget =
    Budget.with_fault_injection ~at:2 Guard.Cancelled (Budget.create ())
  in
  (* The stream must simply end — no Guard.Abort may reach the consumer. *)
  let n = Seq.length (Eval.run_seq ~budget g plan) in
  Alcotest.(check bool) "some prefix, no exception" true (n >= 0);
  Alcotest.(check bool) "budget tripped" true
    (Budget.tripped budget = Some Guard.Cancelled)

let test_metrics_budget_counters () =
  let g = H.paper_graph () in
  let budget =
    Budget.with_fault_injection ~at:4 Guard.Fuel (Budget.create ())
  in
  match
    Engine.query_profiled ~strategy:Plan.Stack_machine ~max_length:4 ~budget g
      query_text
  with
  | Error e -> Alcotest.fail e
  | Ok (_, m) ->
    let get k =
      match Metrics.counter m k with
      | Some v -> v
      | None -> Alcotest.fail (k ^ " missing from profile")
    in
    Alcotest.(check int) "checkpoints counter" (Budget.checkpoints budget)
      (get "budget.checkpoints");
    Alcotest.(check int) "fuel counter" (Budget.fuel_used budget)
      (get "budget.fuel_used");
    Alcotest.(check int) "stopped reason counter" 1
      (get "budget.stopped.fuel")

(* --- Properties ------------------------------------------------------- *)

(* A budget-aborted run is a sound partial answer: a subset of the full
   denotation, with a verdict that never claims completeness when paths
   were dropped. *)
let qcheck_aborted_run_sound_and_truthful =
  H.qtest ~count:150 "budget abort: subset + truthful verdict"
    QCheck2.Gen.(
      let* base = H.with_graph_gen in
      let* strategy_ix = int_bound 2 in
      let* reason_ix = int_bound 3 in
      let* at = int_range 1 25 in
      return (base, strategy_ix, reason_ix, at))
    (fun ((recipe_aux, strategy_ix, reason_ix, at)) ->
      Printf.sprintf "%s strat=%d reason=%d at=%d"
        (H.print_with_graph recipe_aux)
        strategy_ix reason_ix at)
    (fun ((recipe, aux), strategy_ix, reason_ix, at) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let strategy = List.nth strategies strategy_ix in
      let reason = List.nth guard_reasons reason_ix in
      let max_length = 3 in
      let full =
        (Engine.query_expr ~strategy:Plan.Reference ~max_length g r)
          .Engine.paths
      in
      let budget =
        Budget.with_fault_injection ~at reason (Budget.create ())
      in
      let out = Engine.query_expr ~strategy ~max_length ~budget g r in
      Path_set.subset out.Engine.paths full
      &&
      match out.Engine.verdict with
      | Err.Complete -> Path_set.equal out.Engine.paths full
      | Err.Partial reported -> reported = Err.of_guard reason)

(* The simple-path restriction survives budget aborts: nothing non-simple
   leaks out of a partially evaluated run. *)
let qcheck_aborted_run_respects_simple =
  H.qtest ~count:100 "budget abort respects simple"
    QCheck2.Gen.(
      let* base = H.with_graph_gen in
      let* strategy_ix = int_bound 2 in
      let* at = int_range 1 15 in
      return (base, strategy_ix, at))
    (fun (recipe_aux, strategy_ix, at) ->
      Printf.sprintf "%s strat=%d at=%d"
        (H.print_with_graph recipe_aux)
        strategy_ix at)
    (fun ((recipe, aux), strategy_ix, at) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let r = H.random_expr rng g in
      let strategy = List.nth strategies strategy_ix in
      let budget =
        Budget.with_fault_injection ~at Guard.Deadline (Budget.create ())
      in
      let out =
        Engine.query_expr ~strategy ~simple:true ~max_length:3 ~budget g r
      in
      Path_set.fold
        (fun p acc -> acc && Path.is_simple p)
        out.Engine.paths true)

let () =
  Alcotest.run "mrpa_budget"
    [
      ( "budget",
        [
          Alcotest.test_case "validation" `Quick test_budget_validation;
          Alcotest.test_case "accounting" `Quick test_budget_accounting;
          Alcotest.test_case "fuel trips" `Quick test_budget_fuel_trips;
          Alcotest.test_case "memory trips" `Quick test_budget_memory_trips;
          Alcotest.test_case "zero deadline" `Quick
            test_budget_zero_deadline_trips_immediately;
          Alcotest.test_case "cancel" `Quick test_budget_cancel;
          Alcotest.test_case "re-raise after trip" `Quick
            test_budget_reraises_once_tripped;
          Alcotest.test_case "verdict logic" `Quick test_verdict_logic;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "all backends, all reasons" `Quick
            test_fault_injection_all_backends_all_reasons;
          Alcotest.test_case "late fault completes" `Quick
            test_late_fault_is_complete;
          Alcotest.test_case "zero fuel still sound" `Quick
            test_zero_fuel_still_sound;
          Alcotest.test_case "bfs memory hard cap" `Quick
            test_bfs_memory_budget_is_hard_cap;
          Alcotest.test_case "count lower bound" `Quick
            test_count_governed_partial_is_lower_bound;
          Alcotest.test_case "run_seq graceful end" `Quick
            test_run_seq_ends_gracefully_on_abort;
          Alcotest.test_case "profile counters" `Quick
            test_metrics_budget_counters;
        ] );
      ( "properties",
        [
          qcheck_aborted_run_sound_and_truthful;
          qcheck_aborted_run_respects_simple;
        ] );
    ]
