open Mrpa_graph
module H = Helpers

(* --- Prng ------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  for _ = 1 to 100 do
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (f >= 0.0 && f < 2.5)
  done

let test_prng_int_hits_all_residues () =
  let rng = Prng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen)

let test_prng_invalid () =
  let rng = Prng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0));
  Alcotest.check_raises "range" (Invalid_argument "Prng.int_in_range: lo > hi")
    (fun () -> ignore (Prng.int_in_range rng ~lo:3 ~hi:2))

let test_prng_shuffle_is_permutation () =
  let rng = Prng.create 9 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let parent = Prng.create 5 in
  let child = Prng.split parent in
  let c1 = Prng.next_int64 child in
  let p1 = Prng.next_int64 parent in
  Alcotest.(check bool) "streams differ" true (c1 <> p1)

let test_prng_geometric () =
  let rng = Prng.create 3 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "non-negative" true (Prng.geometric rng 0.5 >= 0)
  done;
  Alcotest.(check int) "p=1 is 0" 0 (Prng.geometric rng 1.0)

let test_prng_bernoulli_extremes () =
  let rng = Prng.create 13 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli rng 0.0)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli rng 1.0)
  done

(* --- Interner --------------------------------------------------------- *)

let test_interner_basic () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  Alcotest.(check int) "first id" 0 a;
  Alcotest.(check int) "second id" 1 b;
  Alcotest.(check int) "idempotent" a (Interner.intern t "alpha");
  Alcotest.(check string) "name" "alpha" (Interner.name t a);
  Alcotest.(check (option int)) "find" (Some 1) (Interner.find t "beta");
  Alcotest.(check (option int)) "find missing" None (Interner.find t "gamma");
  Alcotest.(check int) "cardinal" 2 (Interner.cardinal t)

let test_interner_growth () =
  let t = Interner.create ~capacity:2 () in
  for i = 0 to 99 do
    Alcotest.(check int) "sequential ids" i (Interner.intern t (string_of_int i))
  done;
  Alcotest.(check int) "cardinal" 100 (Interner.cardinal t);
  Alcotest.(check string) "lookup survives growth" "57" (Interner.name t 57)

let test_interner_copy_independent () =
  let t = Interner.create () in
  ignore (Interner.intern t "x");
  let c = Interner.copy t in
  ignore (Interner.intern c "y");
  Alcotest.(check int) "copy grew" 2 (Interner.cardinal c);
  Alcotest.(check int) "original untouched" 1 (Interner.cardinal t)

let test_interner_name_unknown () =
  let t = Interner.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Interner.name: unknown id")
    (fun () -> ignore (Interner.name t 3));
  Alcotest.(check (option string)) "name_opt" None (Interner.name_opt t 3)

let test_interner_to_list_order () =
  let t = Interner.create () in
  List.iter (fun s -> ignore (Interner.intern t s)) [ "c"; "a"; "b" ];
  Alcotest.(check (list (pair int string)))
    "insertion order"
    [ (0, "c"); (1, "a"); (2, "b") ]
    (Interner.to_list t)

(* --- Edge ------------------------------------------------------------- *)

let test_edge_projections () =
  (* γ⁻, γ⁺ and ω on a concrete edge, as in §II. *)
  let e = Edge.v 1 7 2 in
  Alcotest.(check int) "tail" 1 (Edge.tail e);
  Alcotest.(check int) "label" 7 (Edge.label e);
  Alcotest.(check int) "head" 2 (Edge.head e);
  Alcotest.(check bool) "loop" false (Edge.is_loop e);
  Alcotest.(check bool) "loop true" true (Edge.is_loop (Edge.v 3 0 3))

let test_edge_adjacent () =
  Alcotest.(check bool) "adjacent" true (Edge.adjacent (Edge.v 1 0 2) (Edge.v 2 1 3));
  Alcotest.(check bool) "not adjacent" false
    (Edge.adjacent (Edge.v 1 0 2) (Edge.v 3 1 2))

let test_edge_reverse () =
  let e = Edge.v 1 5 2 in
  Alcotest.check H.edge "reverse" (Edge.v 2 5 1) (Edge.reverse e);
  Alcotest.check H.edge "involution" e (Edge.reverse (Edge.reverse e))

let test_edge_order_total () =
  let es = [ Edge.v 0 0 0; Edge.v 0 0 1; Edge.v 0 1 0; Edge.v 1 0 0 ] in
  let sorted = List.sort Edge.compare es in
  Alcotest.(check (list H.edge)) "lexicographic by tail,label,head" es sorted

(* --- Path ------------------------------------------------------------- *)

let path_ij = Edge.v 0 0 1 (* (i,α,j) with i=0,j=1,α=0 *)
let path_jk = Edge.v 1 1 2 (* (j,β,k) *)

let test_path_empty () =
  Alcotest.(check int) "length ε" 0 (Path.length Path.empty);
  Alcotest.(check bool) "is_empty" true (Path.is_empty Path.empty);
  Alcotest.(check (option int)) "tail" None (Path.tail Path.empty);
  Alcotest.(check (option int)) "head" None (Path.head Path.empty);
  Alcotest.(check bool) "ε joint" true (Path.is_joint Path.empty)

let test_path_singleton () =
  let p = Path.of_edge path_ij in
  Alcotest.(check int) "length" 1 (Path.length p);
  Alcotest.check H.edge "σ(p,1)" path_ij (Path.nth p 1);
  Alcotest.(check (option int)) "γ⁻" (Some 0) (Path.tail p);
  Alcotest.(check (option int)) "γ⁺" (Some 1) (Path.head p);
  Alcotest.(check bool) "joint" true (Path.is_joint p)

let test_path_concat_paper_example () =
  (* §II: concatenating (i,α,j) and (j,β,k) gives (i,α,j,j,β,k). *)
  let p = Path.concat (Path.of_edge path_ij) (Path.of_edge path_jk) in
  Alcotest.(check int) "length 2" 2 (Path.length p);
  Alcotest.check H.edge "σ(a,1)" path_ij (Path.nth p 1);
  Alcotest.check H.edge "σ(a,2)" path_jk (Path.nth p 2);
  Alcotest.(check (list int)) "ω′(a) = αβ" [ 0; 1 ] (Path.label_word p);
  Alcotest.(check bool) "joint" true (Path.is_joint p);
  Alcotest.(check (list int)) "itinerary" [ 0; 1; 2 ] (Path.vertices p)

let test_path_nth_bounds () =
  let p = Path.of_edge path_ij in
  Alcotest.check_raises "σ(p,0)"
    (Invalid_argument "Path.nth: index out of [1, length]") (fun () ->
      ignore (Path.nth p 0));
  Alcotest.check_raises "σ(p,2)"
    (Invalid_argument "Path.nth: index out of [1, length]") (fun () ->
      ignore (Path.nth p 2));
  Alcotest.(check (option H.edge)) "nth_opt ok" (Some path_ij) (Path.nth_opt p 1);
  Alcotest.(check (option H.edge)) "nth_opt out" None (Path.nth_opt p 5)

let test_path_disjoint_detected () =
  let p = Path.concat (Path.of_edge path_ij) (Path.of_edge (Edge.v 5 0 6)) in
  Alcotest.(check bool) "disjoint" false (Path.is_joint p);
  Alcotest.(check int) "length still 2" 2 (Path.length p)

let test_path_sub_and_visits () =
  let p = Path.of_edges [ path_ij; path_jk; Edge.v 2 0 1 ] in
  Alcotest.check H.path "sub middle" (Path.of_edge path_jk)
    (Path.sub p ~pos:2 ~len:1);
  Alcotest.check H.path "sub all" p (Path.sub p ~pos:1 ~len:3);
  Alcotest.(check bool) "visits j" true (Path.visits p 1);
  Alcotest.(check bool) "visits 9" false (Path.visits p 9)

let test_path_adjacent_epsilon () =
  (* the join side condition: ε is adjacent to everything. *)
  let p = Path.of_edge path_ij in
  Alcotest.(check bool) "ε ∘ p" true (Path.adjacent Path.empty p);
  Alcotest.(check bool) "p ∘ ε" true (Path.adjacent p Path.empty);
  Alcotest.(check bool) "p ∘ p" false (Path.adjacent p p);
  Alcotest.(check bool) "p ∘ jk" true (Path.adjacent p (Path.of_edge path_jk))

let qcheck_monoid_laws =
  H.qtest ~count:200 "path monoid laws" H.with_graph_gen H.print_with_graph
    (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let a = H.random_path rng g 4 in
      let b = H.random_path rng g 4 in
      let c = H.random_path rng g 4 in
      let open Path in
      equal (concat (concat a b) c) (concat a (concat b c))
      && equal (concat empty a) a
      && equal (concat a empty) a
      && length (concat a b) = length a + length b)

let qcheck_label_word_homomorphism =
  H.qtest ~count:200 "ω′ is a monoid homomorphism" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let a = H.random_path rng g 4 in
      let b = H.random_path rng g 4 in
      Path.label_word (Path.concat a b) = Path.label_word a @ Path.label_word b)

let qcheck_walks_are_joint =
  H.qtest ~count:200 "random walks are joint" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      Path.is_joint (H.random_walk rng g 6))

let qcheck_path_compare_total_order =
  H.qtest ~count:200 "path compare consistent with equal" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let a = H.random_path rng g 3 in
      let b = H.random_path rng g 3 in
      Path.equal a b = (Path.compare a b = 0)
      && Path.compare a b = -Path.compare b a)

(* --- Digraph ---------------------------------------------------------- *)

let test_digraph_add_and_indices () =
  let g = H.paper_graph () in
  Alcotest.(check int) "|V|" 3 (Digraph.n_vertices g);
  Alcotest.(check int) "|E|" 7 (Digraph.n_edges g);
  Alcotest.(check int) "|Ω|" 2 (Digraph.n_labels g);
  let i = H.v g "i" and j = H.v g "j" in
  Alcotest.(check int) "out i" 3 (Digraph.out_degree g i);
  Alcotest.(check int) "in j" 3 (Digraph.in_degree g j);
  let beta = H.l g "beta" in
  Alcotest.(check int) "beta edges" 4
    (List.length (Digraph.edges_with_label g beta))

let test_digraph_set_semantics () =
  let g = Digraph.create () in
  let e = Digraph.add g "a" "r" "b" in
  Alcotest.(check bool) "dup rejected" false (Digraph.add_edge g e);
  Alcotest.(check int) "|E|=1" 1 (Digraph.n_edges g)

let test_digraph_unknown_ids_rejected () =
  let g = Digraph.create () in
  ignore (Digraph.add g "a" "r" "b");
  Alcotest.check_raises "unknown tail"
    (Invalid_argument "Digraph.add_edge: unknown tail vertex") (fun () ->
      ignore (Digraph.add_edge g (Edge.v 99 0 0)))

let test_digraph_remove () =
  let g = H.paper_graph () in
  let e = H.e g "i" "alpha" "j" in
  Alcotest.(check bool) "removed" true (Digraph.remove_edge g e);
  Alcotest.(check bool) "gone" false (Digraph.mem_edge g e);
  Alcotest.(check bool) "remove again" false (Digraph.remove_edge g e);
  Alcotest.(check int) "|E|" 6 (Digraph.n_edges g);
  Alcotest.(check int) "out i shrank" 2 (Digraph.out_degree g (H.v g "i"));
  (* vertex survives edge removal *)
  Alcotest.(check bool) "vertex kept" true (Digraph.mem_vertex g (H.v g "i"))

let test_digraph_successors_filtered () =
  let g = H.paper_graph () in
  let j = H.v g "j" and beta = H.l g "beta" in
  let succ = List.sort Int.compare (Digraph.successors g ~label:beta j) in
  (* j -beta-> k, j, i *)
  Alcotest.(check (list int)) "β-successors of j"
    [ H.v g "i"; H.v g "j"; H.v g "k" ]
    (List.sort Int.compare succ);
  Alcotest.(check (list int)) "α-predecessors of j"
    [ H.v g "i"; H.v g "k" ]
    (List.sort Int.compare (Digraph.predecessors g ~label:(H.l g "alpha") j))

let test_digraph_copy_independent () =
  let g = H.paper_graph () in
  let h = Digraph.copy g in
  ignore (Digraph.add h "x" "alpha" "y");
  Alcotest.(check int) "copy grew" (Digraph.n_edges g + 1) (Digraph.n_edges h);
  Alcotest.(check int) "original intact" 3 (Digraph.n_vertices g);
  (* ids preserved by copy *)
  Alcotest.(check string) "names preserved" "i" (Digraph.vertex_name h (H.v g "i"))

let test_digraph_edge_insertion_order () =
  let g = Digraph.create () in
  let e1 = Digraph.add g "a" "r" "b" in
  let e2 = Digraph.add g "b" "r" "c" in
  let e3 = Digraph.add g "a" "r" "c" in
  Alcotest.(check (list H.edge)) "insertion order" [ e1; e2; e3 ] (Digraph.edges g);
  Alcotest.(check (list H.edge)) "out order" [ e1; e3 ]
    (Digraph.out_edges g (H.v g "a"))

let test_digraph_materialise_reverse () =
  let g = H.paper_graph () in
  let alpha = H.l g "alpha" in
  let n_alpha = List.length (Digraph.edges_with_label g alpha) in
  let rev = Digraph.materialise_reverse g alpha in
  Alcotest.(check string) "label name" "alpha_rev" (Digraph.label_name g rev);
  Alcotest.(check int) "one reversed edge per original" n_alpha
    (List.length (Digraph.edges_with_label g rev));
  Alcotest.(check bool) "(j,alpha_rev,i) present" true
    (Digraph.mem_edge g
       (Edge.make ~tail:(H.v g "j") ~label:rev ~head:(H.v g "i")));
  (* idempotent *)
  let before = Digraph.n_edges g in
  let rev' = Digraph.materialise_reverse g alpha in
  Alcotest.(check int) "same label id" rev rev';
  Alcotest.(check int) "no new edges" before (Digraph.n_edges g)

let test_path_is_simple () =
  let e = Edge.v in
  Alcotest.(check bool) "ε simple" true (Path.is_simple Path.empty);
  Alcotest.(check bool) "edge simple" true (Path.is_simple (Path.of_edge (e 0 0 1)));
  Alcotest.(check bool) "loop not simple" false
    (Path.is_simple (Path.of_edge (e 0 0 0)));
  Alcotest.(check bool) "chain simple" true
    (Path.is_simple (Path.of_edges [ e 0 0 1; e 1 0 2 ]));
  Alcotest.(check bool) "revisit not simple" false
    (Path.is_simple (Path.of_edges [ e 0 0 1; e 1 0 0 ]));
  (* disjoint path: itinerary is tails + final head *)
  Alcotest.(check bool) "disjoint fresh vertices simple" true
    (Path.is_simple (Path.of_edges [ e 0 0 1; e 2 0 3 ]));
  Alcotest.(check bool) "disjoint tail revisit not simple" false
    (Path.is_simple (Path.of_edges [ e 0 0 1; e 0 0 3 ]))

let qcheck_is_simple_matches_definition =
  H.qtest ~count:200 "is_simple = itinerary duplicate-free" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let p = H.random_path rng g 4 in
      let vs = Path.vertices p in
      let distinct = List.sort_uniq Int.compare vs in
      Path.is_simple p = (List.length distinct = List.length vs))

(* --- Generate --------------------------------------------------------- *)

let test_generate_uniform_counts () =
  let g =
    Generate.uniform ~rng:(Prng.create 1) ~n_vertices:10 ~n_edges:30 ~n_labels:3
  in
  Alcotest.(check int) "|V|" 10 (Digraph.n_vertices g);
  Alcotest.(check int) "|E|" 30 (Digraph.n_edges g);
  Alcotest.(check bool) "|Ω| ≤ 3" true (Digraph.n_labels g <= 3)

let test_generate_uniform_deterministic () =
  let g1 =
    Generate.uniform ~rng:(Prng.create 5) ~n_vertices:8 ~n_edges:20 ~n_labels:2
  in
  let g2 =
    Generate.uniform ~rng:(Prng.create 5) ~n_vertices:8 ~n_edges:20 ~n_labels:2
  in
  Alcotest.(check (list H.edge)) "same edges" (Digraph.edges g1) (Digraph.edges g2)

let test_generate_uniform_too_many_edges () =
  Alcotest.check_raises "overfull"
    (Invalid_argument "Generate.uniform: more edges than distinct triples")
    (fun () ->
      ignore
        (Generate.uniform ~rng:(Prng.create 0) ~n_vertices:2 ~n_edges:13
           ~n_labels:3))

let test_generate_ring () =
  let g = Generate.ring ~n:6 ~n_labels:2 in
  Alcotest.(check int) "|E|" 6 (Digraph.n_edges g);
  List.iter
    (fun v ->
      Alcotest.(check int) "out=1" 1 (Digraph.out_degree g v);
      Alcotest.(check int) "in=1" 1 (Digraph.in_degree g v))
    (Digraph.vertices g)

let test_generate_lattice () =
  let g = Generate.lattice ~rows:3 ~cols:4 in
  Alcotest.(check int) "|V|" 12 (Digraph.n_vertices g);
  (* edges: right 3*(4-1) + down (3-1)*4 *)
  Alcotest.(check int) "|E|" 17 (Digraph.n_edges g)

let test_generate_star () =
  let g = Generate.star ~n_leaves:5 in
  let hub = H.v g "hub" in
  Alcotest.(check int) "hub out" 5 (Digraph.out_degree g hub);
  Alcotest.(check int) "|V|" 6 (Digraph.n_vertices g)

let test_generate_complete () =
  let g = Generate.complete ~n:4 ~n_labels:2 in
  Alcotest.(check int) "|E| = n(n-1)k" 24 (Digraph.n_edges g)

let test_generate_layered_is_dag () =
  let g =
    Generate.layered ~rng:(Prng.create 2) ~layers:4 ~width:3 ~fanout:2
      ~n_labels:2
  in
  (* all edges go from layer l to layer l+1: vertex ids are layer-major *)
  Digraph.iter_edges
    (fun e ->
      let layer v = Vertex.to_int v / 3 in
      Alcotest.(check int) "forward edge" (layer (Edge.tail e) + 1)
        (layer (Edge.head e)))
    g

let test_generate_preferential_degrees () =
  let g =
    Generate.preferential ~rng:(Prng.create 3) ~n_vertices:50 ~out_degree:2
      ~n_labels:2
  in
  Alcotest.(check int) "|V|" 50 (Digraph.n_vertices g);
  Alcotest.(check bool) "some edges" true (Digraph.n_edges g > 40)

let test_generate_social_schema () =
  let g = Generate.social ~rng:(Prng.create 4) ~n_people:30 ~n_orgs:3 ~n_projects:5 in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exists") true
        (Option.is_some (Digraph.find_label g name)))
    [ "knows"; "works_for"; "member_of"; "created"; "likes" ];
  (* every person works somewhere *)
  let works_for = H.l g "works_for" in
  Alcotest.(check int) "works_for edges" 30
    (List.length (Digraph.edges_with_label g works_for))

let test_generate_knowledge_base () =
  let g = Generate.knowledge_base ~rng:(Prng.create 6) ~n_entities:30 in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exists") true
        (Option.is_some (Digraph.find_label g name)))
    [ "acted_in"; "directed"; "influenced"; "married_to"; "born_in"; "set_in" ]

let test_generate_bipartite () =
  let g =
    Generate.bipartite ~rng:(Prng.create 8) ~left:5 ~right:7 ~n_edges:20
      ~n_labels:2
  in
  Alcotest.(check int) "|V|" 12 (Digraph.n_vertices g);
  Alcotest.(check int) "|E|" 20 (Digraph.n_edges g);
  (* all edges left -> right *)
  Digraph.iter_edges
    (fun e ->
      let tn = Digraph.vertex_name g (Edge.tail e) in
      let hn = Digraph.vertex_name g (Edge.head e) in
      Alcotest.(check bool) "left to right" true (tn.[0] = 'l' && hn.[0] = 'r'))
    g

let test_generate_tree () =
  let g = Generate.tree ~branching:3 ~depth:2 in
  (* 1 + 3 + 9 vertices, 12 edges *)
  Alcotest.(check int) "|V|" 13 (Digraph.n_vertices g);
  Alcotest.(check int) "|E|" 12 (Digraph.n_edges g);
  let root = Digraph.vertex g "n0" in
  Alcotest.(check int) "root out" 3 (Digraph.out_degree g root);
  Alcotest.(check int) "root in" 0 (Digraph.in_degree g root);
  (* every non-root vertex has exactly one parent *)
  List.iter
    (fun v ->
      if not (Vertex.equal v root) then
        Alcotest.(check int) "one parent" 1 (Digraph.in_degree g v))
    (Digraph.vertices g)

let test_generate_fig1_skeleton () =
  let g = Generate.fig1 ~rng:(Prng.create 7) ~n_noise_vertices:5 ~n_noise_edges:10 in
  List.iter
    (fun (t, l, h) ->
      Alcotest.(check bool)
        (Printf.sprintf "(%s,%s,%s) present" t l h)
        true
        (Digraph.mem_edge g (H.e g t l h)))
    [ ("i", "alpha", "j"); ("j", "alpha", "i"); ("i", "alpha", "k") ]

(* --- Stat ---------------------------------------------------------------- *)

let test_stat_degree_summaries () =
  let g = Generate.star ~n_leaves:4 in
  let od = Stat.out_degrees g in
  Alcotest.(check int) "max out (hub)" 4 od.Stat.max_degree;
  Alcotest.(check int) "min out (leaf)" 0 od.Stat.min_degree;
  Alcotest.(check (float 1e-9)) "mean out" 0.8 od.Stat.mean;
  Alcotest.(check (float 1e-9)) "median out" 0.0 od.Stat.median;
  let id = Stat.in_degrees g in
  Alcotest.(check int) "max in" 1 id.Stat.max_degree

let test_stat_density_reciprocity () =
  let g = H.paper_graph () in
  (* density = 7 / (9 * 2) *)
  Alcotest.(check (float 1e-9)) "density" (7.0 /. 18.0) (Stat.density g);
  (* mirrored same-label edges: only the loop (j,beta,j) *)
  Alcotest.(check (float 1e-9)) "reciprocity" (1.0 /. 7.0) (Stat.reciprocity g);
  let g2 = Digraph.create () in
  ignore (Digraph.add g2 "a" "r" "b");
  ignore (Digraph.add g2 "b" "r" "a");
  ignore (Digraph.add g2 "a" "r" "c");
  Alcotest.(check (float 1e-9)) "2 of 3 mirrored" (2.0 /. 3.0)
    (Stat.reciprocity g2);
  (* loops count as reciprocated *)
  let g3 = Digraph.create () in
  ignore (Digraph.add g3 "a" "r" "a");
  Alcotest.(check (float 1e-9)) "loop" 1.0 (Stat.reciprocity g3)

let test_stat_parallel_and_cooccurrence () =
  let g = H.parallel_graph () in
  (* a→b has {r0,r1}, b→c has {r0,r1,r2}, c→a has {r0}: 2 parallel pairs *)
  Alcotest.(check int) "parallel pairs" 2 (Stat.parallel_pairs g);
  let co = Stat.label_cooccurrence g in
  let r0 = H.l g "r0" and r1 = H.l g "r1" in
  let find a b = List.find_opt (fun (x, y, _) -> x = a && y = b) co in
  (match find r0 r1 with
  | Some (_, _, c) -> Alcotest.(check int) "r0&r1 on 2 pairs" 2 c
  | None -> Alcotest.fail "missing co-occurrence entry");
  match find r0 r0 with
  | Some (_, _, c) -> Alcotest.(check int) "r0 on 3 pairs" 3 c
  | None -> Alcotest.fail "missing diagonal entry"

let test_stat_histograms () =
  let g = H.paper_graph () in
  let hist = Stat.label_histogram g in
  (match hist with
  | (top, 4) :: _ ->
    Alcotest.(check string) "beta is most frequent" "beta"
      (Digraph.label_name g top)
  | _ -> Alcotest.fail "unexpected histogram head");
  let dh = Stat.degree_histogram g in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 dh in
  Alcotest.(check int) "histogram covers all vertices" 3 total

let test_stat_per_label_degrees () =
  let g = H.paper_graph () in
  let s = Stat.out_degrees_of_label g (H.l g "alpha") in
  (* α out-degrees: i:2, j:0, k:1 *)
  Alcotest.(check int) "max" 2 s.Stat.max_degree;
  Alcotest.(check (float 1e-9)) "mean" 1.0 s.Stat.mean

(* --- Io / Dot ---------------------------------------------------------- *)

let graphs_isomorphic_by_name g h =
  (* same named vertex set and named edge set *)
  let named_edges g =
    List.sort compare
      (List.map
         (fun e ->
           ( Digraph.vertex_name g (Edge.tail e),
             Digraph.label_name g (Edge.label e),
             Digraph.vertex_name g (Edge.head e) ))
         (Digraph.edges g))
  in
  let named_vertices g =
    List.sort compare (List.map (Digraph.vertex_name g) (Digraph.vertices g))
  in
  named_edges g = named_edges h && named_vertices g = named_vertices h

let test_io_roundtrip_fixture () =
  let g = H.paper_graph () in
  let h = Io.of_string (Io.to_string g) in
  Alcotest.(check bool) "roundtrip" true (graphs_isomorphic_by_name g h)

let test_io_preserves_isolated_vertices () =
  let g = Digraph.create () in
  ignore (Digraph.vertex g "lonely");
  ignore (Digraph.add g "a" "r" "b");
  let h = Io.of_string (Io.to_string g) in
  Alcotest.(check bool) "lonely kept" true
    (Option.is_some (Digraph.find_vertex h "lonely"))

let test_io_comments_and_blanks () =
  let g = Io.of_string "# comment\n\na\tr\tb\n  \nb\tr\tc\n" in
  Alcotest.(check int) "two edges" 2 (Digraph.n_edges g)

let test_io_malformed () =
  (try
     ignore (Io.of_string "a\tb\n");
     Alcotest.fail "expected Malformed"
   with
  | Io.Malformed (line, _) -> Alcotest.(check int) "line number" 1 line)

let qcheck_io_roundtrip =
  H.qtest ~count:50 "io roundtrip on random graphs" H.recipe_gen H.print_recipe
    (fun recipe ->
      let g = H.graph_of_recipe recipe in
      graphs_isomorphic_by_name g (Io.of_string (Io.to_string g)))

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let test_graphml_output () =
  let g = H.paper_graph () in
  let xml = Graphml.to_string g in
  Alcotest.(check bool) "xml declaration" true
    (String.length xml > 5 && String.sub xml 0 5 = "<?xml");
  Alcotest.(check bool) "node with name" true
    (contains "<data key=\"labelV\">i</data>" xml);
  Alcotest.(check bool) "edge with label" true
    (contains "<data key=\"labelE\">alpha</data>" xml);
  Alcotest.(check bool) "closes" true (contains "</graphml>" xml)

let test_graphml_escaping () =
  let g = Digraph.create () in
  ignore (Digraph.add g "a<b" "r&s" "c\"d");
  let xml = Graphml.to_string g in
  Alcotest.(check bool) "lt escaped" true (contains "a&lt;b" xml);
  Alcotest.(check bool) "amp escaped" true (contains "r&amp;s" xml);
  Alcotest.(check bool) "quot escaped" true (contains "c&quot;d" xml);
  Alcotest.(check bool) "raw not present" false (contains ">a<b<" xml)

(* --- Weights -------------------------------------------------------------- *)

let test_weights_resolution_order () =
  let g = H.paper_graph () in
  let w = Weights.create ~default:2.0 () in
  let alpha = H.l g "alpha" in
  let e_ij = H.e g "i" "alpha" "j" in
  let e_ik = H.e g "i" "alpha" "k" in
  Alcotest.(check (float 1e-9)) "default" 2.0 (Weights.weight w e_ij);
  Weights.set_label w alpha 5.0;
  Alcotest.(check (float 1e-9)) "label override" 5.0 (Weights.weight w e_ij);
  Weights.set_edge w e_ij 7.5;
  Alcotest.(check (float 1e-9)) "edge override wins" 7.5 (Weights.weight w e_ij);
  Alcotest.(check (float 1e-9)) "sibling keeps label weight" 5.0
    (Weights.weight w e_ik);
  (* β edges still default *)
  Alcotest.(check (float 1e-9)) "beta default" 2.0
    (Weights.weight w (H.e g "j" "beta" "k"))

let test_weights_total () =
  let g = H.paper_graph () in
  let w = Weights.create ~default:3.0 () in
  let p = Path.of_edges [ H.e g "i" "alpha" "j"; H.e g "j" "beta" "k" ] in
  Alcotest.(check (float 1e-9)) "sum" 6.0 (Weights.total w p);
  Alcotest.(check (float 1e-9)) "epsilon" 0.0 (Weights.total w Path.empty)

let test_weights_roundtrip () =
  let g = H.paper_graph () in
  let w = Weights.create ~default:1.5 () in
  Weights.set_label w (H.l g "alpha") 4.0;
  Weights.set_edge w (H.e g "j" "beta" "i") 0.25;
  let w' = Weights.of_string g (Weights.to_string g w) in
  Alcotest.(check (float 1e-9)) "default survives" 1.5 (Weights.default w');
  Alcotest.(check (float 1e-9)) "label survives" 4.0
    (Weights.weight w' (H.e g "i" "alpha" "j"));
  Alcotest.(check (float 1e-9)) "edge survives" 0.25
    (Weights.weight w' (H.e g "j" "beta" "i"))

let test_weights_malformed () =
  let g = H.paper_graph () in
  (try
     ignore (Weights.of_string g "label\tnosuch\t2.0");
     Alcotest.fail "expected Malformed"
   with Weights.Malformed (line, _) -> Alcotest.(check int) "line" 1 line);
  try
    ignore (Weights.of_string g "nonsense");
    Alcotest.fail "expected Malformed"
  with Weights.Malformed _ -> ()

(* --- Journal -------------------------------------------------------------- *)

let with_tmp_journal f =
  let path = Filename.temp_file "mrpa_journal" ".log" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_journal_records_and_replays () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      ignore (Digraph.add g "b" "r" "c");
      let e_ab = H.e g "a" "r" "b" in
      ignore (Digraph.remove_edge g e_ab);
      Alcotest.(check int) "three entries" 3 (Journal.entries_written j);
      Journal.close j;
      let h = Journal.replay path in
      Alcotest.(check int) "one edge survives" 1 (Digraph.n_edges h);
      Alcotest.(check bool) "b->c present" true
        (Digraph.mem_edge h (H.e h "b" "r" "c"));
      Alcotest.(check bool) "a kept as vertex" true
        (Option.is_some (Digraph.find_vertex h "a")))

let test_journal_reopen_continues () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      Journal.close j;
      (* reopen: replay then continue *)
      let g2 = Digraph.create () in
      let j2 = Journal.attach g2 path in
      Alcotest.(check int) "replayed" 1 (Digraph.n_edges g2);
      ignore (Digraph.add g2 "b" "r" "c");
      Journal.sync j2;
      Journal.close j2;
      let g3 = Journal.replay path in
      Alcotest.(check int) "both edges" 2 (Digraph.n_edges g3))

let test_journal_compact () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      for i = 0 to 9 do
        ignore (Digraph.add g (Printf.sprintf "v%d" i) "r" "hub")
      done;
      (* churn: remove half *)
      for i = 0 to 4 do
        ignore
          (Digraph.remove_edge g (H.e g (Printf.sprintf "v%d" i) "r" "hub"))
      done;
      let size_before = (Unix.stat path).Unix.st_size in
      Journal.compact j;
      let size_after = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "snapshot smaller" true (size_after < size_before);
      (* still appendable and still replayable *)
      ignore (Digraph.add g "extra" "r" "hub");
      Journal.close j;
      let h = Journal.replay path in
      Alcotest.(check int) "6 edges after compaction+append" 6 (Digraph.n_edges h);
      Alcotest.(check bool) "isolated removed-edge vertices survive" true
        (Option.is_some (Digraph.find_vertex h "v0")))

let test_journal_closed_stops_recording () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      Journal.close j;
      ignore (Digraph.add g "b" "r" "c");
      let h = Journal.replay path in
      Alcotest.(check int) "only pre-close edge" 1 (Digraph.n_edges h))

let test_observer_deregistration () =
  let g = Digraph.create () in
  let hits_a = ref 0 and hits_b = ref 0 and removals = ref 0 in
  let obs_a = fun (_ : Edge.t) -> incr hits_a in
  let obs_b = fun (_ : Edge.t) -> incr hits_b in
  let obs_r = fun (_ : Edge.t) -> incr removals in
  Digraph.on_edge_added g obs_a;
  Digraph.on_edge_added g obs_b;
  Digraph.on_edge_removed g obs_r;
  ignore (Digraph.add g "a" "r" "b");
  Alcotest.(check int) "both added-observers fired" 2 (!hits_a + !hits_b);
  (* deregister one: only the other keeps firing *)
  Digraph.off_edge_added g obs_a;
  ignore (Digraph.add g "b" "r" "c");
  Alcotest.(check int) "a detached" 1 !hits_a;
  Alcotest.(check int) "b still attached" 2 !hits_b;
  (* deregistering an unknown closure is a no-op *)
  Digraph.off_edge_added g (fun (_ : Edge.t) -> ());
  ignore (Digraph.add g "c" "r" "d");
  Alcotest.(check int) "b unaffected by stranger removal" 3 !hits_b;
  Digraph.off_edge_removed g obs_r;
  ignore (Digraph.remove_edge g (H.e g "a" "r" "b"));
  Alcotest.(check int) "removed-observer detached" 0 !removals

let test_freeze_rejects_mutation () =
  let g = H.paper_graph () in
  let n = Digraph.n_edges g in
  Digraph.freeze g;
  Alcotest.(check bool) "is_frozen" true (Digraph.is_frozen g);
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "add rejected" true
    (raises (fun () -> Digraph.add g "x" "r" "y"));
  Alcotest.(check bool) "remove rejected" true
    (raises (fun () -> Digraph.remove_edge g (H.e g "i" "alpha" "j")));
  Alcotest.(check bool) "observer registration rejected" true
    (raises (fun () -> Digraph.on_edge_added g (fun _ -> ())));
  Alcotest.(check bool) "unknown-name interning rejected" true
    (raises (fun () -> Digraph.vertex g "brand_new"));
  (* pure reads still work *)
  Alcotest.(check int) "reads unaffected" n (Digraph.n_edges g);
  Alcotest.(check bool) "known name resolves" true
    (Digraph.mem_edge g (H.e g "i" "alpha" "j"))

let test_journal_compact_leaves_no_tmp () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      ignore (Digraph.remove_edge g (H.e g "a" "r" "b"));
      ignore (Digraph.add g "a" "r" "c");
      Journal.compact j;
      (* the fsync'd temporary snapshot must have been renamed away *)
      Alcotest.(check bool) "no .compact tmp file" false
        (Sys.file_exists (path ^ ".compact"));
      (* and the journal must still be recording into the compacted file *)
      ignore (Digraph.add g "c" "r" "d");
      Journal.close j;
      let h = Journal.replay path in
      Alcotest.(check int) "compacted + appended state" 2 (Digraph.n_edges h));
  (* compacting a closed journal is a usage error, not silent corruption *)
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      Journal.close j;
      Alcotest.(check bool) "compact after close raises" true
        (match Journal.compact j with
        | () -> false
        | exception Invalid_argument _ -> true))

let test_journal_close_detaches_observers () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      Journal.close j;
      (* after close the journal's observers are gone from the graph, so
         churning the graph touches neither the file nor the closed
         channel (a non-detached observer would raise on the closed
         channel or grow the file) *)
      let size_at_close = (Unix.stat path).Unix.st_size in
      for i = 0 to 99 do
        ignore (Digraph.add g (Printf.sprintf "v%d" i) "r" "hub")
      done;
      ignore (Digraph.remove_edge g (H.e g "v0" "r" "hub"));
      Alcotest.(check int) "file untouched after close"
        size_at_close
        (Unix.stat path).Unix.st_size)

let qcheck_journal_roundtrip_random_churn =
  H.qtest ~count:40 "journal replay = live graph under churn" H.with_graph_gen
    H.print_with_graph (fun (recipe, aux) ->
      with_tmp_journal (fun path ->
          let g = Digraph.create () in
          let j = Journal.attach g path in
          (* churn: build the recipe graph through the journal, with
             interleaved removals *)
          let source = H.graph_of_recipe recipe in
          let rng = Prng.create aux in
          List.iter
            (fun e ->
              ignore
                (Digraph.add g
                   (Digraph.vertex_name source (Edge.tail e))
                   (Digraph.label_name source (Edge.label e))
                   (Digraph.vertex_name source (Edge.head e)));
              if Prng.bernoulli rng 0.2 then begin
                match Digraph.edges g with
                | [] -> ()
                | es -> ignore (Digraph.remove_edge g (Prng.pick_list rng es))
              end)
            (Digraph.edges source);
          Journal.close j;
          let h = Journal.replay path in
          let edges_of gr =
            List.sort compare
              (List.map
                 (fun e ->
                   ( Digraph.vertex_name gr (Edge.tail e),
                     Digraph.label_name gr (Edge.label e),
                     Digraph.vertex_name gr (Edge.head e) ))
                 (Digraph.edges gr))
          in
          edges_of g = edges_of h))

let test_dot_output () =
  let g = H.paper_graph () in
  let dot = Dot.to_string ~name:"paper" g in
  Alcotest.(check bool) "header" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "edge line" true
    (contains "\"i\" -> \"j\" [label=\"alpha\"" dot);
  Alcotest.(check bool) "closes" true (contains "}" dot)

let () =
  Alcotest.run "mrpa_graph"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "residues" `Quick test_prng_int_hits_all_residues;
          Alcotest.test_case "invalid args" `Quick test_prng_invalid;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "geometric" `Quick test_prng_geometric;
          Alcotest.test_case "bernoulli" `Quick test_prng_bernoulli_extremes;
        ] );
      ( "interner",
        [
          Alcotest.test_case "basic" `Quick test_interner_basic;
          Alcotest.test_case "growth" `Quick test_interner_growth;
          Alcotest.test_case "copy" `Quick test_interner_copy_independent;
          Alcotest.test_case "unknown" `Quick test_interner_name_unknown;
          Alcotest.test_case "order" `Quick test_interner_to_list_order;
        ] );
      ( "edge",
        [
          Alcotest.test_case "projections" `Quick test_edge_projections;
          Alcotest.test_case "adjacent" `Quick test_edge_adjacent;
          Alcotest.test_case "reverse" `Quick test_edge_reverse;
          Alcotest.test_case "order" `Quick test_edge_order_total;
        ] );
      ( "path",
        [
          Alcotest.test_case "empty" `Quick test_path_empty;
          Alcotest.test_case "singleton" `Quick test_path_singleton;
          Alcotest.test_case "paper concat" `Quick test_path_concat_paper_example;
          Alcotest.test_case "nth bounds" `Quick test_path_nth_bounds;
          Alcotest.test_case "disjoint" `Quick test_path_disjoint_detected;
          Alcotest.test_case "sub/visits" `Quick test_path_sub_and_visits;
          Alcotest.test_case "epsilon adjacency" `Quick test_path_adjacent_epsilon;
          Alcotest.test_case "is_simple" `Quick test_path_is_simple;
          qcheck_is_simple_matches_definition;
          qcheck_monoid_laws;
          qcheck_label_word_homomorphism;
          qcheck_walks_are_joint;
          qcheck_path_compare_total_order;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "indices" `Quick test_digraph_add_and_indices;
          Alcotest.test_case "set semantics" `Quick test_digraph_set_semantics;
          Alcotest.test_case "unknown ids" `Quick test_digraph_unknown_ids_rejected;
          Alcotest.test_case "remove" `Quick test_digraph_remove;
          Alcotest.test_case "successors" `Quick test_digraph_successors_filtered;
          Alcotest.test_case "copy" `Quick test_digraph_copy_independent;
          Alcotest.test_case "order" `Quick test_digraph_edge_insertion_order;
          Alcotest.test_case "materialise reverse" `Quick
            test_digraph_materialise_reverse;
          Alcotest.test_case "observer deregistration" `Quick
            test_observer_deregistration;
          Alcotest.test_case "freeze" `Quick test_freeze_rejects_mutation;
        ] );
      ( "generate",
        [
          Alcotest.test_case "uniform counts" `Quick test_generate_uniform_counts;
          Alcotest.test_case "uniform determinism" `Quick
            test_generate_uniform_deterministic;
          Alcotest.test_case "uniform overfull" `Quick
            test_generate_uniform_too_many_edges;
          Alcotest.test_case "ring" `Quick test_generate_ring;
          Alcotest.test_case "lattice" `Quick test_generate_lattice;
          Alcotest.test_case "star" `Quick test_generate_star;
          Alcotest.test_case "complete" `Quick test_generate_complete;
          Alcotest.test_case "layered dag" `Quick test_generate_layered_is_dag;
          Alcotest.test_case "preferential" `Quick
            test_generate_preferential_degrees;
          Alcotest.test_case "social schema" `Quick test_generate_social_schema;
          Alcotest.test_case "knowledge base" `Quick test_generate_knowledge_base;
          Alcotest.test_case "bipartite" `Quick test_generate_bipartite;
          Alcotest.test_case "tree" `Quick test_generate_tree;
          Alcotest.test_case "fig1 skeleton" `Quick test_generate_fig1_skeleton;
        ] );
      ( "stat",
        [
          Alcotest.test_case "degree summaries" `Quick test_stat_degree_summaries;
          Alcotest.test_case "density/reciprocity" `Quick
            test_stat_density_reciprocity;
          Alcotest.test_case "parallel/cooccurrence" `Quick
            test_stat_parallel_and_cooccurrence;
          Alcotest.test_case "histograms" `Quick test_stat_histograms;
          Alcotest.test_case "per-label degrees" `Quick test_stat_per_label_degrees;
        ] );
      ( "weights",
        [
          Alcotest.test_case "resolution order" `Quick test_weights_resolution_order;
          Alcotest.test_case "total" `Quick test_weights_total;
          Alcotest.test_case "roundtrip" `Quick test_weights_roundtrip;
          Alcotest.test_case "malformed" `Quick test_weights_malformed;
        ] );
      ( "journal",
        [
          Alcotest.test_case "record/replay" `Quick test_journal_records_and_replays;
          Alcotest.test_case "reopen" `Quick test_journal_reopen_continues;
          Alcotest.test_case "compact" `Quick test_journal_compact;
          Alcotest.test_case "compact crash-safety" `Quick
            test_journal_compact_leaves_no_tmp;
          Alcotest.test_case "close" `Quick test_journal_closed_stops_recording;
          Alcotest.test_case "close detaches observers" `Quick
            test_journal_close_detaches_observers;
          qcheck_journal_roundtrip_random_churn;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip_fixture;
          Alcotest.test_case "isolated vertices" `Quick
            test_io_preserves_isolated_vertices;
          Alcotest.test_case "comments" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "malformed" `Quick test_io_malformed;
          qcheck_io_roundtrip;
          Alcotest.test_case "dot" `Quick test_dot_output;
          Alcotest.test_case "graphml" `Quick test_graphml_output;
          Alcotest.test_case "graphml escaping" `Quick test_graphml_escaping;
        ] );
    ]
