(* Tests for the static cost & cardinality analyzer: the Interval bound
   domain, the per-label degree profile it consumes, the structural and
   automaton-DP bounds it computes, the L010–L013 diagnostics, and — the
   part everything else leans on — property tests that the two headline
   numbers really are sound upper bounds for every evaluation backend. *)

open Mrpa_graph
open Mrpa_core
open Mrpa_lint
module H = Helpers
module I = Interval

(* --- Interval ------------------------------------------------------------ *)

let bound = Alcotest.testable I.pp_bound I.b_equal

let test_bound_arith () =
  Alcotest.check bound "add" (I.Fin 7) (I.b_add (I.Fin 3) (I.Fin 4));
  Alcotest.check bound "add inf" I.Inf (I.b_add (I.Fin 3) I.Inf);
  Alcotest.check bound "mul" (I.Fin 12) (I.b_mul (I.Fin 3) (I.Fin 4));
  Alcotest.check bound "mul by zero" (I.Fin 0) (I.b_mul (I.Fin 0) I.Inf);
  Alcotest.check bound "pow" (I.Fin 32) (I.b_pow (I.Fin 2) 5);
  Alcotest.check bound "pow zero" (I.Fin 1) (I.b_pow (I.Fin 9) 0);
  Alcotest.check bound "min" (I.Fin 3) (I.b_min (I.Fin 3) I.Inf);
  Alcotest.check bound "max" I.Inf (I.b_max (I.Fin 3) I.Inf);
  Alcotest.(check bool) "le" true (I.b_le (I.Fin 3) (I.Fin 3));
  Alcotest.(check bool) "le inf" true (I.b_le (I.Fin 3) I.Inf);
  Alcotest.(check bool) "gt" true (I.b_gt I.Inf (I.Fin max_int));
  Alcotest.(check bool) "exceeds" true (I.b_exceeds_int (I.Fin 11) 10);
  Alcotest.(check bool) "not exceeds" false (I.b_exceeds_int (I.Fin 10) 10);
  Alcotest.(check bool) "inf exceeds" true (I.b_exceeds_int I.Inf max_int);
  Alcotest.(check string) "to_string" "inf" (I.b_to_string I.Inf)

let test_bound_saturation () =
  (* Arithmetic that would overflow native ints must saturate to Inf, never
     wrap: a wrapped negative bound would claim a huge query is cheap. *)
  let big = I.fin (I.cap - 1) in
  Alcotest.check bound "mul saturates" I.Inf (I.b_mul big big);
  Alcotest.check bound "add saturates" I.Inf (I.b_add big big);
  Alcotest.check bound "pow saturates" I.Inf (I.b_pow (I.Fin 10) 62);
  Alcotest.check bound "fin clamps above cap" I.Inf (I.fin max_int);
  Alcotest.check bound "fin clamps below zero" (I.Fin 0) (I.fin (-5))

let test_interval_ops () =
  let iv = Alcotest.testable I.pp I.equal in
  Alcotest.check iv "add" (I.make 3 (I.Fin 7))
    (I.add (I.make 1 (I.Fin 3)) (I.make 2 (I.Fin 4)));
  Alcotest.check iv "hull" (I.make 1 (I.Fin 9))
    (I.hull (I.make 1 (I.Fin 3)) (I.make 4 (I.Fin 9)));
  Alcotest.(check bool) "mem" true (I.mem 2 (I.make 1 (I.Fin 3)));
  Alcotest.(check bool) "not mem" false (I.mem 4 (I.make 1 (I.Fin 3)));
  Alcotest.(check bool) "mem inf" true (I.mem 1_000_000 (I.make 0 I.Inf));
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (I.make 4 (I.Fin 3)))

let test_widen_stabilises () =
  (* The defining property of widening: any ascending chain stabilises
     after one application per direction — lo can only drop to 0, hi only
     jump to Inf. *)
  let a = I.make 2 (I.Fin 5) in
  let grow = I.make 1 (I.Fin 9) in
  let w1 = I.widen a grow in
  let w2 = I.widen w1 (I.hull w1 (I.make 0 (I.Fin 1_000))) in
  let w3 = I.widen w2 (I.hull w2 (I.make 0 I.Inf)) in
  Alcotest.(check bool) "first widen covers" true
    (I.mem 1 w1 && I.mem 9 w1);
  Alcotest.(check bool) "chain stabilises" true (I.equal w2 w3);
  Alcotest.(check bool) "fixpoint" true (I.equal w3 (I.widen w3 w3))

(* --- Stat.profile -------------------------------------------------------- *)

let test_stat_profile () =
  let g = H.paper_graph () in
  let p = Stat.profile g in
  Alcotest.(check int) "vertices" 3 p.Stat.vertices;
  Alcotest.(check int) "edges" 7 p.Stat.edges;
  Alcotest.(check int) "labels" 2 p.Stat.labels;
  (* i has out-edges alpha->j, alpha->k, beta->k. *)
  Alcotest.(check int) "max out degree" 3 p.Stat.max_out_degree;
  let alpha = H.l g "alpha" and beta = H.l g "beta" in
  let get l =
    match Stat.label_profile p l with
    | Some lp -> lp
    | None -> Alcotest.fail "label missing from profile"
  in
  let pa = get alpha and pb = get beta in
  Alcotest.(check int) "alpha edges" 3 pa.Stat.edges;
  Alcotest.(check int) "alpha distinct tails" 2 pa.Stat.distinct_tails;
  Alcotest.(check int) "alpha distinct heads" 2 pa.Stat.distinct_heads;
  Alcotest.(check int) "alpha max out (i: ->j,->k)" 2 pa.Stat.max_out;
  Alcotest.(check int) "alpha max in (j: i->,k->)" 2 pa.Stat.max_in;
  Alcotest.(check int) "beta edges" 4 pb.Stat.edges;
  Alcotest.(check int) "beta max out (j: ->k,->j,->i)" 3 pb.Stat.max_out;
  let sum_hist h = List.fold_left (fun a (_, n) -> a + n) 0 h in
  Alcotest.(check int) "alpha out histogram covers its tails"
    pa.Stat.distinct_tails
    (sum_hist pa.Stat.out_histogram)

(* --- Cost: structural bounds --------------------------------------------- *)

let analyze ?(max_length = 8) g e =
  let stats = Stat.profile g in
  Cost.analyze_expr ~stats g ~max_length e

let test_cost_epsilon_and_selector () =
  let g = H.paper_graph () in
  let c = analyze g Expr.epsilon in
  Alcotest.check bound "epsilon: one path" (I.Fin 1)
    c.Cost.root.Cost.card;
  (match c.Cost.root.Cost.len with
  | Some l -> Alcotest.(check bool) "epsilon: len [0,0]" true
      (I.equal l I.zero)
  | None -> Alcotest.fail "epsilon has a length interval");
  let alpha = Expr.sel (Selector.label_in (Label.Set.singleton (H.l g "alpha"))) in
  let ca = analyze g alpha in
  (* size_hint never underestimates, so the bound is >= the true 3. *)
  Alcotest.(check bool) "selector bound covers its edges" true
    (I.b_le (I.Fin 3) ca.Cost.root.Cost.card);
  let c0 = analyze g Expr.empty in
  Alcotest.check bound "empty: zero paths" (I.Fin 0) c0.Cost.root.Cost.card

let test_cost_union_and_star () =
  let g = H.paper_graph () in
  let alpha = Expr.sel (Selector.label_in (Label.Set.singleton (H.l g "alpha"))) in
  let beta = Expr.sel (Selector.label_in (Label.Set.singleton (H.l g "beta"))) in
  let cu = analyze g (Expr.union alpha beta) in
  let ca = analyze g alpha and cb = analyze g beta in
  Alcotest.(check bool) "union bound covers the sum" true
    (I.b_le
       (I.b_add ca.Cost.root.Cost.card cb.Cost.root.Cost.card)
       (I.b_add cu.Cost.root.Cost.card (I.Fin 0))
    || I.b_equal cu.Cost.root.Cost.card
         (I.b_add ca.Cost.root.Cost.card cb.Cost.root.Cost.card));
  let cs = analyze g (Expr.star alpha) in
  (match cs.Cost.root.Cost.len with
  | Some l ->
    Alcotest.(check int) "star len lo" 0 l.I.lo;
    Alcotest.check bound "star len hi widened" I.Inf l.I.hi
  | None -> Alcotest.fail "star has a length interval");
  Alcotest.(check bool) "star of nonempty admits epsilon" true
    (I.b_le (I.Fin 1) cs.Cost.root.Cost.card)

let test_cost_monotone_in_max_length () =
  let g = H.paper_graph () in
  let e =
    Expr.star (Expr.sel (Selector.label_in (Label.Set.singleton (H.l g "beta"))))
  in
  let c2 = analyze ~max_length:2 g e and c6 = analyze ~max_length:6 g e in
  Alcotest.(check bool) "paths bound grows with the length bound" true
    (I.b_le c2.Cost.predicted_paths c6.Cost.predicted_paths);
  Alcotest.(check bool) "cost bound grows with the length bound" true
    (I.b_le c2.Cost.predicted_cost c6.Cost.predicted_cost)

(* A dense one-relation graph: complete digraph (with loops) on [n]
   vertices, fan-out n at every vertex — the shape L010/L011 exist for. *)
let dense_graph n =
  let g = Digraph.create () in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ignore
        (Digraph.add g (Printf.sprintf "v%d" i) "dense" (Printf.sprintf "v%d" j))
    done
  done;
  g

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let test_l010_dense_star () =
  let g = dense_graph 32 in
  let e = Expr.star (Expr.sel Selector.universe) in
  let c = analyze g e in
  let ds = Cost.diagnostics c in
  Alcotest.(check bool) "L010 fires on a dense star" true
    (List.mem "L010" (codes ds));
  (* The paper graph at a modest bound stays below the threshold: the
     structural bound is ~7^4, nowhere near a million. *)
  let quiet = Cost.diagnostics (analyze ~max_length:4 (H.paper_graph ()) e) in
  Alcotest.(check bool) "no L010 on a tiny graph" false
    (List.mem "L010" (codes quiet))

let test_l011_blowup_join () =
  let g = dense_graph 32 in
  let u = Expr.sel Selector.universe in
  let c = analyze g (Expr.product u (Expr.product u u)) in
  let ds = Cost.diagnostics c in
  Alcotest.(check bool) "L011 fires on a blowup product" true
    (List.mem "L011" (codes ds));
  (* Innermost blame: exactly one L011, on the inner product, not also on
     the outer one the bound merely propagates through. *)
  Alcotest.(check int) "single innermost L011" 1
    (List.length (List.filter (( = ) "L011") (codes ds)))

let test_l012_budget_infeasible () =
  let g = dense_graph 8 in
  let c = analyze g (Expr.star (Expr.sel Selector.universe)) in
  let broke = Cost.budget_check ~fuel:10 c in
  Alcotest.(check bool) "L012 fires on tiny fuel" true
    (List.mem "L012" (codes broke));
  let rich = Cost.budget_check ~fuel:max_int c in
  Alcotest.(check (list string)) "no L012 with ample fuel" [] (codes rich);
  let slow = Cost.budget_check ~deadline_ms:0.0001 c in
  Alcotest.(check bool) "L012 fires on a hopeless deadline" true
    (List.mem "L012" (codes slow))

let test_l013_zero_selectivity () =
  let g = H.paper_graph () in
  let u () = Expr.sel Selector.universe in
  let rec chain n = if n = 1 then u () else Expr.join (u ()) (chain (n - 1)) in
  let c = analyze ~max_length:3 g (chain 5) in
  Alcotest.(check bool) "L013 fires when min length exceeds the bound" true
    (List.mem "L013" (codes (Cost.diagnostics c)));
  Alcotest.check bound "and the bound is zero paths" (I.Fin 0)
    c.Cost.predicted_paths;
  let fits = analyze ~max_length:8 g (chain 5) in
  Alcotest.(check bool) "quiet when the chain fits" false
    (List.mem "L013" (codes (Cost.diagnostics fits)))

(* --- Soundness: the bounds really bound every backend --------------------- *)

let strategies =
  [ Mrpa_engine.Plan.Reference;
    Mrpa_engine.Plan.Stack_machine;
    Mrpa_engine.Plan.Product_bfs ]

(* For a random graph and expression, no backend may return more paths
   than [predicted_paths] nor spend more fuel than [predicted_cost]. This
   is the contract the planner and the server's admission control rely
   on: analysis runs on the {e unoptimised} expression, evaluation on the
   full pipeline (rewrites included), so the test also checks that
   rewriting never grows the denotation past the static bound. *)
let qcheck_bounds_sound =
  H.qtest ~count:120 "predicted paths/cost bound every backend"
    H.with_graph_gen H.print_with_graph (fun (recipe, aux) ->
      let g = H.graph_of_recipe recipe in
      let rng = Prng.create aux in
      let e = H.random_expr rng g in
      let max_length = 1 + Prng.int rng 4 in
      let stats = Stat.profile g in
      let c = Cost.analyze_expr ~stats g ~max_length e in
      (* violation = the actual count strictly exceeds the finite bound *)
      let exceeds n = function I.Inf -> false | I.Fin p -> n > p in
      let check_one strategy =
        let budget = Mrpa_engine.Budget.unlimited () in
        let r = Mrpa_engine.Engine.query_expr ~strategy ~stats ~max_length ~budget g e in
        let n = Path_set.cardinal r.Mrpa_engine.Engine.paths in
        if exceeds n c.Cost.predicted_paths then
          QCheck2.Test.fail_reportf
            "%s returned %d paths > predicted %s (max_length=%d)"
            (Mrpa_engine.Plan.strategy_name strategy)
            n
            (I.b_to_string c.Cost.predicted_paths)
            max_length
        else if
          exceeds (Mrpa_engine.Budget.fuel_used budget) c.Cost.predicted_cost
        then
          QCheck2.Test.fail_reportf
            "%s spent %d fuel > predicted %s (max_length=%d)"
            (Mrpa_engine.Plan.strategy_name strategy)
            (Mrpa_engine.Budget.fuel_used budget)
            (I.b_to_string c.Cost.predicted_cost)
            max_length
        else true
      in
      List.for_all check_one strategies
      &&
      (* the counting backend too: distinct-path count and its fuel. *)
      let budget = Mrpa_engine.Budget.unlimited () in
      let n, _verdict = Mrpa_engine.Engine.count_expr ~max_length ~budget g e in
      (not (exceeds n c.Cost.predicted_paths))
      && not (exceeds (Mrpa_engine.Budget.fuel_used budget) c.Cost.predicted_cost))

(* The planner consumes [peak_frontier]; sanity-check it is at least the
   real frontier on a concrete case: the paper graph's [beta*] from j
   reaches {j,i,k} so some level holds >= 2 walks. *)
let test_peak_frontier_positive () =
  let g = H.paper_graph () in
  let e =
    Expr.star (Expr.sel (Selector.label_in (Label.Set.singleton (H.l g "beta"))))
  in
  let c = analyze g e in
  Alcotest.(check bool) "frontier bound is positive" true
    (I.b_le (I.Fin 1) c.Cost.peak_frontier)

let () =
  Alcotest.run "cost"
    [
      ( "interval",
        [
          Alcotest.test_case "bound arithmetic" `Quick test_bound_arith;
          Alcotest.test_case "saturation" `Quick test_bound_saturation;
          Alcotest.test_case "interval ops" `Quick test_interval_ops;
          Alcotest.test_case "widening stabilises" `Quick test_widen_stabilises;
        ] );
      ( "profile",
        [ Alcotest.test_case "per-label profile" `Quick test_stat_profile ] );
      ( "bounds",
        [
          Alcotest.test_case "epsilon/selector/empty" `Quick
            test_cost_epsilon_and_selector;
          Alcotest.test_case "union and star" `Quick test_cost_union_and_star;
          Alcotest.test_case "monotone in max_length" `Quick
            test_cost_monotone_in_max_length;
          Alcotest.test_case "peak frontier" `Quick test_peak_frontier_positive;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "L010 dense star" `Quick test_l010_dense_star;
          Alcotest.test_case "L011 blowup join" `Quick test_l011_blowup_join;
          Alcotest.test_case "L012 budget infeasible" `Quick
            test_l012_budget_infeasible;
          Alcotest.test_case "L013 zero selectivity" `Quick
            test_l013_zero_selectivity;
        ] );
      ("soundness", [ qcheck_bounds_sound ]);
    ]
