(* Durability tests: CRC framing, v1 compatibility, torn tails, the
   recover/repair salvage path, and — via the {!Io_fault} plane — a
   deterministic crash-point matrix proving that every injected crash
   leaves a journal that recovers to a prefix of the applied mutations. *)

open Mrpa_graph
module H = Helpers

(* --- Infrastructure ------------------------------------------------------ *)

let with_tmp_journal f =
  let path = Filename.temp_file "mrpa_journal" ".log" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      Io_fault.disarm ();
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".compact"; path ^ ".repair" ])
    (fun () -> f path)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Naive substring search; fine at test sizes. *)
let index_of haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub haystack i m = needle then Some i
    else go (i + 1)
  in
  go 0

let contains haystack needle = index_of haystack needle <> None

(* Name-level signature of a graph, for equality across distinct graph
   values (interned ids differ between replays). *)
let graph_sig g =
  let name_of e =
    ( Digraph.vertex_name g (Edge.tail e),
      Digraph.label_name g (Edge.label e),
      Digraph.vertex_name g (Edge.head e) )
  in
  ( List.sort compare (List.map (Digraph.vertex_name g) (Digraph.vertices g)),
    List.sort compare (List.map name_of (Digraph.edges g)) )

let check_same_graph msg expected actual =
  Alcotest.(check (pair (list string) (list (triple string string string))))
    msg (graph_sig expected) (graph_sig actual)

(* --- CRC-32 -------------------------------------------------------------- *)

let test_crc32_vector () =
  (* The catalogue check value for CRC-32/ISO-HDLC. *)
  Alcotest.(check int32)
    "123456789" 0xCBF43926l
    (Crc32.string "123456789");
  Alcotest.(check string) "hex" "cbf43926" (Crc32.to_hex 0xCBF43926l);
  Alcotest.(check (option int32))
    "of_hex roundtrip" (Some 0xCBF43926l) (Crc32.of_hex "cbf43926");
  Alcotest.(check (option int32)) "of_hex rejects junk" None (Crc32.of_hex "xyz");
  Alcotest.(check (option int32))
    "of_hex rejects short" None (Crc32.of_hex "cbf439");
  (* Incremental update must agree with the one-shot digest. *)
  let a = Crc32.update (Crc32.string "1234") "56789" in
  Alcotest.(check int32) "incremental" (Crc32.string "123456789") a;
  Alcotest.(check int32) "empty" 0l (Crc32.string "")

(* --- v2 format ----------------------------------------------------------- *)

let test_v2_new_journal_has_header () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      Alcotest.(check bool)
        "fresh journal is v2" true
        (Journal.format_version j = Journal.V2);
      ignore (Digraph.add g "a" "r" "b");
      Journal.close j;
      let content = read_file path in
      Alcotest.(check bool)
        "header first" true
        (String.starts_with ~prefix:"#mrpa.journal/2\n" content);
      (* One framed record: SEQ\tCRC\tPAYLOAD. *)
      Alcotest.(check bool)
        "framed record" true
        (let lines = String.split_on_char '\n' content in
         match lines with
         | _ :: record :: _ -> String.starts_with ~prefix:"1\t" record
         | _ -> false);
      let h = Journal.replay path in
      Alcotest.(check int) "replays" 1 (Digraph.n_edges h))

let test_v2_sequence_continues_across_reopen () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      ignore (Digraph.add g "b" "r" "c");
      Journal.close j;
      let g2 = Digraph.create () in
      let j2 = Journal.attach g2 path in
      ignore (Digraph.add g2 "c" "r" "d");
      Journal.close j2;
      (* The third record must carry sequence number 3, not restart at 1 —
         that is what lets recovery detect lost records across reopens. *)
      let lines =
        String.split_on_char '\n' (String.trim (read_file path))
      in
      match List.rev lines with
      | last :: _ ->
        Alcotest.(check bool)
          "third record has seq 3" true
          (String.starts_with ~prefix:"3\t" last)
      | [] -> Alcotest.fail "journal is empty")

let test_v1_read_compat_and_upgrade () =
  with_tmp_journal (fun path ->
      write_file path "add\ta\tr\tb\nadd\tb\tr\tc\n";
      (* v1 logs replay... *)
      let h = Journal.replay path in
      Alcotest.(check int) "v1 replays" 2 (Digraph.n_edges h);
      (* ...and an attached journal keeps appending v1 ... *)
      let g = Digraph.create () in
      let j = Journal.attach g path in
      Alcotest.(check bool)
        "stays v1" true
        (Journal.format_version j = Journal.V1);
      ignore (Digraph.add g "c" "r" "d");
      Alcotest.(check bool)
        "appended line is bare v1" true
        (String.ends_with ~suffix:"add\tc\tr\td\n" (read_file path));
      (* ...until compaction, which is the upgrade path. *)
      Journal.compact j;
      Alcotest.(check bool)
        "compacted to v2" true
        (Journal.format_version j = Journal.V2);
      Alcotest.(check bool)
        "v2 header on disk" true
        (String.starts_with ~prefix:"#mrpa.journal/2\n" (read_file path));
      ignore (Digraph.add g "d" "r" "e");
      Journal.close j;
      let h2 = Journal.replay path in
      check_same_graph "upgrade preserves state" g h2)

let test_unsupported_version_rejected () =
  with_tmp_journal (fun path ->
      write_file path "#mrpa.journal/99\n1\tdeadbeef\tadd\ta\tr\tb\n";
      (match Journal.replay path with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        Alcotest.(check bool)
          "mentions format" true
          (contains msg "unsupported"));
      match Journal.recover path with
      | Error msg ->
        Alcotest.(check bool)
          "recover refuses too" true
          (String.length msg > 0)
      | Ok _ -> Alcotest.fail "recover must refuse an unknown format")

(* --- Torn tails ---------------------------------------------------------- *)

let test_v1_torn_tail_tolerated () =
  with_tmp_journal (fun path ->
      write_file path "add\ta\tr\tb\nadd\tb\tr";
      let warnings = ref [] in
      let g = Digraph.create () in
      Journal.replay_into ~on_warning:(fun m -> warnings := m :: !warnings) g path;
      Alcotest.(check int) "prefix applied" 1 (Digraph.n_edges g);
      Alcotest.(check int) "one warning" 1 (List.length !warnings);
      Alcotest.(check bool)
        "warning names the torn tail" true
        (contains (List.hd !warnings) "torn tail"))

let test_v2_torn_tail_truncated_on_attach () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      ignore (Digraph.add g "b" "r" "c");
      Journal.close j;
      (* Tear the final record mid-frame. *)
      let content = read_file path in
      write_file path (String.sub content 0 (String.length content - 5));
      let warnings = ref [] in
      let g2 = Digraph.create () in
      let j2 =
        Journal.attach ~on_warning:(fun m -> warnings := m :: !warnings) g2 path
      in
      Alcotest.(check int) "prefix applied" 1 (Digraph.n_edges g2);
      Alcotest.(check int) "warned once" 1 (List.length !warnings);
      (* The fragment was physically truncated, so appending again produces
         a well-formed journal with a resumed sequence. *)
      ignore (Digraph.add g2 "x" "r" "y");
      Journal.close j2;
      let r = Result.get_ok (Journal.recover path) in
      Alcotest.(check bool) "clean after truncate+append" true (Journal.is_clean r);
      check_same_graph "state preserved" g2 r.Journal.graph)

let test_unterminated_but_complete_record_kept () =
  with_tmp_journal (fun path ->
      let g = Digraph.create () in
      let j = Journal.attach g path in
      ignore (Digraph.add g "a" "r" "b");
      Journal.close j;
      (* Strip only the final newline: the record itself is intact, so it
         must be applied, not dropped. *)
      let content = read_file path in
      write_file path (String.sub content 0 (String.length content - 1));
      let g2 = Digraph.create () in
      let j2 = Journal.attach ~on_warning:ignore g2 path in
      Alcotest.(check int) "intact record kept" 1 (Digraph.n_edges g2);
      ignore (Digraph.add g2 "b" "r" "c");
      Journal.close j2;
      let h = Journal.replay path in
      Alcotest.(check int) "no gluing onto the tail" 2 (Digraph.n_edges h))

(* --- Recovery and repair ------------------------------------------------- *)

let corruption_kind = function
  | Journal.Torn_tail _ -> "torn"
  | Journal.Bad_checksum _ -> "crc"
  | Journal.Bad_sequence _ -> "seq"
  | Journal.Malformed _ -> "malformed"
  | Journal.Unapplied _ -> "unapplied"

let make_v2_journal path n =
  let g = Digraph.create () in
  let j = Journal.attach g path in
  for i = 0 to n - 1 do
    ignore (Digraph.add g (Printf.sprintf "v%d" i) "r" (Printf.sprintf "v%d" (i + 1)))
  done;
  Journal.close j;
  g

let test_recover_bad_checksum () =
  with_tmp_journal (fun path ->
      let g = make_v2_journal path 3 in
      ignore g;
      (* Flip a payload byte in the middle record: its CRC no longer
         matches, the record is skipped, the rest survives. *)
      let content = read_file path in
      let i = Option.get (index_of content "v1\tr\tv2") in
      let b = Bytes.of_string content in
      Bytes.set b i 'w';
      write_file path (Bytes.to_string b);
      (* Strict replay refuses mid-file corruption outright... *)
      (match Journal.replay path with
      | _ -> Alcotest.fail "strict replay must fail"
      | exception Failure _ -> ());
      (* ...recover salvages around it. *)
      let r = Result.get_ok (Journal.recover path) in
      Alcotest.(check (list string))
        "one checksum corruption" [ "crc" ]
        (List.map corruption_kind r.Journal.corruptions);
      Alcotest.(check int) "two records survive" 2 r.Journal.applied;
      Journal.repair r;
      let r2 = Result.get_ok (Journal.recover path) in
      Alcotest.(check bool) "clean after repair" true (Journal.is_clean r2);
      check_same_graph "repair keeps the salvage" r.Journal.graph r2.Journal.graph)

let test_recover_sequence_jump () =
  with_tmp_journal (fun path ->
      ignore (make_v2_journal path 4);
      (* Drop an entire middle record: checksums are fine, but the sequence
         numbers jump — the only sign that data was lost. *)
      let lines = String.split_on_char '\n' (read_file path) in
      let kept =
        List.filteri (fun i _ -> i <> 2 (* 0=header, 2=second record *)) lines
      in
      write_file path (String.concat "\n" kept);
      let r = Result.get_ok (Journal.recover path) in
      Alcotest.(check (list string))
        "sequence jump detected" [ "seq" ]
        (List.map corruption_kind r.Journal.corruptions);
      Alcotest.(check int) "three records salvaged" 3 r.Journal.applied)

let test_recover_malformed_and_resync () =
  with_tmp_journal (fun path ->
      ignore (make_v2_journal path 3);
      let lines = String.split_on_char '\n' (read_file path) in
      let mangled =
        List.mapi (fun i l -> if i = 2 then "not a frame at all" else l) lines
      in
      write_file path (String.concat "\n" mangled);
      let r = Result.get_ok (Journal.recover path) in
      (* The record after the mangled one has a "wrong" sequence number by
         construction; resync must adopt it silently rather than piling a
         spurious Bad_sequence on top. *)
      Alcotest.(check (list string))
        "only the malformed line reported" [ "malformed" ]
        (List.map corruption_kind r.Journal.corruptions);
      Alcotest.(check int) "rest salvaged" 2 r.Journal.applied)

let test_recover_unapplied_delete () =
  with_tmp_journal (fun path ->
      write_file path "add\ta\tr\tb\ndel\tghost\tr\tb\n";
      let r = Result.get_ok (Journal.recover path) in
      Alcotest.(check (list string))
        "unappliable delete reported" [ "unapplied" ]
        (List.map corruption_kind r.Journal.corruptions);
      Alcotest.(check int) "the add survives" 1 r.Journal.applied)

let test_recover_missing_file () =
  match Journal.recover "/nonexistent/journal.log" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recover of a missing path must be an Error"

let test_repair_removes_stale_tmp () =
  with_tmp_journal (fun path ->
      ignore (make_v2_journal path 2);
      write_file (path ^ ".compact") "half-written snapshot";
      let r = Result.get_ok (Journal.recover path) in
      Alcotest.(check bool) "stale tmp reported" false (Journal.is_clean r);
      Alcotest.(check bool)
        "stale tmp path" true
        (r.Journal.stale_tmp = Some (path ^ ".compact"));
      Journal.repair r;
      Alcotest.(check bool)
        "stale tmp removed" false
        (Sys.file_exists (path ^ ".compact"));
      let r2 = Result.get_ok (Journal.recover path) in
      Alcotest.(check bool) "clean" true (Journal.is_clean r2))

(* --- fsync error accounting ---------------------------------------------- *)

let test_fsync_error_counted_and_warned () =
  with_tmp_journal (fun path ->
      let warnings = ref [] in
      let g = Digraph.create () in
      let j =
        Journal.attach ~on_warning:(fun m -> warnings := m :: !warnings) g path
      in
      ignore (Digraph.add g "a" "r" "b");
      Io_fault.arm ~mode:(Io_fault.Errno Unix.EIO) Io_fault.Fsync ~at:1;
      Journal.sync j;
      Alcotest.(check int) "error counted" 1 (Journal.fsync_errors j);
      Alcotest.(check int) "warned once" 1 (List.length !warnings);
      Alcotest.(check bool)
        "warning says fsync" true
        (contains (List.hd !warnings) "fsync failed");
      (* A healthy sync afterwards adds neither errors nor warnings. *)
      Journal.sync j;
      Alcotest.(check int) "no new error" 1 (Journal.fsync_errors j);
      (* Subsequent failures keep counting but stay quiet. *)
      Io_fault.arm ~mode:(Io_fault.Errno Unix.EIO) Io_fault.Fsync ~at:1;
      Journal.sync j;
      Alcotest.(check int) "second error counted" 2 (Journal.fsync_errors j);
      Alcotest.(check int) "still one warning" 1 (List.length !warnings);
      Journal.close j)

(* --- Crash-point matrix --------------------------------------------------- *)

(* A deterministic little mutation script: adds with one delete in the
   middle, exercising all three payload kinds on replay. *)
let script =
  [ `Add ("a", "r", "b"); `Add ("b", "r", "c"); `Del ("a", "r", "b");
    `Add ("c", "s", "d"); `Add ("d", "s", "a") ]

let apply_step g = function
  | `Add (t, l, h) -> ignore (Digraph.add g t l h)
  | `Del (t, l, h) -> ignore (Digraph.remove_edge g (H.e g t l h))

(* Graph signatures after each prefix of [script] — the set of states a
   correct recovery is allowed to land on. *)
let prefix_sigs () =
  let g = Digraph.create () in
  let sigs = ref [ graph_sig g ] in
  List.iter
    (fun step ->
      apply_step g step;
      sigs := graph_sig g :: !sigs)
    script;
  !sigs

let check_prefix_consistent ~ctx path =
  let r =
    match Journal.recover path with
    | Ok r -> r
    | Error msg -> Alcotest.fail (Printf.sprintf "%s: recover failed: %s" ctx msg)
  in
  let s = graph_sig r.Journal.graph in
  if not (List.mem s (prefix_sigs ())) then
    Alcotest.fail
      (Printf.sprintf "%s: recovered state is not a prefix of the script" ctx);
  r

(* Crash the N-th append write: the graph keeps the mutation, the disk
   keeps half the record, and recovery must land exactly one step back. *)
let test_crash_matrix_append () =
  (* write #1 is the v2 header, writes #2.. are the records. *)
  for crash_at = 1 to List.length script + 1 do
    with_tmp_journal (fun path ->
        let ctx = Printf.sprintf "append crash at write %d" crash_at in
        let g = Digraph.create () in
        Io_fault.arm Io_fault.Write ~at:crash_at;
        let j =
          match Journal.attach ~on_warning:ignore g path with
          | j -> Some j
          | exception Io_fault.Injected _ -> None
        in
        (match j with
        | None -> () (* crashed writing the header itself *)
        | Some j ->
          (try List.iter (apply_step g) script
           with Io_fault.Injected _ -> ());
          Io_fault.disarm ();
          Journal.close j);
        Io_fault.disarm ();
        let r = check_prefix_consistent ~ctx path in
        (* Whatever the crash point, the journal must accept appends again
           after a recovering attach. *)
        if Sys.file_exists path then begin
          let g2 = Digraph.create () in
          let j2 = Journal.attach ~on_warning:ignore g2 path in
          ignore (Digraph.add g2 "post" "crash" "append");
          Journal.close j2;
          let r2 = Result.get_ok (Journal.recover path) in
          Alcotest.(check bool)
            (ctx ^ ": clean after reattach") true
            (Journal.is_clean r2);
          Alcotest.(check int)
            (ctx ^ ": post-crash append visible")
            (Digraph.n_edges r.Journal.graph + 1)
            (Digraph.n_edges r2.Journal.graph)
        end)
  done

(* Crash every compaction step: before the rename the old journal must be
   untouched; after it the new snapshot must be complete — never anything
   in between — and the handle must keep appending either way. *)
let test_crash_matrix_compact () =
  let ops =
    [ (Io_fault.Write, 1); (Io_fault.Write, 3); (Io_fault.Flush, 1);
      (Io_fault.Fsync, 1); (Io_fault.Close, 1); (Io_fault.Close, 2);
      (Io_fault.Rename, 1) ]
  in
  List.iter
    (fun (op, at) ->
      with_tmp_journal (fun path ->
          let ctx =
            Printf.sprintf "compact crash at %s %d" (Io_fault.op_name op) at
          in
          let g = Digraph.create () in
          let j = Journal.attach g path in
          List.iter (apply_step g) script;
          Io_fault.arm op ~at;
          let crashed =
            match Journal.compact j with
            | () -> false
            | exception Io_fault.Injected _ -> true
          in
          Io_fault.disarm ();
          Alcotest.(check bool) (ctx ^ ": fault fired") true crashed;
          (* The journal (old or compacted, depending on whether the crash
             hit before or after the rename) must already replay to the
             full script state... *)
          let r = check_prefix_consistent ~ctx path in
          check_same_graph (ctx ^ ": full state survives") g r.Journal.graph;
          (* ...and the handle must still record post-crash mutations. *)
          ignore (Digraph.add g "post" "crash" "append");
          Journal.close j;
          let r2 =
            match Journal.recover path with
            | Ok r -> r
            | Error m -> Alcotest.fail (ctx ^ ": " ^ m)
          in
          check_same_graph (ctx ^ ": post-crash append recovered") g
            r2.Journal.graph;
          (* A leftover tmp is allowed (that is what fsck reports and
             repair removes) but corruption of the journal itself is not. *)
          Alcotest.(check (list string))
            (ctx ^ ": no corruption") []
            (List.map corruption_kind r2.Journal.corruptions);
          if r2.Journal.stale_tmp <> None then begin
            Journal.repair r2;
            let r3 = Result.get_ok (Journal.recover path) in
            Alcotest.(check bool) (ctx ^ ": repaired") true (Journal.is_clean r3)
          end))
    ops

(* A primary that crashes mid-compaction must still serve a correct
   stream to a late-subscribing replica: whatever state the journal file
   is in (old generation, new generation, or old-plus-stale-tmp), the
   replication tailer's backlog — a full-reset handoff for a fresh
   subscriber — replayed through the stream applier must land exactly on
   the journal's own recovery state. The snapshot handoff IS the
   compacted journal, so no separate snapshot channel needs testing. *)
let test_crash_matrix_compact_late_replica () =
  let module R = Mrpa_server.Replication in
  let ops =
    [ (Io_fault.Write, 1); (Io_fault.Write, 3); (Io_fault.Flush, 1);
      (Io_fault.Fsync, 1); (Io_fault.Close, 1); (Io_fault.Close, 2);
      (Io_fault.Rename, 1) ]
  in
  List.iter
    (fun (op, at) ->
      with_tmp_journal (fun path ->
          let ctx =
            Printf.sprintf "late replica after compact crash at %s %d"
              (Io_fault.op_name op) at
          in
          let g = Digraph.create () in
          let j = Journal.attach g path in
          List.iter (apply_step g) script;
          Io_fault.arm op ~at;
          (match Journal.compact j with
          | () -> Alcotest.fail (ctx ^ ": fault never fired")
          | exception Io_fault.Injected _ -> ());
          Io_fault.disarm ();
          (* The primary restarts its tailer on the crashed file... *)
          let src = R.Source.create path in
          ignore (R.Source.poll src);
          Alcotest.(check bool) (ctx ^ ": tailer not wedged") true
            (R.Source.wedged src = None);
          (* ...and a brand-new replica subscribes: epoch -1, from seq 1 —
             the reset handoff carries the whole history. *)
          let backlog =
            match R.Source.backlog src ~from_seq:1 ~epoch:(-1) with
            | R.Source.Reset records | R.Source.Tail records -> records
          in
          let a = R.Apply.create () in
          List.iter
            (fun r ->
              match R.Apply.apply_line a r.R.line with
              | R.Apply.Applied _ -> ()
              | _ -> Alcotest.fail (ctx ^ ": backlog record did not apply"))
            backlog;
          let recovered = Result.get_ok (Journal.recover path) in
          check_same_graph
            (ctx ^ ": replica state = journal recovery")
            recovered.Journal.graph (R.Apply.graph a);
          check_same_graph (ctx ^ ": replica state = writer state") g
            (R.Apply.graph a);
          (* The writer keeps appending through its surviving handle; the
             tailer streams the tail and the replica converges again. *)
          ignore (Digraph.add g "post" "crash" "append");
          Journal.close j;
          let tail = R.Source.poll src in
          Alcotest.(check bool) (ctx ^ ": tail streamed") true (tail <> []);
          List.iter
            (fun r ->
              match R.Apply.apply_line a r.R.line with
              | R.Apply.Applied _ | R.Apply.Skipped -> ()
              | _ -> Alcotest.fail (ctx ^ ": tail record did not apply"))
            tail;
          check_same_graph (ctx ^ ": converged after the crash") g
            (R.Apply.graph a)))
    ops

(* A crash inside [sync] (flush or fsync) loses nothing that was already
   written. *)
let test_crash_matrix_sync () =
  List.iter
    (fun op ->
      with_tmp_journal (fun path ->
          let ctx = Printf.sprintf "sync crash at %s" (Io_fault.op_name op) in
          let g = Digraph.create () in
          let j = Journal.attach g path in
          List.iter (apply_step g) script;
          Io_fault.arm op ~at:1;
          (match Journal.sync j with
          | () -> ()
          | exception Io_fault.Injected _ -> ());
          Io_fault.disarm ();
          Journal.close j;
          let r = check_prefix_consistent ~ctx path in
          check_same_graph (ctx ^ ": nothing lost") g r.Journal.graph))
    [ Io_fault.Flush ]

(* --- QCheck: prefix consistency under random churn and crash points ------- *)

(* Random mutation scripts over a small vertex pool; deletes target
   previously added edges so they are valid at append time. *)
let random_script rng n =
  let added = ref [] in
  List.init n (fun _ ->
      let pick_name () = Printf.sprintf "v%d" (Mrpa_graph.Prng.int rng 6) in
      let pick_label () = Printf.sprintf "r%d" (Mrpa_graph.Prng.int rng 3) in
      if !added <> [] && Mrpa_graph.Prng.int rng 4 = 0 then begin
        let i = Mrpa_graph.Prng.int rng (List.length !added) in
        `Del (List.nth !added i)
      end
      else begin
        let m = (pick_name (), pick_label (), pick_name ()) in
        added := m :: !added;
        `Add m
      end)

let apply_random g = function
  | `Add (t, l, h) -> ignore (Digraph.add g t l h)
  | `Del (t, l, h) -> (
    (* The edge may already have been deleted; a no-op delete emits no
       journal record, which is exactly what prefix consistency needs. *)
    match
      ( Digraph.find_vertex g t,
        Digraph.find_label g l,
        Digraph.find_vertex g h )
    with
    | Some tv, Some lv, Some hv ->
      ignore (Digraph.remove_edge g (Edge.make ~tail:tv ~label:lv ~head:hv))
    | _ -> ())

let qcheck_crash_prefix_consistency =
  H.qtest ~count:150 "recover yields a prefix state for any crash point"
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 1 15 in
      let* crash_at = int_range 1 18 in
      return (seed, n, crash_at))
    (fun (seed, n, crash_at) ->
      Printf.sprintf "{seed=%d; n=%d; crash_at=%d}" seed n crash_at)
    (fun (seed, n, crash_at) ->
      let script = random_script (Mrpa_graph.Prng.create seed) n in
      let path = Filename.temp_file "mrpa_qcrash" ".log" in
      Sys.remove path;
      Fun.protect
        ~finally:(fun () ->
          Io_fault.disarm ();
          if Sys.file_exists path then Sys.remove path)
        (fun () ->
          (* Record the graph signature after every prefix of the script as
             it runs — membership of the recovered state in this list is
             the prefix-consistency property. *)
          let g = Digraph.create () in
          let sigs = ref [ graph_sig g ] in
          Io_fault.arm Io_fault.Write ~at:crash_at;
          let j =
            match Journal.attach ~on_warning:ignore g path with
            | j -> Some j
            | exception Io_fault.Injected _ -> None
          in
          (match j with
          | None -> ()
          | Some j ->
            (try
               List.iter
                 (fun step ->
                   apply_random g step;
                   sigs := graph_sig g :: !sigs)
                 script
             with Io_fault.Injected _ -> ());
            Io_fault.disarm ();
            Journal.close j);
          Io_fault.disarm ();
          match Journal.recover path with
          | Error _ -> not (Sys.file_exists path)
          | Ok r -> List.mem (graph_sig r.Journal.graph) !sigs))

let qcheck_compact_crash_preserves_state =
  H.qtest ~count:75 "compaction crash never loses committed state"
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 1 12 in
      let* op = int_range 0 4 in
      let* at = int_range 1 3 in
      return (seed, n, op, at))
    (fun (seed, n, op, at) ->
      Printf.sprintf "{seed=%d; n=%d; op=%d; at=%d}" seed n op at)
    (fun (seed, n, op, at) ->
      let op =
        List.nth
          [ Io_fault.Write; Io_fault.Flush; Io_fault.Fsync; Io_fault.Rename;
            Io_fault.Close ]
          op
      in
      let script = random_script (Mrpa_graph.Prng.create seed) n in
      let path = Filename.temp_file "mrpa_qcompact" ".log" in
      Sys.remove path;
      Fun.protect
        ~finally:(fun () ->
          Io_fault.disarm ();
          List.iter
            (fun p -> if Sys.file_exists p then Sys.remove p)
            [ path; path ^ ".compact" ])
        (fun () ->
          let g = Digraph.create () in
          let j = Journal.attach g path in
          List.iter (apply_random g) script;
          Io_fault.arm op ~at;
          (match Journal.compact j with
          | () -> ()
          | exception Io_fault.Injected _ -> ());
          Io_fault.disarm ();
          Journal.close j;
          match Journal.recover path with
          | Error _ -> false
          | Ok r -> graph_sig r.Journal.graph = graph_sig g))

(* --- Runner --------------------------------------------------------------- *)

let () =
  Alcotest.run "journal"
    [
      ( "crc32",
        [ Alcotest.test_case "check value and hex" `Quick test_crc32_vector ] );
      ( "format",
        [
          Alcotest.test_case "v2 header + framing" `Quick
            test_v2_new_journal_has_header;
          Alcotest.test_case "sequence across reopen" `Quick
            test_v2_sequence_continues_across_reopen;
          Alcotest.test_case "v1 compat + upgrade" `Quick
            test_v1_read_compat_and_upgrade;
          Alcotest.test_case "unsupported version" `Quick
            test_unsupported_version_rejected;
        ] );
      ( "torn tails",
        [
          Alcotest.test_case "v1 tolerated" `Quick test_v1_torn_tail_tolerated;
          Alcotest.test_case "v2 truncated on attach" `Quick
            test_v2_torn_tail_truncated_on_attach;
          Alcotest.test_case "intact unterminated kept" `Quick
            test_unterminated_but_complete_record_kept;
        ] );
      ( "recover/repair",
        [
          Alcotest.test_case "bad checksum" `Quick test_recover_bad_checksum;
          Alcotest.test_case "sequence jump" `Quick test_recover_sequence_jump;
          Alcotest.test_case "malformed + resync" `Quick
            test_recover_malformed_and_resync;
          Alcotest.test_case "unapplied delete" `Quick
            test_recover_unapplied_delete;
          Alcotest.test_case "missing file" `Quick test_recover_missing_file;
          Alcotest.test_case "stale tmp" `Quick test_repair_removes_stale_tmp;
        ] );
      ( "fsync",
        [
          Alcotest.test_case "errors counted and warned" `Quick
            test_fsync_error_counted_and_warned;
        ] );
      ( "crash matrix",
        [
          Alcotest.test_case "append" `Quick test_crash_matrix_append;
          Alcotest.test_case "compact" `Quick test_crash_matrix_compact;
          Alcotest.test_case "compact + late replica" `Quick
            test_crash_matrix_compact_late_replica;
          Alcotest.test_case "sync" `Quick test_crash_matrix_sync;
          qcheck_crash_prefix_consistency;
          qcheck_compact_crash_preserves_state;
        ] );
    ]
