The static cost & cardinality analyzer surfaces three ways: lint findings
L010-L013, the planner's cost table in EXPLAIN, and the server's static
admission control. This test drives all three, and doubles as the CI gate
over the example query corpus: every query in examples/queries must lint
clean under --error-on-warning.

  $ for q in $(ls ../examples/queries/*.q | sort); do
  >   printf '%s: ' "$(basename $q)"
  >   ../bin/mrpa.exe lint ../examples/queries/graph.tsv "$(cat $q)" --error-on-warning || echo "FAILED($?)"
  > done
  colleagues.q: no findings
  employer_city.q: no findings
  friend_of_friend.q: no findings
  reachable.q: no findings

A dense relation makes the blowup findings fire. Complete digraph, one
label, fan-out 23 at every vertex:

  $ ../bin/mrpa.exe generate --kind complete -n 24 -k 1 -o dense.tsv
  generated complete: |V|=24 |E|=552 |Omega|=1

L010 — an unbounded star over a dense relation:

  $ ../bin/mrpa.exe lint dense.tsv '[_,r0,_]*'
  warning[L010] at 0-9: unbounded star over a dense relation: up to inf paths within length 8 (body fan-out 23)
    [_,r0,_]*
    ^^^^^^^^^
  1 finding(s): 1 warning(s)

Under --error-on-warning the same finding fails the lint (exit 1):

  $ ../bin/mrpa.exe lint dense.tsv '[_,r0,_]*' --error-on-warning >/dev/null; echo $?
  1

L011 — a product multiplying two nontrivial cardinalities. Blame lands on
the innermost node whose bound crosses the threshold (the outer product:
552^2 x 552 is the first past a million):

  $ ../bin/mrpa.exe lint dense.tsv '[_,r0,_] >< [_,r0,_] >< [_,r0,_]'
  warning[L011] at 0-32: product may multiply cardinalities: 304704 x 552 paths meet here (bound 168196608)
    [_,r0,_] >< [_,r0,_] >< [_,r0,_]
    ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
  1 finding(s): 1 warning(s)

L012 — the same star is infeasible under a stated fuel budget:

  $ ../bin/mrpa.exe lint dense.tsv --fuel 1000 '[_,r0,_]*' | grep L012
  warning[L012] at 0-9: budget-infeasible: predicted cost 3929787625007 work units exceeds the supplied fuel 1000

L013 — a chain longer than the length bound has zero selectivity:

  $ ../bin/mrpa.exe lint dense.tsv --max-length 2 '[_,r0,_] . [_,r0,_] . [_,r0,_]'
  hint[L013] at 0-30: zero selectivity within the length bound: the shortest match here has 3 edges but max length is 2
    [_,r0,_] . [_,r0,_] . [_,r0,_]
    ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
  1 finding(s): 1 hint(s)

The planner consumes the same analysis: EXPLAIN shows the per-node cost
table and the predicted-frontier reasoning behind the strategy choice:

  $ ../bin/mrpa.exe explain ../examples/queries/graph.tsv '[ann,knows,_] . [_,knows,_]'
  plan:
    expression: ([ann,knows,_] . [_,knows,_])
    optimized:  ([ann,knows,_] . [_,knows,_])
    rewrites:   (none)
    strategy:   product-bfs (anchored start (first extent 2 <= 8))
    max length: 8
    cost:       paths <= 2, cost <= 89 work units (frontier <= 2, 2 position(s))
    cost table:
      len       paths      expression
      [2,2]     <=2        ([ann,knows,_] . [_,knows,_])
      [1,1]     <=2        [ann,knows,_]
      [1,1]     <=5        [_,knows,_]

An unanchored query with a small predicted frontier batches
set-at-a-time; the reason records the predicted width:

  $ ../bin/mrpa.exe explain dense.tsv '[_,r0,_] . [_,r0,_]' | grep strategy
    strategy:   stack-machine (unanchored, predicted frontier 12696 <= 65536: set-at-a-time batching)

The server rejects statically infeasible queries before they occupy a
worker. Start one with a predicted-cost ceiling:

  $ ../bin/mrpa.exe serve --graph dense.tsv --socket s.sock --workers 2 --max-predicted-cost 100000 2>serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do test -S s.sock && break; sleep 0.1; done
  $ test -S s.sock && echo socket up
  socket up

A cheap anchored query is admitted:

  $ ../bin/mrpa.exe call --socket s.sock '[v0,r0,v1]' | grep -o '"verdict":"complete"'
  "verdict":"complete"

The dense star is refused with the dedicated error code — note exit 1:

  $ ../bin/mrpa.exe call --socket s.sock '[_,r0,_]*'
  {"mrpa":"mrpa.wire/1","id":null,"ok":false,"error":{"code":"infeasible","message":"predicted cost 3929787625007 work units exceeds the server ceiling 100000; narrow the query or lower max_length"}}
  [1]

The lint verb answers the same analysis over the wire, inline (no worker):

  $ ../bin/mrpa.exe call --socket s.sock --lint '[v0,r0,v1]' | grep -o '"findings":\[\]'
  "findings":[]

Rejections and lints are counted in the server stats:

  $ ../bin/mrpa.exe call --socket s.sock --stats | grep -o '"server.infeasible":[0-9]*'
  "server.infeasible":1
  $ ../bin/mrpa.exe call --socket s.sock --stats | grep -o '"server.lints":[0-9]*'
  "server.lints":1

  $ ../bin/mrpa.exe call --socket s.sock --shutdown >/dev/null
  $ wait $SERVE_PID
