Deterministic workload generation (seeded):

  $ ../bin/mrpa.exe generate --kind ring -n 5 -k 1 -o ring.tsv
  generated ring: |V|=5 |E|=5 |Omega|=1

  $ cat ring.tsv
  # mrpa multi-relational graph
  vertex	v0
  vertex	v1
  vertex	v2
  vertex	v3
  vertex	v4
  v0	r0	v1
  v1	r0	v2
  v2	r0	v3
  v3	r0	v4
  v4	r0	v0

Counting on the ring: one joint walk per start per length.

  $ ../bin/mrpa.exe query ring.tsv 'E{3}' --count
  5

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 4 --count
  21

Simple paths self-limit on the cycle even with a huge bound:

  $ ../bin/mrpa.exe query ring.tsv 'E*' --max-length 40 --simple --count
  21

Uniform sampling is seeded and reproducible:

  $ ../bin/mrpa.exe sample ring.tsv 'E{2}' -n 2 --seed 5
  population: 5 path(s)
  (v1,r0,v2,v2,r0,v3)
  (v0,r0,v1,v1,r0,v2)

Tree workload and destination-anchored query:

  $ ../bin/mrpa.exe generate --kind fig1 -n 2 -m 0 -o f.tsv
  generated fig1: |V|=5 |E|=7 |Omega|=2

  $ ../bin/mrpa.exe query f.tsv '[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])' --max-length 5 --count
  2

  $ ../bin/mrpa.exe cheapest f.tsv '[i,alpha,_] . [_,alpha,_]' --from i --to i
  i              -> i              2.00
  route: (i,alpha,j,j,alpha,i) (2.00)
