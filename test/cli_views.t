Live materialized views over the wire: register a view against a running
server, stream a write in through the journal, and watch analytics over
the view reflect it — no re-registration, no server restart.

Seed a journal and start a primary that tails it:

  $ ../bin/mrpa.exe append j.log --add a,knows,b --add b,knows,c --add c,follows,a
  j.log: 3 records appended (graph now 3 vertices, 3 edges)
  $ ../bin/mrpa.exe serve --journal j.log --role primary --socket p.sock --workers 2 2>serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do test -S p.sock && break; sleep 0.1; done
  $ test -S p.sock && echo socket up
  socket up

Register a word view (incrementally maintained) and an expression view
(re-projected on demand):

  $ ../bin/mrpa.exe views register k --word knows --socket p.sock
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"registered":"k","kind":"word"}}
  $ ../bin/mrpa.exe views register reach --query '[_,knows,_]*' --max-length 4 --socket p.sock
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"registered":"reach","kind":"expr"}}

Registering the same name twice is a bad request (exit 1):

  $ ../bin/mrpa.exe views register k --word follows --socket p.sock
  {"mrpa":"mrpa.wire/1","id":null,"ok":false,"error":{"code":"bad_request","message":"view \"k\" is already registered"}}
  [1]

Read the word view's derived edges and run analytics over it:

  $ ../bin/mrpa.exe views read k --socket p.sock --min-seq 3
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"name":"k","as_of_seq":3,"partial":false,"vertices":3,"edges":2,"pairs":[["a","b"],["b","c"]]}}
  $ ../bin/mrpa.exe views analytics k --measure degree --top 2 --socket p.sock --min-seq 3
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"name":"k","as_of_seq":3,"partial":false,"measure":"degree","vertices":3,"edges":2,"top":[{"vertex":"a","score":1},{"vertex":"b","score":1}]}}

Now stream a write in through the journal — the primary tails the file,
applies the record, and the view folds it in; --min-seq 4 makes the read
wait for the new record so the output is deterministic:

  $ ../bin/mrpa.exe append j.log --add c,knows,d
  j.log: 1 record appended (graph now 4 vertices, 4 edges)
  $ ../bin/mrpa.exe views read k --socket p.sock --min-seq 4
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"name":"k","as_of_seq":4,"partial":false,"vertices":4,"edges":3,"pairs":[["a","b"],["b","c"],["c","d"]]}}
  $ ../bin/mrpa.exe views analytics k --measure components --socket p.sock --min-seq 4
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"name":"k","as_of_seq":4,"partial":false,"measure":"components","vertices":4,"edges":3,"count":1,"largest":4}}

The expression view re-projects when its snapshot moves (expression
projections are boolean, so every derived pair counts 1):

  $ ../bin/mrpa.exe views read reach --counts --socket p.sock --min-seq 4 --limit 3
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"name":"reach","as_of_seq":4,"partial":false,"pairs":[["a","b",1],["a","c",1],["a","d",1]]}}

views list surfaces per-view maintenance accounting (timing normalised;
the growth insert of vertex d forced one full rebuild):

  $ ../bin/mrpa.exe views list --socket p.sock | sed 's/"staleness_ms":[0-9.]*/"staleness_ms":N/g'
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"views":[{"name":"k","kind":"word","spec":"knows","vertices":4,"edges":3,"rebuilds":1,"updates":0,"reprojections":0,"bound":true,"dirty":false,"partial":false,"as_of_seq":4,"staleness_ms":N},{"name":"reach","kind":"expr","spec":"[_,knows,_]*","max_length":4,"vertices":4,"edges":6,"rebuilds":0,"updates":0,"reprojections":1,"bound":true,"dirty":false,"partial":false,"as_of_seq":4,"staleness_ms":N}]}

The server's stats counters see the view plane:

  $ ../bin/mrpa.exe call --socket p.sock --stats | tr ',' '\n' | grep '"server\.view' | sort
  "server.view_analytics":2
  "server.view_lists":1
  "server.view_reads":3
  "server.view_rebuilds":1
  "server.view_registers":2
  "server.view_reprojections":1
  "server.view_updates":0
  "server.views":2

Drop, and the name is gone (unknown_view, exit 1):

  $ ../bin/mrpa.exe views drop k --socket p.sock
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"view":{"dropped":"k"}}
  $ ../bin/mrpa.exe views read k --socket p.sock
  {"mrpa":"mrpa.wire/1","id":null,"ok":false,"error":{"code":"unknown_view","message":"no view named \"k\""}}
  [1]

Shut down:

  $ ../bin/mrpa.exe call --socket p.sock --shutdown
  {"mrpa":"mrpa.wire/1","id":null,"ok":true,"stopping":true}
  $ wait $SERVE_PID
  $ cat serve.log
  mrpa serve: unix:p.sock workers=2 queue=64 journal=j.log (|V|=3 |E|=3 |Omega|=2)
  mrpa serve: listening on unix:p.sock
  mrpa serve: drained, exiting
