(* Robustness and surface coverage: error paths, file-based I/O, printers,
   and small utilities not exercised elsewhere. *)

open Mrpa_graph
open Mrpa_core
module H = Helpers

let tmp_file suffix =
  Filename.temp_file "mrpa_test" suffix

(* --- File-based I/O ------------------------------------------------------ *)

let test_io_save_load_file () =
  let g = H.paper_graph () in
  let path = tmp_file ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path g;
      let h = Io.load path in
      Alcotest.(check int) "|E| preserved" (Digraph.n_edges g) (Digraph.n_edges h);
      Alcotest.(check int) "|V| preserved" (Digraph.n_vertices g)
        (Digraph.n_vertices h))

let test_dot_save_file () =
  let g = H.paper_graph () in
  let path = tmp_file ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dot.save path g;
      let ic = open_in path in
      let first = input_line ic in
      close_in ic;
      Alcotest.(check bool) "digraph header" true
        (String.length first >= 7 && String.sub first 0 7 = "digraph"))

let test_graphml_save_file () =
  let g = H.paper_graph () in
  let path = tmp_file ".graphml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graphml.save path g;
      Alcotest.(check bool) "file non-empty" true
        ((Unix.stat path).Unix.st_size > 100))

let test_viz_save_file () =
  let g = H.paper_graph () in
  let a = Mrpa_automata.Glushkov.build (Expr.sel Selector.universe) in
  let path = tmp_file ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mrpa_automata.Viz.save ~graph:g path a;
      Alcotest.(check bool) "file non-empty" true
        ((Unix.stat path).Unix.st_size > 50))

(* --- Printers ------------------------------------------------------------- *)

let test_path_pp_strings () =
  Alcotest.(check string) "ε prints" "\xCE\xB5"
    (Format.asprintf "%a" Path.pp Path.empty);
  let p = Path.of_edges [ Edge.v 0 1 2; Edge.v 2 0 1 ] in
  Alcotest.(check string) "flattened form" "(0,1,2,2,0,1)"
    (Format.asprintf "%a" Path.pp p)

let test_named_printers () =
  let g = H.paper_graph () in
  let e = H.e g "i" "alpha" "j" in
  Alcotest.(check string) "edge named" "(i,alpha,j)"
    (Format.asprintf "%a" (Digraph.pp_edge g) e);
  Alcotest.(check string) "path named" "(i,alpha,j)"
    (Format.asprintf "%a" (Digraph.pp_path g) (Path.of_edge e));
  let s = Format.asprintf "%a" (Selector.pp_named g) (Selector.src1 (H.v g "i")) in
  Alcotest.(check string) "selector named" "[i,_,_]" s

let test_selector_pp_forms () =
  let s2 =
    Selector.pattern
      ~src:(Vertex.Set.of_list [ 1; 2 ])
      ~lbl:(Label.Set.singleton 0) ()
  in
  Alcotest.(check string) "set positions" "[{1,2},0,_]"
    (Format.asprintf "%a" Selector.pp s2);
  let su =
    Selector.union (Selector.src1 1) (Selector.edge (Edge.v 0 0 1))
  in
  let printed = Format.asprintf "%a" Selector.pp su in
  Alcotest.(check bool) "union prints" true (String.contains printed '|')

let test_path_set_pp () =
  let s = Path_set.of_list [ Path.empty; Path.of_edge (Edge.v 0 0 1) ] in
  let printed = Format.asprintf "%a" Path_set.pp s in
  Alcotest.(check bool) "braces" true
    (printed.[0] = '{' && printed.[String.length printed - 1] = '}')

let test_expr_pp_unicode () =
  Alcotest.(check string) "empty" "\xE2\x88\x85"
    (Format.asprintf "%a" Expr.pp Expr.empty);
  Alcotest.(check string) "epsilon" "\xCE\xB5"
    (Format.asprintf "%a" Expr.pp Expr.epsilon)

(* --- Error paths ------------------------------------------------------------ *)

let check_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_negative_bounds_rejected () =
  let g = H.paper_graph () in
  let u = Expr.sel Selector.universe in
  check_invalid "denote" (fun () -> Expr.denote g ~max_length:(-1) u);
  check_invalid "generate" (fun () ->
      Mrpa_automata.Generator.generate g u ~max_length:(-1));
  check_invalid "stack" (fun () ->
      Mrpa_automata.Stack_machine.run g u ~max_length:(-1));
  check_invalid "counting" (fun () ->
      Mrpa_automata.Counting.count g u ~max_length:(-1));
  check_invalid "sampler" (fun () ->
      Mrpa_automata.Sampler.prepare g u ~max_length:(-1));
  check_invalid "traversal" (fun () -> Traversal.complete g ~length:(-1));
  check_invalid "star" (fun () ->
      Path_set.star_bounded Path_set.epsilon ~max_length:(-1));
  check_invalid "plan" (fun () ->
      Mrpa_engine.Optimizer.plan ~max_length:(-1) g u);
  check_invalid "walk repeat" (fun () ->
      Mrpa_engine.Walk.(start g [] |> repeat (-1) Fun.id));
  check_invalid "label repeat" (fun () -> Label_expr.repeat Label_expr.epsilon (-1))

let test_prng_pick_errors () =
  let rng = Prng.create 0 in
  check_invalid "pick empty array" (fun () -> Prng.pick rng [||]);
  check_invalid "pick empty list" (fun () -> Prng.pick_list rng [])

let test_sampler_run_limited_negative () =
  let g = H.paper_graph () in
  let plan =
    Mrpa_engine.Optimizer.plan ~max_length:2 g (Expr.sel Selector.universe)
  in
  check_invalid "run_limited" (fun () ->
      Mrpa_engine.Eval.run_limited g plan ~limit:(-1))

let test_path_tail_head_exn () =
  check_invalid "tail_exn" (fun () -> Path.tail_exn Path.empty);
  check_invalid "head_exn" (fun () -> Path.head_exn Path.empty);
  check_invalid "sub" (fun () ->
      Path.sub (Path.of_edge (Edge.v 0 0 1)) ~pos:0 ~len:1)

(* --- Misc API surfaces ------------------------------------------------------- *)

let test_edge_universe () =
  let g = H.paper_graph () in
  let u = Digraph.edge_universe g in
  Alcotest.(check int) "cardinal" 7 (Edge.Set.cardinal u);
  Alcotest.(check bool) "member" true (Edge.Set.mem (H.e g "i" "alpha" "j") u)

let test_expr_utilities () =
  let u = Expr.sel Selector.universe in
  Alcotest.(check bool) "union_of []" true (Expr.equal (Expr.union_of []) Expr.empty);
  Alcotest.(check bool) "join_of []" true (Expr.equal (Expr.join_of []) Expr.epsilon);
  Alcotest.(check bool) "union_of [u]" true (Expr.equal (Expr.union_of [ u ]) u);
  Alcotest.(check int) "depth" 2 (Expr.depth (Expr.star u));
  Alcotest.(check bool) "compare reflexive" true (Expr.compare u u = 0)

let test_eval_run_seq_all_strategies () =
  let g = H.paper_graph () in
  let u = Expr.sel Selector.universe in
  List.iter
    (fun strategy ->
      let plan = Mrpa_engine.Optimizer.plan ~strategy ~max_length:1 g u in
      let n = Seq.length (Mrpa_engine.Eval.run_seq g plan) in
      Alcotest.(check int)
        ("run_seq " ^ Mrpa_engine.Plan.strategy_name strategy)
        7 n)
    [
      Mrpa_engine.Plan.Reference;
      Mrpa_engine.Plan.Stack_machine;
      Mrpa_engine.Plan.Product_bfs;
    ]

let test_engine_query_expr_direct () =
  let g = H.paper_graph () in
  let r =
    Mrpa_engine.Engine.query_expr ~max_length:1 g (Expr.sel Selector.universe)
  in
  Alcotest.(check int) "all edges" 7 (Path_set.cardinal r.Mrpa_engine.Engine.paths);
  Alcotest.(check bool) "stats time non-negative" true
    (r.Mrpa_engine.Engine.stats.Mrpa_engine.Eval.elapsed_s >= 0.0)

let test_subset_diagnostics () =
  let m = Mrpa_automata.Subset.make (Expr.star (Expr.sel Selector.universe)) in
  Alcotest.(check bool) "nullable" true (Mrpa_automata.Subset.nullable m);
  let init = Mrpa_automata.Subset.initial m in
  Alcotest.(check bool) "initial accepting" true
    (Mrpa_automata.Subset.accepting m init);
  Alcotest.(check bool) "cached >= 1" true
    (Mrpa_automata.Subset.n_cached_states m >= 1)

let test_crpq_pp_and_variables () =
  let g = H.paper_graph () in
  let q =
    Mrpa_engine.Crpq.parse_exn g
      "select x where (x, [_,alpha,_], y), (y, [_,beta,_], z)"
  in
  Alcotest.(check (list string)) "variables, head first" [ "x"; "y"; "z" ]
    (Mrpa_engine.Crpq.variables q);
  let printed = Format.asprintf "%a" Mrpa_engine.Crpq.pp q in
  Alcotest.(check bool) "pp mentions select" true
    (String.length printed > 10 && String.sub printed 0 6 = "select")

(* --- Render (JSON) ------------------------------------------------------------ *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let test_json_escaping () =
  let open Mrpa_engine.Render in
  Alcotest.(check string) "plain" "\"abc\"" (escape_string "abc");
  Alcotest.(check string) "quote" "\"a\\\"b\"" (escape_string "a\"b");
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (escape_string "a\\b");
  Alcotest.(check string) "newline" "\"a\\nb\"" (escape_string "a\nb");
  Alcotest.(check string) "control" "\"a\\u0001b\"" (escape_string "a\x01b")

let test_json_result_shape () =
  let g = H.paper_graph () in
  let r = Mrpa_engine.Engine.query_exn ~max_length:1 g "[i,alpha,_]" in
  let json = Mrpa_engine.Render.result_json g r in
  Alcotest.(check bool) "object" true (json.[0] = '{');
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true
        (contains ("\"" ^ field ^ "\":") json))
    [ "paths"; "count"; "elapsed_ms"; "strategy"; "rewrites" ];
  Alcotest.(check bool) "count is 2" true (contains "\"count\":2" json);
  Alcotest.(check bool) "edge fields" true (contains "\"label\":\"alpha\"" json)

let test_json_tuples () =
  let g = H.paper_graph () in
  let json =
    Mrpa_engine.Render.tuples_json g ~head:[ "x"; "y" ]
      [ [ H.v g "i"; H.v g "j" ] ]
  in
  Alcotest.(check string) "tuple object"
    "[{\"x\":\"i\",\"y\":\"j\"}]" json

let test_json_epsilon_path () =
  let g = H.paper_graph () in
  let json = Mrpa_engine.Render.path_json g Path.empty in
  Alcotest.(check bool) "empty edges array" true
    (contains "\"edges\":[]" json);
  Alcotest.(check bool) "length 0" true (contains "\"length\":0" json)

let () =
  Alcotest.run "mrpa_misc"
    [
      ( "file-io",
        [
          Alcotest.test_case "io save/load" `Quick test_io_save_load_file;
          Alcotest.test_case "dot save" `Quick test_dot_save_file;
          Alcotest.test_case "graphml save" `Quick test_graphml_save_file;
          Alcotest.test_case "viz save" `Quick test_viz_save_file;
        ] );
      ( "printers",
        [
          Alcotest.test_case "path pp" `Quick test_path_pp_strings;
          Alcotest.test_case "named" `Quick test_named_printers;
          Alcotest.test_case "selector forms" `Quick test_selector_pp_forms;
          Alcotest.test_case "path set" `Quick test_path_set_pp;
          Alcotest.test_case "expr unicode" `Quick test_expr_pp_unicode;
        ] );
      ( "errors",
        [
          Alcotest.test_case "negative bounds" `Quick test_negative_bounds_rejected;
          Alcotest.test_case "prng picks" `Quick test_prng_pick_errors;
          Alcotest.test_case "run_limited" `Quick test_sampler_run_limited_negative;
          Alcotest.test_case "path exn" `Quick test_path_tail_head_exn;
        ] );
      ( "render",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "result shape" `Quick test_json_result_shape;
          Alcotest.test_case "tuples" `Quick test_json_tuples;
          Alcotest.test_case "epsilon path" `Quick test_json_epsilon_path;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "edge universe" `Quick test_edge_universe;
          Alcotest.test_case "expr utilities" `Quick test_expr_utilities;
          Alcotest.test_case "run_seq strategies" `Quick
            test_eval_run_seq_all_strategies;
          Alcotest.test_case "query_expr" `Quick test_engine_query_expr_direct;
          Alcotest.test_case "subset diagnostics" `Quick test_subset_diagnostics;
          Alcotest.test_case "crpq pp" `Quick test_crpq_pp_and_variables;
        ] );
    ]
