(* Social-network inference: the SIV-C motif.

   A typed social network has people, organisations and projects under five
   relation types. A single-relational algorithm (say, PageRank) applied to
   the label-blind projection answers a muddled question — the paper's own
   warning. Instead we derive *semantically precise* single-relational
   graphs through the algebra:

   - "colleague-of-a-friend": E_{knows.works_for} — where do my friends work?
   - "co-membership": people who are two member_of hops apart via a shared
     project (member_of then its reverse is not expressible without inverse
     edges, so we derive project→people via created/member_of fan-in).

   Run with: dune exec examples/social_inference.exe *)

open Mrpa_graph
open Mrpa_core
open Mrpa_analysis

let () =
  let rng = Prng.create 2024 in
  let g = Generate.social ~rng ~n_people:120 ~n_orgs:6 ~n_projects:15 in
  Format.printf "Social graph: %a@.@." Digraph.pp_stats g;

  let knows = Digraph.label g "knows" in
  let works_for = Digraph.label g "works_for" in
  let member_of = Digraph.label g "member_of" in

  (* 1. The paper's warning, quantified: label-blind PageRank vs the
     PageRank of a derived relation. *)
  let blind = Projection.label_blind g in
  let pr_blind = Centrality.pagerank blind in
  Format.printf "Label-blind PageRank (what is this even ranking?):@.%a@."
    (Centrality.pp_ranking ~k:5 ~vertex_name:(fun v ->
         Digraph.vertex_name g (Vertex.of_int v)))
    pr_blind;

  (* 2. E_{knows.works_for}: organisations reachable through a friendship.
     Ranking its in-degree answers: "which employer is most connected to
     the social fabric?" — a crisp question. *)
  let friend_employer = Projection.path_derived g [ knows; works_for ] in
  let indeg = Centrality.in_degree friend_employer in
  Format.printf
    "Organisations by friend-of-employee reach (in-degree of E_knows.works_for):@.%a@."
    (Centrality.pp_ranking ~k:5 ~vertex_name:(fun v ->
         Digraph.vertex_name g (Vertex.of_int v)))
    indeg;

  (* 3. Same relation through the engine's textual syntax, streaming a few
     witness paths. *)
  let r =
    Mrpa_engine.Engine.query_exn ~max_length:2 ~limit:5 g
      "[_,knows,_] . [_,works_for,_]"
  in
  Format.printf "Example knows.works_for witnesses:@.";
  Path_set.iter
    (fun p -> Format.printf "  %a@." (Digraph.pp_path g) p)
    r.Mrpa_engine.Engine.paths;

  (* 4. Popular projects: people flowing into projects via membership after
     any number of knows hops — '[_,knows,_]{0,2} . [_,member_of,_]'. *)
  let reach =
    Mrpa_engine.Engine.query_exn ~max_length:3 g
      "[_,knows,_]{0,2} . [_,member_of,_]"
  in
  let member_paths = reach.Mrpa_engine.Engine.paths in
  let by_project = Hashtbl.create 16 in
  Path_set.iter
    (fun p ->
      match Path.head p with
      | Some v ->
        Hashtbl.replace by_project v
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_project v))
      | None -> ())
    member_paths;
  let ranked =
    Hashtbl.fold (fun v c acc -> (v, c) :: acc) by_project []
    |> List.sort (fun (_, c1) (_, c2) -> Int.compare c2 c1)
  in
  Format.printf
    "@.Projects by social reachability (paths of <=2 knows hops then member_of):@.";
  List.iteri
    (fun idx (v, c) ->
      if idx < 5 then
        Format.printf "  %-10s %d inbound paths@." (Digraph.vertex_name g v) c)
    ranked;

  (* 5. Discrete assortativity over the label-blind projection, with
     categories = entity type (person/org/project), showing the typed
     structure the labels encode. *)
  let categories =
    Array.init (Digraph.n_vertices g) (fun v ->
        let name = Digraph.vertex_name g (Vertex.of_int v) in
        if String.length name > 0 && name.[0] = 'p' && String.length name > 1 && name.[1] <> 'r'
        then 0 (* person: p<i> *)
        else if String.length name >= 3 && String.sub name 0 3 = "org" then 1
        else 2 (* project *))
  in
  Format.printf "@.Discrete (type) assortativity of the label-blind graph: %.3f@."
    (Assortativity.discrete ~categories blind);

  (* 6. The same inference, Gremlin-style: friends-of-friends who work for
     org0, as a left-to-right pipeline. *)
  let p0 = Digraph.vertex g "p0" in
  let org0 = Digraph.vertex g "org0" in
  let fof_employers =
    Mrpa_engine.Walk.(
      start g [ p0 ]
      |> out ~label:knows |> out ~label:knows
      |> out ~label:works_for
      |> filter (Vertex.equal org0)
      |> count)
  in
  Format.printf
    "@.Walk: paths p0 -knows-> _ -knows-> _ -works_for-> org0: %d@."
    fof_employers;

  (* 7. A conjunctive query: mutual friends who share an employer. *)
  let q =
    Mrpa_engine.Crpq.parse_exn g
      "select x, y where (x, [_,knows,_], y), (y, [_,knows,_], x), \
       (x, [_,works_for,_], z), (y, [_,works_for,_], z)"
  in
  let colleagues = Mrpa_engine.Crpq.eval ~max_length:1 g q in
  Format.printf "Mutual friends sharing an employer (CRPQ): %d pair(s)@."
    (List.length colleagues);

  (* 8. Communities of the knows-graph, with modularity. *)
  let knows_graph = Projection.single_label g knows in
  let communities = Communities.label_propagation knows_graph in
  Format.printf "knows-communities: %d (modularity %.3f)@."
    communities.Communities.n_communities
    (Communities.modularity knows_graph communities);
  ignore member_of
