(* Regular path queries over an RDF-ish knowledge graph (SIV-A/SIV-B).

   The movie-domain graph has people, films and cities under six relation
   types. We pose regular path queries in the paper's own notation, compare
   the recogniser strategies on a concrete path, and show the generator
   bound in action on a starred query.

   Run with: dune exec examples/knowledge_graph.exe *)

open Mrpa_graph
open Mrpa_core
open Mrpa_automata

let () =
  let rng = Prng.create 7 in
  let g = Generate.knowledge_base ~rng ~n_entities:60 in
  Format.printf "Knowledge graph: %a@.@." Digraph.pp_stats g;

  (* 1. Co-stars: two actors linked through a film. Our algebra has no
     inverse step, so we phrase it as acted_in then the film's other
     acted_in edge reversed — i.e. we materialise the reverse relation as
     its own label first. This is itself an idiomatic use of the algebra:
     relations are data. *)
  let acted_in = Digraph.label g "acted_in" in
  let cast_of = Digraph.materialise_reverse g ~suffix:"_rev" acted_in in
  ignore cast_of;
  let costars =
    Mrpa_engine.Engine.query_exn ~max_length:2 g
      "[_,acted_in,_] . [_,acted_in_rev,_]"
  in
  let pairs = Path_set.endpoint_pairs costars.Mrpa_engine.Engine.paths in
  let proper = List.filter (fun (a, b) -> not (Vertex.equal a b)) pairs in
  Format.printf "Co-star pairs (acted_in . acted_in_rev, excluding self): %d@."
    (List.length proper);
  List.iteri
    (fun i (a, b) ->
      if i < 5 then
        Format.printf "  %s ~ %s@." (Digraph.vertex_name g a)
          (Digraph.vertex_name g b))
    proper;

  (* 2. Influence chains ending in a director: influenced+ . directed. *)
  let influence =
    Mrpa_engine.Engine.query_exn ~max_length:4 g
      "[_,influenced,_]+ . [_,directed,_]"
  in
  Format.printf
    "@.Influence chains reaching a film (influenced+ . directed, <=4 hops): %d@."
    (Path_set.cardinal influence.Mrpa_engine.Engine.paths);

  (* 3. Recogniser strategies agree on a concrete witness. *)
  (match Path_set.elements influence.Mrpa_engine.Engine.paths with
  | [] -> Format.printf "(no witness to recognise)@."
  | witness :: _ ->
    let expr = influence.Mrpa_engine.Engine.plan.Mrpa_engine.Plan.optimized in
    Format.printf "@.Witness: %a@." (Digraph.pp_path g) witness;
    List.iter
      (fun (name, strategy) ->
        let accept = Recognizer.make ~strategy ~graph:g expr in
        Format.printf "  %-10s -> %b@." name (accept witness))
      Recognizer.strategies);

  (* 4. Where is the industry? Films set in a city whose director was born
     in the same city — a join the ternary representation makes precise:
     compare endpoints of two derived relations. *)
  let directed = Digraph.label g "directed" in
  let set_in = Digraph.label g "set_in" in
  let born_in = Digraph.label g "born_in" in
  let film_city = Mrpa_analysis.Projection.path_derived g [ directed; set_in ] in
  let birth_city = Mrpa_analysis.Projection.single_label g born_in in
  let matches = ref 0 in
  List.iter
    (fun (director, city) ->
      if Mrpa_analysis.Simple_graph.mem_edge birth_city director city then
        incr matches)
    (Mrpa_analysis.Simple_graph.edges film_city);
  Format.printf
    "@.Directors with a film set in their birth city: %d of %d director-city pairs@."
    !matches
    (Mrpa_analysis.Simple_graph.n_edges film_city);

  (* 5. Generator bound in action: unbounded influence* would diverge on
     cycles; the engine's max_length keeps it finite and exact up to the
     bound. *)
  List.iter
    (fun bound ->
      let r =
        Mrpa_engine.Engine.query_exn ~max_length:bound g "[_,influenced,_]*"
      in
      Format.printf "influenced* with max_length=%d: %d paths@." bound
        (Path_set.cardinal r.Mrpa_engine.Engine.paths))
    [ 1; 2; 3; 4 ]
