[_,works_at,_] . [_,located_in,_]
