[_,works_at,acme]
