[ann,knows,_] . [_,knows,_]*
