(* Bibliometrics: citation/authorship analysis via derived relations.

   A scholarly graph has authors and papers with 'authored' and 'cites'
   relations. Classical bibliometric constructions are exactly SIV-C
   derivations:

   - author influence graph   E_{authored.cites.cast-back}: approximated
     here as authored . cites (author → cited paper), then ranked;
   - co-citation strength     via the counting matrix product, where entry
     (p,q) counts distinct papers citing both p and q.

   Run with: dune exec examples/bibliometrics.exe *)

open Mrpa_graph
open Mrpa_analysis

let build_scholarly_graph () =
  let rng = Prng.create 1234 in
  let g = Digraph.create () in
  let n_authors = 40 and n_papers = 120 in
  let authors =
    Array.init n_authors (fun i -> Digraph.vertex g (Printf.sprintf "author%d" i))
  in
  let papers =
    Array.init n_papers (fun i -> Digraph.vertex g (Printf.sprintf "paper%d" i))
  in
  let authored = Digraph.label g "authored" in
  let cites = Digraph.label g "cites" in
  (* Papers arrive in order and cite earlier papers preferentially. *)
  let citation_mass = ref [ papers.(0) ] in
  Array.iteri
    (fun idx p ->
      (* 1-3 authors, preferring low-index (senior) authors *)
      let n_auth = 1 + Prng.int rng 3 in
      for _ = 1 to n_auth do
        let a = authors.(Prng.int rng (1 + Prng.int rng n_authors)) in
        ignore (Digraph.add_edge g (Edge.make ~tail:a ~label:authored ~head:p))
      done;
      if idx > 0 then begin
        let pool = Array.of_list !citation_mass in
        let n_refs = min idx (2 + Prng.int rng 4) in
        for _ = 1 to n_refs do
          let target = Prng.pick rng pool in
          if not (Vertex.equal target p) then begin
            if Digraph.add_edge g (Edge.make ~tail:p ~label:cites ~head:target)
            then citation_mass := target :: !citation_mass
          end
        done
      end;
      citation_mass := p :: !citation_mass)
    papers;
  (g, authored, cites)

let () =
  let g, authored, cites = build_scholarly_graph () in
  Format.printf "Scholarly graph: %a@.@." Digraph.pp_stats g;

  (* 1. E_{cites}: classic citation ranking with PageRank — run on the
     transpose so that being cited raises your rank. *)
  let citation = Projection.single_label g cites in
  let pr = Centrality.pagerank (Simple_graph.transpose citation) in
  Format.printf "Most influential papers (PageRank on reversed citations):@.%a@."
    (Centrality.pp_ranking ~k:5 ~vertex_name:(fun v ->
         Digraph.vertex_name g (Vertex.of_int v)))
    pr;

  (* 2. E_{authored.cites}: author → paper-they-cite, the SIV-C derivation.
     In-degree of papers in this graph = "citations weighted by authorship
     breadth"; out-degree of authors = their referencing activity. *)
  let author_cites = Projection.path_derived g [ authored; cites ] in
  Format.printf
    "Authors by referencing reach (out-degree of E_authored.cites):@.%a@."
    (Centrality.pp_ranking ~k:5 ~vertex_name:(fun v ->
         Digraph.vertex_name g (Vertex.of_int v)))
    (Centrality.out_degree author_cites);

  (* 3. Co-citation counts via the counting matrix product: C = AᵀA where
     A = citation adjacency; C(p,q) = number of papers citing both. *)
  let a = Projection.adjacency_slice g cites in
  let co = Sparse.mul (Sparse.transpose a) a in
  let off_diagonal =
    List.filter (fun (i, j, _) -> i <> j) (Sparse.to_coo co)
  in
  let strongest =
    List.sort (fun (_, _, v1) (_, _, v2) -> Float.compare v2 v1) off_diagonal
  in
  Format.printf "Strongest co-citation pairs:@.";
  List.iteri
    (fun idx (i, j, v) ->
      if idx < 5 then
        Format.printf "  %-10s %-10s co-cited by %.0f papers@."
          (Digraph.vertex_name g (Vertex.of_int i))
          (Digraph.vertex_name g (Vertex.of_int j))
          v)
    strongest;

  (* 4. Sanity: the boolean skeleton of AᵀA equals the path-derived
     relation of the label word [cites-reversed; cites], computed through
     the algebra by materialising the reverse relation. *)
  let cited_by = Digraph.materialise_reverse g ~suffix:"_by" cites in
  let via_algebra = Projection.path_derived g [ cited_by; cites ] in
  let via_matrix = Simple_graph.of_sparse_bool co in
  Format.printf "@.AᵀA boolean skeleton = E_(cited_by.cites) derived by joins: %b@."
    (Simple_graph.equal via_algebra via_matrix);

  (* 5. Spreading activation from a seed paper over the citation graph:
     "related reading" by diffusion. *)
  let seed = Digraph.vertex g "paper0" in
  let activation =
    Centrality.spreading_activation
      ~seeds:[ (Vertex.to_int seed, 1.0) ]
      ~steps:4
      (Simple_graph.transpose citation)
  in
  Format.printf "@.Related reading for paper0 (spreading activation):@.%a@."
    (Centrality.pp_ranking ~k:5 ~vertex_name:(fun v ->
         Digraph.vertex_name g (Vertex.of_int v)))
    activation;
  ignore authored
