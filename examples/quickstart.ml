(* Quickstart: the paper's algebra in one small program.

   Build the multi-relational graph from the paper's SII worked example,
   compute A ./o B exactly as printed there, run the SIII traversal idioms,
   and finish with the Figure 1 regular path query through the engine.

   Run with: dune exec examples/quickstart.exe *)

open Mrpa_graph
open Mrpa_core

let () =
  (* 1. A multi-relational graph G = (V, E ⊆ V × Ω × V). *)
  let g = Digraph.create () in
  List.iter
    (fun (t, l, h) -> ignore (Digraph.add g t l h))
    [
      ("i", "alpha", "j");
      ("j", "beta", "k");
      ("k", "alpha", "j");
      ("j", "beta", "j");
      ("j", "beta", "i");
      ("i", "alpha", "k");
      ("i", "beta", "k");
    ];
  Format.printf "Graph: %a@.@." Digraph.pp_stats g;

  (* 2. The SII worked example: A ./o B. *)
  let e t l h =
    Edge.make ~tail:(Digraph.vertex g t) ~label:(Digraph.label g l)
      ~head:(Digraph.vertex g h)
  in
  let a =
    Path_set.of_list
      [
        Path.of_edge (e "i" "alpha" "j");
        Path.of_edges [ e "j" "beta" "k"; e "k" "alpha" "j" ];
      ]
  in
  let b =
    Path_set.of_list
      [
        Path.of_edge (e "j" "beta" "j");
        Path.of_edges [ e "j" "beta" "i"; e "i" "alpha" "k" ];
        Path.of_edge (e "i" "beta" "k");
      ]
  in
  Format.printf "A ./o B = %a@.@." (Path_set.pp_named g) (Path_set.join a b);

  (* 3. SIII traversal idioms. *)
  let i = Vertex.Set.singleton (Digraph.vertex g "i") in
  Format.printf "complete traversal, length 2: %d joint paths@."
    (Path_set.cardinal (Traversal.complete g ~length:2));
  Format.printf "source traversal from i, length 2: %d paths@."
    (Path_set.cardinal (Traversal.source g ~from:i ~length:2));
  let alpha = Label.Set.singleton (Digraph.label g "alpha") in
  let beta = Label.Set.singleton (Digraph.label g "beta") in
  Format.printf "alpha-then-beta labeled traversal: %a@.@."
    (Path_set.pp_named g)
    (Traversal.labeled g ~labels:[ alpha; beta ]);

  (* 4. The Figure 1 regular path query, through the engine. *)
  let text =
    "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])"
  in
  let result = Mrpa_engine.Engine.query_exn ~max_length:6 g text in
  Format.printf "Figure 1 query %s@.-> %d path(s):@." text
    (Path_set.cardinal result.Mrpa_engine.Engine.paths);
  Path_set.iter
    (fun p -> Format.printf "   %a@." (Digraph.pp_path g) p)
    result.Mrpa_engine.Engine.paths
