(* Weighted regular path queries: one traversal, many semirings.

   A freight network has cities connected by three relation types — truck,
   rail, ship — with per-leg cost, reliability and capacity. Shipping policy
   is a regular path expression in the paper's algebra: first and last mile
   by truck, any long-haul combination of rail and ship in between:

       truck . (rail | ship)* . truck

   The same compiled automaton then answers three different questions by a
   change of semiring (Mrpa_semiring.Eval):
   - Tropical  (min, +)   : cheapest admissible route per city pair
   - Viterbi   (max, x)   : most reliable route
   - Bottleneck(max, min) : maximal guaranteed capacity

   Run with: dune exec examples/logistics.exe *)

open Mrpa_graph
open Mrpa_core
open Mrpa_semiring

let build_network () =
  let g = Digraph.create () in
  let add t l h = ignore (Digraph.add g t l h) in
  (* Local truck legs around two hubs *)
  add "factory" "truck" "hub_west";
  add "factory" "truck" "port_west";
  add "hub_east" "truck" "store";
  add "port_east" "truck" "store";
  add "hub_west" "truck" "port_west";
  (* Long-haul rail *)
  add "hub_west" "rail" "hub_mid";
  add "hub_mid" "rail" "hub_east";
  add "hub_west" "rail" "hub_east";
  (* Ocean legs *)
  add "port_west" "ship" "port_east";
  add "port_west" "ship" "port_mid";
  add "port_mid" "ship" "port_east";
  (* Intermodal transfers *)
  add "hub_mid" "rail" "port_mid";
  add "port_mid" "ship" "hub_east";
  g

(* Per-leg attributes, keyed by mode with a distance factor derived from the
   endpoints (deterministic and self-contained). *)
let leg_cost g e =
  let base =
    match Digraph.label_name g (Edge.label e) with
    | "truck" -> 40.0
    | "rail" -> 25.0
    | _ -> 15.0 (* ship *)
  in
  let spread = float_of_int (1 + (Edge.hash e land 3)) in
  base +. spread

let leg_reliability g e =
  match Digraph.label_name g (Edge.label e) with
  | "truck" -> 0.99
  | "rail" -> 0.97
  | _ -> 0.90

let leg_capacity g e =
  match Digraph.label_name g (Edge.label e) with
  | "truck" -> 20.0
  | "rail" -> 120.0
  | _ -> 400.0

let () =
  let g = build_network () in
  Format.printf "Freight network: %a@.@." Digraph.pp_stats g;

  let policy = "[_,truck,_] . ([_,rail,_] | [_,ship,_])* . [_,truck,_]" in
  let expr = Mrpa_engine.Parser.parse_exn g policy in
  Format.printf "Routing policy: %s@.@." policy;

  let factory = Digraph.vertex g "factory" in
  let store = Digraph.vertex g "store" in
  let max_length = 6 in

  (* 0. What admissible routes exist at all? (The set view, SIV-B.) *)
  let routes = Mrpa_automata.Generator.generate g expr ~max_length in
  Format.printf "%d admissible route(s) in total; factory->store:@."
    (Path_set.cardinal routes);
  Path_set.iter
    (fun p ->
      if Path.tail p = Some factory && Path.head p = Some store then
        Format.printf "  %a@." (Digraph.pp_path g) p)
    routes;

  (* 1. Cheapest admissible route per pair (tropical semiring). *)
  let cheapest =
    Eval.cheapest_paths ~weight:(leg_cost g) g expr ~max_length
  in
  Format.printf "@.Cheapest factory->store: %.1f@."
    (match List.assoc_opt (factory, store) cheapest with
    | Some c -> c
    | None -> nan);

  (* 1b. ...and the actual route achieving it. *)
  (match
     Witness.cheapest
       (Witness.prepare ~weight:(leg_cost g) g expr ~max_length)
       ~source:factory ~target:store
   with
  | Some (route, cost) ->
    Format.printf "  via %a (%.1f)@." (Digraph.pp_path g) route cost
  | None -> Format.printf "  (no route)@.");

  (* 2. Most reliable route (Viterbi). *)
  let reliable =
    Eval.run (module Semiring.Viterbi) ~weight:(leg_reliability g) g expr
      ~max_length
  in
  Format.printf "Best reliability factory->store: %.4f@."
    (Eval.pair_value (module Semiring.Viterbi) reliable factory store);

  (* 3. Widest guaranteed capacity (bottleneck). *)
  let capacity =
    Eval.run (module Semiring.Bottleneck) ~weight:(leg_capacity g) g expr
      ~max_length
  in
  Format.printf "Best bottleneck capacity factory->store: %.0f@."
    (Eval.pair_value (module Semiring.Bottleneck) capacity factory store);

  (* 4. How many admissible routes per pair (counting), cross-checked
     against the set view. *)
  let counts = Eval.count_pairs g expr ~max_length in
  let direct =
    Path_set.cardinal
      (Path_set.filter
         (fun p -> Path.tail p = Some factory && Path.head p = Some store)
         routes)
  in
  Format.printf "Route count factory->store: %d (set view agrees: %b)@."
    (match List.assoc_opt (factory, store) counts with Some c -> c | None -> 0)
    (match List.assoc_opt (factory, store) counts with
    | Some c -> c = direct
    | None -> direct = 0);

  (* 5. Tighten the policy: no ocean legs. The cheapest route responds. *)
  let rail_only = "[_,truck,_] . [_,rail,_]* . [_,truck,_]" in
  let expr2 = Mrpa_engine.Parser.parse_exn g rail_only in
  let cheapest2 =
    Eval.cheapest_paths ~weight:(leg_cost g) g expr2 ~max_length
  in
  Format.printf "@.Policy %s@.Cheapest factory->store: %.1f@." rail_only
    (match List.assoc_opt (factory, store) cheapest2 with
    | Some c -> c
    | None -> nan)
