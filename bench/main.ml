(* Experiment harness.

   The paper has no empirical evaluation (no tables; one figure), so this
   executable regenerates the experiment suite defined in DESIGN.md §2/§5:
   EXP-F1 reproduces Figure 1 executably, EXP-T1..T7 turn each quantitative
   claim the paper makes in prose into a measured table. Run with no
   arguments to execute everything at the default scale; pass experiment
   names (fig1, micro, join-vs-product, traversals, recognizers, generators,
   counting, label-regex, optimizer, semirings, projection, views,
   label-loss, guardrails, serve, journal) to select, and "--full" for larger sweeps. Pass "--json FILE"
   to also write a machine-readable run summary (schema mrpa.bench/1):
   per-experiment wall time plus engine execution profiles for a fixed set
   of representative queries. *)

open Mrpa_graph
open Mrpa_core
open Mrpa_automata
open Mrpa_analysis
open Mrpa_baseline
module Optimizer = Mrpa_engine.Optimizer
module Metrics = Mrpa_engine.Metrics

(* Wall-clock timing on CLOCK_MONOTONIC: benchmark intervals must not jump
   with NTP slews or manual clock changes, which Unix.gettimeofday does. *)
let time f =
  let t0 = Metrics.now_ns () in
  let r = f () in
  (r, Int64.to_float (Metrics.elapsed_ns ~since:t0) /. 1e9)

let ms t = Printf.sprintf "%.2f" (1000.0 *. t)

(* --- Minimal aligned-table printer ----------------------------------- *)

let print_table ~title ~header rows =
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell -> max (List.nth acc i) (String.length cell))
          row)
      (List.map (fun _ -> 0) header)
      all
  in
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (List.nth widths i - String.length cell) ' ')
         row)
  in
  Printf.printf "\n%s\n" title;
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n" (String.make (String.length (render header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows;
  flush stdout

let section id claim =
  Printf.printf "\n=== %s ===\n%s\n" id claim;
  flush stdout

(* --- Shared fixtures --------------------------------------------------- *)

(* The Figure 1 expression, built against any graph that names i, j, k,
   alpha, beta. *)
let fig1_expr g =
  let i = Digraph.vertex g "i"
  and j = Digraph.vertex g "j"
  and k = Digraph.vertex g "k" in
  let alpha = Digraph.label g "alpha" and beta = Digraph.label g "beta" in
  let open Expr.Dsl in
  Expr.sel
    (Selector.pattern ~src:(Vertex.Set.singleton i)
       ~lbl:(Label.Set.singleton alpha) ())
  <.> Expr.star (Expr.sel (Selector.label1 beta))
  <.> (Expr.sel
         (Selector.pattern ~lbl:(Label.Set.singleton alpha)
            ~dst:(Vertex.Set.singleton j) ())
       <.> Expr.edge (Edge.make ~tail:j ~label:alpha ~head:i)
      <|> Expr.sel
            (Selector.pattern ~lbl:(Label.Set.singleton alpha)
               ~dst:(Vertex.Set.singleton k) ()))

(* --- EXP-F1: Figure 1 --------------------------------------------------- *)

let exp_fig1 ~full =
  section "EXP-F1 (Figure 1)"
    "The paper's only figure: the automaton for [i,a,_] . [_,b,_]* .\n\
     (([_,a,j] . {(j,a,i)}) | [_,a,k]). Four independent implementations\n\
     must produce the same path set: the reference denotation, the paper's\n\
     stack machine (SIV-B), product-graph BFS, and recognising (SIV-A) the\n\
     complete source traversal from i.";
  let sizes =
    if full then [ (5, 15); (20, 60); (50, 170); (100, 400) ]
    else [ (5, 15); (20, 60); (40, 130) ]
  in
  let max_length = 5 in
  let rows =
    List.map
      (fun (nv, ne) ->
        let g =
          Generate.fig1 ~rng:(Prng.create 42) ~n_noise_vertices:nv
            ~n_noise_edges:ne
        in
        let r = fig1_expr g in
        let reference, t_ref = time (fun () -> Expr.denote g ~max_length r) in
        let stack, t_stack = time (fun () -> Stack_machine.run g r ~max_length) in
        let bfs, t_bfs = time (fun () -> Generator.generate g r ~max_length) in
        let filtered, t_filter =
          time (fun () ->
              let i = Vertex.Set.singleton (Digraph.vertex g "i") in
              let accept = Recognizer.make ~strategy:Recognizer.Nfa r in
              let acc = ref Path_set.empty in
              for len = 1 to max_length do
                let candidates = Traversal.source g ~from:i ~length:len in
                acc := Path_set.union !acc (Path_set.filter accept candidates)
              done;
              !acc)
        in
        let agree =
          Path_set.equal reference stack
          && Path_set.equal reference bfs
          && Path_set.equal reference filtered
        in
        [
          string_of_int (Digraph.n_vertices g);
          string_of_int (Digraph.n_edges g);
          string_of_int (Path_set.cardinal reference);
          ms t_ref;
          ms t_stack;
          ms t_bfs;
          ms t_filter;
          string_of_bool agree;
        ])
      sizes
  in
  print_table
    ~title:"Figure 1: four implementations, one path set (times in ms)"
    ~header:
      [ "|V|"; "|E|"; "paths"; "denote"; "stack"; "bfs"; "recognise"; "agree" ]
    rows

(* --- EXP-T1: core-operation micro-costs (bechamel) ----------------------- *)

let exp_micro ~full =
  section "EXP-T1 (micro)"
    "Cost of each core operation of SII: concatenation, projections,\n\
     jointness, union, concatenative join, concatenative product.";
  let g =
    Generate.uniform ~rng:(Prng.create 7) ~n_vertices:40
      ~n_edges:(if full then 400 else 200)
      ~n_labels:3
  in
  let edges = Array.of_list (Digraph.edges g) in
  let rng = Prng.create 11 in
  let walk len =
    Path.of_edges
      (List.init len (fun _ -> edges.(Prng.int rng (Array.length edges))))
  in
  let p8 = walk 8 and q8 = walk 8 in
  let edge_set = Path_set.all_edges g in
  let half =
    Path_set.of_edges (List.filteri (fun i _ -> i mod 2 = 0) (Digraph.edges g))
  in
  let small_set =
    Path_set.of_edges (List.filteri (fun i _ -> i < 30) (Digraph.edges g))
  in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"core"
      [
        Test.make ~name:"concat-8+8" (Staged.stage (fun () -> Path.concat p8 q8));
        Test.make ~name:"sigma-nth" (Staged.stage (fun () -> Path.nth p8 5));
        Test.make ~name:"label-word-8"
          (Staged.stage (fun () -> Path.label_word p8));
        Test.make ~name:"is-joint-8" (Staged.stage (fun () -> Path.is_joint p8));
        Test.make ~name:"union-half"
          (Staged.stage (fun () -> Path_set.union edge_set half));
        Test.make ~name:"join-ExE"
          (Staged.stage (fun () -> Path_set.join edge_set edge_set));
        Test.make ~name:"product-30x30"
          (Staged.stage (fun () -> Path_set.product small_set small_set));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let estimate =
          match Analyze.OLS.estimates ols_result with
          | Some [ e ] -> Printf.sprintf "%.1f" e
          | Some _ | None -> "n/a"
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "n/a"
        in
        [ name; estimate; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  print_table ~title:"Core operation costs (OLS estimate)"
    ~header:[ "operation"; "ns/run"; "r^2" ]
    rows

(* --- EXP-T2: join vs product (footnote 7) --------------------------------- *)

let exp_join_vs_product ~full =
  section "EXP-T2 (join vs product)"
    "Footnote 7: R ./o Q is a subset of R ><o Q and 'a more efficient use of\n\
     resources' when only joint paths are wanted. We compute E ./o E directly\n\
     and as a filtered Cartesian product.";
  let sizes = if full then [ 50; 100; 200; 400; 800 ] else [ 50; 100; 200; 400 ] in
  let rows =
    List.map
      (fun m ->
        let g =
          Generate.uniform ~rng:(Prng.create 13) ~n_vertices:(max 8 (m / 5))
            ~n_edges:m ~n_labels:3
        in
        let e = Path_set.all_edges g in
        let joined, t_join = time (fun () -> Path_set.join e e) in
        let filtered, t_filtered =
          time (fun () -> Path_set.restrict_joint (Path_set.product e e))
        in
        [
          string_of_int m;
          string_of_int (Path_set.cardinal joined);
          string_of_int (m * m);
          ms t_join;
          ms t_filtered;
          Printf.sprintf "%.1fx" (t_filtered /. max 1e-9 t_join);
          string_of_bool (Path_set.equal joined filtered);
        ])
      sizes
  in
  print_table
    ~title:"E ./o E: indexed join vs filtered Cartesian product (times in ms)"
    ~header:
      [ "|E|"; "|join|"; "|product|"; "join"; "prod+filter"; "speedup"; "sound" ]
    rows

(* --- EXP-T3: traversal idioms (SIII) --------------------------------------- *)

let exp_traversals ~full =
  section "EXP-T3 (traversal idioms)"
    "SIII: complete traversal vs source/destination/labeled restriction.\n\
     Restricting the join operands shrinks both the result and the work.";
  let layers = 6 and width = if full then 12 else 8 in
  let g =
    Generate.layered ~rng:(Prng.create 17) ~layers ~width ~fanout:3 ~n_labels:4
  in
  let v0 = Digraph.vertex g "l0_0" in
  let r0 = Digraph.label g "r0" in
  let rows = ref [] in
  for length = 1 to 4 do
    let complete, t_complete = time (fun () -> Traversal.complete g ~length) in
    let source, t_source =
      time (fun () -> Traversal.source g ~from:(Vertex.Set.singleton v0) ~length)
    in
    let target = Digraph.vertex g (Printf.sprintf "l%d_0" length) in
    let dest, t_dest =
      time (fun () ->
          Traversal.destination g ~into:(Vertex.Set.singleton target) ~length)
    in
    let labeled, t_labeled =
      time (fun () ->
          Traversal.labeled g
            ~labels:(List.init length (fun _ -> Label.Set.singleton r0)))
    in
    let between, t_between =
      time (fun () ->
          Traversal.between g ~from:(Vertex.Set.singleton v0)
            ~into:(Vertex.Set.singleton target) ~length)
    in
    rows :=
      [
        string_of_int length;
        Printf.sprintf "%d/%s" (Path_set.cardinal complete) (ms t_complete);
        Printf.sprintf "%d/%s" (Path_set.cardinal source) (ms t_source);
        Printf.sprintf "%d/%s" (Path_set.cardinal dest) (ms t_dest);
        Printf.sprintf "%d/%s" (Path_set.cardinal labeled) (ms t_labeled);
        Printf.sprintf "%d/%s" (Path_set.cardinal between) (ms t_between);
      ]
      :: !rows
  done;
  print_table
    ~title:
      (Printf.sprintf "Layered DAG (%d layers x %d, |E|=%d): paths/ms per idiom"
         layers width (Digraph.n_edges g))
    ~header:[ "len"; "complete"; "source"; "destination"; "labeled"; "between" ]
    (List.rev !rows)

(* --- EXP-T3b: join-order planning ------------------------------------------------ *)

let exp_join_order ~full =
  section "EXP-T3b (join-order planning)"
    "SIII says restriction limits the derived set; associativity of ./o\n\
     means the restriction can be applied FIRST regardless of where it sits\n\
     in the chain. Left-to-right evaluation of a destination-anchored chain\n\
     pays for the unanchored prefix; pivoting at the anchor does not.";
  let layers = 6 and width = if full then 12 else 8 in
  let g =
    Generate.layered ~rng:(Prng.create 73) ~layers ~width ~fanout:3 ~n_labels:4
  in
  let rows =
    List.map
      (fun len ->
        (* anchor at the best-connected vertex of layer [len] *)
        let target =
          List.fold_left
            (fun best slot ->
              let v = Digraph.vertex g (Printf.sprintf "l%d_%d" len slot) in
              if Digraph.in_degree g v > Digraph.in_degree g best then v
              else best)
            (Digraph.vertex g (Printf.sprintf "l%d_0" len))
            (List.init width Fun.id)
        in
        let chain =
          List.init len (fun idx ->
              if idx = len - 1 then Selector.dst_in (Vertex.Set.singleton target)
              else Selector.universe)
        in
        let ltr, t_ltr = time (fun () -> Traversal.steps g chain) in
        let planned, t_planned = time (fun () -> Traversal.steps_planned g chain) in
        [
          string_of_int len;
          string_of_int (Path_set.cardinal ltr);
          ms t_ltr;
          ms t_planned;
          Printf.sprintf "%.1fx" (t_ltr /. max 1e-9 t_planned);
          string_of_bool (Path_set.equal ltr planned);
        ])
      [ 2; 3; 4 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "Destination-anchored chain on layered DAG (|E|=%d): left-to-right vs planned"
         (Digraph.n_edges g))
    ~header:[ "len"; "paths"; "left-to-right"; "planned"; "speedup"; "agree" ]
    rows

(* --- EXP-T4: recognizer strategies (SIV-A) ----------------------------------- *)

let exp_recognizers ~full =
  section "EXP-T4 (recognizer strategies)"
    "SIV-A: one regular path expression, five recognition strategies. The\n\
     corpus mixes accepted and rejected paths; all strategies must agree.";
  let g =
    Generate.fig1 ~rng:(Prng.create 23)
      ~n_noise_vertices:(if full then 60 else 30)
      ~n_noise_edges:(if full then 250 else 100)
  in
  let r = fig1_expr g in
  let rng = Prng.create 29 in
  let edges = Array.of_list (Digraph.edges g) in
  let corpus =
    let walks =
      List.init
        (if full then 3000 else 1000)
        (fun _ ->
          let start = edges.(Prng.int rng (Array.length edges)) in
          let rec extend acc last n =
            if n = 0 then List.rev acc
            else
              match Digraph.out_edges g (Edge.head last) with
              | [] -> List.rev acc
              | out ->
                let next = List.nth out (Prng.int rng (List.length out)) in
                extend (next :: acc) next (n - 1)
          in
          Path.of_edges (extend [ start ] start (Prng.int rng 6)))
    in
    let accepted = Path_set.elements (Expr.denote g ~max_length:5 r) in
    walks @ accepted
  in
  let n_corpus = List.length corpus in
  let strategies =
    [
      ("cubic", Recognizer.Cubic);
      ("nfa", Recognizer.Nfa);
      ("lazy-dfa", Recognizer.Lazy_dfa);
      ("eager-dfa", Recognizer.Eager_dfa);
      ("min-dfa", Recognizer.Min_dfa);
    ]
  in
  let rows =
    List.map
      (fun (name, strategy) ->
        let accept, t_build =
          time (fun () -> Recognizer.make ~strategy ~graph:g r)
        in
        let n_accepted, t_run =
          time (fun () ->
              List.fold_left
                (fun acc p -> if accept p then acc + 1 else acc)
                0 corpus)
        in
        [
          name;
          ms t_build;
          ms t_run;
          Printf.sprintf "%.2f" (1e6 *. t_run /. float_of_int n_corpus);
          string_of_int n_accepted;
        ])
      strategies
  in
  let a = Glushkov.build r in
  let d = Dfa.create g r in
  let m = Dfa.minimize d in
  print_table
    ~title:
      (Printf.sprintf
         "Recognising %d paths (|V|=%d |E|=%d); nfa states=%d dfa states=%d min=%d"
         n_corpus (Digraph.n_vertices g) (Digraph.n_edges g)
         (Glushkov.n_states a) (Dfa.n_states d) (Dfa.n_states m))
    ~header:[ "strategy"; "build(ms)"; "run(ms)"; "us/path"; "accepted" ]
    rows

(* --- EXP-T5: generator strategies (SIV-B) ------------------------------------- *)

let exp_generators ~full =
  section "EXP-T5 (generator strategies)"
    "SIV-B: the paper's set-at-a-time single-stack machine vs path-at-a-time\n\
     product-graph BFS, on an anchored starred expression, sweeping the\n\
     length bound.";
  let g =
    Generate.fig1 ~rng:(Prng.create 31)
      ~n_noise_vertices:(if full then 50 else 25)
      ~n_noise_edges:(if full then 220 else 90)
  in
  let r = fig1_expr g in
  let lengths = if full then [ 2; 3; 4; 5; 6; 7 ] else [ 2; 3; 4; 5; 6 ] in
  let rows =
    List.map
      (fun max_length ->
        let stack, t_stack = time (fun () -> Stack_machine.run g r ~max_length) in
        let bfs, t_bfs = time (fun () -> Generator.generate g r ~max_length) in
        [
          string_of_int max_length;
          string_of_int (Path_set.cardinal stack);
          ms t_stack;
          ms t_bfs;
          Printf.sprintf "%.1fx" (t_stack /. max 1e-9 t_bfs);
          string_of_bool (Path_set.equal stack bfs);
        ])
      lengths
  in
  print_table
    ~title:
      (Printf.sprintf "Figure-1 expression on |V|=%d |E|=%d (times in ms)"
         (Digraph.n_vertices g) (Digraph.n_edges g))
    ~header:[ "maxlen"; "paths"; "stack"; "bfs"; "stack/bfs"; "agree" ]
    rows;
  let g2 =
    Generate.uniform ~rng:(Prng.create 37) ~n_vertices:25
      ~n_edges:(if full then 220 else 120)
      ~n_labels:4
  in
  let r2 =
    Expr.join
      (Expr.sel (Selector.label1 (Digraph.label g2 "r0")))
      (Expr.sel (Selector.label1 (Digraph.label g2 "r1")))
  in
  let stack, t_stack = time (fun () -> Stack_machine.run g2 r2 ~max_length:2) in
  let bfs, t_bfs = time (fun () -> Generator.generate g2 r2 ~max_length:2) in
  print_table
    ~title:"Unanchored 2-step labeled traversal (set-at-a-time batches well)"
    ~header:[ "graph"; "paths"; "stack(ms)"; "bfs(ms)"; "agree" ]
    [
      [
        Printf.sprintf "uniform |E|=%d" (Digraph.n_edges g2);
        string_of_int (Path_set.cardinal stack);
        ms t_stack;
        ms t_bfs;
        string_of_bool (Path_set.equal stack bfs);
      ];
    ]

(* --- EXP-T5b: counting vs enumeration ------------------------------------------ *)

let exp_counting ~full =
  section "EXP-T5b (counting vs enumeration)"
    "Counting distinct paths via DP over the determinised automaton x graph\n\
     product, against materialising the whole set. Enumeration pays the\n\
     output size; the DP pays configurations.";
  let n = if full then 8 else 6 in
  let g = Generate.complete ~n ~n_labels:2 in
  let r = Expr.star (Expr.sel Selector.universe) in
  let lengths = if full then [ 2; 3; 4; 5; 6 ] else [ 2; 3; 4; 5 ] in
  let rows =
    List.map
      (fun max_length ->
        let counts, t_dp = time (fun () -> Counting.count_by_length g r ~max_length) in
        let total = Array.fold_left ( + ) 0 counts in
        (* enumerate only while feasible *)
        let enum_cell, enum_time =
          if total <= 200_000 then begin
            let s, t = time (fun () -> Generator.generate g r ~max_length) in
            (string_of_int (Path_set.cardinal s), ms t)
          end
          else ("(skipped)", "-")
        in
        [
          string_of_int max_length;
          string_of_int total;
          ms t_dp;
          enum_cell;
          enum_time;
        ])
      lengths
  in
  print_table
    ~title:
      (Printf.sprintf "E* on complete graph K%d x 2 labels: DP count vs enumeration"
         n)
    ~header:[ "maxlen"; "count(DP)"; "dp(ms)"; "count(enum)"; "enum(ms)" ]
    rows;
  (* the same counts drive an exactly-uniform sampler: drawing from a
     population enumeration cannot touch *)
  let deepest = List.fold_left max 0 lengths in
  let sampler, t_prep =
    time (fun () -> Sampler.prepare g r ~max_length:deepest)
  in
  let samples, t_draw = time (fun () -> Sampler.sample sampler (Prng.create 3) 1000) in
  print_table
    ~title:"Uniform sampling from the same denotation (1000 draws)"
    ~header:[ "population"; "prepare(ms)"; "1000 draws(ms)"; "distinct lengths" ]
    [
      [
        string_of_int (Sampler.population sampler);
        ms t_prep;
        ms t_draw;
        string_of_int
          (List.length
             (List.sort_uniq Int.compare (List.map Path.length samples)));
      ];
    ]

(* --- EXP-T8: label-alphabet vs edge-alphabet recognition ------------------------- *)

let exp_label_regex ~full =
  section "EXP-T8 (label vs edge alphabet)"
    "SIV-A closes by contrasting expressions over E with Mendelzon & Wood's\n\
     expressions over Omega (ref [8]). For label-only queries both exist:\n\
     the Omega-regex recognises ω'(a) by Brzozowski derivatives; the\n\
     E-regex embeds each label as [_,a,_] and runs the automaton machinery.";
  let g =
    Generate.uniform ~rng:(Prng.create 47) ~n_vertices:30
      ~n_edges:(if full then 400 else 180)
      ~n_labels:3
  in
  let r0 = Digraph.label g "r0"
  and r1 = Digraph.label g "r1"
  and r2 = Digraph.label g "r2" in
  let lr =
    (* r0 . (r1 | r2)* . r0 *)
    Label_expr.(concat (lbl r0) (concat (star (union (lbl r1) (lbl r2)))
      (lbl r0)))
  in
  let er = Label_expr.to_expr lr in
  let rng = Prng.create 53 in
  let edges = Array.of_list (Digraph.edges g) in
  let corpus =
    List.init
      (if full then 5000 else 2000)
      (fun _ ->
        let start = edges.(Prng.int rng (Array.length edges)) in
        let rec extend acc last k =
          if k = 0 then List.rev acc
          else
            match Digraph.out_edges g (Edge.head last) with
            | [] -> List.rev acc
            | out ->
              let next = List.nth out (Prng.int rng (List.length out)) in
              extend (next :: acc) next (k - 1)
        in
        Path.of_edges (extend [ start ] start (Prng.int rng 6)))
  in
  let n_corpus = List.length corpus in
  let strategies =
    [
      ("omega-derivatives", fun p -> Label_expr.accepts_path lr p);
      ("edge-cubic", Recognizer.make ~strategy:Recognizer.Cubic er);
      ("edge-nfa", Recognizer.make ~strategy:Recognizer.Nfa er);
      ("edge-lazy-dfa", Recognizer.make ~strategy:Recognizer.Lazy_dfa er);
    ]
  in
  let rows =
    List.map
      (fun (name, accept) ->
        let n_accepted, t_run =
          time (fun () ->
              List.fold_left
                (fun acc p -> if accept p then acc + 1 else acc)
                0 corpus)
        in
        [
          name;
          ms t_run;
          Printf.sprintf "%.2f" (1e6 *. t_run /. float_of_int n_corpus);
          string_of_int n_accepted;
        ])
      strategies
  in
  print_table
    ~title:
      (Printf.sprintf "Recognising %d walks with r0.(r1|r2)*.r0 (|E|=%d)"
         n_corpus (Digraph.n_edges g))
    ~header:[ "recogniser"; "run(ms)"; "us/path"; "accepted" ]
    rows

(* --- EXP-T9: optimiser ablation ---------------------------------------------------- *)

let exp_optimizer ~full =
  section "EXP-T9 (optimiser ablation)"
    "Algebraic rewrites (unit/zero laws, star collapses, selector fusion)\n\
     before evaluation. Same strategy, same answers; redundant structure\n\
     costs real time when evaluated naively.";
  let g =
    Generate.uniform ~rng:(Prng.create 59) ~n_vertices:20
      ~n_edges:(if full then 200 else 120)
      ~n_labels:3
  in
  let a = Expr.sel (Selector.label1 (Digraph.label g "r0")) in
  let b = Expr.sel (Selector.label1 (Digraph.label g "r1")) in
  let redundant =
    (* (∅ | a) . (b | b) . (a | ∅) . ε-laden star *)
    Expr.join
      (Expr.join
         (Expr.join (Expr.union Expr.empty a) (Expr.union b b))
         (Expr.union a Expr.empty))
      (Expr.star (Expr.union Expr.epsilon (Expr.union b b)))
  in
  let optimized, rewrites = Optimizer.simplify redundant in
  let max_length = 5 in
  let run expr = Stack_machine.run g expr ~max_length in
  let res_naive, t_naive = time (fun () -> run redundant) in
  let res_opt, t_opt = time (fun () -> run optimized) in
  let gen_naive, tg_naive = time (fun () -> Generator.generate g redundant ~max_length) in
  let gen_opt, tg_opt = time (fun () -> Generator.generate g optimized ~max_length) in
  print_table
    ~title:
      (Printf.sprintf
         "Redundant expression (%d nodes) vs optimised (%d nodes); rewrites: %s"
         (Expr.size redundant) (Expr.size optimized)
         (String.concat ", " rewrites))
    ~header:[ "evaluator"; "naive(ms)"; "optimised(ms)"; "speedup"; "same answer" ]
    [
      [
        "stack-machine";
        ms t_naive;
        ms t_opt;
        Printf.sprintf "%.1fx" (t_naive /. max 1e-9 t_opt);
        string_of_bool (Path_set.equal res_naive res_opt);
      ];
      [
        "product-bfs";
        ms tg_naive;
        ms tg_opt;
        Printf.sprintf "%.1fx" (tg_naive /. max 1e-9 tg_opt);
        string_of_bool (Path_set.equal gen_naive gen_opt);
      ];
    ]

(* --- EXP-T6: SIV-C projection + single-relational algorithms ------------------- *)

let jaccard_top_k k a b =
  let top v = List.map fst (Centrality.top_k k v) in
  let sa = List.sort_uniq Int.compare (top a) in
  let sb = List.sort_uniq Int.compare (top b) in
  let inter = List.filter (fun x -> List.mem x sb) sa in
  let union = List.sort_uniq Int.compare (sa @ sb) in
  float_of_int (List.length inter) /. float_of_int (List.length union)

let exp_projection ~full =
  section "EXP-T6 (semantically-rich projection)"
    "SIV-C: derive E_ab (knows . works_for) via the path algebra and via the\n\
     boolean matrix product of adjacency slices (the tensor route of ref [5]);\n\
     run PageRank downstream and compare against the label-blind projection\n\
     the paper warns about.";
  let sizes = if full then [ 50; 150; 400; 1000 ] else [ 50; 150; 400 ] in
  let rows =
    List.map
      (fun n_people ->
        let g =
          Generate.social ~rng:(Prng.create 41) ~n_people
            ~n_orgs:(max 2 (n_people / 20))
            ~n_projects:(max 3 (n_people / 10))
        in
        let knows = Digraph.label g "knows" in
        let works_for = Digraph.label g "works_for" in
        let via_join, t_join =
          time (fun () -> Projection.path_derived g [ knows; works_for ])
        in
        let via_matrix, t_matrix =
          time (fun () ->
              Simple_graph.of_sparse_bool
                (Projection.path_derived_matrix g [ knows; works_for ]))
        in
        let agree = Simple_graph.equal via_join via_matrix in
        let pr_derived, t_pr = time (fun () -> Centrality.pagerank via_join) in
        let blind = Projection.label_blind g in
        let pr_blind = Centrality.pagerank blind in
        let overlap = jaccard_top_k 10 pr_derived pr_blind in
        [
          string_of_int n_people;
          string_of_int (Digraph.n_edges g);
          string_of_int (Simple_graph.n_edges via_join);
          ms t_join;
          ms t_matrix;
          string_of_bool agree;
          ms t_pr;
          Printf.sprintf "%.2f" overlap;
        ])
      sizes
  in
  print_table
    ~title:
      "E_knows.works_for: join vs matrix; PageRank; top-10 overlap with \
       label-blind"
    ~header:
      [ "people"; "|E|"; "|E_ab|"; "join"; "matrix"; "agree"; "pagerank"; "jaccard" ]
    rows

(* --- EXP-T7: label loss in the binary algebra (SII) ----------------------------- *)

let exp_label_loss ~full =
  section "EXP-T7 (path-label loss)"
    "SII's closing argument: joining binary relations (the V* algebra of\n\
     ref [4]) loses edge labels. We traverse the same graphs with both\n\
     algebras and count how many binary results cannot recover their path\n\
     label. Invariant: ternary path count = total candidate label words.";
  let cases =
    let base = [ (6, 40, 4, 2); (6, 80, 4, 2); (6, 120, 4, 2); (8, 120, 4, 3) ] in
    if full then base @ [ (8, 200, 5, 3); (10, 300, 5, 3) ] else base
  in
  let rows =
    List.map
      (fun (n, m, k, len) ->
        let g =
          Generate.uniform ~rng:(Prng.create 43) ~n_vertices:n ~n_edges:m
            ~n_labels:k
        in
        let ternary, t_ternary =
          time (fun () -> Path_set.join_power (Path_set.all_edges g) len)
        in
        let binary, t_binary =
          time (fun () -> Vpath_set.join_power (Vpath_set.of_digraph g) len)
        in
        let census = Label_recovery.census g binary in
        let pct_ambiguous =
          100.0
          *. float_of_int census.Label_recovery.ambiguous
          /. float_of_int (max 1 census.Label_recovery.total)
        in
        [
          Printf.sprintf "%d/%d/%d" n m k;
          string_of_int len;
          string_of_int (Path_set.cardinal ternary);
          string_of_int (Vpath_set.cardinal binary);
          Printf.sprintf "%.1f%%" pct_ambiguous;
          string_of_int census.Label_recovery.max_words;
          string_of_bool
            (census.Label_recovery.total_words = Path_set.cardinal ternary);
          ms t_ternary;
          ms t_binary;
        ])
      cases
  in
  print_table
    ~title:"Ternary (E*) vs binary (V*) traversal: ambiguity of label recovery"
    ~header:
      [
        "n/m/k";
        "len";
        "ternary";
        "binary";
        "ambiguous";
        "max words";
        "invariant";
        "t_E*";
        "t_V*";
      ]
    rows

(* --- EXP-T10: semiring aggregation vs enumeration -------------------------------- *)

let exp_semirings ~full =
  section "EXP-T10 (semiring aggregation)"
    "One traversal policy, several aggregations by change of semiring\n\
     (footnote 6's 'more machinery' as structure): cheapest / most reliable /\n\
     widest / count, via DP on the automaton product, against aggregating an\n\
     enumerated path set.";
  let open Mrpa_semiring in
  let n = if full then 40 else 25 in
  let g =
    Generate.uniform ~rng:(Prng.create 61) ~n_vertices:n
      ~n_edges:(if full then 350 else 180)
      ~n_labels:3
  in
  let expr =
    (* r0 . (r1|r2)* . r0 — an unanchored policy with a star *)
    let l name = Expr.sel (Selector.label1 (Digraph.label g name)) in
    Expr.join
      (Expr.join (l "r0") (Expr.star (Expr.union (l "r1") (l "r2"))))
      (l "r0")
  in
  let cost e = float_of_int (1 + (Edge.hash e land 7)) in
  let max_length = if full then 6 else 5 in
  (* enumeration baseline: materialise, then fold *)
  let enum_paths, t_enum = time (fun () -> Generator.generate g expr ~max_length) in
  let (_ : float), t_enum_min =
    time (fun () ->
        Path_set.fold
          (fun p acc ->
            Float.min acc (Path.fold (fun a e -> a +. cost e) 0.0 p))
          enum_paths infinity)
  in
  let rows =
    [
      (let r, t = time (fun () -> Eval.run (module Semiring.Tropical) ~weight:cost g expr ~max_length) in
       [ "tropical (cheapest)"; ms t; string_of_int (List.length r.Eval.pairs) ]);
      (let r, t = time (fun () -> Eval.run (module Semiring.Viterbi) ~weight:(fun _ -> 0.95) g expr ~max_length) in
       [ "viterbi (most reliable)"; ms t; string_of_int (List.length r.Eval.pairs) ]);
      (let r, t = time (fun () -> Eval.run (module Semiring.Bottleneck) ~weight:cost g expr ~max_length) in
       [ "bottleneck (widest)"; ms t; string_of_int (List.length r.Eval.pairs) ]);
      (let r, t = time (fun () -> Eval.run (module Semiring.Natural) g expr ~max_length) in
       [ "natural (count)"; ms t; string_of_int (List.length r.Eval.pairs) ]);
      [
        "enumerate + fold (baseline)";
        ms (t_enum +. t_enum_min);
        string_of_int (Path_set.cardinal enum_paths) ^ " paths";
      ];
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "r0.(r1|r2)*.r0 on |V|=%d |E|=%d, maxlen %d: DP per semiring vs enumeration"
         (Digraph.n_vertices g) (Digraph.n_edges g) max_length)
    ~header:[ "aggregation"; "time(ms)"; "result size" ]
    rows

(* --- EXP-T11: incremental derived views --------------------------------------------- *)

let exp_views ~full =
  section "EXP-T11 (incremental derived views)"
    "Maintaining the SIV-C derived relation E_knows.works_for as edges\n\
     arrive: rank-1 incremental maintenance vs recomputing the matrix\n\
     product per change.";
  let sizes = if full then [ 100; 300; 800 ] else [ 100; 300 ] in
  let churn = if full then 400 else 200 in
  let rows =
    List.map
      (fun n_people ->
        let build () =
          Generate.social ~rng:(Prng.create 67) ~n_people
            ~n_orgs:(max 2 (n_people / 20))
            ~n_projects:(max 3 (n_people / 10))
        in
        (* the churn stream: random knows/works_for edges over existing ids *)
        let stream g =
          let rng = Prng.create 71 in
          let people =
            Array.of_list
              (List.filter
                 (fun v ->
                   let name = Digraph.vertex_name g v in
                   String.length name > 1 && name.[0] = 'p' && name.[1] <> 'r')
                 (Digraph.vertices g))
          in
          let knows = Digraph.label g "knows" in
          List.init churn (fun _ ->
              Edge.make ~tail:(Prng.pick rng people) ~label:knows
                ~head:(Prng.pick rng people))
        in
        (* incremental *)
        let g1 = build () in
        let view =
          Derived_view.create g1
            [ Digraph.label g1 "knows"; Digraph.label g1 "works_for" ]
        in
        let edges1 = stream g1 in
        let (), t_incremental =
          time (fun () -> List.iter (fun e -> ignore (Digraph.add_edge g1 e)) edges1)
        in
        (* recompute per change *)
        let g2 = build () in
        let knows2 = Digraph.label g2 "knows" in
        let works2 = Digraph.label g2 "works_for" in
        let edges2 = stream g2 in
        let (), t_recompute =
          time (fun () ->
              List.iter
                (fun e ->
                  if Digraph.add_edge g2 e then
                    ignore (Projection.path_derived_matrix g2 [ knows2; works2 ]))
                edges2)
        in
        [
          string_of_int n_people;
          string_of_int churn;
          ms t_incremental;
          ms t_recompute;
          Printf.sprintf "%.1fx" (t_recompute /. max 1e-9 t_incremental);
          string_of_bool (Derived_view.is_consistent view);
        ])
      sizes
  in
  print_table
    ~title:"E_knows.works_for under churn: incremental vs recompute-per-change"
    ~header:[ "people"; "changes"; "incremental"; "recompute"; "speedup"; "consistent" ]
    rows

(* --- EXP-T12: guardrail overhead and graceful degradation ------------------------ *)

let exp_guardrails ~full =
  section "EXP-T12 (guardrails)"
    "Budget checkpoints ride existing per-transition/per-level hooks, so\n\
     governing a run should cost a few percent, not a traversal. Under a\n\
     shrinking fuel budget the engine returns monotonically growing sound\n\
     subsets instead of failing.";
  let module Engine = Mrpa_engine.Engine in
  let module Budget = Mrpa_engine.Budget in
  let module Plan = Mrpa_engine.Plan in
  let module Err = Mrpa_engine.Err in
  let n = if full then 10 else 7 in
  let g = Generate.complete ~n ~n_labels:2 in
  let text = "E . E*" in
  let max_length = if full then 4 else 3 in
  let strategies =
    [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ]
  in
  let rows =
    List.map
      (fun strategy ->
        let bare, t_bare =
          time (fun () -> Engine.query_exn ~strategy ~max_length g text)
        in
        let governed, t_governed =
          time (fun () ->
              Engine.query_exn ~strategy ~max_length
                ~budget:(Budget.unlimited ()) g text)
        in
        assert (governed.Engine.verdict = Err.Complete);
        assert (
          Path_set.equal bare.Engine.paths governed.Engine.paths
          (* the reference strategy re-runs via iterative deepening under a
             budget, which is the one governed path allowed to cost more *)
          || strategy = Plan.Reference);
        [
          Plan.strategy_name strategy;
          string_of_int (Path_set.cardinal bare.Engine.paths);
          ms t_bare;
          ms t_governed;
          Printf.sprintf "%.2fx" (t_governed /. max 1e-9 t_bare);
        ])
      strategies
  in
  print_table
    ~title:
      (Printf.sprintf "K%d x 2 labels, %s, max_length=%d: governed overhead"
         n text max_length)
    ~header:[ "strategy"; "paths"; "bare ms"; "governed ms"; "overhead" ]
    rows;
  let degradation =
    List.map
      (fun fuel ->
        let r =
          Engine.query_exn ~strategy:Plan.Stack_machine ~max_length
            ~budget:(Budget.create ~fuel ()) g text
        in
        [
          string_of_int fuel;
          string_of_int (Path_set.cardinal r.Engine.paths);
          Err.verdict_name r.Engine.verdict;
        ])
      [ 10; 100; 1_000; 10_000; 100_000; 1_000_000 ]
  in
  print_table ~title:"Stack machine under a shrinking fuel budget"
    ~header:[ "fuel"; "paths"; "verdict" ] degradation

(* --- EXP-T13: query-server throughput ----------------------------------------- *)

module Server = Mrpa_server.Server
module Wire = Mrpa_server.Wire
module Snapshot = Mrpa_server.Snapshot
module Client = Mrpa_server.Client
module Sjson = Mrpa_server.Json

(* Rows recorded by exp_serve for the --json summary ("serve" section of
   mrpa.bench/1); empty when the experiment was not selected. *)
let serve_rows : string list ref = ref []

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))

let exp_serve ~full =
  section "EXP-T13 (query server)"
    "Closed-loop load against mrpa serve: M client threads, each with one\n\
     connection, each firing the next request as soon as the previous\n\
     response lands. The server runs in-process but the transport is a\n\
     real Unix-domain socket, so latency includes framing, scheduling and\n\
     the wire round trip. Throughput should grow with the worker count\n\
     until the clients (or the query itself) become the bottleneck.";
  let g =
    Generate.fig1 ~rng:(Prng.create 7)
      ~n_noise_vertices:(if full then 200 else 60)
      ~n_noise_edges:(if full then 600 else 180)
  in
  (* Result caching off: this experiment measures evaluation throughput
     scaling with workers, which a cache hit would short-circuit after the
     first request (EXP-T16 measures the caches). *)
  let snap = Snapshot.of_graph ~result_cache_capacity:0 g in
  let query = "[i,alpha,_] . [_,beta,_]*" in
  (* bound each request: star-closure over the noisy beta edges is
     exponential unbounded, and a throughput benchmark wants many small
     requests, not a few giant ones *)
  let request_options =
    { Wire.default_options with max_length = Some 4; limit = Some 100 }
  in
  let per_client = if full then 200 else 50 in
  let sweep =
    if full then [ (1, 2); (2, 4); (4, 8); (8, 16) ]
    else [ (1, 2); (2, 4); (4, 8) ]
  in
  let dir = Filename.temp_file "mrpa_bench_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let run_row (workers, clients) =
    let socket_path =
      Filename.concat dir (Printf.sprintf "w%d-c%d.sock" workers clients)
    in
    let config =
      {
        Server.endpoint = Wire.Unix_socket socket_path;
        workers;
        queue_capacity = 64;
        limits = Wire.default_limits;
        idle_timeout_ms = None;
        max_request_bytes = Server.default_max_request_bytes;
        max_predicted_cost = None;
        allow_remote_shutdown = false;
        role = Server.Standalone;
      }
    in
    let server = Server.create ~snapshot:snap config in
    let serve_thread = Thread.create (fun () -> Server.serve server) () in
    let rec await n =
      if Sys.file_exists socket_path then ()
      else if n = 0 then failwith "EXP-T13: server did not come up"
      else begin
        Unix.sleepf 0.01;
        await (n - 1)
      end
    in
    await 500;
    let latencies_ms = Array.make (clients * per_client) 0.0 in
    let t0 = Metrics.now_ns () in
    let client_threads =
      List.init clients (fun c ->
          Thread.create
            (fun () ->
              match Client.connect (Wire.Unix_socket socket_path) with
              | Error m -> Printf.eprintf "EXP-T13 client: %s\n" m
              | Ok conn ->
                let req =
                  {
                    Wire.id = Sjson.Null;
                    verb = Wire.Query;
                    query = Some query;
                    options = request_options;
                  }
                in
                for i = 0 to per_client - 1 do
                  let r0 = Metrics.now_ns () in
                  (match Client.request conn req with
                  | Ok _ -> ()
                  | Error m -> Printf.eprintf "EXP-T13 request: %s\n" m);
                  latencies_ms.((c * per_client) + i) <-
                    Int64.to_float (Metrics.elapsed_ns ~since:r0) /. 1e6
                done;
                Client.close conn)
            ())
    in
    List.iter Thread.join client_threads;
    let wall_s = Int64.to_float (Metrics.elapsed_ns ~since:t0) /. 1e9 in
    Server.stop server;
    Thread.join serve_thread;
    let sorted = Array.copy latencies_ms in
    Array.sort compare sorted;
    let p50 = percentile sorted 0.50 and p95 = percentile sorted 0.95 in
    let total = clients * per_client in
    let qps = float_of_int total /. max 1e-9 wall_s in
    serve_rows :=
      Printf.sprintf
        "{\"workers\":%d,\"clients\":%d,\"requests\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"qps\":%.1f}"
        workers clients total p50 p95 qps
      :: !serve_rows;
    [
      string_of_int workers;
      string_of_int clients;
      string_of_int total;
      Printf.sprintf "%.3f" p50;
      Printf.sprintf "%.3f" p95;
      Printf.sprintf "%.0f" qps;
    ]
  in
  let rows = List.map run_row sweep in
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  print_table
    ~title:
      (Printf.sprintf
         "%s on fig1+noise (|V|=%d |E|=%d), closed loop, %d req/client" query
         (Digraph.n_vertices g) (Digraph.n_edges g) per_client)
    ~header:[ "workers"; "clients"; "requests"; "p50 ms"; "p95 ms"; "qps" ]
    rows

(* --- EXP-T19: scatter-gather router vs single server ------------------------- *)

module Router = Mrpa_server.Router
module Shardmap = Mrpa_server.Shardmap

(* Rows recorded by exp_route for the --json summary ("route" section of
   mrpa.bench/1); empty when the experiment was not selected. *)
let route_rows : string list ref = ref []

let exp_route ~full =
  section "EXP-T19 (sharded router)"
    "The EXP-T13 workload against three deployments: a standalone server;\n\
     a scatter-gather router fronting three in-process shards (placement\n\
     crc32(tail) mod 3); and the same sharded fleet with one shard\n\
     stopped, so every answer degrades to a sound subset\n\
     (partial:shard_unavailable). The single/sharded gap is the price of\n\
     per-atom dispatch plus router-side stitching; the sharded/degraded\n\
     gap shows that a dead shard costs its breaker-guarded timeout only\n\
     until the breaker opens, after which degraded answers are cheap.";
  let g =
    Generate.fig1 ~rng:(Prng.create 7)
      ~n_noise_vertices:(if full then 200 else 60)
      ~n_noise_edges:(if full then 600 else 180)
  in
  let query = "[i,alpha,_] . [_,beta,_]*" in
  let request_options =
    { Wire.default_options with max_length = Some 4; limit = Some 100 }
  in
  let per_client = if full then 100 else 30 in
  let clients = if full then 8 else 4 in
  let dir = Filename.temp_file "mrpa_bench_route" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock name = Filename.concat dir (name ^ ".sock") in
  let server_config path =
    {
      Server.endpoint = Wire.Unix_socket path;
      workers = 2;
      queue_capacity = 64;
      limits = Wire.default_limits;
      idle_timeout_ms = None;
      max_request_bytes = Server.default_max_request_bytes;
      max_predicted_cost = None;
      allow_remote_shutdown = false;
      role = Server.Standalone;
    }
  in
  let await path =
    let rec go n =
      if Sys.file_exists path then ()
      else if n = 0 then failwith "EXP-T19: endpoint did not come up"
      else begin
        Unix.sleepf 0.01;
        go (n - 1)
      end
    in
    go 500
  in
  let start_server graph path =
    let snap = Snapshot.of_graph ~result_cache_capacity:0 graph in
    let server = Server.create ~snapshot:snap (server_config path) in
    let th = Thread.create (fun () -> Server.serve server) () in
    await path;
    (server, th)
  in
  let stop_server (server, th) =
    Server.stop server;
    Thread.join th
  in
  (* Closed loop against one endpoint, as EXP-T13; additionally counts
     partial verdicts so the degraded mode can assert soundness. *)
  let closed_loop path =
    let latencies_ms = Array.make (clients * per_client) 0.0 in
    let partials = Atomic.make 0 in
    let t0 = Metrics.now_ns () in
    let client_threads =
      List.init clients (fun c ->
          Thread.create
            (fun () ->
              match Client.connect (Wire.Unix_socket path) with
              | Error m -> Printf.eprintf "EXP-T19 client: %s\n" m
              | Ok conn ->
                let req =
                  {
                    Wire.id = Sjson.Null;
                    verb = Wire.Query;
                    query = Some query;
                    options = request_options;
                  }
                in
                for i = 0 to per_client - 1 do
                  let r0 = Metrics.now_ns () in
                  (match Client.request conn req with
                  | Error m -> Printf.eprintf "EXP-T19 request: %s\n" m
                  | Ok json ->
                    let verdict =
                      Option.bind (Sjson.member "result" json) (fun r ->
                          Option.bind (Sjson.member "verdict" r)
                            Sjson.to_string_opt)
                    in
                    (* the workload's limit=100 already makes healthy
                       answers partial:limit; only shard loss counts as
                       degraded *)
                    (match verdict with
                    | Some "partial:shard_unavailable" ->
                      Atomic.incr partials
                    | _ -> ()));
                  latencies_ms.((c * per_client) + i) <-
                    Int64.to_float (Metrics.elapsed_ns ~since:r0) /. 1e6
                done;
                Client.close conn)
            ())
    in
    List.iter Thread.join client_threads;
    let wall_s = Int64.to_float (Metrics.elapsed_ns ~since:t0) /. 1e9 in
    let sorted = Array.copy latencies_ms in
    Array.sort compare sorted;
    (percentile sorted 0.50, percentile sorted 0.95, wall_s,
     Atomic.get partials)
  in
  let record mode (p50, p95, wall_s, partials) =
    let total = clients * per_client in
    let qps = float_of_int total /. max 1e-9 wall_s in
    route_rows :=
      Printf.sprintf
        "{\"mode\":\"%s\",\"clients\":%d,\"requests\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"qps\":%.1f,\"degraded\":%d}"
        mode clients total p50 p95 qps partials
      :: !route_rows;
    [
      mode;
      string_of_int clients;
      string_of_int total;
      Printf.sprintf "%.3f" p50;
      Printf.sprintf "%.3f" p95;
      Printf.sprintf "%.0f" qps;
      string_of_int partials;
    ]
  in
  (* Mode 1: one standalone server, the EXP-T13 baseline. *)
  let single =
    let s = start_server g (sock "single") in
    let r = closed_loop (sock "single") in
    stop_server s;
    record "single" r
  in
  (* Modes 2 and 3 share a fleet: three shards behind a router. *)
  let map =
    match
      Shardmap.of_string
        (String.concat "\n"
           ("# mrpa.shardmap/1"
           :: List.map
                (fun s -> Printf.sprintf "shard %s unix:%s" s (sock s))
                [ "s0"; "s1"; "s2" ]))
    with
    | Ok m -> m
    | Error e -> failwith ("EXP-T19 shard map: " ^ e)
  in
  let parts = Shardmap.partition map g in
  let shards =
    List.mapi
      (fun i name -> (name, start_server parts.(i) (sock name)))
      [ "s0"; "s1"; "s2" ]
  in
  let router =
    Router.create
      {
        (Router.default_config ~map (Wire.Unix_socket (sock "router"))) with
        (* a short breaker cooldown so the degraded mode measures steady
           fast-fail throughput, not one long timeout per request *)
        shard_timeout_ms = 500.;
        breaker_cooldown_ms = 400.;
      }
  in
  let router_th = Thread.create (fun () -> Router.serve router) () in
  await (sock "router");
  let sharded = record "sharded" (closed_loop (sock "router")) in
  (* Stop one shard — but not the one owning the query's source vertex,
     so the degraded fleet still does real scatter work instead of
     short-circuiting the join on an empty left atom. Once the breaker
     opens, the dead shard costs nothing per request. *)
  let victim = if Shardmap.owner_name map "i" = "s1" then "s2" else "s1" in
  stop_server (List.assoc victim shards);
  let degraded = record "degraded" (closed_loop (sock "router")) in
  Router.stop router;
  Thread.join router_th;
  List.iter (fun (name, s) -> if name <> victim then stop_server s) shards;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  print_table
    ~title:
      (Printf.sprintf
         "%s on fig1+noise (|V|=%d |E|=%d), closed loop, %d req/client, 3 \
          shards"
         query (Digraph.n_vertices g) (Digraph.n_edges g) per_client)
    ~header:
      [ "mode"; "clients"; "requests"; "p50 ms"; "p95 ms"; "qps"; "degraded" ]
    [ single; sharded; degraded ]

(* --- EXP-T14: journal v2 framing overhead ----------------------------------- *)

(* Rows recorded by exp_journal for the --json summary ("journal" section
   of mrpa.bench/1); empty when the experiment was not selected. *)
let journal_rows : string list ref = ref []

let exp_journal ~full =
  section "EXP-T14 (journal formats)"
    "Append cost of the checksummed v2 journal format against the legacy\n\
     v1 format, measured end to end: graph mutation, record framing (seq +\n\
     CRC-32 in v2), and the write(2) to the log file. Durability should be\n\
     nearly free — the acceptance target is < 15% overhead per append.";
  let n = if full then 200_000 else 50_000 in
  let reps = 3 in
  let run_once version =
    let path = Filename.temp_file "mrpa_bench_journal" ".log" in
    Sys.remove path;
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          [ path; path ^ ".compact" ])
      (fun () ->
        (* A file whose first record is a bare v1 line stays v1; a fresh
           file starts v2 — that is the only knob selecting the format. *)
        (if version = Journal.V1 then begin
           let oc = open_out_bin path in
           output_string oc "vertex\tseed\n";
           close_out oc
         end);
        let g = Digraph.create () in
        let j = Journal.attach ~on_warning:ignore g path in
        assert (Journal.format_version j = version);
        let t0 = Metrics.now_ns () in
        for i = 0 to n - 1 do
          ignore (Digraph.add g (Printf.sprintf "v%d" i) "r" "hub")
        done;
        let elapsed = Int64.to_float (Metrics.elapsed_ns ~since:t0) in
        let bytes = (Unix.stat path).Unix.st_size in
        Journal.close j;
        (elapsed /. float_of_int n, bytes))
  in
  (* min-of-reps: allocator and page-cache noise only ever adds time. *)
  let best version =
    List.fold_left
      (fun (bt, _) _ ->
        let t, b = run_once version in
        (min bt t, b))
      (run_once version) (List.init (reps - 1) Fun.id)
  in
  let v1_ns, v1_bytes = best Journal.V1 in
  let v2_ns, v2_bytes = best Journal.V2 in
  let overhead = 100.0 *. ((v2_ns /. v1_ns) -. 1.0) in
  journal_rows :=
    [
      Printf.sprintf
        "{\"format\":\"v1\",\"appends\":%d,\"ns_per_append\":%.1f,\"bytes\":%d}" n
        v1_ns v1_bytes;
      Printf.sprintf
        "{\"format\":\"v2\",\"appends\":%d,\"ns_per_append\":%.1f,\"bytes\":%d,\"overhead_pct\":%.1f}"
        n v2_ns v2_bytes overhead;
    ];
  print_table
    ~title:
      (Printf.sprintf "%d appends per run, best of %d runs (target < 15%%)" n
         reps)
    ~header:[ "format"; "ns/append"; "file bytes"; "overhead" ]
    [
      [ "v1"; Printf.sprintf "%.0f" v1_ns; string_of_int v1_bytes; "-" ];
      [
        "v2";
        Printf.sprintf "%.0f" v2_ns;
        string_of_int v2_bytes;
        Printf.sprintf "%+.1f%%" overhead;
      ];
    ]

(* --- EXP-T15: static cost model ----------------------------------------------- *)

module Cost = Mrpa_lint.Cost
module Engine = Mrpa_engine.Engine
module Budget = Mrpa_engine.Budget
module Plan = Mrpa_engine.Plan
module Err = Mrpa_engine.Err

(* Rows recorded by exp_cost for the --json summary ("cost" section of
   mrpa.bench/1); empty when the experiment was not selected. *)
let cost_rows : string list ref = ref []

let exp_cost ~full =
  section "EXP-T15 (static cost model)"
    "Does the static analyzer earn its keep? Two measurements. (1)\n\
     Strategy-pick accuracy: for a mixed query set, run every strategy and\n\
     check the planner's cost-based pick against the empirically fastest\n\
     one (a pick within 25% of the fastest counts — below that the ranking\n\
     is timer noise). (2) Admission control: the EXP-T13 closed loop with\n\
     a 1-in-4 mix of budget-heavy star queries, served with and without a\n\
     --max-predicted-cost ceiling; rejecting the heavy queries before they\n\
     occupy a worker should raise throughput, not lower it.";
  let g =
    Generate.fig1 ~rng:(Prng.create 7)
      ~n_noise_vertices:(if full then 200 else 60)
      ~n_noise_edges:(if full then 600 else 180)
  in
  let stats = Stat.profile g in
  let max_length = 4 in
  let queries =
    [
      "[i,alpha,_]";
      "[i,alpha,_] . [_,beta,_]";
      "[i,alpha,_] . [_,beta,_]*";
      "[_,alpha,_] . [_,beta,_]";
      "[_,beta,_]* . [_,alpha,_]";
      "([_,alpha,_] | [_,beta,_])*";
    ]
  in
  let strategies = [ Plan.Reference; Plan.Stack_machine; Plan.Product_bfs ] in
  (* Best-of-reps wall time per forced strategy; a run that cannot finish
     within the deadline scores infinity, which is exactly what the
     planner is supposed to avoid picking. *)
  let time_strategy strategy text =
    let reps = if full then 5 else 3 in
    let best = ref infinity in
    for _ = 1 to reps do
      let budget = Budget.create ~deadline_ms:2_000.0 () in
      let t0 = Metrics.now_ns () in
      let r = Engine.query_exn ~strategy ~stats ~max_length ~budget g text in
      let ms = Int64.to_float (Metrics.elapsed_ns ~since:t0) /. 1e6 in
      let ms = if r.Engine.verdict = Err.Complete then ms else infinity in
      best := min !best ms
    done;
    !best
  in
  let near_optimal = ref 0 in
  let pick_rows =
    List.map
      (fun text ->
        let r = Engine.query_exn ~stats ~max_length g text in
        let picked = r.Engine.plan.Plan.strategy in
        let timed = List.map (fun s -> (s, time_strategy s text)) strategies in
        let fastest, fastest_ms =
          List.fold_left
            (fun (bs, bt) (s, t) -> if t < bt then (s, t) else (bs, bt))
            (List.hd timed) (List.tl timed)
        in
        let picked_ms = List.assoc picked timed in
        let ok = picked == fastest || picked_ms <= 1.25 *. fastest_ms in
        if ok then incr near_optimal;
        cost_rows :=
          Printf.sprintf
            "{\"query\":%s,\"picked\":%s,\"fastest\":%s,\"picked_ms\":%.3f,\"fastest_ms\":%.3f,\"near_optimal\":%b}"
            (Metrics.escape_string text)
            (Metrics.escape_string (Plan.strategy_name picked))
            (Metrics.escape_string (Plan.strategy_name fastest))
            picked_ms fastest_ms ok
          :: !cost_rows;
        [
          text;
          Plan.strategy_name picked;
          Plan.strategy_name fastest;
          Printf.sprintf "%.3f" picked_ms;
          Printf.sprintf "%.3f" fastest_ms;
          (if ok then "yes" else "NO");
        ])
      queries
  in
  print_table
    ~title:
      (Printf.sprintf
         "strategy pick vs fastest forced strategy (%d/%d near-optimal)"
         !near_optimal (List.length queries))
    ~header:[ "query"; "picked"; "fastest"; "picked ms"; "fastest ms"; "ok" ]
    pick_rows;
  (* Part 2: throughput with and without admission control. *)
  (* Result caching off, as in EXP-T13: the admission effect under load is
     the quantity of interest, not the cache's. *)
  let snap = Snapshot.of_graph ~result_cache_capacity:0 g in
  let cheap = "[i,alpha,_] . [_,beta,_]" in
  let expensive = "([_,alpha,_] | [_,beta,_])*" in
  let ceiling =
    match Mrpa_engine.Parser.parse_spanned g cheap with
    | Error _ -> failwith "EXP-T15: cheap query does not parse"
    | Ok e -> (
      match
        (Cost.analyze ~stats:(Snapshot.profile snap) g ~max_length e)
          .Cost.predicted_cost
      with
      | Mrpa_lint.Interval.Fin n -> n
      | Mrpa_lint.Interval.Inf -> failwith "EXP-T15: cheap query unbounded")
  in
  let clients = 4 and workers = 2 in
  let per_client = if full then 120 else 40 in
  let dir = Filename.temp_file "mrpa_bench_cost" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let run_mix admission =
    let socket_path =
      Filename.concat dir (if admission then "on.sock" else "off.sock")
    in
    let config =
      {
        Server.endpoint = Wire.Unix_socket socket_path;
        workers;
        queue_capacity = 64;
        limits = Wire.default_limits;
        idle_timeout_ms = None;
        max_request_bytes = Server.default_max_request_bytes;
        max_predicted_cost = (if admission then Some ceiling else None);
        allow_remote_shutdown = false;
        role = Server.Standalone;
      }
    in
    let server = Server.create ~snapshot:snap config in
    let serve_thread = Thread.create (fun () -> Server.serve server) () in
    let rec await n =
      if Sys.file_exists socket_path then ()
      else if n = 0 then failwith "EXP-T15: server did not come up"
      else begin
        Unix.sleepf 0.01;
        await (n - 1)
      end
    in
    await 500;
    let rejected = Atomic.make 0 in
    let options =
      (* the heavy star is deadline-bounded so the no-admission baseline
         terminates; with admission it never reaches a worker at all *)
      { Wire.default_options with max_length = Some max_length;
        limit = Some 100; deadline_ms = Some 25.0 }
    in
    let t0 = Metrics.now_ns () in
    let client_threads =
      List.init clients (fun _ ->
          Thread.create
            (fun () ->
              match Client.connect (Wire.Unix_socket socket_path) with
              | Error m -> Printf.eprintf "EXP-T15 client: %s\n" m
              | Ok conn ->
                for i = 0 to per_client - 1 do
                  let query = if i mod 4 = 0 then expensive else cheap in
                  let req =
                    {
                      Wire.id = Sjson.Null;
                      verb = Wire.Query;
                      query = Some query;
                      options;
                    }
                  in
                  (match Client.request conn req with
                  | Ok j ->
                    let code =
                      Option.bind (Sjson.member "error" j) (fun e ->
                          Option.bind (Sjson.member "code" e)
                            Sjson.to_string_opt)
                    in
                    if code = Some "infeasible" then Atomic.incr rejected
                  | Error m -> Printf.eprintf "EXP-T15 request: %s\n" m)
                done;
                Client.close conn)
            ())
    in
    List.iter Thread.join client_threads;
    let wall_s = Int64.to_float (Metrics.elapsed_ns ~since:t0) /. 1e9 in
    Server.stop server;
    Thread.join serve_thread;
    let total = clients * per_client in
    let qps = float_of_int total /. max 1e-9 wall_s in
    (qps, Atomic.get rejected)
  in
  let qps_off, _ = run_mix false in
  let qps_on, rejected_on = run_mix true in
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let delta = 100.0 *. ((qps_on /. qps_off) -. 1.0) in
  cost_rows :=
    Printf.sprintf
      "{\"admission\":false,\"qps\":%.1f}" qps_off
    :: Printf.sprintf
         "{\"admission\":true,\"qps\":%.1f,\"rejected\":%d,\"qps_delta_pct\":%.1f}"
         qps_on rejected_on delta
    :: !cost_rows;
  print_table
    ~title:
      (Printf.sprintf
         "closed loop, %d clients x %d requests, 1-in-4 heavy star (ceiling %d units)"
         clients per_client ceiling)
    ~header:[ "admission"; "qps"; "rejected"; "delta" ]
    [
      [ "off"; Printf.sprintf "%.0f" qps_off; "0"; "-" ];
      [
        "on";
        Printf.sprintf "%.0f" qps_on;
        string_of_int rejected_on;
        Printf.sprintf "%+.1f%%" delta;
      ];
    ]

(* --- EXP-T16: caches under an open-loop zipfian load --------------------------- *)

(* This experiment runs over a Unix socket, where TCP_NODELAY does not
   apply; the server and client now set TCP_NODELAY on every TCP socket
   (Net.set_nodelay). Measured on TCP loopback with a synchronous ping
   loop whose request bytes hit the socket in two writes (the
   Nagle-pathological write-write-read shape a buffered pipelining client
   produces): p50 44.0 ms / p95 44.3 ms before (Nagle x delayed-ACK
   stalls every round trip), p50 0.017 ms / p95 0.031 ms after — three
   orders of magnitude, and the reason the option is unconditional rather
   than a flag. *)

(* Rows recorded by exp_zipf for the --json summary ("zipf" section of
   mrpa.bench/1); empty when the experiment was not selected. *)
let zipf_rows : string list ref = ref []

(* Zipfian rank sampler: weight(rank r) = 1/r^s over [1..n], inverse-CDF
   over the cumulative weights. Deterministic under the bench Prng. *)
let zipf_sequence rng ~n ~s ~count =
  let weights = Array.init n (fun r -> 1.0 /. (float_of_int (r + 1) ** s)) in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i w ->
      total := !total +. w;
      cum.(i) <- !total)
    weights;
  Array.init count (fun _ ->
      let u = Prng.float rng !total in
      let rec find i = if u <= cum.(i) || i = n - 1 then i else find (i + 1) in
      find 0)

let exp_zipf ~full =
  section "EXP-T16 (caches under zipfian load)"
    "Open-loop load against mrpa serve: one pipelined connection, a sender\n\
     that fires requests on a fixed schedule regardless of responses (so\n\
     queueing delay is charged to latency — no coordinated omission), and\n\
     a receiver matching responses back by id. The query stream is a\n\
     zipfian draw over a small hot set, the regime the compiled-plan and\n\
     result caches are built for. Three configurations, same request\n\
     sequence: caches off, plan cache only, plan + result caches.";
  let g =
    Generate.fig1 ~rng:(Prng.create 7)
      ~n_noise_vertices:(if full then 200 else 60)
      ~n_noise_edges:(if full then 600 else 180)
  in
  (* The hot set: anchored and unanchored shapes over the Figure 1 core,
     all parseable against fig1+noise, cheap enough to answer under the
     default ceilings yet real enough that evaluation dominates a parse. *)
  let hot_set =
    [|
      "[i,alpha,_] . [_,beta,_]*";
      "[j,alpha,_] . [_,beta,_]*";
      "[_,alpha,j]";
      "[_,alpha,k]";
      "[i,alpha,_] . [_,alpha,_]";
      "[j,beta,_] . [_,beta,_]";
      "[_,beta,_] . [_,alpha,j]";
      "[i,alpha,_] | [j,beta,_]";
      "[i,alpha,_] . [_,beta,_] . [_,alpha,_]";
      "[n0,beta,_] . [_,alpha,_]";
      "[n1,alpha,_] . [_,beta,_]*";
      "[_,alpha,_] . [_,beta,_]";
    |]
  in
  let request_options =
    { Wire.default_options with max_length = Some 4; limit = Some 50 }
  in
  let total = if full then 5_000 else 1_000 in
  let rate = if full then 5_000.0 else 2_500.0 in
  let sequence =
    zipf_sequence (Prng.create 99) ~n:(Array.length hot_set) ~s:1.1
      ~count:total
  in
  let dir = Filename.temp_file "mrpa_bench_zipf" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let run_config (name, plan_cap, result_cap) =
    let snap =
      Snapshot.of_graph ~plan_cache_capacity:plan_cap
        ~result_cache_capacity:result_cap g
    in
    let socket_path = Filename.concat dir (name ^ ".sock") in
    let config =
      {
        Server.endpoint = Wire.Unix_socket socket_path;
        workers = 2;
        queue_capacity = 64;
        limits = Wire.default_limits;
        idle_timeout_ms = None;
        max_request_bytes = Server.default_max_request_bytes;
        max_predicted_cost = None;
        allow_remote_shutdown = false;
        role = Server.Standalone;
      }
    in
    let server = Server.create ~snapshot:snap config in
    let serve_thread = Thread.create (fun () -> Server.serve server) () in
    let rec await n =
      if Sys.file_exists socket_path then ()
      else if n = 0 then failwith "EXP-T16: server did not come up"
      else begin
        Unix.sleepf 0.01;
        await (n - 1)
      end
    in
    await 500;
    match Client.connect (Wire.Unix_socket socket_path) with
    | Error m -> failwith ("EXP-T16 connect: " ^ m)
    | Ok conn ->
      let scheduled = Array.make total 0.0 in
      let latencies = Array.make total nan in
      let ok = Atomic.make 0
      and overloaded = Atomic.make 0
      and other = Atomic.make 0 in
      let t_done = ref 0.0 in
      (* Receiver first: it must drain while the sender floods, or the
         server could block writing responses into a full socket buffer
         while the sender blocks writing requests — a pipelining deadlock. *)
      let receiver =
        Thread.create
          (fun () ->
            for _ = 1 to total do
              match Client.receive conn with
              | Error m -> Printf.eprintf "EXP-T16 receive: %s\n" m
              | Ok j -> (
                let now = Unix.gettimeofday () in
                match Option.bind (Sjson.member "ok" j) Sjson.to_bool_opt with
                | Some true ->
                  Atomic.incr ok;
                  (* only answered requests are charged to the latency
                     distribution — a shed request is fast by definition *)
                  (match Client.response_id j with
                  | Sjson.Number f ->
                    let i = int_of_float f - 1 in
                    if i >= 0 && i < total then
                      latencies.(i) <- now -. scheduled.(i)
                  | _ -> ())
                | _ ->
                  let code =
                    Option.bind (Sjson.member "error" j) (fun e ->
                        Option.bind (Sjson.member "code" e) Sjson.to_string_opt)
                  in
                  if code = Some "overloaded" then Atomic.incr overloaded
                  else Atomic.incr other)
            done;
            t_done := Unix.gettimeofday ())
          ()
      in
      let t0 = Unix.gettimeofday () in
      for i = 0 to total - 1 do
        let due = t0 +. (float_of_int i /. rate) in
        let now = Unix.gettimeofday () in
        if due -. now > 0.002 then Thread.delay (due -. now);
        (* open loop: a late sender charges the delay to the request *)
        scheduled.(i) <- due;
        let req =
          {
            Wire.id = Sjson.Number (float_of_int (i + 1));
            verb = Wire.Query;
            query = Some hot_set.(sequence.(i));
            options = request_options;
          }
        in
        match Client.send conn req with
        | Ok () -> ()
        | Error m -> Printf.eprintf "EXP-T16 send: %s\n" m
      done;
      Thread.join receiver;
      Client.close conn;
      Server.stop server;
      Thread.join serve_thread;
      let wall_s = max 1e-9 (!t_done -. t0) in
      let ok_lat =
        Array.of_list
          (List.filter
             (fun l -> not (Float.is_nan l))
             (Array.to_list latencies))
      in
      Array.sort compare ok_lat;
      let p50 = percentile ok_lat 0.50 *. 1e3
      and p95 = percentile ok_lat 0.95 *. 1e3 in
      let ok = Atomic.get ok
      and overloaded = Atomic.get overloaded
      and other = Atomic.get other in
      let ok_qps = float_of_int ok /. wall_s in
      let plan_hits, plan_misses = Snapshot.plan_cache_stats snap in
      let res_hits, res_misses, _ = Snapshot.result_cache_stats snap in
      let rate_of h m =
        if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
      in
      zipf_rows :=
        Printf.sprintf
          "{\"config\":\"%s\",\"requests\":%d,\"offered_qps\":%.0f,\"ok\":%d,\"overloaded\":%d,\"other\":%d,\"ok_qps\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"parses\":%d,\"plan_hit_rate\":%.3f,\"result_hit_rate\":%.3f}"
          name total rate ok overloaded other ok_qps p50 p95
          (Snapshot.parse_count snap)
          (rate_of plan_hits plan_misses)
          (rate_of res_hits res_misses)
        :: !zipf_rows;
      [
        name;
        string_of_int ok;
        string_of_int overloaded;
        Printf.sprintf "%.0f" ok_qps;
        Printf.sprintf "%.2f" p50;
        Printf.sprintf "%.2f" p95;
        string_of_int (Snapshot.parse_count snap);
        Printf.sprintf "%.1f%%" (100.0 *. rate_of plan_hits plan_misses);
        Printf.sprintf "%.1f%%" (100.0 *. rate_of res_hits res_misses);
      ]
  in
  let rows =
    List.map run_config
      [
        ("caches-off", 0, 0);
        ("plan-only", 1024, 0);
        ("plan+result", 1024, 256);
      ]
  in
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  print_table
    ~title:
      (Printf.sprintf
         "zipf(s=1.1) over %d hot queries, %d requests offered at %.0f/s, \
          2 workers"
         (Array.length hot_set) total rate)
    ~header:
      [
        "config"; "ok"; "shed"; "ok qps"; "p50 ms"; "p95 ms"; "parses";
        "plan hit"; "result hit";
      ]
    rows

(* --- EXP-T17: replication convergence and failover ----------------------------- *)

(* Rows recorded by exp_replication for the --json summary ("replication"
   section of mrpa.bench/1); empty when the experiment was not selected. *)
let repl_rows : string list ref = ref []

let exp_replication ~full =
  section "EXP-T17 (replication: lag and failover)"
    "An in-process primary/replica pair on Unix sockets: a writer appends\n\
     records to the primary's journal, the primary tails and streams them,\n\
     the replica applies and republishes snapshots. Measured: time from\n\
     the last write until the replica's health reports zero lag\n\
     (convergence), then the primary is stopped and the time until a\n\
     failover client ([primary; replica] endpoint list) gets its first\n\
     successful answer is recorded (time-to-failover).";
  let module R = Mrpa_server.Replication in
  let n_records = if full then 5_000 else 1_000 in
  let dir = Filename.temp_file "mrpa_bench_repl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let journal = Filename.concat dir "primary.log" in
  let p_sock = Filename.concat dir "p.sock" in
  let r_sock = Filename.concat dir "r.sock" in
  let p_ep = Wire.Unix_socket p_sock in
  let r_ep = Wire.Unix_socket r_sock in
  let config endpoint role =
    {
      Server.endpoint;
      workers = 2;
      queue_capacity = 64;
      limits = Wire.default_limits;
      idle_timeout_ms = None;
      max_request_bytes = Server.default_max_request_bytes;
      max_predicted_cost = None;
      allow_remote_shutdown = false;
      role;
    }
  in
  let writer = Digraph.create () in
  let j = Journal.attach ~on_warning:ignore writer journal in
  let primary = Server.create (config p_ep (Server.Primary { journal })) in
  let p_thread = Thread.create (fun () -> Server.serve primary) () in
  let replica =
    Server.create (config r_ep (Server.Replica { follow = p_ep }))
  in
  let r_thread = Thread.create (fun () -> Server.serve replica) () in
  let health_int ep field =
    let req =
      { Wire.id = Sjson.Null; verb = Wire.Health; query = None;
        options = Wire.default_options }
    in
    match Client.connect ep with
    | Error _ -> None
    | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.request conn req with
          | Error _ -> None
          | Ok json ->
            Option.bind
              (Option.bind (Sjson.member "health" json) (Sjson.member field))
              Sjson.to_int_opt)
  in
  let await ?(timeout = 30.0) what cond =
    let deadline = Unix.gettimeofday () +. timeout in
    while (not (cond ())) && Unix.gettimeofday () < deadline do
      Thread.yield ();
      Unix.sleepf 0.002
    done;
    if not (cond ()) then failwith ("EXP-T17: timed out waiting for " ^ what)
  in
  await "servers up" (fun () ->
      health_int p_ep "last_seq" <> None && health_int r_ep "last_seq" <> None);
  (* The write burst: n_records edge insertions through the journal. *)
  let _, write_s =
    time (fun () ->
        (* Distinct edges: a duplicate insert fires no observer and hence
           appends no record, which would leave the replica short. *)
        for i = 1 to n_records do
          ignore
            (Digraph.add writer
               (Printf.sprintf "v%d" i)
               "r"
               (Printf.sprintf "v%d" (i + 1)))
        done;
        Journal.sync j)
  in
  let _, converge_s =
    time (fun () ->
        await "replica convergence" (fun () ->
            health_int r_ep "last_seq" = Some n_records))
  in
  (* Failover: stop the primary, then time until the endpoint-rotating
     client first succeeds. *)
  let failover () =
    Client.request_failover
      ~policy:{ Client.retries = 10; backoff_ms = 10.0 }
      [ p_ep; r_ep ]
      { Wire.id = Sjson.Null; verb = Wire.Count; query = Some "[v1,r,_]";
        options = Wire.default_options }
  in
  (match failover () with
  | Ok _ -> ()
  | Error m -> failwith ("EXP-T17: pre-failover request failed: " ^ m));
  Server.stop primary;
  Thread.join p_thread;
  let ok, failover_s = time (fun () -> failover ()) in
  (match ok with
  | Ok _ -> ()
  | Error m -> failwith ("EXP-T17: failover request failed: " ^ m));
  Server.stop replica;
  Thread.join r_thread;
  Journal.close j;
  (try
     Array.iter
       (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with Unix.Unix_error _ | Sys_error _ -> ());
  let rate = float_of_int n_records /. (write_s +. converge_s) in
  repl_rows :=
    Printf.sprintf
      "{\"records\":%d,\"write_ms\":%.1f,\"converge_ms\":%.1f,\"replicated_per_s\":%.0f,\"failover_ms\":%.2f}"
      n_records (1000.0 *. write_s) (1000.0 *. converge_s) rate
      (1000.0 *. failover_s)
    :: !repl_rows;
  print_table
    ~title:
      (Printf.sprintf "replication over Unix sockets, %d records" n_records)
    ~header:[ "records"; "write"; "converge"; "records/s"; "failover" ]
    [
      [
        string_of_int n_records;
        ms write_s ^ " ms";
        ms converge_s ^ " ms";
        Printf.sprintf "%.0f" rate;
        ms failover_s ^ " ms";
      ];
    ]

(* --- EXP-T18: live views, incremental vs recompute-per-read ------------------- *)

(* Rows recorded by exp_views_live for the --json summary ("views_live"
   section of mrpa.bench/1); empty when the experiment was not selected. *)
let views_live_rows : string list ref = ref []

let exp_views_live ~full =
  section "EXP-T18 (live views: incremental vs recompute-per-read)"
    "An open-loop mixed workload against an in-process primary: a writer\n\
     appends knows-edges through the journal while a client reads two\n\
     registered views of the SAME derived relation E_knows.works_for —\n\
     one a word view (rank-1 incremental maintenance, reads extract the\n\
     maintained matrix) and one an expression view (dirty-marking, every\n\
     read after a write re-projects from the snapshot). The read-stream\n\
     times isolate maintenance strategy; everything else is identical.";
  let n_people = if full then 300 else 120 in
  let n_orgs = max 2 (n_people / 20) in
  let n_rounds = if full then 150 else 50 in
  let dir = Filename.temp_file "mrpa_bench_views" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let journal = Filename.concat dir "primary.log" in
  let sock = Filename.concat dir "p.sock" in
  let ep = Wire.Unix_socket sock in
  let writer = Digraph.create () in
  let j = Journal.attach ~on_warning:ignore writer journal in
  (* Seed: a knows-chain over the people plus a works_for edge each, so the
     two-label word is non-trivially populated from the start. *)
  let seq = ref 0 in
  let add t l h =
    let before = Digraph.n_edges writer in
    ignore (Digraph.add writer t l h);
    if Digraph.n_edges writer > before then incr seq
  in
  for i = 0 to n_people - 1 do
    add (Printf.sprintf "p%d" i) "knows" (Printf.sprintf "p%d" ((i + 1) mod n_people));
    add (Printf.sprintf "p%d" i) "works_for" (Printf.sprintf "o%d" (i mod n_orgs))
  done;
  Journal.sync j;
  let server =
    Server.create
      {
        Server.endpoint = ep;
        workers = 2;
        queue_capacity = 64;
        limits = Wire.default_limits;
        idle_timeout_ms = None;
        max_request_bytes = Server.default_max_request_bytes;
        max_predicted_cost = None;
        allow_remote_shutdown = false;
        role = Server.Primary { journal };
      }
  in
  let s_thread = Thread.create (fun () -> Server.serve server) () in
  let request req =
    match Client.connect ep with
    | Error m -> failwith ("EXP-T18: connect: " ^ m)
    | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.request conn req with
          | Error m -> failwith ("EXP-T18: request: " ^ m)
          | Ok json ->
            (match Sjson.member "ok" json with
            | Some (Sjson.Bool true) -> ()
            | _ -> failwith ("EXP-T18: error response: " ^ Sjson.to_string json));
            json)
  in
  let health_seq () =
    let req =
      { Wire.id = Sjson.Null; verb = Wire.Health; query = None;
        options = Wire.default_options }
    in
    match Client.connect ep with
    | Error _ -> None
    | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.request conn req with
          | Error _ -> None
          | Ok json ->
            Option.bind
              (Option.bind (Sjson.member "health" json) (Sjson.member "last_seq"))
              Sjson.to_int_opt)
  in
  let await what cond =
    let deadline = Unix.gettimeofday () +. 30.0 in
    while (not (cond ())) && Unix.gettimeofday () < deadline do
      Thread.yield ();
      Unix.sleepf 0.002
    done;
    if not (cond ()) then failwith ("EXP-T18: timed out waiting for " ^ what)
  in
  await "server caught up" (fun () -> health_seq () = Some !seq);
  let view_req action name =
    {
      Wire.id = Sjson.Null;
      verb =
        Wire.Views
          {
            Wire.action;
            view_name = name;
            word = None;
            view_query = None;
            measure = None;
            top = None;
          };
      query = None;
      options = Wire.default_options;
    }
  in
  let register name form =
    let base = view_req Wire.V_register (Some name) in
    let vreq = match base.Wire.verb with Wire.Views v -> v | _ -> assert false in
    let verb =
      match form with
      | `Word w -> Wire.Views { vreq with Wire.word = Some w }
      | `Query q -> Wire.Views { vreq with Wire.view_query = Some q }
    in
    ignore
      (request
         { base with Wire.verb; options = { Wire.default_options with Wire.max_length = Some 4 } })
  in
  register "kw" (`Word [ "knows"; "works_for" ]);
  register "ke" (`Query "[_,knows,_] . [_,works_for,_]");
  let read name = ignore (request (view_req Wire.V_edges (Some name))) in
  (* Open loop: each round appends one fresh knows-edge (mostly rank-1
     updates; occasionally a brand-new vertex forces a word-view rebuild),
     waits for the tailer to apply it, then reads both views. Only the
     reads are on the clock. *)
  let t_word = ref 0.0 and t_expr = ref 0.0 in
  for r = 0 to n_rounds - 1 do
    (if r mod 10 = 9 then add (Printf.sprintf "p%d" (r mod n_people)) "knows" (Printf.sprintf "n%d" r)
     else
       add
         (Printf.sprintf "p%d" (r mod n_people))
         "knows"
         (Printf.sprintf "p%d" ((r * 7 + 3) mod n_people)));
    Journal.sync j;
    await "round applied" (fun () -> health_seq () = Some !seq);
    let (), dt_w = time (fun () -> read "kw") in
    let (), dt_e = time (fun () -> read "ke") in
    t_word := !t_word +. dt_w;
    t_expr := !t_expr +. dt_e
  done;
  (* Maintenance accounting from the server's own view list. *)
  let infos = request (view_req Wire.V_list None) in
  let view_int name field =
    match Sjson.member "views" infos with
    | Some (Sjson.List vs) ->
      List.fold_left
        (fun acc v ->
          match (Sjson.member "name" v, Sjson.member field v) with
          | Some (Sjson.String n), Some x when n = name ->
            Option.value ~default:acc (Sjson.to_int_opt x)
          | _ -> acc)
        0 vs
    | _ -> 0
  in
  let updates = view_int "kw" "updates" in
  let rebuilds = view_int "kw" "rebuilds" in
  let reprojections = view_int "ke" "reprojections" in
  Server.stop server;
  Thread.join s_thread;
  Journal.close j;
  (try
     Array.iter
       (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with Unix.Unix_error _ | Sys_error _ -> ());
  views_live_rows :=
    Printf.sprintf
      "{\"people\":%d,\"rounds\":%d,\"word_read_ms\":%.2f,\"expr_read_ms\":%.2f,\"speedup\":%.1f,\"updates\":%d,\"rebuilds\":%d,\"reprojections\":%d}"
      n_people n_rounds (1000.0 *. !t_word) (1000.0 *. !t_expr)
      (!t_expr /. max 1e-9 !t_word)
      updates rebuilds reprojections
    :: !views_live_rows;
  print_table
    ~title:
      (Printf.sprintf
         "E_knows.works_for served live, %d writes interleaved with reads"
         n_rounds)
    ~header:
      [ "people"; "rounds"; "word reads"; "expr reads"; "speedup"; "updates";
        "rebuilds"; "reprojections" ]
    [
      [
        string_of_int n_people;
        string_of_int n_rounds;
        ms !t_word ^ " ms";
        ms !t_expr ^ " ms";
        Printf.sprintf "%.1fx" (!t_expr /. max 1e-9 !t_word);
        string_of_int updates;
        string_of_int rebuilds;
        string_of_int reprojections;
      ];
    ]

(* --- Machine-readable summary (--json) ---------------------------------------- *)

(* A fixed set of representative engine runs whose mrpa.profile/1 documents
   are embedded in the bench summary: the Figure 1 query under each
   evaluation strategy, plus the counting DP on K6 x 2 labels. Committed
   baselines (BENCH_pr*.json) diff these counters across PRs; counters are
   deterministic, timings are environment-dependent. *)
let bench_profiles () =
  let g =
    Generate.fig1 ~rng:(Prng.create 42) ~n_noise_vertices:20 ~n_noise_edges:60
  in
  let query =
    "[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])"
  in
  let engine_runs =
    List.filter_map
      (fun (name, strategy) ->
        match
          Mrpa_engine.Engine.query_profiled ?strategy ~max_length:5 g query
        with
        | Ok (_, m) -> Some (name, Metrics.to_json m)
        | Error _ -> None)
      [
        ("fig1-reference", Some Mrpa_engine.Plan.Reference);
        ("fig1-stack", Some Mrpa_engine.Plan.Stack_machine);
        ("fig1-bfs", Some Mrpa_engine.Plan.Product_bfs);
      ]
  in
  let counting_run =
    let g = Generate.complete ~n:6 ~n_labels:2 in
    let r = Expr.star (Expr.sel Selector.universe) in
    let st = Counting.fresh_stats () in
    let m = Metrics.create () in
    let total = Metrics.time m "execute" (fun () -> Counting.count ~stats:st g r ~max_length:4) in
    Metrics.set m "counting.total" total;
    Metrics.set m "counting.subset_states" st.Counting.subset_states;
    Metrics.set m "counting.peak_configs" st.Counting.peak_configs;
    ("counting-K6-Estar", Metrics.to_json m)
  in
  engine_runs @ [ counting_run ]

let bench_json ~full ~timings =
  let esc = Metrics.escape_string in
  let experiments =
    String.concat ","
      (List.map
         (fun (name, ns) ->
           Printf.sprintf "{\"name\":%s,\"elapsed_ns\":%Ld}" (esc name) ns)
         timings)
  in
  let profiles =
    String.concat ","
      (List.map
         (fun (name, json) ->
           Printf.sprintf "{\"name\":%s,\"profile\":%s}" (esc name) json)
         (bench_profiles ()))
  in
  let serve = String.concat "," (List.rev !serve_rows) in
  let route = String.concat "," (List.rev !route_rows) in
  let journal = String.concat "," !journal_rows in
  let cost = String.concat "," (List.rev !cost_rows) in
  let zipf = String.concat "," (List.rev !zipf_rows) in
  let replication = String.concat "," (List.rev !repl_rows) in
  let views_live = String.concat "," (List.rev !views_live_rows) in
  Printf.sprintf
    "{\"schema\":\"mrpa.bench/1\",\"scale\":%s,\"experiments\":[%s],\"serve\":[%s],\"route\":[%s],\"journal\":[%s],\"cost\":[%s],\"zipf\":[%s],\"replication\":[%s],\"views_live\":[%s],\"profiles\":[%s]}"
    (esc (if full then "full" else "default"))
    experiments serve route journal cost zipf replication views_live profiles

(* --- Driver ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", exp_fig1);
    ("micro", exp_micro);
    ("join-vs-product", exp_join_vs_product);
    ("traversals", exp_traversals);
    ("join-order", exp_join_order);
    ("recognizers", exp_recognizers);
    ("generators", exp_generators);
    ("counting", exp_counting);
    ("label-regex", exp_label_regex);
    ("optimizer", exp_optimizer);
    ("semirings", exp_semirings);
    ("projection", exp_projection);
    ("views", exp_views);
    ("label-loss", exp_label_loss);
    ("guardrails", exp_guardrails);
    ("serve", exp_serve);
    ("route", exp_route);
    ("journal", exp_journal);
    ("cost", exp_cost);
    ("zipf", exp_zipf);
    ("replication", exp_replication);
    ("views-live", exp_views_live);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let rec extract_json acc = function
    | [] -> (None, List.rev acc)
    | [ "--json" ] ->
      prerr_endline "--json requires a FILE argument";
      exit 2
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | a :: rest -> extract_json (a :: acc) rest
  in
  let json_file, args = extract_json [] args in
  let selected = List.filter (fun a -> a <> "--full") args in
  let to_run =
    match selected with
    | [] | [ "all" ] -> experiments
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S; available: %s all\n" name
              (String.concat " " (List.map fst experiments));
            exit 2)
        names
  in
  Printf.printf "mrpa experiment harness — %d experiment(s), scale=%s\n"
    (List.length to_run)
    (if full then "full" else "default");
  let timings =
    List.map
      (fun (name, f) ->
        let t0 = Metrics.now_ns () in
        f ~full;
        (name, Metrics.elapsed_ns ~since:t0))
      to_run
  in
  (match json_file with
  | None -> ()
  | Some file ->
    let json = bench_json ~full ~timings in
    let oc = open_out file in
    output_string oc (json ^ "\n");
    close_out oc;
    Printf.printf "\nwrote %s\n" file);
  Printf.printf "\nDone.\n"
