(** Read-only frozen graph snapshots, shared by all workers.

    The live {!Mrpa_graph.Digraph.t} is single-threaded — edge insertion
    mutates adjacency buckets and fires arbitrary observer closures, so
    handing one graph to [K] worker threads would be unsound. A snapshot is
    the sharing discipline made a type: its graph is {e frozen}
    ({!Mrpa_graph.Digraph.freeze}), every mutation raises, and therefore
    every operation that remains is a pure read that any number of threads
    or domains may run concurrently without locks.

    A value of this type is the proof the server passes around: workers
    only ever see [Snapshot.graph snap], never the mutable original. *)

open Mrpa_graph

type t

val of_graph : Digraph.t -> t
(** Freeze a private deep {!Digraph.copy} of the graph. The original stays
    live and mutable; later mutations to it are invisible to the
    snapshot. *)

val load : string -> t
(** {!Io.load} a TSV edge list and freeze it in place (no copy — the graph
    was never shared while mutable). Raises like {!Io.load}. *)

val graph : t -> Digraph.t
(** The frozen graph. [Digraph.is_frozen (graph t)] always holds. *)

val signature : t -> Mrpa_lint.Signature.t
(** The graph's label signature, computed once at snapshot construction —
    the static analyzer's per-request edge rescans amortised to zero.
    Immutable, so freely shared across session threads. *)

val profile : t -> Stat.profile
(** The per-label degree/selectivity statistics the cost analyzer and the
    planner consume, likewise computed once and freely shared. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line [|V|/|E|/|Omega|] summary of the underlying graph. *)
