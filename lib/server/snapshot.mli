(** Read-only frozen graph snapshots, shared by all workers — plus the
    server's two caches, which live here because their lifetime {e is} the
    snapshot's lifetime.

    The live {!Mrpa_graph.Digraph.t} is single-threaded — edge insertion
    mutates adjacency buckets and fires arbitrary observer closures, so
    handing one graph to [K] worker threads would be unsound. A snapshot is
    the sharing discipline made a type: its graph is {e frozen}
    ({!Mrpa_graph.Digraph.freeze}), every mutation raises, and therefore
    every operation that remains is a pure read that any number of threads
    or domains may run concurrently without locks.

    {b Compiled-plan cache.} [compile] parses, cost-analyses and plans a
    query exactly once per (text, max_length, simple) key, caching the
    {!compiled} triple (including parse {e errors}) in a bounded
    mutex-guarded LRU. Admission control, the [lint] verb and worker
    evaluation all read the same entry — the triple-parse bug is gone by
    construction, and [parse_count] is the regression hook that proves it.

    {b Result cache.} Complete (non-partial) responses can be cached by
    payload under a key that includes verb, query and every
    semantics-affecting option. Invalidation is generation-based:
    {!of_graph} registers edge observers on the {e source} graph, so any
    write — direct or replayed through {!Mrpa_graph.Journal} — bumps the
    generation and clears the cache. {!cache_result} re-checks the
    generation under the same lock, so a result computed before a write can
    never be served after it. The snapshot itself never changes; staleness
    here is relative to the live source graph, and refreshing the snapshot
    ({!of_graph} again) is the documented path to observing writes. *)

open Mrpa_graph
open Mrpa_engine

type t

type compiled = {
  spanned : Mrpa_core.Spanned.t;
      (** parsed with spans — what {!Mrpa_lint.Lint.analyze} wants. *)
  cost : Mrpa_lint.Cost.t;
      (** {!Mrpa_lint.Cost.analyze} of the {e original} expression — what
          admission control and the [lint] verb report. (The plan carries
          its own analysis of the {e optimised} form.) *)
  plan : Plan.t;  (** the planner's choice, ready for {!Engine.query_plan}. *)
}

val of_graph :
  ?plan_cache_capacity:int -> ?result_cache_capacity:int -> Digraph.t -> t
(** Freeze a private deep {!Digraph.copy} of the graph. The original stays
    live and mutable; later mutations to it are invisible to the snapshot
    but {e do} invalidate its result cache (edge observers are registered
    on the source unless it is already frozen). Cache capacities default to
    1024 plans / 256 results; [0] disables a cache. *)

val load :
  ?plan_cache_capacity:int -> ?result_cache_capacity:int -> string -> t
(** {!Io.load} a TSV edge list and freeze it in place (no copy — the graph
    was never shared while mutable, and there is no live source to watch).
    Raises like {!Io.load}. *)

val watch : t -> Digraph.t -> unit
(** Register result-cache invalidation observers on a live graph (no-op on
    a frozen one). {!of_graph} does this for its source automatically; call
    it yourself when the snapshot was {!load}ed but writes arrive on a
    separate live graph (e.g. a journal replay target). *)

val unwatch : t -> Digraph.t -> unit
(** Deregister the observers {!watch} installed on that graph. *)

val graph : t -> Digraph.t
(** The frozen graph. [Digraph.is_frozen (graph t)] always holds. *)

val signature : t -> Mrpa_lint.Signature.t
(** The graph's label signature, computed once at snapshot construction —
    the static analyzer's per-request edge rescans amortised to zero.
    Immutable, so freely shared across session threads. *)

val profile : t -> Stat.profile
(** The per-label degree/selectivity statistics the cost analyzer and the
    planner consume, likewise computed once and freely shared. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line [|V|/|E|/|Omega|] summary of the underlying graph. *)

(** {1 Compiled-plan cache} *)

val compile :
  t -> max_length:int -> simple:bool -> string -> (compiled, string) result
(** Parse + cost-analyse + plan the query text, through the LRU. [Error]
    is a rendered parse error and is cached too — a client hammering a
    typo'd query costs one parse, not one per attempt. Per-request strategy
    overrides are applied by the caller via {!Plan.with_strategy}; they are
    not part of the cache key. Thread-safe. *)

val parse_count : t -> int
(** Number of actual [Parser.parse_spanned] runs this snapshot has done —
    the single-parse-per-request regression counter. *)

val plan_cache_stats : t -> int * int
(** [(hits, misses)]. *)

val plan_cache_length : t -> int

(** {1 Result cache} *)

type result_key

val result_key :
  verb:string ->
  query:string ->
  max_length:int ->
  simple:bool ->
  strategy:Plan.strategy option ->
  limit:int option ->
  result_key
(** Cache key over everything that affects a response payload. Build it
    from {e clamped} options so equivalent requests share an entry. *)

val generation : t -> int
(** Current invalidation generation. Read it {e before} evaluating; pass it
    to {!cache_result} afterwards. *)

val cached_result : t -> result_key -> (string * string) list option
(** Cached response payload fields ([(key, raw_json_value)] pairs, minus
    the envelope — the envelope carries the per-request [id]). *)

val cache_result :
  t -> generation:int -> result_key -> (string * string) list -> unit
(** Store a payload computed at [generation]. Dropped silently if any write
    invalidated the cache since — that is the no-stale-reads guarantee.
    Only {e Complete}-verdict payloads should be stored: a partial result
    depends on the budget that produced it, a complete one is the full
    denotation under the keyed options and nothing else. *)

val invalidate_results : t -> unit
(** Bump the generation and drop every cached result. Fired by the edge
    observers on every write to a watched source graph; public for tests
    and for callers with out-of-band write knowledge. *)

val result_cache_stats : t -> int * int * int
(** [(hits, misses, invalidations)]. *)

val result_cache_length : t -> int
