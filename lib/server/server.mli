(** The [mrpa serve] query server: a long-lived process holding one frozen
    graph snapshot, serving [mrpa.wire/1] requests concurrently.

    Architecture (one paragraph per moving part):

    - {b Accept loop} — the calling thread of {!serve} owns the listening
      socket (Unix-domain or TCP, {!Wire.endpoint}) and polls it with a
      short [select] timeout so a stop request is noticed within a fraction
      of a second without signal/EINTR gymnastics. Each accepted connection
      gets a session thread.
    - {b Sessions and pipelining} — a session reads request lines as fast
      as they arrive and answers [ping] / [stats] / [lint] / [shutdown]
      (and bad requests, admission rejects, result-cache hits and overload
      refusals) inline, while [query] / [count] jobs are handed to the
      worker pool {e without waiting}: the worker writes its own response
      under the connection's write mutex. Multiple tagged requests may
      therefore be in flight on one connection and responses may return out
      of order — the request [id], echoed verbatim, is the correlation key.
      Requests that never touch a worker keep their relative order;
      evaluations complete in whatever order the pool finishes them. A
      session closing (EOF, timeout, oversize, blank-flood) waits for its
      in-flight workers before the fd is released.
    - {b Worker pool} — a bounded {!Pool}; when its queue is full the
      session immediately answers [overloaded] ({!Wire.error_code})
      instead of buffering, so memory under overload is bounded by
      [workers + queue], not by demand.
    - {b Snapshot and caches} — all workers read one frozen {!Snapshot.t};
      soundness of concurrent reads is by construction (mutation is
      unrepresentable), not by locking. The snapshot also carries the
      compiled-plan LRU (admission control, [lint] and evaluation share one
      parse + cost analysis per query text) and the bounded result cache
      for Complete-verdict responses, invalidated by edge observers on the
      snapshot's source graph. Both surface in [stats] as
      [server.plan_cache_{hits,misses,size}],
      [server.result_cache_{hits,misses,invalidations,size}] and
      [server.parses].
    - {b Budgets} — each query's clamped options become a fresh
      {!Mrpa_engine.Budget.t}; the server keeps every in-flight budget in a
      registry so shutdown can {!Mrpa_engine.Budget.cancel} them all, which
      aborts the runs at their next checkpoint with a sound partial result.
    - {b Metrics} — one server-wide {!Mrpa_engine.Metrics.t} behind a
      mutex (the collector itself is single-threaded by contract),
      surfaced by the [stats] verb.
    - {b Hardening} — each session enforces two read bounds. A connection
      that fails to deliver a {e complete} request line within
      [idle_timeout_ms] is answered with an [idle_timeout] wire error and
      closed; the deadline is computed once per request cycle and is {e not}
      reset by blank lines, so neither the silent idle connection, the
      one-byte-per-poll slowloris, nor the blank-line drip-feeder can hold
      a session thread forever (a blank-only client is additionally dropped
      after 64 consecutive blanks, counted as [server.blank_floods]). A
      request line exceeding [max_request_bytes] is answered with
      [request_too_large] and the connection is closed (framing past an
      oversized line cannot be trusted). Both events are counted
      ([server.idle_timeouts], [server.oversized_requests]) and worker
      deaths restarted by the {!Pool} supervisor appear as
      [server.worker_restarts] in [stats]. The [shutdown] verb is only
      honoured on Unix-domain sessions unless [allow_remote_shutdown] is
      set; a TCP client without it receives an [unauthorized] error
      (counted as [server.unauthorized]).

    Shutdown (an authorised [shutdown] request, or {!stop} from a signal
    handler) drains gracefully: stop accepting, cancel in-flight budgets,
    let the pool finish its queue, wait for sessions to flush their last
    response, then close and (for Unix-domain sockets) unlink. {!serve}
    then returns normally — exit code 0 belongs to the caller. *)

type role =
  | Standalone  (** serve one fixed snapshot; no replication. *)
  | Primary of { journal : string }
      (** tail the v2 journal at this path (created by a writer via
          {!Mrpa_graph.Journal.attach} or [mrpa append]): serve its replay,
          refresh the snapshot as records land, and stream them to [sub]
          subscribers. *)
  | Replica of { follow : Wire.endpoint }
      (** hot standby: subscribe to the primary at [follow], apply its
          record stream into a live graph, and serve (bounded-staleness)
          reads from rolling snapshots of it. *)

type config = {
  endpoint : Wire.endpoint;
  workers : int;  (** worker-pool size [K >= 1]. *)
  queue_capacity : int;  (** bounded job queue [>= 1]. *)
  limits : Wire.limits;  (** server-side option ceilings. *)
  idle_timeout_ms : float option;
      (** close a connection that produces no complete request line within
          this window; [None] waits forever (the pre-hardening default). *)
  max_request_bytes : int;
      (** reject request lines longer than this; see
          {!default_max_request_bytes}. *)
  max_predicted_cost : int option;
      (** static admission ceiling, in the same work units {!Mrpa_core.Budget}
          fuel charges. When set, every [query] / [count] is cost-analysed
          ({!Mrpa_lint.Cost}) in the session thread — via the snapshot's
          compiled-plan cache, so hot queries cost one LRU lookup — and a
          query whose predicted cost exceeds the ceiling is refused with an
          [infeasible] wire error before it ever occupies a pool worker.
          [None] admits everything. *)
  allow_remote_shutdown : bool;
      (** honour the [shutdown] verb on TCP sessions. Default policy is
          [false]: only Unix-domain clients (who by definition share the
          host) may stop the server; remote clients get [unauthorized]. *)
  role : role;
}

val default_max_request_bytes : int
(** 1 MiB — far above any legitimate [mrpa.wire/1] request, far below a
    heap-exhaustion payload. *)

type t

val create : ?snapshot:Snapshot.t -> config -> t
(** Allocate the server state and spawn the worker pool. No socket is
    touched until {!serve}. A [Standalone] server requires [~snapshot]
    (raises [Invalid_argument] without one); [Primary] and [Replica]
    servers build and maintain their own snapshots from their live graphs
    — a primary replays its journal here, so a restarted primary serves
    its data immediately. Raises [Invalid_argument] on a bad pool geometry
    (see {!Pool.create}). *)

val snapshot : t -> Snapshot.t
(** The snapshot currently being served. Fixed for standalone servers;
    for primary/replica roles it is republished by the role thread as the
    journal stream advances (read it once per use). *)

val stop : t -> unit
(** Request shutdown. Only sets an atomic flag — safe from a signal
    handler or any thread; {!serve} notices within its select timeout and
    performs the actual drain from its own thread. Idempotent. *)

val serve : t -> unit
(** Bind, listen, and serve until {!stop} (or a [shutdown] request).
    Returns after the graceful drain. Raises [Unix.Unix_error] if the
    endpoint cannot be bound (e.g. address in use) — binding errors are
    startup errors, not runtime ones. *)

val bound_endpoint : t -> Wire.endpoint option
(** The endpoint {!serve} actually bound, available once it is listening.
    Differs from [config.endpoint] exactly when a TCP port of [0] asked
    the kernel to pick a free one — the supported way to run test servers
    without port races. [None] before {!serve} binds. *)

val connections_served : t -> int
(** Total connections accepted so far (diagnostic, for tests). *)
