(** The [mrpa serve] query server: a long-lived process holding one frozen
    graph snapshot, serving [mrpa.wire/1] requests concurrently.

    Architecture (one paragraph per moving part):

    - {b Accept loop} — the calling thread of {!serve} owns the listening
      socket (Unix-domain or TCP, {!Wire.endpoint}) and polls it with a
      short [select] timeout so a stop request is noticed within a fraction
      of a second without signal/EINTR gymnastics. Each accepted connection
      gets a session thread.
    - {b Sessions} — a session reads one request line at a time, answers
      [ping] / [stats] / [shutdown] inline, and hands [query] / [count]
      jobs to the worker pool, waiting for the answer before reading the
      next line: at most one request is in flight per connection, so
      responses never interleave and no per-connection write lock is
      needed. Concurrency comes from many connections.
    - {b Worker pool} — a bounded {!Pool}; when its queue is full the
      session immediately answers [overloaded] ({!Wire.error_code})
      instead of buffering, so memory under overload is bounded by
      [workers + queue + connections], not by demand.
    - {b Snapshot} — all workers read one frozen {!Snapshot.t}; soundness
      of concurrent reads is by construction (mutation is unrepresentable),
      not by locking.
    - {b Budgets} — each query's clamped options become a fresh
      {!Mrpa_engine.Budget.t}; the server keeps every in-flight budget in a
      registry so shutdown can {!Mrpa_engine.Budget.cancel} them all, which
      aborts the runs at their next checkpoint with a sound partial result.
    - {b Metrics} — one server-wide {!Mrpa_engine.Metrics.t} behind a
      mutex (the collector itself is single-threaded by contract),
      surfaced by the [stats] verb.
    - {b Hardening} — each session enforces two read bounds. A connection
      that fails to deliver a {e complete} request line within
      [idle_timeout_ms] is answered with an [idle_timeout] wire error and
      closed; because the clock measures time-to-a-complete-line, it
      defeats both the silent idle connection and the slowloris client
      that drips one byte per poll. A request line exceeding
      [max_request_bytes] is answered with [request_too_large] and the
      connection is closed (framing past an oversized line cannot be
      trusted). Both events are counted ([server.idle_timeouts],
      [server.oversized_requests]) and worker deaths restarted by the
      {!Pool} supervisor appear as [server.worker_restarts] in [stats].

    Shutdown (a [shutdown] request, or {!stop} from a signal handler)
    drains gracefully: stop accepting, cancel in-flight budgets, let the
    pool finish its queue, wait for sessions to flush their last response,
    then close and (for Unix-domain sockets) unlink. {!serve} then
    returns normally — exit code 0 belongs to the caller. *)

type config = {
  endpoint : Wire.endpoint;
  workers : int;  (** worker-pool size [K >= 1]. *)
  queue_capacity : int;  (** bounded job queue [>= 1]. *)
  limits : Wire.limits;  (** server-side option ceilings. *)
  idle_timeout_ms : float option;
      (** close a connection that produces no complete request line within
          this window; [None] waits forever (the pre-hardening default). *)
  max_request_bytes : int;
      (** reject request lines longer than this; see
          {!default_max_request_bytes}. *)
  max_predicted_cost : int option;
      (** static admission ceiling, in the same work units {!Mrpa_core.Budget}
          fuel charges. When set, every [query] / [count] is cost-analysed
          ({!Mrpa_lint.Cost}) in the session thread against the snapshot's
          cached statistics, and a query whose predicted cost exceeds the
          ceiling is refused with an [infeasible] wire error before it ever
          occupies a pool worker. [None] admits everything. *)
}

val default_max_request_bytes : int
(** 1 MiB — far above any legitimate [mrpa.wire/1] request, far below a
    heap-exhaustion payload. *)

type t

val create : config -> Snapshot.t -> t
(** Allocate the server state and spawn the worker pool. No socket is
    touched until {!serve}. Raises [Invalid_argument] on a bad pool
    geometry (see {!Pool.create}). *)

val stop : t -> unit
(** Request shutdown. Only sets an atomic flag — safe from a signal
    handler or any thread; {!serve} notices within its select timeout and
    performs the actual drain from its own thread. Idempotent. *)

val serve : t -> unit
(** Bind, listen, and serve until {!stop} (or a [shutdown] request).
    Returns after the graceful drain. Raises [Unix.Unix_error] if the
    endpoint cannot be bound (e.g. address in use) — binding errors are
    startup errors, not runtime ones. *)

val connections_served : t -> int
(** Total connections accepted so far (diagnostic, for tests). *)
