(* Socket plumbing shared by {!Server}, {!Client} and {!Replication}'s
   follower loop. Pulled out of server.ml/client.ml so the two sides stop
   duplicating resolve/write loops and so process-wide setup (SIGPIPE) has
   exactly one owner. *)

(* A peer that disconnects mid-write must surface as EPIPE from the write
   call, not kill the process. Library setup, not [bin] setup: embedders
   and the replica's follower thread need it too. Lazy so it runs once, at
   first socket use, and never at module load of a program that does no
   networking. *)
let sigpipe =
  lazy
    (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ())

let ignore_sigpipe () = Lazy.force sigpipe

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      failwith (Printf.sprintf "cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
      failwith (Printf.sprintf "cannot resolve host %S" host))

(* Pipelined wire requests are small (tens of bytes) and latency-bound;
   Nagle's algorithm holds each one hostage to the previous ACK. Harmless
   no-op on Unix-domain sockets. *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* Open a connected stream socket; raises [Unix.Unix_error] (connect
   failures) or [Failure] (unresolvable host). *)
let connect_fd endpoint =
  ignore_sigpipe ();
  match endpoint with
  | Wire.Unix_socket path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | Wire.Tcp (host, port) ->
    let addr = resolve host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (addr, port));
       set_nodelay fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done
