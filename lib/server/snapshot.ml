open Mrpa_graph

type t = {
  graph : Digraph.t;
  signature : Mrpa_lint.Signature.t;
  profile : Stat.profile;
}

(* Both abstractions are computed eagerly, once, at snapshot construction:
   they are immutable values over a frozen graph, so any number of session
   threads can read them without synchronisation — a lazy cell would need a
   lock for exactly the same sharing. *)
let of_frozen graph =
  {
    graph;
    signature = Mrpa_lint.Signature.make graph;
    profile = Stat.profile graph;
  }

let of_graph g =
  let copy = Digraph.copy g in
  Digraph.freeze copy;
  of_frozen copy

let load path =
  let g = Io.load path in
  Digraph.freeze g;
  of_frozen g

let graph t = t.graph
let signature t = t.signature
let profile t = t.profile
let pp_stats fmt t = Digraph.pp_stats fmt t.graph
