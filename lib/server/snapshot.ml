open Mrpa_graph
open Mrpa_engine

type compiled = {
  spanned : Mrpa_core.Spanned.t;
  cost : Mrpa_lint.Cost.t;
  plan : Plan.t;
}

(* Plan-cache key. The per-request strategy override is deliberately NOT
   part of the key: the planner's own choice is cached and a forced
   strategy is applied on the way out with [Plan.with_strategy] (a
   constant-time record update), so `--strategy` experiments share cache
   entries with normal traffic instead of doubling the footprint. *)
(* Key fields are only ever compared/hashed structurally, never projected —
   hence the unused-field silencer. *)
type plan_key = { pk_query : string; pk_max_length : int; pk_simple : bool }
[@@warning "-69"]

type result_key = {
  rk_verb : string;
  rk_query : string;
  rk_max_length : int;
  rk_simple : bool;
  rk_strategy : string option;
  rk_limit : int option;
}
[@@warning "-69"]

type t = {
  graph : Digraph.t;
  signature : Mrpa_lint.Signature.t;
  profile : Stat.profile;
  plans : (plan_key, (compiled, string) result) Lru.t;
  results : (result_key, (string * string) list) Lru.t;
  parses : int Atomic.t;
  generation : int Atomic.t;
  invalidations : int Atomic.t;
  (* Serialises result-cache invalidation against insertion so a worker
     that computed its answer before a write can never slip it into the
     cache after the write's clear (see [cache_result]). *)
  result_lock : Mutex.t;
  mutable observer : Edge.t -> unit;
}

let default_plan_cache_capacity = 1024
let default_result_cache_capacity = 256

(* Both abstractions are computed eagerly, once, at snapshot construction:
   they are immutable values over a frozen graph, so any number of session
   threads can read them without synchronisation — a lazy cell would need a
   lock for exactly the same sharing. *)
let of_frozen ?(plan_cache_capacity = default_plan_cache_capacity)
    ?(result_cache_capacity = default_result_cache_capacity) graph =
  {
    graph;
    signature = Mrpa_lint.Signature.make graph;
    profile = Stat.profile graph;
    plans = Lru.create ~capacity:plan_cache_capacity;
    results = Lru.create ~capacity:result_cache_capacity;
    parses = Atomic.make 0;
    generation = Atomic.make 0;
    invalidations = Atomic.make 0;
    result_lock = Mutex.create ();
    observer = ignore;
  }

let generation t = Atomic.get t.generation

let invalidate_results t =
  Mutex.lock t.result_lock;
  Atomic.incr t.generation;
  Lru.clear t.results;
  Atomic.incr t.invalidations;
  Mutex.unlock t.result_lock

let watch t source =
  if not (Digraph.is_frozen source) then begin
    let f = fun (_ : Edge.t) -> invalidate_results t in
    t.observer <- f;
    Digraph.on_edge_added source f;
    Digraph.on_edge_removed source f
  end

let unwatch t source =
  Digraph.off_edge_added source t.observer;
  Digraph.off_edge_removed source t.observer

let of_graph ?plan_cache_capacity ?result_cache_capacity g =
  let copy = Digraph.copy g in
  Digraph.freeze copy;
  let t = of_frozen ?plan_cache_capacity ?result_cache_capacity copy in
  watch t g;
  t

let load ?plan_cache_capacity ?result_cache_capacity path =
  let g = Io.load path in
  Digraph.freeze g;
  of_frozen ?plan_cache_capacity ?result_cache_capacity g

(* --- Compiled-plan cache ------------------------------------------------ *)

let compile_uncached t ~max_length ~simple query =
  Atomic.incr t.parses;
  match Parser.parse_spanned t.graph query with
  | Error e -> Error (Parser.render_error ~source:query e)
  | Ok spanned ->
    let cost =
      Mrpa_lint.Cost.analyze ~stats:t.profile t.graph ~max_length spanned
    in
    let plan =
      Optimizer.plan ~simple ~stats:t.profile ~max_length t.graph
        (Mrpa_core.Spanned.strip spanned)
    in
    Ok { spanned; cost; plan }

let compile t ~max_length ~simple query =
  let key = { pk_query = query; pk_max_length = max_length; pk_simple = simple } in
  match Lru.find t.plans key with
  | Some r -> r
  | None ->
    (* Two threads racing on a cold key both compile and both insert; the
       work is idempotent and the last insert wins, so no lock is held
       across the (potentially slow) parse + cost analysis. *)
    let r = compile_uncached t ~max_length ~simple query in
    Lru.add t.plans key r;
    r

let parse_count t = Atomic.get t.parses

(* --- Result cache ------------------------------------------------------- *)

let result_key ~verb ~query ~max_length ~simple ~strategy ~limit =
  {
    rk_verb = verb;
    rk_query = query;
    rk_max_length = max_length;
    rk_simple = simple;
    rk_strategy = Option.map Plan.strategy_name strategy;
    rk_limit = limit;
  }

let cached_result t key = Lru.find t.results key

let cache_result t ~generation:g0 key payload =
  Mutex.lock t.result_lock;
  (* The entry is only stored if no write invalidated the cache since the
     caller looked up [generation t]; otherwise the (still snapshot-correct
     but contract-stale) payload is dropped on the floor. *)
  if Atomic.get t.generation = g0 then Lru.add t.results key payload;
  Mutex.unlock t.result_lock

(* --- Accessors ---------------------------------------------------------- *)

let plan_cache_stats t = (Lru.hits t.plans, Lru.misses t.plans)

let result_cache_stats t =
  (Lru.hits t.results, Lru.misses t.results, Atomic.get t.invalidations)

let plan_cache_length t = Lru.length t.plans
let result_cache_length t = Lru.length t.results
let graph t = t.graph
let signature t = t.signature
let profile t = t.profile
let pp_stats fmt t = Digraph.pp_stats fmt t.graph
