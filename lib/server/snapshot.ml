open Mrpa_graph

type t = { graph : Digraph.t }

let of_graph g =
  let copy = Digraph.copy g in
  Digraph.freeze copy;
  { graph = copy }

let load path =
  let g = Io.load path in
  Digraph.freeze g;
  { graph = g }

let graph t = t.graph
let pp_stats fmt t = Digraph.pp_stats fmt t.graph
