open Mrpa_graph
open Mrpa_core
open Mrpa_engine

module StrSet = Set.Make (String)

(* --- Configuration ------------------------------------------------------- *)

type config = {
  endpoint : Wire.endpoint;
  map : Shardmap.t;
  limits : Wire.limits;
  allow_remote_shutdown : bool;
  shard_timeout_ms : float;
  probe_timeout_ms : float;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  frontier_cap : int;
  max_request_bytes : int;
}

let default_shard_timeout_ms = 2000.0
let default_probe_timeout_ms = 250.0
let default_breaker_failures = 3
let default_breaker_cooldown_ms = 1000.0
let default_frontier_cap = 128

let default_config ~map endpoint =
  {
    endpoint;
    map;
    limits = Wire.default_limits;
    allow_remote_shutdown = false;
    shard_timeout_ms = default_shard_timeout_ms;
    probe_timeout_ms = default_probe_timeout_ms;
    breaker_failures = default_breaker_failures;
    breaker_cooldown_ms = default_breaker_cooldown_ms;
    frontier_cap = default_frontier_cap;
    max_request_bytes = Server.default_max_request_bytes;
  }

(* --- Router state -------------------------------------------------------- *)

(* Closed / Open are the durable states; "half-open" is an open breaker
   whose cooldown has expired — the next dispatch probes instead of
   failing fast, and the probe's outcome decides which durable state
   comes next. *)
type breaker_state = B_closed | B_open of float  (* opened at, epoch s *)

type breaker = {
  mutable bstate : breaker_state;
  mutable failures : int;  (* consecutive fully-failed dispatches *)
  mutable preferred : int;  (* endpoint index that answered last *)
  mutable dispatches : int;  (* lifetime count; the fault plane's clock *)
}

type fault_kind = F_kill | F_hang | F_slow of float
type fault = { fkind : fault_kind; at : int }

type t = {
  config : config;
  breakers : breaker array;
  faults : (int, fault) Hashtbl.t;
  lock : Mutex.t;  (* breakers, faults, counters *)
  counters : (string, int) Hashtbl.t;
  stopping : bool Atomic.t;
  bound : Wire.endpoint option Atomic.t;
  next_id : int Atomic.t;
  mutable live_sessions : int;
  sessions_lock : Mutex.t;
  started : float;
}

let create config =
  if Shardmap.n_shards config.map = 0 then
    invalid_arg "Router.create: empty shard map";
  {
    config;
    breakers =
      Array.init (Shardmap.n_shards config.map) (fun _ ->
          { bstate = B_closed; failures = 0; preferred = 0; dispatches = 0 });
    faults = Hashtbl.create 4;
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    stopping = Atomic.make false;
    bound = Atomic.make None;
    next_id = Atomic.make 0;
    live_sessions = 0;
    sessions_lock = Mutex.create ();
    started = Unix.gettimeofday ();
  }

let stop t = Atomic.set t.stopping true
let bound_endpoint t = Atomic.get t.bound

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let c_incr t key =
  with_lock t.lock (fun () ->
      Hashtbl.replace t.counters key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters key)))

let c_get t key =
  Option.value ~default:0 (Hashtbl.find_opt t.counters key)

let shard_index_exn t name =
  match Shardmap.index_of t.config.map name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Router: unknown shard %S" name)

let breaker_state t name =
  match Shardmap.index_of t.config.map name with
  | None -> None
  | Some i ->
    Some
      (with_lock t.lock (fun () ->
           match t.breakers.(i).bstate with
           | B_closed -> "closed"
           | B_open since ->
             if
               Unix.gettimeofday () -. since
               >= t.config.breaker_cooldown_ms /. 1000.0
             then "half_open"
             else "open"))

(* --- Deterministic fault plane ------------------------------------------- *)

module Fault = struct
  type kind = Kill | Hang | Slow of float

  let arm t ~shard kind ~at =
    if at < 1 then invalid_arg "Router.Fault.arm: at < 1";
    let idx = shard_index_exn t shard in
    let fkind =
      match kind with Kill -> F_kill | Hang -> F_hang | Slow ms -> F_slow ms
    in
    with_lock t.lock (fun () -> Hashtbl.replace t.faults idx { fkind; at })

  let disarm t ~shard =
    let idx = shard_index_exn t shard in
    with_lock t.lock (fun () -> Hashtbl.remove t.faults idx)

  let dispatches t ~shard =
    let idx = shard_index_exn t shard in
    with_lock t.lock (fun () -> t.breakers.(idx).dispatches)
end

(* --- Transport: one request line against one endpoint, with a deadline --- *)

let recv_line fd ~abs_deadline =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let remaining = abs_deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then Error "shard response timed out"
    else
      match Unix.select [ fd ] [] [] (Float.min remaining 0.25) with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed by shard"
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          (match String.index_opt s '\n' with
          | Some i -> Ok (String.sub s 0 i)
          | None -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let try_endpoint ep line ~abs_deadline =
  match Net.connect_fd ep with
  | exception Unix.Unix_error (err, _, _) ->
    Error (Unix.error_message err)
  | exception Failure msg -> Error msg
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Net.write_all fd (line ^ "\n") with
        | exception Unix.Unix_error (err, _, _) ->
          Error (Unix.error_message err)
        | () -> recv_line fd ~abs_deadline)

(* --- Breaker-gated shard dispatch ---------------------------------------- *)

type outcome =
  | D_ok of Json.t  (* a parsed [ok:true] response *)
  | D_wire of string * string  (* a definite wire error: code, message *)
  | D_unavailable  (* breaker open / transport dead / all endpoints stale *)

let fresh_id t = Json.Number (float_of_int (Atomic.fetch_and_add t.next_id 1))

let record_success t idx ~endpoint_index =
  with_lock t.lock (fun () ->
      let b = t.breakers.(idx) in
      b.failures <- 0;
      b.bstate <- B_closed;
      b.preferred <- endpoint_index)

(* A fully-failed dispatch (every endpoint dead or stale). Opening is
   edge-triggered on crossing the threshold so [router.breaker_opens]
   counts state transitions, not failures. *)
let record_failure t idx =
  with_lock t.lock (fun () ->
      let b = t.breakers.(idx) in
      b.failures <- b.failures + 1;
      if b.failures >= t.config.breaker_failures then begin
        (match b.bstate with
        | B_closed ->
          Hashtbl.replace t.counters "router.breaker_opens"
            (1 + Option.value ~default:0
                   (Hashtbl.find_opt t.counters "router.breaker_opens"))
        | B_open _ -> ());
        b.bstate <- B_open (Unix.gettimeofday ())
      end)

let health_request t =
  {
    Wire.id = fresh_id t;
    verb = Wire.Health;
    query = None;
    options = Wire.default_options;
  }

(* Try every endpoint of one shard once (starting at the one that answered
   last), with the given absolute deadline shared across the attempts.
   [stale] and [overloaded] answers rotate like transport failures — a
   fresher / less loaded replica may be next in the list. *)
let attempt_endpoints t idx req ~abs_deadline =
  let shard = Shardmap.shard t.config.map idx in
  let eps = Array.of_list shard.Shardmap.endpoints in
  let n = Array.length eps in
  let start = with_lock t.lock (fun () -> t.breakers.(idx).preferred) in
  let line = Wire.encode_request req in
  let transport_or_stale = ref false in
  let rec go k =
    if k >= n then begin
      if !transport_or_stale then record_failure t idx;
      D_unavailable
    end
    else begin
      let ei = (start + k) mod n in
      match try_endpoint eps.(ei) line ~abs_deadline with
      | Error _ ->
        transport_or_stale := true;
        go (k + 1)
      | Ok resp_line -> (
        match Json.parse resp_line with
        | Error _ ->
          (* A peer that frames garbage is as good as dead. *)
          transport_or_stale := true;
          go (k + 1)
        | Ok json -> (
          match Json.member "ok" json with
          | Some (Json.Bool true) ->
            record_success t idx ~endpoint_index:ei;
            D_ok json
          | Some (Json.Bool false) -> (
            let code =
              match
                Option.bind (Json.member "error" json) (Json.member "code")
              with
              | Some (Json.String c) -> c
              | _ -> "internal"
            in
            let message =
              match
                Option.bind (Json.member "error" json) (Json.member "message")
              with
              | Some (Json.String m) -> m
              | _ -> "shard error"
            in
            if code = Wire.error_code_name Wire.Stale then begin
              transport_or_stale := true;
              go (k + 1)
            end
            else if code = Wire.error_code_name Wire.Overloaded then
              (* Shedding load is proof of life: rotate without charging
                 the breaker. *)
              go (k + 1)
            else begin
              (* A definite answer (query_error, infeasible, ...): the
                 shard is alive and has spoken. *)
              record_success t idx ~endpoint_index:ei;
              D_wire (code, message)
            end)
          | _ ->
            transport_or_stale := true;
            go (k + 1)))
    end
  in
  go 0

(* One breaker-gated dispatch of [req] to shard [idx]. *)
let dispatch t idx req ~abs_deadline =
  c_incr t "router.dispatches";
  let now = Unix.gettimeofday () in
  let cooldown = t.config.breaker_cooldown_ms /. 1000.0 in
  let fault, gate =
    with_lock t.lock (fun () ->
        let b = t.breakers.(idx) in
        b.dispatches <- b.dispatches + 1;
        let fault =
          match Hashtbl.find_opt t.faults idx with
          | Some f when b.dispatches >= f.at -> Some f.fkind
          | _ -> None
        in
        let gate =
          match b.bstate with
          | B_closed -> `Proceed
          | B_open since when now -. since < cooldown -> `Fast_fail
          | B_open _ -> `Probe
        in
        (fault, gate))
  in
  let abs_deadline =
    Float.min abs_deadline (now +. (t.config.shard_timeout_ms /. 1000.0))
  in
  let apply_fault k =
    match fault with
    | None -> k ()
    | Some F_kill ->
      record_failure t idx;
      D_unavailable
    | Some F_hang ->
      (* The shard accepted and went silent: burn the whole per-shard
         deadline, exactly like [recv_line] would against a wedged peer. *)
      let pause = Float.max 0.0 (abs_deadline -. Unix.gettimeofday ()) in
      Thread.delay pause;
      record_failure t idx;
      D_unavailable
    | Some (F_slow ms) ->
      Thread.delay (ms /. 1000.0);
      k ()
  in
  match gate with
  | `Fast_fail ->
    c_incr t "router.breaker_fastfails";
    D_unavailable
  | `Probe ->
    (* Half-open: one cheap health probe decides. On success the real
       request proceeds on the now-closed breaker; on failure the breaker
       reopens and the cooldown clock restarts. *)
    let probe_deadline =
      Unix.gettimeofday () +. (t.config.probe_timeout_ms /. 1000.0)
    in
    apply_fault (fun () ->
        match
          attempt_endpoints t idx (health_request t) ~abs_deadline:probe_deadline
        with
        | D_ok _ | D_wire _ -> attempt_endpoints t idx req ~abs_deadline
        | D_unavailable ->
          with_lock t.lock (fun () ->
              t.breakers.(idx).bstate <- B_open (Unix.gettimeofday ()));
          D_unavailable)
  | `Proceed -> apply_fault (fun () -> attempt_endpoints t idx req ~abs_deadline)

(* Dispatch to several shards concurrently; order of the result list is
   the order of [targets]. *)
let scatter t targets mk_req ~abs_deadline =
  match targets with
  | [] -> []
  | [ idx ] ->
    [ (idx, (try dispatch t idx (mk_req ()) ~abs_deadline with _ -> D_unavailable)) ]
  | _ ->
    let cells =
      List.map
        (fun idx ->
          let cell = ref D_unavailable in
          let th =
            Thread.create
              (fun () ->
                cell :=
                  try dispatch t idx (mk_req ()) ~abs_deadline
                  with _ -> D_unavailable)
              ()
          in
          (idx, cell, th))
        targets
    in
    List.map
      (fun (idx, cell, th) ->
        Thread.join th;
        (idx, !cell))
      cells

(* --- Query splitting: a name-level mirror of the engine grammar ---------- *)

(* The engine parser resolves names against its graph — which the router
   does not have. This mirror parses the same grammar down to {e atoms}
   whose leaves stay names, so the router can rewrite a selector's source
   position with a frontier and re-render it as query text for the
   shards. [+], [?], [{n}] and [{n,m}] desugar exactly as {!Mrpa_core.Expr}
   does, and [let] macros expand by reference like the engine's. *)

type vpos = Wild | Names of string list | CoNames of string list

type atom =
  | Asel of { src : vpos; lbl : vpos; dst : vpos }
  | Aedges of (string * string * string) list
  | Aall

type rx =
  | Rempty
  | Reps
  | Ratom of atom
  | Runion of rx * rx
  | Rjoin of rx * rx
  | Rproduct of rx * rx
  | Rstar of rx

exception Q_error of string * int

let q_fail pos fmt =
  Format.kasprintf (fun m -> raise (Q_error (m, pos))) fmt

type pstate = {
  tokens : Lexer.located array;
  mutable cursor : int;
  mutable macros : (string * rx) list;
}

let p_peek st = st.tokens.(st.cursor)
let p_advance st = st.cursor <- st.cursor + 1

let p_expect st token what =
  let { Lexer.token = tk; pos; _ } = p_peek st in
  if tk = token then p_advance st else q_fail pos "expected %s" what

let p_name st =
  let { Lexer.token; pos; _ } = p_peek st in
  match token with
  | Lexer.IDENT s ->
    p_advance st;
    s
  | Lexer.INT i ->
    p_advance st;
    string_of_int i
  | _ -> q_fail pos "expected a name"

let p_names st =
  match (p_peek st).Lexer.token with
  | Lexer.LBRACE ->
    p_advance st;
    let rec more acc =
      let x = p_name st in
      match (p_peek st).Lexer.token with
      | Lexer.COMMA ->
        p_advance st;
        more (x :: acc)
      | _ ->
        p_expect st Lexer.RBRACE "'}'";
        List.rev (x :: acc)
    in
    more []
  | _ -> [ p_name st ]

let p_vpos st =
  match (p_peek st).Lexer.token with
  | Lexer.UNDERSCORE ->
    p_advance st;
    Wild
  | Lexer.BANG ->
    p_advance st;
    CoNames (p_names st)
  | _ -> Names (p_names st)

let p_selector st =
  p_expect st Lexer.LBRACKET "'['";
  let src = p_vpos st in
  p_expect st Lexer.COMMA "','";
  let lbl = p_vpos st in
  p_expect st Lexer.COMMA "','";
  let dst = p_vpos st in
  p_expect st Lexer.RBRACKET "']'";
  Asel { src; lbl; dst }

let p_triple st =
  p_expect st Lexer.LPAREN "'('";
  let tail = p_name st in
  p_expect st Lexer.COMMA "','";
  let label = p_name st in
  p_expect st Lexer.COMMA "','";
  let head = p_name st in
  p_expect st Lexer.RPAREN "')'";
  (tail, label, head)

let p_edge_set st =
  p_expect st Lexer.LBRACE "'{'";
  let rec more acc =
    let e = p_triple st in
    match (p_peek st).Lexer.token with
    | Lexer.SEMI ->
      p_advance st;
      more (e :: acc)
    | _ ->
      p_expect st Lexer.RBRACE "'}'";
      List.rev (e :: acc)
  in
  Aedges (more [])

let r_opt e = Runion (e, Reps)
let r_plus e = Rjoin (e, Rstar e)

let r_repeat e n =
  let rec go acc k = if k = 0 then acc else go (Rjoin (acc, e)) (k - 1) in
  if n = 0 then Reps else go e (n - 1)

let r_repeat_range e ~min ~max =
  let tail = List.init (max - min) (fun _ -> r_opt e) in
  List.fold_left (fun a b -> Rjoin (a, b)) (r_repeat e min) tail

let rec p_expr st =
  let left = p_cat st in
  match (p_peek st).Lexer.token with
  | Lexer.PIPE ->
    p_advance st;
    Runion (left, p_expr st)
  | _ -> left

and p_cat st =
  let rec loop left =
    match (p_peek st).Lexer.token with
    | Lexer.DOT ->
      p_advance st;
      loop (Rjoin (left, p_postfix st))
    | Lexer.CROSS ->
      p_advance st;
      loop (Rproduct (left, p_postfix st))
    | _ -> left
  in
  loop (p_postfix st)

and p_postfix st =
  let rec loop e =
    match (p_peek st).Lexer.token with
    | Lexer.STAR ->
      p_advance st;
      loop (Rstar e)
    | Lexer.PLUS ->
      p_advance st;
      loop (r_plus e)
    | Lexer.QUESTION ->
      p_advance st;
      loop (r_opt e)
    | Lexer.LBRACE -> (
      match st.tokens.(st.cursor + 1).Lexer.token with
      | Lexer.INT lo ->
        p_advance st;
        p_advance st;
        let e =
          match (p_peek st).Lexer.token with
          | Lexer.COMMA ->
            p_advance st;
            let { Lexer.token; pos; _ } = p_peek st in
            (match token with
            | Lexer.INT hi ->
              if hi < lo then
                q_fail pos
                  "upper repetition bound %d is below the lower bound %d" hi lo;
              p_advance st;
              p_expect st Lexer.RBRACE "'}'";
              r_repeat_range e ~min:lo ~max:hi
            | _ -> q_fail pos "expected an upper repetition bound")
          | _ ->
            p_expect st Lexer.RBRACE "'}'";
            r_repeat e lo
        in
        loop e
      | _ -> e)
    | _ -> e
  in
  loop (p_atom st)

and p_atom st =
  let { Lexer.token; pos; _ } = p_peek st in
  match token with
  | Lexer.LPAREN ->
    p_advance st;
    let e = p_expr st in
    p_expect st Lexer.RPAREN "')'";
    e
  | Lexer.IDENT "eps" ->
    p_advance st;
    Reps
  | Lexer.IDENT "empty" ->
    p_advance st;
    Rempty
  | Lexer.IDENT "E" ->
    p_advance st;
    Ratom Aall
  | Lexer.IDENT (("let" | "in") as kw) -> q_fail pos "reserved word %S" kw
  | Lexer.IDENT name -> (
    match List.assoc_opt name st.macros with
    | Some e ->
      p_advance st;
      e
    | None -> q_fail pos "unknown macro %S" name)
  | Lexer.LBRACKET -> Ratom (p_selector st)
  | Lexer.LBRACE -> Ratom (p_edge_set st)
  | _ -> q_fail pos "expected an expression"

let rec p_query st =
  match (p_peek st).Lexer.token with
  | Lexer.IDENT "let" ->
    p_advance st;
    let name = p_name st in
    if name = "let" || name = "in" then
      q_fail (p_peek st).Lexer.pos "reserved word %S" name;
    p_expect st Lexer.EQUAL "'='";
    let body = p_expr st in
    let { Lexer.token; pos; _ } = p_peek st in
    (match token with
    | Lexer.IDENT "in" -> p_advance st
    | _ -> q_fail pos "expected 'in'");
    st.macros <- (name, body) :: st.macros;
    p_query st
  | _ -> p_expr st

let parse_query text =
  match Lexer.tokenize text with
  | exception Lexer.Lex_error (m, pos) -> Error (m, pos)
  | tokens -> (
    let st = { tokens = Array.of_list tokens; cursor = 0; macros = [] } in
    match p_query st with
    | exception Q_error (m, pos) -> Error (m, pos)
    | rx ->
      let { Lexer.token; pos; _ } = p_peek st in
      if token = Lexer.EOF then Ok rx else Error ("trailing input", pos))

(* --- Rendering atoms back into query text -------------------------------- *)

(* Bare iff it lexes back as one IDENT: letters/digits/underscores with a
   non-digit start, and not the wildcard. Digit-led names must be quoted
   (INT normalisation would eat leading zeros); quoting always re-lexes
   to the same IDENT because the lexer's strings have no escapes. *)
let is_bare_name s =
  let n = String.length s in
  n > 0
  && s <> "_"
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  &&
  let ok = ref true in
  String.iter
    (fun c ->
      if
        not
          ((c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9')
          || c = '_')
      then ok := false)
    s;
  !ok

let quote_name s =
  if is_bare_name s then Some s
  else if not (String.contains s '\'') then Some ("'" ^ s ^ "'")
  else if not (String.contains s '"') then Some ("\"" ^ s ^ "\"")
  else None

let render_names names =
  let rec all acc = function
    | [] -> Some (List.rev acc)
    | n :: rest -> (
      match quote_name n with
      | None -> None
      | Some q -> all (q :: acc) rest)
  in
  match all [] names with
  | None -> None
  | Some [ one ] -> Some one
  | Some many -> Some ("{" ^ String.concat "," many ^ "}")

let render_vpos = function
  | Wild -> Some "_"
  | Names ns -> render_names ns
  | CoNames ns -> Option.map (fun s -> "!" ^ s) (render_names ns)

let render_atom = function
  | Aall -> Some "E"
  | Asel { src; lbl; dst } -> (
    match (render_vpos src, render_vpos lbl, render_vpos dst) with
    | Some s, Some l, Some d -> Some ("[" ^ s ^ "," ^ l ^ "," ^ d ^ "]")
    | _ -> None)
  | Aedges triples ->
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | (a, b, c) :: rest -> (
        match (quote_name a, quote_name b, quote_name c) with
        | Some qa, Some qb, Some qc ->
          all (("(" ^ qa ^ "," ^ qb ^ "," ^ qc ^ ")") :: acc) rest
        | _ -> None)
    in
    Option.map
      (fun parts -> "{" ^ String.concat ";" parts ^ "}")
      (all [] triples)

(* --- Frontier narrowing and shard targeting ------------------------------ *)

let all_shards map = List.init (Shardmap.n_shards map) Fun.id

let owners map names =
  List.sort_uniq compare (List.map (Shardmap.owner map) names)

let inter_names xs frontier =
  let f = StrSet.of_list frontier in
  List.filter (fun x -> StrSet.mem x f) xs

let diff_names frontier xs =
  let x = StrSet.of_list xs in
  List.filter (fun f -> not (StrSet.mem f x)) frontier

(* Narrow an atom against the frontier of head vertices flowing out of the
   join's left operand. Returns [None] when the narrowed atom is provably
   empty (no dispatch at all), otherwise the (possibly rewritten) atom and
   the shard indices that can own matching edges. Narrowing is a pure
   optimisation: a too-wide dispatch is filtered again by the router-side
   [Path_set.join], so the fallbacks (frontier wider than [frontier_cap],
   unquotable data-derived names) only cost work, never soundness. *)
let narrow_atom map ~frontier_cap frontier atom =
  match frontier with
  | None -> (
    (* Unconstrained: target by the atom's own source position. *)
    match atom with
    | Asel { src = Names ns; _ } -> Some (atom, owners map ns)
    | Asel _ | Aall -> Some (atom, all_shards map)
    | Aedges triples ->
      Some (atom, owners map (List.map (fun (a, _, _) -> a) triples)))
  | Some frontier -> (
    let narrow_src src =
      match src with
      | Wild -> Some frontier
      | Names ns -> (
        match inter_names ns frontier with [] -> None | xs -> Some xs)
      | CoNames ns -> (
        match diff_names frontier ns with [] -> None | xs -> Some xs)
    in
    match atom with
    | Asel ({ src; _ } as sel) -> (
      match narrow_src src with
      | None -> None
      | Some names ->
        let targets = owners map names in
        if List.length names <= frontier_cap then
          Some (Asel { sel with src = Names names }, targets)
        else Some (atom, targets))
    | Aall ->
      let targets = owners map frontier in
      if List.length frontier <= frontier_cap then
        Some (Asel { src = Names frontier; lbl = Wild; dst = Wild }, targets)
      else Some (atom, targets)
    | Aedges triples -> (
      let f = StrSet.of_list frontier in
      match List.filter (fun (a, _, _) -> StrSet.mem a f) triples with
      | [] -> None
      | kept ->
        Some (Aedges kept, owners map (List.map (fun (a, _, _) -> a) kept))))

(* A complemented {e label} position is the one construct a shard cannot
   answer soundly when it does not know the name: on that shard the
   complement is vacuously true (none of its edges carry a label it has
   never seen), so the correct contribution is {e non-empty} — but its
   graph-relative parser refuses the query instead. Complemented {e
   vertex} positions never hit this: the partitioner replicates the full
   vertex universe, so a vertex unknown on one shard is unknown on all —
   a global typo caught by the all-shards-error rule. *)
let atom_has_label_complement = function
  | Asel { lbl = CoNames _; _ } -> true
  | Asel _ | Aedges _ | Aall -> false

(* --- Scatter-gather evaluation ------------------------------------------- *)

exception Fatal of Wire.error_code * string

type ctx = {
  rt : t;
  scratch : Digraph.t;  (* per-request; interns gathered names *)
  options : Wire.options;  (* clamped *)
  eff_max_length : int;
  abs_deadline : float option;
  mutable reasons : Err.reason list;
  mutable missing : StrSet.t;
  atom_cache : (string, Path_set.t) Hashtbl.t;
}

let note_reason ctx r =
  if not (List.mem r ctx.reasons) then ctx.reasons <- r :: ctx.reasons

let note_missing ctx idx =
  let name = (Shardmap.shard ctx.rt.config.map idx).Shardmap.name in
  if not (StrSet.mem name ctx.missing) then begin
    ctx.missing <- StrSet.add name ctx.missing;
    note_reason ctx Err.Shard_unavailable
  end

let reason_rank = function
  | Err.Shard_unavailable -> 0
  | Err.Deadline -> 1
  | Err.Fuel -> 2
  | Err.Memory -> 3
  | Err.Cancelled -> 4
  | Err.Limit -> 5

let final_verdict ctx =
  match
    List.sort (fun a b -> compare (reason_rank a) (reason_rank b)) ctx.reasons
  with
  | [] -> Err.Complete
  | r :: _ -> Err.Partial r

let deadline_expired ctx =
  match ctx.abs_deadline with
  | Some d -> Unix.gettimeofday () > d
  | None -> false

let cap ctx s =
  Path_set.filter (fun p -> Path.length p <= ctx.eff_max_length) s

(* The router's stand-in for the engine's live-path budget: materialised
   intermediates above [max_paths] are truncated to a sound subset. *)
let guard_mem ctx s =
  match ctx.options.Wire.max_paths with
  | Some m when Path_set.cardinal s > m ->
    note_reason ctx Err.Memory;
    Path_set.truncate m s
  | _ -> s

let dispatch_deadline ctx =
  match ctx.abs_deadline with
  | Some d -> d
  | None -> Unix.gettimeofday () +. (ctx.rt.config.shard_timeout_ms /. 1000.0)

(* Options forwarded with every atom dispatch: the shard only ever
   evaluates one selector (single-edge paths), so strategy / limit /
   simple / max_length are the router's business, while the governed
   budgets and the staleness bounds ride through so each shard enforces
   them locally. *)
let atom_options ctx ~remaining_ms =
  {
    ctx.options with
    Wire.strategy = None;
    limit = None;
    max_length = Some 1;
    simple = false;
    deadline_ms = remaining_ms;
    from_seq = None;
    epoch = None;
  }

let shard_verdict_of_result json =
  match
    Option.bind
      (Option.bind (Json.member "result" json) (Json.member "verdict"))
      Json.to_string_opt
  with
  | Some "complete" | None -> None
  | Some s ->
    let n = String.length s in
    let prefix = "partial:" in
    let pn = String.length prefix in
    if n > pn && String.sub s 0 pn = prefix then
      Err.reason_of_name (String.sub s pn (n - pn))
    else None

let edges_of_result json =
  match Option.bind (Json.member "result" json) (Json.member "paths") with
  | Some (Json.List paths) ->
    List.concat_map
      (fun p ->
        match Json.member "edges" p with
        | Some (Json.List [ e ]) -> (
          match
            ( Option.bind (Json.member "tail" e) Json.to_string_opt,
              Option.bind (Json.member "label" e) Json.to_string_opt,
              Option.bind (Json.member "head" e) Json.to_string_opt )
          with
          | Some a, Some b, Some c -> [ (a, b, c) ]
          | _ -> raise (Fatal (Wire.Internal, "malformed edge from shard")))
        | _ ->
          raise
            (Fatal
               ( Wire.Internal,
                 "unexpected non-single-edge path from a shard's selector \
                  dispatch" )))
      paths
  | _ -> raise (Fatal (Wire.Internal, "shard response carries no paths"))

let eval_atom ctx frontier atom =
  if ctx.eff_max_length < 1 then Path_set.empty
  else
    match
      narrow_atom ctx.rt.config.map ~frontier_cap:ctx.rt.config.frontier_cap
        frontier atom
    with
    | None -> Path_set.empty
    | Some (narrowed, targets) ->
      let text =
        match render_atom narrowed with
        | Some s -> s
        | None -> (
          (* Data-derived names defeated quoting; fall back to the original
             un-narrowed atom (parsed from user text, always renderable). *)
          match render_atom atom with
          | Some s -> s
          | None ->
            raise (Fatal (Wire.Internal, "unrenderable selector atom")))
      in
      let key = text ^ "@" ^ String.concat "," (List.map string_of_int targets) in
      (match Hashtbl.find_opt ctx.atom_cache key with
      | Some cached -> cached
      | None ->
        let abs_deadline = dispatch_deadline ctx in
        let remaining_ms =
          Option.map
            (fun d -> Float.max 1.0 ((d -. Unix.gettimeofday ()) *. 1000.0))
            ctx.abs_deadline
        in
        let mk_req () =
          {
            Wire.id = fresh_id ctx.rt;
            verb = Wire.Query;
            query = Some text;
            options = atom_options ctx ~remaining_ms;
          }
        in
        let outcomes = scatter ctx.rt targets mk_req ~abs_deadline in
        let edges = ref [] in
        let qerrs = ref [] in
        let answered = ref 0 in
        List.iter
          (fun (idx, outcome) ->
            match outcome with
            | D_ok json ->
              incr answered;
              (match shard_verdict_of_result json with
              | Some r -> note_reason ctx r
              | None -> ());
              edges := List.rev_append (edges_of_result json) !edges
            | D_wire (code, msg) when code = Wire.error_code_name Wire.Query_error
              ->
              if atom_has_label_complement atom then
                raise
                  (Fatal
                     ( Wire.Query_error,
                       Printf.sprintf
                         "shard %s: %s (a complemented label position cannot \
                          be answered soundly by a shard that does not know \
                          the name)"
                         (Shardmap.shard ctx.rt.config.map idx).Shardmap.name
                         msg ))
              else qerrs := (idx, msg) :: !qerrs
            | D_wire (code, msg) ->
              raise
                (Fatal
                   ( (if code = Wire.error_code_name Wire.Infeasible then
                        Wire.Infeasible
                      else Wire.Internal),
                     Printf.sprintf "shard %s: %s"
                       (Shardmap.shard ctx.rt.config.map idx).Shardmap.name msg
                   ))
            | D_unavailable -> note_missing ctx idx)
          outcomes;
        (* A name unknown on one shard while another matched it is just an
           empty contribution; unknown on {e every} shard that answered —
           and every shard answered — is the typo the single-server parser
           would have caught. *)
        (match (!qerrs, !answered) with
        | (_, msg) :: _, 0 when List.length !qerrs = List.length targets ->
          raise (Fatal (Wire.Query_error, msg))
        | _ -> ());
        let pset =
          Path_set.of_list
            (List.map
               (fun (a, b, c) -> Path.of_edge (Digraph.add ctx.scratch a b c))
               !edges)
        in
        Hashtbl.replace ctx.atom_cache key pset;
        pset)

(* Heads of the left operand's paths, as names, for the frontier handoff.
   [None] when the set contains ε (a path starting anywhere may follow). *)
let frontier_of ctx pset =
  let exception Eps in
  match
    Path_set.fold
      (fun p acc ->
        match Path.head p with
        | None -> raise Eps
        | Some v -> StrSet.add (Digraph.vertex_name ctx.scratch v) acc)
      pset StrSet.empty
  with
  | s -> Some (StrSet.elements s)
  | exception Eps -> None

(* Mirrors {!Mrpa_core.Expr.denote}: the length cap applies to {e every}
   selector / join / product result, and the star is the bounded closure.
   The incoming [frontier] only ever {e narrows dispatches} — every
   algebraic filter happens here, so narrowing can never change the
   result, only the bytes on the wire. *)
let rec eval ctx frontier rx =
  if deadline_expired ctx then begin
    note_reason ctx Err.Deadline;
    Path_set.empty
  end
  else
    match rx with
    | Rempty -> Path_set.empty
    | Reps -> Path_set.epsilon
    | Ratom atom -> eval_atom ctx frontier atom
    | Runion (a, b) ->
      guard_mem ctx
        (Path_set.union (eval ctx frontier a) (eval ctx frontier b))
    | Rjoin (a, b) ->
      let pa = eval ctx frontier a in
      if Path_set.is_empty pa then Path_set.empty
      else
        let fr = frontier_of ctx pa in
        let pb = eval ctx fr b in
        guard_mem ctx (cap ctx (Path_set.join pa pb))
    | Rproduct (a, b) ->
      let pa = eval ctx frontier a in
      if Path_set.is_empty pa then Path_set.empty
      else guard_mem ctx (cap ctx (Path_set.product pa (eval ctx None b)))
    | Rstar a ->
      (* The closure wanders: its inner paths may start anywhere, so the
         frontier does not pass through (the parent join still filters). *)
      let pa = eval ctx None a in
      guard_mem ctx
        (Path_set.star_bounded pa ~max_length:ctx.eff_max_length)

(* --- Verb handling ------------------------------------------------------- *)

let esc = Render.escape_string

let missing_json ctx =
  match StrSet.elements ctx.missing with
  | [] -> None
  | names -> Some ("[" ^ String.concat "," (List.map esc names) ^ "]")

let effective_max_length t (o : Wire.options) =
  match o.Wire.max_length with
  | Some m -> m
  | None -> min Engine.default_max_length t.config.limits.Wire.max_length_cap

let handle_query t (req : Wire.request) (o : Wire.options) =
  let started = Unix.gettimeofday () in
  let query_text = Option.value ~default:"" req.Wire.query in
  match parse_query query_text with
  | Error (m, pos) ->
    Wire.response_error ~id:req.Wire.id ~code:Wire.Query_error
      (Printf.sprintf "parse error at offset %d: %s" pos m)
  | Ok rx -> (
    let ctx =
      {
        rt = t;
        scratch = Digraph.create ();
        options = o;
        eff_max_length = effective_max_length t o;
        abs_deadline =
          Option.map (fun ms -> started +. (ms /. 1000.0)) o.Wire.deadline_ms;
        reasons = [];
        missing = StrSet.empty;
        atom_cache = Hashtbl.create 8;
      }
    in
    match eval ctx None rx with
    | exception Fatal (code, msg) ->
      Wire.response_error ~id:req.Wire.id ~code msg
    | pset ->
      let pset = if o.Wire.simple then Path_set.restrict_simple pset else pset in
      let pset =
        match o.Wire.limit with
        | Some k when Path_set.cardinal pset > k ->
          note_reason ctx Err.Limit;
          Path_set.truncate k pset
        | _ -> pset
      in
      let verdict = final_verdict ctx in
      (match verdict with
      | Err.Complete -> ()
      | Err.Partial _ -> c_incr t "router.partial");
      if not (StrSet.is_empty ctx.missing) then c_incr t "router.degraded";
      let missing_frag =
        match missing_json ctx with
        | None -> ""
        | Some j -> ",\"missing_shards\":" ^ j
      in
      let elapsed_ms = (Unix.gettimeofday () -. started) *. 1000.0 in
      (match req.Wire.verb with
      | Wire.Count ->
        c_incr t "router.counts";
        Wire.response_ok ~id:req.Wire.id
          ([
             ("count", string_of_int (Path_set.cardinal pset));
             ("verdict", esc (Err.verdict_name verdict));
           ]
          @
          match missing_json ctx with
          | None -> []
          | Some j -> [ ("missing_shards", j) ])
      | _ ->
        c_incr t "router.queries";
        let result =
          Printf.sprintf
            {|{"paths":%s,"count":%d,"elapsed_ms":%.3f,"strategy":"scatter","verdict":%s%s}|}
            (Render.paths_json ctx.scratch pset)
            (Path_set.cardinal pset) elapsed_ms
            (esc (Err.verdict_name verdict))
            missing_frag
        in
        Wire.response_ok ~id:req.Wire.id [ ("result", result) ]))

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> esc k ^ ":" ^ v) fields) ^ "}"

(* Gather a per-shard payload member ("stats" / "health") from every
   shard; unreachable shards render as null. *)
let gather_member t ~verb ~member ~abs_deadline =
  let mk_req () =
    { Wire.id = fresh_id t; verb; query = None; options = Wire.default_options }
  in
  let outcomes = scatter t (all_shards t.config.map) mk_req ~abs_deadline in
  List.map
    (fun (idx, outcome) ->
      let name = (Shardmap.shard t.config.map idx).Shardmap.name in
      let value =
        match outcome with
        | D_ok json -> (
          match Json.member member json with
          | Some j -> Json.to_string j
          | None -> "null")
        | D_wire _ | D_unavailable -> "null"
      in
      (idx, name, value))
    outcomes

let handle_stats t (req : Wire.request) =
  let abs_deadline =
    Unix.gettimeofday () +. (t.config.shard_timeout_ms /. 1000.0)
  in
  let shards = gather_member t ~verb:Wire.Stats ~member:"stats" ~abs_deadline in
  let router_fields =
    with_lock t.lock (fun () ->
        [
          ("router.shards", string_of_int (Shardmap.n_shards t.config.map));
          ("router.requests", string_of_int (c_get t "router.requests"));
          ("router.queries", string_of_int (c_get t "router.queries"));
          ("router.counts", string_of_int (c_get t "router.counts"));
          ("router.dispatches", string_of_int (c_get t "router.dispatches"));
          ("router.partial", string_of_int (c_get t "router.partial"));
          ("router.degraded", string_of_int (c_get t "router.degraded"));
          ( "router.breaker_opens",
            string_of_int (c_get t "router.breaker_opens") );
          ( "router.breaker_fastfails",
            string_of_int (c_get t "router.breaker_fastfails") );
          ( "router.uptime_ms",
            Printf.sprintf "%.0f"
              ((Unix.gettimeofday () -. t.started) *. 1000.0) );
        ])
  in
  Wire.response_ok ~id:req.Wire.id
    [
      ("stats", json_obj router_fields);
      ( "shards",
        json_obj (List.map (fun (_, name, v) -> (name, v)) shards) );
    ]

let handle_health t (req : Wire.request) =
  let abs_deadline =
    Unix.gettimeofday () +. (t.config.probe_timeout_ms /. 1000.0)
  in
  let shards =
    gather_member t ~verb:Wire.Health ~member:"health" ~abs_deadline
  in
  let shard_objs =
    List.map
      (fun (idx, name, health) ->
        let b, disp =
          with_lock t.lock (fun () ->
              (t.breakers.(idx), t.breakers.(idx).dispatches))
        in
        let state =
          match b.bstate with
          | B_closed -> "closed"
          | B_open since ->
            if
              Unix.gettimeofday () -. since
              >= t.config.breaker_cooldown_ms /. 1000.0
            then "half_open"
            else "open"
        in
        json_obj
          [
            ("name", esc name);
            ("breaker", esc state);
            ("failures", string_of_int b.failures);
            ("dispatches", string_of_int disp);
            ("reachable", if health = "null" then "false" else "true");
            ("health", health);
          ])
      shards
  in
  Wire.response_ok ~id:req.Wire.id
    [
      ( "health",
        json_obj
          [
            ("role", esc "router");
            ("shards", "[" ^ String.concat "," shard_objs ^ "]");
          ] );
    ]

(* Lint has no shard-placement question — any shard's static analyzer can
   answer over its own name tables, and the first reachable one does. *)
let handle_lint t (req : Wire.request) =
  let abs_deadline =
    Unix.gettimeofday () +. (t.config.shard_timeout_ms /. 1000.0)
  in
  let rec go = function
    | [] ->
      Wire.response_error ~id:req.Wire.id ~code:Wire.Internal
        "no shard reachable to answer lint"
    | idx :: rest -> (
      let forwarded =
        { req with Wire.id = fresh_id t; options = req.Wire.options }
      in
      match dispatch t idx forwarded ~abs_deadline with
      | D_ok json -> (
        (* Relay the shard's payload under the caller's id. *)
        match json with
        | Json.Obj fields ->
          Json.to_string
            (Json.Obj
               (List.map
                  (fun (k, v) -> if k = "id" then (k, req.Wire.id) else (k, v))
                  fields))
        | _ -> Json.to_string json)
      | D_wire (code, msg) ->
        let code =
          if code = Wire.error_code_name Wire.Query_error then Wire.Query_error
          else Wire.Internal
        in
        Wire.response_error ~id:req.Wire.id ~code msg
      | D_unavailable -> go rest)
  in
  go (all_shards t.config.map)

let handle_line ?(remote = false) t line =
  match Wire.decode_request line with
  | Error msg -> Wire.response_error ~id:Json.Null ~code:Wire.Bad_request msg
  | Ok req -> (
    c_incr t "router.requests";
    let o = Wire.clamp t.config.limits req.Wire.options in
    match req.Wire.verb with
    | Wire.Ping -> Wire.response_ok ~id:req.Wire.id [ ("pong", "true") ]
    | Wire.Query | Wire.Count -> handle_query t req o
    | Wire.Stats -> handle_stats t req
    | Wire.Health -> handle_health t req
    | Wire.Lint -> handle_lint t req
    | Wire.Shutdown ->
      if remote && not t.config.allow_remote_shutdown then
        Wire.response_error ~id:req.Wire.id ~code:Wire.Unauthorized
          "shutdown over TCP requires --allow-remote-shutdown"
      else begin
        stop t;
        Wire.response_ok ~id:req.Wire.id [ ("stopping", "true") ]
      end
    | Wire.Sub | Wire.Views _ ->
      Wire.response_error ~id:req.Wire.id ~code:Wire.Bad_request
        (Printf.sprintf
           "verb %S is not supported by the router; address a shard directly"
           (Wire.verb_name req.Wire.verb)))

(* --- Sessions and the accept loop ---------------------------------------- *)

let poll_interval_s = 0.1

let send_line fd line =
  try Net.write_all fd (line ^ "\n")
  with Unix.Unix_error _ | Failure _ -> ()

let session t fd ~remote =
  let chunk = Bytes.create 4096 in
  let carry = ref "" in
  let rec read_line () =
    match String.index_opt !carry '\n' with
    | Some i ->
      let line = String.sub !carry 0 i in
      carry := String.sub !carry (i + 1) (String.length !carry - i - 1);
      `Line line
    | None ->
      if Atomic.get t.stopping then `Stop
      else if String.length !carry > t.config.max_request_bytes then `Too_large
      else (
        match Unix.select [ fd ] [] [] poll_interval_s with
        | [], _, _ -> read_line ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> `Eof
          | n ->
            carry := !carry ^ Bytes.sub_string chunk 0 n;
            read_line ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
          | exception Unix.Unix_error _ -> `Eof)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
        | exception Unix.Unix_error _ -> `Eof)
  in
  let rec loop () =
    match read_line () with
    | `Eof | `Stop -> ()
    | `Too_large ->
      send_line fd
        (Wire.response_error ~id:Json.Null ~code:Wire.Request_too_large
           (Printf.sprintf "request line exceeds %d bytes"
              t.config.max_request_bytes))
    | `Line line ->
      if String.trim line = "" then loop ()
      else begin
        send_line fd (handle_line ~remote t line);
        if not (Atomic.get t.stopping) then loop ()
      end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      with_lock t.sessions_lock (fun () ->
          t.live_sessions <- t.live_sessions - 1))
    (fun () -> try loop () with _ -> ())

let bind_endpoint = function
  | Wire.Unix_socket path ->
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Wire.Tcp (host, port) ->
    let addr = Net.resolve host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let serve t =
  Net.ignore_sigpipe ();
  let listen_fd = bind_endpoint t.config.endpoint in
  let actual =
    match t.config.endpoint with
    | Wire.Tcp (host, 0) -> (
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, port) -> Wire.Tcp (host, port)
      | _ -> t.config.endpoint)
    | e -> e
  in
  Atomic.set t.bound (Some actual);
  let remote = match t.config.endpoint with Wire.Tcp _ -> true | _ -> false in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.stopping true;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (* Give in-flight sessions a moment to flush their last response. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec wait () =
        let left = with_lock t.sessions_lock (fun () -> t.live_sessions) in
        if left > 0 && Unix.gettimeofday () < deadline then begin
          Thread.yield ();
          Unix.sleepf 0.02;
          wait ()
        end
      in
      wait ();
      match t.config.endpoint with
      | Wire.Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Wire.Tcp _ -> ())
    (fun () ->
      while not (Atomic.get t.stopping) do
        match Unix.select [ listen_fd ] [] [] poll_interval_s with
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept listen_fd with
          | fd, _ ->
            Net.set_nodelay fd;
            with_lock t.sessions_lock (fun () ->
                t.live_sessions <- t.live_sessions + 1);
            ignore (Thread.create (fun () -> session t fd ~remote) ())
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
