(** Scatter-gather router: one [mrpa.wire/1] front door for a sharded
    fleet of [mrpa serve] processes.

    The router owns no graph. It splits each [query] / [count] into
    single-selector {e atom} dispatches, scatters every atom to the shards
    that can own matching edges (placement is by hash of the tail vertex —
    {!Shardmap.owner}), and re-assembles the gathered edges with the
    algebra itself ({!Mrpa_core.Path_set.join} / [product] /
    [star_bounded]), so the paper's [./∘] adjacency condition {e is} the
    shard-boundary handoff: at every join the frontier of head vertices
    from the left operand narrows both the dispatch targets and the
    selector text of the right operand (DESIGN §11).

    Robustness is the point:

    - {b per-shard deadlines} are carved from the request's overall
      budget, additionally capped by [shard_timeout_ms], so one hung
      shard cannot spend another shard's time;
    - {b per-shard failover}: each shard names its PR 8 primary/replica
      endpoint list; a dispatch rotates across it, treating [stale]
      answers like dead endpoints (a fresher replica may be next);
    - {b a per-shard circuit breaker}: [breaker_failures] consecutive
      fully-failed dispatches (transport or all-stale) open the breaker;
      while open, dispatches fail fast with no I/O; after
      [breaker_cooldown_ms] the next dispatch half-opens it with a
      [health] probe and closes it again on success;
    - {b sound degraded answers}: a shard that cannot be reached
      contributes nothing — the response verdict becomes
      [Partial Shard_unavailable] (exit code 3 at the CLI) and the
      response names every missing shard in [missing_shards]. The
      answer is always a subset of the true denotation, never a wrong or
      silently-hole-ridden one.

    A deterministic fault plane ({!Fault}) can kill, hang or slow a shard
    starting at the N-th dispatch, driving the multi-process fault matrix
    in the tests without real process churn. *)

type config = {
  endpoint : Wire.endpoint;  (** where the router itself listens. *)
  map : Shardmap.t;
  limits : Wire.limits;
      (** clamped onto every request exactly like a single server's. *)
  allow_remote_shutdown : bool;  (** gate [shutdown] over TCP. *)
  shard_timeout_ms : float;
      (** transport guard per shard dispatch: connect + response within
          this window even when the request carries no deadline. *)
  probe_timeout_ms : float;  (** budget of the half-open [health] probe. *)
  breaker_failures : int;
      (** consecutive failed dispatches that open a shard's breaker. *)
  breaker_cooldown_ms : float;
      (** how long an open breaker fails fast before half-opening. *)
  frontier_cap : int;
      (** widest frontier inlined into a narrowed selector's source
          position; wider frontiers still narrow the dispatch {e targets}
          but leave the selector text unrewritten. *)
  max_request_bytes : int;  (** request-line cap, as on the server. *)
}

val default_shard_timeout_ms : float  (** 2000. *)

val default_probe_timeout_ms : float  (** 250. *)

val default_breaker_failures : int  (** 3 *)

val default_breaker_cooldown_ms : float  (** 1000. *)

val default_frontier_cap : int  (** 128 *)

val default_config : map:Shardmap.t -> Wire.endpoint -> config
(** All defaults, no remote shutdown, {!Wire.default_limits}. *)

type t

val create : config -> t

val serve : t -> unit
(** Bind, accept, serve until {!stop} (or a [shutdown] request). Blocks;
    run it in its own thread. Idempotent socket-file cleanup on exit, as
    {!Server.serve}. *)

val stop : t -> unit
(** Ask {!serve} to drain and return. Safe from any thread/signal. *)

val bound_endpoint : t -> Wire.endpoint option
(** The endpoint actually bound (differs from [config.endpoint] when a
    TCP port of 0 asked the kernel to pick); [None] until {!serve}. *)

val handle_line : ?remote:bool -> t -> string -> string
(** Process one request line and return the response line (no trailing
    newline) — the full router pipeline without sockets. [remote]
    (default [false]) marks the request as arriving over TCP for the
    [shutdown] gate. This is {!serve}'s per-request core, exposed so the
    deterministic fault harness can drive the router in-process. *)

val breaker_state : t -> string -> string option
(** ["closed"], ["open"] or ["half_open"] for the named shard ([None] for
    an unknown name). [half_open] is an open breaker whose cooldown has
    expired: the next dispatch will probe. *)

(** {1 Deterministic fault plane}

    Modeled on {!Replication.Fault} (PR 8) and the journal's I/O fault
    plane (PR 5): arm at most one fault per shard; it fires from the
    [at]-th dispatch to that shard (1-based, counted across all requests)
    onward, until {!Fault.disarm}. *)

module Fault : sig
  type kind =
    | Kill  (** every endpoint refuses instantly: a dead process. *)
    | Hang
        (** the shard accepts but never answers: the dispatch burns its
            whole per-shard deadline, then fails. *)
    | Slow of float
        (** delay each dispatch by this many milliseconds, then answer
            normally: a struggling-but-alive shard. *)

  val arm : t -> shard:string -> kind -> at:int -> unit
  (** Raises [Invalid_argument] on an unknown shard name or [at < 1]. *)

  val disarm : t -> shard:string -> unit

  val dispatches : t -> shard:string -> int
  (** Dispatches counted so far against the shard (armed or not). *)
end
