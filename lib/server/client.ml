type conn = {
  fd : Unix.file_descr;
  mutable carry : string;
  mutable closed : bool;
}

let connect endpoint =
  let open_fd () =
    match endpoint with
    | Wire.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    | Wire.Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
            failwith (Printf.sprintf "cannot resolve host %S" host)
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found ->
            failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  in
  match open_fd () with
  | fd -> Ok { fd; carry = ""; closed = false }
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "cannot connect to %s: %s"
         (Wire.endpoint_to_string endpoint)
         (Unix.error_message err))
  | exception Failure msg -> Error msg

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done

let read_line conn =
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match String.index_opt conn.carry '\n' with
    | Some i ->
      let line = String.sub conn.carry 0 i in
      conn.carry <-
        String.sub conn.carry (i + 1) (String.length conn.carry - i - 1);
      Ok line
    | None -> (
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed by server"
      | n ->
        conn.carry <- conn.carry ^ Bytes.sub_string chunk 0 n;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let request_raw conn line =
  if conn.closed then Error "connection is closed"
  else
    match write_all conn.fd (line ^ "\n") with
    | () -> read_line conn
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message err))

let request conn req =
  match request_raw conn (Wire.encode_request req) with
  | Error _ as e -> e
  | Ok line -> (
    match Json.parse line with
    | Ok json -> Ok json
    | Error msg -> Error (Printf.sprintf "bad response: %s" msg))

let close conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end
