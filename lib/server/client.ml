type conn = {
  fd : Unix.file_descr;
  mutable carry : string;
  mutable closed : bool;
}

(* Connect failures worth retrying: the server is not there *yet* (refused,
   socket file not created, listen backlog reset) or the network hiccuped.
   Anything else — bad address, permission — will not get better by
   waiting. *)
let retryable_connect_error = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.ETIMEDOUT
  | Unix.EAGAIN ->
    true
  | _ -> false

let connect_err endpoint =
  match Net.connect_fd endpoint with
  | fd -> Ok { fd; carry = ""; closed = false }
  | exception Unix.Unix_error (err, _, _) ->
    Error
      ( Some err,
        Printf.sprintf "cannot connect to %s: %s"
          (Wire.endpoint_to_string endpoint)
          (Unix.error_message err) )
  | exception Failure msg -> Error (None, msg)

let connect endpoint =
  Result.map_error (fun (_, msg) -> msg) (connect_err endpoint)

let read_line conn =
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match String.index_opt conn.carry '\n' with
    | Some i ->
      let line = String.sub conn.carry 0 i in
      conn.carry <-
        String.sub conn.carry (i + 1) (String.length conn.carry - i - 1);
      Ok line
    | None -> (
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed by server"
      | n ->
        conn.carry <- conn.carry ^ Bytes.sub_string chunk 0 n;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

(* --- Pipelined mode ------------------------------------------------------ *)

(* [send]/[receive] split the write and the read so a caller can keep
   several tagged requests in flight on one connection; the server may
   answer them in any order, and the request [id] is the correlation key.
   The synchronous [request*] API below is send-then-receive. *)

let send_raw conn line =
  if conn.closed then Error "connection is closed"
  else
    match Net.write_all conn.fd (line ^ "\n") with
    | () -> Ok ()
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message err))

let send conn req = send_raw conn (Wire.encode_request req)

let receive_raw conn =
  if conn.closed then Error "connection is closed" else read_line conn

let receive conn =
  match receive_raw conn with
  | Error _ as e -> e
  | Ok line -> (
    match Json.parse line with
    | Ok json -> Ok json
    | Error msg -> Error (Printf.sprintf "bad response: %s" msg))

let response_id json =
  Option.value ~default:Json.Null (Json.member "id" json)

let request_raw conn line =
  match send_raw conn line with
  | Error _ as e -> e
  | Ok () -> read_line conn

let request conn req =
  match request_raw conn (Wire.encode_request req) with
  | Error _ as e -> e
  | Ok line -> (
    match Json.parse line with
    | Ok json -> Ok json
    | Error msg -> Error (Printf.sprintf "bad response: %s" msg))

let close conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* --- Retry with backoff -------------------------------------------------- *)

type retry_policy = { retries : int; backoff_ms : float }

let no_retry = { retries = 0; backoff_ms = 100.0 }

(* Full jitter over an exponentially growing window, capped at 10 s:
   delay in [d/2, d] where d = backoff_ms * 2^attempt. Half the window is
   deterministic so even rand=0 spreads attempts out; the jittered half
   desynchronises a thundering herd of clients retrying the same
   overloaded server. *)
let backoff_delay_ms ?(rand = Random.float) policy ~attempt =
  let d = min 10_000.0 (policy.backoff_ms *. (2.0 ** float_of_int attempt)) in
  (d /. 2.0) +. rand (d /. 2.0)

let response_error_code json =
  match Json.member "ok" json with
  | Some (Json.Bool false) -> (
    match Option.bind (Json.member "error" json) (Json.member "code") with
    | Some (Json.String code) -> Some code
    | _ -> None)
  | _ -> None

(* Responses that are worth another attempt (possibly elsewhere): the
   server is there but shedding load, or a replica could not satisfy the
   requested staleness bound — another endpoint may be fresher. *)
let retryable_response json =
  match response_error_code json with
  | Some code ->
    code = Wire.error_code_name Wire.Overloaded
    || code = Wire.error_code_name Wire.Stale
  | None -> false

(* A verb whose re-execution cannot change server state: safe to retry
   after a {e mid-stream} failure, where we cannot know whether the
   server acted on the request before the connection died. [shutdown] is
   the counter-example; [sub] never completes with one response line. *)
let idempotent_verb = function
  | Wire.Query | Wire.Count | Wire.Lint | Wire.Stats | Wire.Ping
  | Wire.Health ->
    true
  | Wire.Shutdown | Wire.Sub -> false
  (* View reads are pure; register/drop change the registry, so a blind
     replay could mask (or double-report) the first attempt's outcome. *)
  | Wire.Views { Wire.action = V_list | V_edges | V_counts | V_analytics; _ }
    ->
    true
  | Wire.Views { Wire.action = V_register | V_drop; _ } -> false

(* One fresh connection per attempt: after an [overloaded] answer, a
   refused connect or a mid-stream disconnect there is nothing worth
   keeping on the old socket, and a clean slate means the retry loop needs
   no per-transport state machine. Returns the raw response line so
   callers (mrpa call, the cram tests) can echo the server's bytes
   verbatim.

   With several endpoints this is the failover client: attempts rotate
   round-robin across the list, and the backoff sleep is paid only after a
   {e full} cycle has failed — trying the standby must be immediate, while
   hammering a dead fleet must still back off. *)
let request_failover ?(policy = no_retry) ?(sleep = Unix.sleepf) ?rand
    endpoints req =
  let eps = Array.of_list endpoints in
  let n = Array.length eps in
  if n = 0 then invalid_arg "Client.request_failover: no endpoints";
  (* At least one full cycle through the list: with [retries = 0] and a
     stale (or dead) first endpoint, the whole point of passing several
     endpoints is that a fresher replica further down still gets its
     chance before we give up. Backoff stays charged per completed cycle,
     so the widened floor never adds a sleep. *)
  let attempts = max (policy.retries + 1) n in
  let rec go attempt =
    let retry_or final =
      if attempt + 1 < attempts then begin
        (* Exponent = completed cycles through the endpoint list. *)
        if (attempt + 1) mod n = 0 then
          sleep (backoff_delay_ms ?rand policy ~attempt:(attempt / n) /. 1000.0);
        go (attempt + 1)
      end
      else final
    in
    match connect_err eps.(attempt mod n) with
    | Error (Some err, msg) when retryable_connect_error err ->
      retry_or (Error msg)
    | Error (_, msg) ->
      (* Not transient on {e this} endpoint (bad address, permission) —
         but with alternatives available, rotate instead of giving up. *)
      if n > 1 then retry_or (Error msg) else Error msg
    | Ok conn -> (
      let result = request_raw conn (Wire.encode_request req) in
      close conn;
      match result with
      | Error _ as e ->
        (* Mid-stream failure: the connection died after connect (EOF,
           ECONNRESET, EPIPE). Retry only what is safe to re-execute. *)
        if idempotent_verb req.Wire.verb then retry_or e else e
      | Ok line -> (
        match Json.parse line with
        | Error msg -> Error (Printf.sprintf "bad response: %s" msg)
        | Ok json when retryable_response json ->
          (* An [overloaded] / [stale] response is a valid answer — only
             replace it with a better one; when attempts run out, hand the
             last one to the caller as [Ok] so the wire taxonomy is
             preserved. *)
          retry_or (Ok line)
        | Ok _ -> Ok line))
  in
  go 0

let request_retry ?policy ?sleep ?rand endpoint req =
  request_failover ?policy ?sleep ?rand [ endpoint ] req
