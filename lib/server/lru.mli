(** Bounded, mutex-guarded LRU cache.

    The server's compiled-plan and result caches both need the same
    discipline: a polymorphic-key hash map with least-recently-used
    eviction, safe to touch from every session thread and worker domain at
    once. One [Mutex.t] guards each cache — operations are O(1) hash
    lookups plus constant-time intrusive-list splices, so the critical
    section is a few dozen nanoseconds and never worth sharding.

    A capacity of zero (or less) disables the cache entirely: [find]
    always misses, [add] is a no-op. This is how `--plan-cache 0` /
    `--result-cache 0` turn the caches off without a second code path. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity <= 0] means disabled (see above). Keys are compared with
    structural equality/hashing, so keys must not contain functional
    values. *)

val capacity : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit promotes the entry to most-recently-used and bumps the
    hit counter, a miss bumps the miss counter. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; the entry becomes most-recently-used. When the
    cache is over capacity the least-recently-used entry is evicted. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry. Hit/miss/eviction counters are preserved — clearing
    is invalidation, not statistical amnesia. *)

val length : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
