(** The [mrpa.wire/1] protocol: newline-delimited JSON over a stream socket.

    Framing is one JSON document per [\n]-terminated line, in both
    directions. A request names a {!verb} and, for [query] / [count], the
    query text plus per-request {!options}; a response echoes the request's
    [id] verbatim and is either [{"ok":true, ...}] with verb-specific
    payload fields or [{"ok":false, "error":{"code", "message"}}].

    Requests:
    {v
{"mrpa":"mrpa.wire/1", "id":1, "verb":"query",
 "query":"[i,alpha,_] . [_,beta,_]*",
 "options":{"strategy":"bfs", "limit":100, "max_length":6,
            "simple":false, "deadline_ms":250, "fuel":100000,
            "max_paths":10000}}
    v}

    Every option is optional. The server {e clamps} each one against its
    own {!limits} ({!clamp}) — a client may always ask for less than the
    server allows, never more — and lowers the governed triple
    (deadline/fuel/max_paths) into a fresh {!Mrpa_engine.Budget.t}
    ({!budget_of_options}), so a served query degrades to a sound partial
    result exactly like a local governed run, with the same
    {!Mrpa_engine.Err.verdict} taxonomy in the response.

    This module is pure protocol — no sockets, no threads — so it is
    testable without I/O and usable by both {!Server} and {!Client}. *)

open Mrpa_engine

val version : string
(** ["mrpa.wire/1"]. Carried as the ["mrpa"] field of every request and
    response; a request with a missing or different version is rejected. *)

(** {1 Endpoints} *)

type endpoint =
  | Unix_socket of string  (** path of a Unix-domain socket. *)
  | Tcp of string * int  (** host, port. *)

val endpoint_to_string : endpoint -> string

val endpoint_of_string : string -> (endpoint, string) result
(** Inverse of {!endpoint_to_string}: accepts [unix:PATH], [tcp:HOST:PORT]
    and the bare [HOST:PORT] shorthand. The grammar behind [--follow] and
    [--endpoints]. *)

(** {1 Requests} *)

(** One member of the [views] verb family. *)
type view_action =
  | V_register
      (** add a named view: a label word (["word"]) backed by incremental
          rank-1 maintenance, or a regular path expression (["query"])
          kept by dirty-marking + bounded re-projection. *)
  | V_drop
  | V_list  (** every view with its maintenance/staleness accounting. *)
  | V_edges  (** the view's derived edges, as vertex-name pairs. *)
  | V_counts  (** like [edges], with per-pair path counts. *)
  | V_analytics
      (** run a single-relational algorithm over the view's derived graph:
          ["degree"], ["pagerank"], ["components"] or ["communities"]. *)

val view_action_name : view_action -> string
val view_action_of_name : string -> view_action option

type view_req = {
  action : view_action;
  view_name : string option;  (** required except for [list]. *)
  word : string list option;
      (** [register]: label names; the wire accepts a JSON array or the
          ["a.b.c"] shorthand string. *)
  view_query : string option;  (** [register]: the expression form. *)
  measure : string option;  (** [analytics]; defaults to ["degree"]. *)
  top : int option;  (** [analytics]: ranking size; defaults to 10. *)
}

type verb =
  | Query  (** run a regular path query; respond with the result set. *)
  | Count  (** governed counting; respond with the number and verdict. *)
  | Lint
      (** statically analyse the query — diagnostics plus predicted
          cost/cardinality — without evaluating it; answered inline by the
          session thread, never occupying a worker. *)
  | Stats  (** server-wide metrics snapshot. *)
  | Ping  (** liveness probe. *)
  | Shutdown  (** ask the server to drain and exit. *)
  | Health
      (** replication health probe: role, last-applied sequence number,
          lag behind the primary, epoch, connectivity. Answered inline. *)
  | Sub
      (** subscribe to the primary's journal stream. The response's [sub]
          payload describes the handoff ([start_seq]/[last_seq]/[epoch]/
          [reset]); after it, the connection becomes a one-way stream of
          framed journal records and ["#hb SEQ"] heartbeat comments.
          Rejected with [bad_request] on non-primary servers. *)
  | Views of view_req
      (** the materialized-view family. On the wire: [verb = "views"] plus
          a ["view"] object carrying the {!view_req} fields; [register]
          reuses the request's [options] for the expression form's
          [max_length] (clamped like any query) and reads honour the
          bounded-staleness options. *)

val verb_name : verb -> string

val verb_of_name : string -> verb option
(** Payload-free verbs only: ["views"] maps to [None] here because a
    {!Views} request cannot exist without its [view] object —
    {!decode_request} handles it directly. *)

type options = {
  strategy : Plan.strategy option;  (** force an evaluation strategy. *)
  limit : int option;  (** stop after this many distinct paths. *)
  max_length : int option;  (** star-unrolling bound. *)
  simple : bool;  (** restrict to simple paths. *)
  deadline_ms : float option;  (** wall-clock budget, from dequeue. *)
  fuel : int option;  (** work-unit budget. *)
  max_paths : int option;  (** live/banked path budget. *)
  min_seq : int option;
      (** bounded staleness: require the serving replica to have applied
          at least this journal sequence number (read-your-writes). *)
  max_staleness_ms : float option;
      (** bounded staleness: require the serving replica to have heard
          from its primary within this window. *)
  from_seq : int option;  (** [sub] only: first sequence number wanted. *)
  epoch : int option;
      (** [sub] only: the primary epoch the subscriber last followed; a
          mismatch forces a full reset handoff. *)
}

val default_options : options
(** Everything unset; [simple = false]. *)

type request = {
  id : Json.t;
      (** echoed verbatim in the response; {!Json.Null} when absent. *)
  verb : verb;
  query : string option;  (** required by [query], [count] and [lint]. *)
  options : options;
}

val decode_request : string -> (request, string) result
(** Parse one request line. [Error] is a human-readable reason (bad JSON,
    wrong version, unknown verb, missing query, malformed option). *)

val encode_request : request -> string
(** The single-line JSON for a request (no trailing newline). Used by
    {!Client} and tests; [decode_request (encode_request r)] is [Ok r]
    modulo unset-option normalisation. *)

(** {1 Server-side limits} *)

type limits = {
  max_deadline_ms : float option;
      (** ceiling on (and default for) a request's deadline. *)
  max_fuel : int option;
  max_live_paths : int option;
  max_limit : int option;
      (** ceiling on (and default for) the number of returned paths. *)
  max_length_cap : int;  (** ceiling on the star-unrolling bound. *)
  min_staleness_ms : float option;
      (** floor on a requested [max_staleness_ms]: the server will not
          promise reads fresher than this. Unlike the ceilings above it
          only applies when the client asked — an unset request stays
          unbounded. *)
}

val default_limits : limits
(** No governed ceilings; [max_length_cap = 16]. *)

val clamp : limits -> options -> options
(** Effective options: each requested value is capped by the corresponding
    server limit, and a limit with no requested value becomes the value —
    the server's ceilings always apply, whether or not the client asked. *)

val budget_of_options : options -> Budget.t
(** A fresh single-use budget from the (clamped) governed options. Always
    cancellable, even when every bound is unset, so server shutdown can
    abort the run cooperatively. *)

(** {1 Responses} *)

type error_code =
  | Bad_request  (** unparseable or malformed request line. *)
  | Query_error  (** the query failed to parse / name resolution failed. *)
  | Overloaded  (** the job queue is full; retry later. *)
  | Shutting_down  (** the server is draining. *)
  | Internal  (** a bug: unexpected exception while serving. *)
  | Request_too_large
      (** the request line exceeded the server's byte cap; the connection
          is closed after this response (framing cannot be trusted). *)
  | Idle_timeout
      (** no complete request line arrived within the idle deadline; sent
          best-effort, then the connection is closed. *)
  | Infeasible
      (** static admission control: the query's predicted cost exceeds the
          server's [--max-predicted-cost] ceiling, so it was rejected
          before ever reaching a worker. *)
  | Unauthorized
      (** the verb is not allowed on this transport: [shutdown] over TCP
          when the server was started without [--allow-remote-shutdown]. *)
  | Stale
      (** a bounded-staleness read ([min_seq] / [max_staleness_ms]) could
          not be satisfied within the server's short catch-up wait; retry
          here later or fail over to another endpoint. *)
  | Unknown_view
      (** a [views] read or drop named a view that is not registered. *)

val error_code_name : error_code -> string

val response_ok : id:Json.t -> (string * string) list -> string
(** [response_ok ~id fields] is one response line (no trailing newline):
    the protocol envelope [{"mrpa", "id", "ok":true}] extended with the
    given [(key, raw_json_value)] payload fields — raw so an already
    rendered {!Mrpa_engine.Render.result_json} document can be spliced in
    without reparsing. *)

val response_error : id:Json.t -> code:error_code -> string -> string
(** One error-response line: [ok:false] and [{"code", "message"}]. *)
