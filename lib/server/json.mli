(** Minimal JSON values and a strict RFC 8259 parser.

    The engine side of the codebase only ever {e writes} JSON
    ({!Mrpa_engine.Render}, {!Mrpa_engine.Metrics}), so it hand-rolls
    strings. The wire protocol also has to {e read} requests, which is what
    this module adds — a small recursive-descent parser over a complete
    input string (one request per line; the framing layer splits lines
    before parsing). No streaming, no tolerance extensions: trailing
    garbage, unquoted keys, comments and lone surrogates are errors, which
    keeps "what the server accepts" equal to "what the spec says". *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in source order; duplicate keys kept. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document. [Error] carries a message with the
    0-based byte offset of the failure. *)

val to_string : t -> string
(** Compact (single-line) rendering; strings escaped per RFC 8259.
    [Number]s that are integral print without a decimal point. *)

(** {1 Accessors}

    Total projections used by the request decoder: each returns [None] on a
    type mismatch rather than raising. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] on missing key or non-object. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option

val to_int_opt : t -> int option
(** [Number]s with an integral value only. *)

val to_bool_opt : t -> bool option
