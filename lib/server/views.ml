open Mrpa_graph
open Mrpa_analysis
module Metrics = Mrpa_engine.Metrics

type form =
  | Word of string list
  | Expr of { query : string; max_length : int }

type word_state = {
  labels : string list;
  mutable dv : Derived_view.t option; (* None = some label not yet interned *)
}

type expr_state = {
  query : string;
  max_length : int;
  mutable proj : Simple_graph.t option;
  mutable as_of_seq : int; (* -1 = never projected / invalidated *)
  mutable partial : bool;
  mutable reprojections : int;
}

type body = Word_view of word_state | Expr_view of expr_state

type view = {
  v_name : string;
  body : body;
  mutable last_touch_ns : int64;
}

type t = {
  lock : Mutex.t;
  (* Registration order; dispatch iterates in this order, which together
     with Digraph's ordered observer fan-out makes multi-view maintenance
     deterministic. *)
  mutable views : view list;
  mutable source : Digraph.t option;
  (* The installed observer closures, retained so a rebind can detach them
     from the previous graph (physical equality). *)
  mutable obs_add : (Edge.t -> unit) option;
  mutable obs_rem : (Edge.t -> unit) option;
}

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let create () =
  {
    lock = Mutex.create ();
    views = [];
    source = None;
    obs_add = None;
    obs_rem = None;
  }

let touch v = v.last_touch_ns <- Metrics.now_ns ()

(* All label names resolved against [g], or [None] — never interns: a view
   registration must not mutate the live graph. *)
let resolve_word g names =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | n :: rest -> (
      match Digraph.find_label g n with
      | Some l -> go (l :: acc) rest
      | None -> None)
  in
  go [] names

let build_word g ws =
  match resolve_word g ws.labels with
  | Some word -> ws.dv <- Some (Derived_view.create ~subscribe:false g word)
  | None -> ws.dv <- None

(* One edge event, fanned out to every view under the registry lock. Runs
   on the role thread (the graph's sole mutator), after the edge is fully
   inserted/removed. An unbound word view binds itself on the insertion
   that makes its word resolvable; the build reads the graph's current
   state, which already includes that edge, so it is not applied twice. *)
let dispatch t sign e =
  with_lock t.lock (fun () ->
      List.iter
        (fun v ->
          match v.body with
          | Expr_view _ -> () (* staleness is judged by sequence number *)
          | Word_view ws -> (
            match ws.dv with
            | Some dv ->
              if sign > 0 then Derived_view.apply_added dv e
              else Derived_view.apply_removed dv e;
              touch v
            | None ->
              if sign > 0 then (
                match t.source with
                | Some g ->
                  build_word g ws;
                  if ws.dv <> None then touch v
                | None -> ())))
        t.views)

let detach t =
  match (t.source, t.obs_add, t.obs_rem) with
  | Some g, Some add, Some rem when not (Digraph.is_frozen g) ->
    (try Digraph.off_edge_added g add with Invalid_argument _ -> ());
    (try Digraph.off_edge_removed g rem with Invalid_argument _ -> ())
  | _ -> ()

let attach t g =
  detach t;
  t.source <- Some g;
  if Digraph.is_frozen g then begin
    t.obs_add <- None;
    t.obs_rem <- None
  end
  else begin
    let add e = dispatch t 1 e and rem e = dispatch t (-1) e in
    Digraph.on_edge_added g add;
    Digraph.on_edge_removed g rem;
    t.obs_add <- Some add;
    t.obs_rem <- Some rem
  end

let rebind t g =
  attach t g;
  with_lock t.lock (fun () ->
      List.iter
        (fun v ->
          (match v.body with
          | Word_view ws -> build_word g ws
          | Expr_view es ->
            (* Sequence numbers may restart after compaction, so a stored
               projection can look fresh while reflecting a dead epoch. *)
            es.proj <- None;
            es.as_of_seq <- -1;
            es.partial <- false);
          touch v)
        t.views)

let find t name = List.find_opt (fun v -> v.v_name = name) t.views

let register t ~name ~graph form =
  if name = "" then Error "view name must be non-empty"
  else
    with_lock t.lock (fun () ->
        if find t name <> None then
          Error (Printf.sprintf "view %S is already registered" name)
        else
          let body =
            match form with
            | Word [] -> Error "a word view needs at least one label"
            | Word labels when List.exists (fun l -> l = "") labels ->
              Error "word labels must be non-empty"
            | Word labels ->
              let ws = { labels; dv = None } in
              build_word graph ws;
              Ok (Word_view ws)
            | Expr { query; max_length } ->
              Ok
                (Expr_view
                   {
                     query;
                     max_length;
                     proj = None;
                     as_of_seq = -1;
                     partial = false;
                     reprojections = 0;
                   })
          in
          match body with
          | Error _ as e -> e
          | Ok body ->
            let v = { v_name = name; body; last_touch_ns = Metrics.now_ns () } in
            t.views <- t.views @ [ v ];
            Ok ())

let drop t name =
  with_lock t.lock (fun () ->
      let before = List.length t.views in
      t.views <- List.filter (fun v -> v.v_name <> name) t.views;
      List.length t.views < before)

let count t = with_lock t.lock (fun () -> List.length t.views)

type read_error = Unknown_view | Projection_failed of string

let empty_graph = Simple_graph.of_edge_list ~n:0 []

(* The stale-read protocol: peek under the lock, re-project with it
   released, store back under it again — checking the view still exists
   (it may have been dropped or replaced mid-projection) and that no
   fresher projection won the race. *)
let read_view t ~name ~snap_seq ~reproject =
  let peek =
    with_lock t.lock (fun () ->
        match find t name with
        | None -> `Unknown
        | Some v -> (
          match v.body with
          | Word_view ws -> (
            match ws.dv with
            | None -> `Ready (empty_graph, None, false)
            | Some dv -> `Ready (Derived_view.simple_graph dv, Some dv, false))
          | Expr_view es ->
            if es.proj <> None && es.as_of_seq >= snap_seq then
              `Ready (Option.get es.proj, None, es.partial)
            else `Stale (es.query, es.max_length)))
  in
  match peek with
  | `Unknown -> Error Unknown_view
  | `Ready (sg, dv, partial) -> Ok (sg, dv, partial)
  | `Stale (query, max_length) -> (
    match reproject ~query ~max_length with
    | Error msg -> Error (Projection_failed msg)
    | Ok (sg, partial, seq) ->
      with_lock t.lock (fun () ->
          match find t name with
          | Some { body = Expr_view es; _ } as stored
            when es.query = query && seq > es.as_of_seq ->
            es.proj <- Some sg;
            es.as_of_seq <- seq;
            es.partial <- partial;
            es.reprojections <- es.reprojections + 1;
            Option.iter touch stored
          | _ -> ());
      Ok (sg, None, partial))

let simple_graph t ~name ~snap_seq ~reproject =
  Result.map
    (fun (sg, _, partial) -> (sg, partial))
    (read_view t ~name ~snap_seq ~reproject)

let counts t ~name ~snap_seq ~reproject =
  match read_view t ~name ~snap_seq ~reproject with
  | Error _ as e -> e
  | Ok (sg, dv, partial) ->
    let pairs =
      match dv with
      | Some dv ->
        (* Count matrix under the lock: the role thread may be applying a
           rank-1 update concurrently. *)
        with_lock t.lock (fun () -> Sparse.to_coo (Derived_view.counts dv))
      | None -> List.map (fun (i, j) -> (i, j, 1.0)) (Simple_graph.edges sg)
    in
    Ok (List.filter (fun (_, _, c) -> c <> 0.0) pairs, partial)

type info = {
  i_name : string;
  i_kind : string;
  i_spec : string;
  i_max_length : int option;
  i_vertices : int;
  i_edges : int;
  i_rebuilds : int;
  i_updates : int;
  i_reprojections : int;
  i_bound : bool;
  i_dirty : bool;
  i_partial : bool;
  i_as_of_seq : int;
  i_staleness_ms : float;
}

let info_of snap_seq v =
  let staleness =
    Metrics.ns_to_ms (Metrics.elapsed_ns ~since:v.last_touch_ns)
  in
  match v.body with
  | Word_view ws ->
    let vertices, edges, rebuilds, updates =
      match ws.dv with
      | None -> (0, 0, 0, 0)
      | Some dv ->
        let sg = Derived_view.simple_graph dv in
        ( Simple_graph.n_vertices sg,
          Simple_graph.n_edges sg,
          Derived_view.n_rebuilds dv,
          Derived_view.n_updates dv )
    in
    {
      i_name = v.v_name;
      i_kind = "word";
      i_spec = String.concat "." ws.labels;
      i_max_length = None;
      i_vertices = vertices;
      i_edges = edges;
      i_rebuilds = rebuilds;
      i_updates = updates;
      i_reprojections = 0;
      i_bound = ws.dv <> None;
      i_dirty = false;
      i_partial = false;
      i_as_of_seq = snap_seq;
      i_staleness_ms = staleness;
    }
  | Expr_view es ->
    let vertices, edges =
      match es.proj with
      | None -> (0, 0)
      | Some sg -> (Simple_graph.n_vertices sg, Simple_graph.n_edges sg)
    in
    {
      i_name = v.v_name;
      i_kind = "expr";
      i_spec = es.query;
      i_max_length = Some es.max_length;
      i_vertices = vertices;
      i_edges = edges;
      i_rebuilds = 0;
      i_updates = 0;
      i_reprojections = es.reprojections;
      i_bound = true;
      i_dirty = es.proj = None || es.as_of_seq < snap_seq;
      i_partial = es.partial;
      i_as_of_seq = es.as_of_seq;
      i_staleness_ms = staleness;
    }

let list t ~snap_seq =
  with_lock t.lock (fun () -> List.map (info_of snap_seq) t.views)

let totals t =
  with_lock t.lock (fun () ->
      List.fold_left
        (fun (rb, up, rp) v ->
          match v.body with
          | Word_view { dv = Some dv; _ } ->
            (rb + Derived_view.n_rebuilds dv, up + Derived_view.n_updates dv, rp)
          | Word_view { dv = None; _ } -> (rb, up, rp)
          | Expr_view es -> (rb, up, rp + es.reprojections))
        (0, 0, 0) t.views)
