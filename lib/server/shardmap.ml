open Mrpa_graph

type shard = { name : string; endpoints : Wire.endpoint list }
type t = { shards : shard array }

let magic = "# mrpa.shardmap/1"

let is_space c = c = ' ' || c = '\t'

let split_words line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_space line.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && not (is_space line.[!j]) do incr j done;
      go !j (String.sub line i (!j - i) :: acc)
    end
  in
  go 0 []

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> Error "empty shard map"
  | header :: rest ->
    if String.trim header <> magic then
      Error (Printf.sprintf "shard map must start with %S" magic)
    else begin
      let exception Bad of string in
      try
        let shards =
          List.concat
            (List.mapi
               (fun i line ->
                 let lineno = i + 2 in
                 let line = String.trim line in
                 if line = "" || line.[0] = '#' then []
                 else
                   match split_words line with
                   | "shard" :: name :: (_ :: _ as eps) ->
                     let endpoints =
                       List.map
                         (fun e ->
                           match Wire.endpoint_of_string e with
                           | Ok ep -> ep
                           | Error m ->
                             raise
                               (Bad
                                  (Printf.sprintf "line %d: %s" lineno m)))
                         eps
                     in
                     [ { name; endpoints } ]
                   | "shard" :: name :: [] ->
                     raise
                       (Bad
                          (Printf.sprintf "line %d: shard %S has no endpoints"
                             lineno name))
                   | _ ->
                     raise
                       (Bad
                          (Printf.sprintf
                             "line %d: expected 'shard NAME ENDPOINT...'"
                             lineno)))
               rest)
        in
        if shards = [] then Error "shard map declares no shards"
        else begin
          let seen = Hashtbl.create 8 in
          List.iter
            (fun s ->
              if Hashtbl.mem seen s.name then
                raise (Bad (Printf.sprintf "duplicate shard name %S" s.name));
              Hashtbl.add seen s.name ())
            shards;
          Ok { shards = Array.of_list shards }
        end
      with Bad m -> Error m
    end

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text -> of_string text

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Array.iter
    (fun s ->
      Buffer.add_string buf "shard ";
      Buffer.add_string buf s.name;
      List.iter
        (fun e ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (Wire.endpoint_to_string e))
        s.endpoints;
      Buffer.add_char buf '\n')
    t.shards;
  Buffer.contents buf

let shards t = Array.to_list t.shards
let n_shards t = Array.length t.shards

let shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Shardmap.shard: index out of range";
  t.shards.(i)

let index_of t name =
  let n = Array.length t.shards in
  let rec go i =
    if i >= n then None
    else if t.shards.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let owner t name =
  (* Mask the sign bit so the modulus is non-negative on 32- and 64-bit. *)
  Int32.to_int (Crc32.string name) land 0x3FFFFFFF mod Array.length t.shards

let owner_name t name = t.shards.(owner t name).name

let partition t g =
  let parts =
    Array.map (fun _ -> Digraph.create ()) t.shards
  in
  (* Replicate V everywhere first, in id order, so every shard resolves
     every vertex name (isolated where it owns no edges). *)
  List.iter
    (fun v ->
      let name = Digraph.vertex_name g v in
      Array.iter (fun p -> ignore (Digraph.vertex p name)) parts)
    (Digraph.vertices g);
  Digraph.iter_edges
    (fun e ->
      let tail = Digraph.vertex_name g (Mrpa_graph.Edge.tail e) in
      let label = Digraph.label_name g (Mrpa_graph.Edge.label e) in
      let head = Digraph.vertex_name g (Mrpa_graph.Edge.head e) in
      ignore (Digraph.add parts.(owner t tail) tail label head))
    g;
  parts

let write_partition t g ~dir =
  let parts = partition t g in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Array.to_list
    (Array.mapi
       (fun i part ->
         let path = Filename.concat dir (t.shards.(i).name ^ ".tsv") in
         Io.save path part;
         (path, Digraph.n_edges part))
       parts)
