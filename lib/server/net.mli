(** Socket plumbing shared by {!Server}, {!Client} and {!Replication}.

    One home for the process-wide and per-socket setup every networked
    component needs, so the server, the client and the replica follower
    agree on it instead of each re-implementing (or forgetting) a piece. *)

val ignore_sigpipe : unit -> unit
(** Ignore [SIGPIPE] process-wide so a peer disconnecting mid-write
    surfaces as [EPIPE] from the write instead of killing the process.
    Idempotent; called automatically by {!Server.serve}, {!Client.connect}
    and {!connect_fd} — embedders only need it when writing to sockets
    through neither. *)

val resolve : string -> Unix.inet_addr
(** Numeric address or [gethostbyname] lookup; raises [Failure] with a
    rendered reason when the host cannot be resolved. *)

val set_nodelay : Unix.file_descr -> unit
(** Best-effort [TCP_NODELAY]: small pipelined requests should not wait
    out Nagle's algorithm. A no-op on non-TCP sockets. *)

val connect_fd : Wire.endpoint -> Unix.file_descr
(** Open a connected stream socket to [endpoint], with [TCP_NODELAY] set
    on TCP. Raises [Unix.Unix_error] on connect failure and [Failure] on
    an unresolvable host. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, looping over short writes. Raises
    [Unix.Unix_error] (e.g. [EPIPE] when the peer is gone). *)
