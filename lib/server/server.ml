open Mrpa_graph
open Mrpa_engine

type role =
  | Standalone
  | Primary of { journal : string }
  | Replica of { follow : Wire.endpoint }

type config = {
  endpoint : Wire.endpoint;
  workers : int;
  queue_capacity : int;
  limits : Wire.limits;
  idle_timeout_ms : float option;
  max_request_bytes : int;
  max_predicted_cost : int option;
  allow_remote_shutdown : bool;
  role : role;
}

let default_max_request_bytes = 1_048_576

(* One subscriber = one session thread draining this queue onto its
   connection. The tailer pushes under [lock]; [dead] is the tailer (or an
   epoch change) telling the streamer to hang up. *)
type subscriber = {
  sub_queue : string Queue.t;
  sub_lock : Mutex.t;
  mutable sub_dead : bool;
}

type primary_state = {
  source : Replication.Source.t;
  (* Guards [source] (tailer vs health/sub readers) and the subscriber
     registry. *)
  prim_lock : Mutex.t;
  subs : (int, subscriber) Hashtbl.t;
  mutable next_sub : int;
}

type replica_state = {
  follow : Wire.endpoint;
  appl : Replication.Apply.t;
  (* Guards [appl] (follower thread vs session reads). *)
  rep_lock : Mutex.t;
  mutable rep_epoch : int;
  mutable rep_connected : bool;
  mutable rep_last_contact : int64;  (* 0L = never *)
  mutable rep_resyncs : int;
}

type repl =
  | No_replication
  | Primary_repl of primary_state
  | Replica_repl of replica_state

type t = {
  config : config;
  (* The snapshot all sessions/workers read. Standalone servers set it
     once; primary/replica role threads swap in a fresh frozen copy of
     their live graph as the journal stream advances. Always read it
     exactly once per request. *)
  snapshot : Snapshot.t Atomic.t;
  (* Journal sequence number the current snapshot includes — the
     bounded-staleness gate waits on this, not on the live graph, so
     [min_seq] means "the answer reflects seq >= S", not merely "the
     server has heard of it". *)
  snap_seq : int Atomic.t;
  (* The live graph the current snapshot watches for result-cache
     invalidation; only the single role thread touches it. *)
  mutable snap_source : Digraph.t option;
  (* The materialized-view registry. Word views ride the same edge-observer
     plane that invalidates the result cache; expression views are
     re-projected from the serving snapshot on demand. *)
  views : Views.t;
  repl : repl;
  pool : Pool.t;
  stopping : bool Atomic.t;
  (* In-flight budget registry: shutdown cancels every member so running
     queries abort at their next checkpoint instead of pinning workers. *)
  inflight : (int, Budget.t) Hashtbl.t;
  inflight_lock : Mutex.t;
  mutable next_request : int;
  (* Server-wide metrics. The collector is single-threaded by contract, so
     every touch goes through [metrics_lock]. *)
  metrics : Metrics.t;
  metrics_lock : Mutex.t;
  mutable live_sessions : int;
  mutable connections : int;
  sessions_lock : Mutex.t;
  started_ns : int64;
  (* The endpoint actually bound — differs from [config.endpoint] when a
     TCP port of 0 asked the kernel to pick one. Set once by {!serve}. *)
  bound : Wire.endpoint option Atomic.t;
}

let create ?snapshot config =
  let snapshot, snap_seq, snap_source, repl =
    match config.role with
    | Standalone -> (
      match snapshot with
      | Some s -> (s, 0, None, No_replication)
      | None -> invalid_arg "Server.create: a standalone server needs a snapshot")
    | Primary { journal } ->
      let source = Replication.Source.create journal in
      (* Initial catch-up so a restarted primary serves its data from the
         first request, not from the first poll. *)
      ignore (Replication.Source.poll source);
      let g = Replication.Source.graph source in
      ( Snapshot.of_graph g,
        Replication.Source.last_seq source,
        Some g,
        Primary_repl
          {
            source;
            prim_lock = Mutex.create ();
            subs = Hashtbl.create 8;
            next_sub = 0;
          } )
    | Replica { follow } ->
      let appl = Replication.Apply.create () in
      let g = Replication.Apply.graph appl in
      ( Snapshot.of_graph g,
        0,
        Some g,
        Replica_repl
          {
            follow;
            appl;
            rep_lock = Mutex.create ();
            rep_epoch = -1;
            rep_connected = false;
            rep_last_contact = 0L;
            rep_resyncs = 0;
          } )
  in
  let views = Views.create () in
  (* Primary/replica: observe the live graph so word views fold in every
     journal-applied write. Standalone: no live source — views are built
     from (and stay consistent with) the immutable snapshot. *)
  (match snap_source with
  | Some g -> Views.attach views g
  | None -> ());
  {
    config;
    snapshot = Atomic.make snapshot;
    snap_seq = Atomic.make snap_seq;
    snap_source;
    views;
    repl;
    pool =
      Pool.create ~workers:config.workers
        ~queue_capacity:config.queue_capacity;
    stopping = Atomic.make false;
    inflight = Hashtbl.create 32;
    inflight_lock = Mutex.create ();
    next_request = 0;
    metrics = Metrics.create ();
    metrics_lock = Mutex.create ();
    live_sessions = 0;
    connections = 0;
    sessions_lock = Mutex.create ();
    started_ns = Metrics.now_ns ();
    bound = Atomic.make None;
  }

let snapshot t = Atomic.get t.snapshot

let stop t = Atomic.set t.stopping true
let bound_endpoint t = Atomic.get t.bound

let connections_served t =
  Mutex.lock t.sessions_lock;
  let n = t.connections in
  Mutex.unlock t.sessions_lock;
  n

(* --- Locked helpers ---------------------------------------------------- *)

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let m_incr t name = with_lock t.metrics_lock (fun () -> Metrics.incr t.metrics name)

let register_budget t budget =
  with_lock t.inflight_lock (fun () ->
      let id = t.next_request in
      t.next_request <- id + 1;
      Hashtbl.replace t.inflight id budget;
      id)

let unregister_budget t id =
  with_lock t.inflight_lock (fun () -> Hashtbl.remove t.inflight id)

let cancel_inflight t =
  with_lock t.inflight_lock (fun () ->
      Hashtbl.iter (fun _ b -> Budget.cancel b) t.inflight)

(* --- Socket I/O --------------------------------------------------------- *)

(* Small select interval: the price of noticing [stop] without signals. *)
let poll_interval_s = 0.1

let write_line fd line = Net.write_all fd (line ^ "\n")

(* Per-connection state shared between the session thread and the worker
   jobs it dispatched. With pipelining, several workers may finish for the
   same connection at once: [write_lock] makes each response line atomic on
   the socket, and [pending]/[drained] let the session wait for its last
   worker before closing the fd — a worker must never write into a file
   descriptor that has been closed (and possibly reused) under it. *)
type session_state = {
  fd : Unix.file_descr;
  write_lock : Mutex.t;
  mutable pending : int;
  pending_lock : Mutex.t;
  drained : Condition.t;
}

let session_state fd =
  {
    fd;
    write_lock = Mutex.create ();
    pending = 0;
    pending_lock = Mutex.create ();
    drained = Condition.create ();
  }

(* Best-effort: a client that already vanished must not crash the worker
   or the session delivering its response. *)
let send ss response =
  with_lock ss.write_lock (fun () ->
      try write_line ss.fd response with Unix.Unix_error _ -> ())

let job_started ss =
  with_lock ss.pending_lock (fun () -> ss.pending <- ss.pending + 1)

let job_finished ss =
  with_lock ss.pending_lock (fun () ->
      ss.pending <- ss.pending - 1;
      if ss.pending = 0 then Condition.broadcast ss.drained)

let await_drain ss =
  with_lock ss.pending_lock (fun () ->
      while ss.pending > 0 do
        Condition.wait ss.drained ss.pending_lock
      done)

(* Stop-aware buffered line reader with two hardening bounds.

   [carry] holds bytes read past the last newline. [Timed_out] fires when
   no complete request line arrives before [deadline] — one clock covers
   both the idle connection and the slowloris drip-feeder, since what
   matters is time-to-a-complete-line, not time-between-bytes. The caller
   computes the deadline once per request cycle, so a client feeding blank
   lines (which complete but carry nothing) cannot keep resetting it.
   [Too_long] fires as soon as the (partial or complete) line exceeds the
   byte cap, so a hostile client can make us buffer at most
   [max_request_bytes + one chunk], never an unbounded heap. *)
type read_outcome = Line of string | Eof | Timed_out | Too_long

let read_line_stop t fd carry ~deadline =
  let cap = t.config.max_request_bytes in
  let take_line () =
    match String.index_opt !carry '\n' with
    | None -> if String.length !carry > cap then Some Too_long else None
    | Some i when i > cap -> Some Too_long
    | Some i ->
      let line = String.sub !carry 0 i in
      carry := String.sub !carry (i + 1) (String.length !carry - i - 1);
      Some
        (Line
           (if String.length line > 0 && line.[String.length line - 1] = '\r'
            then String.sub line 0 (String.length line - 1)
            else line))
  in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match take_line () with
    | Some outcome -> outcome
    | None ->
      if Atomic.get t.stopping then Eof
      else if
        match deadline with
        | Some d -> Int64.compare (Metrics.now_ns ()) d >= 0
        | None -> false
      then Timed_out
      else begin
        match Unix.select [ fd ] [] [] poll_interval_s with
        | [], _, _ -> loop ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            (* EOF: serve a final unterminated line if one is pending. *)
            if !carry = "" then Eof
            else begin
              let line = !carry in
              carry := "";
              if String.length line > cap then Too_long else Line line
            end
          | n ->
            carry := !carry ^ Bytes.sub_string chunk 0 n;
            loop ()
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
            loop ()
          | exception Unix.Unix_error _ -> Eof)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      end
  in
  loop ()

let request_deadline t =
  Option.map
    (fun ms -> Int64.add (Metrics.now_ns ()) (Int64.of_float (ms *. 1e6)))
    t.config.idle_timeout_ms

(* --- Request execution -------------------------------------------------- *)

let esc = Metrics.escape_string

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> esc k ^ ":" ^ v) fields) ^ "}"

(* Swap in a fresh frozen snapshot of the live graph [g] at journal
   sequence [seq]. Role-thread only (the sole mutator of the live graph,
   so copying it here is race-free). The old snapshot's invalidation
   observers are detached from whichever graph it was watching; sessions
   still holding the old snapshot keep using it consistently. *)
let refresh_snapshot t g ~seq =
  let old = Atomic.get t.snapshot in
  let fresh = Snapshot.of_graph g in
  Atomic.set t.snapshot fresh;
  Atomic.set t.snap_seq seq;
  (match t.snap_source with
  | Some watched -> Snapshot.unwatch old watched
  | None -> ());
  t.snap_source <- Some g

let effective_max_length t (o : Wire.options) =
  match o.Wire.max_length with
  | Some m -> m
  | None -> min Engine.default_max_length t.config.limits.Wire.max_length_cap

(* Execute a compiled plan for query/count. [gen0] is the result-cache
   generation observed before dispatch; a Complete payload is offered back
   to the cache under it, so a write racing with this evaluation silently
   vetoes the insert (Snapshot.cache_result). *)
let eval_compiled t snap (req : Wire.request) (o : Wire.options) rkey gen0
    (c : Snapshot.compiled) budget =
  let g = Snapshot.graph snap in
  let plan =
    match o.Wire.strategy with
    | None -> c.Snapshot.plan
    | Some s -> Plan.with_strategy c.Snapshot.plan s
  in
  let note_verdict verdict =
    match verdict with
    | Err.Complete -> ()
    | Err.Partial _ -> m_incr t "server.partial"
  in
  match req.Wire.verb with
  | Wire.Query ->
    let r = Engine.query_plan ?limit:o.Wire.limit ~budget g plan in
    m_incr t "server.queries";
    note_verdict r.Engine.verdict;
    let payload = [ ("result", Render.result_json g r) ] in
    if r.Engine.verdict = Err.Complete then
      Snapshot.cache_result snap ~generation:gen0 rkey payload;
    Wire.response_ok ~id:req.Wire.id payload
  | Wire.Count ->
    let n, verdict = Engine.count_plan ~budget g plan in
    m_incr t "server.counts";
    note_verdict verdict;
    let payload =
      [ ("count", string_of_int n); ("verdict", esc (Err.verdict_name verdict)) ]
    in
    if verdict = Err.Complete then
      Snapshot.cache_result snap ~generation:gen0 rkey payload;
    Wire.response_ok ~id:req.Wire.id payload
  | Wire.Lint | Wire.Stats | Wire.Ping | Wire.Shutdown | Wire.Health
  | Wire.Sub | Wire.Views _ ->
    assert false (* handled inline *)

(* The lint verb never evaluates anything, so it is answered inline by the
   session thread like [stats] — a pre-flight check must not be able to
   queue behind the evaluations it is meant to avert. It reads the same
   plan-cache entry the evaluation path will use. *)
let lint_response t (req : Wire.request) =
  let snap = snapshot t in
  let g = Snapshot.graph snap in
  let query_text = Option.get req.Wire.query in
  let o = Wire.clamp t.config.limits req.Wire.options in
  let max_length = effective_max_length t o in
  match Snapshot.compile snap ~max_length ~simple:o.Wire.simple query_text with
  | Error msg ->
    m_incr t "server.query_errors";
    Wire.response_error ~id:req.Wire.id ~code:Wire.Query_error msg
  | Ok c ->
    m_incr t "server.lints";
    let stats = Snapshot.profile snap in
    let diags =
      Mrpa_lint.Lint.analyze
        ~signature:(Snapshot.signature snap)
        ~stats ~max_length ?fuel:o.Wire.fuel ?deadline_ms:o.Wire.deadline_ms g
        c.Snapshot.spanned
    in
    let cost = c.Snapshot.cost in
    let bound_json = function
      | Mrpa_lint.Interval.Fin n -> string_of_int n
      | Mrpa_lint.Interval.Inf -> esc "inf"
    in
    let finding d =
      let module D = Mrpa_lint.Diagnostic in
      Printf.sprintf "{%s:%s,%s:%s,%s:%d,%s:%d,%s:%s}" (esc "code")
        (esc d.D.code) (esc "severity")
        (esc (D.severity_label d.D.severity))
        (esc "start") d.D.span.Mrpa_core.Span.start (esc "stop")
        d.D.span.Mrpa_core.Span.stop (esc "message") (esc d.D.message)
    in
    let payload =
      Printf.sprintf "{%s:[%s],%s:%d,%s:%s,%s:%s}" (esc "findings")
        (String.concat "," (List.map finding diags))
        (esc "max_length") max_length (esc "predicted_cost")
        (bound_json cost.Mrpa_lint.Cost.predicted_cost)
        (esc "predicted_paths")
        (bound_json cost.Mrpa_lint.Cost.predicted_paths)
    in
    Wire.response_ok ~id:req.Wire.id [ ("lint", payload) ]

(* Static admission control: with a [--max-predicted-cost] ceiling set, a
   query whose predicted cost exceeds the ceiling is refused with an
   [infeasible] error before a pool worker ever sees it. The analysis now
   comes straight off the plan-cache entry, so admission on a hot query is
   one LRU lookup, not a parse + abstract interpretation. *)
let admission_reject t (req : Wire.request) (c : Snapshot.compiled) =
  match t.config.max_predicted_cost with
  | None -> None
  | Some ceiling ->
    let predicted = c.Snapshot.cost.Mrpa_lint.Cost.predicted_cost in
    if Mrpa_lint.Interval.b_exceeds_int predicted ceiling then begin
      m_incr t "server.infeasible";
      Some
        (Wire.response_error ~id:req.Wire.id ~code:Wire.Infeasible
           (Printf.sprintf
              "predicted cost %s work units exceeds the server ceiling \
               %d; narrow the query or lower max_length"
              (Mrpa_lint.Interval.b_to_string predicted)
              ceiling))
    end
    else None

let stats_response t req =
  let snap = snapshot t in
  let g = Snapshot.graph snap in
  let plan_hits, plan_misses = Snapshot.plan_cache_stats snap in
  let res_hits, res_misses, res_invals = Snapshot.result_cache_stats snap in
  (* Views totals take the registry lock — do it before metrics_lock so the
     two never nest. *)
  let n_views = Views.count t.views in
  let v_rebuilds, v_updates, v_reprojections = Views.totals t.views in
  let json =
    with_lock t.metrics_lock (fun () ->
        Metrics.set t.metrics "graph.vertices" (Digraph.n_vertices g);
        Metrics.set t.metrics "graph.edges" (Digraph.n_edges g);
        Metrics.set t.metrics "graph.labels" (Digraph.n_labels g);
        Metrics.set t.metrics "server.workers" t.config.workers;
        Metrics.set t.metrics "server.queue_capacity" t.config.queue_capacity;
        Metrics.set t.metrics "server.queued" (Pool.queued t.pool);
        Metrics.set t.metrics "server.running" (Pool.running t.pool);
        Metrics.set t.metrics "server.job_errors" (Pool.job_errors t.pool);
        Metrics.set t.metrics "server.worker_restarts" (Pool.restarts t.pool);
        Metrics.set t.metrics "server.parses" (Snapshot.parse_count snap);
        Metrics.set t.metrics "server.plan_cache_hits" plan_hits;
        Metrics.set t.metrics "server.plan_cache_misses" plan_misses;
        Metrics.set t.metrics "server.plan_cache_size"
          (Snapshot.plan_cache_length snap);
        Metrics.set t.metrics "server.result_cache_hits" res_hits;
        Metrics.set t.metrics "server.result_cache_misses" res_misses;
        Metrics.set t.metrics "server.result_cache_invalidations" res_invals;
        Metrics.set t.metrics "server.result_cache_size"
          (Snapshot.result_cache_length snap);
        Metrics.set t.metrics "server.views" n_views;
        Metrics.set t.metrics "server.view_rebuilds" v_rebuilds;
        Metrics.set t.metrics "server.view_updates" v_updates;
        Metrics.set t.metrics "server.view_reprojections" v_reprojections;
        Metrics.set t.metrics "server.uptime_ms"
          (int_of_float
             (Metrics.ns_to_ms (Metrics.elapsed_ns ~since:t.started_ns)));
        Metrics.to_json t.metrics)
  in
  Wire.response_ok ~id:req.Wire.id [ ("stats", json) ]

(* Submit a governed job without waiting for it: the worker writes its own
   response through the session's write lock, which is what lets several
   tagged requests from one connection run concurrently. Refusals
   (draining, queue full) are answered inline. [run] produces the response
   line; its budget is registered in the in-flight table so shutdown can
   cancel it cooperatively. *)
let submit_governed t ss (req : Wire.request) budget run =
  let reg_id = register_budget t budget in
  let job () =
    Fun.protect
      ~finally:(fun () ->
        unregister_budget t reg_id;
        job_finished ss)
      (fun () ->
        let response =
          try run ()
          with e ->
            m_incr t "server.internal_errors";
            Wire.response_error ~id:req.Wire.id ~code:Wire.Internal
              (Printexc.to_string e)
        in
        send ss response)
  in
  if Atomic.get t.stopping then begin
    unregister_budget t reg_id;
    send ss
      (Wire.response_error ~id:req.Wire.id ~code:Wire.Shutting_down
         "server is draining")
  end
  else begin
    (* Count the job before submitting so a worker that races ahead and
       finishes cannot drive [pending] negative. *)
    job_started ss;
    if not (Pool.submit t.pool job) then begin
      job_finished ss;
      unregister_budget t reg_id;
      m_incr t "server.overloaded";
      send ss
        (Wire.response_error ~id:req.Wire.id ~code:Wire.Overloaded
           "job queue is full; retry later")
    end
  end

let dispatch_async t snap ss (req : Wire.request) effective rkey
    (c : Snapshot.compiled) =
  let budget = Wire.budget_of_options effective in
  let gen0 = Snapshot.generation snap in
  submit_governed t ss req budget (fun () ->
      eval_compiled t snap req effective rkey gen0 c budget)

(* --- Sessions ------------------------------------------------------------ *)

let shutdown_allowed t =
  match t.config.endpoint with
  | Wire.Unix_socket _ -> true
  | Wire.Tcp _ -> t.config.allow_remote_shutdown

(* --- Bounded-staleness gate ---------------------------------------------- *)

(* How long a session will wait for the snapshot to catch up before
   answering [stale]. Short by design: a replica that is actually behind
   should push the client to another endpoint, not hold its request
   hostage. *)
let stale_wait_ms = 500.0

(* [min_seq] is checked against the sequence number the {e snapshot}
   includes, not the live graph's: the promise is "the answer reflects seq
   >= S", and answers come from the snapshot. [max_staleness_ms] is a
   replica-only check — standalone and primary servers are the authority
   for their own data and are never stale; a primary trivially satisfies
   any [min_seq] its tailer has reached. *)
let staleness_error t (o : Wire.options) =
  if o.Wire.min_seq = None && o.Wire.max_staleness_ms = None then None
  else begin
    let seq_ok () =
      match (o.Wire.min_seq, t.repl) with
      | None, _ -> true
      | Some s, No_replication -> s = 0
      | Some s, (Primary_repl _ | Replica_repl _) -> Atomic.get t.snap_seq >= s
    in
    let fresh_ok () =
      match (o.Wire.max_staleness_ms, t.repl) with
      | None, _ | Some _, (No_replication | Primary_repl _) -> true
      | Some ms, Replica_repl r ->
        r.rep_last_contact <> 0L
        && Metrics.ns_to_ms (Metrics.elapsed_ns ~since:r.rep_last_contact) <= ms
    in
    let deadline =
      Int64.add (Metrics.now_ns ()) (Int64.of_float (stale_wait_ms *. 1e6))
    in
    let rec wait () =
      if seq_ok () && fresh_ok () then None
      else if
        Atomic.get t.stopping
        || Int64.compare (Metrics.now_ns ()) deadline >= 0
      then begin
        m_incr t "server.stale";
        Some
          (if not (seq_ok ()) then
             Printf.sprintf
               "snapshot is at seq %d, behind the requested min_seq %d"
               (Atomic.get t.snap_seq)
               (Option.value ~default:0 o.Wire.min_seq)
           else
             Printf.sprintf
               "no contact with the primary within the requested %.0f ms"
               (Option.value ~default:0.0 o.Wire.max_staleness_ms))
      end
      else begin
        Thread.delay 0.01;
        wait ()
      end
    in
    wait ()
  end

let handle_eval t ss (req : Wire.request) =
  let effective = Wire.clamp t.config.limits req.Wire.options in
  match staleness_error t effective with
  | Some msg ->
    send ss (Wire.response_error ~id:req.Wire.id ~code:Wire.Stale msg)
  | None -> (
    (* Read the snapshot once, after the gate: the catch-up wait must be
       able to observe a refresh. *)
    let snap = snapshot t in
    let query_text = Option.get req.Wire.query in
    let max_length = effective_max_length t effective in
    let rkey =
      Snapshot.result_key
        ~verb:(Wire.verb_name req.Wire.verb)
        ~query:query_text ~max_length ~simple:effective.Wire.simple
        ~strategy:effective.Wire.strategy ~limit:effective.Wire.limit
    in
    (* Result cache first: a hit answers inline without parsing anything and
       without occupying a worker — the whole point of caching the hot set. *)
    match Snapshot.cached_result snap rkey with
    | Some payload ->
      m_incr t
        (match req.Wire.verb with
        | Wire.Query -> "server.queries"
        | _ -> "server.counts");
      send ss (Wire.response_ok ~id:req.Wire.id payload)
    | None -> (
      match
        Snapshot.compile snap ~max_length ~simple:effective.Wire.simple
          query_text
      with
      | Error msg ->
        m_incr t "server.query_errors";
        send ss (Wire.response_error ~id:req.Wire.id ~code:Wire.Query_error msg)
      | Ok compiled -> (
        match admission_reject t req compiled with
        | Some response -> send ss response
        | None -> dispatch_async t snap ss req effective rkey compiled)))

(* --- Materialized views --------------------------------------------------- *)

(* The lock under which the live graph may legally be read: every journal
   application happens beneath it ([Source.poll] on a primary,
   [Apply.apply_line]/[reset] on a replica), so a session thread holding
   it is a safe reader for a word-view build. Standalone servers have no
   live graph and no mutator, so no lock is needed. *)
let with_role_lock t f =
  match t.repl with
  | No_replication -> f ()
  | Primary_repl p -> with_lock p.prim_lock f
  | Replica_repl r -> with_lock r.rep_lock f

(* The graph a freshly registered word view materialises from: the live
   graph when there is one (read under the role lock — [t.snap_source] can
   lag one loop iteration behind an epoch change), the frozen snapshot
   otherwise. *)
let register_graph t =
  match t.repl with
  | No_replication -> Snapshot.graph (snapshot t)
  | Primary_repl p -> Replication.Source.graph p.source
  | Replica_repl r -> Replication.Apply.graph r.appl

let view_info_json (i : Views.info) =
  json_obj
    ([
       ("name", esc i.Views.i_name);
       ("kind", esc i.Views.i_kind);
       ("spec", esc i.Views.i_spec);
     ]
    @ (match i.Views.i_max_length with
      | Some m -> [ ("max_length", string_of_int m) ]
      | None -> [])
    @ [
        ("vertices", string_of_int i.Views.i_vertices);
        ("edges", string_of_int i.Views.i_edges);
        ("rebuilds", string_of_int i.Views.i_rebuilds);
        ("updates", string_of_int i.Views.i_updates);
        ("reprojections", string_of_int i.Views.i_reprojections);
        ("bound", if i.Views.i_bound then "true" else "false");
        ("dirty", if i.Views.i_dirty then "true" else "false");
        ("partial", if i.Views.i_partial then "true" else "false");
        ("as_of_seq", string_of_int i.Views.i_as_of_seq);
        ("staleness_ms", Printf.sprintf "%.1f" i.Views.i_staleness_ms);
      ])

let views_register t (req : Wire.request) (v : Wire.view_req) =
  let name = Option.get v.Wire.view_name in
  let registered kind =
    m_incr t "server.view_registers";
    Wire.response_ok ~id:req.Wire.id
      [ ("view", json_obj [ ("registered", esc name); ("kind", esc kind) ]) ]
  in
  match (v.Wire.word, v.Wire.view_query) with
  | Some word, None -> (
    let result =
      with_role_lock t (fun () ->
          Views.register t.views ~name ~graph:(register_graph t)
            (Views.Word word))
    in
    match result with
    | Ok () -> registered "word"
    | Error msg -> Wire.response_error ~id:req.Wire.id ~code:Wire.Bad_request msg)
  | None, Some query -> (
    (* The expression is validated and cost-analysed against the serving
       snapshot exactly like a query: a parse failure is a query_error, a
       predicted cost above the server ceiling is infeasible — a hostile
       registration is refused before it can ever occupy a worker. *)
    let effective = Wire.clamp t.config.limits req.Wire.options in
    let snap = snapshot t in
    let max_length = effective_max_length t effective in
    match Snapshot.compile snap ~max_length ~simple:false query with
    | Error msg ->
      m_incr t "server.query_errors";
      Wire.response_error ~id:req.Wire.id ~code:Wire.Query_error msg
    | Ok compiled -> (
      match admission_reject t req compiled with
      | Some response -> response
      | None -> (
        match
          Views.register t.views ~name ~graph:(Snapshot.graph snap)
            (Views.Expr { query; max_length })
        with
        | Ok () -> registered "expr"
        | Error msg ->
          Wire.response_error ~id:req.Wire.id ~code:Wire.Bad_request msg)))
  | _ ->
    (* decode_view enforces exactly one of word/query. *)
    Wire.response_error ~id:req.Wire.id ~code:Wire.Bad_request
      "view registration needs a \"word\" or a \"query\""

(* A worker-side view read. [seq0] is read {e before} the snapshot:
   refresh_snapshot publishes the snapshot first, so any snapshot observed
   after reading [seq0] includes at least that sequence — which makes
   "as_of_seq >= seq0" the sound freshness test and [seq0] the sound
   lower bound reported back to the client. *)
let views_read t (req : Wire.request) (v : Wire.view_req)
    (effective : Wire.options) budget =
  let name = Option.get v.Wire.view_name in
  let seq0 = Atomic.get t.snap_seq in
  let snap = snapshot t in
  let g = Snapshot.graph snap in
  let reproject ~query ~max_length =
    match Snapshot.compile snap ~max_length ~simple:false query with
    | Error msg -> Error msg
    | Ok compiled ->
      let sg =
        Mrpa_analysis.Projection.path_derived_expr
          ~guard:(Budget.guard budget) g
          (Mrpa_core.Spanned.strip compiled.Snapshot.spanned)
          ~max_length
      in
      Ok (sg, Budget.tripped budget <> None, seq0)
  in
  (* Word views can be ahead of the serving snapshot (they are synchronous
     with the live stream); vertices interned since the last refresh get a
     positional placeholder until the next snapshot lands. *)
  let vertex_name i =
    if i < Digraph.n_vertices g then Digraph.vertex_name g (Vertex.of_int i)
    else Printf.sprintf "#%d" i
  in
  let unknown () =
    m_incr t "server.view_unknown";
    Wire.response_error ~id:req.Wire.id ~code:Wire.Unknown_view
      (Printf.sprintf "no view named %S" name)
  in
  let failed msg =
    m_incr t "server.query_errors";
    Wire.response_error ~id:req.Wire.id ~code:Wire.Query_error
      (Printf.sprintf "view %S re-projection failed: %s" name msg)
  in
  let truncate l =
    match effective.Wire.limit with
    | Some k ->
      List.filteri (fun i _ -> i < k) l
    | None -> l
  in
  let base partial =
    [
      ("name", esc name);
      ("as_of_seq", string_of_int seq0);
      ("partial", if partial then "true" else "false");
    ]
  in
  match v.Wire.action with
  | Wire.V_edges -> (
    m_incr t "server.view_reads";
    match Views.simple_graph t.views ~name ~snap_seq:seq0 ~reproject with
    | Error Views.Unknown_view -> unknown ()
    | Error (Views.Projection_failed msg) -> failed msg
    | Ok (sg, partial) ->
      let pairs =
        truncate (Mrpa_analysis.Simple_graph.edges sg)
        |> List.map (fun (i, j) ->
               Printf.sprintf "[%s,%s]" (esc (vertex_name i))
                 (esc (vertex_name j)))
      in
      Wire.response_ok ~id:req.Wire.id
        [
          ( "view",
            json_obj
              (base partial
              @ [
                  ( "vertices",
                    string_of_int (Mrpa_analysis.Simple_graph.n_vertices sg) );
                  ("edges", string_of_int (Mrpa_analysis.Simple_graph.n_edges sg));
                  ("pairs", "[" ^ String.concat "," pairs ^ "]");
                ]) );
        ])
  | Wire.V_counts -> (
    m_incr t "server.view_reads";
    match Views.counts t.views ~name ~snap_seq:seq0 ~reproject with
    | Error Views.Unknown_view -> unknown ()
    | Error (Views.Projection_failed msg) -> failed msg
    | Ok (pairs, partial) ->
      let rendered =
        truncate pairs
        |> List.map (fun (i, j, c) ->
               Printf.sprintf "[%s,%s,%d]" (esc (vertex_name i))
                 (esc (vertex_name j)) (int_of_float c))
      in
      Wire.response_ok ~id:req.Wire.id
        [
          ( "view",
            json_obj
              (base partial
              @ [
                  ("pairs", "[" ^ String.concat "," rendered ^ "]");
                ]) );
        ])
  | Wire.V_analytics -> (
    m_incr t "server.view_analytics";
    match Views.simple_graph t.views ~name ~snap_seq:seq0 ~reproject with
    | Error Views.Unknown_view -> unknown ()
    | Error (Views.Projection_failed msg) -> failed msg
    | Ok (sg, partial) ->
      let module C = Mrpa_analysis.Centrality in
      let module SG = Mrpa_analysis.Simple_graph in
      let measure = Option.value ~default:"degree" v.Wire.measure in
      let top = Option.value ~default:10 v.Wire.top in
      let ranking scores =
        let ranked = C.top_k top scores in
        "["
        ^ String.concat ","
            (List.map
               (fun (i, s) ->
                 Printf.sprintf "{%s:%s,%s:%.6g}" (esc "vertex")
                   (esc (vertex_name i)) (esc "score") s)
               ranked)
        ^ "]"
      in
      let graph_fields =
        [
          ("vertices", string_of_int (SG.n_vertices sg));
          ("edges", string_of_int (SG.n_edges sg));
        ]
      in
      let payload =
        match measure with
        | "degree" -> Ok [ ("top", ranking (C.out_degree sg)) ]
        | "pagerank" -> Ok [ ("top", ranking (C.pagerank sg)) ]
        | "components" ->
          let c = Mrpa_analysis.Components.weakly_connected sg in
          let largest =
            if c.Mrpa_analysis.Components.n_components = 0 then 0
            else snd (Mrpa_analysis.Components.largest c)
          in
          Ok
            [
              ("count", string_of_int c.Mrpa_analysis.Components.n_components);
              ("largest", string_of_int largest);
            ]
        | "communities" ->
          let c = Mrpa_analysis.Communities.label_propagation sg in
          let sizes = Mrpa_analysis.Communities.sizes c in
          let largest = Array.fold_left max 0 sizes in
          let q = Mrpa_analysis.Communities.modularity sg c in
          Ok
            ([
               ("count", string_of_int c.Mrpa_analysis.Communities.n_communities);
               ("largest", string_of_int largest);
             ]
            @
            if Float.is_nan q then []
            else [ ("modularity", Printf.sprintf "%.4f" q) ])
        | other ->
          Error
            (Printf.sprintf
               "unknown measure %S (want degree, pagerank, components or \
                communities)"
               other)
      in
      match payload with
      | Error msg ->
        Wire.response_error ~id:req.Wire.id ~code:Wire.Bad_request msg
      | Ok fields ->
        Wire.response_ok ~id:req.Wire.id
          [
            ( "view",
              json_obj
                (base partial
                @ [ ("measure", esc measure) ]
                @ graph_fields @ fields) );
          ])
  | Wire.V_register | Wire.V_drop | Wire.V_list ->
    assert false (* answered inline by handle_views *)

let handle_views t ss (req : Wire.request) (v : Wire.view_req) =
  match v.Wire.action with
  | Wire.V_register -> send ss (views_register t req v)
  | Wire.V_drop ->
    let name = Option.get v.Wire.view_name in
    if Views.drop t.views name then begin
      m_incr t "server.view_drops";
      send ss
        (Wire.response_ok ~id:req.Wire.id
           [ ("view", json_obj [ ("dropped", esc name) ]) ])
    end
    else begin
      m_incr t "server.view_unknown";
      send ss
        (Wire.response_error ~id:req.Wire.id ~code:Wire.Unknown_view
           (Printf.sprintf "no view named %S" name))
    end
  | Wire.V_list ->
    m_incr t "server.view_lists";
    let infos = Views.list t.views ~snap_seq:(Atomic.get t.snap_seq) in
    send ss
      (Wire.response_ok ~id:req.Wire.id
         [
           ( "views",
             "[" ^ String.concat "," (List.map view_info_json infos) ^ "]" );
         ])
  | Wire.V_edges | Wire.V_counts | Wire.V_analytics -> (
    (* Reads go through the same bounded-staleness gate and worker pool as
       queries: a stale expression view re-projects under a governed
       budget, and even a cheap word-view extraction must not let a flood
       of view reads starve the session threads. *)
    let effective = Wire.clamp t.config.limits req.Wire.options in
    match staleness_error t effective with
    | Some msg ->
      send ss (Wire.response_error ~id:req.Wire.id ~code:Wire.Stale msg)
    | None ->
      let budget = Wire.budget_of_options effective in
      submit_governed t ss req budget (fun () ->
          views_read t req v effective budget))

(* --- Replication verbs --------------------------------------------------- *)

let health_response t req =
  (* Load signal for routers and failover clients: how much work is
     waiting ([queue_depth]) and running ([inflight]) right now. Reported
     for every role so a circuit breaker's half-open probe learns both
     liveness and load from one round trip. *)
  let load_fields =
    [
      ("queue_depth", string_of_int (Pool.queued t.pool));
      ("inflight", string_of_int (Pool.running t.pool));
    ]
  in
  let fields =
    match t.repl with
    | No_replication ->
      [ ("role", esc "standalone"); ("last_seq", "0"); ("lag", "0") ]
    | Primary_repl p ->
      let last, ep, wedged, nsubs =
        with_lock p.prim_lock (fun () ->
            ( Replication.Source.last_seq p.source,
              Replication.Source.epoch p.source,
              Replication.Source.wedged p.source,
              Hashtbl.length p.subs ))
      in
      [
        ("role", esc "primary");
        ("last_seq", string_of_int last);
        ("lag", "0");
        ("epoch", string_of_int ep);
        ("subscribers", string_of_int nsubs);
      ]
      @ (match wedged with Some r -> [ ("wedged", esc r) ] | None -> [])
    | Replica_repl r ->
      let last, pseq =
        with_lock r.rep_lock (fun () ->
            ( Replication.Apply.last_applied r.appl,
              Replication.Apply.primary_seq r.appl ))
      in
      let staleness =
        if r.rep_last_contact = 0L then -1.0
        else Metrics.ns_to_ms (Metrics.elapsed_ns ~since:r.rep_last_contact)
      in
      [
        ("role", esc "replica");
        ("last_seq", string_of_int last);
        ("primary_seq", string_of_int pseq);
        ("lag", string_of_int (max 0 (pseq - last)));
        ("snap_seq", string_of_int (Atomic.get t.snap_seq));
        ("epoch", string_of_int r.rep_epoch);
        ("connected", if r.rep_connected then "true" else "false");
        ("staleness_ms", Printf.sprintf "%.1f" staleness);
        ("resyncs", string_of_int r.rep_resyncs);
      ]
  in
  Wire.response_ok ~id:req.Wire.id
    [ ("health", json_obj (fields @ load_fields)) ]

(* Stream backlog + live records to one subscriber until the connection
   dies, the server stops, or the tailer declares the subscriber dead
   (epoch change). Record lines go through the fault plane; heartbeats and
   comments bypass it so fault positions are deterministic. *)
let stream_to_subscriber t ss sub backlog =
  let alive = ref true in
  let deliver line =
    let actions =
      if line <> "" && line.[0] = '#' then [ Replication.Fault.Deliver line ]
      else Replication.Fault.apply line
    in
    List.iter
      (fun action ->
        if !alive then
          match action with
          | Replication.Fault.Deliver l -> (
            try with_lock ss.write_lock (fun () -> write_line ss.fd l)
            with Unix.Unix_error _ -> alive := false)
          | Replication.Fault.Tear_after partial ->
            (try with_lock ss.write_lock (fun () -> Net.write_all ss.fd partial)
             with Unix.Unix_error _ -> ());
            alive := false)
      actions
  in
  List.iter (fun r -> deliver r.Replication.line) backlog;
  while !alive && not (Atomic.get t.stopping) do
    let batch, dead =
      with_lock sub.sub_lock (fun () ->
          let items = List.of_seq (Queue.to_seq sub.sub_queue) in
          Queue.clear sub.sub_queue;
          (items, sub.sub_dead))
    in
    if batch = [] then
      if dead then alive := false else Thread.delay 0.02
    else List.iter deliver batch
  done

let handle_sub t ss (req : Wire.request) =
  match t.repl with
  | No_replication | Replica_repl _ ->
    send ss
      (Wire.response_error ~id:req.Wire.id ~code:Wire.Bad_request
         "sub requires a server running with --role primary")
  | Primary_repl p ->
    let from_seq = Option.value ~default:1 req.Wire.options.Wire.from_seq in
    let sub_epoch = Option.value ~default:(-1) req.Wire.options.Wire.epoch in
    let sub =
      { sub_queue = Queue.create (); sub_lock = Mutex.create (); sub_dead = false }
    in
    (* Registration and backlog are computed under the same lock the
       tailer broadcasts under, so every record is either in the backlog
       or queued after registration — never both, never neither. *)
    let sub_id, ep, last, reset, backlog =
      with_lock p.prim_lock (fun () ->
          let id = p.next_sub in
          p.next_sub <- id + 1;
          Hashtbl.replace p.subs id sub;
          let ep = Replication.Source.epoch p.source in
          let last = Replication.Source.last_seq p.source in
          match
            Replication.Source.backlog p.source ~from_seq ~epoch:sub_epoch
          with
          | Replication.Source.Tail records -> (id, ep, last, false, records)
          | Replication.Source.Reset records -> (id, ep, last, true, records))
    in
    m_incr t "server.subs";
    Fun.protect
      ~finally:(fun () ->
        with_lock p.prim_lock (fun () -> Hashtbl.remove p.subs sub_id))
      (fun () ->
        let start_seq =
          match backlog with
          | [] -> last + 1
          | r :: _ -> r.Replication.seq
        in
        send ss
          (Wire.response_ok ~id:req.Wire.id
             [
               ( "sub",
                 json_obj
                   [
                     ("start_seq", string_of_int start_seq);
                     ("last_seq", string_of_int last);
                     ("epoch", string_of_int ep);
                     ("reset", if reset then "true" else "false");
                   ] );
             ]);
        stream_to_subscriber t ss sub backlog)

let handle_request t ss line =
  m_incr t "server.requests";
  match Wire.decode_request line with
  | Error msg ->
    m_incr t "server.bad_requests";
    send ss (Wire.response_error ~id:Json.Null ~code:Wire.Bad_request msg);
    `Continue
  | Ok req -> (
    match req.Wire.verb with
    | Wire.Ping ->
      m_incr t "server.pings";
      send ss (Wire.response_ok ~id:req.Wire.id [ ("pong", "true") ]);
      `Continue
    | Wire.Stats ->
      send ss (stats_response t req);
      `Continue
    | Wire.Lint ->
      send ss (lint_response t req);
      `Continue
    | Wire.Health ->
      m_incr t "server.healths";
      send ss (health_response t req);
      `Continue
    | Wire.Sub ->
      (* Takes over the connection: the handoff response, then a one-way
         record stream until either side hangs up. *)
      handle_sub t ss req;
      `Close
    | Wire.Shutdown ->
      if shutdown_allowed t then begin
        send ss (Wire.response_ok ~id:req.Wire.id [ ("stopping", "true") ]);
        `Shutdown
      end
      else begin
        m_incr t "server.unauthorized";
        send ss
          (Wire.response_error ~id:req.Wire.id ~code:Wire.Unauthorized
             "shutdown over TCP requires --allow-remote-shutdown");
        `Continue
      end
    | Wire.Views v ->
      handle_views t ss req v;
      `Continue
    | Wire.Query | Wire.Count ->
      handle_eval t ss req;
      `Continue)

(* --- Role threads -------------------------------------------------------- *)

let hb_interval_ns = 200_000_000L

let broadcast p lines =
  with_lock p.prim_lock (fun () ->
      Hashtbl.iter
        (fun _ sub ->
          with_lock sub.sub_lock (fun () ->
              List.iter (fun l -> Queue.push l sub.sub_queue) lines))
        p.subs)

let kill_subs p =
  with_lock p.prim_lock (fun () ->
      Hashtbl.iter
        (fun _ sub -> with_lock sub.sub_lock (fun () -> sub.sub_dead <- true))
        p.subs)

(* The primary's tailer: poll the journal, broadcast new records to
   subscribers, refresh the serving snapshot, and interleave heartbeats so
   replicas have a staleness clock even when no one is writing. *)
let primary_loop t p =
  let last_hb = ref 0L in
  while not (Atomic.get t.stopping) do
    let ep0 = Replication.Source.epoch p.source in
    let records =
      with_lock p.prim_lock (fun () -> Replication.Source.poll p.source)
    in
    let ep1 = Replication.Source.epoch p.source in
    if ep1 <> ep0 then begin
      (* The journal was rewritten (compaction / truncation) and
         resequenced: streams from the old epoch are unusable. Hang up on
         every subscriber; they resubscribe and get a reset handoff. The
         live graph was replaced wholesale, so views must rebind to the
         new object (and re-materialise — old seqs mean nothing now). *)
      kill_subs p;
      with_lock p.prim_lock (fun () ->
          Views.rebind t.views (Replication.Source.graph p.source))
    end
    else if records <> [] then
      broadcast p (List.map (fun r -> r.Replication.line) records);
    if records <> [] || ep1 <> ep0 then
      refresh_snapshot t
        (Replication.Source.graph p.source)
        ~seq:(Replication.Source.last_seq p.source);
    let now = Metrics.now_ns () in
    if Int64.compare (Int64.sub now !last_hb) hb_interval_ns >= 0 then begin
      last_hb := now;
      broadcast p
        [ Replication.heartbeat ~seq:(Replication.Source.last_seq p.source) ]
    end;
    Thread.delay 0.02
  done

let stop_aware_sleep t seconds =
  let deadline =
    Int64.add (Metrics.now_ns ()) (Int64.of_float (seconds *. 1e9))
  in
  while
    (not (Atomic.get t.stopping))
    && Int64.compare (Metrics.now_ns ()) deadline < 0
  do
    Thread.delay 0.02
  done

(* Subscribe from where we left off. [None] means the handshake itself
   failed (the peer is not a primary, or died mid-handshake). *)
let follow_handshake t r fd carry =
  let sub_req =
    {
      Wire.id = Json.Null;
      verb = Wire.Sub;
      query = None;
      options =
        {
          Wire.default_options with
          Wire.from_seq = Some (Replication.Apply.last_applied r.appl + 1);
          (* Before the first successful handshake there is no epoch to
             claim; omitting the field yields the full-reset handoff. *)
          epoch = (if r.rep_epoch >= 0 then Some r.rep_epoch else None);
        };
    }
  in
  match Net.write_all fd (Wire.encode_request sub_req ^ "\n") with
  | exception Unix.Unix_error _ -> None
  | () -> (
    let deadline = Some (Int64.add (Metrics.now_ns ()) 5_000_000_000L) in
    match read_line_stop t fd carry ~deadline with
    | Line line -> (
      match Json.parse line with
      | Error _ -> None
      | Ok json -> (
        match (Json.member "ok" json, Json.member "sub" json) with
        | Some (Json.Bool true), Some sub ->
          let geti name d =
            match Option.bind (Json.member name sub) Json.to_int_opt with
            | Some v -> v
            | None -> d
          in
          let reset =
            match Json.member "reset" sub with
            | Some (Json.Bool b) -> b
            | _ -> false
          in
          Some (geti "epoch" 0, geti "last_seq" 0, reset)
        | _ -> None))
    | Eof | Timed_out | Too_long -> None)

(* Apply the record stream until it breaks. Snapshot refreshes are
   batched: on a quiet tick, every [refresh_batch] applied records under
   sustained load, and at stream end — so a write burst costs a handful of
   graph copies, not one per record. Returns [false] when the handshake
   was refused (the caller backs off hard instead of hammering). *)
let refresh_batch = 512

let follow_stream t r fd =
  let carry = ref "" in
  match follow_handshake t r fd carry with
  | None -> false
  | Some (ep, primary_last, reset) ->
    with_lock r.rep_lock (fun () ->
        if reset then begin
          Replication.Apply.reset r.appl;
          (* [reset] replaces the replica's graph wholesale and restarts
             the sequence space: rebind so word views re-materialise from
             the fresh graph and expression views forget stale seqs. *)
          Views.rebind t.views (Replication.Apply.graph r.appl)
        end;
        Replication.Apply.note_primary_seq r.appl primary_last);
    r.rep_epoch <- ep;
    r.rep_connected <- true;
    r.rep_last_contact <- Metrics.now_ns ();
    let dirty = ref reset in
    let applied_since = ref 0 in
    let refresh () =
      refresh_snapshot t
        (Replication.Apply.graph r.appl)
        ~seq:(Replication.Apply.last_applied r.appl);
      dirty := false;
      applied_since := 0
    in
    let running = ref true in
    while !running && not (Atomic.get t.stopping) do
      let tick = Some (Int64.add (Metrics.now_ns ()) 50_000_000L) in
      match read_line_stop t fd carry ~deadline:tick with
      | Timed_out -> if !dirty then refresh ()
      | Eof | Too_long -> running := false
      | Line line -> (
        let outcome =
          with_lock r.rep_lock (fun () ->
              Replication.Apply.apply_line r.appl line)
        in
        r.rep_last_contact <- Metrics.now_ns ();
        match outcome with
        | Replication.Apply.Applied _ ->
          dirty := true;
          incr applied_since;
          if !applied_since >= refresh_batch then refresh ()
        | Replication.Apply.Skipped | Replication.Apply.Heartbeat _ -> ()
        | Replication.Apply.Resync _ ->
          r.rep_resyncs <- r.rep_resyncs + 1;
          running := false)
    done;
    if !dirty then refresh ();
    r.rep_connected <- false;
    true

(* The replica's follower: connect, subscribe, apply until the stream
   breaks, reconnect with jittered backoff (the PR 5 client policy). *)
let follower_loop t r =
  let attempt = ref 0 in
  while not (Atomic.get t.stopping) do
    match Net.connect_fd r.follow with
    | exception (Unix.Unix_error _ | Failure _) ->
      r.rep_connected <- false;
      let policy = { Client.retries = 0; Client.backoff_ms = 50.0 } in
      let delay_ms = Client.backoff_delay_ms policy ~attempt:(min !attempt 7) in
      incr attempt;
      stop_aware_sleep t (delay_ms /. 1000.0)
    | fd ->
      let handshook =
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> follow_stream t r fd)
      in
      if handshook then begin
        attempt := 0;
        stop_aware_sleep t 0.05
      end
      else begin
        incr attempt;
        stop_aware_sleep t 0.5
      end
  done

(* A client that floods blank lines (each one "completes", so the reader
   returns) gets this many before the connection is dropped — together
   with the fixed per-cycle deadline this closes the blank-line slowloris
   loophole. *)
let max_consecutive_blanks = 64

let session t fd =
  let carry = ref "" in
  let ss = session_state fd in
  (* Best-effort farewell: the connection is being torn down anyway, so a
     client that already vanished must not turn the diagnostic into a
     crash. *)
  let say_goodbye code message =
    send ss (Wire.response_error ~id:Json.Null ~code message)
  in
  (* The deadline is computed once per request cycle and survives blank
     lines: only a complete non-blank request earns a fresh clock. *)
  let rec loop blanks deadline =
    match read_line_stop t fd carry ~deadline with
    | Eof -> ()
    | Timed_out ->
      m_incr t "server.idle_timeouts";
      say_goodbye Wire.Idle_timeout
        (Printf.sprintf "no complete request within %.0f ms; closing"
           (Option.value ~default:0.0 t.config.idle_timeout_ms))
    | Too_long ->
      m_incr t "server.oversized_requests";
      say_goodbye Wire.Request_too_large
        (Printf.sprintf "request line exceeds %d bytes; closing"
           t.config.max_request_bytes)
    | Line line when String.trim line = "" ->
      if blanks + 1 >= max_consecutive_blanks then begin
        m_incr t "server.blank_floods";
        say_goodbye Wire.Bad_request
          (Printf.sprintf "%d consecutive blank lines; closing"
             max_consecutive_blanks)
      end
      else loop (blanks + 1) deadline
    | Line line -> (
      match handle_request t ss line with
      | `Shutdown -> stop t
      | `Close -> ()
      | `Continue -> loop 0 (request_deadline t))
  in
  Fun.protect
    ~finally:(fun () ->
      (* Workers may still own responses for this connection; the fd must
         outlive them. *)
      await_drain ss;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      with_lock t.sessions_lock (fun () ->
          t.live_sessions <- t.live_sessions - 1))
    (fun () -> try loop 0 (request_deadline t) with _ -> ())

(* --- Listening ----------------------------------------------------------- *)

let bind_endpoint = function
  | Wire.Unix_socket path ->
    (* A stale socket file from a crashed server would make bind fail with
       EADDRINUSE; remove it only if it is actually a socket. *)
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Wire.Tcp (host, port) ->
    let addr = Net.resolve host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let serve t =
  Net.ignore_sigpipe ();
  let listen_fd = bind_endpoint t.config.endpoint in
  let actual =
    match t.config.endpoint with
    | Wire.Tcp (host, 0) -> (
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, port) -> Wire.Tcp (host, port)
      | _ -> t.config.endpoint)
    | e -> e
  in
  Atomic.set t.bound (Some actual);
  let role_thread =
    match t.repl with
    | No_replication -> None
    | Primary_repl p -> Some (Thread.create (fun () -> primary_loop t p) ())
    | Replica_repl r -> Some (Thread.create (fun () -> follower_loop t r) ())
  in
  let accept_loop () =
    while not (Atomic.get t.stopping) do
      match Unix.select [ listen_fd ] [] [] poll_interval_s with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept listen_fd with
        | fd, _ ->
          Net.set_nodelay fd;
          with_lock t.sessions_lock (fun () ->
              t.live_sessions <- t.live_sessions + 1;
              t.connections <- t.connections + 1);
          m_incr t "server.connections";
          ignore (Thread.create (fun () -> session t fd) ())
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  Fun.protect
    ~finally:(fun () ->
      (* Graceful drain: no new work, abort running queries at their next
         checkpoint, let the pool finish, give sessions a moment to flush
         their final responses, then tear the endpoint down. *)
      Atomic.set t.stopping true;
      Option.iter Thread.join role_thread;
      cancel_inflight t;
      Pool.shutdown t.pool;
      let deadline = Int64.add (Metrics.now_ns ()) 5_000_000_000L in
      let sessions_left () =
        with_lock t.sessions_lock (fun () -> t.live_sessions)
      in
      while sessions_left () > 0 && Metrics.now_ns () < deadline do
        Thread.delay 0.02
      done;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      match t.config.endpoint with
      | Wire.Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Wire.Tcp _ -> ())
    accept_loop
