open Mrpa_graph
open Mrpa_engine

type config = {
  endpoint : Wire.endpoint;
  workers : int;
  queue_capacity : int;
  limits : Wire.limits;
  idle_timeout_ms : float option;
  max_request_bytes : int;
  max_predicted_cost : int option;
  allow_remote_shutdown : bool;
}

let default_max_request_bytes = 1_048_576

type t = {
  config : config;
  snapshot : Snapshot.t;
  pool : Pool.t;
  stopping : bool Atomic.t;
  (* In-flight budget registry: shutdown cancels every member so running
     queries abort at their next checkpoint instead of pinning workers. *)
  inflight : (int, Budget.t) Hashtbl.t;
  inflight_lock : Mutex.t;
  mutable next_request : int;
  (* Server-wide metrics. The collector is single-threaded by contract, so
     every touch goes through [metrics_lock]. *)
  metrics : Metrics.t;
  metrics_lock : Mutex.t;
  mutable live_sessions : int;
  mutable connections : int;
  sessions_lock : Mutex.t;
  started_ns : int64;
  (* The endpoint actually bound — differs from [config.endpoint] when a
     TCP port of 0 asked the kernel to pick one. Set once by {!serve}. *)
  bound : Wire.endpoint option Atomic.t;
}

let create config snapshot =
  {
    config;
    snapshot;
    pool =
      Pool.create ~workers:config.workers
        ~queue_capacity:config.queue_capacity;
    stopping = Atomic.make false;
    inflight = Hashtbl.create 32;
    inflight_lock = Mutex.create ();
    next_request = 0;
    metrics = Metrics.create ();
    metrics_lock = Mutex.create ();
    live_sessions = 0;
    connections = 0;
    sessions_lock = Mutex.create ();
    started_ns = Metrics.now_ns ();
    bound = Atomic.make None;
  }

let stop t = Atomic.set t.stopping true
let bound_endpoint t = Atomic.get t.bound

let connections_served t =
  Mutex.lock t.sessions_lock;
  let n = t.connections in
  Mutex.unlock t.sessions_lock;
  n

(* --- Locked helpers ---------------------------------------------------- *)

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let m_incr t name = with_lock t.metrics_lock (fun () -> Metrics.incr t.metrics name)

let register_budget t budget =
  with_lock t.inflight_lock (fun () ->
      let id = t.next_request in
      t.next_request <- id + 1;
      Hashtbl.replace t.inflight id budget;
      id)

let unregister_budget t id =
  with_lock t.inflight_lock (fun () -> Hashtbl.remove t.inflight id)

let cancel_inflight t =
  with_lock t.inflight_lock (fun () ->
      Hashtbl.iter (fun _ b -> Budget.cancel b) t.inflight)

(* --- Socket I/O --------------------------------------------------------- *)

(* Small select interval: the price of noticing [stop] without signals. *)
let poll_interval_s = 0.1

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done

let write_line fd line = write_all fd (line ^ "\n")

(* Per-connection state shared between the session thread and the worker
   jobs it dispatched. With pipelining, several workers may finish for the
   same connection at once: [write_lock] makes each response line atomic on
   the socket, and [pending]/[drained] let the session wait for its last
   worker before closing the fd — a worker must never write into a file
   descriptor that has been closed (and possibly reused) under it. *)
type session_state = {
  fd : Unix.file_descr;
  write_lock : Mutex.t;
  mutable pending : int;
  pending_lock : Mutex.t;
  drained : Condition.t;
}

let session_state fd =
  {
    fd;
    write_lock = Mutex.create ();
    pending = 0;
    pending_lock = Mutex.create ();
    drained = Condition.create ();
  }

(* Best-effort: a client that already vanished must not crash the worker
   or the session delivering its response. *)
let send ss response =
  with_lock ss.write_lock (fun () ->
      try write_line ss.fd response with Unix.Unix_error _ -> ())

let job_started ss =
  with_lock ss.pending_lock (fun () -> ss.pending <- ss.pending + 1)

let job_finished ss =
  with_lock ss.pending_lock (fun () ->
      ss.pending <- ss.pending - 1;
      if ss.pending = 0 then Condition.broadcast ss.drained)

let await_drain ss =
  with_lock ss.pending_lock (fun () ->
      while ss.pending > 0 do
        Condition.wait ss.drained ss.pending_lock
      done)

(* Stop-aware buffered line reader with two hardening bounds.

   [carry] holds bytes read past the last newline. [Timed_out] fires when
   no complete request line arrives before [deadline] — one clock covers
   both the idle connection and the slowloris drip-feeder, since what
   matters is time-to-a-complete-line, not time-between-bytes. The caller
   computes the deadline once per request cycle, so a client feeding blank
   lines (which complete but carry nothing) cannot keep resetting it.
   [Too_long] fires as soon as the (partial or complete) line exceeds the
   byte cap, so a hostile client can make us buffer at most
   [max_request_bytes + one chunk], never an unbounded heap. *)
type read_outcome = Line of string | Eof | Timed_out | Too_long

let read_line_stop t fd carry ~deadline =
  let cap = t.config.max_request_bytes in
  let take_line () =
    match String.index_opt !carry '\n' with
    | None -> if String.length !carry > cap then Some Too_long else None
    | Some i when i > cap -> Some Too_long
    | Some i ->
      let line = String.sub !carry 0 i in
      carry := String.sub !carry (i + 1) (String.length !carry - i - 1);
      Some
        (Line
           (if String.length line > 0 && line.[String.length line - 1] = '\r'
            then String.sub line 0 (String.length line - 1)
            else line))
  in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match take_line () with
    | Some outcome -> outcome
    | None ->
      if Atomic.get t.stopping then Eof
      else if
        match deadline with
        | Some d -> Int64.compare (Metrics.now_ns ()) d >= 0
        | None -> false
      then Timed_out
      else begin
        match Unix.select [ fd ] [] [] poll_interval_s with
        | [], _, _ -> loop ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            (* EOF: serve a final unterminated line if one is pending. *)
            if !carry = "" then Eof
            else begin
              let line = !carry in
              carry := "";
              if String.length line > cap then Too_long else Line line
            end
          | n ->
            carry := !carry ^ Bytes.sub_string chunk 0 n;
            loop ()
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
            loop ()
          | exception Unix.Unix_error _ -> Eof)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      end
  in
  loop ()

let request_deadline t =
  Option.map
    (fun ms -> Int64.add (Metrics.now_ns ()) (Int64.of_float (ms *. 1e6)))
    t.config.idle_timeout_ms

(* --- Request execution -------------------------------------------------- *)

let esc = Metrics.escape_string

let effective_max_length t (o : Wire.options) =
  match o.Wire.max_length with
  | Some m -> m
  | None -> min Engine.default_max_length t.config.limits.Wire.max_length_cap

(* Execute a compiled plan for query/count. [gen0] is the result-cache
   generation observed before dispatch; a Complete payload is offered back
   to the cache under it, so a write racing with this evaluation silently
   vetoes the insert (Snapshot.cache_result). *)
let eval_compiled t (req : Wire.request) (o : Wire.options) rkey gen0
    (c : Snapshot.compiled) budget =
  let g = Snapshot.graph t.snapshot in
  let plan =
    match o.Wire.strategy with
    | None -> c.Snapshot.plan
    | Some s -> Plan.with_strategy c.Snapshot.plan s
  in
  let note_verdict verdict =
    match verdict with
    | Err.Complete -> ()
    | Err.Partial _ -> m_incr t "server.partial"
  in
  match req.Wire.verb with
  | Wire.Query ->
    let r = Engine.query_plan ?limit:o.Wire.limit ~budget g plan in
    m_incr t "server.queries";
    note_verdict r.Engine.verdict;
    let payload = [ ("result", Render.result_json g r) ] in
    if r.Engine.verdict = Err.Complete then
      Snapshot.cache_result t.snapshot ~generation:gen0 rkey payload;
    Wire.response_ok ~id:req.Wire.id payload
  | Wire.Count ->
    let n, verdict = Engine.count_plan ~budget g plan in
    m_incr t "server.counts";
    note_verdict verdict;
    let payload =
      [ ("count", string_of_int n); ("verdict", esc (Err.verdict_name verdict)) ]
    in
    if verdict = Err.Complete then
      Snapshot.cache_result t.snapshot ~generation:gen0 rkey payload;
    Wire.response_ok ~id:req.Wire.id payload
  | Wire.Lint | Wire.Stats | Wire.Ping | Wire.Shutdown ->
    assert false (* handled inline *)

(* The lint verb never evaluates anything, so it is answered inline by the
   session thread like [stats] — a pre-flight check must not be able to
   queue behind the evaluations it is meant to avert. It reads the same
   plan-cache entry the evaluation path will use. *)
let lint_response t (req : Wire.request) =
  let g = Snapshot.graph t.snapshot in
  let query_text = Option.get req.Wire.query in
  let o = Wire.clamp t.config.limits req.Wire.options in
  let max_length = effective_max_length t o in
  match
    Snapshot.compile t.snapshot ~max_length ~simple:o.Wire.simple query_text
  with
  | Error msg ->
    m_incr t "server.query_errors";
    Wire.response_error ~id:req.Wire.id ~code:Wire.Query_error msg
  | Ok c ->
    m_incr t "server.lints";
    let stats = Snapshot.profile t.snapshot in
    let diags =
      Mrpa_lint.Lint.analyze
        ~signature:(Snapshot.signature t.snapshot)
        ~stats ~max_length ?fuel:o.Wire.fuel ?deadline_ms:o.Wire.deadline_ms g
        c.Snapshot.spanned
    in
    let cost = c.Snapshot.cost in
    let bound_json = function
      | Mrpa_lint.Interval.Fin n -> string_of_int n
      | Mrpa_lint.Interval.Inf -> esc "inf"
    in
    let finding d =
      let module D = Mrpa_lint.Diagnostic in
      Printf.sprintf "{%s:%s,%s:%s,%s:%d,%s:%d,%s:%s}" (esc "code")
        (esc d.D.code) (esc "severity")
        (esc (D.severity_label d.D.severity))
        (esc "start") d.D.span.Mrpa_core.Span.start (esc "stop")
        d.D.span.Mrpa_core.Span.stop (esc "message") (esc d.D.message)
    in
    let payload =
      Printf.sprintf "{%s:[%s],%s:%d,%s:%s,%s:%s}" (esc "findings")
        (String.concat "," (List.map finding diags))
        (esc "max_length") max_length (esc "predicted_cost")
        (bound_json cost.Mrpa_lint.Cost.predicted_cost)
        (esc "predicted_paths")
        (bound_json cost.Mrpa_lint.Cost.predicted_paths)
    in
    Wire.response_ok ~id:req.Wire.id [ ("lint", payload) ]

(* Static admission control: with a [--max-predicted-cost] ceiling set, a
   query whose predicted cost exceeds the ceiling is refused with an
   [infeasible] error before a pool worker ever sees it. The analysis now
   comes straight off the plan-cache entry, so admission on a hot query is
   one LRU lookup, not a parse + abstract interpretation. *)
let admission_reject t (req : Wire.request) (c : Snapshot.compiled) =
  match t.config.max_predicted_cost with
  | None -> None
  | Some ceiling ->
    let predicted = c.Snapshot.cost.Mrpa_lint.Cost.predicted_cost in
    if Mrpa_lint.Interval.b_exceeds_int predicted ceiling then begin
      m_incr t "server.infeasible";
      Some
        (Wire.response_error ~id:req.Wire.id ~code:Wire.Infeasible
           (Printf.sprintf
              "predicted cost %s work units exceeds the server ceiling \
               %d; narrow the query or lower max_length"
              (Mrpa_lint.Interval.b_to_string predicted)
              ceiling))
    end
    else None

let stats_response t req =
  let g = Snapshot.graph t.snapshot in
  let plan_hits, plan_misses = Snapshot.plan_cache_stats t.snapshot in
  let res_hits, res_misses, res_invals =
    Snapshot.result_cache_stats t.snapshot
  in
  let json =
    with_lock t.metrics_lock (fun () ->
        Metrics.set t.metrics "graph.vertices" (Digraph.n_vertices g);
        Metrics.set t.metrics "graph.edges" (Digraph.n_edges g);
        Metrics.set t.metrics "graph.labels" (Digraph.n_labels g);
        Metrics.set t.metrics "server.workers" t.config.workers;
        Metrics.set t.metrics "server.queue_capacity" t.config.queue_capacity;
        Metrics.set t.metrics "server.queued" (Pool.queued t.pool);
        Metrics.set t.metrics "server.running" (Pool.running t.pool);
        Metrics.set t.metrics "server.job_errors" (Pool.job_errors t.pool);
        Metrics.set t.metrics "server.worker_restarts" (Pool.restarts t.pool);
        Metrics.set t.metrics "server.parses" (Snapshot.parse_count t.snapshot);
        Metrics.set t.metrics "server.plan_cache_hits" plan_hits;
        Metrics.set t.metrics "server.plan_cache_misses" plan_misses;
        Metrics.set t.metrics "server.plan_cache_size"
          (Snapshot.plan_cache_length t.snapshot);
        Metrics.set t.metrics "server.result_cache_hits" res_hits;
        Metrics.set t.metrics "server.result_cache_misses" res_misses;
        Metrics.set t.metrics "server.result_cache_invalidations" res_invals;
        Metrics.set t.metrics "server.result_cache_size"
          (Snapshot.result_cache_length t.snapshot);
        Metrics.set t.metrics "server.uptime_ms"
          (int_of_float
             (Metrics.ns_to_ms (Metrics.elapsed_ns ~since:t.started_ns)));
        Metrics.to_json t.metrics)
  in
  Wire.response_ok ~id:req.Wire.id [ ("stats", json) ]

(* Submit a governed job without waiting for it: the worker writes its own
   response through the session's write lock, which is what lets several
   tagged requests from one connection run concurrently. Refusals
   (draining, queue full) are answered inline. *)
let dispatch_async t ss (req : Wire.request) effective rkey
    (c : Snapshot.compiled) =
  let budget = Wire.budget_of_options effective in
  let reg_id = register_budget t budget in
  let gen0 = Snapshot.generation t.snapshot in
  let job () =
    Fun.protect
      ~finally:(fun () ->
        unregister_budget t reg_id;
        job_finished ss)
      (fun () ->
        let response =
          try eval_compiled t req effective rkey gen0 c budget
          with e ->
            m_incr t "server.internal_errors";
            Wire.response_error ~id:req.Wire.id ~code:Wire.Internal
              (Printexc.to_string e)
        in
        send ss response)
  in
  if Atomic.get t.stopping then begin
    unregister_budget t reg_id;
    send ss
      (Wire.response_error ~id:req.Wire.id ~code:Wire.Shutting_down
         "server is draining")
  end
  else begin
    (* Count the job before submitting so a worker that races ahead and
       finishes cannot drive [pending] negative. *)
    job_started ss;
    if not (Pool.submit t.pool job) then begin
      job_finished ss;
      unregister_budget t reg_id;
      m_incr t "server.overloaded";
      send ss
        (Wire.response_error ~id:req.Wire.id ~code:Wire.Overloaded
           "job queue is full; retry later")
    end
  end

(* --- Sessions ------------------------------------------------------------ *)

let shutdown_allowed t =
  match t.config.endpoint with
  | Wire.Unix_socket _ -> true
  | Wire.Tcp _ -> t.config.allow_remote_shutdown

let handle_eval t ss (req : Wire.request) =
  let effective = Wire.clamp t.config.limits req.Wire.options in
  let query_text = Option.get req.Wire.query in
  let max_length = effective_max_length t effective in
  let rkey =
    Snapshot.result_key
      ~verb:(Wire.verb_name req.Wire.verb)
      ~query:query_text ~max_length ~simple:effective.Wire.simple
      ~strategy:effective.Wire.strategy ~limit:effective.Wire.limit
  in
  (* Result cache first: a hit answers inline without parsing anything and
     without occupying a worker — the whole point of caching the hot set. *)
  match Snapshot.cached_result t.snapshot rkey with
  | Some payload ->
    m_incr t
      (match req.Wire.verb with
      | Wire.Query -> "server.queries"
      | _ -> "server.counts");
    send ss (Wire.response_ok ~id:req.Wire.id payload)
  | None -> (
    match
      Snapshot.compile t.snapshot ~max_length ~simple:effective.Wire.simple
        query_text
    with
    | Error msg ->
      m_incr t "server.query_errors";
      send ss (Wire.response_error ~id:req.Wire.id ~code:Wire.Query_error msg)
    | Ok compiled -> (
      match admission_reject t req compiled with
      | Some response -> send ss response
      | None -> dispatch_async t ss req effective rkey compiled))

let handle_request t ss line =
  m_incr t "server.requests";
  match Wire.decode_request line with
  | Error msg ->
    m_incr t "server.bad_requests";
    send ss (Wire.response_error ~id:Json.Null ~code:Wire.Bad_request msg);
    `Continue
  | Ok req -> (
    match req.Wire.verb with
    | Wire.Ping ->
      m_incr t "server.pings";
      send ss (Wire.response_ok ~id:req.Wire.id [ ("pong", "true") ]);
      `Continue
    | Wire.Stats ->
      send ss (stats_response t req);
      `Continue
    | Wire.Lint ->
      send ss (lint_response t req);
      `Continue
    | Wire.Shutdown ->
      if shutdown_allowed t then begin
        send ss (Wire.response_ok ~id:req.Wire.id [ ("stopping", "true") ]);
        `Shutdown
      end
      else begin
        m_incr t "server.unauthorized";
        send ss
          (Wire.response_error ~id:req.Wire.id ~code:Wire.Unauthorized
             "shutdown over TCP requires --allow-remote-shutdown");
        `Continue
      end
    | Wire.Query | Wire.Count ->
      handle_eval t ss req;
      `Continue)

(* A client that floods blank lines (each one "completes", so the reader
   returns) gets this many before the connection is dropped — together
   with the fixed per-cycle deadline this closes the blank-line slowloris
   loophole. *)
let max_consecutive_blanks = 64

let session t fd =
  let carry = ref "" in
  let ss = session_state fd in
  (* Best-effort farewell: the connection is being torn down anyway, so a
     client that already vanished must not turn the diagnostic into a
     crash. *)
  let say_goodbye code message =
    send ss (Wire.response_error ~id:Json.Null ~code message)
  in
  (* The deadline is computed once per request cycle and survives blank
     lines: only a complete non-blank request earns a fresh clock. *)
  let rec loop blanks deadline =
    match read_line_stop t fd carry ~deadline with
    | Eof -> ()
    | Timed_out ->
      m_incr t "server.idle_timeouts";
      say_goodbye Wire.Idle_timeout
        (Printf.sprintf "no complete request within %.0f ms; closing"
           (Option.value ~default:0.0 t.config.idle_timeout_ms))
    | Too_long ->
      m_incr t "server.oversized_requests";
      say_goodbye Wire.Request_too_large
        (Printf.sprintf "request line exceeds %d bytes; closing"
           t.config.max_request_bytes)
    | Line line when String.trim line = "" ->
      if blanks + 1 >= max_consecutive_blanks then begin
        m_incr t "server.blank_floods";
        say_goodbye Wire.Bad_request
          (Printf.sprintf "%d consecutive blank lines; closing"
             max_consecutive_blanks)
      end
      else loop (blanks + 1) deadline
    | Line line -> (
      match handle_request t ss line with
      | `Shutdown -> stop t
      | `Continue -> loop 0 (request_deadline t))
  in
  Fun.protect
    ~finally:(fun () ->
      (* Workers may still own responses for this connection; the fd must
         outlive them. *)
      await_drain ss;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      with_lock t.sessions_lock (fun () ->
          t.live_sessions <- t.live_sessions - 1))
    (fun () -> try loop 0 (request_deadline t) with _ -> ())

(* --- Listening ----------------------------------------------------------- *)

let bind_endpoint = function
  | Wire.Unix_socket path ->
    (* A stale socket file from a crashed server would make bind fail with
       EADDRINUSE; remove it only if it is actually a socket. *)
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Wire.Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let serve t =
  let listen_fd = bind_endpoint t.config.endpoint in
  let actual =
    match t.config.endpoint with
    | Wire.Tcp (host, 0) -> (
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, port) -> Wire.Tcp (host, port)
      | _ -> t.config.endpoint)
    | e -> e
  in
  Atomic.set t.bound (Some actual);
  let accept_loop () =
    while not (Atomic.get t.stopping) do
      match Unix.select [ listen_fd ] [] [] poll_interval_s with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept listen_fd with
        | fd, _ ->
          with_lock t.sessions_lock (fun () ->
              t.live_sessions <- t.live_sessions + 1;
              t.connections <- t.connections + 1);
          m_incr t "server.connections";
          ignore (Thread.create (fun () -> session t fd) ())
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  Fun.protect
    ~finally:(fun () ->
      (* Graceful drain: no new work, abort running queries at their next
         checkpoint, let the pool finish, give sessions a moment to flush
         their final responses, then tear the endpoint down. *)
      Atomic.set t.stopping true;
      cancel_inflight t;
      Pool.shutdown t.pool;
      let deadline = Int64.add (Metrics.now_ns ()) 5_000_000_000L in
      let sessions_left () =
        with_lock t.sessions_lock (fun () -> t.live_sessions)
      in
      while sessions_left () > 0 && Metrics.now_ns () < deadline do
        Thread.delay 0.02
      done;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      match t.config.endpoint with
      | Wire.Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Wire.Tcp _ -> ())
    accept_loop
