(** A minimal [mrpa.wire/1] client.

    Two modes over the same connection type. The synchronous mode
    ({!request}) writes a line and blocks for the response line — one
    request in flight. The pipelined mode splits the halves: {!send} any
    number of tagged requests, then {!receive} responses as the server
    finishes them — possibly out of order, matched back to their requests
    by the echoed [id] ({!response_id}). Used by [mrpa call] (plain and
    [--pipeline]), the server benchmarks (closed-loop EXP-T13, open-loop
    EXP-T16) and the end-to-end tests.

    A [conn] itself is not thread-safe; the supported concurrent layout is
    one sender thread and one receiver thread, which is safe because the
    two halves touch disjoint state (the kernel socket buffer arbitrates
    between them). *)

type conn

val connect : Wire.endpoint -> (conn, string) result
(** Open a stream connection. [Error] carries a rendered reason
    (connection refused, no such socket, unresolvable host, ...). *)

val send : conn -> Wire.request -> (unit, string) result
(** Write one request line without waiting for the response. Give each
    in-flight request a distinct [id] or the responses cannot be told
    apart. *)

val send_raw : conn -> string -> (unit, string) result
(** {!send} for an already-encoded line. *)

val receive : conn -> (Json.t, string) result
(** Block for the next response line, whichever request it answers, and
    parse it. *)

val receive_raw : conn -> (string, string) result
(** Block for the next response line, unparsed. *)

val response_id : Json.t -> Json.t
(** The [id] a response echoes ({!Json.Null} when absent) — the key to
    match pipelined responses back to their requests. *)

val request_raw : conn -> string -> (string, string) result
(** Send one already-encoded request line and read one response line. *)

val request : conn -> Wire.request -> (Json.t, string) result
(** {!Wire.encode_request}, send, read, {!Json.parse}. The [Error] case is
    transport- or framing-level only — a well-formed [{"ok":false}]
    response is an [Ok] value; inspect it with {!Json.member}. *)

val close : conn -> unit
(** Idempotent. *)

(** {1 Retry, backoff and failover}

    The transient-failure policy behind [mrpa call --retries N
    --backoff-ms B] and the failover client behind [--endpoints A,B,C].
    Three failure classes are retried: a {e retryable connect error}
    (refused, missing socket file, reset, timed out — the server is not
    there yet), a {e mid-stream} transport failure (EOF, [ECONNRESET],
    [EPIPE] after connect — but only for idempotent verbs: [query],
    [count], [lint], [stats], [ping], [health]; a [shutdown] that died
    mid-stream may already have acted), and a retryable wire response —
    [overloaded] (the server is there but shedding load) or [stale] (a
    replica behind the requested staleness bound; another endpoint may be
    fresher). Everything else — bad address, malformed response, any
    other wire error — fails or returns immediately; retrying would not
    change the outcome. *)

type retry_policy = {
  retries : int;  (** extra attempts after the first; [0] = try once. *)
  backoff_ms : float;  (** base of the exponential backoff window. *)
}

val no_retry : retry_policy
(** [{retries = 0; backoff_ms = 100.0}] — single attempt, the historical
    behaviour. *)

val backoff_delay_ms :
  ?rand:(float -> float) -> retry_policy -> attempt:int -> float
(** Delay before retry number [attempt] (0-based): full jitter in
    [[d/2, d]] where [d = backoff_ms * 2^attempt], capped at 10 s.
    [rand] (default [Random.float]) is injectable so tests are
    deterministic. *)

val request_failover :
  ?policy:retry_policy ->
  ?sleep:(float -> unit) ->
  ?rand:(float -> float) ->
  Wire.endpoint list ->
  Wire.request ->
  (string, string) result
(** Connect, send one request, read one response — with a fresh connection
    each attempt, rotating round-robin across [endpoints] and retrying the
    failure classes above. The attempt count is
    [max (policy.retries + 1) (length endpoints)]: at least one full cycle
    through the list, so a [stale] replica (or dead endpoint) first in the
    list never masks a fresher one further down, even with [retries = 0].
    The backoff sleep is paid only after a {e full} cycle through the list
    has failed (with exponent = completed cycles), so failing over to a
    live standby is immediate while a fully-dead fleet is still backed
    off.
    With several endpoints, even a non-retryable connect error rotates to
    the next endpoint rather than giving up — one bad address should not
    mask a healthy standby. [Ok] is the raw response line, byte-for-byte
    as the server sent it. When every attempt answers [overloaded] or
    [stale], the last such response is returned as [Ok] (it {e is} a
    well-formed wire answer); when every connect fails retryably, the last
    rendered reason is the [Error]. [sleep] is injectable for tests.
    Raises [Invalid_argument] on an empty endpoint list. *)

val request_retry :
  ?policy:retry_policy ->
  ?sleep:(float -> unit) ->
  ?rand:(float -> float) ->
  Wire.endpoint ->
  Wire.request ->
  (string, string) result
(** {!request_failover} with a single endpoint. *)
