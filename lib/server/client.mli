(** A minimal synchronous [mrpa.wire/1] client.

    One connection, one request in flight: {!request} writes a line and
    blocks for the response line, which matches the server's session
    discipline exactly. Used by [mrpa call], the closed-loop benchmark
    (EXP-T13) and the end-to-end tests. *)

type conn

val connect : Wire.endpoint -> (conn, string) result
(** Open a stream connection. [Error] carries a rendered reason
    (connection refused, no such socket, unresolvable host, ...). *)

val request_raw : conn -> string -> (string, string) result
(** Send one already-encoded request line and read one response line. *)

val request : conn -> Wire.request -> (Json.t, string) result
(** {!Wire.encode_request}, send, read, {!Json.parse}. The [Error] case is
    transport- or framing-level only — a well-formed [{"ok":false}]
    response is an [Ok] value; inspect it with {!Json.member}. *)

val close : conn -> unit
(** Idempotent. *)
