type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Parsing ---------------------------------------------------------- *)

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue_ = ref true in
  while !continue_ do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue_ := false
  done

let expect c ch =
  match peek c with
  | Some k when k = ch -> advance c
  | Some k -> fail c.pos (Printf.sprintf "expected %C, found %C" ch k)
  | None -> fail c.pos (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 bytes. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c.pos "bad \\u escape (expected 4 hex digits)"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek c with
    | None -> fail c.pos "unterminated \\u escape"
    | Some ch ->
      v := (!v * 16) + digit ch;
      advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      (match peek c with
      | None -> fail c.pos "unterminated escape"
      | Some ch -> (
        advance c;
        match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let u = hex4 c in
          if u >= 0xD800 && u <= 0xDBFF then begin
            (* High surrogate: a low surrogate must follow. *)
            expect c '\\';
            expect c 'u';
            let lo = hex4 c in
            if lo < 0xDC00 || lo > 0xDFFF then
              fail c.pos "high surrogate not followed by low surrogate"
            else
              add_utf8 buf
                (0x10000 + (((u - 0xD800) lsl 10) lor (lo - 0xDC00)))
          end
          else if u >= 0xDC00 && u <= 0xDFFF then
            fail c.pos "lone low surrogate"
          else add_utf8 buf u
        | _ -> fail (c.pos - 1) (Printf.sprintf "bad escape \\%C" ch)));
      loop ())
    | Some ch when Char.code ch < 0x20 ->
      fail c.pos "unescaped control character in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    let continue_ = ref true in
    while !continue_ do
      match peek c with
      | Some ch when pred ch -> advance c
      | _ -> continue_ := false
    done
  in
  let digits ctx =
    let d0 = c.pos in
    consume_while (function '0' .. '9' -> true | _ -> false);
    if c.pos = d0 then fail c.pos (Printf.sprintf "expected digit %s" ctx)
  in
  (match peek c with Some '-' -> advance c | _ -> ());
  (* No leading zeros: "0" or [1-9][0-9]* *)
  (match peek c with
  | Some '0' -> advance c
  | Some ('1' .. '9') -> digits "in integer part"
  | _ -> fail c.pos "expected digit");
  (match peek c with
  | Some '.' ->
    advance c;
    digits "after decimal point"
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    digits "in exponent"
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail start (Printf.sprintf "bad number %s" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "expected a JSON value"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> fail c.pos "expected ',' or '}' in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> fail c.pos "expected ',' or ']' in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number c)
  | Some ch -> fail c.pos (Printf.sprintf "unexpected %C" ch)

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos < String.length src then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)

(* --- Printing --------------------------------------------------------- *)

let escape_string = Mrpa_engine.Metrics.escape_string

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  | String s -> escape_string s
  | List items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> escape_string k ^ ":" ^ to_string v)
           fields)
    ^ "}"

(* --- Accessors -------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_float_opt = function Number f -> Some f | _ -> None

let to_int_opt = function
  | Number f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
