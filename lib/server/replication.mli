(** Journal-streaming replication: the primary tails its own v2 journal
    and streams the framed records verbatim to subscribing replicas, which
    apply them into a live graph. Both halves live here, socket-free, so
    the whole pipeline is unit- and property-testable as pure data flow;
    {!Server} wires them to threads and connections.

    {2 Consistency contract}

    A replica's graph is always the replay of a {e sequence prefix} of the
    primary's journal (within one epoch). The pieces that enforce it:

    - Records travel as the exact framed journal lines, so the replica
      re-validates CRC and sequence with the on-disk format's own code.
    - {!Apply} accepts only the next expected sequence number: duplicates
      (seq already applied) are skipped, anything else — a gap, a failed
      checksum, a malformed line, a heartbeat naming records that never
      arrived — demands a {e resync}: reconnect and resubscribe from
      [last_applied + 1]. Convergence under faults is a QCheck property,
      not a hope.
    - An {e epoch} identifies one file generation of the journal. A
      compaction (or crash-recovery truncation) rewrites and resequences
      the journal, bumping the epoch; a subscriber from another epoch gets
      a full-reset handoff — the compacted journal {e is} the snapshot —
      instead of mis-matched sequence numbers. *)

open Mrpa_graph

type record = { seq : int; line : string }
(** One framed journal record, byte-for-byte as on disk (no newline). *)

val heartbeat : seq:int -> string
(** The ["#hb SEQ"] comment line the primary interleaves into streams: a
    liveness signal (bounded-staleness clock), a lag report, and a
    lost-record detector all in one. A journal comment by construction,
    so it can never be mistaken for a record. *)

(** Deterministic fault plane for the replication channel, modeled on
    {!Mrpa_graph.Io_fault}: one global slot, armed with (kind, n), firing
    on the n-th record pushed through {!Fault.apply} and disarming itself.
    Only record lines count — heartbeats/comments bypass the plane — so
    ["the 3rd record"] is deterministic regardless of timing. Not
    thread-safe by design (arm once, from the test, before traffic). *)
module Fault : sig
  type kind =
    | Drop  (** the record vanishes. *)
    | Duplicate  (** the record is delivered twice. *)
    | Reorder
        (** the record is held and delivered {e after} the next one. *)
    | Tear
        (** half the record's bytes are delivered, then the stream dies —
            the torn-write analogue on the wire. *)

  val kind_name : kind -> string

  type action =
    | Deliver of string  (** put this line on the wire. *)
    | Tear_after of string
        (** write these (partial) bytes, then drop the connection. *)

  val arm : kind -> at:int -> unit
  (** Arm the plane to fire on the [at]-th record (1-based) from now.
      Raises [Invalid_argument] when [at < 1]. *)

  val disarm : unit -> unit
  (** Clear the armed fault and any held (reordered) record. *)

  val apply : string -> action list
  (** Route one record line through the plane: the actions to perform, in
      order. Usually [[Deliver line]]; the armed fault rewrites the n-th
      call. A [Reorder]-held record is flushed behind the next one. *)
end

(** The primary's journal tailer: an incremental, restartable reader of
    the journal file that maintains the primary's live graph, the framed
    record history for late subscribers, and the epoch. Single-threaded by
    contract — {!Server} serialises access under its primary lock. *)
module Source : sig
  type t

  val create : string -> t
  (** Tail the journal at this path. The file may not exist yet (a writer
      will create it); {!poll} until it does. *)

  val graph : t -> Digraph.t
  (** The live graph: the replay of every record consumed so far. Mutated
      only by {!poll}; replaced wholesale on an epoch change. *)

  val last_seq : t -> int
  val epoch : t -> int

  val wedged : t -> string option
  (** Mid-file corruption that survived the one automatic rescan: tailing
      has stopped (the valid prefix is still served) until the file's
      identity changes — run [mrpa fsck]. Never set by a torn {e tail},
      which simply stays pending until the writer completes or truncates
      it. *)

  val poll : t -> record list
  (** Consume whatever the journal has appended since the last poll and
      return the newly applied records, oldest first. Detects compaction
      (new inode) and in-place truncation (size regression) and restarts
      from scratch under a new epoch — the records of the fresh file are
      returned as new, and subscribers from the old epoch must be reset. *)

  type backlog =
    | Tail of record list
        (** the records from [from_seq] on: the subscriber's prefix is
            still a prefix of ours, just send the rest. *)
    | Reset of record list
        (** the full record history: the subscriber's state is from
            another epoch (or ahead of us) and must be discarded. *)

  val backlog : t -> from_seq:int -> epoch:int -> backlog
  (** The catch-up stream for a subscriber that has applied records
      [< from_seq] of [epoch]. *)
end

(** The replica's record applier: a live graph plus the two sequence
    counters ([last_applied], [primary_seq]) that define lag. *)
module Apply : sig
  type t

  val create : unit -> t
  val graph : t -> Digraph.t
  val last_applied : t -> int

  val primary_seq : t -> int
  (** Highest sequence number the primary is known to have (from records
      and heartbeats seen) — [primary_seq - last_applied] is the lag. *)

  val note_primary_seq : t -> int -> unit
  (** Fold in an out-of-band observation (the [sub] handoff's
      [last_seq]). Monotonic. *)

  val reset : t -> unit
  (** Discard all state for a full-reset handoff: fresh empty graph,
      counters to zero. The caller owns re-snapshotting. *)

  type outcome =
    | Applied of int  (** the next expected record; graph advanced. *)
    | Skipped  (** duplicate record, comment, or blank — no-op. *)
    | Heartbeat of int  (** liveness signal; [primary_seq] updated. *)
    | Resync of string
        (** the stream is no longer a usable continuation (gap, checksum
            failure, malformed line, heartbeat ahead of what arrived):
            drop the connection and resubscribe from [last_applied + 1]. *)

  val apply_line : t -> string -> outcome
  (** Process one stream line (no newline). *)
end
