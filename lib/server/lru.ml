(* Classic hash-map + intrusive doubly-linked list LRU. [head] is the
   most-recently-used end, [tail] the eviction end. All state, counters
   included, lives behind one mutex so the cache is safe across session
   threads and worker domains alike. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  lock : Mutex.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create (max 16 (min capacity 4096));
    lock = Mutex.create ();
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let enabled t = t.capacity > 0

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Splice [n] out of the list. Caller holds the lock. *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

(* Push [n] at the MRU end. Caller holds the lock; [n] must be unlinked. *)
let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  if not (enabled t) then None
  else
    with_lock t (fun () ->
        match Hashtbl.find_opt t.table k with
        | None ->
          t.misses <- t.misses + 1;
          None
        | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.value)

let add t k v =
  if enabled t then
    with_lock t (fun () ->
        (match Hashtbl.find_opt t.table k with
        | Some n ->
          n.value <- v;
          unlink t n;
          push_front t n
        | None ->
          let n = { key = k; value = v; prev = None; next = None } in
          Hashtbl.replace t.table k n;
          push_front t n);
        while Hashtbl.length t.table > t.capacity do
          match t.tail with
          | None -> Hashtbl.reset t.table (* unreachable: length > 0 *)
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key;
            t.evictions <- t.evictions + 1
        done)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
