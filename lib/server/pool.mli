(** A fixed-size worker pool with a bounded job queue.

    [K] worker threads drain a FIFO of thunks; producers hand work over
    with {!submit}, which {e never blocks and never buffers unboundedly}:
    when the queue is at capacity it returns [false] and the caller is
    expected to shed the load (the server turns that into an [overloaded]
    wire response). Backpressure is therefore explicit at the edge of the
    system instead of implicit in a growing heap.

    Handoff is a single [Mutex.t] plus two [Condition.t]s (non-empty for
    workers, drained for {!shutdown}); jobs run outside the lock. A job
    that raises is swallowed (the exception is recorded as a counter, the
    worker survives) — jobs are expected to do their own error reporting.
    The one exception is {!Fatal}: a job raising it kills its worker.

    {b Supervision.} A worker whose loop exits abnormally (a {!Fatal} job,
    or a bug in the handoff itself) is restarted by the pool: the dying
    thread spawns its replacement under the pool lock — so {!shutdown}
    either joins the replacement or has already refused it — and the event
    is counted in {!restarts}, which the server surfaces as the
    [server.worker_restarts] stat. The pool never silently shrinks.

    {!shutdown} is graceful by construction: producers are refused first,
    the already-queued jobs still run, and the call returns only when every
    worker has exited. Cancelling {e in-flight} work is not the pool's job —
    the server does that by firing the {!Mrpa_engine.Budget.cancel} token
    of every running query, which aborts them at their next checkpoint. *)

type t

exception Fatal of string
(** A job that raises [Fatal] declares its worker's state unrecoverable:
    the worker dies (counted in both {!job_errors} and {!restarts}) and the
    supervisor spawns a replacement. Any other exception is swallowed.
    Also the chaos hook the supervision tests use. *)

val create : workers:int -> queue_capacity:int -> t
(** Spawn [workers] threads ([>= 1]) over a queue of at most
    [queue_capacity] ([>= 1]) waiting jobs. Capacity counts {e queued} jobs
    only; the [workers] jobs currently executing are not queued. Raises
    [Invalid_argument] when either bound is below one. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] when the queue is full or the pool is shutting
    down — the job was not (and will never be) accepted. *)

val queued : t -> int
(** Jobs waiting (not yet picked up by a worker). *)

val running : t -> int
(** Jobs currently executing. *)

val job_errors : t -> int
(** Jobs whose thunk raised (diagnostic; the workers survived — except for
    {!Fatal}, which also counts here). *)

val restarts : t -> int
(** Workers that died and were replaced by the supervisor. *)

val shutdown : t -> unit
(** Refuse new submissions, run every already-queued job, then join all
    workers. Idempotent; safe to call from any thread except a pool
    worker. *)
