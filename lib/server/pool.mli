(** A fixed-size worker pool with a bounded job queue.

    [K] worker threads drain a FIFO of thunks; producers hand work over
    with {!submit}, which {e never blocks and never buffers unboundedly}:
    when the queue is at capacity it returns [false] and the caller is
    expected to shed the load (the server turns that into an [overloaded]
    wire response). Backpressure is therefore explicit at the edge of the
    system instead of implicit in a growing heap.

    Handoff is a single [Mutex.t] plus two [Condition.t]s (non-empty for
    workers, drained for {!shutdown}); jobs run outside the lock. A job
    that raises is swallowed (the exception is recorded as a counter, the
    worker survives) — jobs are expected to do their own error reporting.

    {!shutdown} is graceful by construction: producers are refused first,
    the already-queued jobs still run, and the call returns only when every
    worker has exited. Cancelling {e in-flight} work is not the pool's job —
    the server does that by firing the {!Mrpa_engine.Budget.cancel} token
    of every running query, which aborts them at their next checkpoint. *)

type t

val create : workers:int -> queue_capacity:int -> t
(** Spawn [workers] threads ([>= 1]) over a queue of at most
    [queue_capacity] ([>= 1]) waiting jobs. Capacity counts {e queued} jobs
    only; the [workers] jobs currently executing are not queued. Raises
    [Invalid_argument] when either bound is below one. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] when the queue is full or the pool is shutting
    down — the job was not (and will never be) accepted. *)

val queued : t -> int
(** Jobs waiting (not yet picked up by a worker). *)

val running : t -> int
(** Jobs currently executing. *)

val job_errors : t -> int
(** Jobs whose thunk raised (diagnostic; the workers survived). *)

val shutdown : t -> unit
(** Refuse new submissions, run every already-queued job, then join all
    workers. Idempotent; safe to call from any thread except a pool
    worker. *)
