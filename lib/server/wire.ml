open Mrpa_engine

let version = "mrpa.wire/1"

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let endpoint_of_string s =
  let strip prefix =
    if String.starts_with ~prefix s then
      Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
    else None
  in
  let host_port rest =
    match String.rindex_opt rest ':' with
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 && host <> "" -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad TCP endpoint %S: want HOST:PORT" s))
    | None -> Error (Printf.sprintf "bad TCP endpoint %S: want HOST:PORT" s)
  in
  match strip "unix:" with
  | Some path when path <> "" -> Ok (Unix_socket path)
  | Some _ -> Error (Printf.sprintf "bad endpoint %S: empty socket path" s)
  | None -> (
    match strip "tcp:" with
    | Some rest -> host_port rest
    | None ->
      (* Bare HOST:PORT is accepted as TCP shorthand. *)
      host_port s)

(* --- Requests ---------------------------------------------------------- *)

type view_action =
  | V_register
  | V_drop
  | V_list
  | V_edges
  | V_counts
  | V_analytics

let view_action_name = function
  | V_register -> "register"
  | V_drop -> "drop"
  | V_list -> "list"
  | V_edges -> "edges"
  | V_counts -> "counts"
  | V_analytics -> "analytics"

let view_action_of_name = function
  | "register" -> Some V_register
  | "drop" -> Some V_drop
  | "list" -> Some V_list
  | "edges" -> Some V_edges
  | "counts" -> Some V_counts
  | "analytics" -> Some V_analytics
  | _ -> None

type view_req = {
  action : view_action;
  view_name : string option;
  word : string list option;
  view_query : string option;
  measure : string option;
  top : int option;
}

type verb =
  | Query
  | Count
  | Lint
  | Stats
  | Ping
  | Shutdown
  | Health
  | Sub
  | Views of view_req

let verb_name = function
  | Query -> "query"
  | Count -> "count"
  | Lint -> "lint"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"
  | Health -> "health"
  | Sub -> "sub"
  | Views _ -> "views"

let verb_of_name = function
  | "query" -> Some Query
  | "count" -> Some Count
  | "lint" -> Some Lint
  | "stats" -> Some Stats
  | "ping" -> Some Ping
  | "shutdown" -> Some Shutdown
  | "health" -> Some Health
  | "sub" -> Some Sub
  | _ -> None

type options = {
  strategy : Plan.strategy option;
  limit : int option;
  max_length : int option;
  simple : bool;
  deadline_ms : float option;
  fuel : int option;
  max_paths : int option;
  min_seq : int option;
  max_staleness_ms : float option;
  from_seq : int option;
  epoch : int option;
}

let default_options =
  {
    strategy = None;
    limit = None;
    max_length = None;
    simple = false;
    deadline_ms = None;
    fuel = None;
    max_paths = None;
    min_seq = None;
    max_staleness_ms = None;
    from_seq = None;
    epoch = None;
  }

type request = {
  id : Json.t;
  verb : verb;
  query : string option;
  options : options;
}

(* Each option field is either absent (keep the default) or must have the
   right type — a mistyped option is a hard error, not a silent default,
   so a client that misspells nothing but mistypes something finds out. *)
let decode_options json =
  let ( let* ) = Result.bind in
  let field name project wrap acc =
    match Json.member name json with
    | None -> Ok acc
    | Some v -> (
      match project v with
      | Some x -> Ok (wrap acc x)
      | None -> Error (Printf.sprintf "option %S is malformed" name))
  in
  let pos_int name project wrap acc =
    field name
      (fun v ->
        match project v with Some x when x >= 0 -> Some x | _ -> None)
      wrap acc
  in
  let* o =
    field "strategy"
      (fun v ->
        Option.bind (Json.to_string_opt v) Plan.strategy_of_string)
      (fun o s -> { o with strategy = Some s })
      default_options
  in
  let* o = pos_int "limit" Json.to_int_opt (fun o v -> { o with limit = Some v }) o in
  let* o =
    pos_int "max_length" Json.to_int_opt
      (fun o v -> { o with max_length = Some v })
      o
  in
  let* o = field "simple" Json.to_bool_opt (fun o v -> { o with simple = v }) o in
  let* o =
    field "deadline_ms"
      (fun v ->
        match Json.to_float_opt v with
        | Some f when f >= 0.0 -> Some f
        | _ -> None)
      (fun o v -> { o with deadline_ms = Some v })
      o
  in
  let* o = pos_int "fuel" Json.to_int_opt (fun o v -> { o with fuel = Some v }) o in
  let* o =
    pos_int "max_paths" Json.to_int_opt
      (fun o v -> { o with max_paths = Some v })
      o
  in
  let* o =
    pos_int "min_seq" Json.to_int_opt (fun o v -> { o with min_seq = Some v }) o
  in
  let* o =
    field "max_staleness_ms"
      (fun v ->
        match Json.to_float_opt v with
        | Some f when f >= 0.0 -> Some f
        | _ -> None)
      (fun o v -> { o with max_staleness_ms = Some v })
      o
  in
  let* o =
    pos_int "from_seq" Json.to_int_opt (fun o v -> { o with from_seq = Some v }) o
  in
  let* o =
    pos_int "epoch" Json.to_int_opt (fun o v -> { o with epoch = Some v }) o
  in
  Ok o

(* The "view" object of a views request. The word may be a JSON array of
   label names or the "a.b.c" shorthand; both normalise to the list. *)
let decode_view json =
  let ( let* ) = Result.bind in
  let str name =
    match Json.member name json with
    | None -> Ok None
    | Some v -> (
      match Json.to_string_opt v with
      | Some s when s <> "" -> Ok (Some s)
      | _ -> Error (Printf.sprintf "view field %S must be a non-empty string" name))
  in
  let* action =
    match Json.member "action" json with
    | Some (Json.String name) -> (
      match view_action_of_name name with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "unknown view action %S" name))
    | _ -> Error "a views request needs a view \"action\" string"
  in
  let* view_name = str "name" in
  let* word =
    match Json.member "word" json with
    | None -> Ok None
    | Some (Json.String s) ->
      Ok (Some (String.split_on_char '.' s |> List.filter (fun l -> l <> "")))
    | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | Json.String s :: rest when s <> "" -> go (s :: acc) rest
        | _ -> Error "view \"word\" must be a list of non-empty label names"
      in
      go [] items
    | Some _ -> Error "view \"word\" must be a list or an \"a.b.c\" string"
  in
  let* view_query = str "query" in
  let* measure = str "measure" in
  let* top =
    match Json.member "top" json with
    | None -> Ok None
    | Some v -> (
      match Json.to_int_opt v with
      | Some k when k > 0 -> Ok (Some k)
      | _ -> Error "view \"top\" must be a positive integer")
  in
  let* () =
    match action with
    | V_register -> (
      match (view_name, word, view_query) with
      | None, _, _ -> Error "view action \"register\" needs a \"name\""
      | Some _, Some _, Some _ ->
        Error "view registration takes a \"word\" or a \"query\", not both"
      | Some _, None, None ->
        Error "view registration needs a \"word\" or a \"query\""
      | Some _, _, _ -> Ok ())
    | V_drop | V_edges | V_counts | V_analytics ->
      if view_name = None then
        Error
          (Printf.sprintf "view action %S needs a \"name\""
             (view_action_name action))
      else Ok ()
    | V_list -> Ok ()
  in
  Ok { action; view_name; word; view_query; measure; top }

let decode_request line =
  let ( let* ) = Result.bind in
  let* json =
    Result.map_error (fun m -> "bad JSON: " ^ m) (Json.parse line)
  in
  let* () =
    match Json.member "mrpa" json with
    | Some (Json.String v) when v = version -> Ok ()
    | Some (Json.String v) ->
      Error (Printf.sprintf "unsupported protocol version %S (want %S)" v version)
    | _ -> Error (Printf.sprintf "missing %S version field" "mrpa")
  in
  let id = Option.value ~default:Json.Null (Json.member "id" json) in
  let* verb =
    match Json.member "verb" json with
    | Some (Json.String "views") -> (
      match Json.member "view" json with
      | Some (Json.Obj _ as v) -> Result.map (fun vr -> Views vr) (decode_view v)
      | Some _ -> Error "\"view\" must be an object"
      | None -> Error "verb \"views\" requires a \"view\" object")
    | Some (Json.String name) -> (
      match verb_of_name name with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "unknown verb %S" name))
    | _ -> Error "missing \"verb\" field"
  in
  let query = Option.bind (Json.member "query" json) Json.to_string_opt in
  let* () =
    match (verb, query) with
    | (Query | Count | Lint), None ->
      Error (Printf.sprintf "verb %S requires a \"query\" field" (verb_name verb))
    | _ -> Ok ()
  in
  let* options =
    match Json.member "options" json with
    | None -> Ok default_options
    | Some (Json.Obj _ as o) -> decode_options o
    | Some _ -> Error "\"options\" must be an object"
  in
  Ok { id; verb; query; options }

let encode_request r =
  let opt name render = function
    | None -> []
    | Some v -> [ (name, render v) ]
  in
  let option_fields =
    opt "strategy"
      (fun s -> Json.String (Plan.strategy_name s))
      r.options.strategy
    @ opt "limit" (fun v -> Json.Number (float_of_int v)) r.options.limit
    @ opt "max_length"
        (fun v -> Json.Number (float_of_int v))
        r.options.max_length
    @ (if r.options.simple then [ ("simple", Json.Bool true) ] else [])
    @ opt "deadline_ms" (fun v -> Json.Number v) r.options.deadline_ms
    @ opt "fuel" (fun v -> Json.Number (float_of_int v)) r.options.fuel
    @ opt "max_paths" (fun v -> Json.Number (float_of_int v)) r.options.max_paths
    @ opt "min_seq" (fun v -> Json.Number (float_of_int v)) r.options.min_seq
    @ opt "max_staleness_ms" (fun v -> Json.Number v) r.options.max_staleness_ms
    @ opt "from_seq" (fun v -> Json.Number (float_of_int v)) r.options.from_seq
    @ opt "epoch" (fun v -> Json.Number (float_of_int v)) r.options.epoch
  in
  let view_fields =
    match r.verb with
    | Views v ->
      let fields =
        [ ("action", Json.String (view_action_name v.action)) ]
        @ opt "name" (fun s -> Json.String s) v.view_name
        @ opt "word"
            (fun w -> Json.List (List.map (fun l -> Json.String l) w))
            v.word
        @ opt "query" (fun s -> Json.String s) v.view_query
        @ opt "measure" (fun s -> Json.String s) v.measure
        @ opt "top" (fun k -> Json.Number (float_of_int k)) v.top
      in
      [ ("view", Json.Obj fields) ]
    | Query | Count | Lint | Stats | Ping | Shutdown | Health | Sub -> []
  in
  Json.to_string
    (Json.Obj
       ([ ("mrpa", Json.String version) ]
       @ (match r.id with Json.Null -> [] | id -> [ ("id", id) ])
       @ [ ("verb", Json.String (verb_name r.verb)) ]
       @ view_fields
       @ (match r.query with None -> [] | Some q -> [ ("query", Json.String q) ])
       @
       match option_fields with
       | [] -> []
       | fields -> [ ("options", Json.Obj fields) ]))

(* --- Limits and clamping ----------------------------------------------- *)

type limits = {
  max_deadline_ms : float option;
  max_fuel : int option;
  max_live_paths : int option;
  max_limit : int option;
  max_length_cap : int;
  min_staleness_ms : float option;
}

let default_limits =
  {
    max_deadline_ms = None;
    max_fuel = None;
    max_live_paths = None;
    max_limit = None;
    max_length_cap = 16;
    min_staleness_ms = None;
  }

(* The server's ceiling always applies: an unset request inherits it, a set
   request is capped by it. *)
let cap_by le cap requested =
  match (cap, requested) with
  | None, r -> r
  | Some c, None -> Some c
  | Some c, Some r -> Some (if le r c then r else c)

let clamp limits o =
  {
    o with
    deadline_ms = cap_by ( <= ) limits.max_deadline_ms o.deadline_ms;
    fuel = cap_by ( <= ) limits.max_fuel o.fuel;
    max_paths = cap_by ( <= ) limits.max_live_paths o.max_paths;
    limit = cap_by ( <= ) limits.max_limit o.limit;
    max_length =
      Some
        (match o.max_length with
        | None -> min Engine.default_max_length limits.max_length_cap
        | Some m -> min m limits.max_length_cap);
    (* Staleness is the one knob clamped from below: asking for data
       fresher than the server is willing to promise gets the server's
       floor, not an error. An unset request stays unset — the client did
       not opt into bounded staleness. *)
    max_staleness_ms =
      (match (o.max_staleness_ms, limits.min_staleness_ms) with
      | None, _ -> None
      | Some r, None -> Some r
      | Some r, Some floor -> Some (Float.max r floor));
  }

let budget_of_options o =
  Budget.create ?deadline_ms:o.deadline_ms ?fuel:o.fuel ?max_live:o.max_paths ()

(* --- Responses --------------------------------------------------------- *)

type error_code =
  | Bad_request
  | Query_error
  | Overloaded
  | Shutting_down
  | Internal
  | Request_too_large
  | Idle_timeout
  | Infeasible
  | Unauthorized
  | Stale
  | Unknown_view

let error_code_name = function
  | Bad_request -> "bad_request"
  | Query_error -> "query_error"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"
  | Request_too_large -> "request_too_large"
  | Idle_timeout -> "idle_timeout"
  | Infeasible -> "infeasible"
  | Unauthorized -> "unauthorized"
  | Stale -> "stale"
  | Unknown_view -> "unknown_view"

let esc = Metrics.escape_string

let envelope ~id ~ok fields =
  let all =
    [ ("mrpa", esc version); ("id", Json.to_string id);
      ("ok", if ok then "true" else "false") ]
    @ fields
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> esc k ^ ":" ^ v) all)
  ^ "}"

let response_ok ~id fields = envelope ~id ~ok:true fields

let response_error ~id ~code message =
  envelope ~id ~ok:false
    [
      ( "error",
        Printf.sprintf "{%s:%s,%s:%s}" (esc "code")
          (esc (error_code_name code))
          (esc "message") (esc message) );
    ]
