open Mrpa_graph

(* One journal record as it travels the wire: the exact framed line from
   the primary's journal ("SEQ\tCRC\tPAYLOAD", no newline) plus its parsed
   sequence number. Keeping the bytes verbatim means the replica validates
   with the same CRC the disk format uses — the stream cannot silently
   diverge from the file. *)
type record = { seq : int; line : string }

(* --- Deterministic fault plane ------------------------------------------ *)

(* Same discipline as {!Mrpa_graph.Io_fault}: a single global slot, armed
   with (kind, n), firing on the n-th record pushed through {!Fault.apply}
   and disarming itself. Counting covers record lines only — heartbeats
   and comments bypass the plane — so "the 3rd record" means the same
   thing regardless of timing. *)
module Fault = struct
  type kind = Drop | Duplicate | Reorder | Tear

  let kind_name = function
    | Drop -> "drop"
    | Duplicate -> "duplicate"
    | Reorder -> "reorder"
    | Tear -> "tear"

  type action = Deliver of string | Tear_after of string

  let armed : (kind * int) option ref = ref None
  let count = ref 0
  let held : string option ref = ref None

  let arm kind ~at =
    if at < 1 then invalid_arg "Replication.Fault.arm: at must be >= 1";
    armed := Some (kind, at);
    count := 0;
    held := None

  let disarm () =
    armed := None;
    count := 0;
    held := None

  let apply line =
    (* A held (reordered) record is flushed behind the next one, swapping
       their order on the wire. *)
    let flush tail =
      match !held with
      | Some h ->
        held := None;
        tail @ [ Deliver h ]
      | None -> tail
    in
    incr count;
    match !armed with
    | Some (kind, at) when !count = at -> (
      armed := None;
      match kind with
      | Drop -> flush []
      | Duplicate -> flush [ Deliver line; Deliver line ]
      | Tear ->
        flush [ Tear_after (String.sub line 0 (String.length line / 2)) ]
      | Reorder ->
        held := Some line;
        [])
    | _ -> flush [ Deliver line ]
end

(* --- Primary side: tail the journal ------------------------------------- *)

module Source = struct
  type t = {
    path : string;
    mutable graph : Digraph.t;
    (* Identity of the file generation being tailed. A compaction renames
       a fresh file over the path (new inode) and resequences from 1, so
       identity or size regression means: new epoch, start over. *)
    mutable ino : int;
    mutable dev : int;
    mutable offset : int;  (* bytes consumed (complete lines + carry) *)
    mutable carry : string;  (* unterminated trailing fragment *)
    mutable last_seq : int;
    mutable epoch : int;
    mutable header_seen : bool;
    mutable history : record list;  (* newest first, this epoch *)
    mutable wedged : string option;
    (* One free rescan per file identity: a parse failure may just mean
       the bytes shifted under us (in-place truncation plus re-append
       between two polls), which a restart from offset 0 resolves. A
       second failure on the same identity is real corruption. *)
    mutable rescanned : bool;
  }

  let create path =
    {
      path;
      graph = Digraph.create ();
      ino = -1;
      dev = -1;
      offset = 0;
      carry = "";
      last_seq = 0;
      epoch = 0;
      header_seen = false;
      history = [];
      wedged = None;
      rescanned = false;
    }

  let graph t = t.graph
  let last_seq t = t.last_seq
  let epoch t = t.epoch
  let wedged t = t.wedged

  let reset_state t =
    t.graph <- Digraph.create ();
    t.offset <- 0;
    t.carry <- "";
    t.last_seq <- 0;
    t.header_seen <- false;
    t.history <- [];
    t.wedged <- None;
    t.epoch <- t.epoch + 1

  let wedge t reason =
    t.wedged <- Some (Printf.sprintf "%s: %s" t.path reason)

  (* Consume one complete line; returns the applied record, if any. *)
  let handle_line t line =
    if not t.header_seen then
      if line = Journal.v2_header then begin
        t.header_seen <- true;
        None
      end
      else if Journal.is_comment line then None
      else begin
        wedge t "not a v2 journal (missing header); cannot stream it";
        None
      end
    else if Journal.is_comment line then None
    else
      match Journal.parse_frame line with
      | Journal.Frame (seq, payload) when seq = t.last_seq + 1 -> (
        match Journal.apply_payload t.graph payload with
        | Ok () ->
          t.last_seq <- seq;
          let r = { seq; line } in
          t.history <- r :: t.history;
          Some r
        | Error reason ->
          wedge t (Printf.sprintf "record %d does not apply: %s" seq reason);
          None)
      | Journal.Frame (seq, _) ->
        wedge t
          (Printf.sprintf "sequence gap: expected %d, found %d" (t.last_seq + 1)
             seq);
        None
      | Journal.Bad_crc ->
        wedge t
          (Printf.sprintf "checksum mismatch after record %d" t.last_seq);
        None
      | Journal.Not_frame ->
        wedge t
          (Printf.sprintf "malformed record line after record %d" t.last_seq);
        None

  let poll t =
    match open_in_bin t.path with
    | exception Sys_error _ -> []  (* not created yet; nothing to stream *)
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (* Identity and size come from the open descriptor, so a rename
             racing with this poll cannot mix two files' bytes. *)
          let st = Unix.fstat (Unix.descr_of_in_channel ic) in
          let new_identity =
            t.ino >= 0 && (st.Unix.st_ino <> t.ino || st.Unix.st_dev <> t.dev)
          in
          if new_identity then begin
            reset_state t;
            t.rescanned <- false
          end
          else if st.Unix.st_size < t.offset then
            (* Same file, shrunk: attach() truncating a torn tail in
               place. Everything we parsed may have moved; start over. *)
            reset_state t;
          t.ino <- st.Unix.st_ino;
          t.dev <- st.Unix.st_dev;
          if t.wedged <> None then []
          else begin
            let len = in_channel_length ic in
            let chunk =
              if len <= t.offset then ""
              else begin
                seek_in ic t.offset;
                really_input_string ic (len - t.offset)
              end
            in
            t.offset <- t.offset + String.length chunk;
            let data = t.carry ^ chunk in
            let applied = ref [] in
            let pos = ref 0 in
            let n = String.length data in
            (try
               while !pos < n && t.wedged = None do
                 match String.index_from_opt data !pos '\n' with
                 | None -> raise Exit
                 | Some i ->
                   let line = String.sub data !pos (i - !pos) in
                   pos := i + 1;
                   (match handle_line t line with
                   | Some r -> applied := r :: !applied
                   | None -> ())
               done
             with Exit -> ());
            if t.wedged <> None && not t.rescanned then begin
              (* The one free retry: rescan this identity from scratch
                 next poll. Subscribers see it as an epoch bump. *)
              t.rescanned <- true;
              reset_state t;
              []
            end
            else begin
              t.carry <- String.sub data !pos (n - !pos);
              List.rev !applied
            end
          end)

  type backlog = Tail of record list | Reset of record list

  let backlog t ~from_seq ~epoch =
    let all () = List.rev t.history in
    if epoch <> t.epoch || from_seq < 1 || from_seq > t.last_seq + 1 then
      Reset (all ())
    else Tail (List.filter (fun r -> r.seq >= from_seq) (all ()))
end

(* --- Replica side: apply the stream ------------------------------------- *)

let heartbeat_prefix = "#hb "
let heartbeat ~seq = heartbeat_prefix ^ string_of_int seq

module Apply = struct
  type t = {
    mutable graph : Digraph.t;
    mutable last_applied : int;
    mutable primary_seq : int;
  }

  let create () = { graph = Digraph.create (); last_applied = 0; primary_seq = 0 }
  let graph t = t.graph
  let last_applied t = t.last_applied
  let primary_seq t = t.primary_seq
  let note_primary_seq t seq = if seq > t.primary_seq then t.primary_seq <- seq

  let reset t =
    t.graph <- Digraph.create ();
    t.last_applied <- 0;
    t.primary_seq <- 0

  type outcome = Applied of int | Skipped | Heartbeat of int | Resync of string

  let apply_line t line =
    if line = "" then Skipped
    else if line.[0] = '#' then
      if String.starts_with ~prefix:heartbeat_prefix line then begin
        match
          int_of_string_opt
            (String.sub line
               (String.length heartbeat_prefix)
               (String.length line - String.length heartbeat_prefix))
        with
        | Some seq when seq >= 0 ->
          note_primary_seq t seq;
          (* A heartbeat naming records we never received means they were
             lost in flight (the stream is FIFO, so anything sent before
             it already arrived): resubscribe rather than lag forever. *)
          if seq > t.last_applied then
            Resync
              (Printf.sprintf "heartbeat at seq %d but only %d applied" seq
                 t.last_applied)
          else Heartbeat seq
        | _ -> Skipped
      end
      else Skipped
    else
      match Journal.parse_frame line with
      | Journal.Frame (seq, payload) ->
        note_primary_seq t seq;
        if seq <= t.last_applied then Skipped  (* duplicate: already applied *)
        else if seq = t.last_applied + 1 then (
          match Journal.apply_payload t.graph payload with
          | Ok () ->
            t.last_applied <- seq;
            Applied seq
          | Error reason ->
            Resync (Printf.sprintf "record %d does not apply: %s" seq reason))
        else
          Resync
            (Printf.sprintf "sequence gap: expected %d, received %d"
               (t.last_applied + 1) seq)
      | Journal.Bad_crc -> Resync "record failed its checksum"
      | Journal.Not_frame -> Resync "malformed record line"
end
