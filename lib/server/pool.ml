type t = {
  queue : (unit -> unit) Queue.t;
  capacity : int;
  lock : Mutex.t;
  nonempty : Condition.t;  (* signalled on enqueue and on shutdown *)
  mutable stopping : bool;
  mutable running : int;
  mutable errors : int;
  mutable threads : Thread.t list;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Workers block on [nonempty] until there is a job or the pool is
   stopping; on stop they finish draining the queue before exiting, which
   is what makes [shutdown] graceful. *)
let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping && drained *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      (try job ()
       with _ ->
         Mutex.lock t.lock;
         t.errors <- t.errors + 1;
         Mutex.unlock t.lock);
      Mutex.lock t.lock;
      t.running <- t.running - 1;
      Mutex.unlock t.lock;
      next ()
    end
  in
  next ()

let create ~workers ~queue_capacity =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Pool.create: queue_capacity must be >= 1";
  let t =
    {
      queue = Queue.create ();
      capacity = queue_capacity;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      running = 0;
      errors = 0;
      threads = [];
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create worker_loop t);
  t

let submit t job =
  with_lock t (fun () ->
      if t.stopping || Queue.length t.queue >= t.capacity then false
      else begin
        Queue.push job t.queue;
        Condition.signal t.nonempty;
        true
      end)

let queued t = with_lock t (fun () -> Queue.length t.queue)
let running t = with_lock t (fun () -> t.running)
let job_errors t = with_lock t (fun () -> t.errors)

let shutdown t =
  let threads =
    with_lock t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.nonempty;
        let ts = t.threads in
        t.threads <- [];
        ts)
  in
  List.iter Thread.join threads
