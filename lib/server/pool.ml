exception Fatal of string

type t = {
  queue : (unit -> unit) Queue.t;
  capacity : int;
  lock : Mutex.t;
  nonempty : Condition.t;  (* signalled on enqueue and on shutdown *)
  mutable stopping : bool;
  mutable running : int;
  mutable errors : int;
  mutable restarts : int;
  mutable threads : Thread.t list;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Workers block on [nonempty] until there is a job or the pool is
   stopping; on stop they finish draining the queue before exiting, which
   is what makes [shutdown] graceful. A job that raises [Fatal] kills its
   worker (after the running count is restored) — the supervisor below
   restarts a replacement. *)
let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping && drained *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      let fatal =
        match job () with
        | () -> None
        | exception (Fatal _ as f) -> Some f
        | exception _ ->
          Mutex.lock t.lock;
          t.errors <- t.errors + 1;
          Mutex.unlock t.lock;
          None
      in
      Mutex.lock t.lock;
      t.running <- t.running - 1;
      (match fatal with Some _ -> t.errors <- t.errors + 1 | None -> ());
      Mutex.unlock t.lock;
      match fatal with Some f -> raise f | None -> next ()
    end
  in
  next ()

(* Supervision: a worker must never silently shrink the pool. If the loop
   exits abnormally, spawn a replacement (unless the pool is stopping —
   then dying is just a noisy way of draining) and count the restart. The
   spawn and the bookkeeping happen under one lock section so [shutdown]
   either sees the replacement in [threads] (and joins it) or has already
   set [stopping] (and no replacement is made). *)
let rec worker_main t () =
  try worker_loop t
  with _ ->
    with_lock t (fun () ->
        if not t.stopping then begin
          t.restarts <- t.restarts + 1;
          t.threads <- Thread.create (worker_main t) () :: t.threads
        end)

let create ~workers ~queue_capacity =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Pool.create: queue_capacity must be >= 1";
  let t =
    {
      queue = Queue.create ();
      capacity = queue_capacity;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      running = 0;
      errors = 0;
      restarts = 0;
      threads = [];
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create (worker_main t) ());
  t

let submit t job =
  with_lock t (fun () ->
      if t.stopping || Queue.length t.queue >= t.capacity then false
      else begin
        Queue.push job t.queue;
        Condition.signal t.nonempty;
        true
      end)

let queued t = with_lock t (fun () -> Queue.length t.queue)
let running t = with_lock t (fun () -> t.running)
let job_errors t = with_lock t (fun () -> t.errors)
let restarts t = with_lock t (fun () -> t.restarts)

let shutdown t =
  let threads =
    with_lock t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.nonempty;
        let ts = t.threads in
        t.threads <- [];
        ts)
  in
  List.iter Thread.join threads
