(** Shard maps: the static partitioning contract of the sharded serving
    tier ({!Router}).

    A shard map names the N shards of a deployment and, for each, the
    ordered endpoint list of its PR 8 replication group (primary first,
    replicas after — the same list a failover client would pass to
    [--endpoints]). Placement is by hash of the {e tail} vertex: the edge
    [(i, α, j)] lives on shard [owner map i], so the selector dispatch of
    the router can target exactly the shards that may own matching edges,
    and the algebra's [./∘] adjacency condition becomes the shard-boundary
    handoff (ROADMAP, scale-out item).

    The on-disk form is line-oriented, versioned like the journal:

    {v
    # mrpa.shardmap/1
    shard s0 unix:/var/run/mrpa/s0.sock
    shard s1 tcp:10.0.0.2:7440 tcp:10.0.0.3:7440
    v}

    ['#'] comments and blank lines are ignored after the header. The hash
    is CRC-32 ({!Mrpa_graph.Crc32}) over the vertex name, reduced modulo
    the shard count — deterministic across processes and restarts, which
    is what makes the map a {e contract}: the partitioner
    ([mrpa partition]) and the router agree on placement by construction,
    with no coordination at runtime. *)

type shard = {
  name : string;  (** unique within the map; travels in error responses. *)
  endpoints : Wire.endpoint list;
      (** failover order: primary first, then replicas. Never empty. *)
}

type t

val magic : string
(** The required first line, ["# mrpa.shardmap/1"]. *)

val of_string : string -> (t, string) result
(** Parse a map; errors name the offending line. A valid map has the
    version header, at least one shard, unique shard names, and at least
    one endpoint per shard. *)

val load : string -> (t, string) result
(** [of_string] over a file's contents; [Error] also covers I/O failure. *)

val to_string : t -> string
(** Canonical rendering (header + one [shard] line per shard, in index
    order); [of_string (to_string m)] re-reads the same map. *)

val shards : t -> shard list
(** In index order. *)

val n_shards : t -> int

val shard : t -> int -> shard
(** By index; raises [Invalid_argument] out of range. *)

val index_of : t -> string -> int option
(** Shard index by name. *)

val owner : t -> string -> int
(** [owner m vertex_name] is the index of the shard that owns every edge
    whose tail is that vertex: [crc32 name mod n_shards]. Total — unknown
    vertices hash like any other string. *)

val owner_name : t -> string -> string
(** [(shard m (owner m v)).name]. *)

(** {1 Partitioning}

    The write-side half of the contract: split a whole graph into the
    per-shard graphs the map describes. Every shard receives the {e full
    vertex universe} (as isolated-vertex directives where it owns no
    edges) so vertex names resolve on every shard — the router relies on
    this to distinguish "no matching edges here" from "unknown name
    everywhere" (see DESIGN §11). Labels are only present where an owned
    edge carries them. *)

val partition : t -> Mrpa_graph.Digraph.t -> Mrpa_graph.Digraph.t array
(** [partition m g] is one graph per shard, index-aligned with the map:
    all of [V], plus the edges whose tail it owns. The union of the parts
    is exactly [g]; the parts' edge sets are disjoint. *)

val write_partition :
  t -> Mrpa_graph.Digraph.t -> dir:string -> (string * int) list
(** Partition and save each part as [dir/<shard-name>.tsv] (creating
    [dir] if missing); returns [(path, n_edges)] per shard, in index
    order. *)
