(** Live materialized views: a named registry of §IV-C single-relational
    projections over the server's live graph.

    Each view is either a {e word} view — a fixed label word [α₁…αₖ],
    backed by {!Mrpa_analysis.Derived_view}'s rank-1 incremental
    maintenance and therefore updated synchronously with every edge
    observer event — or an {e expression} view — an arbitrary regular path
    query, too general for delta maintenance, kept by {e dirty-marking}:
    the registry stores the last bounded re-projection together with the
    journal sequence number it reflects, and a read whose [snap_seq] has
    moved past that number triggers a fresh {!Mrpa_analysis.Projection.path_derived_expr}
    against the caller's frozen snapshot.

    {b Threading contract.} The registry has one internal mutex, a {e leaf}
    in the server's lock order: it is taken inside the role lock
    (registration, observer dispatch during journal application) and on its
    own by session/worker reads, and no registry operation ever acquires
    another lock. Expensive work — expression re-projection — runs with the
    mutex {e released}; only the compare-and-store of the result is locked,
    so a slow re-projection can never stall replication apply.

    Word views are built by whoever holds the live graph's mutation lock
    (the role thread between batches, or a session thread holding the role
    lock): {!register} and {!rebind} read the live graph, so the caller
    must guarantee no concurrent mutation. Reads never touch the live
    graph — word state lives in the view's matrices, expression state in
    the cached projection.

    {b Consistency contract} (DESIGN §10): a word view reflects {e every}
    edge event the live graph has fired — i.e. at least [snap_seq], and
    possibly writes newer than the serving snapshot; an expression view
    reflects exactly the snapshot it was last projected from, recorded in
    [i_as_of_seq]. An epoch reset ({!rebind}) rebuilds word views from the
    replacement graph and invalidates every expression projection, because
    sequence numbers may restart after compaction. *)

open Mrpa_graph

type t

type form =
  | Word of string list  (** label {e names}; resolved per graph binding. *)
  | Expr of { query : string; max_length : int }
      (** query text, re-parsed against whichever graph it is projected
          from (expressions embed per-graph label ids), and the clamped
          star-unrolling bound fixed at registration. *)

val create : unit -> t

val attach : t -> Digraph.t -> unit
(** Install the registry's edge observers on a live graph and make it the
    binding for word-view builds. No observers are installed on a frozen
    graph (static data: views never change after registration). *)

val rebind : t -> Digraph.t -> unit
(** Epoch reset: the live graph was {e replaced} (journal compaction on a
    primary, a reset handoff on a replica). Re-installs observers on the
    replacement, rebuilds every word view against it by label {e name}
    (interning order may differ across epochs), and invalidates every
    expression projection. Caller must hold the mutation lock of the new
    graph, as for {!register}. *)

val register : t -> name:string -> graph:Digraph.t -> form -> (unit, string) result
(** Add a view. Word views are materialised immediately from [graph]
    (labels that are not yet interned leave the view {e unbound} — it reads
    as empty and binds itself on the first edge event that makes the word
    resolvable). Expression views start unprojected; the caller is expected
    to have validated the query (the server compiles it against its
    snapshot for admission control first). [Error] on duplicate names,
    empty words, or empty names. *)

val drop : t -> string -> bool
(** Remove a view; [false] if the name is unknown. A dropped word view is
    simply no longer dispatched to — observers stay installed (they are
    shared by the whole registry). *)

val count : t -> int

type read_error =
  | Unknown_view
  | Projection_failed of string
      (** the expression no longer parses against the current graph (e.g.
          a name vanished across an epoch reset). *)

val simple_graph :
  t ->
  name:string ->
  snap_seq:int ->
  reproject:
    (query:string ->
    max_length:int ->
    (Mrpa_analysis.Simple_graph.t * bool * int, string) result) ->
  (Mrpa_analysis.Simple_graph.t * bool, read_error) result
(** The view's current derived graph, plus whether it is {e partial} (an
    expression re-projection tripped its budget and banked a sound subset).
    Word views answer from their matrices (unbound reads as empty). A
    stale expression view calls [reproject ~query ~max_length] with the
    registry mutex released; the callback returns the fresh projection,
    its partial flag, and the sequence number it reflects — the result is
    stored back only if the view still exists and is not newer already. *)

val counts :
  t ->
  name:string ->
  snap_seq:int ->
  reproject:
    (query:string ->
    max_length:int ->
    (Mrpa_analysis.Simple_graph.t * bool * int, string) result) ->
  ((int * int * float) list * bool, read_error) result
(** Like {!simple_graph} but with per-pair path counts. Word views report
    the count matrix [C_w]; expression projections are boolean, so every
    derived edge counts 1. *)

type info = {
  i_name : string;
  i_kind : string;  (** ["word"] or ["expr"]. *)
  i_spec : string;  (** the word as [a.b.c], or the query text. *)
  i_max_length : int option;  (** expression views only. *)
  i_vertices : int;
  i_edges : int;
  i_rebuilds : int;  (** word views: dimension-growth full rebuilds. *)
  i_updates : int;  (** word views: rank-1 maintenance ops. *)
  i_reprojections : int;  (** expression views: re-projection runs. *)
  i_bound : bool;  (** word views: all labels currently resolve. *)
  i_dirty : bool;  (** expression views: a read now would re-project. *)
  i_partial : bool;  (** the stored projection is a budgeted subset. *)
  i_as_of_seq : int;
      (** word: the caller's [snap_seq] (a lower bound — word views are
          synchronous with the live stream); expr: the sequence of the
          stored projection, [-1] when never projected or invalidated. *)
  i_staleness_ms : float;
      (** ms since the view last folded in a change or was (re)built. *)
}

val list : t -> snap_seq:int -> info list
(** Registration order. *)

val totals : t -> int * int * int
(** [(rebuilds, updates, reprojections)] summed over the registry — the
    [server.view_*] stats counters. *)
