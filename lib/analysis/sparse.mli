(** Sparse matrices in compressed-sparse-row form.

    The multi-relational graph has a natural 3-way tensor representation
    (the paper's ref. [5]): one [|V| × |V|] adjacency slice per relation
    type. This module provides those slices and the (boolean and counting)
    matrix products that implement path-derived relations algebraically —
    the number of [αβ]-paths from [i] to [j] is [(A_α · A_β)(i,j)], and its
    boolean skeleton is exactly the [E_αβ] of §IV-C. EXP-T6 compares this
    route against the path-set join route. *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1]. *)
  col_idx : int array;  (** column of each stored entry, row-major. *)
  values : float array;  (** value of each stored entry. *)
}

val of_coo : rows:int -> cols:int -> (int * int * float) list -> t
(** Build from coordinate triples; duplicate coordinates are summed.
    Raises [Invalid_argument] on out-of-range indices. *)

val boolean_of_coo : rows:int -> cols:int -> (int * int) list -> t
(** Build a 0/1 matrix from coordinates (duplicates collapse to 1). *)

val identity : int -> t
val zero : rows:int -> cols:int -> t

val rows : t -> int
val cols : t -> int

val nnz : t -> int
(** Number of stored entries. *)

val get : t -> int -> int -> float
(** [get m i j]; zero for absent entries. *)

val to_coo : t -> (int * int * float) list
(** Stored entries in row-major order. *)

val mul : t -> t -> t
(** Real matrix product (counting semiring: entry = number of weighted
    two-step connections). Raises [Invalid_argument] on dimension
    mismatch. *)

val mul_bool : t -> t -> t
(** Boolean matrix product: entries are 0 or 1, recording existence. *)

val add : t -> t -> t

val transpose : t -> t

val mat_vec : t -> float array -> float array
(** [m · x]. *)

val vec_mat : float array -> t -> float array
(** [xᵀ · m] — the PageRank direction. *)

val power_bool : t -> int -> t
(** Boolean [m^k] ([k ≥ 0]; [m] must be square). *)

val map : (float -> float) -> t -> t
(** Entrywise map over stored entries (zeros stay zero; entries mapped to
    [0.] are dropped). *)

val equal : t -> t -> bool
(** Structural equality of the stored representation (after normalising
    away explicit zeros). *)

val pp : Format.formatter -> t -> unit
