type t = { n_components : int; component : int array }

(* Iterative Tarjan: explicit stacks so deep graphs cannot overflow the
   OCaml call stack. *)
let strongly_connected g =
  let n = Simple_graph.n_vertices g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let n_components = ref 0 in
  (* Work items: (vertex, next child offset). *)
  let visit root =
    let work = ref [ (root, 0) ] in
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, child) :: rest ->
        if child = 0 then begin
          index.(v) <- !next_index;
          lowlink.(v) <- !next_index;
          incr next_index;
          stack := v :: !stack;
          on_stack.(v) <- true
        end;
        let out = Simple_graph.out_neighbours g v in
        if child < Array.length out then begin
          let w = out.(child) in
          work := (v, child + 1) :: rest;
          if index.(w) < 0 then work := (w, 0) :: !work
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          (* all children done: close v *)
          work := rest;
          (match rest with
          | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            let c = !n_components in
            incr n_components;
            let rec pop () =
              match !stack with
              | [] -> ()
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                component.(w) <- c;
                if w <> v then pop ()
            in
            pop ()
          end
        end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  { n_components = !n_components; component }

let weakly_connected g =
  let n = Simple_graph.n_vertices g in
  let component = Array.make n (-1) in
  let n_components = ref 0 in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if component.(v) < 0 then begin
      let c = !n_components in
      incr n_components;
      component.(v) <- c;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let expand w =
          if component.(w) < 0 then begin
            component.(w) <- c;
            Queue.add w queue
          end
        in
        Array.iter expand (Simple_graph.out_neighbours g u);
        Array.iter expand (Simple_graph.in_neighbours g u)
      done
    end
  done;
  { n_components = !n_components; component }

let members t c =
  if c < 0 || c >= t.n_components then
    invalid_arg "Components.members: unknown component";
  let acc = ref [] in
  for v = Array.length t.component - 1 downto 0 do
    if t.component.(v) = c then acc := v :: !acc
  done;
  !acc

let largest t =
  if t.n_components = 0 then invalid_arg "Components.largest: empty partition";
  let sizes = Array.make t.n_components 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) t.component;
  let best = ref 0 in
  Array.iteri (fun c size -> if size > sizes.(!best) then best := c) sizes;
  (!best, sizes.(!best))

let condensation g =
  let t = strongly_connected g in
  let edges =
    List.filter_map
      (fun (u, v) ->
        let cu = t.component.(u) and cv = t.component.(v) in
        if cu <> cv then Some (cu, cv) else None)
      (Simple_graph.edges g)
  in
  (t, Simple_graph.of_edge_list ~n:t.n_components edges)

let same_component t u v = t.component.(u) = t.component.(v)
