open Mrpa_graph

type t = {
  graph : Digraph.t;
  word : Label.t list;
  positions : Label.t array; (* word as an array, 0-indexed *)
  mutable n : int; (* matrix dimension (vertex count at last (re)build) *)
  mutable slices : Sparse.t array; (* slices.(p) = current A_{word.(p)} *)
  mutable counts : Sparse.t;
  mutable rebuilds : int;
  mutable updates : int; (* rank-1 maintenance ops (rebuilds excluded) *)
}

let rebuild t =
  let g = t.graph in
  let n = Digraph.n_vertices g in
  t.n <- n;
  t.slices <- Array.map (fun alpha -> Projection.adjacency_slice g alpha) t.positions;
  t.counts <-
    Array.fold_left
      (fun acc slice -> Sparse.mul acc slice)
      (Sparse.identity n) t.slices;
  t.rebuilds <- t.rebuilds + 1

(* Sparse vector as (index, value) assoc; kept tiny by construction. *)
let vec_of_dense dense =
  let acc = ref [] in
  Array.iteri (fun i v -> if v <> 0.0 then acc := (i, v) :: !acc) dense;
  !acc

let dense_of_vec n vec =
  let dense = Array.make n 0.0 in
  List.iter (fun (i, v) -> dense.(i) <- dense.(i) +. v) vec;
  dense

let outer ~n u v =
  Sparse.of_coo ~rows:n ~cols:n
    (List.concat_map
       (fun (i, uv) -> List.map (fun (j, vv) -> (i, j, uv *. vv)) v)
       u)

(* ΔC for a ±1 change at (tail, head) of label [alpha]:
   Σ_{p : word.(p) = alpha} (new prefix < p) · Δ · (old suffix > p),
   where "new" slices are the old slice plus Δ at positions < p that carry
   alpha. Terms are computed as column/row vector products. *)
let apply_change t e sign =
  let tail = Vertex.to_int (Edge.tail e) in
  let head = Vertex.to_int (Edge.head e) in
  if tail >= t.n || head >= t.n then rebuild t
  else begin
    t.updates <- t.updates + 1;
    let alpha = Edge.label e in
    let k = Array.length t.positions in
    let delta_terms = ref [] in
    for p = 0 to k - 1 do
      if Label.equal t.positions.(p) alpha then begin
        (* column = (Π_{q<p} A_q^new) · e_tail, applying matrices right to
           left; positions q<p with label alpha use the NEW slice. *)
        let col = ref [ (tail, 1.0) ] in
        for q = p - 1 downto 0 do
          let base = Sparse.mat_vec t.slices.(q) (dense_of_vec t.n !col) in
          (* new slice effect: (A_q + sign·Δ)·x = A_q·x + sign·x(head)·e_tail *)
          if Label.equal t.positions.(q) alpha then begin
            let x = dense_of_vec t.n !col in
            base.(tail) <- base.(tail) +. (sign *. x.(head))
          end;
          col := vec_of_dense base
        done;
        (* row = e_headᵀ · (Π_{q>p} A_q^old), applying left to right *)
        let row = ref [ (head, 1.0) ] in
        for q = p + 1 to k - 1 do
          row := vec_of_dense (Sparse.vec_mat (dense_of_vec t.n !row) t.slices.(q))
        done;
        delta_terms := outer ~n:t.n !col (List.map (fun (j, v) -> (j, sign *. v)) !row) :: !delta_terms
      end
    done;
    List.iter (fun d -> t.counts <- Sparse.add t.counts d) !delta_terms;
    (* finally commit the slice update at every matching position *)
    let delta_slice = Sparse.of_coo ~rows:t.n ~cols:t.n [ (tail, head, sign) ] in
    Array.iteri
      (fun p lbl ->
        if Label.equal lbl alpha then
          t.slices.(p) <- Sparse.add t.slices.(p) delta_slice)
      t.positions
  end

let create ?(subscribe = true) g word =
  if word = [] then invalid_arg "Derived_view.create: empty word";
  let t =
    {
      graph = g;
      word;
      positions = Array.of_list word;
      n = 0;
      slices = [||];
      counts = Sparse.identity 0;
      rebuilds = -1;
      (* rebuild below brings it to 0 *)
      updates = 0;
    }
  in
  rebuild t;
  if subscribe then begin
    Digraph.on_edge_added g (fun e -> apply_change t e 1.0);
    Digraph.on_edge_removed g (fun e -> apply_change t e (-1.0))
  end;
  t

let apply_added t e = apply_change t e 1.0
let apply_removed t e = apply_change t e (-1.0)

let word t = t.word
let counts t = t.counts

let simple_graph t =
  Simple_graph.of_edge_list ~n:t.n
    (List.map (fun (i, j, _) -> (i, j)) (Sparse.to_coo t.counts))

let pair_count t i j =
  if Vertex.to_int i >= t.n || Vertex.to_int j >= t.n then 0
  else int_of_float (Sparse.get t.counts (Vertex.to_int i) (Vertex.to_int j))

let n_rebuilds t = t.rebuilds
let n_updates t = t.updates

let is_consistent t =
  let fresh =
    List.fold_left
      (fun acc alpha -> Sparse.mul acc (Projection.adjacency_slice t.graph alpha))
      (Sparse.identity (Digraph.n_vertices t.graph))
      t.word
  in
  t.n = Digraph.n_vertices t.graph && Sparse.equal t.counts fresh
