(** Constructing semantically-rich single-relational graphs (paper, §IV-C).

    Three ways to get a single-relational graph out of a multi-relational
    one, in increasing order of sophistication — exactly the three methods
    the paper discusses:

    - {!label_blind}: ignore labels (and collapse parallel edges). The paper
      warns this muddles the semantics of downstream algorithms; EXP-T6
      quantifies the difference.
    - {!single_label}: extract one relation,
      [E_α = {(γ⁻(e), γ⁺(e)) | e ∈ E ∧ ω(e) = α}].
    - path-derived: infer abstract relationships through paths, e.g.
      [E_αβ = ⋃_{a ∈ A ./∘ B} (γ⁻(a), γ⁺(a))] — via the algebra
      ({!path_derived}), via a regular path generator
      ({!path_derived_expr}), or via the tensor-slice boolean matrix product
      ({!path_derived_matrix}, the route of the paper's ref. [5]). All three
      agree; property tests enforce it. *)

open Mrpa_graph
open Mrpa_core

val label_blind : Digraph.t -> Simple_graph.t
(** Forget labels; vertex ids are preserved. *)

val single_label : Digraph.t -> Label.t -> Simple_graph.t
(** The [E_α] extraction. *)

val path_derived : Digraph.t -> Label.t list -> Simple_graph.t
(** [E_{α₁…αₖ}]: endpoints of all joint paths whose label word is the given
    sequence, computed with the concatenative join ({!Mrpa_core.Traversal.labeled}).
    The empty list yields the identity-free empty graph. *)

val path_derived_expr :
  ?guard:Guard.t -> Digraph.t -> Expr.t -> max_length:int -> Simple_graph.t
(** §IV-C with a regular path generator: endpoints of every generated
    path.

    With [?guard] the underlying generation polls at every expansion and an
    abort yields the projection of the paths banked so far — a sound {e
    subset} of the full derived graph, never a wrong edge. This was the
    last engine entry point that could not be cancelled; callers that need
    a verdict (the server's view re-projection) build an
    [Mrpa_engine.Budget.t], pass [Budget.guard b], and inspect
    [Budget.tripped b] afterwards to label the result partial. *)

val adjacency_slice : Digraph.t -> Label.t -> Sparse.t
(** The tensor slice [A_α] as a boolean [|V| × |V|] matrix. *)

val path_derived_matrix : Digraph.t -> Label.t list -> Sparse.t
(** [A_{α₁} ⊙ … ⊙ A_{αₖ}] under the boolean product — the matrix form of
    {!path_derived}. The empty list yields the identity matrix. *)
