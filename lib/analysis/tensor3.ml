open Mrpa_graph

type t = {
  n_vertices : int;
  n_labels : int;
  slices : Sparse.t array; (* indexed by label id *)
}

let of_digraph g =
  let n = Digraph.n_vertices g in
  let k = Digraph.n_labels g in
  let slices =
    Array.init k (fun l ->
        Sparse.boolean_of_coo ~rows:n ~cols:n
          (List.map
             (fun e ->
               (Vertex.to_int (Edge.tail e), Vertex.to_int (Edge.head e)))
             (Digraph.edges_with_label g (Label.of_int l))))
  in
  { n_vertices = n; n_labels = k; slices }

let n_vertices t = t.n_vertices
let n_labels t = t.n_labels

let nnz t = Array.fold_left (fun acc m -> acc + Sparse.nnz m) 0 t.slices

let known_label t l = Label.to_int l >= 0 && Label.to_int l < t.n_labels

let mem t i alpha j =
  known_label t alpha
  && Sparse.get t.slices.(Label.to_int alpha) (Vertex.to_int i) (Vertex.to_int j)
     <> 0.0

let slice t alpha =
  if known_label t alpha then t.slices.(Label.to_int alpha)
  else Sparse.zero ~rows:t.n_vertices ~cols:t.n_vertices

let label_sum t =
  Array.fold_left Sparse.add
    (Sparse.zero ~rows:t.n_vertices ~cols:t.n_vertices)
    t.slices

let contract t word =
  List.fold_left
    (fun acc alpha -> Sparse.mul acc (slice t alpha))
    (Sparse.identity t.n_vertices)
    word

let pp fmt t =
  Format.fprintf fmt "tensor %dx%dx%d, %d entries" t.n_vertices t.n_labels
    t.n_vertices (nnz t)
