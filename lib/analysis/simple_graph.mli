(** Compact single-relational directed graphs.

    §IV-C feeds derived graphs to "all known single-relational graph
    algorithms"; this is the representation those algorithms run on.
    Vertices are [0 .. n-1]; edges are unlabeled and deduplicated (a binary
    relation [⊆ V × V], matching [E_α] and [E_αβ] in the paper). *)

type t

val of_edge_list : n:int -> (int * int) list -> t
(** [n] vertices, edges deduplicated; raises [Invalid_argument] on
    out-of-range endpoints. *)

val n_vertices : t -> int
val n_edges : t -> int

val out_neighbours : t -> int -> int array
(** Sorted, duplicate-free. *)

val in_neighbours : t -> int -> int array

val out_degree : t -> int -> int
val in_degree : t -> int -> int
val mem_edge : t -> int -> int -> bool
val edges : t -> (int * int) list

val transpose : t -> t

val to_sparse : t -> Sparse.t
(** Boolean adjacency matrix. *)

val of_sparse_bool : Sparse.t -> t
(** From a (square) matrix: edge wherever an entry is non-zero. *)

val bfs_distances : t -> int -> int array
(** Unweighted shortest-path distances from a source over out-edges;
    [-1] marks unreachable vertices. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
