type scores = float array

let out_degree g =
  Array.init (Simple_graph.n_vertices g) (fun v ->
      float_of_int (Simple_graph.out_degree g v))

let in_degree g =
  Array.init (Simple_graph.n_vertices g) (fun v ->
      float_of_int (Simple_graph.in_degree g v))

let closeness g =
  let n = Simple_graph.n_vertices g in
  Array.init n (fun v ->
      let dist = Simple_graph.bfs_distances g v in
      let reachable = ref 0 and total = ref 0 in
      Array.iteri
        (fun u d ->
          if u <> v && d > 0 then begin
            incr reachable;
            total := !total + d
          end)
        dist;
      if !reachable = 0 || n <= 1 then 0.0
      else
        let r = float_of_int !reachable in
        r /. float_of_int (n - 1) *. (r /. float_of_int !total))

let harmonic_closeness g =
  let n = Simple_graph.n_vertices g in
  Array.init n (fun v ->
      let dist = Simple_graph.bfs_distances g v in
      let acc = ref 0.0 in
      Array.iteri
        (fun u d -> if u <> v && d > 0 then acc := !acc +. (1.0 /. float_of_int d))
        dist;
      !acc)

(* Brandes (2001), unweighted directed variant. *)
let betweenness g =
  let n = Simple_graph.n_vertices g in
  let bc = Array.make n 0.0 in
  for s = 0 to n - 1 do
    let stack = ref [] in
    let pred = Array.make n [] in
    let sigma = Array.make n 0.0 in
    let dist = Array.make n (-1) in
    sigma.(s) <- 1.0;
    dist.(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      stack := v :: !stack;
      Array.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end;
          if dist.(w) = dist.(v) + 1 then begin
            sigma.(w) <- sigma.(w) +. sigma.(v);
            pred.(w) <- v :: pred.(w)
          end)
        (Simple_graph.out_neighbours g v)
    done;
    let delta = Array.make n 0.0 in
    List.iter
      (fun w ->
        List.iter
          (fun v ->
            delta.(v) <-
              delta.(v) +. (sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w))))
          pred.(w);
        if w <> s then bc.(w) <- bc.(w) +. delta.(w))
      !stack
  done;
  bc

let l2_normalise x =
  let norm = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x) in
  if norm > 0.0 then Array.map (fun v -> v /. norm) x else x

let eigenvector ?(max_iter = 100) ?(eps = 1e-9) g =
  let n = Simple_graph.n_vertices g in
  if n = 0 then [||]
  else begin
    let x = ref (Array.make n (1.0 /. sqrt (float_of_int n))) in
    let continue_ = ref true in
    let iter = ref 0 in
    while !continue_ && !iter < max_iter do
      incr iter;
      let y = Array.make n 0.0 in
      (* y(v) = Σ_{u → v} x(u): centrality flows along edges. *)
      for u = 0 to n - 1 do
        Array.iter
          (fun v -> y.(v) <- y.(v) +. !x.(u))
          (Simple_graph.out_neighbours g u)
      done;
      let y = l2_normalise y in
      let diff =
        Array.fold_left max 0.0 (Array.mapi (fun i v -> abs_float (v -. !x.(i))) y)
      in
      x := y;
      if diff < eps then continue_ := false
    done;
    !x
  end

let pagerank ?(damping = 0.85) ?(max_iter = 100) ?(eps = 1e-12) g =
  let n = Simple_graph.n_vertices g in
  if n = 0 then [||]
  else begin
    let inv_n = 1.0 /. float_of_int n in
    let x = ref (Array.make n inv_n) in
    let continue_ = ref true in
    let iter = ref 0 in
    while !continue_ && !iter < max_iter do
      incr iter;
      let y = Array.make n 0.0 in
      let dangling = ref 0.0 in
      for u = 0 to n - 1 do
        let d = Simple_graph.out_degree g u in
        if d = 0 then dangling := !dangling +. !x.(u)
        else begin
          let share = !x.(u) /. float_of_int d in
          Array.iter
            (fun v -> y.(v) <- y.(v) +. share)
            (Simple_graph.out_neighbours g u)
        end
      done;
      let base = ((1.0 -. damping) +. (damping *. !dangling)) *. inv_n in
      let y = Array.map (fun v -> base +. (damping *. v)) y in
      let diff =
        Array.fold_left max 0.0 (Array.mapi (fun i v -> abs_float (v -. !x.(i))) y)
      in
      x := y;
      if diff < eps then continue_ := false
    done;
    !x
  end

let katz ?(alpha = 0.05) ?(max_iter = 200) ?(eps = 1e-10) g =
  let n = Simple_graph.n_vertices g in
  if n = 0 then [||]
  else begin
    let x = ref (Array.make n 1.0) in
    let continue_ = ref true in
    let iter = ref 0 in
    while !continue_ && !iter < max_iter do
      incr iter;
      let y = Array.make n 1.0 in
      (* y(v) = 1 + α · Σ_{u → v} x(u) *)
      for u = 0 to n - 1 do
        Array.iter
          (fun v -> y.(v) <- y.(v) +. (alpha *. !x.(u)))
          (Simple_graph.out_neighbours g u)
      done;
      let diff =
        Array.fold_left max 0.0 (Array.mapi (fun i v -> abs_float (v -. !x.(i))) y)
      in
      x := y;
      if diff < eps then continue_ := false
    done;
    !x
  end

let hits ?(max_iter = 100) ?(eps = 1e-9) g =
  let n = Simple_graph.n_vertices g in
  if n = 0 then ([||], [||])
  else begin
    let hubs = ref (Array.make n 1.0) in
    let auths = ref (Array.make n 1.0) in
    let continue_ = ref true in
    let iter = ref 0 in
    while !continue_ && !iter < max_iter do
      incr iter;
      let auths' = Array.make n 0.0 in
      for u = 0 to n - 1 do
        Array.iter
          (fun v -> auths'.(v) <- auths'.(v) +. !hubs.(u))
          (Simple_graph.out_neighbours g u)
      done;
      let auths' = l2_normalise auths' in
      let hubs' = Array.make n 0.0 in
      for u = 0 to n - 1 do
        Array.iter
          (fun v -> hubs'.(u) <- hubs'.(u) +. auths'.(v))
          (Simple_graph.out_neighbours g u)
      done;
      let hubs' = l2_normalise hubs' in
      let diff =
        max
          (Array.fold_left max 0.0
             (Array.mapi (fun i v -> abs_float (v -. !hubs.(i))) hubs'))
          (Array.fold_left max 0.0
             (Array.mapi (fun i v -> abs_float (v -. !auths.(i))) auths'))
      in
      hubs := hubs';
      auths := auths';
      if diff < eps then continue_ := false
    done;
    (!hubs, !auths)
  end

let spreading_activation ~seeds ?(decay = 0.85) ?(steps = 6) g =
  let n = Simple_graph.n_vertices g in
  let activation = Array.make n 0.0 in
  let inject () =
    List.iter
      (fun (v, a) ->
        if v < 0 || v >= n then
          invalid_arg "Centrality.spreading_activation: seed out of range";
        activation.(v) <- activation.(v) +. a)
      seeds
  in
  inject ();
  for _ = 1 to steps do
    let next = Array.make n 0.0 in
    for u = 0 to n - 1 do
      let d = Simple_graph.out_degree g u in
      if d > 0 && activation.(u) > 0.0 then begin
        let share = decay *. activation.(u) /. float_of_int d in
        Array.iter
          (fun v -> next.(v) <- next.(v) +. share)
          (Simple_graph.out_neighbours g u)
      end
    done;
    Array.blit next 0 activation 0 n;
    inject ()
  done;
  activation

let top_k k scores =
  let indexed = Array.to_list (Array.mapi (fun i s -> (i, s)) scores) in
  let sorted =
    List.sort
      (fun (i1, s1) (i2, s2) ->
        let c = Float.compare s2 s1 in
        if c <> 0 then c else Int.compare i1 i2)
      indexed
  in
  List.filteri (fun i _ -> i < k) sorted

let pp_ranking ?(k = 10) ~vertex_name fmt scores =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (v, s) -> Format.fprintf fmt "%-20s %.6f@," (vertex_name v) s)
    (top_k k scores);
  Format.fprintf fmt "@]"
