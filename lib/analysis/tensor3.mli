(** The 3-way adjacency-tensor view of a multi-relational graph.

    The paper's ref. [5] (Rodriguez & Shinavier) represents [G] as a
    [|V| × |Ω| × |V|] boolean tensor [A] with [A(i, α, j) = 1] iff
    [(i, α, j) ∈ E]. This module materialises that view as one sparse slice
    per relation type and provides the contractions §IV-C leans on:

    - {!slice}: the single-relation adjacency matrix [A_α] ([E_α] of the
      paper);
    - {!label_sum}: [Σ_α A_α], whose entry [(i,j)] counts the parallel
      relations between [i] and [j] — exactly the multiplicity that the
      binary baseline algebra ({!Mrpa_baseline.Label_recovery}) cannot
      recover;
    - {!contract}: the counting product along a label word, whose [(i,j)]
      entry is the number of distinct joint paths from [i] to [j] with that
      exact path label. Its boolean skeleton is [E_{α₁…αₖ}]. *)

open Mrpa_graph

type t

val of_digraph : Digraph.t -> t
(** Snapshot the graph (later graph mutations are not reflected). *)

val n_vertices : t -> int
val n_labels : t -> int

val nnz : t -> int
(** [|E|]. *)

val mem : t -> Vertex.t -> Label.t -> Vertex.t -> bool
(** [A(i, α, j) = 1]? Labels outside the snapshot are simply absent. *)

val slice : t -> Label.t -> Sparse.t
(** [A_α] as a boolean matrix; the zero matrix for unknown labels. *)

val label_sum : t -> Sparse.t
(** [Σ_α A_α] under real addition (entries are parallel-edge counts). *)

val contract : t -> Label.t list -> Sparse.t
(** [contract t \[α; β; …\] = A_α · A_β · …] under the counting semiring;
    the empty word gives the identity. Entry [(i,j)] is the number of joint
    paths [i → j] whose label word is exactly the argument. *)

val pp : Format.formatter -> t -> unit
