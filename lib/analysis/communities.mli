(** Community detection by (synchronous-free) label propagation.

    A lightweight clustering for the single-relational graphs §IV-C
    derives: every vertex starts in its own community and repeatedly adopts
    the most frequent community among its neighbours (ties broken towards
    the smallest id, vertices visited in a deterministic shuffled order per
    sweep), until a sweep changes nothing or [max_sweeps] is reached.
    Deterministic for a given seed. *)

type t = {
  n_communities : int;
  community : int array;  (** [community.(v)] in [0 .. n_communities - 1]. *)
}

val label_propagation :
  ?seed:int -> ?max_sweeps:int -> Simple_graph.t -> t
(** Undirected neighbourhoods (out ∪ in). Defaults: [seed 1],
    [max_sweeps 50]. Community ids are renumbered densely in order of first
    appearance. *)

val members : t -> int -> int list
val sizes : t -> int array

val modularity : Simple_graph.t -> t -> float
(** Newman modularity of the partition over the undirected view:
    [Q = Σ_c (within_c / m − (deg_c / 2m)²)] with [m] undirected edges.
    [nan] on edgeless graphs. *)
