(** Single-relational graph algorithms (the families named in §IV-C).

    Geodesic: {!closeness}, {!harmonic_closeness}, {!betweenness}.
    Spectral: {!eigenvector}, {!pagerank}, {!spreading_activation}.
    Degree:   {!out_degree}, {!in_degree}.

    All functions return one score per vertex id. They run on
    {!Simple_graph} values — i.e. on whatever projection of the
    multi-relational graph you chose; the paper's point is that the
    {e choice of projection} is where the semantics live. *)

type scores = float array

val out_degree : Simple_graph.t -> scores
val in_degree : Simple_graph.t -> scores

val closeness : Simple_graph.t -> scores
(** Wasserman–Faust normalised closeness over out-edge distances:
    [((r-1)/(n-1)) · ((r-1) / Σ d)] where [r] counts reachable vertices.
    Vertices reaching nothing score 0. *)

val harmonic_closeness : Simple_graph.t -> scores
(** [Σ_{u ≠ v} 1/d(v,u)], robust to disconnectedness. *)

val betweenness : Simple_graph.t -> scores
(** Brandes' algorithm, directed, unweighted: the fraction of shortest
    paths passing through each vertex (unnormalised pair counts). *)

val eigenvector : ?max_iter:int -> ?eps:float -> Simple_graph.t -> scores
(** Power iteration on [Aᵀ] (a vertex is central when pointed at by central
    vertices), L2-normalised. Returns the last iterate even without full
    convergence. *)

val pagerank :
  ?damping:float -> ?max_iter:int -> ?eps:float -> Simple_graph.t -> scores
(** Standard PageRank with uniform teleportation (default damping 0.85);
    dangling mass is redistributed uniformly. Scores sum to 1. *)

val katz : ?alpha:float -> ?max_iter:int -> ?eps:float -> Simple_graph.t -> scores
(** Katz centrality [x = α·Aᵀx + 1] by fixed-point iteration (default
    [α = 0.05]; choose [α] below the reciprocal spectral radius for
    convergence — the iteration simply stops at [max_iter] otherwise). *)

val hits :
  ?max_iter:int -> ?eps:float -> Simple_graph.t -> scores * scores
(** Kleinberg's HITS: returns [(hubs, authorities)], both L2-normalised.
    Hubs point at good authorities; authorities are pointed at by good
    hubs. *)

val spreading_activation :
  seeds:(int * float) list ->
  ?decay:float ->
  ?steps:int ->
  Simple_graph.t ->
  scores
(** Iterative activation spread: each step pushes every vertex's activation
    to its out-neighbours, attenuated by [decay] (default 0.85), splitting
    equally; seed activation is re-injected each step. [steps] defaults
    to 6. *)

val top_k : int -> scores -> (int * float) list
(** The [k] best (vertex, score) pairs, best first; ties by lower id. *)

val pp_ranking :
  ?k:int -> vertex_name:(int -> string) -> Format.formatter -> scores -> unit
(** Print the top-[k] (default 10) as a two-column table. *)
