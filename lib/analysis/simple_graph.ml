type t = {
  n : int;
  out : int array array;
  inc : int array array;
  n_edges : int;
}

let dedup_sorted a =
  let l = List.sort_uniq Int.compare (Array.to_list a) in
  Array.of_list l

let of_edge_list ~n edge_list =
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Simple_graph.of_edge_list: endpoint out of range")
    edge_list;
  let out_b = Array.make n [] in
  let in_b = Array.make n [] in
  let module P = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let distinct = P.of_list edge_list in
  P.iter
    (fun (i, j) ->
      out_b.(i) <- j :: out_b.(i);
      in_b.(j) <- i :: in_b.(j))
    distinct;
  {
    n;
    out = Array.map (fun l -> dedup_sorted (Array.of_list l)) out_b;
    inc = Array.map (fun l -> dedup_sorted (Array.of_list l)) in_b;
    n_edges = P.cardinal distinct;
  }

let n_vertices g = g.n
let n_edges g = g.n_edges
let out_neighbours g v = g.out.(v)
let in_neighbours g v = g.inc.(v)
let out_degree g v = Array.length g.out.(v)
let in_degree g v = Array.length g.inc.(v)

let mem_edge g i j =
  (* neighbour arrays are sorted *)
  let a = g.out.(i) in
  let rec bisect lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = j then true
      else if a.(mid) < j then bisect (mid + 1) hi
      else bisect lo mid
  in
  bisect 0 (Array.length a)

let edges g =
  let acc = ref [] in
  for i = g.n - 1 downto 0 do
    for k = Array.length g.out.(i) - 1 downto 0 do
      acc := (i, g.out.(i).(k)) :: !acc
    done
  done;
  !acc

let transpose g = { g with out = g.inc; inc = g.out }

let to_sparse g =
  Sparse.boolean_of_coo ~rows:g.n ~cols:g.n (edges g)

let of_sparse_bool m =
  if Sparse.rows m <> Sparse.cols m then
    invalid_arg "Simple_graph.of_sparse_bool: non-square matrix";
  of_edge_list ~n:(Sparse.rows m)
    (List.map (fun (i, j, _) -> (i, j)) (Sparse.to_coo m))

let bfs_distances g src =
  if src < 0 || src >= g.n then invalid_arg "Simple_graph.bfs_distances";
  let dist = Array.make g.n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w q
        end)
      g.out.(v)
  done;
  dist

let equal a b = a.n = b.n && a.out = b.out

let pp fmt g =
  Format.fprintf fmt "simple graph: %d vertices, %d edges" g.n g.n_edges
