(** Incrementally maintained derived relations.

    §IV-C's "semantically-rich single-relational graphs" are materialised
    views: [C_w(i,j)] counts the joint paths [i → j] whose label word is
    exactly [w = α₁…αₖ] (its boolean skeleton is [E_w]). A traversal engine
    that recomputes such views per edge change wastes [k−1] sparse matrix
    products; this module maintains them under single-edge insertions and
    removals with rank-1 algebra instead.

    A change [Δ = ±e_i·e_jᵀ] to the slice of label [α] perturbs the product
    [A_{α₁}···A_{αₖ}] by the telescoping sum

    [ΔC = Σ_{p : αₚ = α} (Π_{q<p} A_q^new) · Δ · (Π_{q>p} A_q^old)],

    and each term is an outer product of one column vector (a suffix of
    matrix–vector products) and one row vector — [O(k)] sparse matvecs per
    change, no matrix–matrix product.

    Views subscribe to {!Mrpa_graph.Digraph}'s change notifications, so a
    plain [Digraph.add_edge]/[remove_edge] keeps every registered view
    consistent. Inserting an edge that mentions a vertex unknown at view
    creation triggers a transparent full rebuild (matrix dimensions grow).
    Consistency against recomputation-from-scratch is property-tested. *)

open Mrpa_graph

type t

val create : ?subscribe:bool -> Digraph.t -> Label.t list -> t
(** Materialise the view for a (non-empty) label word over the graph's
    current state and subscribe to subsequent changes. Raises
    [Invalid_argument] on the empty word.

    With [~subscribe:false] no observers are installed; the caller drives
    maintenance explicitly through {!apply_added}/{!apply_removed}. This is
    the mode the server's view registry uses: it owns one observer pair on
    the live graph and dispatches to its views under a registry lock, so a
    view can also be {e detached} (dropped) by simply no longer being
    dispatched to — self-subscribed views cannot unsubscribe. *)

val apply_added : t -> Edge.t -> unit
(** Fold one edge insertion into the view (rank-1 update, or a transparent
    full rebuild when the edge mentions a vertex outside the current
    dimension). No-op semantics match the subscribed observer exactly. *)

val apply_removed : t -> Edge.t -> unit
(** Fold one edge removal into the view. *)

val word : t -> Label.t list

val counts : t -> Sparse.t
(** The current count matrix [C_w]. *)

val simple_graph : t -> Simple_graph.t
(** Boolean skeleton — the [E_w] of §IV-C, always current. *)

val pair_count : t -> Vertex.t -> Vertex.t -> int

val n_rebuilds : t -> int
(** How many full rebuilds occurred (dimension growth); diagnostics. *)

val n_updates : t -> int
(** How many rank-1 maintenance operations were applied (full rebuilds are
    counted by {!n_rebuilds}, not here); diagnostics and the server's
    [server.view_updates] counter. *)

val is_consistent : t -> bool
(** Recompute from scratch and compare — test/debug helper. *)
