open Mrpa_graph

type t = { n_communities : int; community : int array }

let neighbours g v =
  Array.to_list (Simple_graph.out_neighbours g v)
  @ Array.to_list (Simple_graph.in_neighbours g v)

let label_propagation ?(seed = 1) ?(max_sweeps = 50) g =
  let n = Simple_graph.n_vertices g in
  let community = Array.init n Fun.id in
  let order = Array.init n Fun.id in
  let rng = Prng.create seed in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps < max_sweeps do
    incr sweeps;
    changed := false;
    Prng.shuffle rng order;
    Array.iter
      (fun v ->
        match neighbours g v with
        | [] -> ()
        | ns ->
          (* most frequent neighbour community; ties to the smallest id *)
          let freq = Hashtbl.create 8 in
          List.iter
            (fun w ->
              let c = community.(w) in
              Hashtbl.replace freq c
                (1 + Option.value ~default:0 (Hashtbl.find_opt freq c)))
            ns;
          let best =
            Hashtbl.fold
              (fun c count acc ->
                match acc with
                | None -> Some (c, count)
                | Some (c', count') ->
                  if count > count' || (count = count' && c < c') then
                    Some (c, count)
                  else acc)
              freq None
          in
          (match best with
          | Some (c, _) when c <> community.(v) ->
            community.(v) <- c;
            changed := true
          | _ -> ()))
      order
  done;
  (* renumber densely in order of first appearance *)
  let renumber = Hashtbl.create 16 in
  let next = ref 0 in
  let community =
    Array.map
      (fun c ->
        match Hashtbl.find_opt renumber c with
        | Some c' -> c'
        | None ->
          let c' = !next in
          incr next;
          Hashtbl.add renumber c c';
          c')
      community
  in
  { n_communities = !next; community }

let members t c =
  let acc = ref [] in
  for v = Array.length t.community - 1 downto 0 do
    if t.community.(v) = c then acc := v :: !acc
  done;
  !acc

let sizes t =
  let s = Array.make t.n_communities 0 in
  Array.iter (fun c -> s.(c) <- s.(c) + 1) t.community;
  s

let modularity g t =
  (* undirected view: count each unordered adjacency once *)
  let n = Simple_graph.n_vertices g in
  let module P = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let undirected =
    List.fold_left
      (fun acc (u, v) -> P.add (min u v, max u v) acc)
      P.empty (Simple_graph.edges g)
  in
  let m = float_of_int (P.cardinal undirected) in
  if m = 0.0 then nan
  else begin
    let within = Array.make t.n_communities 0.0 in
    let degree = Array.make n 0.0 in
    P.iter
      (fun (u, v) ->
        degree.(u) <- degree.(u) +. 1.0;
        if u <> v then degree.(v) <- degree.(v) +. 1.0;
        if t.community.(u) = t.community.(v) then
          within.(t.community.(u)) <- within.(t.community.(u)) +. 1.0)
      undirected;
    let community_degree = Array.make t.n_communities 0.0 in
    Array.iteri
      (fun v d ->
        community_degree.(t.community.(v)) <-
          community_degree.(t.community.(v)) +. d)
      degree;
    let q = ref 0.0 in
    for c = 0 to t.n_communities - 1 do
      let frac_within = within.(c) /. m in
      let frac_degree = community_degree.(c) /. (2.0 *. m) in
      q := !q +. frac_within -. (frac_degree *. frac_degree)
    done;
    !q
  end
