open Mrpa_graph
open Mrpa_core

let vertex_pairs_to_graph g pairs =
  Simple_graph.of_edge_list ~n:(Digraph.n_vertices g)
    (List.map (fun (i, j) -> (Vertex.to_int i, Vertex.to_int j)) pairs)

let label_blind g =
  vertex_pairs_to_graph g
    (List.map (fun e -> (Edge.tail e, Edge.head e)) (Digraph.edges g))

let single_label g alpha =
  vertex_pairs_to_graph g
    (List.map
       (fun e -> (Edge.tail e, Edge.head e))
       (Digraph.edges_with_label g alpha))

let path_derived g labels =
  let word = List.map Label.Set.singleton labels in
  let paths = Traversal.labeled g ~labels:word in
  let paths = Path_set.filter (fun p -> not (Path.is_empty p)) paths in
  vertex_pairs_to_graph g (Path_set.endpoint_pairs paths)

let path_derived_expr ?guard g expr ~max_length =
  let paths = Mrpa_automata.Generator.generate ?guard g expr ~max_length in
  vertex_pairs_to_graph g (Path_set.endpoint_pairs paths)

let adjacency_slice g alpha =
  let n = Digraph.n_vertices g in
  Sparse.boolean_of_coo ~rows:n ~cols:n
    (List.map
       (fun e -> (Vertex.to_int (Edge.tail e), Vertex.to_int (Edge.head e)))
       (Digraph.edges_with_label g alpha))

let path_derived_matrix g labels =
  let n = Digraph.n_vertices g in
  List.fold_left
    (fun acc alpha -> Sparse.mul_bool acc (adjacency_slice g alpha))
    (Sparse.identity n) labels
