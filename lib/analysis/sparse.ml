type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let check_dims rows cols entries =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Sparse: index out of range")
    entries

(* Build CSR from triples: bucket per row, sort by column, sum duplicates,
   drop zeros. *)
let of_coo ~rows ~cols entries =
  check_dims rows cols entries;
  let buckets = Array.make rows [] in
  List.iter (fun (i, j, v) -> buckets.(i) <- (j, v) :: buckets.(i)) entries;
  let row_ptr = Array.make (rows + 1) 0 in
  let cells = ref [] in
  let count = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !count;
    let sorted =
      List.sort (fun (j1, _) (j2, _) -> Int.compare j1 j2) buckets.(i)
    in
    let rec collapse = function
      | [] -> []
      | (j, v) :: rest ->
        let same, rest' = List.partition (fun (j', _) -> j' = j) rest in
        let total = List.fold_left (fun acc (_, v') -> acc +. v') v same in
        if total = 0.0 then collapse rest' else (j, total) :: collapse rest'
    in
    let collapsed = collapse sorted in
    List.iter
      (fun cell ->
        cells := cell :: !cells;
        incr count)
      collapsed
  done;
  row_ptr.(rows) <- !count;
  let cells = Array.of_list (List.rev !cells) in
  {
    rows;
    cols;
    row_ptr;
    col_idx = Array.map fst cells;
    values = Array.map snd cells;
  }

let boolean_of_coo ~rows ~cols entries =
  let module P = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let distinct = P.of_list entries in
  of_coo ~rows ~cols (List.map (fun (i, j) -> (i, j, 1.0)) (P.elements distinct))

let identity n = of_coo ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.0)))
let zero ~rows ~cols = of_coo ~rows ~cols []
let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.col_idx

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Sparse.get: index out of range";
  let rec find k =
    if k >= m.row_ptr.(i + 1) then 0.0
    else if m.col_idx.(k) = j then m.values.(k)
    else find (k + 1)
  in
  find m.row_ptr.(i)

let to_coo m =
  let acc = ref [] in
  for i = m.rows - 1 downto 0 do
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      acc := (i, m.col_idx.(k), m.values.(k)) :: !acc
    done
  done;
  !acc

(* Row-at-a-time sparse product with a dense accumulator. *)
let mul_general ~boolean a b =
  if a.cols <> b.rows then invalid_arg "Sparse.mul: dimension mismatch";
  let acc = Array.make b.cols 0.0 in
  let touched = ref [] in
  let out = ref [] in
  for i = 0 to a.rows - 1 do
    for ka = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let k = a.col_idx.(ka) in
      let va = a.values.(ka) in
      for kb = b.row_ptr.(k) to b.row_ptr.(k + 1) - 1 do
        let j = b.col_idx.(kb) in
        if acc.(j) = 0.0 then touched := j :: !touched;
        acc.(j) <- acc.(j) +. (va *. b.values.(kb))
      done
    done;
    List.iter
      (fun j ->
        if acc.(j) <> 0.0 then begin
          let v = if boolean then 1.0 else acc.(j) in
          out := (i, j, v) :: !out
        end;
        acc.(j) <- 0.0)
      !touched;
    touched := []
  done;
  of_coo ~rows:a.rows ~cols:b.cols !out

let mul a b = mul_general ~boolean:false a b
let mul_bool a b = mul_general ~boolean:true a b

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Sparse.add: dimension mismatch";
  of_coo ~rows:a.rows ~cols:a.cols (to_coo a @ to_coo b)

let transpose m =
  of_coo ~rows:m.cols ~cols:m.rows
    (List.map (fun (i, j, v) -> (j, i, v)) (to_coo m))

let mat_vec m x =
  if Array.length x <> m.cols then invalid_arg "Sparse.mat_vec: size mismatch";
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      y.(i) <- y.(i) +. (m.values.(k) *. x.(m.col_idx.(k)))
    done
  done;
  y

let vec_mat x m =
  if Array.length x <> m.rows then invalid_arg "Sparse.vec_mat: size mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    if x.(i) <> 0.0 then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        let j = m.col_idx.(k) in
        y.(j) <- y.(j) +. (x.(i) *. m.values.(k))
      done
  done;
  y

let power_bool m k =
  if m.rows <> m.cols then invalid_arg "Sparse.power_bool: non-square";
  if k < 0 then invalid_arg "Sparse.power_bool: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul_bool acc base else acc in
      if k lsr 1 = 0 then acc else go acc (mul_bool base base) (k lsr 1)
  in
  go (identity m.rows) m k

let map f m =
  of_coo ~rows:m.rows ~cols:m.cols
    (List.filter_map
       (fun (i, j, v) ->
         let v' = f v in
         if v' = 0.0 then None else Some (i, j, v'))
       (to_coo m))

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && a.row_ptr = b.row_ptr && a.col_idx = b.col_idx && a.values = b.values

let pp fmt m =
  Format.fprintf fmt "@[<v>%dx%d sparse, %d nnz@," m.rows m.cols (nnz m);
  List.iter
    (fun (i, j, v) -> Format.fprintf fmt "(%d,%d)=%g@," i j v)
    (to_coo m);
  Format.fprintf fmt "@]"
