(** Assortative mixing coefficients — the third algorithm family §IV-C lists
    ("assortative (e.g. scalar and discrete)").

    Both are Newman's mixing coefficients computed over the edge list of a
    single-relational (projected) graph. *)

val scalar : values:float array -> Simple_graph.t -> float
(** Scalar assortativity: the Pearson correlation, over edges [(u, v)], of
    [values.(u)] against [values.(v)]. Returns [nan] when either marginal is
    constant (correlation undefined) or the graph has no edges. *)

val degree : Simple_graph.t -> float
(** Degree assortativity of a directed graph: correlation of
    out-degree of the source with in-degree of the target. *)

val discrete : categories:int array -> Simple_graph.t -> float
(** Discrete (categorical) assortativity
    [(Σᵢ eᵢᵢ − Σᵢ aᵢ bᵢ) / (1 − Σᵢ aᵢ bᵢ)], where [e] is the normalised
    category mixing matrix and [a], [b] its marginals. [1] is perfect
    assortative mixing; [0] is random; negative is disassortative. Returns
    [nan] on edgeless graphs or when the denominator vanishes. *)
