let eccentricity g =
  let n = Simple_graph.n_vertices g in
  Array.init n (fun v ->
      let dist = Simple_graph.bfs_distances g v in
      Array.fold_left
        (fun acc d -> if d > acc then d else acc)
        (-1)
        (Array.mapi (fun u d -> if u = v then -1 else d) dist))

let diameter g =
  Array.fold_left (fun acc e -> if e > acc then e else acc) 0 (eccentricity g)

let radius g =
  let finite = Array.to_list (eccentricity g) |> List.filter (fun e -> e > 0) in
  match finite with [] -> 0 | _ -> List.fold_left min max_int finite

let average_path_length g =
  let n = Simple_graph.n_vertices g in
  let total = ref 0 and pairs = ref 0 in
  for v = 0 to n - 1 do
    let dist = Simple_graph.bfs_distances g v in
    Array.iteri
      (fun u d ->
        if u <> v && d > 0 then begin
          total := !total + d;
          incr pairs
        end)
      dist
  done;
  if !pairs = 0 then nan else float_of_int !total /. float_of_int !pairs

(* Undirected neighbour sets (out ∪ in, self-loops dropped). *)
let undirected_neighbours g v =
  let module S = Set.Make (Int) in
  let s =
    S.union
      (S.of_list (Array.to_list (Simple_graph.out_neighbours g v)))
      (S.of_list (Array.to_list (Simple_graph.in_neighbours g v)))
  in
  S.elements (S.remove v s)

let undirected_adjacent g u v =
  Simple_graph.mem_edge g u v || Simple_graph.mem_edge g v u

let local_clustering g =
  let n = Simple_graph.n_vertices g in
  Array.init n (fun v ->
      let ns = undirected_neighbours g v in
      let k = List.length ns in
      if k < 2 then 0.0
      else begin
        let links = ref 0 in
        let rec pairs = function
          | [] -> ()
          | u :: rest ->
            List.iter (fun w -> if undirected_adjacent g u w then incr links) rest;
            pairs rest
        in
        pairs ns;
        2.0 *. float_of_int !links /. float_of_int (k * (k - 1))
      end)

let global_clustering g =
  let n = Simple_graph.n_vertices g in
  let coeffs = local_clustering g in
  let eligible = ref 0 and total = ref 0.0 in
  for v = 0 to n - 1 do
    if List.length (undirected_neighbours g v) >= 2 then begin
      incr eligible;
      total := !total +. coeffs.(v)
    end
  done;
  if !eligible = 0 then nan else !total /. float_of_int !eligible
