(** Connectivity structure of single-relational (projected) graphs.

    §IV-C hands derived graphs to "all known single-relational graph
    algorithms"; connectivity is the first thing any pipeline asks of them
    (which part of the derived relation is even mutually reachable?), and
    the condensation is the standard preprocessor for path-existence
    reasoning. *)

type t = {
  n_components : int;
  component : int array;
      (** [component.(v)] is the id of [v]'s component, in [0 .. n-1]. *)
}

val strongly_connected : Simple_graph.t -> t
(** Tarjan's algorithm (iterative). Component ids are assigned in reverse
    topological order of the condensation: if the condensation has an edge
    [c₁ → c₂] then [c₁ > c₂]... see {!condensation} for the DAG itself. *)

val weakly_connected : Simple_graph.t -> t
(** Components of the underlying undirected graph (union of out- and
    in-adjacency). *)

val members : t -> int -> int list
(** Vertices of one component, ascending. Raises [Invalid_argument] on an
    unknown component id. *)

val largest : t -> int * int
(** [(component id, size)] of a largest component. Raises
    [Invalid_argument] on the empty partition. *)

val condensation : Simple_graph.t -> t * Simple_graph.t
(** The strongly-connected partition together with its condensation: one
    vertex per component, an edge [c₁ → c₂] (with [c₁ ≠ c₂]) whenever some
    member edge crosses the components. The condensation is a DAG. *)

val same_component : t -> int -> int -> bool
