(** Whole-graph distance and cohesion metrics for (projected)
    single-relational graphs — the remaining §IV-C "geodesic" quantities
    that are graph-level rather than per-vertex. *)

val eccentricity : Simple_graph.t -> int array
(** Per vertex: the greatest finite distance to any reachable vertex over
    out-edges; [-1] for vertices that reach nothing. *)

val diameter : Simple_graph.t -> int
(** Largest finite eccentricity ([0] when no vertex reaches another). The
    directed, reachable-pairs-only convention: unreachable pairs are
    ignored rather than infinite. *)

val radius : Simple_graph.t -> int
(** Smallest non-negative eccentricity among vertices that reach at least
    one other vertex; [0] when there are none. *)

val average_path_length : Simple_graph.t -> float
(** Mean distance over ordered reachable pairs [(u, v)], [u ≠ v]; [nan]
    when no such pair exists. *)

val local_clustering : Simple_graph.t -> float array
(** Per vertex, over the {e undirected} view: the fraction of pairs of
    neighbours that are themselves adjacent; [0.] for degree < 2. *)

val global_clustering : Simple_graph.t -> float
(** Mean of {!local_clustering} over vertices of undirected degree ≥ 2
    (the Watts–Strogatz average); [nan] when no vertex qualifies. *)
