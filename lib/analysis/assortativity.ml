let pearson pairs =
  let n = float_of_int (List.length pairs) in
  if n = 0.0 then nan
  else begin
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pairs in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pairs in
    let mx = sx /. n and my = sy /. n in
    let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
    List.iter
      (fun (x, y) ->
        let dx = x -. mx and dy = y -. my in
        cov := !cov +. (dx *. dy);
        vx := !vx +. (dx *. dx);
        vy := !vy +. (dy *. dy))
      pairs;
    if !vx = 0.0 || !vy = 0.0 then nan else !cov /. sqrt (!vx *. !vy)
  end

let scalar ~values g =
  if Array.length values <> Simple_graph.n_vertices g then
    invalid_arg "Assortativity.scalar: values length mismatch";
  pearson
    (List.map (fun (u, v) -> (values.(u), values.(v))) (Simple_graph.edges g))

let degree g =
  pearson
    (List.map
       (fun (u, v) ->
         ( float_of_int (Simple_graph.out_degree g u),
           float_of_int (Simple_graph.in_degree g v) ))
       (Simple_graph.edges g))

let discrete ~categories g =
  if Array.length categories <> Simple_graph.n_vertices g then
    invalid_arg "Assortativity.discrete: categories length mismatch";
  let edges = Simple_graph.edges g in
  let m = float_of_int (List.length edges) in
  if m = 0.0 then nan
  else begin
    let k = 1 + Array.fold_left max (-1) categories in
    let e = Array.make_matrix k k 0.0 in
    List.iter
      (fun (u, v) ->
        let cu = categories.(u) and cv = categories.(v) in
        if cu < 0 || cv < 0 then
          invalid_arg "Assortativity.discrete: negative category";
        e.(cu).(cv) <- e.(cu).(cv) +. (1.0 /. m))
      edges;
    let trace = ref 0.0 and agreement = ref 0.0 in
    for i = 0 to k - 1 do
      trace := !trace +. e.(i).(i);
      let a = Array.fold_left ( +. ) 0.0 e.(i) in
      let b = ref 0.0 in
      for j = 0 to k - 1 do
        b := !b +. e.(j).(i)
      done;
      agreement := !agreement +. (a *. !b)
    done;
    if 1.0 -. !agreement = 0.0 then nan
    else (!trace -. !agreement) /. (1.0 -. !agreement)
  end
