type op = Write | Flush | Fsync | Rename | Close
type mode = Crash | Errno of Unix.error

exception Injected of op * int

let op_name = function
  | Write -> "write"
  | Flush -> "flush"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Close -> "close"

let op_of_name = function
  | "write" -> Some Write
  | "flush" -> Some Flush
  | "fsync" -> Some Fsync
  | "rename" -> Some Rename
  | "close" -> Some Close
  | _ -> None

let idx = function Write -> 0 | Flush -> 1 | Fsync -> 2 | Rename -> 3 | Close -> 4

let counts = Array.make 5 0
let fault : (op * int * mode) option ref = ref None

let arm ?(mode = Crash) op ~at =
  if at < 1 then invalid_arg "Io_fault.arm: at < 1";
  Array.fill counts 0 (Array.length counts) 0;
  fault := Some (op, at, mode)

let disarm () = fault := None
let armed () = Option.map (fun (op, at, _) -> (op, at)) !fault
let op_count op = counts.(idx op)

(* Count this occurrence of [op]; if the armed fault fires, disarm it and
   return the failure to raise (so [write] can tear the record first). *)
let fire op =
  let i = idx op in
  counts.(i) <- counts.(i) + 1;
  match !fault with
  | Some (o, at, mode) when o = op && counts.(i) >= at ->
    fault := None;
    Some
      (match mode with
      | Crash -> Injected (op, counts.(i))
      | Errno e -> Unix.Unix_error (e, op_name op, ""))
  | _ -> None

let write_range fd bytes off len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes (off + !written) (len - !written)
  done

let write fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  match fire Write with
  | None -> write_range fd bytes 0 len
  | Some (Injected _ as e) ->
    (* Torn write: half the record reaches the disk, then the "crash". *)
    write_range fd bytes 0 (len / 2);
    raise e
  | Some e -> raise e

let checked op real =
  match fire op with None -> real () | Some e -> raise e

let flush () = checked Flush (fun () -> ())
let fsync fd = checked Fsync (fun () -> Unix.fsync fd)
let rename src dst = checked Rename (fun () -> Sys.rename src dst)
let close fd = checked Close (fun () -> Unix.close fd)
