type t = Edge.t array
(* The empty array is ε. Arrays are never mutated after construction. *)

let empty = [||]
let is_empty a = Array.length a = 0
let of_edge e = [| e |]
let of_edges es = Array.of_list es
let of_array es = Array.copy es
let concat a b = Array.append a b
let ( ^. ) = concat
let length = Array.length

let nth a n =
  if n < 1 || n > Array.length a then
    invalid_arg "Path.nth: index out of [1, length]";
  a.(n - 1)

let nth_opt a n =
  if n < 1 || n > Array.length a then None else Some a.(n - 1)

let tail a = if is_empty a then None else Some (Edge.tail a.(0))
let head a = if is_empty a then None else Some (Edge.head a.(Array.length a - 1))

let tail_exn a =
  if is_empty a then invalid_arg "Path.tail_exn: empty path"
  else Edge.tail a.(0)

let head_exn a =
  if is_empty a then invalid_arg "Path.head_exn: empty path"
  else Edge.head a.(Array.length a - 1)

let label_word a = Array.to_list (Array.map Edge.label a)

let is_joint a =
  let n = Array.length a in
  let rec check i =
    if i >= n - 1 then true
    else Edge.adjacent a.(i) a.(i + 1) && check (i + 1)
  in
  check 0

let adjacent a b =
  is_empty a || is_empty b || Vertex.equal (head_exn a) (tail_exn b)

let edges a = Array.to_list a
let to_array a = Array.copy a

let vertices a =
  if is_empty a then []
  else
    let front = Array.to_list (Array.map Edge.tail a) in
    front @ [ head_exn a ]

let is_simple a =
  let rec distinct = function
    | [] -> true
    | v :: rest -> (not (List.exists (Vertex.equal v) rest)) && distinct rest
  in
  distinct (vertices a)

let iter f a = Array.iter f a
let fold f acc a = Array.fold_left f acc a
let for_all f a = Array.for_all f a
let exists f a = Array.exists f a

let sub a ~pos ~len =
  if pos < 1 || len < 0 || pos - 1 + len > Array.length a then
    invalid_arg "Path.sub: out of range";
  Array.sub a (pos - 1) len

let visits a v = List.exists (Vertex.equal v) (vertices a)

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let n = Array.length a in
    let rec cmp i =
      if i >= n then 0
      else
        let c = Edge.compare a.(i) b.(i) in
        if c <> 0 then c else cmp (i + 1)
    in
    cmp 0

let equal a b = compare a b = 0

let hash a =
  Array.fold_left (fun acc e -> (acc * 1000003) lxor Edge.hash e) 5381 a

let pp_with fmt a pr_v pr_l =
  if is_empty a then Format.pp_print_string fmt "\xCE\xB5" (* ε *)
  else begin
    Format.pp_print_char fmt '(';
    Array.iteri
      (fun i e ->
        if i > 0 then Format.pp_print_char fmt ',';
        Format.fprintf fmt "%s,%s,%s" (pr_v (Edge.tail e)) (pr_l (Edge.label e))
          (pr_v (Edge.head e)))
      a;
    Format.pp_print_char fmt ')'
  end

let pp fmt a = pp_with fmt a string_of_int string_of_int

let pp_named ~vertex_name ~label_name fmt a = pp_with fmt a vertex_name label_name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
