(** Dense integer identifiers with the container modules every id-like type
    needs. {!Vertex} and {!Label} are the two instantiations; keeping them as
    distinct modules (rather than bare [int]s) keeps vertex/label confusion
    out of signatures. *)

module type S = sig
  type t = int
  (** Identifiers are dense non-negative integers assigned by an
      {!Interner}. *)

  val of_int : int -> t
  val to_int : t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int

  val pp : Format.formatter -> t -> unit
  (** Prints the raw integer; name-aware printing lives in {!Digraph}. *)

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t

  val set_of_list : t list -> Set.t
end

module Make () : S
(** Each application of [Make] yields a fresh id namespace. *)
