(** String interning: a bijection between a growing set of strings and the
    dense integer range [0 .. cardinal - 1].

    Vertex and edge-label names are interned once on graph construction so the
    algebra and the automata work on machine integers, and names reappear only
    at the printing boundary. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh, empty interner. *)

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating the next free id if [s] is
    new. Ids are assigned in first-interning order starting at [0]. *)

val find : t -> string -> int option
(** Id of [s] if already interned. *)

val name : t -> int -> string
(** [name t id] is the string with identifier [id].
    Raises [Invalid_argument] if [id] was never allocated. *)

val name_opt : t -> int -> string option
(** Like {!name} but total. *)

val mem : t -> string -> bool
(** Has [s] been interned? *)

val cardinal : t -> int
(** Number of interned strings; also the next id to be allocated. *)

val to_list : t -> (int * string) list
(** All bindings in id order. *)

val copy : t -> t
(** Independent copy. *)
